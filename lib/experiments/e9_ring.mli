(** E9 — Theorems 5.6/5.7: ring mixing within the e^{2*delta*beta} * n log n envelope; clique separation.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
