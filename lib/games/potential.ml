let verify ?(tol = 1e-9) g phi =
  let space = Game.space g in
  let n = Strategy_space.num_players space in
  let ok = ref true in
  Strategy_space.iter space (fun idx ->
      if !ok then
        for i = 0 to n - 1 do
          let u_here = Game.utility g i idx in
          let phi_here = phi idx in
          let m = Strategy_space.num_strategies space i in
          for a = 0 to m - 1 do
            let other = Strategy_space.replace space idx i a in
            if other <> idx then begin
              let lhs = u_here -. Game.utility g i other in
              let rhs = phi other -. phi_here in
              if Float.abs (lhs -. rhs) > tol then ok := false
            end
          done
        done);
  !ok

let integrate g =
  let space = Game.space g in
  let n = Strategy_space.num_players space in
  let size = Strategy_space.size space in
  let phi = Array.make size nan in
  let scratch = Array.make n 0 in
  Strategy_space.iter space (fun idx ->
      (* Walk from the all-zero profile to [idx], flipping one
         coordinate at a time; each step contributes the negated
         utility difference of the moving player. *)
      Array.fill scratch 0 n 0;
      let current = ref 0 in
      let value = ref 0. in
      for i = 0 to n - 1 do
        let target = Strategy_space.player_strategy space idx i in
        if target <> 0 then begin
          let next = Strategy_space.replace space !current i target in
          value := !value -. (Game.utility g i next -. Game.utility g i !current);
          current := next
        end
      done;
      phi.(idx) <- !value);
  phi

let recover ?(tol = 1e-9) g =
  let phi = integrate g in
  let lookup idx = phi.(idx) in
  if verify ~tol g lookup then Some lookup else None

let is_potential_game ?(tol = 1e-9) g = recover ~tol g <> None

let common_interest ~name space phi =
  Game.create ~name space (fun _player idx -> -.phi idx)

let tabulate space phi =
  let table = Array.init (Strategy_space.size space) phi in
  fun idx -> table.(idx)

let extrema space phi =
  let vmin = ref (phi 0) and imin = ref 0 in
  let vmax = ref (phi 0) and imax = ref 0 in
  Strategy_space.iter space (fun idx ->
      let v = phi idx in
      if v < !vmin then begin
        vmin := v;
        imin := idx
      end;
      if v > !vmax then begin
        vmax := v;
        imax := idx
      end);
  (!vmin, !imin, !vmax, !imax)

let delta_global space phi =
  let vmin, _, vmax, _ = extrema space phi in
  vmax -. vmin

let delta_local space phi =
  let best = ref 0. in
  Strategy_space.iter space (fun idx ->
      let here = phi idx in
      List.iter
        (fun other ->
          let d = Float.abs (phi other -. here) in
          if d > !best then best := d)
        (Strategy_space.neighbors space idx));
  !best

let global_minima ?(tol = 1e-12) space phi =
  let vmin, _, _, _ = extrema space phi in
  let acc = ref [] in
  Strategy_space.iter space (fun idx ->
      if phi idx <= vmin +. tol then acc := idx :: !acc);
  List.rev !acc
