(** Cross-library primitives shared by every layer of the system.

    This library is dependency-free on purpose: [linalg], [markov],
    [graphs] and [logit] all sit above it, so an exception defined
    here can travel across layer boundaries without forcing any other
    dependency edge. *)

(** Raised by iterative numerical routines when an iteration budget is
    exhausted before the convergence criterion is met: power iteration
    ({!Markov.Stationary.by_power}), QR/QL eigensolvers
    ({!Linalg.Eigen.general_spectrum}, {!Linalg.Tridiag.eigensystem}),
    coupling-from-the-past ({!Logit.Perfect_sampling.sample}) and
    restart-bounded randomized constructions
    ({!Graphs.Generators.random_regular}).

    Distinct from [Invalid_argument], which these modules reserve for
    precondition violations: [No_convergence] means the input was
    legal but the budget (iterations, epochs, restarts) ran out. The
    project lint rule [exn-policy] enforces this split by rejecting
    [failwith]/[Failure] anywhere under [lib/]. *)
exception No_convergence of string

(** [no_convergence fmt ...] raises {!No_convergence} with a
    [Printf]-formatted message. *)
val no_convergence : ('a, unit, string, 'b) format4 -> 'a

(** [feq ~eps a b] is [|a - b| <= eps] — the explicit tolerance
    comparison the [float-equality] lint rule points to. [eps = 0.]
    gives exact comparison (NaN compares unequal to everything, and
    unlike [Float.equal] [feq ~eps:0. nan nan] is [false]). Raises
    [Invalid_argument] on negative or NaN [eps]. *)
val feq : eps:float -> float -> float -> bool

(** The project's clocks. Durations must be measured on the monotonic
    clock: the wall clock ([Unix.gettimeofday]) can step backwards or
    smear under NTP, which corrupts minimum-of-reps timings and
    latency histograms. The [wall-clock] lint rule bans
    [Unix.gettimeofday] outside this module; timestamp fields (bench
    provenance, artifact ages) legitimately keep wall time via
    {!Clock.wall_s}.

    Both clocks are bound directly to POSIX [clock_gettime]
    ([CLOCK_MONOTONIC] / [CLOCK_REALTIME]) through a local C stub —
    OCaml 5.1's [Unix] has no [clock_gettime] — which keeps this
    library dependency-free. *)
module Clock : sig
  (** [monotonic_ns ()] is a monotonically non-decreasing timestamp in
      nanoseconds from an unspecified origin. Differences are valid
      durations. Falls back (documented, never raises) to the realtime
      clock on a host whose [clock_gettime] lacks [CLOCK_MONOTONIC]. *)
  val monotonic_ns : unit -> int64

  (** [span_s ~since] is the elapsed time in seconds from the
      {!monotonic_ns} reading [since] to now. *)
  val span_s : since:int64 -> float

  (** [wall_s ()] is the wall-clock time in seconds since the Unix
      epoch — for timestamps only, never durations. *)
  val wall_s : unit -> float
end

(** Process peak-RSS introspection, read from [/proc/self/status]
    (Linux). Every accessor degrades to [None]/[false] on hosts
    without procfs, so callers can record memory bounds
    opportunistically (bench phase 1.10's out-of-core claim) without
    a platform gate. Uses only [Stdlib] I/O: [common] stays
    dependency-free. *)
module Rss : sig
  (** [peak_kb ()] is the process's peak resident set size ([VmHWM])
      in kilobytes, or [None] when procfs is unavailable. *)
  val peak_kb : unit -> int option

  (** [reset_peak ()] resets the kernel's peak-RSS watermark by
      writing ["5"] to [/proc/self/clear_refs] (Linux >= 4.0), so a
      following {!peak_kb} measures only the phase in between.
      Returns [false] (and changes nothing) where unsupported. *)
  val reset_peak : unit -> bool
end
