let lower_bound_game ~players ~strategies =
  if players < 1 || strategies < 2 then
    invalid_arg "Dominant.lower_bound_game: need players >= 1, strategies >= 2";
  let space = Strategy_space.uniform ~players ~strategies in
  Game.create
    ~name:(Printf.sprintf "dominant-lower-bound(n=%d,m=%d)" players strategies)
    space
    (fun _player idx -> if idx = 0 then 0. else -1.)

let lower_bound_potential ~players:_ ~strategies:_ idx = if idx = 0 then 0. else 1.

let prisoners_dilemma ?(temptation = 5.) ?(reward = 3.) ?(punishment = 1.)
    ?(sucker = 0.) () =
  if not (temptation > reward && reward > punishment && punishment > sucker) then
    invalid_arg "Dominant.prisoners_dilemma: need T > R > P > S";
  (* Strategy 0 = defect, 1 = cooperate; defection is strictly dominant. *)
  Normal_form.symmetric ~name:"prisoners-dilemma"
    [| [| punishment; temptation |]; [| sucker; reward |] |]

let n_player_dilemma ~players =
  if players < 2 then invalid_arg "Dominant.n_player_dilemma: need >= 2 players";
  let space = Strategy_space.uniform ~players ~strategies:2 in
  let cost = 1.5 in
  Game.create ~name:(Printf.sprintf "public-goods(n=%d)" players) space
    (fun player idx ->
      let contributors = float_of_int (Strategy_space.weight space idx) in
      let mine = Strategy_space.player_strategy space idx player in
      contributors -. if mine = 1 then cost else 0.)
