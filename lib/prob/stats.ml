let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty sample")

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)
let standard_error xs = std xs /. sqrt (float_of_int (Array.length xs))

let quantile xs q =
  check_nonempty "quantile" xs;
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  let frac = pos -. float_of_int lo in
  ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5

let min_max xs =
  check_nonempty "min_max" xs;
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let mean_ci95 xs =
  let m = mean xs in
  (m, 1.96 *. standard_error xs)

let check_paired name xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg ("Stats." ^ name ^ ": sample size mismatch")

let linear_fit xs ys =
  check_paired "linear_fit" xs ys;
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxx = ref 0. and sxy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. (ys.(i) -. my))
  done;
  (* Constant abscissae leave sxx at round-off scale (each deviation is
     a few ulps of the mean), not exactly 0 — and a slope divided by
     ~1e-30 is garbage. Compare against that scale, not against 0. *)
  let ulp = float_of_int n *. Float.abs mx *. epsilon_float in
  if Common.feq ~eps:(float_of_int n *. ulp *. ulp) !sxx 0. then
    invalid_arg "Stats.linear_fit: degenerate abscissae";
  let slope = !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let correlation xs ys =
  check_paired "correlation" xs ys;
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.correlation: need at least two points";
  let mx = mean xs and my = mean ys in
  let sxx = ref 0. and syy = ref 0. and sxy = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    syy := !syy +. (dy *. dy);
    sxy := !sxy +. (dx *. dy)
  done;
  (* Same round-off-scale test as in linear_fit: a correlation divided
     by a variance of ~1e-30 from a constant series is garbage. *)
  let degenerate sum m =
    let ulp = float_of_int n *. Float.abs m *. epsilon_float in
    Common.feq ~eps:(float_of_int n *. ulp *. ulp) sum 0.
  in
  if degenerate !sxx mx || degenerate !syy my then
    invalid_arg "Stats.correlation: zero variance";
  !sxy /. sqrt (!sxx *. !syy)
