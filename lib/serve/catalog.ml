(* The named-game catalogue, shared by the CLI and the daemon so both
   resolve an id like "ring" to the exact same chain recipe. *)

type spec = {
  id : string;
  doc : string;
  build : n:int -> beta:float -> Games.Game.t * (int -> float) option;
}

let coordination_basic delta0 delta1 = Games.Coordination.of_deltas ~delta0 ~delta1

let graphical graph_of_n ~n ~beta:_ =
  let desc = Games.Graphical.create (graph_of_n n) (coordination_basic 1.0 1.0) in
  (Games.Graphical.to_game desc, Some (Games.Graphical.potential desc))

let with_potential game =
  (game, (Games.Potential.recover game :> (int -> float) option))

let all =
  [
    {
      id = "ring";
      doc = "graphical coordination on a ring (delta0 = delta1 = 1)";
      build = graphical Graphs.Generators.ring;
    };
    {
      id = "clique";
      doc = "graphical coordination on a clique (delta0 = delta1 = 1)";
      build = graphical Graphs.Generators.clique;
    };
    {
      id = "path";
      doc = "graphical coordination on a path (delta0 = delta1 = 1)";
      build = graphical Graphs.Generators.path;
    };
    {
      id = "curve";
      doc = "the Theorem 3.5 lower-bound potential family (l=1, g=n/4)";
      build =
        (fun ~n ~beta:_ ->
          let global = Float.max 1. (float_of_int (n / 4)) in
          let game = Games.Curve_game.create ~players:n ~global ~local:1.0 in
          (Games.Curve_game.to_game game, Some (Games.Curve_game.potential game)));
    };
    {
      id = "dominant";
      doc = "the Theorem 4.3 dominant-strategy game (m = 2)";
      build =
        (fun ~n ~beta:_ ->
          with_potential (Games.Dominant.lower_bound_game ~players:n ~strategies:2));
    };
    {
      id = "pd";
      doc = "prisoner's dilemma (2 players; n ignored)";
      build = (fun ~n:_ ~beta:_ -> with_potential (Games.Dominant.prisoners_dilemma ()));
    };
    {
      id = "matching-pennies";
      doc = "matching pennies (2 players; n ignored; not a potential game)";
      build = (fun ~n:_ ~beta:_ -> (Games.Zoo.matching_pennies, None));
    };
  ]

let find id = List.find_opt (fun g -> g.id = id) all
