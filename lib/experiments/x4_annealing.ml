(** X4 (extension) — β varying over time ("learning process" from the
    paper's conclusions).

    On the Theorem 3.5 double-well potential, a fixed large β is
    glassy (the chain cannot cross the barrier within the budget) and
    a fixed small β is noisy (it crosses but does not commit). An
    increasing schedule does both: we compare constant, linear,
    exponential and logarithmic schedules by the fraction of replicas
    that end in the global minimum basin and by the mean final
    potential, at an equal step budget. *)

open Games

let run ~quick =
  let players = if quick then 8 else 12 in
  let global = 3. and local = 1. in
  let cg = Curve_game.create ~players ~global ~local in
  let game = Curve_game.to_game cg in
  let space = Curve_game.space cg in
  let phi = Curve_game.potential cg in
  (* Start in the shallow basin: just outside the shell on the 0 side
     is weight 0... the all-one profile sits in the far basin; start at
     the all-zero profile (global minimum is ALSO at weight 0 here —
     so instead start at the all-one end? phi(0) = -g and phi(n) = -g:
     both wells are global minima. Use an asymmetric variant: start on
     the shell itself and measure commitment. *)
  let start =
    Strategy_space.encode space
      (Array.init players (fun i -> if i < Curve_game.shell cg then 1 else 0))
  in
  let steps = if quick then 2_000 else 10_000 in
  let replicas = if quick then 100 else 400 in
  let schedules =
    [
      Logit.Annealing.Constant 0.3;
      Logit.Annealing.Constant 4.0;
      Logit.Annealing.Linear { start = 0.; rate = 4.0 /. float_of_int steps };
      Logit.Annealing.Exponential { start = 0.05; factor = 1.001 };
      Logit.Annealing.Logarithmic { scale = local };
    ]
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "X4 (conclusions): annealing schedules on the Thm 3.5 potential, \
            n=%d, %d steps, start on the barrier shell" players steps)
      [
        ("schedule", Table.Left);
        ("mean final Phi", Table.Right);
        ("P(final in a well)", Table.Right);
        ("final beta", Table.Right);
      ]
  in
  let rng = Prob.Rng.create 31337 in
  List.iter
    (fun schedule ->
      let in_well = ref 0 in
      let total_phi = ref 0. in
      for _ = 1 to replicas do
        let traj = Logit.Annealing.trajectory rng game schedule ~start ~steps in
        let final = traj.(steps) in
        total_phi := !total_phi +. phi final;
        if phi final <= -.global +. 1e-9 then incr in_well
      done;
      Table.add_row table
        [
          Format.asprintf "%a" Logit.Annealing.pp_schedule schedule;
          Table.cell_float (!total_phi /. float_of_int replicas);
          Table.cell_float (float_of_int !in_well /. float_of_int replicas);
          Table.cell_float (Logit.Annealing.beta_at schedule steps);
        ])
    schedules;
  Table.add_note table
    "wells sit at Phi = -3; the cold constant schedule freezes near the \
     shell, the hot one never commits, increasing schedules do both.";
  [ table ]
