(** Common-payoff polymatrix games on a graph.

    Every edge (u, v) of a social graph carries a shared payoff
    f_e(x_u, x_v) = f_e(x_v, x_u) paid to {e both} endpoints; a
    player's utility is the sum over her incident edges. Such games
    are exact potential games with Φ(x) = -Σ_e f_e(x_u, x_v), and they
    generalise the homogeneous graphical coordination games of
    Section 5 to heterogeneous, possibly frustrated interactions —
    in particular Ising {e spin glasses} with random ±J couplings,
    used by experiment X9 to probe how frustration reshapes the
    barrier ζ. *)

type t

(** [create graph ~strategies ~edge_payoff] builds the game:
    [strategies] is the common strategy count (≥ 2) and
    [edge_payoff u v a b] the shared payoff of edge (u, v) — always
    called with [u < v] — when u plays [a] and v plays [b]. The
    function must be symmetric in the sense that the modeller intends
    both endpoints to receive it; no symmetrisation is applied to the
    [(a, b)] arguments. *)
val create :
  Graphs.Graph.t -> strategies:int -> edge_payoff:(int -> int -> int -> int -> float) ->
  t

(** [graph t] and [space t]: components. *)
val graph : t -> Graphs.Graph.t

val space : t -> Strategy_space.t

(** [potential t idx] is Φ(x) = -Σ_e f_e(x_u, x_v). *)
val potential : t -> int -> float

(** [to_game t] is the strategic game (tabulated when small). *)
val to_game : t -> Game.t

(** [spin_glass rng graph ~coupling] draws an Ising spin glass: each
    edge independently gets J_e = ±coupling with equal probability and
    shared payoff J_e when the endpoints agree, -J_e when they differ
    (binary strategies). Returns the game plus the drawn couplings in
    the order of {!Graphs.Graph.edges}. *)
val spin_glass : Prob.Rng.t -> Graphs.Graph.t -> coupling:float -> t * float array

(** [ferromagnet graph ~coupling] is the all-(+J) instance — the
    Ising/graphical-coordination special case, as a baseline. *)
val ferromagnet : Graphs.Graph.t -> coupling:float -> t

(** [frustrated_triangles t ~couplings] counts triangles of the graph
    whose coupling product is negative — the standard frustration
    measure for ±J glasses (couplings indexed like
    {!Graphs.Graph.edges}). *)
val frustrated_triangles : t -> couplings:float array -> int
