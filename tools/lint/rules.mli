(** The syntactic (Parsetree) rule catalogue. README.md ("Lint")
    documents each rule's motivation; [logitlint --list-rules] prints
    the docs. *)

val float_equality : Syntactic.rule
val exn_policy : Syntactic.rule
val bare_random : Syntactic.rule
val print_in_lib : Syntactic.rule
val mli_coverage : Syntactic.rule
val marshal_outside_store : Syntactic.rule
val bench_json_outside_bench : Syntactic.rule
val wall_clock : Syntactic.rule

(** Every rule, in reporting order. *)
val all : Syntactic.rule list

(** [is_float_shaped e] — exposed for the fixture tests: whether an
    operand is syntactically float-valued (float literal, [Float.*]
    call or float arithmetic). *)
val is_float_shaped : Parsetree.expression -> bool
