let logsumexp xs =
  let m = Array.fold_left Float.max neg_infinity xs in
  if m = neg_infinity then neg_infinity
  else if m = infinity then infinity
  else begin
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. exp (x -. m)) xs;
    m +. log !acc
  end

let logsumexp2 a b =
  let m = Float.max a b in
  if m = neg_infinity then neg_infinity
  else if m = infinity then infinity
  else m +. log (exp (a -. m) +. exp (b -. m))

let normalize_logs xs =
  let z = logsumexp xs in
  if z = neg_infinity then invalid_arg "Logspace.normalize_logs: zero total mass";
  Array.map (fun x -> exp (x -. z)) xs

let log1mexp x =
  if x >= 0. then invalid_arg "Logspace.log1mexp: argument must be negative";
  if x > -.Float.log 2. then log (-.Float.expm1 x) else Float.log1p (-.exp x)
