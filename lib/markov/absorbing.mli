(** Absorbing-chain analysis via the fundamental matrix.

    The best-response dynamics (β = ∞) of a potential game is an
    absorbing chain whose absorbing classes contain the pure Nash
    equilibria; the fundamental matrix N = (I - Q)⁻¹ over the
    transient states yields exact expected absorption times and
    absorption probabilities, the deterministic-limit counterparts of
    the logit chain's hitting quantities. *)

type t = private {
  absorbing : int array;   (** the absorbing states, increasing *)
  transient : int array;   (** the transient states, increasing *)
  expected_steps : float array;
      (** indexed like [transient]: expected steps to absorption *)
  absorption : Linalg.Mat.t;
      (** row = transient index, column = absorbing index:
          probability of ending in that absorbing state *)
}

(** [analyse chain] classifies states and computes the fundamental
    quantities. A state is treated as absorbing iff its only
    transition is the self-loop. Raises [Invalid_argument] when there
    is no absorbing state, or when some transient state cannot reach
    any absorbing state (a closed transient class, which would make
    I - Q singular — detected by an explicit backward reachability
    pass rather than left to the LU pivot check). Dense O(size³). *)
val analyse : Chain.t -> t

(** [expected_absorption_time t state] is the expected number of steps
    to absorption from [state] (0 for absorbing states). *)
val expected_absorption_time : t -> int -> float

(** [absorption_probability t ~start ~target] is the probability that
    the chain started at [start] is absorbed in [target]. Raises
    [Invalid_argument] if [target] is not absorbing. *)
val absorption_probability : t -> start:int -> target:int -> float
