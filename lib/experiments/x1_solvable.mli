(** X1 — Section 4 closing remark: dominance-solvable games also plateau.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
