(* The panel-coalescing scheduler.

   A batch is whatever the server read off its clients in one loop
   iteration. Mixing queries on the same game id and n — across β,
   regardless of which client sent them — are settled together:
   same-β panel-route groups drive ONE Mixing.panel_sweep, and groups
   spanning several β become ONE Markov.Family driven by the fused
   multi-plane sweep (Mixing.family_panel_sweep) over their shared
   index structure; either way each request retires at its own eps, so
   one matrix (or structure) traversal per step serves the whole
   group. Spectral-route requests share their entry's cached
   eigendecomposition per β. Answers are bit-identical to serial
   evaluation because both run the same primitives over the same
   floats — the coalescing only changes who pays for the matrix
   traffic.

   Deadlines are absolute monotonic nanosecond instants fixed at
   admission; they are enforced between panel steps (and before any
   serial evaluation), never mid-traversal. *)

module P = Protocol

type 'a job = {
  tag : 'a;
  req_id : int;
  deadline_ns : int64 option;
  query : P.query;
}

type stats = {
  mutable batches : int;
  mutable max_batch : int;
  mutable panel_steps : int;
}

let stats_zero () = { batches = 0; max_batch = 0; panel_steps = 0 }

let expired job =
  match job.deadline_ns with
  | None -> false
  | Some d -> Int64.compare (Common.Clock.monotonic_ns ()) d > 0

let guard f =
  match f () with
  | r -> r
  | exception Common.No_convergence msg -> Error (P.Server_error msg)
  | exception Invalid_argument msg -> Error (P.Server_error msg)

(* One coalesced panel sweep over [group], a list of (position, job,
   eps, replicas, seed) all on [e]'s chain. Each request settles at
   its own eps exactly as the serial Mixing.mixing_time would: the eps
   check runs before the deadline and budget checks, so a request
   whose answer lands on its deadline step still gets its answer. *)
let run_panel_group engine stats out e group =
  let jobs = Array.of_list group in
  let settled = Array.make (Array.length jobs) None in
  let remaining = ref (Array.length jobs) in
  let budget = Engine.max_steps engine in
  let steps_taken = ref 0 in
  let sweep () =
    Markov.Mixing.panel_sweep ?pool:(Engine.pool engine) e.Engine.chain
      e.Engine.pi ~starts:(Engine.all_starts e)
      ~decide:(fun ~step ~worst ->
        steps_taken := step;
        let now = Common.Clock.monotonic_ns () in
        Array.iteri
          (fun i (_, job, eps, _, _) ->
            if Option.is_none settled.(i) then
              if worst <= eps then begin
                settled.(i) <- Some (Ok (Some step));
                decr remaining
              end
              else
                match job.deadline_ns with
                | Some d when Int64.compare now d > 0 ->
                    settled.(i) <- Some (Error P.Deadline_exceeded);
                    decr remaining
                | _ ->
                    if step >= budget then begin
                      settled.(i) <- Some (Ok None);
                      decr remaining
                    end)
          jobs;
        if !remaining = 0 then Some (Ok ()) else None)
  in
  (match guard sweep with
  | Ok () -> ()
  | Error e ->
      (* The sweep itself failed: every still-pending request inherits
         the failure. *)
      Array.iteri
        (fun i s -> if Option.is_none s then settled.(i) <- Some (Error e))
        settled);
  stats.panel_steps <- stats.panel_steps + !steps_taken;
  Array.iteri
    (fun i (pos, _, _, replicas, seed) ->
      out.(pos) <-
        (match settled.(i) with
        | Some (Ok tmix) ->
            guard (fun () ->
                Ok (Engine.mixing_reply_of engine e ~tmix ~replicas ~seed))
        | Some (Error err) -> Error err
        | None -> Error (P.Server_error "panel sweep left a request unsettled")))
    jobs

(* Spectral-route group: the entry's eigendecomposition is computed
   once (then cached on the entry across batches); each request is a
   cheap doubling + binary search at its own eps. *)
let run_spectral_group engine out e group =
  List.iter
    (fun (pos, job, eps, replicas, seed) ->
      out.(pos) <-
        (if expired job then Error P.Deadline_exceeded
         else
           guard (fun () ->
               let tmix =
                 Markov.Mixing.mixing_time_from_decomposition ~eps
                   ~decomposition:(Engine.decomposition e) e.Engine.pi
                   ~starts:(Engine.all_starts e)
               in
               Ok (Engine.mixing_reply_of engine e ~tmix ~replicas ~seed))))
    group

(* One fused multi-β sweep over [groups], a list of (beta, entry,
   jobs) triples that share a game and n (hence a state space, and
   almost always a sparsity structure): the entries' chains become one
   Markov.Family and every β plane advances through the fused
   multi-plane SpMM — one traversal of the shared index structure per
   step serves the whole cross-β batch. Per plane the decide logic is
   exactly [run_panel_group]'s (eps before deadline before budget), and
   per plane the (step, worst) sequence is bit-identical to a solo
   panel sweep, so each request's answer is unchanged — the widening
   only changes who pays for the index traffic. *)
let run_family_group engine stats out groups =
  let groups = Array.of_list groups in
  let np = Array.length groups in
  let jobs = Array.map (fun (_, _, g) -> Array.of_list g) groups in
  let settled = Array.map (fun ja -> Array.map (fun _ -> None) ja) jobs in
  let remaining = Array.map Array.length jobs in
  let remaining = Array.map ref remaining in
  let budget = Engine.max_steps engine in
  let max_step = ref 0 in
  let sweep () =
    let family =
      Markov.Family.v
        ~betas:(Array.map (fun (beta, _, _) -> beta) groups)
        ~planes:(Array.map (fun (_, e, _) -> e.Engine.chain) groups)
    in
    let pis = Array.map (fun (_, e, _) -> e.Engine.pi) groups in
    let _, e0, _ = groups.(0) in
    Markov.Mixing.family_panel_sweep ?pool:(Engine.pool engine) family ~pis
      ~starts:(Engine.all_starts e0)
      ~decide:(fun ~plane ~step ~worst ->
        if step > !max_step then max_step := step;
        let now = Common.Clock.monotonic_ns () in
        let sa = settled.(plane) and rem = remaining.(plane) in
        Array.iteri
          (fun i (_, job, eps, _, _) ->
            if Option.is_none sa.(i) then
              if worst <= eps then begin
                sa.(i) <- Some (Ok (Some step));
                decr rem
              end
              else
                match job.deadline_ns with
                | Some d when Int64.compare now d > 0 ->
                    sa.(i) <- Some (Error P.Deadline_exceeded);
                    decr rem
                | _ ->
                    if step >= budget then begin
                      sa.(i) <- Some (Ok None);
                      decr rem
                    end)
          jobs.(plane);
        !rem = 0);
    Ok ()
  in
  (match guard sweep with
  | Ok () -> ()
  | Error e ->
      (* The fused sweep itself failed: every still-pending request of
         every plane inherits the failure. *)
      Array.iter
        (fun sa ->
          Array.iteri
            (fun i s -> if Option.is_none s then sa.(i) <- Some (Error e))
            sa)
        settled);
  (* One fused traversal advances every live plane, so the work this
     group paid for is the deepest plane's step count, not the sum. *)
  stats.panel_steps <- stats.panel_steps + !max_step;
  for p = 0 to np - 1 do
    let _, e, _ = groups.(p) in
    Array.iteri
      (fun i (pos, _, _, replicas, seed) ->
        out.(pos) <-
          (match settled.(p).(i) with
          | Some (Ok tmix) ->
              guard (fun () ->
                  Ok (Engine.mixing_reply_of engine e ~tmix ~replicas ~seed))
          | Some (Error err) -> Error err
          | None -> Error (P.Server_error "panel sweep left a request unsettled")))
      jobs.(p)
  done

let run_batch engine stats jobs =
  let jobs_a = Array.of_list jobs in
  let n = Array.length jobs_a in
  if n = 0 then []
  else begin
    stats.batches <- stats.batches + 1;
    if n > stats.max_batch then stats.max_batch <- n;
    let out = Array.make n (Error (P.Server_error "unprocessed")) in
    (* Coalesce mixing queries by (game, n) — cross-β — so a β-grid's
       worth of requests shares one index-structure traversal;
       everything else is evaluated serially in arrival order. *)
    let groups = Hashtbl.create 8 in
    let order = ref [] in
    Array.iteri
      (fun pos job ->
        match job.query with
        | P.Mixing { game; n = players; beta; eps; replicas; seed } ->
            let key = (game, players) in
            if not (Hashtbl.mem groups key) then order := key :: !order;
            Hashtbl.replace groups key
              ((pos, job, eps, replicas, seed, beta)
              :: (try Hashtbl.find groups key with Not_found -> []))
        | q ->
            out.(pos) <-
              (if expired job then Error P.Deadline_exceeded
               else guard (fun () -> Engine.eval engine q)))
      jobs_a;
    List.iter
      (fun ((game, players) as key) ->
        let group = List.rev (Hashtbl.find groups key) in
        (* Sub-group by exact β bits, preserving first-seen order; each
           β resolves its own engine entry (build failures stay
           per-β). *)
        let by_beta = Hashtbl.create 4 in
        let beta_order = ref [] in
        List.iter
          (fun ((_, _, _, _, _, beta) as item) ->
            let bkey = Int64.bits_of_float beta in
            if not (Hashtbl.mem by_beta bkey) then
              beta_order := (bkey, beta) :: !beta_order;
            Hashtbl.replace by_beta bkey
              (item :: (try Hashtbl.find by_beta bkey with Not_found -> [])))
          group;
        let panel_groups = ref [] in
        List.iter
          (fun (bkey, beta) ->
            let sub =
              List.rev_map
                (fun (pos, job, eps, replicas, seed, _) ->
                  (pos, job, eps, replicas, seed))
                (Hashtbl.find by_beta bkey)
            in
            match Engine.entry engine ~game ~n:players ~beta with
            | Error msg ->
                List.iter
                  (fun (pos, _, _, _, _) -> out.(pos) <- Error (P.Bad_request msg))
                  sub
            | Ok e ->
                if Engine.spectral_route engine e then
                  run_spectral_group engine out e sub
                else begin
                  (* Requests already past their deadline skip the
                     sweep. *)
                  let live, dead =
                    List.partition (fun (_, job, _, _, _) -> not (expired job)) sub
                  in
                  List.iter
                    (fun (pos, _, _, _, _) ->
                      out.(pos) <- Error P.Deadline_exceeded)
                    dead;
                  if live <> [] then
                    panel_groups := (beta, e, live) :: !panel_groups
                end)
          (List.rev !beta_order);
        match List.rev !panel_groups with
        | [] -> ()
        | [ (_, e, live) ] -> run_panel_group engine stats out e live
        | panel_groups -> run_family_group engine stats out panel_groups)
      (List.rev !order);
    Array.to_list (Array.mapi (fun i job -> (job, out.(i))) jobs_a)
  end
