open Games

let log_weights space phi ~beta =
  if beta < 0. then invalid_arg "Gibbs: beta must be non-negative";
  Array.init (Strategy_space.size space) (fun idx -> -.beta *. phi idx)

let stationary space phi ~beta =
  Prob.Logspace.normalize_logs (log_weights space phi ~beta)

let log_partition space phi ~beta =
  Prob.Logspace.logsumexp (log_weights space phi ~beta)

let pi_min space phi ~beta =
  let pi = stationary space phi ~beta in
  Array.fold_left Float.min infinity pi

let of_game game ~beta =
  match Potential.recover game with
  | None -> None
  | Some phi -> Some (stationary (Game.space game) phi ~beta)

let expected_potential space phi ~beta =
  let pi = stationary space phi ~beta in
  let acc = ref 0. in
  Array.iteri (fun idx p -> if p > 0. then acc := !acc +. (p *. phi idx)) pi;
  !acc
