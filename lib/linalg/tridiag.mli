(** Eigendecomposition of symmetric tridiagonal matrices (implicit QL
    with Wilkinson shifts — the classical [tql2] routine).

    Lumped birth–death chains symmetrise to tridiagonal matrices, so
    this solver replaces the dense Jacobi method on the hot path of
    the clique/curve-game experiments: O(n²) for values plus O(n³)
    with a tiny constant for vectors, versus Jacobi's much larger
    constant — large-n lumped spectra become interactive. DESIGN.md
    lists this as an ablation pair; the benches measure both. *)

(** [eigensystem ~diag ~off] decomposes the symmetric tridiagonal
    matrix with diagonal [diag] (length n) and sub/super-diagonal
    [off] (length n-1; an empty array for n = 1). Returns eigenvalues
    sorted in non-increasing order and the matrix of eigenvectors
    (column k pairs with eigenvalue k). Raises [Common.No_convergence]
    when one eigenvalue needs more than 50 QL sweeps and
    [Invalid_argument] on mismatched lengths. *)
val eigensystem : diag:float array -> off:float array -> float array * Mat.t

(** [eigenvalues ~diag ~off] returns only the sorted eigenvalues. *)
val eigenvalues : diag:float array -> off:float array -> float array
