(* Resolving source files to their .cmt artifacts. Primary strategy:
   parse `dune describe workspace`, whose module entries carry both the
   impl path and the cmt path. Fallback: scan `_build/default` and
   invert dune's object-directory naming. The fallback matters beyond
   robustness — `dune exec logitlint` holds the build lock, so a child
   `dune describe` would deadlock; in that situation (and in the test
   suite) only the scan is usable. *)

(* ------------------------------------------------------------------ *)
(* A minimal s-expression reader for `dune describe` output.          *)

type sexp = Atom of string | List of sexp list

exception Sexp_error of string

let parse_sexps (s : string) : sexp list =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        (* comment to end of line *)
        while peek () <> None && peek () <> Some '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let read_quoted () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Sexp_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some c -> Buffer.add_char buf c
          | None -> raise (Sexp_error "dangling escape"));
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let read_bare () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | None | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';') ->
          stop := true
      | Some _ -> advance ()
    done;
    String.sub s start (!pos - start)
  in
  let rec read_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Sexp_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec items_loop () =
          skip_ws ();
          match peek () with
          | None -> raise (Sexp_error "unterminated list")
          | Some ')' -> advance ()
          | Some _ ->
              items := read_one () :: !items;
              items_loop ()
        in
        items_loop ();
        List (List.rev !items)
    | Some ')' -> raise (Sexp_error "unexpected ')'")
    | Some '"' -> Atom (read_quoted ())
    | Some _ -> Atom (read_bare ())
  in
  let out = ref [] in
  let rec toplevel () =
    skip_ws ();
    if peek () <> None then begin
      out := read_one () :: !out;
      toplevel ()
    end
  in
  toplevel ();
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Path normalisation: describe output and _build paths both reduce to
   root-relative source paths with '/' separators. *)

let strip_prefix ~prefix s =
  let np = String.length prefix and ns = String.length s in
  if ns >= np && String.sub s 0 np = prefix then
    Some (String.sub s np (ns - np))
  else None

let normalize_impl path =
  match strip_prefix ~prefix:"_build/default/" path with
  | Some rest -> rest
  | None -> (
      match strip_prefix ~prefix:"_build/" path with
      | Some rest -> (
          (* "_build/<context>/lib/..." *)
          match String.index_opt rest '/' with
          | Some i -> String.sub rest (i + 1) (String.length rest - i - 1)
          | None -> rest)
      | None -> path)

(* ------------------------------------------------------------------ *)
(* Strategy 1: `dune describe workspace`. Module entries look like
   ((name Chain) ... (impl (_build/default/lib/markov/chain.ml))
    ... (cmt (_build/default/lib/markov/.markov.objs/byte/markov__Chain.cmt)))
   We walk the whole tree and collect any record carrying both fields. *)

let field_path record key =
  List.find_map
    (function
      | List [ Atom k; List [ Atom v ] ] when k = key -> Some v
      | _ -> None)
    record

let parse_describe output =
  let pairs = ref [] in
  let rec walk = function
    | Atom _ -> ()
    | List items ->
        (match (field_path items "impl", field_path items "cmt") with
        | Some impl, Some cmt ->
            pairs := (normalize_impl impl, cmt) :: !pairs
        | _ -> ());
        List.iter walk items
  in
  List.iter walk (parse_sexps output);
  List.rev !pairs

let run_describe ~root =
  let out = Filename.temp_file "logitlint" ".describe" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let cmd =
        Filename.quote_command "dune"
          ~stdout:out ~stderr:Filename.null
          [ "describe"; "workspace"; "--root"; root ]
      in
      if Sys.command cmd <> 0 then None
      else
        let ic = open_in_bin out in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic))))

(* ------------------------------------------------------------------ *)
(* Strategy 2: scan `_build/default` for .cmt files and invert dune's
   naming. A library module's cmt lives at
     <dir>/.<lib>.objs/byte/<lib>__<Module>.cmt   (or <lib>.cmt)
   and an executable module's at
     <dir>/.<exe>.eobjs/byte/dune__exe__<Module>.cmt
   The inverse: take the basename, drop everything through the last
   "__", uncapitalize, and look for <dir>/<module>.ml in the source
   tree. Wrapper/alias modules have no source file and drop out. *)

let module_of_cmt_basename base =
  let rec last_sep i acc =
    if i + 1 >= String.length base then acc
    else if base.[i] = '_' && base.[i + 1] = '_' then last_sep (i + 2) (Some (i + 2))
    else last_sep (i + 1) acc
  in
  let name =
    match last_sep 0 None with
    | Some i -> String.sub base i (String.length base - i)
    | None -> base
  in
  String.uncapitalize_ascii name

(* Directory of the source the cmt was compiled from: the cmt sits in
   "<dir>/.<x>.objs/byte" (possibly "native"), so strip those three. *)
let source_dir_of_cmt rel_cmt_dir =
  let parts = String.split_on_char '/' rel_cmt_dir in
  let rec strip_obj acc = function
    | [] -> None
    | [ ("byte" | "native") ] -> (
        match acc with
        | objs :: rest
          when String.length objs > 1 && objs.[0] = '.' ->
            Some (String.concat "/" (List.rev rest))
        | _ -> None)
    | x :: tl -> strip_obj (x :: acc) tl
  in
  strip_obj [] parts

let rec scan_dir acc abs rel =
  match Sys.readdir abs with
  | exception Sys_error _ -> acc
  | entries ->
      Array.sort compare entries;
      Array.fold_left
        (fun acc name ->
          let abs' = Filename.concat abs name in
          let rel' = if rel = "" then name else rel ^ "/" ^ name in
          if Sys.is_directory abs' then scan_dir acc abs' rel'
          else if Filename.check_suffix name ".cmt" then (rel', abs') :: acc
          else acc)
        acc entries

let scan_build ~root =
  let build = Filename.concat (Filename.concat root "_build") "default" in
  if not (Sys.file_exists build && Sys.is_directory build) then []
  else
    scan_dir [] build ""
    |> List.filter_map (fun (rel_cmt, abs_cmt) ->
           let base = Filename.remove_extension (Filename.basename rel_cmt) in
           match source_dir_of_cmt (Filename.dirname rel_cmt) with
           | None -> None
           | Some src_dir ->
               let m = module_of_cmt_basename base in
               let src_rel =
                 if src_dir = "" then m ^ ".ml" else src_dir ^ "/" ^ m ^ ".ml"
               in
               if Sys.file_exists (Filename.concat root src_rel) then
                 Some (src_rel, abs_cmt)
               else None)
    |> List.rev

(* ------------------------------------------------------------------ *)

type mode = Auto | Dune | Scan

let table_of pairs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (src, cmt) ->
      if not (Hashtbl.mem tbl src) then Hashtbl.add tbl src cmt)
    pairs;
  tbl

let locate ~root ~mode =
  let via_dune () =
    match run_describe ~root with
    | None -> None
    | Some out -> (
        match parse_describe out with
        | [] -> None
        | pairs ->
            (* describe emits cmt paths relative to the workspace root *)
            Some
              (List.map
                 (fun (src, cmt) ->
                   let cmt =
                     if Filename.is_relative cmt then Filename.concat root cmt
                     else cmt
                   in
                   (src, cmt))
                 pairs)
        | exception Sexp_error _ -> None)
  in
  let pairs =
    match mode with
    | Dune -> ( match via_dune () with Some p -> p | None -> [])
    | Scan -> scan_build ~root
    | Auto -> (
        (* describe's module list can lag the build (it omits modules
           whose stanza it cannot fully resolve), so the scan backfills
           whatever describe leaves unmapped — table_of keeps the first
           binding per source, i.e. describe wins on conflicts. *)
        match via_dune () with
        | Some p -> p @ scan_build ~root
        | None -> scan_build ~root)
  in
  let tbl = table_of pairs in
  fun src -> Hashtbl.find_opt tbl src
