open Games

let player_updates game ~beta idx =
  let n = Game.num_players game in
  Array.init n (fun i -> Logit_dynamics.update_distribution game ~beta ~player:i idx)

let transition_row game ~beta idx =
  let space = Game.space game in
  let sigmas = player_updates game ~beta idx in
  let entries = ref [] in
  (* P(x, y) = prod_i sigma_i(y_i | x): enumerate all profiles,
     abandoning a profile at the first zero factor so unreachable
     targets are never consed at all. *)
  Strategy_space.iter_profiles space (fun target profile ->
      let p = ref 1. in
      match
        Array.iteri
          (fun i s ->
            let q = sigmas.(i).(s) in
            (* lint: allow float-equality — exactly-zero factor: target unreachable *)
            if q = 0. then raise_notrace Exit;
            p := !p *. q)
          profile
      with
      | exception Exit -> ()
      | () ->
          (* The product can still underflow to zero with every factor
             positive, so the filter stays. *)
          if !p > 0. then entries := (target, !p) :: !entries);
  !entries

let chain ?pool game ~beta =
  if Game.size game > 4096 then
    invalid_arg "Parallel_logit.chain: state space too large for a dense chain";
  Markov.Chain.of_function ?pool (Game.size game) (fun idx ->
      transition_row game ~beta idx)

let step rng game ~beta idx =
  let space = Game.space game in
  let sigmas = player_updates game ~beta idx in
  let profile = Array.map (fun sigma -> Prob.Rng.categorical rng sigma) sigmas in
  Strategy_space.encode space profile

let stationary game ~beta = Markov.Stationary.by_solve (chain game ~beta)

let gibbs_gap game phi ~beta =
  let parallel = stationary game ~beta in
  let gibbs = Gibbs.stationary (Game.space game) phi ~beta in
  Prob.Dist.tv_distance
    (Prob.Dist.of_weights parallel)
    (Prob.Dist.of_weights gibbs)
