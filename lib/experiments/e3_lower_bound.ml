(** E3 — Theorem 3.5: the potential family
    Φ(x) = -l·min{c, |c - w(x)|} has t_mix ≥ e^{βΔΦ(1-o(1))}.

    The game is weight-symmetric, so the logit chain lumps exactly to
    a birth–death chain on {0..n}; we measure its exact mixing time
    over a β sweep, fit the growth exponent of log t_mix in β, and
    compare with ΔΦ = g. The bottleneck lower bound of the theorem
    (through the shell w = c) is printed alongside. *)

let run ~quick =
  let players = if quick then 10 else 14 in
  let global = 3. and local = 1. in
  let game = Games.Curve_game.create ~players ~global ~local in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E3 (Thm 3.5): lower-bound family, n=%d, dPhi=g=%.0f, dphi=l=%.0f"
           players global local)
      [
        ("beta", Table.Right);
        ("t_mix (lumped)", Table.Right);
        ("log t_mix", Table.Right);
        ("beta*dPhi", Table.Right);
        ("bottleneck LB", Table.Right);
        ("spectral t_rel", Table.Right);
      ]
  in
  let betas =
    if quick then [ 1.0; 2.0; 3.0 ]
    else [ 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 4.0; 5.0; 6.0; 8.0 ]
  in
  let logs = ref [] in
  List.iter
    (fun beta ->
      let bd = Logit.Lumping.curve ~game ~beta in
      let chain = Markov.Birth_death.to_chain bd in
      let pi = Markov.Birth_death.stationary bd in
      let tmix = Markov.Birth_death.mixing_time_spectral bd in
      let bottleneck, _theta =
        Markov.Bottleneck.best_sublevel_set chain pi (fun k -> float_of_int k)
      in
      let lower = Markov.Bottleneck.lower_bound_tmix bottleneck in
      let trel = Markov.Birth_death.relaxation_time bd in
      (match tmix with
      | Some t when t > 0 -> logs := (beta, log (float_of_int t)) :: !logs
      | _ -> ());
      Table.add_row table
        [
          Table.cell_float beta;
          Table.cell_opt_int tmix;
          (match tmix with
          | Some t when t > 0 -> Table.cell_log (log (float_of_int t))
          | _ -> "-");
          Table.cell_log (beta *. global);
          Table.cell_sci lower;
          Table.cell_sci trel;
        ])
    betas;
  (match !logs with
  | _ :: _ :: _ ->
      let points = List.rev !logs in
      let xs = Array.of_list (List.map fst points) in
      let ys = Array.of_list (List.map snd points) in
      let slope, _ = Prob.Stats.linear_fit xs ys in
      Table.add_note table
        (Printf.sprintf
           "fitted d(log t_mix)/d(beta) = %.3f vs dPhi = %.3f (Thm 3.5 predicts \
            convergence from below as beta grows)"
           slope global)
  | _ -> ());
  Table.add_note table
    "lumped birth-death chain is the exact weight projection of the 2^n chain";
  [ table ]
