let by_power_kernel ?pool ?(tol = 1e-12) ?(max_iter = 10_000_000) kernel =
  let n = Kernel.size kernel in
  let mu = ref (Array.make n (1. /. float_of_int n)) in
  let scratch = ref (Array.make n 0.) in
  let rec go iter =
    if iter > max_iter then
      Common.no_convergence "Stationary.by_power: no convergence within %d iterations"
        max_iter;
    (* Pooled runs use the pull kernel, which is bit-identical to the
       serial push, so the movement sums and the iteration count are
       pool-independent. Below [Exec.Pool.serial_cutover] the evolve
       falls back to the serial push outright — one distribution over a
       small chain is exactly the dispatch-overhead regime that made
       pooled by_power 0.38x serial at |S| = 1024. *)
    kernel.Kernel.evolve_into ~pool ~src:!mu ~dst:!scratch;
    let next = !scratch and current = !mu in
    (* L¹ movement per step; both buffers have length n, so unchecked
       access is safe, and the left-to-right sum matches the boxed
       [Array.iteri] accumulation this loop replaces. *)
    let moved = ref 0. in
    for i = 0 to n - 1 do
      moved :=
        !moved +. Float.abs (Array.unsafe_get next i -. Array.unsafe_get current i)
    done;
    mu := next;
    scratch := current;
    if !moved > tol then go (iter + 1)
  in
  go 1;
  !mu

let by_power ?pool ?tol ?max_iter t =
  by_power_kernel ?pool ?tol ?max_iter (Kernel.of_chain t)

let by_solve t =
  let n = Chain.size t in
  (* Unknown: the column vector π. Equations: for each state j < n-1,
     Σ_i π_i (P(i,j) - δ_ij) = 0; the last equation is Σ_i π_i = 1. *)
  let a = Linalg.Mat.create n n 0. in
  for i = 0 to n - 1 do
    Chain.iter_row t i (fun j p -> if j < n - 1 then Linalg.Mat.set a j i p);
    if i < n - 1 then Linalg.Mat.set a i i (Linalg.Mat.get a i i -. 1.);
    Linalg.Mat.set a (n - 1) i 1.
  done;
  let b = Array.init n (fun i -> if i = n - 1 then 1. else 0.) in
  let pi = Linalg.Lu.solve a b in
  (* Round-off can leave tiny negative entries; clamp and renormalise. *)
  let pi = Array.map (fun x -> Float.max x 0.) pi in
  let total = Array.fold_left ( +. ) 0. pi in
  Array.map (fun x -> x /. total) pi

let residual t pi =
  (* [evolve] rejects a wrong-length [pi], so both arrays have length
     [size t] here and unchecked access is safe. *)
  let next = Chain.evolve t pi in
  let acc = ref 0. in
  for i = 0 to Array.length next - 1 do
    acc := !acc +. Float.abs (Array.unsafe_get next i -. Array.unsafe_get pi i)
  done;
  !acc

let is_stationary ?(tol = 1e-8) t pi = residual t pi <= tol
