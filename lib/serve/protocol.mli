(** Wire protocol of the logitdynd daemon.

    A message is a [u32] little-endian byte length followed by exactly
    that many bytes of a {!Store.Codec} frame of kind [Request] or
    [Response] — the same magic/version/kind/CRC framing as on-disk
    artifacts, so truncation, bit flips and type confusion are
    detected and reported instead of misread, and nothing is ever
    [Marshal]ed across the socket.

    Strictness: every decoder is bounds-checked against the framed
    payload and rejects unknown tags, trailing bytes and checksum
    mismatches with [Error]. *)

(** A query names a game by catalogue id; the daemon builds (or pulls
    from its warm {!Store.Cas} cache) the chain behind it. *)
type query =
  | Mixing of {
      game : string;
      n : int;
      beta : float;
      eps : float;
      replicas : int;  (** > 0 adds a Monte-Carlo TV estimate *)
      seed : int;  (** seed for the empirical estimate *)
    }
  | Stationary of { game : string; n : int; beta : float }
  | Hitting of { game : string; n : int; beta : float }
  | Simulate of { game : string; n : int; beta : float; steps : int; seed : int }
  | Sample of { game : string; n : int; beta : float; count : int; seed : int }
  | Stats  (** server counters; never queued behind heavy work *)

type request = {
  id : int;  (** client-chosen; echoed in the response *)
  deadline_ms : int option;
      (** per-request budget in milliseconds from server receipt,
          enforced between panel steps *)
  query : query;
}

type error =
  | Overloaded  (** admission control: the bounded queue was full *)
  | Deadline_exceeded  (** the deadline passed before the answer settled *)
  | Bad_request of string  (** unknown game, out-of-range size, ... *)
  | Server_error of string  (** unexpected failure while computing *)

(** Which mixing-time route answered: the blocked-SpMM panel sweep or
    the shared eigendecomposition. *)
type route = Panel | Spectral

type barrier = { d_global : float; d_local : float; zeta : float }

type mixing_reply = {
  size : int;
  reversible : bool;
  route : route;
  tmix : int option;  (** [None]: exceeded the server's step budget *)
  empirical : (int * float) option;  (** (steps, TV) when replicas > 0 *)
  barrier : barrier option;  (** potential games only *)
}

type hitting_reply = {
  size : int;
  argmin : int;  (** encoded profile minimising the potential *)
  phi_min : float;
  worst_hitting : float;
  hit_tmix : int option;
}

type stats_reply = {
  served : int;
  rejected : int;
  expired : int;
  failed : int;
  batches : int;
  max_batch : int;  (** widest coalesced batch so far *)
  panel_steps : int;  (** total SpMM panel steps across all batches *)
  queue_peak : int;
  chain_cache_hits : int;  (** in-memory chain cache *)
  chain_cache_misses : int;
  store_hits : int;  (** on-disk {!Store.Cas} warm cache *)
  store_misses : int;
}

type reply =
  | Mixing_r of mixing_reply
  | Stationary_r of float array
  | Hitting_r of hitting_reply
  | Simulate_r of int array
  | Sample_r of { samples : int array; max_window : int }
  | Stats_r of stats_reply

type response = { req_id : int; result : (reply, error) Result.t }

(** {1 Codecs} *)

(** [encode_request r] is the Codec frame (kind [Request]) for [r] —
    {e without} the stream length prefix; see {!write_framed}. *)
val encode_request : request -> string

val decode_request : string -> (request, string) result

val encode_response : response -> string

val decode_response : string -> (response, string) result

(** {1 Stream framing} *)

(** Upper bound on a single frame's byte length; a length prefix
    beyond it is unrecoverable protocol corruption. *)
val max_frame_len : int

(** [write_framed buf frame] appends the [u32] length prefix and the
    frame bytes to [buf]. Raises [Invalid_argument] beyond
    {!max_frame_len}. *)
val write_framed : Buffer.t -> string -> unit

(** Incremental reader for a length-prefixed frame stream: feed raw
    socket bytes in, pop complete frames out. *)
module Reader : sig
  type t

  val create : unit -> t

  (** [feed t bytes ~len] appends the first [len] bytes just read. *)
  val feed : t -> bytes -> len:int -> unit

  (** [next t] pops the next complete frame body, [Ok None] if more
      bytes are needed, or [Error] on an oversized length prefix
      (unrecoverable; close the connection). *)
  val next : t -> (string option, string) result
end
