(** E6 — Theorems 4.2 / 4.3: games with a dominant profile mix in
    O(mⁿ·n log n) {e independently of β}, and that mⁿ cannot be
    avoided: the Theorem 4.3 game needs Ω(m^{n-1}) steps.

    Part A sweeps β on the Theorem 4.3 game: t_mix grows with β at
    first and then {e saturates} between the Thm 4.3 lower bound and
    the Thm 4.2 upper bound — the plateau that distinguishes
    dominant-strategy games from generic potential games (Thm 3.5),
    whose mixing time grows without bound.

    Part B sweeps n and m at β = ∞-like noise (large β) and compares
    the plateau level against m^{n-1}.

    Part C validates the Theorem 4.2 coupling argument empirically:
    the interval coupling coalesces in O(mⁿ n log n) steps, giving an
    upper-bound estimate within a small factor of the exact t_mix. *)

let plateau_tmix ~players ~strategies ~beta =
  let bd = Logit.Lumping.dominant_lower_bound ~players ~strategies ~beta in
  Markov.Birth_death.mixing_time_spectral bd

let part_a ~quick =
  let players = if quick then 5 else 8 in
  let strategies = 2 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E6a (Thm 4.2/4.3): beta-independence plateau, n=%d, m=%d" players
           strategies)
      [
        ("beta", Table.Right);
        ("t_mix (lumped)", Table.Right);
        ("Thm 4.3 lower", Table.Right);
        ("Thm 4.2 upper", Table.Right);
      ]
  in
  let betas =
    if quick then [ 0.5; 2.0; 8.0 ]
    else [ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ]
  in
  List.iter
    (fun beta ->
      Table.add_row table
        [
          Table.cell_float beta;
          Table.cell_opt_int (plateau_tmix ~players ~strategies ~beta);
          Table.cell_float (Logit.Bounds.thm43_tmix_lower ~n:players ~m:strategies);
          Table.cell_sci (Logit.Bounds.thm42_tmix_upper ~n:players ~m:strategies);
        ])
    betas;
  Table.add_note table
    "t_mix must saturate as beta grows, staying in [lower, upper].";
  table

let part_b ~quick =
  let table =
    Table.create ~title:"E6b (Thm 4.3): plateau level grows as m^(n-1)"
      [
        ("n", Table.Right);
        ("m", Table.Right);
        ("t_mix (beta=64)", Table.Right);
        ("m^(n-1)", Table.Right);
        ("t_mix/m^(n-1)", Table.Right);
      ]
  in
  let cases =
    if quick then [ (4, 2); (6, 2); (4, 3) ]
    else [ (4, 2); (6, 2); (8, 2); (10, 2); (12, 2); (4, 3); (6, 3); (8, 3); (4, 4); (6, 4) ]
  in
  List.iter
    (fun (players, strategies) ->
      let tmix = plateau_tmix ~players ~strategies ~beta:64. in
      let level = float_of_int strategies ** float_of_int (players - 1) in
      Table.add_row table
        [
          Table.cell_int players;
          Table.cell_int strategies;
          Table.cell_opt_int tmix;
          Table.cell_float level;
          (match tmix with
          | Some t -> Table.cell_float (float_of_int t /. level)
          | None -> "-");
        ])
    cases;
  table

let part_c ~quick =
  let players = if quick then 4 else 5 in
  let strategies = 2 in
  let game = Games.Dominant.lower_bound_game ~players ~strategies in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "E6c (Thm 4.2): interval-coupling estimate, n=%d, m=%d"
           players strategies)
      [
        ("beta", Table.Right);
        ("exact t_mix", Table.Right);
        ("coupling 75th pct", Table.Right);
      ]
  in
  let rng = Prob.Rng.create 4242 in
  let betas = if quick then [ 2.0 ] else [ 1.0; 2.0; 4.0; 8.0 ] in
  let size = Games.Game.size game in
  let all_one = size - 1 in
  (* The loop stays serial — the coupling estimate threads one rng
     across β points — but the chains come from one β-family
     (utilities tabulated once), bit-identical to per-point builds. *)
  let family = Logit.Logit_dynamics.chain_family game ~betas in
  List.iteri
    (fun bi beta ->
      let chain = Markov.Family.plane family bi in
      let phi idx =
        Games.Dominant.lower_bound_potential ~players ~strategies idx
      in
      let pi = Logit.Gibbs.stationary (Games.Game.space game) phi ~beta in
      let tmix = Markov.Mixing.mixing_time_all ~max_steps:1_000_000 chain pi in
      let step = Logit.Dynamics.interval_coupling game ~beta in
      let estimate =
        Markov.Coupling.tmix_upper_estimate rng step ~x0:0 ~y0:all_one
          ~max_steps:500_000 ~replicas:(if quick then 100 else 400)
      in
      Table.add_row table
        [
          Table.cell_float beta;
          Table.cell_opt_int tmix;
          Table.cell_opt_int estimate;
        ])
    betas;
  Table.add_note table
    "the 75th-percentile coalescence time upper-bounds t_mix for the worst \
     start pair in expectation; individual entries carry sampling noise.";
  table

let run ~quick = [ part_a ~quick; part_b ~quick; part_c ~quick ]
