let pool : Exec.Pool.t option ref = ref None

let set_jobs n =
  (match !pool with Some p -> Exec.Pool.shutdown p | None -> ());
  pool := if n <= 1 then None else Some (Exec.Pool.create ~domains:n ())

let current_pool () = !pool

let map f xs =
  match !pool with
  | None -> List.map f xs
  | Some p ->
      let arr = Array.of_list xs in
      (* Chunk of 1: grid points are few and heavy, so claim them one
         at a time for the best load balance. *)
      Array.to_list (Exec.Pool.map ~chunk:1 p ~n:(Array.length arr) (fun i -> f arr.(i)))
