(** E5 — Theorems 3.8 / 3.9: for large β, t_mix = e^{βζ(1±o(1))} where
    ζ is the potential barrier — {e not} the global variation ΔΦ.

    We engineer a weight-symmetric potential with ζ strictly smaller
    than ΔΦ: a small hill of height h = ζ at low weights followed by a
    deep descent, so ΔΦ = h + depth. The lumped chain gives exact
    mixing times for large β; the fitted β-slope of log t_mix must
    match βζ (Thms 3.8/3.9) and stay well below βΔΦ. *)

let hill = 2.0
let depth = 4.0

(* φ(0) = 0, climbs to [hill] at k = 2, then descends linearly to
   -depth; ζ = hill (barrier from the shallow basin at 0),
   ΔΦ = hill + depth. *)
let phi ~players k =
  if k = 0 then 0.
  else if k = 1 then hill /. 2.
  else if k = 2 then hill
  else
    let slope = (hill +. depth) /. float_of_int (players - 2) in
    hill -. (slope *. float_of_int (k - 2))

let run ~quick =
  let players = if quick then 10 else 14 in
  let phi = phi ~players in
  let zeta = Logit.Barrier.zeta_of_weight_potential ~players phi in
  let delta_phi =
    let values = Array.init (players + 1) phi in
    Array.fold_left Float.max neg_infinity values
    -. Array.fold_left Float.min infinity values
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E5 (Thm 3.8/3.9): barrier governs mixing; n=%d, zeta=%.2f, dPhi=%.2f"
           players zeta delta_phi)
      [
        ("beta", Table.Right);
        ("t_mix (lumped)", Table.Right);
        ("log t_mix", Table.Right);
        ("beta*zeta", Table.Right);
        ("beta*dPhi", Table.Right);
      ]
  in
  let betas =
    if quick then [ 1.0; 2.0; 3.0 ] else [ 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 6.0; 8.0; 10.0 ]
  in
  let logs = ref [] in
  List.iter
    (fun beta ->
      let bd = Logit.Lumping.weight_symmetric ~players ~beta phi in
      let tmix = Markov.Birth_death.mixing_time_spectral bd in
      (match tmix with
      | Some t when t > 0 -> logs := (beta, log (float_of_int t)) :: !logs
      | _ -> ());
      Table.add_row table
        [
          Table.cell_float beta;
          Table.cell_opt_int tmix;
          (match tmix with
          | Some t when t > 0 -> Table.cell_log (log (float_of_int t))
          | _ -> "-");
          Table.cell_log (beta *. zeta);
          Table.cell_log (beta *. delta_phi);
        ])
    betas;
  (match !logs with
  | _ :: _ :: _ ->
      (* Fit on the large-beta half where the o(1) terms fade. *)
      let points = List.rev !logs in
      let half = List.filteri (fun i _ -> (2 * i) + 2 >= List.length points) points in
      let xs = Array.of_list (List.map fst half) in
      let ys = Array.of_list (List.map snd half) in
      let slope, _ = Prob.Stats.linear_fit xs ys in
      Table.add_note table
        (Printf.sprintf
           "large-beta fitted slope = %.3f; Thm 3.8/3.9 predict zeta = %.3f \
            (and rule out dPhi = %.3f)"
           slope zeta delta_phi)
  | _ -> ());
  [ table ]
