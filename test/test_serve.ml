(* The serve layer: CLI flag conflicts, wire protocol strictness, the
   panel-coalescing scheduler's bit-identity against serial
   evaluation, and the server's admission / deadline / drain
   behaviour over a real Unix-domain socket. *)

module P = Serve.Protocol

let check = Alcotest.(check bool)

(* --- Cli_flags ---------------------------------------------------------- *)

let flags_ok dir no_cache = Ok { Serve.Cli_flags.dir; no_cache }

let cli_flags_matrix () =
  let resolve stores no_cache_count =
    Serve.Cli_flags.resolve_store ~stores ~no_cache_count
  in
  check "defaults" true (resolve [] 0 = flags_ok None false);
  check "one store" true (resolve [ "/tmp/s" ] 0 = flags_ok (Some "/tmp/s") false);
  check "no-cache" true (resolve [] 1 = flags_ok None true);
  check "duplicate store rejected" true
    (Result.is_error (resolve [ "/tmp/a"; "/tmp/b" ] 0));
  check "same store twice still rejected" true
    (Result.is_error (resolve [ "/tmp/a"; "/tmp/a" ] 0));
  check "store + no-cache rejected" true
    (Result.is_error (resolve [ "/tmp/s" ] 1));
  check "duplicate no-cache rejected" true (Result.is_error (resolve [] 2))

(* --beta vs --betas: single point, grid, or neither — never both. The
   grid points must be the exact floats the per-point path would see
   ([lo +. float i *. step], no accumulation), so per-β output stays
   byte-identical. *)
let cli_flags_betas () =
  let resolve beta betas = Serve.Cli_flags.resolve_betas ~beta ~betas in
  check "neither defaults to beta 1.0" true
    (resolve None None = Ok (Serve.Cli_flags.Beta_single 1.0));
  check "single point" true
    (resolve (Some 0.5) None = Ok (Serve.Cli_flags.Beta_single 0.5));
  check "conflict rejected" true
    (Result.is_error (resolve (Some 0.5) (Some "0.1:1.0:0.1")));
  (match resolve None (Some "0.1:0.4:0.1") with
  | Ok (Serve.Cli_flags.Beta_grid pts) ->
      check "inclusive endpoint" true (List.length pts = 4);
      List.iteri
        (fun i p ->
          check
            (Printf.sprintf "grid point %d bit-exact" i)
            true
            (Int64.bits_of_float p
            = Int64.bits_of_float (0.1 +. (float_of_int i *. 0.1))))
        pts
  | _ -> Alcotest.fail "grid should parse");
  (match resolve None (Some "2.0:2.0:0.5") with
  | Ok (Serve.Cli_flags.Beta_grid [ p ]) ->
      (* lint: allow float-equality — the one-point grid must be exactly lo *)
      check "degenerate grid" true (p = 2.0)
  | _ -> Alcotest.fail "lo = hi is a one-point grid");
  List.iter
    (fun s ->
      check (Printf.sprintf "%S rejected" s) true
        (Result.is_error (resolve None (Some s))))
    [ "0.1:1.0"; "0.1:1.0:0"; "0.1:1.0:-0.1"; "1.0:0.1:0.1"; "-0.5:1.0:0.5";
      "a:b:c"; "" ]

(* --- Protocol ------------------------------------------------------------ *)

let all_queries =
  [
    P.Mixing { game = "ring"; n = 6; beta = 1.5; eps = 0.25; replicas = 0; seed = 1 };
    P.Mixing { game = "curve"; n = 8; beta = 0.125; eps = 0.01; replicas = 40; seed = 9 };
    P.Stationary { game = "clique"; n = 5; beta = 2.0 };
    P.Hitting { game = "path"; n = 4; beta = 0.5 };
    P.Simulate { game = "pd"; n = 2; beta = 1.0; steps = 300; seed = 3 };
    P.Sample { game = "ring"; n = 6; beta = 1.0; count = 50; seed = 4 };
    P.Stats;
  ]

let request_roundtrip () =
  List.iteri
    (fun i query ->
      let deadline_ms = if i mod 2 = 0 then Some (17 * (i + 1)) else None in
      let req = { P.id = 1000 + i; deadline_ms; query } in
      match P.decode_request (P.encode_request req) with
      | Ok req' ->
          check (Printf.sprintf "request %d round-trips" i) true (req' = req)
      | Error msg -> Alcotest.failf "request %d rejected: %s" i msg)
    all_queries

let all_replies =
  [
    P.Mixing_r
      {
        P.size = 64;
        reversible = true;
        route = P.Spectral;
        tmix = Some 41;
        empirical = Some (41, 0.21);
        barrier = Some { P.d_global = 4.; d_local = 2.; zeta = 2. };
      };
    P.Mixing_r
      {
        P.size = 1024;
        reversible = false;
        route = P.Panel;
        tmix = None;
        empirical = None;
        barrier = None;
      };
    P.Stationary_r [| 0.25; 0.5; 0.125; 0.125 |];
    P.Hitting_r
      { P.size = 16; argmin = 0; phi_min = -4.; worst_hitting = 8.9; hit_tmix = Some 14 };
    P.Simulate_r [| 0; 3; 1; 2 |];
    P.Sample_r { samples = [| 5; 7 |]; max_window = 32 };
    P.Stats_r
      {
        P.served = 10; rejected = 1; expired = 2; failed = 0; batches = 4;
        max_batch = 8; panel_steps = 900; queue_peak = 8; chain_cache_hits = 6;
        chain_cache_misses = 2; store_hits = 1; store_misses = 1;
      };
  ]

let response_roundtrip () =
  let results =
    List.map (fun r -> Ok r) all_replies
    @ [
        Error P.Overloaded;
        Error P.Deadline_exceeded;
        Error (P.Bad_request "unknown game \"foo\"");
        Error (P.Server_error "boom");
      ]
  in
  List.iteri
    (fun i result ->
      let resp = { P.req_id = i; result } in
      match P.decode_response (P.encode_response resp) with
      | Ok resp' ->
          check (Printf.sprintf "response %d round-trips" i) true (resp' = resp)
      | Error msg -> Alcotest.failf "response %d rejected: %s" i msg)
    results

let corrupt_frames_rejected () =
  let req =
    { P.id = 7; deadline_ms = None; query = P.Stationary { game = "ring"; n = 4; beta = 1. } }
  in
  let frame = P.encode_request req in
  (* A single flipped payload byte must trip the CRC. *)
  let flipped = Bytes.of_string frame in
  let mid = Bytes.length flipped / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
  check "bit flip rejected" true
    (Result.is_error (P.decode_request (Bytes.to_string flipped)));
  check "truncation rejected" true
    (Result.is_error
       (P.decode_request (String.sub frame 0 (String.length frame - 3))));
  check "trailing bytes rejected" true
    (Result.is_error (P.decode_request (frame ^ "\x00")));
  (* Kind confusion: a response frame is not a request. *)
  let resp_frame = P.encode_response { P.req_id = 7; result = Error P.Overloaded } in
  check "response frame is not a request" true
    (Result.is_error (P.decode_request resp_frame));
  check "request frame is not a response" true
    (Result.is_error (P.decode_response frame))

let reader_reassembles_byte_by_byte () =
  let reqs =
    List.mapi
      (fun i query -> { P.id = i + 1; deadline_ms = None; query })
      [ P.Stats; P.Hitting { game = "ring"; n = 4; beta = 2. } ]
  in
  let buf = Buffer.create 256 in
  List.iter (fun r -> P.write_framed buf (P.encode_request r)) reqs;
  let stream = Buffer.contents buf in
  let reader = P.Reader.create () in
  let out = ref [] in
  String.iter
    (fun ch ->
      P.Reader.feed reader (Bytes.make 1 ch) ~len:1;
      match P.Reader.next reader with
      | Ok (Some frame) -> out := frame :: !out
      | Ok None -> ()
      | Error msg -> Alcotest.failf "reader error: %s" msg)
    stream;
  let decoded = List.rev_map (fun f -> P.decode_request f) !out in
  check "both frames recovered" true (decoded = List.map (fun r -> Ok r) reqs)

let reader_rejects_oversized_prefix () =
  let reader = P.Reader.create () in
  let evil = Bytes.create 4 in
  Bytes.set_int32_le evil 0 0x7fffffffl;
  P.Reader.feed reader evil ~len:4;
  check "oversized prefix is an error" true (Result.is_error (P.Reader.next reader));
  (* The error is sticky: the stream is unrecoverable. *)
  P.Reader.feed reader (Bytes.make 8 '\x00') ~len:8;
  check "error is sticky" true (Result.is_error (P.Reader.next reader))

(* --- Scheduler ----------------------------------------------------------- *)

(* 8 same-chain mixing queries with distinct eps (one with an
   empirical estimate): a coalescing group that settles at genuinely
   different steps. *)
let group_queries =
  List.mapi
    (fun i eps ->
      let replicas = if i = 3 then 5 else 0 in
      P.Mixing { game = "ring"; n = 6; beta = 1.0; eps; replicas; seed = 11 })
    [ 0.3; 0.25; 0.2; 0.15; 0.12; 0.1; 0.08; 0.05 ]

let jobs_of queries =
  List.mapi (fun i q -> { Serve.Scheduler.tag = (); req_id = i; deadline_ns = None; query = q }) queries

let serial_outcomes queries =
  (* A fresh engine per reference run: the serial arm must not see the
     batch engine's caches. *)
  let engine = Serve.Engine.create ~spectral_cutoff:0 () in
  List.map (fun q -> Serve.Engine.eval engine q) queries

let coalescing_bit_identity () =
  let reference = serial_outcomes group_queries in
  check "reference answers settle" true
    (List.for_all Result.is_ok reference);
  List.iter
    (fun domains ->
      let run pool =
        let engine = Serve.Engine.create ?pool ~spectral_cutoff:0 () in
        let stats = Serve.Scheduler.stats_zero () in
        let outcomes =
          Serve.Scheduler.run_batch engine stats (jobs_of group_queries)
          |> List.map snd
        in
        check
          (Printf.sprintf "one coalesced batch (pool=%d)" domains)
          true
          (stats.Serve.Scheduler.batches = 1
          && stats.Serve.Scheduler.max_batch = List.length group_queries
          && stats.Serve.Scheduler.panel_steps > 0);
        check
          (Printf.sprintf "bit-identical to serial (pool=%d)" domains)
          true (outcomes = reference)
      in
      if domains <= 1 then run None
      else Exec.Pool.with_pool ~domains (fun pool -> run (Some pool)))
    [ 1; 2; 4 ]

let mixed_batch_order_and_routes () =
  let queries =
    [
      P.Mixing { game = "ring"; n = 6; beta = 1.0; eps = 0.25; replicas = 0; seed = 1 };
      P.Stationary { game = "ring"; n = 4; beta = 1.0 };
      P.Mixing { game = "ring"; n = 4; beta = 2.0; eps = 0.2; replicas = 0; seed = 1 };
      P.Hitting { game = "ring"; n = 4; beta = 1.0 };
      P.Mixing { game = "ring"; n = 6; beta = 1.0; eps = 0.1; replicas = 0; seed = 1 };
      P.Mixing { game = "nope"; n = 4; beta = 1.0; eps = 0.25; replicas = 0; seed = 1 };
    ]
  in
  let reference = serial_outcomes queries in
  let engine = Serve.Engine.create ~spectral_cutoff:0 () in
  let stats = Serve.Scheduler.stats_zero () in
  let answered = Serve.Scheduler.run_batch engine stats (jobs_of queries) in
  check "input order preserved" true
    (List.map (fun (j, _) -> j.Serve.Scheduler.req_id) answered = [ 0; 1; 2; 3; 4; 5 ]);
  let outcomes = List.map snd answered in
  check "mixed batch matches serial" true
    (List.map2
       (fun got want ->
         match (got, want) with
         (* Engine.eval reports an unknown game as Bad_request too. *)
         | Error (P.Bad_request _), Error (P.Bad_request _) -> true
         | g, w -> g = w)
       outcomes reference
    |> List.for_all Fun.id);
  check "unknown game is Bad_request" true
    (match List.nth outcomes 5 with Error (P.Bad_request _) -> true | _ -> false)

let dead_on_arrival_deadline () =
  let engine = Serve.Engine.create ~spectral_cutoff:0 () in
  let stats = Serve.Scheduler.stats_zero () in
  let past = Int64.sub (Common.Clock.monotonic_ns ()) 1_000_000L in
  let mk i query = { Serve.Scheduler.tag = (); req_id = i; deadline_ns = Some past; query } in
  let jobs =
    [
      mk 0 (P.Mixing { game = "ring"; n = 6; beta = 1.0; eps = 0.25; replicas = 0; seed = 1 });
      mk 1 (P.Hitting { game = "ring"; n = 4; beta = 1.0 });
    ]
  in
  let outcomes = Serve.Scheduler.run_batch engine stats jobs |> List.map snd in
  check "expired panel job gets the typed error" true
    (List.nth outcomes 0 = Error P.Deadline_exceeded);
  check "expired serial job gets the typed error" true
    (List.nth outcomes 1 = Error P.Deadline_exceeded)

let spectral_group_identity () =
  (* Default cutoff: ring n=6 (64 states, reversible) takes the shared
     eigendecomposition; answers still match serial evaluation. *)
  let queries =
    List.map
      (fun eps -> P.Mixing { game = "ring"; n = 6; beta = 1.0; eps; replicas = 0; seed = 1 })
      [ 0.25; 0.1; 0.05 ]
  in
  let serial_engine = Serve.Engine.create () in
  let reference = List.map (fun q -> Serve.Engine.eval serial_engine q) queries in
  let engine = Serve.Engine.create () in
  let stats = Serve.Scheduler.stats_zero () in
  let outcomes = Serve.Scheduler.run_batch engine stats (jobs_of queries) |> List.map snd in
  check "spectral route" true
    (match List.nth outcomes 0 with
    | Ok (P.Mixing_r m) -> m.P.route = P.Spectral
    | _ -> false);
  check "no panel steps spent" true (stats.Serve.Scheduler.panel_steps = 0);
  check "bit-identical to serial" true (outcomes = reference)

(* --- Server (socket level) ----------------------------------------------- *)

let socket_counter = ref 0

let fresh_socket () =
  incr socket_counter;
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "logitdyn-test-%d-%d.sock" (Unix.getpid ()) !socket_counter)

let with_server ?max_queue ?spectral_cutoff f =
  let socket_path = fresh_socket () in
  let engine = Serve.Engine.create ?spectral_cutoff () in
  let server = Serve.Server.create ?max_queue ~engine ~socket_path () in
  let d = Domain.spawn (fun () -> Serve.Server.serve_forever server) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join d;
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
  @@ fun () -> f ~socket_path server

let overload_rejection () =
  with_server ~max_queue:0 @@ fun ~socket_path _server ->
  let q = P.Mixing { game = "ring"; n = 4; beta = 1.0; eps = 0.25; replicas = 0; seed = 1 } in
  (match Serve.Client.query ~socket_path q with
  | Ok (Error P.Overloaded) -> ()
  | other ->
      Alcotest.failf "expected Overloaded, got %s"
        (match other with
        | Ok (Ok _) -> "a reply"
        | Ok (Error _) -> "another error"
        | Error msg -> "transport error: " ^ msg));
  (* Stats bypasses the queue entirely and still counts the reject. *)
  match Serve.Client.query ~socket_path P.Stats with
  | Ok (Ok (P.Stats_r s)) ->
      check "reject counted" true (s.P.rejected = 1);
      check "nothing served through the queue" true (s.P.served = 0)
  | _ -> Alcotest.fail "stats not served under overload"

let cross_client_coalescing () =
  let reference = serial_outcomes group_queries in
  with_server ~spectral_cutoff:0 @@ fun ~socket_path _server ->
  let conns =
    List.map
      (fun _ ->
        match Serve.Client.connect ~socket_path with
        | Ok c -> c
        | Error msg -> Alcotest.failf "connect: %s" msg)
      group_queries
  in
  Fun.protect ~finally:(fun () -> List.iter Serve.Client.close conns)
  @@ fun () ->
  (* All eight requests go out before any response is awaited, so the
     server sees them as concurrent load from eight clients. *)
  List.iter2
    (fun c query ->
      match Serve.Client.send c { P.id = 1; deadline_ms = None; query } with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "send: %s" msg)
    conns group_queries;
  let outcomes =
    List.map
      (fun c ->
        match Serve.Client.recv c with
        | Ok resp -> resp.P.result
        | Error msg -> Alcotest.failf "recv: %s" msg)
      conns
  in
  check "eight clients, bit-identical to eight serial runs" true
    (outcomes = reference)

let drain_answers_in_flight () =
  with_server ~spectral_cutoff:0 @@ fun ~socket_path server ->
  let c =
    match Serve.Client.connect ~socket_path with
    | Ok c -> c
    | Error msg -> Alcotest.failf "connect: %s" msg
  in
  Fun.protect ~finally:(fun () -> Serve.Client.close c)
  @@ fun () ->
  let total = 6 in
  for i = 1 to total do
    let query =
      P.Mixing
        { game = "ring"; n = 6; beta = 1.0; eps = 0.25 /. float_of_int i;
          replicas = 0; seed = 1 }
    in
    match Serve.Client.send c { P.id = i; deadline_ms = None; query } with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "send %d: %s" i msg
  done;
  (* Stop while the pipeline is (at least partly) in flight: the drain
     must still answer every request, in order. *)
  Serve.Server.stop server;
  for i = 1 to total do
    match Serve.Client.recv c with
    | Ok resp ->
        check (Printf.sprintf "response %d in order" i) true (resp.P.req_id = i);
        check (Printf.sprintf "response %d is an answer" i) true
          (Result.is_ok resp.P.result)
    | Error msg -> Alcotest.failf "response %d lost in drain: %s" i msg
  done;
  (* After the drain the server closes the connection. *)
  match Serve.Client.recv c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected EOF after drain"

let corrupt_bytes_get_bad_request () =
  with_server @@ fun ~socket_path _server ->
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  (* A well-formed length prefix over junk bytes: framing-level
     corruption the server must answer (id 0), not crash on. *)
  let junk = Bytes.make 12 '\xde' in
  let msg = Bytes.create 16 in
  Bytes.set_int32_le msg 0 12l;
  Bytes.blit junk 0 msg 4 12;
  let _ = Unix.write fd msg 0 16 in
  let reader = P.Reader.create () in
  let buf = Bytes.create 4096 in
  let rec next_frame () =
    match P.Reader.next reader with
    | Ok (Some frame) -> frame
    | Error msg -> Alcotest.failf "client reader: %s" msg
    | Ok None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Alcotest.fail "server closed without responding"
        | n ->
            P.Reader.feed reader buf ~len:n;
            next_frame ())
  in
  match P.decode_response (next_frame ()) with
  | Ok { P.req_id = 0; result = Error (P.Bad_request _) } -> ()
  | Ok _ -> Alcotest.fail "expected an id-0 Bad_request"
  | Error msg -> Alcotest.failf "undecodable response: %s" msg

let suites =
  [
    ( "serve.cli-flags",
      [
        Alcotest.test_case "conflict matrix" `Quick cli_flags_matrix;
        Alcotest.test_case "beta grid resolution" `Quick cli_flags_betas;
      ] );
    ( "serve.protocol",
      [
        Alcotest.test_case "request round-trips" `Quick request_roundtrip;
        Alcotest.test_case "response round-trips" `Quick response_roundtrip;
        Alcotest.test_case "corrupt frames rejected" `Quick corrupt_frames_rejected;
        Alcotest.test_case "reader reassembles byte-by-byte" `Quick
          reader_reassembles_byte_by_byte;
        Alcotest.test_case "reader rejects oversized prefix" `Quick
          reader_rejects_oversized_prefix;
      ] );
    ( "serve.scheduler",
      [
        Alcotest.test_case "coalesced = serial (pools 1/2/4)" `Quick
          coalescing_bit_identity;
        Alcotest.test_case "mixed batch: order and routes" `Quick
          mixed_batch_order_and_routes;
        Alcotest.test_case "expired deadline is typed" `Quick
          dead_on_arrival_deadline;
        Alcotest.test_case "spectral group = serial" `Quick spectral_group_identity;
      ] );
    ( "serve.server",
      [
        Alcotest.test_case "overload rejection" `Quick overload_rejection;
        Alcotest.test_case "cross-client coalescing" `Quick cross_client_coalescing;
        Alcotest.test_case "drain answers in-flight requests" `Quick
          drain_answers_in_flight;
        Alcotest.test_case "corrupt bytes get Bad_request" `Quick
          corrupt_bytes_get_bad_request;
      ] );
  ]
