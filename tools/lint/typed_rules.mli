(** The typed rule catalogue: domain-capture (writes to captured
    mutable state inside [Exec.Pool] closures), bigarray-boxing
    (Bigarray access with a non-concrete kind/layout hits the generic
    boxed path), unchecked-unix-result (Unix results and EINTR/EAGAIN
    branches in lib/serve and lib/store must be handled). *)

val all : Typed.rule list
