open Helpers

(* ----- Tridiag ----- *)

let tridiag_known_2x2 () =
  (* [[2,1],[1,2]]: eigenvalues 3 and 1, vectors (1,1)/(1,-1). *)
  let values, vectors = Linalg.Tridiag.eigensystem ~diag:[| 2.; 2. |] ~off:[| 1. |] in
  check_array ~tol:1e-12 "values" [| 3.; 1. |] values;
  let v0 = Linalg.Mat.col vectors 0 in
  check_float ~tol:1e-12 "vector" 1. (v0.(0) /. v0.(1))

let tridiag_single () =
  let values, _ = Linalg.Tridiag.eigensystem ~diag:[| 7. |] ~off:[||] in
  check_array "1x1" [| 7. |] values

let tridiag_free_particle () =
  (* Discrete Laplacian-like matrix: diag 0, off 1, size n: eigenvalues
     2 cos(k pi / (n+1)). *)
  let n = 6 in
  let values =
    Linalg.Tridiag.eigenvalues ~diag:(Array.make n 0.) ~off:(Array.make (n - 1) 1.)
  in
  let expected =
    Array.init n (fun k ->
        2. *. cos (float_of_int (k + 1) *. Float.pi /. float_of_int (n + 1)))
  in
  check_array ~tol:1e-10 "Chebyshev spectrum" expected values

let tridiag_matches_jacobi =
  QCheck.Test.make ~name:"tridiag = jacobi on random tridiagonal matrices"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let n = 2 + Prob.Rng.int r 12 in
      let diag = Array.init n (fun _ -> Prob.Rng.float r -. 0.5) in
      let off = Array.init (n - 1) (fun _ -> Prob.Rng.float r -. 0.5) in
      let dense =
        Linalg.Mat.init n n (fun i j ->
            if i = j then diag.(i)
            else if abs (i - j) = 1 then off.(Int.min i j)
            else 0.)
      in
      let jacobi = Linalg.Eigen.eigenvalues dense in
      let tri = Linalg.Tridiag.eigenvalues ~diag ~off in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) jacobi tri)

let tridiag_eigenvectors_valid =
  QCheck.Test.make ~name:"tridiag eigenvectors satisfy A v = lambda v" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create (seed + 13) in
      let n = 2 + Prob.Rng.int r 8 in
      let diag = Array.init n (fun _ -> Prob.Rng.float r) in
      let off = Array.init (n - 1) (fun _ -> Prob.Rng.float r) in
      let dense =
        Linalg.Mat.init n n (fun i j ->
            if i = j then diag.(i)
            else if abs (i - j) = 1 then off.(Int.min i j)
            else 0.)
      in
      let values, vectors = Linalg.Tridiag.eigensystem ~diag ~off in
      let ok = ref true in
      for k = 0 to n - 1 do
        let v = Linalg.Mat.col vectors k in
        let av = Linalg.Mat.mulv dense v in
        Array.iteri
          (fun i x -> if Float.abs (x -. (values.(k) *. v.(i))) > 1e-8 then ok := false)
          av
      done;
      !ok)

let tridiag_birth_death_agreement () =
  (* Birth_death.decomposition (tridiag path) must reproduce the dense
     Jacobi spectrum of the symmetrised chain. *)
  let bd =
    Markov.Birth_death.create ~up:[| 0.3; 0.25; 0.2; 0. |]
      ~down:[| 0.; 0.15; 0.3; 0.45 |]
  in
  let values, _ = Markov.Birth_death.decomposition bd in
  let dense = Markov.Birth_death.spectrum bd in
  check_array ~tol:1e-10 "decomposition = jacobi spectrum" dense values

let tridiag_invalid () =
  check_raises_invalid "length mismatch" (fun () ->
      ignore (Linalg.Tridiag.eigensystem ~diag:[| 1.; 2. |] ~off:[||]))

(* ----- Absorbing ----- *)

let absorbing_gambler () =
  (* Gambler's ruin on {0..4}: absorbing at 0 and 4. From i:
     P(absorb at 4) = i/4, E[steps] = i(4-i). *)
  let rows =
    Array.init 5 (fun i ->
        if i = 0 || i = 4 then [| (i, 1.) |]
        else [| (i - 1, 0.5); (i + 1, 0.5) |])
  in
  let chain = Markov.Chain.of_rows rows in
  let a = Markov.Absorbing.analyse chain in
  for i = 1 to 3 do
    check_float ~tol:1e-9
      (Printf.sprintf "ruin prob from %d" i)
      (float_of_int i /. 4.)
      (Markov.Absorbing.absorption_probability a ~start:i ~target:4);
    check_float ~tol:1e-9
      (Printf.sprintf "ruin time from %d" i)
      (float_of_int (i * (4 - i)))
      (Markov.Absorbing.expected_absorption_time a i)
  done;
  check_float "absorbing state" 0. (Markov.Absorbing.expected_absorption_time a 0);
  check_float "prob from absorbing" 1.
    (Markov.Absorbing.absorption_probability a ~start:4 ~target:4)

let absorbing_no_absorbing_state () =
  let cycle = Markov.Chain.of_rows [| [| (1, 1.) |]; [| (0, 1.) |] |] in
  check_raises_invalid "no absorbing state" (fun () ->
      ignore (Markov.Absorbing.analyse cycle))

let absorbing_br_coordination () =
  (* BR chain of a symmetric coordination game: from an off-diagonal
     profile the two equilibria are reached with probability 1/2. *)
  let game =
    Games.Coordination.to_game (Games.Coordination.of_deltas ~delta0:1. ~delta1:1.)
  in
  let a = Markov.Absorbing.analyse (Logit.Best_response.chain game) in
  check_float ~tol:1e-9 "split" 0.5
    (Markov.Absorbing.absorption_probability a ~start:1 ~target:0);
  check_float ~tol:1e-9 "split other" 0.5
    (Markov.Absorbing.absorption_probability a ~start:1 ~target:3)

(* ----- Metastability ----- *)

let metastability_two_state () =
  (* Slow two-state chain: the sign partition must separate the two
     states. *)
  let chain =
    Markov.Chain.of_rows
      [| [| (0, 0.99); (1, 0.01) |]; [| (0, 0.01); (1, 0.99) |] |]
  in
  let pi = [| 0.5; 0.5 |] in
  let negative, positive, lambda2 = Logit.Metastability.slow_partition chain pi in
  check_float ~tol:1e-12 "lambda2" 0.98 lambda2;
  check_int "split sizes" 1 (List.length negative);
  check_int "split sizes'" 1 (List.length positive);
  check_float ~tol:1e-9 "escape scale" 50.
    (Logit.Metastability.escape_time_scale ~lambda2)

let metastability_recovers_weight_cut () =
  let cg = Games.Curve_game.create ~players:6 ~global:2. ~local:1. in
  let game = Games.Curve_game.to_game cg in
  let space = Games.Curve_game.space cg in
  let beta = 3.5 in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary space (Games.Curve_game.potential cg) ~beta in
  let negative, positive, _ = Logit.Metastability.slow_partition chain pi in
  let shell = Games.Curve_game.shell cg in
  let is_cut side threshold =
    List.for_all (fun i -> Games.Strategy_space.weight space i < threshold) side
    && List.length side
       = List.length
           (List.filter
              (fun i -> Games.Strategy_space.weight space i < threshold)
              (List.init (Games.Game.size game) Fun.id))
  in
  check_true "partition is a weight cut near the shell"
    (is_cut negative shell || is_cut positive shell
    || is_cut negative (shell + 1)
    || is_cut positive (shell + 1))

let metastability_restricted () =
  let pi = [| 0.2; 0.3; 0.5 |] in
  let r = Logit.Metastability.restricted_distribution pi (fun i -> i < 2) in
  check_array ~tol:1e-12 "conditioned" [| 0.4; 0.6; 0. |] r;
  check_raises_invalid "zero mass" (fun () ->
      ignore (Logit.Metastability.restricted_distribution pi (fun _ -> false)))

let metastability_curve_shape () =
  (* Basin TV collapses before global TV moves. *)
  let cg = Games.Curve_game.create ~players:6 ~global:2. ~local:1. in
  let game = Games.Curve_game.to_game cg in
  let space = Games.Curve_game.space cg in
  let beta = 4.0 in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary space (Games.Curve_game.potential cg) ~beta in
  let shell = Games.Curve_game.shell cg in
  let basin i = Games.Strategy_space.weight space i < shell in
  let curve =
    Logit.Metastability.basin_tv_curve chain pi ~basin ~start:0 ~steps:60
  in
  let basin_tv, global_tv = curve.(60) in
  check_true "basin equilibrated" (basin_tv < 0.15);
  check_true "globally still far" (global_tv > 0.6)

(* ----- X6 registry ----- *)

let x6_runs () =
  let tables = (Experiments.Registry.find "x6").Experiments.Registry.run ~quick:true in
  check_int "two tables" 2 (List.length tables);
  let rendered = Experiments.Table.render (List.hd tables) in
  check_true "confirms weight cut" (contains_substring rendered "yes")

let suites =
  [
    ( "linalg.tridiag",
      [
        test "known 2x2" tridiag_known_2x2;
        test "1x1" tridiag_single;
        test "Chebyshev spectrum" tridiag_free_particle;
        test "birth-death agreement" tridiag_birth_death_agreement;
        test "invalid input" tridiag_invalid;
        qcheck tridiag_matches_jacobi;
        qcheck tridiag_eigenvectors_valid;
      ] );
    ( "markov.absorbing",
      [
        test "gambler's ruin" absorbing_gambler;
        test "no absorbing state" absorbing_no_absorbing_state;
        test "BR coordination split" absorbing_br_coordination;
      ] );
    ( "logit.metastability",
      [
        test "two-state" metastability_two_state;
        test "recovers weight cut" metastability_recovers_weight_cut;
        test "restricted distribution" metastability_restricted;
        test "basin vs global TV" metastability_curve_shape;
        test "x6 experiment runs" x6_runs;
      ] );
  ]

(* ----- Mean field (appended) ----- *)

let mean_field_hot_clique_single_point () =
  (* At beta = 0 the drift is (n-k)/2n - k/2n: single stable point at n/2. *)
  let points = Logit.Mean_field.clique_fixed_points ~n:20 ~delta0:1. ~delta1:1. ~beta:0. in
  check_int "one fixed point" 1 (List.length points);
  (match points with
  | [ (k, `Stable) ] -> check_true "at the centre" (k = 10)
  | _ -> Alcotest.fail "expected a single stable centre")

let mean_field_cold_clique_bistable () =
  let points =
    Logit.Mean_field.clique_fixed_points ~n:20 ~delta0:1. ~delta1:1. ~beta:0.5
  in
  let stable = List.filter (fun (_, kind) -> kind = `Stable) points in
  let unstable = List.filter (fun (_, kind) -> kind = `Unstable) points in
  check_int "two stable wells" 2 (List.length stable);
  check_int "one barrier top" 1 (List.length unstable);
  (match unstable with
  | [ (k, _) ] ->
      let kstar = Games.Graphical.clique_kstar ~n:20 ~delta0:1. ~delta1:1. in
      check_true "barrier near kstar" (abs (k - kstar) <= 1)
  | _ -> ())

let mean_field_drift_matches_rates () =
  let phi k = float_of_int (k * k) /. 10. in
  let bd = Logit.Lumping.weight_symmetric ~players:8 ~beta:0.7 phi in
  for k = 0 to 8 do
    check_float ~tol:1e-12 "drift = up - down"
      (Markov.Birth_death.up bd k -. Markov.Birth_death.down bd k)
      (Logit.Mean_field.drift ~players:8 ~beta:0.7 phi k)
  done

let mean_field_flow_reaches_well () =
  (* Starting past the barrier, the flow must slide into the nearest well. *)
  let n = 20 and beta = 0.5 in
  let phi k = Games.Graphical.clique_potential ~n ~delta0:1. ~delta1:1. k in
  let traj =
    Logit.Mean_field.trajectory ~players:n ~beta phi ~start:14. ~steps:2_000
  in
  check_true "converges to the 1-well" (traj.(2_000) > 18.);
  let traj0 =
    Logit.Mean_field.trajectory ~players:n ~beta phi ~start:6. ~steps:2_000
  in
  check_true "converges to the 0-well" (traj0.(2_000) < 2.)

let suites =
  suites
  @ [
      ( "logit.mean_field",
        [
          test "hot clique: single point" mean_field_hot_clique_single_point;
          test "cold clique: bistable" mean_field_cold_clique_bistable;
          test "drift matches rates" mean_field_drift_matches_rates;
          test "flow reaches wells" mean_field_flow_reaches_well;
        ] );
    ]
