open Games

let update_distribution game ~beta ~player idx =
  if beta < 0. then invalid_arg "Logit_dynamics: beta must be non-negative";
  let space = Game.space game in
  let m = Strategy_space.num_strategies space player in
  let log_weights =
    Array.init m (fun a ->
        beta *. Game.utility game player (Strategy_space.replace space idx player a))
  in
  Prob.Logspace.normalize_logs log_weights

let transition_row game ~beta idx =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let inv_n = 1. /. float_of_int n in
  let self = ref 0. in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let sigma = update_distribution game ~beta ~player:i idx in
    let current = Strategy_space.player_strategy space idx i in
    Array.iteri
      (fun a p ->
        if a = current then self := !self +. (inv_n *. p)
        else if p > 0. then
          entries := (Strategy_space.replace space idx i a, inv_n *. p) :: !entries)
      sigma
  done;
  if !self > 0. then (idx, !self) :: !entries else !entries

let chain ?pool game ~beta =
  Markov.Chain.of_function ?pool (Game.size game) (fun idx ->
      transition_row game ~beta idx)

let step rng game ~beta idx =
  let space = Game.space game in
  let player = Prob.Rng.int rng (Strategy_space.num_players space) in
  let sigma = update_distribution game ~beta ~player idx in
  let a = Prob.Rng.categorical rng sigma in
  Strategy_space.replace space idx player a

let trajectory rng game ~beta ~start ~steps =
  if steps < 0 then invalid_arg "Logit_dynamics.trajectory: negative steps";
  let out = Array.make (steps + 1) start in
  for k = 1 to steps do
    out.(k) <- step rng game ~beta out.(k - 1)
  done;
  out

let best_response_probability game ~beta idx =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let sigma = update_distribution game ~beta ~player:i idx in
    let best = Game.best_responses game i idx in
    List.iter (fun a -> acc := !acc +. sigma.(a)) best
  done;
  !acc /. float_of_int n
