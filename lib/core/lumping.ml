let logistic x =
  let e = exp (-.Float.abs x) in
  if x >= 0. then e /. (1. +. e) else 1. /. (1. +. e)

let weight_symmetric ~players ~beta phi_of_weight =
  if players < 1 then invalid_arg "Lumping.weight_symmetric: need players";
  if beta < 0. then invalid_arg "Lumping.weight_symmetric: beta must be non-negative";
  let n = float_of_int players in
  let up =
    Array.init (players + 1) (fun k ->
        if k = players then 0.
        else
          (* A 0-player is selected (prob (n-k)/n) and adopts 1 with the
             two-point logit probability on φ(k) vs φ(k+1). *)
          (n -. float_of_int k) /. n
          *. logistic (beta *. (phi_of_weight (k + 1) -. phi_of_weight k)))
  in
  let down =
    Array.init (players + 1) (fun k ->
        if k = 0 then 0.
        else
          float_of_int k /. n
          *. logistic (beta *. (phi_of_weight (k - 1) -. phi_of_weight k)))
  in
  Markov.Birth_death.create ~up ~down

let log_binomial n k =
  if k < 0 || k > n then invalid_arg "Lumping.log_binomial: k out of range";
  let k = Int.min k (n - k) in
  let acc = ref 0. in
  for i = 1 to k do
    acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
  done;
  !acc

let stationary_weights ~players ~beta phi_of_weight =
  let log_w =
    Array.init (players + 1) (fun k ->
        log_binomial players k -. (beta *. phi_of_weight k))
  in
  Prob.Logspace.normalize_logs log_w

let clique ~n ~delta0 ~delta1 ~beta =
  weight_symmetric ~players:n ~beta (fun k ->
      Games.Graphical.clique_potential ~n ~delta0 ~delta1 k)

let curve ~game ~beta =
  let players = Games.Strategy_space.num_players (Games.Curve_game.space game) in
  weight_symmetric ~players ~beta (fun k ->
      Games.Curve_game.potential_of_weight game k)

let dominant_lower_bound ~players ~strategies ~beta =
  if players < 1 || strategies < 2 then
    invalid_arg "Lumping.dominant_lower_bound: need players >= 1, strategies >= 2";
  if beta < 0. then invalid_arg "Lumping.dominant_lower_bound: beta >= 0";
  let n = float_of_int players in
  let m1 = float_of_int (strategies - 1) in
  (* At the origin a player sees all-zero opponents: strategy 0 pays 0,
     the others pay -1; anywhere else every strategy pays -1, so
     updates are uniform over the m strategies. *)
  let stick = 1. /. (1. +. (m1 *. exp (-.beta))) in
  (* 1 - stick computed without cancellation (it underflows to 0 for
     beta around 40, breaking irreducibility). *)
  let leave = m1 *. exp (-.beta) /. (1. +. (m1 *. exp (-.beta))) in
  let up =
    Array.init (players + 1) (fun k ->
        if k = players then 0.
        else if k = 0 then leave
        else (n -. float_of_int k) /. n *. (m1 /. (m1 +. 1.)))
  in
  let down =
    Array.init (players + 1) (fun k ->
        if k = 0 then 0.
        else if k = 1 then 1. /. n *. stick
        else float_of_int k /. n /. (m1 +. 1.))
  in
  Markov.Birth_death.create ~up ~down
