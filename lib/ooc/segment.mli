(** The on-disk segmented chain format.

    A segment file holds the transposed (CSC) layout of a Markov
    chain — the same three arrays {!Markov.Chain.to_csc} exposes —
    split into column-range blocks so compute streams the matrix
    block by block without ever materialising it:

    {v
      [Store.Codec frame, kind Segment]   header: sizes, region
                                          offsets, block table
      [zero padding to an 8-byte boundary]
      col_start   (n+1) x int64 LE        column offsets
      rows        nnz   x int64 LE        source states, ascending
                                          per column
      probs       nnz   x float64 LE      IEEE-754 bit patterns
    v}

    Indices are int64 on disk so an [mmap] with the Bigarray [Int]
    kind reads them back as unboxed native ints — an int32 kind would
    box every element inside the gather loop. The format is declared
    little-endian; {!open_} and {!pack} refuse big-endian or 32-bit
    hosts with a clean error rather than misreading.

    Each block's byte extent (its col_start slice + rows slice +
    probs slice) is CRC-32-checked via the header's block table and
    kept under {!Store.Codec.max_payload_bytes}, the same u32 ceiling
    the framing layer enforces. The header frame is written {e last}
    into a byte extent reserved up front, and the whole file is
    staged under a temp name and [rename]d into place — a crashed
    build never publishes a file that {!open_} accepts. *)

(** The on-disk layout version, stamped into every header; files with
    any other version are rejected at {!open_}. *)
val layout_version : int

(** Default entries per block (~4 MiB of rows+probs): the unit of
    build memory, stream-mode fetch size and pool dispatch. *)
val default_block_nnz : int

(** One block of the column partition: columns [col_lo, col_hi) own
    entries [k_lo, k_hi) of the rows/probs regions, with [crc] over
    the block's concatenated region bytes. *)
type block = { col_lo : int; col_hi : int; k_lo : int; k_hi : int; crc : int }

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** A readable window onto one block, uniform across access modes:
    column [j ∈ [v_col_lo, v_col_hi)] owns entries
    [cs.(j - cs_shift), cs.(j - cs_shift + 1)) — global entry index
    [k] lives at [rows.(k - k_shift)]/[probs.(k - k_shift)]. In mmap
    mode the arrays are zero-copy windows over the whole file
    (shifts 0); in stream mode they are freshly read buffers holding
    just the block (shifts [v_col_lo]/[k_lo]). Structural indices
    are validated (at open for mmap, per fetch for stream), so
    consumers may use unchecked accesses like {!Markov.Chain}'s
    kernels do. *)
type view = {
  v_col_lo : int;
  v_col_hi : int;
  cs : int_ba;
  cs_shift : int;
  rows : int_ba;
  probs : float_ba;
  k_shift : int;
}

(** How an open segment reads its blocks.

    [Mmap] maps the three regions read-only via [Unix.map_file]:
    zero-copy, the page cache decides residency. [Stream] keeps only
    the file descriptor and reads each requested block into fresh
    bounded buffers — peak RSS stays O(blocks in flight) regardless
    of nnz, the mode behind the bench's memory-bound claim. Both
    modes feed identical bits to the kernels. *)
type access = Mmap | Stream

type t

(** [open_ ?access path] validates the header (framing, layout
    version, offsets, block table vs file size) and, in mmap mode,
    the structural arrays (col_start monotonicity, row indices in
    range), so downstream kernels can gather unchecked. [Error] on
    any validation failure and on big-endian or 32-bit hosts; never
    an exception for a malformed file. *)
val open_ : ?access:access -> string -> (t, string) result

(** [close t] releases the descriptor (idempotent). Mapped views stay
    valid until collected; stream fetches on a closed segment fail. *)
val close : t -> unit

val size : t -> int
val nnz : t -> int
val blocks : t -> block array
val num_blocks : t -> int
val access : t -> access
val path : t -> string

(** [file_bytes t] is the total on-disk size implied by the header
    (validated against the real file at open). *)
val file_bytes : t -> int

(** [view t b] is a readable window onto block [b]. Mmap mode is
    zero-copy and allocation-free; stream mode reads and validates
    the block's bytes (raising [Sys_error] on corruption introduced
    after open). Safe to call concurrently from pool domains in
    either mode. *)
val view : t -> int -> view

(** [verify t] recomputes every block's CRC against the header —
    the deep integrity check behind [logitdyn chain verify].
    [Error messages], one per corrupt block. *)
val verify : t -> (unit, string list) result

(** What {!pack} built: states, stored transitions, block count and
    total file bytes. *)
type build_info = { b_n : int; b_nnz : int; b_blocks : int; b_bytes : int }

(** [pack ?block_nnz ~path ~size ~row ()] streams the chain defined
    by [row] (same contract as {!Markov.Chain.of_function}) into a
    segment file at [path] without materialising it: pass 1 counts
    column degrees (O(size) memory), pass 2 spills entries to
    per-block temp files and counting-transposes each block into
    place (O(block) memory). Rows pass through
    {!Markov.Chain.normalized_row}, so the stored probabilities are
    bit-identical to [Chain.of_function size row]. [row] must be
    deterministic — the two passes must see the same entries, and
    any drift fails loudly. Raises [Invalid_argument] on invalid
    rows or an over-dense column, [Unix.Unix_error]/[Sys_error] on
    I/O failure; the target path is only ever replaced atomically. *)
val pack :
  ?block_nnz:int ->
  path:string ->
  size:int ->
  row:(int -> (int * float) list) ->
  unit ->
  build_info

(** [pack_chain ?block_nnz ~path chain] writes an existing in-RAM
    chain as a segment. Its rows are already normalised and are
    written as-is (renormalising would perturb the bits), so the
    segment gathers bit-identically to [chain] itself. *)
val pack_chain : ?block_nnz:int -> path:string -> Markov.Chain.t -> build_info
