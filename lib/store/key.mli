(** Canonical cache keys: the hash of a build recipe.

    A key is a kind (what is being built — ["chain"],
    ["experiment-tables"], …) plus an ordered list of named fields
    describing the full recipe: game id, player count, β, dynamics
    variant, layout/format versions. Two builds share an artifact iff
    their canonical texts are byte-identical, so every input that can
    change the result must appear as a field — and encoding versions
    are fields too, which is how stale artifacts from an older layout
    are orphaned rather than misread (see DESIGN.md, "Artifact
    store"). *)

type t

(** [v ~kind fields] builds a key. [kind], field names and values must
    be non-empty-kind printable recipe text: newlines are forbidden
    anywhere and ['='] is forbidden in field names, so the canonical
    text is injective. Raises [Invalid_argument] otherwise. *)
val v : kind:string -> (string * string) list -> t

(** [kind t] is the key's kind string. *)
val kind : t -> string

(** [digest t] is the 32-hex-character MD5 of the canonical text — the
    artifact's file name in the store. *)
val digest : t -> string

(** [describe t] is the canonical text: [kind], newline, then one
    [name=value] line per field in the order given to {!v}. *)
val describe : t -> string

(** [float_field x] renders a float exactly (hexadecimal [%h] notation)
    for use as a field value — two βs map to the same key iff they are
    the same IEEE-754 value. *)
val float_field : float -> string
