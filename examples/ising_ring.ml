(* The Ising model as a graphical coordination game.

   With delta0 = delta1 the coordination game has no risk-dominant
   equilibrium and the logit dynamics coincides with single-site
   Glauber dynamics on the Ising model (Section 1 and 5 of the paper).
   We sweep the inverse temperature and watch (a) the stationary
   magnetisation distribution and (b) the exact mixing time on a ring
   versus the Theorem 5.6/5.7 envelope.

   Run with: dune exec examples/ising_ring.exe *)

let () =
  let n = 10 in
  let delta = 1.0 in
  Printf.printf "Glauber/logit dynamics on the Ising ring, n=%d, delta=%g\n\n" n
    delta;
  let desc = Games.Graphical.ising ~delta (Graphs.Generators.ring n) in
  let game = Games.Graphical.to_game desc in
  let space = Games.Game.space game in
  let phi = Games.Graphical.potential desc in
  Printf.printf "%6s  %8s  %14s  %14s  %12s\n" "beta" "t_mix" "Thm 5.7 lower"
    "Thm 5.6 upper" "E|magnetis.|";
  List.iter
    (fun beta ->
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary space phi ~beta in
      let tmix =
        Markov.Mixing.mixing_time ~max_steps:1_000_000 chain pi
          ~starts:[ Games.Graphical.all_zero desc; Games.Graphical.all_one desc ]
      in
      (* |magnetisation| = |#up - #down| / n under the Gibbs measure. *)
      let mag = ref 0. in
      Array.iteri
        (fun idx p ->
          let w = Games.Strategy_space.weight space idx in
          mag :=
            !mag
            +. (p *. Float.abs (float_of_int ((2 * w) - n)) /. float_of_int n))
        pi;
      Printf.printf "%6.2f  %8s  %14.1f  %14.1f  %12.4f\n" beta
        (match tmix with Some t -> string_of_int t | None -> ">1e6")
        (Logit.Bounds.thm57_tmix_lower ~beta ~delta ())
        (Logit.Bounds.thm56_tmix_upper ~n ~beta ~delta ())
        !mag)
    [ 0.0; 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 2.5 ];
  Printf.printf
    "\nMixing stays within the paper's e^{2*delta*beta} * n log n envelope;\n\
     magnetisation rises towards 1 as beta grows (order without a phase\n\
     transition: the ring is one-dimensional).\n";

  (* Trajectory view: energy relaxation from the all-up start. *)
  let rng = Prob.Rng.create 11 in
  let beta = 1.5 in
  let curve =
    Logit.Dynamics.mean_potential_trajectory rng game phi ~beta
      ~start:(Games.Graphical.all_one desc)
      ~steps:400 ~replicas:50
  in
  let equilibrium = Logit.Gibbs.expected_potential space phi ~beta in
  Printf.printf
    "\nMean potential from the all-1 start at beta=%.1f (equilibrium %.3f):\n"
    beta equilibrium;
  List.iter
    (fun t -> Printf.printf "  t=%4d  Phi = %8.3f\n" t curve.(t))
    [ 0; 50; 100; 200; 400 ]

(* Beyond enumeration: the transfer matrix gives exact equilibrium
   observables for rings of any size. *)
let () =
  let delta = 1.0 in
  let basic = Games.Coordination.of_deltas ~delta0:delta ~delta1:delta in
  let phi a b = Games.Coordination.edge_potential basic a b in
  Printf.printf
    "\nTransfer-matrix exact equilibrium on the n=1000 ring (no enumeration):\n";
  Printf.printf "%6s  %14s  %16s  %18s\n" "beta" "log Z / n"
    "E[phi per edge]" "correlation length";
  List.iter
    (fun beta ->
      let tm = Logit.Transfer_matrix.create ~strategies:2 ~beta phi in
      Printf.printf "%6.2f  %14.6f  %16.6f  %18.3f\n" beta
        (Logit.Transfer_matrix.log_partition tm ~n:1000 /. 1000.)
        (Logit.Transfer_matrix.expected_edge_potential tm ~n:1000)
        (Logit.Transfer_matrix.correlation_length tm))
    [ 0.5; 1.0; 2.0; 3.0; 4.0 ];
  Printf.printf
    "\nThe correlation length stays finite at every beta: the 1-D system\n\
     never orders, matching the slow-but-polynomial ring mixing of Thm 5.6.\n"
