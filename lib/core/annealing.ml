type schedule =
  | Constant of float
  | Linear of { start : float; rate : float }
  | Exponential of { start : float; factor : float }
  | Logarithmic of { scale : float }

let beta_at schedule t =
  if t < 0 then invalid_arg "Annealing.beta_at: negative time";
  let tf = float_of_int t in
  match schedule with
  | Constant c ->
      if c < 0. then invalid_arg "Annealing: negative beta";
      c
  | Linear { start; rate } ->
      if start < 0. || rate < 0. then invalid_arg "Annealing: negative parameter";
      start +. (rate *. tf)
  | Exponential { start; factor } ->
      if start < 0. || factor < 1. then
        invalid_arg "Annealing: need start >= 0 and factor >= 1";
      start *. (factor ** tf)
  | Logarithmic { scale } ->
      if scale <= 0. then invalid_arg "Annealing: need positive scale";
      log (1. +. tf) /. scale

let pp_schedule ppf = function
  | Constant c -> Format.fprintf ppf "constant(%g)" c
  | Linear { start; rate } -> Format.fprintf ppf "linear(%g + %g t)" start rate
  | Exponential { start; factor } ->
      Format.fprintf ppf "exponential(%g * %g^t)" start factor
  | Logarithmic { scale } -> Format.fprintf ppf "log(1+t)/%g" scale

let trajectory rng game schedule ~start ~steps =
  if steps < 0 then invalid_arg "Annealing.trajectory: negative steps";
  let out = Array.make (steps + 1) start in
  for t = 1 to steps do
    let beta = beta_at schedule (t - 1) in
    out.(t) <- Logit_dynamics.step rng game ~beta out.(t - 1)
  done;
  out

let hitting_minimum rng game phi schedule ~start ~max_steps =
  let space = Games.Game.space game in
  let vmin, _, _, _ = Games.Potential.extrema space phi in
  let is_min idx = phi idx <= vmin +. 1e-12 in
  let rec go state t =
    if is_min state then Some t
    else if t >= max_steps then None
    else go (Logit_dynamics.step rng game ~beta:(beta_at schedule t) state) (t + 1)
  in
  go start 0

let final_potential rng game phi schedule ~start ~steps ~replicas =
  if replicas < 1 then invalid_arg "Annealing.final_potential";
  let total = ref 0. in
  for _ = 1 to replicas do
    let traj = trajectory rng game schedule ~start ~steps in
    total := !total +. phi traj.(steps)
  done;
  !total /. float_of_int replicas
