(** Dense row-major matrices of floats. *)

type t = private {
  rows : int;
  cols : int;
  data : float array;  (** row-major, length [rows * cols] *)
}

(** [create rows cols x] is a [rows]×[cols] matrix filled with [x]. *)
val create : int -> int -> float -> t

(** [init rows cols f] has entry [(i, j)] equal to [f i j]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [identity n] is the n×n identity. *)
val identity : int -> t

(** [of_rows rows] builds a matrix from an array of equal-length rows.
    Raises [Invalid_argument] on ragged input or an empty array. *)
val of_rows : float array array -> t

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [get m i j] is entry [(i, j)]. *)
val get : t -> int -> int -> float

(** [set m i j x] writes entry [(i, j)] in place. *)
val set : t -> int -> int -> float -> unit

(** [dims m] is [(rows, cols)]. *)
val dims : t -> int * int

(** [row m i] is a fresh copy of row [i]. *)
val row : t -> int -> float array

(** [col m j] is a fresh copy of column [j]. *)
val col : t -> int -> float array

(** [transpose m] is the transpose. *)
val transpose : t -> t

(** [add a b] is the element-wise sum. Dimensions must agree. *)
val add : t -> t -> t

(** [sub a b] is the element-wise difference. Dimensions must agree. *)
val sub : t -> t -> t

(** [scale a m] multiplies every entry by [a]. *)
val scale : float -> t -> t

(** [mul a b] is the matrix product. Inner dimensions must agree. *)
val mul : t -> t -> t

(** [mulv m x] is the matrix-vector product [m x]. *)
val mulv : t -> Vec.t -> Vec.t

(** [vmul x m] is the vector-matrix product [xᵀ m] (a row vector). *)
val vmul : Vec.t -> t -> Vec.t

(** [pow m k] is [m] raised to the [k]-th power by repeated squaring.
    [m] must be square and [k >= 0]. *)
val pow : t -> int -> t

(** [trace m] is the sum of the diagonal entries of a square matrix. *)
val trace : t -> float

(** [is_square m] tests whether [rows = cols]. *)
val is_square : t -> bool

(** [is_symmetric ?tol m] tests symmetry up to absolute tolerance
    [tol] (default [1e-9]). *)
val is_symmetric : ?tol:float -> t -> bool

(** [max_abs_offdiag m] is [(i, j, v)] where [(i, j)], [i < j], carries
    the off-diagonal entry of largest absolute value [v] of a square
    matrix. Raises [Invalid_argument] if [m] is 1×1 or smaller. *)
val max_abs_offdiag : t -> int * int * float

(** [approx_equal ?tol a b] tests element-wise closeness. *)
val approx_equal : ?tol:float -> t -> t -> bool

(** [pp] prints the matrix one row per line. *)
val pp : Format.formatter -> t -> unit
