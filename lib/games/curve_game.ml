type t = {
  players : int;
  local : float;
  shell : int;
  space : Strategy_space.t;
}

let create ~players ~global ~local =
  if players < 2 then invalid_arg "Curve_game.create: need at least 2 players";
  if not (local > 0. && global > 0.) then
    invalid_arg "Curve_game.create: variations must be positive";
  if local > global +. 1e-12 then
    invalid_arg "Curve_game.create: need local <= global";
  if local < (2. *. global /. float_of_int players) -. 1e-12 then
    invalid_arg "Curve_game.create: need local >= 2*global/players";
  let c = global /. local in
  if Float.abs (c -. Float.round c) > 1e-9 then
    invalid_arg "Curve_game.create: global/local must be an integer";
  {
    players;
    local;
    shell = int_of_float (Float.round c);
    space = Strategy_space.uniform ~players ~strategies:2;
  }

let shell t = t.shell

let potential_of_weight t w =
  if w < 0 || w > t.players then invalid_arg "Curve_game.potential_of_weight";
  let c = t.shell in
  -.t.local *. float_of_int (Int.min c (abs (c - w)))

let potential t idx = potential_of_weight t (Strategy_space.weight t.space idx)

let to_game t =
  Potential.common_interest
    ~name:(Printf.sprintf "curve-game(n=%d,c=%d)" t.players t.shell)
    t.space (potential t)

let space t = t.space
