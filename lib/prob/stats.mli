(** Summary statistics over float samples. *)

(** [mean xs] is the sample mean. Raises [Invalid_argument] on empty
    input. *)
val mean : float array -> float

(** [variance xs] is the unbiased (n-1) sample variance; [0.] for a
    single observation. Raises [Invalid_argument] on empty input. *)
val variance : float array -> float

(** [std xs] is [sqrt (variance xs)]. *)
val std : float array -> float

(** [standard_error xs] is [std xs / sqrt n]. *)
val standard_error : float array -> float

(** [quantile xs q] is the [q]-th quantile ([0 <= q <= 1]) with linear
    interpolation between order statistics. Raises [Invalid_argument]
    on empty input or out-of-range [q]. *)
val quantile : float array -> float -> float

(** [median xs] is [quantile xs 0.5]. *)
val median : float array -> float

(** [min_max xs] is [(min, max)]. Raises [Invalid_argument] on empty
    input. *)
val min_max : float array -> float * float

(** [mean_ci95 xs] is [(mean, halfwidth)] of the normal-approximation
    95% confidence interval for the mean. *)
val mean_ci95 : float array -> float * float

(** [linear_fit xs ys] is [(slope, intercept)] of the least-squares
    line through the points. Raises [Invalid_argument] if fewer than
    two points or degenerate abscissae. Used by the experiments to
    extract growth exponents from [(β, log t_mix)] series. *)
val linear_fit : float array -> float array -> float * float

(** [correlation xs ys] is the Pearson correlation coefficient. *)
val correlation : float array -> float array -> float
