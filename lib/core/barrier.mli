(** Potential-barrier quantities (paper, Section 3.4).

    For a path γ = (x₀, ..., x_k) in the Hamming graph with
    Φ(x₀) ≥ Φ(x_k), ζ(γ) = max_i Φ(x_i) - Φ(x₀); ζ(x,y) is the
    minimum over paths and ζ = max over pairs. Theorems 3.8/3.9 show
    t_mix = exp(βζ(1±o(1))) for large β.

    ζ is computed exactly by a watershed/merge-tree sweep: profiles
    are processed in order of increasing potential while a union–find
    structure tracks connected components of the sub-level sets, each
    remembering its minimum; when two components merge at height h the
    pair formed by their minima realises a barrier of
    h - max(min₁, min₂), and ζ is the maximum such value over all
    merges. This is O(|S| (log |S| + n·m α)) — exact and fast even
    when the all-pairs definition looks quartic. A quadratic
    widest-path (minimax Dijkstra) reference implementation is
    provided for cross-validation. *)

(** [zeta space phi] is ζ for the potential [phi] on [space]. Always
    ≥ 0; equal to 0 exactly when every sub-level set is connected. *)
val zeta : Games.Strategy_space.t -> (int -> float) -> float

(** [widest_path_from space phi src] is, for every profile y, the
    minimax height W(src, y) = min over paths of the maximum potential
    along the path (including endpoints). Dijkstra with max-relaxation;
    O(|S|·n·m·log|S|) per source. *)
val widest_path_from :
  Games.Strategy_space.t -> (int -> float) -> int -> float array

(** [zeta_brute space phi] recomputes ζ from all-pairs widest paths —
    O(|S|²·n·m·log|S|); test oracle only. *)
val zeta_brute : Games.Strategy_space.t -> (int -> float) -> float

(** [zeta_of_weight_potential ~players phi_of_weight] is ζ for a
    weight-symmetric potential on the binary cube, computed on the
    1-dimensional weight path: the cube's sub-level sets are unions of
    weight shells, so the barrier structure collapses onto {0..n}. *)
val zeta_of_weight_potential : players:int -> (int -> float) -> float

(** [zeta_clique ~n ~delta0 ~delta1] is the closed-form
    ζ = Φ_max - max(Φ(0), Φ(1)) of the clique game (Section 5.2);
    with the paper's convention δ₀ ≥ δ₁ this is Φ_max - Φ(1). *)
val zeta_clique : n:int -> delta0:float -> delta1:float -> float
