(** The logit dynamics M^β(G) of a strategic game (paper, Section 2).

    At every step a player i is selected uniformly at random and
    updates her strategy to y with probability

    {v σ_i(y | x) = exp(β·u_i(y, x₋ᵢ)) / Σ_z exp(β·u_i(z, x₋ᵢ)), v}

    giving the ergodic Markov chain of eq. (3). All exponentials are
    evaluated in the log domain so that arbitrarily large β is safe. *)

(** [update_distribution game ~beta ~player idx] is σ_player(· | x)
    for the profile with index [idx], as a probability vector over
    [player]'s strategies. Requires [beta >= 0]. *)
val update_distribution : Games.Game.t -> beta:float -> player:int -> int -> float array

(** [transition_row game ~beta idx] is the sparse row P(x, ·) of
    eq. (3): off-diagonal mass σ_i(y_i|x)/n to each unilateral
    deviation, aggregated self-loop mass on the diagonal. *)
val transition_row : Games.Game.t -> beta:float -> int -> (int * float) list

(** [chain ?pool game ~beta] materialises the full logit chain (profile
    space indexed as in {!Games.Strategy_space}). Memory is
    Θ(size · n · m); guard with {!Games.Game.size} before calling on
    big games. Row construction is embarrassingly parallel: [?pool]
    splits it across domains with identical results. *)
val chain : ?pool:Exec.Pool.t -> Games.Game.t -> beta:float -> Markov.Chain.t

(** [chain_family ?pool game ~betas] materialises the logit chains of a
    whole β-grid as a {!Markov.Family}: each state's utility deltas are
    tabulated exactly once (they do not depend on β) and re-softmaxed
    per grid point, and the planes share one CSR/CSC index structure
    whenever their sparsity agrees (checked, not assumed). Every plane
    is {b bit-identical} to an independent [chain ~beta] build at the
    same β — the log weights are [β·u] with the very same tabulated
    [u], through the same [normalize_logs] softmax, rows assembled in
    {!transition_row}'s exact order and packed by the same
    [of_function] pipeline — for any pool size. Raises
    [Invalid_argument] on an empty grid or a negative β. *)
val chain_family :
  ?pool:Exec.Pool.t -> Games.Game.t -> betas:float list -> Markov.Family.t

(** [step rng game ~beta idx] performs one logit-dynamics step by
    direct simulation (no chain materialisation). *)
val step : Prob.Rng.t -> Games.Game.t -> beta:float -> int -> int

(** [trajectory rng game ~beta ~start ~steps] simulates and returns
    [start = x₀, x₁, ..., x_steps]. *)
val trajectory :
  Prob.Rng.t -> Games.Game.t -> beta:float -> start:int -> steps:int -> int array

(** [best_response_probability game ~beta idx] is the probability that
    the next update is a best response: Σ_i (1/n)·Σ_{y ∈ BR_i(x)}
    σ_i(y|x). Tends to 1 as β → ∞, to the fraction of best-response
    strategies as β → 0. *)
val best_response_probability : Games.Game.t -> beta:float -> int -> float
