open Helpers
open Games

let coordination_game ?(delta0 = 1.0) ?(delta1 = 0.5) () =
  Coordination.to_game (Coordination.of_deltas ~delta0 ~delta1)

(* ----- Logit_dynamics ----- *)

let update_distribution_normalises () =
  let game = coordination_game () in
  List.iter
    (fun beta ->
      Strategy_space.iter (Game.space game) (fun idx ->
          for player = 0 to 1 do
            let sigma =
              Logit.Logit_dynamics.update_distribution game ~beta ~player idx
            in
            let total = Array.fold_left ( +. ) 0. sigma in
            check_float ~tol:1e-12 "normalised" 1. total;
            Array.iter (fun p -> check_true "non-negative" (p >= 0.)) sigma
          done))
    [ 0.0; 1.0; 50.0 ]

let update_distribution_beta_zero_uniform () =
  let game = Zoo.rock_paper_scissors in
  let sigma = Logit.Logit_dynamics.update_distribution game ~beta:0. ~player:0 0 in
  check_array ~tol:1e-12 "uniform at beta 0" (Array.make 3 (1. /. 3.)) sigma

let update_distribution_beta_large_best_response () =
  let game = coordination_game () in
  (* Against an opponent playing 0, strategy 0 pays 1 > 0: at large beta
     the update concentrates there. *)
  let sigma = Logit.Logit_dynamics.update_distribution game ~beta:100. ~player:0 0 in
  check_float ~tol:1e-12 "concentrates" 1. sigma.(0)

let update_distribution_formula () =
  (* Two-point formula: sigma(y)/sigma(x') = exp(beta (u(y) - u(x'))). *)
  let game = coordination_game () in
  let beta = 1.3 in
  let sigma = Logit.Logit_dynamics.update_distribution game ~beta ~player:0 0 in
  let u0 = Game.utility game 0 0
  and u1 = Game.utility game 0 (Strategy_space.replace (Game.space game) 0 0 1) in
  check_float ~tol:1e-12 "ratio" (exp (beta *. (u1 -. u0))) (sigma.(1) /. sigma.(0))

let update_distribution_huge_beta_no_nan () =
  let game = coordination_game () in
  let sigma = Logit.Logit_dynamics.update_distribution game ~beta:1e6 ~player:0 0 in
  Array.iter (fun p -> check_false "no nan" (Float.is_nan p)) sigma;
  check_float ~tol:1e-12 "mass 1" 1. (Array.fold_left ( +. ) 0. sigma)

let transition_row_stochastic () =
  let game = Zoo.battle_of_sexes in
  List.iter
    (fun beta ->
      Strategy_space.iter (Game.space game) (fun idx ->
          let row = Logit.Logit_dynamics.transition_row game ~beta idx in
          let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. row in
          check_float ~tol:1e-12 "row mass" 1. total))
    [ 0.0; 2.0 ]

let transition_matches_eq3 () =
  (* Check P(x, y) = sigma_i(y_i | x)/n for a unilateral deviation. *)
  let game = coordination_game () in
  let beta = 0.8 in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let space = Game.space game in
  Strategy_space.iter space (fun idx ->
      for i = 0 to 1 do
        let sigma = Logit.Logit_dynamics.update_distribution game ~beta ~player:i idx in
        Array.iteri
          (fun a p ->
            let target = Strategy_space.replace space idx i a in
            if target <> idx then
              check_float ~tol:1e-12 "eq (3)" (p /. 2.)
                (Markov.Chain.prob chain idx target))
          sigma
      done)

let chain_is_ergodic () =
  let game = Zoo.matching_pennies in
  let chain = Logit.Logit_dynamics.chain game ~beta:3. in
  check_true "irreducible" (Markov.Chain.is_irreducible chain);
  check_true "aperiodic" (Markov.Chain.is_aperiodic chain)

let step_simulation_consistent () =
  (* Empirical one-step law from direct simulation matches the chain row. *)
  let game = coordination_game () in
  let beta = 1.0 in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let r = rng () in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let next = Logit.Logit_dynamics.step r game ~beta 0 in
    counts.(next) <- counts.(next) + 1
  done;
  Array.iteri
    (fun j c ->
      check_float ~tol:0.01 (Printf.sprintf "one-step law %d" j)
        (Markov.Chain.prob chain 0 j)
        (float_of_int c /. float_of_int n))
    counts

let best_response_probability_monotone () =
  let game = coordination_game () in
  let p0 = Logit.Logit_dynamics.best_response_probability game ~beta:0. 0 in
  let p1 = Logit.Logit_dynamics.best_response_probability game ~beta:2. 0 in
  let p2 = Logit.Logit_dynamics.best_response_probability game ~beta:20. 0 in
  check_true "increasing in beta" (p0 < p1 && p1 < p2);
  check_true "tends to 1" (p2 > 0.99)

let rejects_negative_beta () =
  let game = coordination_game () in
  check_raises_invalid "negative beta" (fun () ->
      ignore (Logit.Logit_dynamics.update_distribution game ~beta:(-1.) ~player:0 0))

(* ----- Gibbs ----- *)

let gibbs_closed_form () =
  let game = coordination_game ~delta0:1.0 ~delta1:1.0 () in
  let phi = Option.get (Potential.recover game) in
  let space = Game.space game in
  let beta = 2.0 in
  let pi = Logit.Gibbs.stationary space phi ~beta in
  (* Recovered potential (shifted so phi(00) = 0): consensus profiles
     at 0, off-diagonal at 1; weights 1, e^{-beta}, e^{-beta}, 1. *)
  check_float ~tol:1e-12 "pi(00)" (1. /. (2. +. (2. *. exp (-.beta)))) pi.(0);
  check_float ~tol:1e-12 "consensus mass equal" pi.(0) pi.(3);
  check_float ~tol:1e-12 "off-diagonal equal" pi.(1) pi.(2);
  check_float ~tol:1e-12 "ratio" (exp beta) (pi.(0) /. pi.(1))

let gibbs_is_stationary_and_reversible =
  QCheck.Test.make ~name:"Gibbs reversibility of logit chains" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi = random_potential_game ~players:3 ~strategies:2 seed in
      let beta = 1.5 in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary (Game.space game) phi ~beta in
      Markov.Stationary.residual chain pi < 1e-10
      && Markov.Chain.is_reversible chain pi)

let gibbs_beta_zero_uniform () =
  let space = Strategy_space.uniform ~players:3 ~strategies:2 in
  let pi = Logit.Gibbs.stationary space (fun idx -> float_of_int idx) ~beta:0. in
  check_array ~tol:1e-12 "uniform" (Array.make 8 0.125) pi

let gibbs_concentrates_on_minima () =
  let game = coordination_game ~delta0:2.0 ~delta1:1.0 () in
  let phi = Option.get (Potential.recover game) in
  let pi = Logit.Gibbs.stationary (Game.space game) phi ~beta:50. in
  (* (0,0) is the unique potential minimiser. *)
  check_true "mass on risk dominant" (pi.(0) > 0.999)

let gibbs_partition_and_pi_min () =
  let space = Strategy_space.uniform ~players:2 ~strategies:2 in
  let phi idx = float_of_int idx in
  let beta = 1.0 in
  let direct =
    log (List.fold_left (fun acc i -> acc +. exp (-.float_of_int i)) 0. [ 0; 1; 2; 3 ])
  in
  check_float ~tol:1e-12 "log partition" direct
    (Logit.Gibbs.log_partition space phi ~beta);
  let pi = Logit.Gibbs.stationary space phi ~beta in
  check_float ~tol:1e-12 "pi_min" pi.(3) (Logit.Gibbs.pi_min space phi ~beta)

let gibbs_of_game () =
  check_true "of_game on potential game"
    (Logit.Gibbs.of_game (coordination_game ()) ~beta:1. <> None);
  check_true "of_game rejects pennies"
    (Logit.Gibbs.of_game Zoo.matching_pennies ~beta:1. = None)

let gibbs_expected_potential_decreasing () =
  let game = coordination_game () in
  let phi = Option.get (Potential.recover game) in
  let space = Game.space game in
  let e1 = Logit.Gibbs.expected_potential space phi ~beta:0. in
  let e2 = Logit.Gibbs.expected_potential space phi ~beta:1. in
  let e3 = Logit.Gibbs.expected_potential space phi ~beta:5. in
  check_true "decreasing in beta" (e1 > e2 && e2 > e3)

(* ----- Lumping ----- *)

let logistic_values () =
  check_float ~tol:1e-12 "logistic 0" 0.5 (Logit.Lumping.logistic 0.);
  check_float ~tol:1e-15 "logistic large" 0. (Logit.Lumping.logistic 800.);
  check_float ~tol:1e-12 "logistic -large" 1. (Logit.Lumping.logistic (-800.));
  check_float ~tol:1e-12 "logistic symmetric" 1.
    (Logit.Lumping.logistic 2. +. Logit.Lumping.logistic (-2.))

let log_binomial_values () =
  check_float ~tol:1e-9 "C(5,2)" (log 10.) (Logit.Lumping.log_binomial 5 2);
  check_float ~tol:1e-9 "C(10,0)" 0. (Logit.Lumping.log_binomial 10 0);
  check_float ~tol:1e-9 "C(10,10)" 0. (Logit.Lumping.log_binomial 10 10);
  check_raises_invalid "out of range" (fun () ->
      ignore (Logit.Lumping.log_binomial 3 4))

let project_full_pi space pi players =
  let out = Array.make (players + 1) 0. in
  Array.iteri
    (fun idx p ->
      let w = Strategy_space.weight space idx in
      out.(w) <- out.(w) +. p)
    pi;
  out

let lumping_clique_stationary_agrees () =
  let n = 5 and delta0 = 1.2 and delta1 = 0.8 and beta = 0.9 in
  let desc =
    Graphical.create (Graphs.Generators.clique n)
      (Coordination.of_deltas ~delta0 ~delta1)
  in
  let game = Graphical.to_game desc in
  let space = Game.space game in
  let pi = Logit.Gibbs.stationary space (Graphical.potential desc) ~beta in
  let projected = project_full_pi space pi n in
  let bd = Logit.Lumping.clique ~n ~delta0 ~delta1 ~beta in
  check_array ~tol:1e-10 "bd stationary = projected Gibbs"
    projected (Markov.Birth_death.stationary bd);
  let closed =
    Logit.Lumping.stationary_weights ~players:n ~beta (fun k ->
        Graphical.clique_potential ~n ~delta0 ~delta1 k)
  in
  check_array ~tol:1e-10 "closed form agrees" projected closed

let lumping_clique_transitions_agree () =
  (* The full chain's weight process must have exactly the birth-death
     transition probabilities (lumpability). *)
  let n = 4 and delta0 = 1.0 and delta1 = 0.7 and beta = 1.1 in
  let desc =
    Graphical.create (Graphs.Generators.clique n)
      (Coordination.of_deltas ~delta0 ~delta1)
  in
  let game = Graphical.to_game desc in
  let space = Game.space game in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let bd = Logit.Lumping.clique ~n ~delta0 ~delta1 ~beta in
  Strategy_space.iter space (fun idx ->
      let w = Strategy_space.weight space idx in
      let up = ref 0. and down = ref 0. in
      Array.iter
        (fun (j, p) ->
          let wj = Strategy_space.weight space j in
          if wj = w + 1 then up := !up +. p
          else if wj = w - 1 then down := !down +. p)
        (Markov.Chain.row chain idx);
      check_float ~tol:1e-10 "up rate" (Markov.Birth_death.up bd w) !up;
      check_float ~tol:1e-10 "down rate" (Markov.Birth_death.down bd w) !down)

let lumping_clique_mixing_agrees () =
  let n = 5 and delta0 = 1.0 and delta1 = 1.0 and beta = 0.8 in
  let desc =
    Graphical.create (Graphs.Generators.clique n)
      (Coordination.of_deltas ~delta0 ~delta1)
  in
  let game = Graphical.to_game desc in
  let space = Game.space game in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary space (Graphical.potential desc) ~beta in
  let full = Markov.Mixing.mixing_time_all chain pi in
  let bd = Logit.Lumping.clique ~n ~delta0 ~delta1 ~beta in
  let lumped = Markov.Birth_death.mixing_time bd in
  check_true "mixing times equal" (full = lumped)

let lumping_curve_agrees () =
  let players = 6 in
  let cg = Curve_game.create ~players ~global:2. ~local:1. in
  let space = Curve_game.space cg in
  let beta = 1.5 in
  let pi = Logit.Gibbs.stationary space (Curve_game.potential cg) ~beta in
  let bd = Logit.Lumping.curve ~game:cg ~beta in
  check_array ~tol:1e-10 "curve stationary"
    (project_full_pi space pi players)
    (Markov.Birth_death.stationary bd)

let lumping_dominant_agrees () =
  let players = 4 and strategies = 3 and beta = 1.7 in
  let game = Dominant.lower_bound_game ~players ~strategies in
  let space = Game.space game in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let phi idx = Dominant.lower_bound_potential ~players ~strategies idx in
  let pi = Logit.Gibbs.stationary space phi ~beta in
  (* Project onto the number of non-zero players. *)
  let projected = Array.make (players + 1) 0. in
  Array.iteri
    (fun idx p ->
      let w = Strategy_space.weight space idx in
      projected.(w) <- projected.(w) +. p)
    pi;
  let bd = Logit.Lumping.dominant_lower_bound ~players ~strategies ~beta in
  check_array ~tol:1e-10 "dominant stationary" projected
    (Markov.Birth_death.stationary bd);
  (* Transition lumpability check. *)
  Strategy_space.iter space (fun idx ->
      let w = Strategy_space.weight space idx in
      let up = ref 0. and down = ref 0. in
      Array.iter
        (fun (j, p) ->
          let wj = Strategy_space.weight space j in
          if wj = w + 1 then up := !up +. p
          else if wj = w - 1 then down := !down +. p)
        (Markov.Chain.row chain idx);
      check_float ~tol:1e-10 "dominant up" (Markov.Birth_death.up bd w) !up;
      check_float ~tol:1e-10 "dominant down" (Markov.Birth_death.down bd w) !down)

let lumping_weight_symmetric_random =
  QCheck.Test.make ~name:"weight-symmetric lumping matches full chain" ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let players = 4 in
      let phi_w = Array.init (players + 1) (fun _ -> Prob.Rng.float r *. 3.) in
      let beta = 0.5 +. Prob.Rng.float r in
      let space = Strategy_space.uniform ~players ~strategies:2 in
      let phi idx = phi_w.(Strategy_space.weight space idx) in
      let game = Potential.common_interest ~name:"ws" space phi in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary space phi ~beta in
      let bd =
        Logit.Lumping.weight_symmetric ~players ~beta (fun k -> phi_w.(k))
      in
      let projected = Array.make (players + 1) 0. in
      Array.iteri
        (fun idx p ->
          projected.(Strategy_space.weight space idx) <-
            projected.(Strategy_space.weight space idx) +. p)
        pi;
      let bd_pi = Markov.Birth_death.stationary bd in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) projected bd_pi
      && Markov.Stationary.residual chain pi < 1e-9)

(* ----- Barrier ----- *)

let zeta_simple_double_well () =
  (* Potential on 2-player binary: wells at 00 (depth -2) and 11
     (depth -1), barrier at 0. zeta = 0 - (-1) = 1. *)
  let space = Strategy_space.uniform ~players:2 ~strategies:2 in
  let phi = function 0 -> -2. | 3 -> -1. | _ -> 0. in
  check_float "zeta" 1. (Logit.Barrier.zeta space phi);
  check_float "zeta brute" 1. (Logit.Barrier.zeta_brute space phi)

let zeta_monotone_potential_is_zero () =
  let space = Strategy_space.uniform ~players:3 ~strategies:2 in
  let phi idx = float_of_int (Strategy_space.weight space idx) in
  check_float "monotone zeta" 0. (Logit.Barrier.zeta space phi);
  check_float "monotone brute" 0. (Logit.Barrier.zeta_brute space phi)

let zeta_merge_equals_brute =
  QCheck.Test.make ~name:"zeta merge-sweep = brute widest-path" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let space = Strategy_space.uniform ~players:3 ~strategies:2 in
      let table = Array.init 8 (fun _ -> Prob.Rng.float r *. 4.) in
      let phi idx = table.(idx) in
      Float.abs (Logit.Barrier.zeta space phi -. Logit.Barrier.zeta_brute space phi)
      < 1e-12)

let zeta_weight_potential_matches_cube =
  QCheck.Test.make ~name:"weight-potential zeta = cube zeta" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let players = 5 in
      let phi_w = Array.init (players + 1) (fun _ -> Prob.Rng.float r *. 4.) in
      let space = Strategy_space.uniform ~players ~strategies:2 in
      let phi idx = phi_w.(Strategy_space.weight space idx) in
      let direct = Logit.Barrier.zeta space phi in
      let fast = Logit.Barrier.zeta_of_weight_potential ~players (fun k -> phi_w.(k)) in
      Float.abs (direct -. fast) < 1e-12)

let zeta_clique_closed_form () =
  let n = 7 and delta0 = 1.5 and delta1 = 1.0 in
  let closed = Logit.Barrier.zeta_clique ~n ~delta0 ~delta1 in
  let via_weight =
    Logit.Barrier.zeta_of_weight_potential ~players:n (fun k ->
        Graphical.clique_potential ~n ~delta0 ~delta1 k)
  in
  check_float ~tol:1e-12 "closed = weight" via_weight closed;
  (* And against the full cube. *)
  let desc =
    Graphical.create (Graphs.Generators.clique n)
      (Coordination.of_deltas ~delta0 ~delta1)
  in
  check_float ~tol:1e-9 "closed = cube" closed
    (Logit.Barrier.zeta (Graphical.space desc) (Graphical.potential desc))

let widest_path_values () =
  let space = Strategy_space.uniform ~players:2 ~strategies:2 in
  let phi = function 0 -> -2. | 3 -> -1. | _ -> 0. in
  let w = Logit.Barrier.widest_path_from space phi 0 in
  check_float "to self" (-2.) w.(0);
  check_float "to neighbor" 0. w.(1);
  check_float "to other well" 0. w.(3)

(* ----- Bounds sanity ----- *)

let bounds_dominate_measurements () =
  (* Lemma 3.3 / Thm 3.4 bounds must dominate exact values for a
     selection of games and betas. *)
  List.iter
    (fun (game, phi) ->
      let space = Game.space game in
      let n = Strategy_space.num_players space in
      let m = Strategy_space.max_strategies space in
      let delta_phi = Potential.delta_global space phi in
      List.iter
        (fun beta ->
          let chain = Logit.Logit_dynamics.chain game ~beta in
          let pi = Logit.Gibbs.stationary space phi ~beta in
          let trel = Markov.Spectral.relaxation_time chain pi in
          check_true "lemma 3.3 dominates"
            (Logit.Bounds.lemma33_trel_upper ~n ~m ~beta ~delta_phi >= trel -. 1e-6);
          match Markov.Mixing.mixing_time_all chain pi with
          | Some t ->
              check_true "thm 3.4 dominates"
                (Logit.Bounds.thm34_tmix_upper ~n ~m ~beta ~delta_phi ()
                >= float_of_int t)
          | None -> Alcotest.fail "mixing should finish")
        [ 0.0; 0.7; 2.0 ])
    [
      (let g = coordination_game () in
       (g, Option.get (Potential.recover g)));
      (let g = Zoo.pure_coordination ~players:3 ~strategies:2 in
       (g, Option.get (Potential.recover g)));
    ]

let bounds_thm42_dominates_thm43 () =
  List.iter
    (fun (n, m) ->
      check_true "upper >= lower"
        (Logit.Bounds.thm42_tmix_upper ~n ~m >= Logit.Bounds.thm43_tmix_lower ~n ~m))
    [ (2, 2); (5, 2); (5, 5); (10, 3) ]

let bounds_ring_bracket () =
  (* Ring bounds must bracket the exact mixing time. *)
  let n = 6 and delta = 1.0 in
  let desc =
    Graphical.create (Graphs.Generators.ring n)
      (Coordination.of_deltas ~delta0:delta ~delta1:delta)
  in
  let game = Graphical.to_game desc in
  let space = Game.space game in
  List.iter
    (fun beta ->
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary space (Graphical.potential desc) ~beta in
      match Markov.Mixing.mixing_time_all ~max_steps:200_000 chain pi with
      | Some t ->
          let t = float_of_int t in
          check_true "thm 5.6 upper"
            (Logit.Bounds.thm56_tmix_upper ~n ~beta ~delta () >= t);
          check_true "thm 5.7 lower"
            (Logit.Bounds.thm57_tmix_lower ~beta ~delta () <= t +. 1.)
      | None -> Alcotest.fail "ring mixing should finish")
    [ 0.5; 1.0; 1.5 ]

let bounds_thm51_dominates () =
  let n = 5 and delta = 0.5 in
  let graph = Graphs.Generators.ring n in
  let chi = Graphs.Cutwidth.exact graph in
  let desc =
    Graphical.create graph (Coordination.of_deltas ~delta0:delta ~delta1:delta)
  in
  let game = Graphical.to_game desc in
  let space = Game.space game in
  List.iter
    (fun beta ->
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary space (Graphical.potential desc) ~beta in
      match Markov.Mixing.mixing_time_all chain pi with
      | Some t ->
          check_true "thm 5.1 dominates"
            (Logit.Bounds.thm51_tmix_upper ~n ~beta ~cutwidth:chi ~delta0:delta
               ~delta1:delta
            >= float_of_int t)
      | None -> Alcotest.fail "mixing should finish")
    [ 0.5; 1.0 ]

let bounds_validation () =
  check_raises_invalid "bad c" (fun () ->
      ignore (Logit.Bounds.thm36_beta_threshold ~c:1.5 ~n:3 ~delta_local:1.));
  check_raises_invalid "negative beta" (fun () ->
      ignore (Logit.Bounds.lemma33_trel_upper ~n:2 ~m:2 ~beta:(-1.) ~delta_phi:1.));
  check_raises_invalid "thm55 wrong convention" (fun () ->
      ignore (Logit.Bounds.thm55_exponent ~n:4 ~beta:1. ~delta0:1. ~delta1:2.))

(* ----- Dynamics (couplings) ----- *)

let interval_coupling_is_valid_coupling () =
  (* Marginals of the coupled step must equal the chain's kernel. *)
  let game = coordination_game () in
  let beta = 1.2 in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let step = Logit.Dynamics.interval_coupling game ~beta in
  let r = rng () in
  let x0 = 0 and y0 = 3 in
  let n = 60_000 in
  let cx = Array.make 4 0 and cy = Array.make 4 0 in
  for _ = 1 to n do
    let x, y = step r (x0, y0) in
    cx.(x) <- cx.(x) + 1;
    cy.(y) <- cy.(y) + 1
  done;
  for j = 0 to 3 do
    check_float ~tol:0.012 (Printf.sprintf "x marginal %d" j)
      (Markov.Chain.prob chain x0 j)
      (float_of_int cx.(j) /. float_of_int n);
    check_float ~tol:0.012 (Printf.sprintf "y marginal %d" j)
      (Markov.Chain.prob chain y0 j)
      (float_of_int cy.(j) /. float_of_int n)
  done

let threshold_coupling_is_valid_coupling () =
  let game = coordination_game () in
  let beta = 1.2 in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let step = Logit.Dynamics.threshold_coupling game ~beta in
  let r = rng () in
  let x0 = 1 and y0 = 2 in
  let n = 60_000 in
  let cx = Array.make 4 0 and cy = Array.make 4 0 in
  for _ = 1 to n do
    let x, y = step r (x0, y0) in
    cx.(x) <- cx.(x) + 1;
    cy.(y) <- cy.(y) + 1
  done;
  for j = 0 to 3 do
    check_float ~tol:0.012 (Printf.sprintf "x marginal %d" j)
      (Markov.Chain.prob chain x0 j)
      (float_of_int cx.(j) /. float_of_int n);
    check_float ~tol:0.012 (Printf.sprintf "y marginal %d" j)
      (Markov.Chain.prob chain y0 j)
      (float_of_int cy.(j) /. float_of_int n)
  done

let couplings_stay_together () =
  let game = coordination_game () in
  let beta = 0.9 in
  let r = rng () in
  check_int "interval stays" 0
    (Markov.Coupling.grand_coupling_check r
       (Logit.Dynamics.interval_coupling game ~beta)
       ~size:4 ~trials:300 ~horizon:30);
  check_int "threshold stays" 0
    (Markov.Coupling.grand_coupling_check r
       (Logit.Dynamics.threshold_coupling game ~beta)
       ~size:4 ~trials:300 ~horizon:30)

let coupling_estimate_upper_bounds () =
  (* The 75th-percentile coalescence estimate from the worst pair must
     upper bound the exact mixing time (coupling theorem). *)
  let game = Zoo.pure_coordination ~players:3 ~strategies:2 in
  let beta = 1.0 in
  let phi = Option.get (Potential.recover game) in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary (Game.space game) phi ~beta in
  let tmix = Option.get (Markov.Mixing.mixing_time_all chain pi) in
  let step = Logit.Dynamics.interval_coupling game ~beta in
  let r = rng () in
  (* worst over all start pairs of the estimate *)
  let worst = ref 0 in
  for x = 0 to 7 do
    for y = x + 1 to 7 do
      match
        Markov.Coupling.tmix_upper_estimate r step ~x0:x ~y0:y ~max_steps:100_000
          ~replicas:300
      with
      | Some e -> if e > !worst then worst := e
      | None -> Alcotest.fail "coupling should coalesce"
    done
  done;
  check_true "coupling bound >= tmix" (!worst >= tmix)

let hitting_time_dominant () =
  (* In the PD at high beta the chain falls into (defect, defect) fast. *)
  let game = Dominant.prisoners_dilemma () in
  let r = rng () in
  match
    Logit.Dynamics.hitting_time r game ~beta:10. ~start:3
      ~target:(fun idx -> idx = 0)
      ~max_steps:10_000
  with
  | Some t -> check_true "hits quickly" (t < 200)
  | None -> Alcotest.fail "should hit the dominant profile"

let occupancy_matches_gibbs () =
  let game = coordination_game () in
  let beta = 1.0 in
  let phi = Option.get (Potential.recover game) in
  let pi = Logit.Gibbs.stationary (Game.space game) phi ~beta in
  let r = rng () in
  let occ =
    Logit.Dynamics.occupancy r game ~beta ~start:0 ~burn_in:500 ~samples:30_000
      ~thin:3
  in
  check_true "occupancy close to Gibbs"
    (Prob.Empirical.tv_against occ (Prob.Dist.of_weights pi) < 0.02)

let mean_potential_trajectory_shape () =
  let game = coordination_game () in
  let phi = Option.get (Potential.recover game) in
  let r = rng () in
  let curve =
    Logit.Dynamics.mean_potential_trajectory r game phi ~beta:2. ~start:1
      ~steps:50 ~replicas:200
  in
  check_int "length" 51 (Array.length curve);
  check_float "starts at phi(start)" (phi 1) curve.(0);
  (* converges towards the equilibrium expectation *)
  let eq = Logit.Gibbs.expected_potential (Game.space game) phi ~beta:2. in
  check_true "approaches equilibrium"
    (Float.abs (curve.(50) -. eq) < Float.abs (curve.(0) -. eq))

(* ----- Theorem 3.1 (spectra) ----- *)

let thm31_nonnegative_spectra =
  QCheck.Test.make ~name:"Thm 3.1: potential-game spectra are non-negative"
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi = random_potential_game ~players:3 ~strategies:2 seed in
      let beta = 2.0 in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary (Game.space game) phi ~beta in
      Markov.Spectral.min_eigenvalue chain pi >= -1e-9)

let thm31_fails_for_pennies () =
  let chain = Logit.Logit_dynamics.chain Zoo.matching_pennies ~beta:2. in
  let spec = Linalg.Eigen.general_spectrum (Markov.Chain.to_dense chain) in
  let max_im =
    Array.fold_left (fun acc (_, im) -> Float.max acc (Float.abs im)) 0. spec
  in
  check_true "complex eigenvalues appear" (max_im > 0.1)

let suites =
  [
    ( "logit.dynamics_rule",
      [
        test "update normalises" update_distribution_normalises;
        test "beta 0 uniform" update_distribution_beta_zero_uniform;
        test "large beta best response" update_distribution_beta_large_best_response;
        test "two-point formula" update_distribution_formula;
        test "huge beta stable" update_distribution_huge_beta_no_nan;
        test "rows stochastic" transition_row_stochastic;
        test "matches eq (3)" transition_matches_eq3;
        test "chain ergodic" chain_is_ergodic;
        test "step simulation consistent" step_simulation_consistent;
        test "best-response prob monotone" best_response_probability_monotone;
        test "rejects negative beta" rejects_negative_beta;
      ] );
    ( "logit.gibbs",
      [
        test "closed form" gibbs_closed_form;
        test "beta 0 uniform" gibbs_beta_zero_uniform;
        test "concentrates on minima" gibbs_concentrates_on_minima;
        test "partition & pi_min" gibbs_partition_and_pi_min;
        test "of_game" gibbs_of_game;
        test "expected potential decreasing" gibbs_expected_potential_decreasing;
        qcheck gibbs_is_stationary_and_reversible;
      ] );
    ( "logit.lumping",
      [
        test "logistic" logistic_values;
        test "log binomial" log_binomial_values;
        test "clique stationary" lumping_clique_stationary_agrees;
        test "clique transitions" lumping_clique_transitions_agree;
        test "clique mixing time" lumping_clique_mixing_agrees;
        test "curve stationary" lumping_curve_agrees;
        test "dominant game" lumping_dominant_agrees;
        qcheck lumping_weight_symmetric_random;
      ] );
    ( "logit.barrier",
      [
        test "double well" zeta_simple_double_well;
        test "monotone potential" zeta_monotone_potential_is_zero;
        test "clique closed form" zeta_clique_closed_form;
        test "widest path values" widest_path_values;
        qcheck zeta_merge_equals_brute;
        qcheck zeta_weight_potential_matches_cube;
      ] );
    ( "logit.bounds",
      [
        test "dominate measurements" bounds_dominate_measurements;
        test "thm42 >= thm43" bounds_thm42_dominates_thm43;
        test "ring bracket" bounds_ring_bracket;
        test "thm51 dominates" bounds_thm51_dominates;
        test "validation" bounds_validation;
      ] );
    ( "logit.couplings",
      [
        test "interval coupling marginals" interval_coupling_is_valid_coupling;
        test "threshold coupling marginals" threshold_coupling_is_valid_coupling;
        test "stay together" couplings_stay_together;
        test "coupling bounds tmix" coupling_estimate_upper_bounds;
        test "hitting dominant profile" hitting_time_dominant;
        test "occupancy matches gibbs" occupancy_matches_gibbs;
        test "mean potential trajectory" mean_potential_trajectory_shape;
      ] );
    ( "logit.thm31",
      [ test "pennies complex spectrum" thm31_fails_for_pennies; qcheck thm31_nonnegative_spectra ] );
  ]

(* Appended: deeper lumping & bottleneck properties. *)

let lumping_mixing_equality_random =
  QCheck.Test.make
    ~name:"lumped mixing brackets full mixing (weight-symmetric)" ~count:5
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create (seed + 3) in
      let players = 4 in
      let phi_w = Array.init (players + 1) (fun _ -> Prob.Rng.float r *. 2.) in
      let beta = 0.5 +. Prob.Rng.float r in
      let space = Strategy_space.uniform ~players ~strategies:2 in
      let phi idx = phi_w.(Strategy_space.weight space idx) in
      let game = Potential.common_interest ~name:"ws" space phi in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary space phi ~beta in
      let full = Markov.Mixing.mixing_time_all ~max_steps:500_000 chain pi in
      let bd = Logit.Lumping.weight_symmetric ~players ~beta (fun k -> phi_w.(k)) in
      let lumped = Markov.Birth_death.mixing_time ~max_steps:500_000 bd in
      (* Projection can only shrink TV, so the lumped time lower-bounds
         the full one; within-shell relaxation is O(n log n), so for
         these tiny games they stay within a small additive window. *)
      match (full, lumped) with
      | Some f, Some l -> l <= f && f <= l + 25
      | _ -> false)

let bottleneck_bounds_curve_games () =
  (* Thm 2.7 on the lumped Thm 3.5 chain across betas. *)
  let game = Curve_game.create ~players:10 ~global:3. ~local:1. in
  List.iter
    (fun beta ->
      let bd = Logit.Lumping.curve ~game ~beta in
      let chain = Markov.Birth_death.to_chain bd in
      let pi = Markov.Birth_death.stationary bd in
      let ratio, _ =
        Markov.Bottleneck.best_sublevel_set chain pi (fun k -> float_of_int k)
      in
      let lower = Markov.Bottleneck.lower_bound_tmix ratio in
      match Markov.Birth_death.mixing_time_spectral bd with
      | Some t -> check_true "bottleneck lower bound holds" (lower <= float_of_int t +. 1.)
      | None -> Alcotest.fail "should mix")
    [ 0.5; 1.5; 3.0 ]

let spectral_huge_beta_consistency () =
  (* mixing_time_spectral must agree with stepwise evolution on a chain
     whose t_mix is in the tens of thousands. *)
  let bd = Logit.Lumping.clique ~n:10 ~delta0:1.0 ~delta1:1.0 ~beta:0.55 in
  let a = Markov.Birth_death.mixing_time ~max_steps:2_000_000 bd in
  let b = Markov.Birth_death.mixing_time_spectral bd in
  check_true "methods agree" (a = b)

let suites =
  suites
  @ [
      ( "logit.deep_properties",
        [
          test "bottleneck bounds curve games" bottleneck_bounds_curve_games;
          test "spectral consistency at large t" spectral_huge_beta_consistency;
          qcheck lumping_mixing_equality_random;
        ] );
    ]
