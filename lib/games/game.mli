(** Finite strategic games.

    A game is a profile space together with a utility function per
    player. Utilities are addressed by profile {e index} (see
    {!Strategy_space}) so that the Markov-chain layer can evaluate
    payoffs without materialising profiles. *)

type t

(** [create ~name space utility] packs a game; [utility player idx] is
    the payoff of [player] in the profile with index [idx]. *)
val create : name:string -> Strategy_space.t -> (int -> int -> float) -> t

(** [name g] is the human-readable name. *)
val name : t -> string

(** [space g] is the profile space. *)
val space : t -> Strategy_space.t

(** [utility g player idx] is the payoff of [player] at profile
    [idx]. *)
val utility : t -> int -> int -> float

(** [num_players g], [size g], [max_strategies g]: shorthands into
    {!Strategy_space}. *)
val num_players : t -> int

val size : t -> int
val max_strategies : t -> int

(** [tabulate g] precomputes every utility into a lookup table
    ([num_players × size] floats) and returns an equivalent game with
    O(1) utility evaluation. Worth it before building a transition
    matrix when the utility involves a sum over graph neighbours. *)
val tabulate : t -> t

(** [best_responses g player idx] lists the strategies of [player]
    maximising her payoff against the sub-profile [idx₋ᵢ] (ties are
    all returned, in increasing order). *)
val best_responses : t -> int -> int -> int list

(** [is_pure_nash g idx] tests whether no player can strictly improve
    by a unilateral deviation from profile [idx]. *)
val is_pure_nash : t -> int -> bool

(** [pure_nash_profiles g] lists the indices of all pure Nash
    equilibria (exhaustive enumeration). *)
val pure_nash_profiles : t -> int list

(** [is_dominant_strategy g player s] tests whether [s] weakly
    dominates every other strategy of [player] in every profile. *)
val is_dominant_strategy : t -> int -> int -> bool

(** [dominant_profile g] is [Some idx] for a profile in which every
    player plays a dominant strategy, if one exists (the smallest such
    index), [None] otherwise. *)
val dominant_profile : t -> int option

(** [social_welfare g idx] is the sum of all players' payoffs. *)
val social_welfare : t -> int -> float
