(** Bottleneck-ratio lower bounds (paper, Theorem 2.7).

    For R ⊆ Ω with π(R) ≤ 1/2, B(R) = Q(R, R̄)/π(R) and
    t_mix(ε) ≥ (1-2ε)/(2·B(R)). *)

(** [ratio t pi subset] is B(R) for [R = {i | subset i}]. Raises
    [Invalid_argument] if R is empty or π(R) = 0. (The π(R) ≤ 1/2
    side condition is the caller's responsibility; use
    {!ratio_checked} to enforce it.) *)
val ratio : Chain.t -> float array -> (int -> bool) -> float

(** [ratio_checked t pi subset] additionally verifies π(R) ≤ 1/2 and
    raises [Invalid_argument] otherwise. *)
val ratio_checked : Chain.t -> float array -> (int -> bool) -> float

(** [lower_bound_tmix ?eps ratio] is (1-2ε)/(2·ratio), the mixing-time
    lower bound of Theorem 2.7 (default ε = 1/4). *)
val lower_bound_tmix : ?eps:float -> float -> float

(** [best_sublevel_set t pi score] scans the sublevel sets
    R_θ = {i | score i ≤ θ} over all thresholds θ occurring as scores,
    keeping those with 0 < π(R) ≤ 1/2, and returns
    [(best_ratio, threshold)] minimising B(R_θ). For logit chains the
    natural scores are the potential or the Hamming weight; this
    automates the paper's bottleneck constructions. Raises
    [Invalid_argument] when no threshold yields a valid set. *)
val best_sublevel_set : Chain.t -> float array -> (int -> float) -> float * float
