(** Resolving source files to their [.cmt] artifacts for the typed
    pass. Primary strategy: parse [dune describe workspace]. Fallback:
    scan [_build/default] and invert dune's object-directory naming —
    required whenever the linter runs under [dune exec] (the parent
    dune holds the build lock, so a child [dune describe] cannot run)
    and in the test suite. *)

type sexp = Atom of string | List of sexp list

exception Sexp_error of string

(** [parse_sexps s] reads a sequence of s-expressions ([;] comments and
    double-quoted atoms supported). Raises {!Sexp_error}. *)
val parse_sexps : string -> sexp list

(** [parse_describe output] extracts [(source_relpath, cmt_path)] pairs
    from [dune describe workspace] output: any record carrying both an
    [(impl (...))] and a [(cmt (...))] field. Source paths are
    normalised to be root-relative (the [_build/<context>/] prefix is
    stripped); cmt paths are returned as printed. *)
val parse_describe : string -> (string * string) list

(** [scan_build ~root] walks [_build/default] for [.cmt] files and maps
    each back to the source file it was compiled from, keeping only
    modules whose [.ml] exists in the source tree (generated wrapper
    and alias modules drop out). Returns [(source_relpath, abs_cmt)]
    pairs. *)
val scan_build : root:string -> (string * string) list

type mode = Auto | Dune | Scan

(** [locate ~root ~mode] builds the resolver: source relpath to cmt
    path. [Auto] tries [dune describe] and falls back to the scan. *)
val locate : root:string -> mode:mode -> string -> string option
