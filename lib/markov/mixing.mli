(** Exact mixing-time computation.

    The worst-case total variation distance at time t is

    {v d(t) = max_x ‖Pᵗ(x,·) - π‖_TV, v}

    computed by evolving the point masses of a set of start states in
    lockstep. For modest state spaces all states can serve as starts;
    for structured games it suffices to pass the profiles known to be
    extremal (e.g. the potential minimisers), which is validated in the
    test suite. The paper's convention t_mix = t_mix(1/4) is the
    default. *)

(** [panel_sweep ?pool t pi ~starts ~decide] is the single
    panel-evolution loop behind {!tv_curve} and {!mixing_time}, exposed
    so batching consumers (the daemon scheduler) settle their answers
    through the {e same} float operations as the serial paths — the
    bit-identity of coalesced and per-request answers holds by
    construction. After every TV refresh (including step 0, before any
    evolution) [decide ~step ~worst] either returns [Some r] to stop
    with [r] or [None] to evolve one more step. [decide] must
    eventually stop the sweep (e.g. on a step bound or deadline); the
    loop itself imposes no budget. Raises [Invalid_argument] on an
    empty or out-of-range start set or a [pi] of the wrong length. *)
val panel_sweep :
  ?pool:Exec.Pool.t -> Chain.t -> float array -> starts:int list ->
  decide:(step:int -> worst:float -> 'a option) -> 'a

(** [panel_sweep_kernel] is {!panel_sweep} generalised over the
    storage layout: the chain is consumed only through a {!Kernel.t},
    so in-RAM chains ({!Kernel.of_chain}) and out-of-core segmented
    chains ([Ooc.Segmented_chain.kernel]) drive the identical sweep
    loop — the segmented path's bit-identity to the in-RAM path
    reduces to the bit-identity of the two [evolve_many_into]
    kernels. [panel_sweep ?pool t] is literally
    [panel_sweep_kernel ?pool (Kernel.of_chain t)]. *)
val panel_sweep_kernel :
  ?pool:Exec.Pool.t -> Kernel.t -> float array -> starts:int list ->
  decide:(step:int -> worst:float -> 'a option) -> 'a

(** [tv_curve ?pool t pi ~starts ~steps] is the array [d(0); d(1); ...;
    d(steps)] of worst-case (over [starts]) TV distances. The starts
    live in one double-buffered row-major panel advanced by the blocked
    SpMM {!Chain.evolve_many_into} — one matrix traversal per step for
    all starts, no allocation after setup regardless of [steps]. With
    [?pool] the destination sweep of each step runs across domains;
    results are bit-identical to the serial per-start sweep for any
    pool size. *)
val tv_curve :
  ?pool:Exec.Pool.t -> Chain.t -> float array -> starts:int list -> steps:int ->
  float array

(** [tv_curve_kernel] is {!tv_curve} over a {!Kernel.t} — the
    out-of-core entry point; [tv_curve ?pool t] delegates here via
    {!Kernel.of_chain}. *)
val tv_curve_kernel :
  ?pool:Exec.Pool.t -> Kernel.t -> float array -> starts:int list -> steps:int ->
  float array

(** [mixing_time ?pool ?eps ?max_steps t pi ~starts] is the least t
    with d(t) ≤ eps (default 1/4), or [None] if it exceeds [max_steps]
    (default [1_000_000]). By monotonicity of d(·) the scan stops at
    the first success. Runs on the same blocked SpMM panel as
    {!tv_curve}; [?pool] parallelises the per-step destination
    sweep. *)
val mixing_time :
  ?pool:Exec.Pool.t -> ?eps:float -> ?max_steps:int -> Chain.t -> float array ->
  starts:int list -> int option

(** [mixing_time_kernel] is {!mixing_time} over a {!Kernel.t} — the
    out-of-core entry point; [mixing_time ?pool t] delegates here via
    {!Kernel.of_chain}. *)
val mixing_time_kernel :
  ?pool:Exec.Pool.t -> ?eps:float -> ?max_steps:int -> Kernel.t -> float array ->
  starts:int list -> int option

(** [mixing_time_all ?pool ?eps ?max_steps t pi] uses every state as a
    start (exact d(t), O(size²) memory traffic per step). *)
val mixing_time_all :
  ?pool:Exec.Pool.t -> ?eps:float -> ?max_steps:int -> Chain.t -> float array ->
  int option

(** [family_panel_sweep ?pool family ~pis ~starts ~decide] runs one
    panel sweep per plane of a β-family in lockstep, advancing all
    still-live planes through the fused multi-plane SpMM
    ({!Chain.evolve_many_shared_into}) when the family shares its index
    structure — one traversal of the shared structure per step for the
    whole β-grid — and through per-plane {!Chain.evolve_many_into}
    otherwise. After every TV refresh (including step 0)
    [decide ~plane ~step ~worst] is called for each unsettled plane
    with that plane's worst-over-starts TV; returning [true] settles
    the plane (it stops evolving), and the sweep ends when every plane
    has settled. Per plane, the (step, worst) sequence [decide]
    observes is bit-identical to a solo {!panel_sweep_kernel} over that
    plane — the fusion only amortises index traffic. [pis] holds one
    stationary distribution per plane. [decide] must eventually settle
    every plane; the loop imposes no budget. Raises [Invalid_argument]
    on mismatched [pis], an empty or out-of-range start set, or a [pi]
    of the wrong length. *)
val family_panel_sweep :
  ?pool:Exec.Pool.t -> Family.t -> pis:float array array -> starts:int list ->
  decide:(plane:int -> step:int -> worst:float -> bool) -> unit

(** [family_mixing_times ?pool ?eps ?max_steps family ~pis ~starts] is
    the whole β-grid's mixing times in one fused sweep: element [i] is
    the least t with d(t) ≤ [eps] (default 1/4) for plane [i], or
    [None] past [max_steps] (default [1_000_000]) — each element
    bit-identical to {!mixing_time_kernel} on that plane alone. *)
val family_mixing_times :
  ?pool:Exec.Pool.t -> ?eps:float -> ?max_steps:int -> Family.t ->
  pis:float array array -> starts:int list -> int option array

(** [tv_at t pi ~start ~steps] is ‖Pᵗ(start,·) - π‖_TV at [t = steps]
    only. Raises [Invalid_argument] on a negative [steps]. *)
val tv_at : Chain.t -> float array -> start:int -> steps:int -> float

(** [empirical_tv ?pool rng t pi ~start ~steps ~replicas] estimates the
    TV distance at time [steps] by simulating [replicas] independent
    chains and comparing the empirical law against π. The estimate is
    positively biased by sampling noise ≈ √(size/replicas); it is used
    only for state spaces too large for exact evolution. Replica [r]
    is driven by stream [r] of {!Prob.Rng.split_n}, so for a fixed
    seed the estimate is bit-identical whether it is computed serially
    or on a pool of any size. Raises [Invalid_argument] on an
    out-of-range [start], a negative [steps], or [replicas < 1]. *)
val empirical_tv :
  ?pool:Exec.Pool.t -> Prob.Rng.t -> Chain.t -> float array -> start:int ->
  steps:int -> replicas:int -> float

(** [upper_mixing_time_spectral ~gap ~pi_min ~eps] is the spectral
    upper bound t_rel·log(1/(ε·π_min)) of Theorem 2.3, with
    [t_rel = 1/gap]. *)
val upper_mixing_time_spectral : gap:float -> pi_min:float -> eps:float -> float

(** [lower_mixing_time_spectral ~gap ~eps] is the spectral lower bound
    (t_rel - 1)·log(1/2ε) of Theorem 2.3. *)
val lower_mixing_time_spectral : gap:float -> eps:float -> float

(** [mixing_time_spectral ?eps ?max_steps t pi ~starts] computes the
    exact mixing time of a {e reversible} chain through its full
    eigendecomposition: with A = D^{1/2} P D^{-1/2} = U Λ Uᵀ,
    Pᵗ(x,y) = Σ_k λ_kᵗ u_k(x) u_k(y) √(π(y)/π(x)), so d(t) can be
    evaluated at any t in O(|starts|·size²) without stepping the
    chain. Since d(·) is non-increasing, the answer is found by
    doubling + binary search — O(log t_mix) evaluations — which makes
    exponentially large mixing times (large β) computable exactly.
    Falls back on [None] when t_mix exceeds [max_steps] (default
    [max_int / 4]). Requires reversibility (checked). *)
val mixing_time_spectral :
  ?eps:float -> ?max_steps:int -> Chain.t -> float array -> starts:int list ->
  int option

(** [tv_at_spectral t pi ~decomposition ~start ~steps] evaluates
    ‖Pᵗ(start,·) - π‖_TV at [t = steps] from a precomputed
    decomposition (see {!decompose}). *)
val tv_at_spectral :
  decomposition:float array * Linalg.Mat.t -> float array -> start:int ->
  steps:int -> float

(** [decompose t pi] is the eigendecomposition [(eigenvalues, U)] of
    the symmetrised chain, for repeated {!tv_at_spectral} queries. *)
val decompose : Chain.t -> float array -> float array * Linalg.Mat.t

(** [mixing_time_from_decomposition ?eps ?max_steps ~decomposition pi
    ~starts] is {!mixing_time_spectral} driven by a caller-supplied
    eigendecomposition — e.g. the tridiagonal one of a birth–death
    chain, which avoids the dense Jacobi solve entirely. *)
val mixing_time_from_decomposition :
  ?eps:float -> ?max_steps:int -> decomposition:float array * Linalg.Mat.t ->
  float array -> starts:int list -> int option

(** [mixing_time_squaring ?eps ?max_steps t pi ~starts] computes the
    exact mixing time by repeated squaring of the dense transition
    matrix: Pᵗ is assembled from precomputed P^(2^k) factors and the
    monotone d(·) is binary-searched bit by bit. O(size³·log t_mix) —
    slower than the spectral route but numerically robust even when
    π_min underflows toward 1e-300 (products of stochastic matrices
    stay stochastic; rows are renormalised after every multiply).
    Guarded to [size <= 768]. *)
val mixing_time_squaring :
  ?eps:float -> ?max_steps:int -> Chain.t -> float array -> starts:int list ->
  int option
