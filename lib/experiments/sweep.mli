(** Parallel sweep driver for the experiment tables.

    Experiments are registered as plain [run ~quick] thunks, so the
    pool is threaded through module state rather than through every
    signature: the front end calls {!set_jobs} once, and each
    experiment maps its β / n grid through {!map}, which evaluates the
    grid points on the pool (in any order) but always returns the
    results in input order, keeping the printed tables identical to a
    serial run. Grid-point thunks must not mutate shared state. *)

(** [set_jobs n] installs a fresh global pool of [n] domains ([n <= 1]
    reverts to serial), shutting down any previous one. *)
val set_jobs : int -> unit

(** [current_pool ()] is the installed pool, if any — for experiments
    that want to pass it further down (e.g. into
    {!Markov.Mixing.mixing_time_all}). *)
val current_pool : unit -> Exec.Pool.t option

(** [map f xs] is [List.map f xs], evaluated on the installed pool when
    there is one. Results are returned in input order. *)
val map : ('a -> 'b) -> 'a list -> 'b list

(** [map_family game ~betas f] maps [f beta chain] over a β-grid whose
    logit chains are built as one {!Markov.Family}
    ({!Logit.Logit_dynamics.chain_family} on the installed pool):
    utilities are tabulated once and the planes share one index
    structure, instead of each grid point rebuilding the chain from
    scratch. Every plane is bit-identical to the independent
    [chain ~beta] build it replaces, and results come back in grid
    order, so printed tables are unchanged byte-for-byte. *)
val map_family :
  Games.Game.t -> betas:float list -> (float -> Markov.Chain.t -> 'b) -> 'b list

(** [map_cached ?store ~key ~encode ~decode f xs] is {!map} with
    per-grid-point checkpointing through the artifact store: points
    whose key already decodes from [store] are skipped (their cached
    value is returned), only the missing points are evaluated (on the
    installed pool), and each one is filed the moment it completes —
    so a sweep killed mid-grid resumes without recomputing finished
    points, and a completed sweep re-runs without computing anything.
    Results are always returned in input order, hit or miss. Cached
    artifacts that fail [decode] (truncated, corrupt, stale format)
    are dropped and recomputed. Without [?store] this is exactly
    {!map}. *)
val map_cached :
  ?store:Store.Cas.t ->
  key:('a -> Store.Key.t) ->
  encode:('b -> string) ->
  decode:(string -> ('b, string) result) ->
  ('a -> 'b) ->
  'a list ->
  'b list
