(** Birth–death chains on {0, ..., n}.

    A birth–death chain moves at most one step at a time. These arise
    here as exact lumpings of logit chains of weight-symmetric games
    (clique graphical coordination games, the Theorem 3.5 family, the
    Theorem 4.3 game): when the potential depends only on the Hamming
    weight, the weight process is itself Markov, with state space n+1
    instead of 2ⁿ — which lets experiments scale to hundreds of
    players with exact numerics. *)

type t

(** [create ~up ~down] packs a chain on {0, ..., n} where
    [n = Array.length up - 1]: from state k the chain moves to k+1
    with probability [up.(k)], to k-1 with probability [down.(k)], and
    stays otherwise. Requires equal lengths, [up.(n) = 0],
    [down.(0) = 0], non-negative entries, [up.(k) + down.(k) <= 1]. *)
val create : up:float array -> down:float array -> t

(** [size t] is n+1, the number of states. *)
val size : t -> int

(** [up t k] and [down t k]: the transition probabilities. *)
val up : t -> int -> float

val down : t -> int -> float

(** [to_chain t] is the generic sparse chain. *)
val to_chain : t -> Chain.t

(** [stationary t] is the stationary distribution, from the detailed
    balance product formula computed in the log domain (immune to
    overflow for very large β). Requires all interior [up]/[down]
    probabilities strictly positive (irreducibility). *)
val stationary : t -> float array

(** [mixing_time ?eps ?max_steps t] is the exact mixing time using
    every state as a start. *)
val mixing_time : ?eps:float -> ?max_steps:int -> t -> int option

(** [spectrum t] is the full real spectrum (birth–death chains are
    always reversible). *)
val spectrum : t -> float array

(** [relaxation_time t] is 1/(1-λ★). *)
val relaxation_time : t -> float

(** [mixing_time_spectral ?eps ?max_steps t] computes the exact mixing
    time via eigendecomposition (see {!Mixing.mixing_time_spectral}) —
    O(n³ + n² log t_mix), usable even when t_mix is astronomically
    large. *)
val mixing_time_spectral : ?eps:float -> ?max_steps:int -> t -> int option

(** [decomposition t] is the eigendecomposition of the symmetrised
    chain computed with the tridiagonal QL solver: the symmetrisation
    of a birth–death chain is tridiagonal with
    A(k, k+1) = sqrt(up(k)·down(k+1)) — no stationary distribution
    needed, hence no over/underflow at extreme β. *)
val decomposition : t -> float array * Linalg.Mat.t
