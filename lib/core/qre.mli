(** Logit quantal response equilibrium (McKelvey–Palfrey 1995).

    The QRE is the static, mean-field counterpart of the logit
    dynamics: a profile of {e mixed} strategies in which every player
    logit-responds to the others' mixtures,

    {v σ_i(a) ∝ exp(β·E_{σ₋ᵢ}[u_i(a, ·)]). v}

    It is NOT the stationary distribution of the logit dynamics —
    the Gibbs measure is generally correlated across players while
    the QRE is a product measure — and experiment X7 quantifies the
    gap, which vanishes at β = 0 and persists (or grows) with β. *)

type mixed = float array array
(** [mixed.(i)] is player i's mixed strategy (a probability vector
    over her strategy set). *)

(** [uniform game] is the uniform mixed profile. *)
val uniform : Games.Game.t -> mixed

(** [expected_utility game sigma ~player ~strategy] is
    E_{σ₋ᵢ}[u_player(strategy, ·)] — the expectation over the product
    of the other players' mixtures. O(|S|) per call. *)
val expected_utility :
  Games.Game.t -> mixed -> player:int -> strategy:int -> float

(** [logit_response game ~beta sigma player] is player's logit best
    response to [sigma]. *)
val logit_response : Games.Game.t -> beta:float -> mixed -> int -> float array

(** [residual game ~beta sigma] is the maximum absolute deviation
    between every player's mixture and her logit response — 0 exactly
    at a QRE. *)
val residual : Games.Game.t -> beta:float -> mixed -> float

(** [fixed_point ?tol ?max_iter ?damping game ~beta] iterates damped
    simultaneous logit responses from the uniform profile until
    [residual <= tol] (defaults: tol [1e-12], max_iter [100_000],
    damping [0.5]). Returns [None] if it fails to converge (possible
    at large β where the QRE correspondence folds). *)
val fixed_point :
  ?tol:float -> ?max_iter:int -> ?damping:float -> Games.Game.t -> beta:float ->
  mixed option

(** [product_distribution game sigma] is the induced distribution over
    profile indices, Π_i σ_i(x_i). *)
val product_distribution : Games.Game.t -> mixed -> float array

(** [stationary_gap game ~beta] is [(qre, tv)] where [tv] is the total
    variation distance between the QRE product measure and the exact
    stationary distribution of the logit {e dynamics} (Gibbs for
    potential games, LU solve otherwise). [None] if the QRE iteration
    does not converge. State spaces up to a few thousand. *)
val stationary_gap : Games.Game.t -> beta:float -> (mixed * float) option
