(** E7 — Theorem 5.1: for graphical coordination games,
    t_mix ≤ 2n³·e^{χ(G)(δ₀+δ₁)β}(nδ₀β+1) where χ(G) is the cutwidth
    of the social graph.

    For a zoo of 8-vertex topologies we compute χ(G) exactly (subset
    DP), measure the relaxation time of the logit chain over a small β
    sweep, and fit the growth exponent of log t_rel in β. The theorem
    predicts exponent ≤ χ(G)(δ₀+δ₁); graphs with larger cutwidth
    should (and do) show steeper exponential growth. *)

open Games

let topologies n =
  [
    ("path", Graphs.Generators.path n);
    ("ring", Graphs.Generators.ring n);
    ("star", Graphs.Generators.star n);
    ("binary-tree", Graphs.Generators.binary_tree n);
    ("grid-2x4", Graphs.Generators.grid 2 (n / 2));
    ("clique", Graphs.Generators.clique n);
  ]

let run ~quick =
  let n = 8 in
  let delta = 0.5 in
  let betas = if quick then [ 0.4; 0.8 ] else [ 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E7 (Thm 5.1): cutwidth vs relaxation-time growth, n=%d, d0=d1=%.1f" n
           delta)
      [
        ("graph", Table.Left);
        ("cutwidth", Table.Right);
        ("fitted exponent", Table.Right);
        ("chi*(d0+d1)", Table.Right);
        ("log bound(max beta)", Table.Right);
        ("log t_mix(max beta)", Table.Right);
      ]
  in
  List.iter
    (fun (name, graph) ->
      let chi = Graphs.Cutwidth.exact graph in
      let desc =
        Graphical.create graph (Coordination.of_deltas ~delta0:delta ~delta1:delta)
      in
      let game = Graphical.to_game desc in
      let space = Game.space game in
      let phi = Graphical.potential desc in
      let family = Logit.Logit_dynamics.chain_family game ~betas in
      let points =
        List.mapi
          (fun bi beta ->
            let chain = Markov.Family.plane family bi in
            let pi = Logit.Gibbs.stationary space phi ~beta in
            (* Thm 3.1: the spectrum is non-negative, so the deflated
               power iteration's λ★ is λ₂ and t_rel = 1/(1-λ₂). *)
            let lambda2 = Markov.Spectral.lambda2 chain pi in
            let trel = Markov.Spectral.relaxation_time_of_gap (1. -. lambda2) in
            (beta, log trel, chain, pi))
          betas
      in
      let xs = Array.of_list (List.map (fun (b, _, _, _) -> b) points) in
      let ys = Array.of_list (List.map (fun (_, l, _, _) -> l) points) in
      let slope, _ = Prob.Stats.linear_fit xs ys in
      let beta_max = List.fold_left Float.max 0. betas in
      let log_bound =
        Logit.Bounds.thm51_log_tmix_upper ~n ~beta:beta_max ~cutwidth:chi
          ~delta0:delta ~delta1:delta
      in
      let _, _, chain_max, pi_max = List.nth points (List.length points - 1) in
      let tmix =
        (* Consensus profiles are the extreme starts for coordination
           games (validated against all-starts in the test suite). *)
        Markov.Mixing.mixing_time ~max_steps:500_000 chain_max pi_max
          ~starts:[ Graphical.all_zero desc; Graphical.all_one desc ]
      in
      Table.add_row table
        [
          name;
          Table.cell_int chi;
          Table.cell_float slope;
          Table.cell_float (float_of_int chi *. 2. *. delta);
          Table.cell_log log_bound;
          (match tmix with
          | Some t when t > 0 -> Table.cell_log (log (float_of_int t))
          | Some _ -> "0"
          | None -> "-");
        ])
    (topologies n);
  Table.add_note table
    "fitted exponent = d(log t_rel)/d(beta); Thm 5.1 caps it at chi*(d0+d1).";
  [ table ]
