(** Structural graph properties. *)

(** [is_connected g] tests connectivity ([true] for graphs with at
    most one vertex). *)
val is_connected : Graph.t -> bool

(** [connected_components g] lists the components as sorted vertex
    lists, ordered by smallest vertex. *)
val connected_components : Graph.t -> int list list

(** [bfs_distances g src] is the array of BFS distances from [src];
    unreachable vertices get [-1]. *)
val bfs_distances : Graph.t -> int -> int array

(** [diameter g] is the maximum eccentricity. Raises
    [Invalid_argument] if [g] is disconnected or empty. *)
val diameter : Graph.t -> int

(** [is_bipartite g] tests 2-colourability. *)
val is_bipartite : Graph.t -> bool

(** [triangle_count g] counts the triangles of [g]. *)
val triangle_count : Graph.t -> int

(** [degree_histogram g] maps degree [d] to the number of vertices of
    degree [d] (array of length [max_degree + 1]). *)
val degree_histogram : Graph.t -> int array
