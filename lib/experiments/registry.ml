type t = {
  id : string;
  theorem : string;
  title : string;
  run : quick:bool -> Table.t list;
}

let all =
  [
    {
      id = "e1";
      theorem = "Theorem 3.1";
      title = "non-negative spectra of potential-game logit chains";
      run = E1_eigenvalues.run;
    };
    {
      id = "e2";
      theorem = "Lemma 3.3 / Theorem 3.4";
      title = "all-beta upper bounds for potential games";
      run = E2_all_beta.run;
    };
    {
      id = "e3";
      theorem = "Theorem 3.5";
      title = "exp(beta*dPhi) lower-bound family";
      run = E3_lower_bound.run;
    };
    {
      id = "e4";
      theorem = "Theorem 3.6";
      title = "O(n log n) mixing at small beta";
      run = E4_small_beta.run;
    };
    {
      id = "e5";
      theorem = "Theorems 3.8/3.9";
      title = "the barrier zeta governs large-beta mixing";
      run = E5_barrier.run;
    };
    {
      id = "e6";
      theorem = "Theorems 4.2/4.3";
      title = "beta-independent mixing with dominant strategies";
      run = E6_dominant.run;
    };
    {
      id = "e7";
      theorem = "Theorem 5.1";
      title = "cutwidth bound for graphical coordination games";
      run = E7_cutwidth.run;
    };
    {
      id = "e8";
      theorem = "Theorem 5.5";
      title = "clique exponent beta*(Phimax - Phi(1))";
      run = E8_clique.run;
    };
    {
      id = "e9";
      theorem = "Theorems 5.6/5.7";
      title = "fast ring mixing and ring-vs-clique separation";
      run = E9_ring.run;
    };
  ]

let extensions =
  [
    {
      id = "x1";
      theorem = "Section 4 remark";
      title = "dominance-solvable games plateau too";
      run = X1_solvable.run;
    };
    {
      id = "x2";
      theorem = "related work [1,16]";
      title = "hitting the risk-dominant profile vs mixing";
      run = X2_hitting.run;
    };
    {
      id = "x3";
      theorem = "conclusions (parallel updates)";
      title = "simultaneous-update logit dynamics vs Gibbs";
      run = X3_parallel.run;
    };
    {
      id = "x4";
      theorem = "conclusions (learning beta)";
      title = "annealing schedules on the Thm 3.5 potential";
      run = X4_annealing.run;
    };
    {
      id = "x5";
      theorem = "Lemmas 3.3 / 5.4";
      title = "exact congestion of the proofs' path families";
      run = X5_canonical_paths.run;
    };
    {
      id = "x6";
      theorem = "conclusions (transient phase, [2])";
      title = "metastability: the slow mode is the proof's bottleneck";
      run = X6_metastability.run;
    };
    {
      id = "x7";
      theorem = "mean-field counterpart (QRE)";
      title = "quantal response equilibrium vs the stationary law";
      run = X7_qre.run;
    };
    {
      id = "x8";
      theorem = "Section 5 mirror (anti-coordination)";
      title = "cut games: frustration flattens the barrier";
      run = X8_frustration.run;
    };
    {
      id = "x9";
      theorem = "Section 5 heterogeneous (spin glasses)";
      title = "random +-J couplings collapse the clique barrier";
      run = X9_spin_glass.run;
    };
    {
      id = "x10";
      theorem = "update-rule ablation";
      title = "heat-bath vs Metropolis; exact sampling by CFTP";
      run = X10_update_rules.run;
    };
  ]

let find id =
  let id = String.lowercase_ascii id in
  match List.find_opt (fun e -> e.id = id) (all @ extensions) with
  | Some e -> e
  | None -> raise Not_found

let tables_key ~quick e =
  (* The experiment id and quick flag are the whole recipe; the codec
     version field orphans artifacts when the table format changes.
     Experiment code changes must bump the experiment's output enough
     to matter only between commits — CI keys its cached store on the
     source tree hash for exactly that reason (see ci.yml). *)
  Store.Key.v ~kind:"experiment-tables"
    [
      ("experiment", e.id);
      ("quick", string_of_bool quick);
      ("tables-format", string_of_int Store.Codec.version);
    ]

let run_one ?store ~quick e =
  (* lint: allow print-in-lib — the experiment driver's stdout section header *)
  Printf.printf "\n### %s — %s: %s\n\n" (String.uppercase_ascii e.id) e.theorem
    e.title;
  (* Each experiment is one grid point of [run_all]'s sweep: completed
     table lists are checkpointed through the store, so re-running
     [logitdyn experiment all] after an interruption decodes the
     finished experiments and computes only the rest. *)
  let tables =
    List.concat
      (Sweep.map_cached ?store ~key:(tables_key ~quick)
         ~encode:Table.encode_list ~decode:Table.decode_list
         (fun e -> e.run ~quick)
         [ e ])
  in
  List.iter Table.print tables

let run_all ?store ~quick () = List.iter (run_one ?store ~quick) (all @ extensions)
