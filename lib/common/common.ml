exception No_convergence of string

let () =
  Printexc.register_printer (function
    | No_convergence msg -> Some (Printf.sprintf "No_convergence(%s)" msg)
    | _ -> None)

let no_convergence fmt =
  Printf.ksprintf (fun msg -> raise (No_convergence msg)) fmt

let feq ~eps a b =
  if eps < 0. || Float.is_nan eps then invalid_arg "Common.feq: need eps >= 0";
  Float.abs (a -. b) <= eps

module Clock = struct
  external clock_ns : bool -> int64 = "logitdyn_clock_ns"

  let monotonic_ns () =
    let t = clock_ns true in
    if Int64.compare t 0L >= 0 then t
    else
      (* Documented fallback: a host without CLOCK_MONOTONIC degrades
         to the wall clock — durations are then subject to clock
         steps, but the API keeps working. *)
      clock_ns false

  let span_s ~since =
    Int64.to_float (Int64.sub (monotonic_ns ()) since) /. 1e9

  let wall_s () = Int64.to_float (clock_ns false) /. 1e9
end

module Rss = struct
  (* /proc/self/status is tiny; Stdlib I/O keeps [common]
     dependency-free (no Unix). *)
  let read_lines path =
    match open_in path with
    | exception Sys_error _ -> None
    | ic ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file ->
              close_in_noerr ic;
              Some (List.rev acc)
        in
        (match go [] with
        | lines -> lines
        | exception e ->
            close_in_noerr ic;
            raise e)

  (* "VmHWM:   123456 kB" -> Some 123456. *)
  let parse_vmhwm line =
    let prefix = "VmHWM:" in
    let plen = String.length prefix in
    if String.length line < plen || String.sub line 0 plen <> prefix then None
    else
      let rest = String.trim (String.sub line plen (String.length line - plen)) in
      let digits =
        match String.index_opt rest ' ' with
        | Some i -> String.sub rest 0 i
        | None -> rest
      in
      int_of_string_opt digits

  let peak_kb () =
    match read_lines "/proc/self/status" with
    | None -> None
    | Some lines -> List.find_map parse_vmhwm lines

  let reset_peak () =
    (* Writing "5" to clear_refs resets the VmHWM watermark (Linux >=
       4.0). Best-effort: unsupported hosts simply keep the old peak. *)
    match open_out "/proc/self/clear_refs" with
    | exception Sys_error _ -> false
    | oc -> (
        match
          output_string oc "5";
          flush oc
        with
        | () ->
            close_out_noerr oc;
            true
        | exception Sys_error _ ->
            close_out_noerr oc;
            false)
end
