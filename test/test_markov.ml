open Helpers
open Markov

(* A two-state chain with transition probs p (0->1) and q (1->0):
   closed forms pi = (q, p)/(p+q), lambda_2 = 1 - p - q. *)
let two_state p q =
  Chain.of_rows [| [| (0, 1. -. p); (1, p) |]; [| (0, q); (1, 1. -. q) |] |]

let two_state_pi p q = [| q /. (p +. q); p /. (p +. q) |]

(* Random reversible chain built as a logit chain of a random potential
   game (the natural source of reversible chains in this library). *)
let random_reversible seed =
  let game, phi = random_potential_game ~players:3 ~strategies:2 seed in
  let beta = 1.0 in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary (Games.Game.space game) phi ~beta in
  (chain, pi)

(* ----- Chain ----- *)

let chain_validation () =
  check_raises_invalid "row sum" (fun () ->
      ignore (Chain.of_rows [| [| (0, 0.5) |] |]));
  check_raises_invalid "negative" (fun () ->
      ignore (Chain.of_rows [| [| (0, 1.5); (0, -0.5) |] |]));
  check_raises_invalid "out of range" (fun () ->
      ignore (Chain.of_rows [| [| (3, 1.0) |] |]));
  (* duplicates collapse *)
  let c = Chain.of_rows [| [| (0, 0.5); (0, 0.5) |] |] in
  check_float "dup sum" 1. (Chain.prob c 0 0)

let chain_evolve_apply () =
  let c = two_state 0.3 0.2 in
  let mu = Chain.evolve c [| 1.; 0. |] in
  check_array ~tol:1e-12 "evolve" [| 0.7; 0.3 |] mu;
  let f = Chain.apply c [| 0.; 1. |] in
  check_array ~tol:1e-12 "apply" [| 0.3; 0.8 |] f;
  let dense = Chain.to_dense c in
  check_float "dense" 0.3 (Linalg.Mat.get dense 0 1);
  let c2 = Chain.of_dense dense in
  check_float "roundtrip" 0.3 (Chain.prob c2 0 1)

let chain_structure () =
  let c = two_state 0.3 0.2 in
  check_true "irreducible" (Chain.is_irreducible c);
  check_true "aperiodic" (Chain.is_aperiodic c);
  (* A deterministic 2-cycle is periodic and irreducible. *)
  let cycle = Chain.of_rows [| [| (1, 1.) |]; [| (0, 1.) |] |] in
  check_true "cycle irreducible" (Chain.is_irreducible cycle);
  check_false "cycle periodic" (Chain.is_aperiodic cycle);
  let lazy_cycle = Chain.lazy_version cycle in
  check_true "lazy aperiodic" (Chain.is_aperiodic lazy_cycle);
  let absorbing = Chain.of_rows [| [| (0, 1.) |]; [| (0, 1.) |] |] in
  check_false "absorbing not irreducible" (Chain.is_irreducible absorbing)

let chain_reversibility () =
  let c = two_state 0.3 0.2 in
  check_true "2-state reversible" (Chain.is_reversible c (two_state_pi 0.3 0.2));
  (* 3-cycle with asymmetric rates is not reversible. *)
  let rot =
    Chain.of_rows
      [|
        [| (0, 0.1); (1, 0.9) |];
        [| (1, 0.1); (2, 0.9) |];
        [| (2, 0.1); (0, 0.9) |];
      |]
  in
  let pi = Stationary.by_solve rot in
  check_false "cycle not reversible" (Chain.is_reversible rot pi);
  let c2 = two_state 0.3 0.2 in
  let pi2 = two_state_pi 0.3 0.2 in
  check_float ~tol:1e-12 "edge measure" (pi2.(0) *. 0.3)
    (Chain.edge_measure c2 pi2 0 1)

let chain_simulate () =
  let c = two_state 0.5 0.5 in
  let r = rng () in
  let traj = Chain.simulate r c ~start:0 ~steps:100 in
  check_int "length" 101 (Array.length traj);
  check_int "start" 0 traj.(0);
  let hit = Chain.hitting_time r c ~start:0 ~target:(fun s -> s = 1) ~max_steps:1000 in
  check_true "hit eventually" (hit <> None);
  check_true "hit at 0"
    (Chain.hitting_time r c ~start:0 ~target:(fun s -> s = 0) ~max_steps:10 = Some 0)

let chain_sample_frequencies () =
  let c = two_state 0.3 0.2 in
  let r = rng () in
  let ones = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Chain.sample_step r c 0 = 1 then incr ones
  done;
  check_float ~tol:0.01 "sample freq" 0.3 (float_of_int !ones /. float_of_int n)

(* ----- CSR layout invariants and kernels ----- *)

(* The pre-CSR reference kernels, reconstructed over the public row
   views: the tentpole contract is that the flat CSR kernels are
   bit-identical to these (same arithmetic, same order). *)
let legacy_evolve c mu =
  let n = Chain.size c in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    let mass = mu.(i) in
    if mass > 0. then
      Array.iter (fun (j, p) -> out.(j) <- out.(j) +. (mass *. p)) (Chain.row c i)
  done;
  out

let legacy_sample_step rng c i =
  let entries = Chain.row c i in
  let u = Prob.Rng.float rng in
  let acc = ref 0. in
  let result = ref (fst entries.(Array.length entries - 1)) in
  let found = ref false in
  Array.iter
    (fun (j, p) ->
      if not !found then begin
        acc := !acc +. p;
        if u < !acc then begin
          result := j;
          found := true
        end
      end)
    entries;
  !result

let rows_strictly_sorted_positive c =
  let ok = ref true in
  for i = 0 to Chain.size c - 1 do
    let entries = Chain.row c i in
    check_int (Printf.sprintf "degree %d" i) (Array.length entries)
      (Chain.degree c i);
    Array.iteri
      (fun k (j, p) ->
        if p <= 0. then ok := false;
        if k > 0 && fst entries.(k - 1) >= j then ok := false)
      entries
  done;
  !ok

let csr_rows_sorted_dupfree () =
  (* Duplicate columns are summed into one strictly-sorted entry... *)
  let c =
    Chain.of_rows
      [|
        [| (1, 0.25); (0, 0.5); (1, 0.25) |];
        [| (1, 0.3); (0, 0.3); (1, 0.2); (0, 0.2) |];
      |]
  in
  check_true "duplicates collapsed, sorted" (rows_strictly_sorted_positive c);
  check_int "row 0 dup-free" 2 (Chain.degree c 0);
  check_float ~tol:1e-12 "summed dup" 0.5 (Chain.prob c 0 1);
  check_int "nnz" 4 (Chain.nnz c);
  (* ... and lazy_version (which re-introduces a duplicate self-loop
     entry per row) preserves the invariant. *)
  let lazy_c = Chain.lazy_version c in
  check_true "lazy_version sorted dup-free" (rows_strictly_sorted_positive lazy_c);
  check_float ~tol:1e-12 "lazy self-loop" (0.5 +. (0.5 *. 0.5)) (Chain.prob lazy_c 0 0)

let csr_rows_sorted_random =
  QCheck.Test.make ~name:"logit chain + lazy rows strictly sorted, no zeros"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, _ = random_reversible seed in
      rows_strictly_sorted_positive chain
      && rows_strictly_sorted_positive (Chain.lazy_version chain))

let csr_prob_binary_search =
  QCheck.Test.make ~name:"prob = linear row scan for every (i, j)" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, _ = random_reversible seed in
      let n = Chain.size chain in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let scanned = ref 0. in
          Array.iter
            (fun (k, p) -> if k = j then scanned := p)
            (Chain.row chain i);
          if Chain.prob chain i j <> !scanned then ok := false
        done
      done;
      !ok)

let csr_evolve_into () =
  let c = two_state 0.3 0.2 in
  let src = [| 0.25; 0.75 |] in
  let dst = [| 42.; -7. |] in
  (* dst is cleared, result matches the allocating kernel bit-for-bit *)
  Chain.evolve_into c ~src ~dst;
  check_true "evolve_into = evolve" (dst = Chain.evolve c src);
  check_raises_invalid "src = dst" (fun () ->
      Chain.evolve_into c ~src:dst ~dst);
  check_raises_invalid "src dimension" (fun () ->
      Chain.evolve_into c ~src:[| 1. |] ~dst);
  check_raises_invalid "dst dimension" (fun () ->
      Chain.evolve_into c ~src ~dst:[| 0. |])

let csr_evolve_bit_identical =
  QCheck.Test.make ~name:"CSR evolve bit-identical to pre-CSR row scan"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      let n = Chain.size chain in
      let r = Prob.Rng.create (seed + 7) in
      let mu = Array.init n (fun _ -> Prob.Rng.float r) in
      let total = Array.fold_left ( +. ) 0. mu in
      let mu = Array.map (fun x -> x /. total) mu in
      Chain.evolve chain mu = legacy_evolve chain mu
      && Chain.evolve chain pi = legacy_evolve chain pi)

let csr_sampler_agreement =
  QCheck.Test.make
    ~name:"binary-search sampler = linear scan on identical RNG streams"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, _ = random_reversible seed in
      let a = Prob.Rng.create (seed + 13) in
      let b = Prob.Rng.copy a in
      let ok = ref true in
      let x = ref 0 and y = ref 0 in
      for _ = 1 to 2_000 do
        x := Chain.sample_step a chain !x;
        y := legacy_sample_step b chain !y;
        if !x <> !y then ok := false
      done;
      !ok)

let csr_sample_boundaries () =
  let c = two_state 0.3 0.2 in
  (* row 0 = [(0, 0.7); (1, 0.3)]: prefix sums 0.7, 1.0. *)
  check_int "u = 0 -> first entry" 0 (Chain.sample_step_of c 0 ~u:0.);
  check_int "u below first prefix" 0 (Chain.sample_step_of c 0 ~u:0.699);
  check_int "u at first prefix -> next entry" 1 (Chain.sample_step_of c 0 ~u:0.7);
  check_int "u just below mass" 1 (Chain.sample_step_of c 0 ~u:0.999999);
  (* u at/past the accumulated mass: fall back to the last stored
     entry, which is strictly positive by construction (zero-weight
     entries are dropped at normalisation, so no zero tail exists). *)
  check_int "u = 1 falls back to last entry" 1 (Chain.sample_step_of c 0 ~u:1.0);
  check_int "u past mass falls back" 1 (Chain.sample_step_of c 0 ~u:1.5);
  (* A row whose trailing probability is tiny still owns the tail. *)
  let skewed = Chain.of_rows [| [| (0, 1. -. 1e-12); (1, 1e-12) |]; [| (1, 1.) |] |] in
  check_int "tiny tail entry selected at u = 1" 1
    (Chain.sample_step_of skewed 0 ~u:1.0)

let csr_validation_negative_steps () =
  let c = two_state 0.3 0.2 in
  let r = rng () in
  check_raises_invalid "hitting_time negative max_steps" (fun () ->
      ignore
        (Chain.hitting_time r c ~start:0 ~target:(fun s -> s = 1) ~max_steps:(-1)));
  check_raises_invalid "tv_at negative steps" (fun () ->
      ignore (Mixing.tv_at c [| 0.5; 0.5 |] ~start:0 ~steps:(-1)));
  check_raises_invalid "simulate negative steps" (fun () ->
      ignore (Chain.simulate r c ~start:0 ~steps:(-1)));
  (* max_steps = 0 stays legal: a start on the target hits at time 0. *)
  check_true "hit at 0 with zero budget"
    (Chain.hitting_time r c ~start:0 ~target:(fun s -> s = 0) ~max_steps:0 = Some 0)

(* ----- CSC transpose and the pull-mode / SpMM kernels ----- *)

(* The CSC invariant over the public [to_csc] view: offsets span the
   nnz, per-column source lists are strictly increasing, and every
   stored probability mirrors the CSR entry bit-for-bit. *)
let csc_invariants_hold c =
  let n = Chain.size c in
  let col_start, srcs, probs = Chain.to_csc c in
  let ok = ref true in
  if Array.length col_start <> n + 1 then ok := false;
  if col_start.(0) <> 0 || col_start.(n) <> Chain.nnz c then ok := false;
  if Array.length srcs <> Chain.nnz c then ok := false;
  if Array.length probs <> Chain.nnz c then ok := false;
  for j = 0 to n - 1 do
    if col_start.(j) > col_start.(j + 1) then ok := false;
    for k = col_start.(j) to col_start.(j + 1) - 1 do
      if k > col_start.(j) && srcs.(k - 1) >= srcs.(k) then ok := false;
      if probs.(k) <> Chain.prob c srcs.(k) j then ok := false
    done
  done;
  !ok

let csc_two_state () =
  let c = two_state 0.3 0.2 in
  let col_start, srcs, probs = Chain.to_csc c in
  (* Columns: j=0 receives from 0 (0.7) and 1 (0.2); j=1 from 0 (0.3)
     and 1 (0.8). *)
  check_true "offsets" (col_start = [| 0; 2; 4 |]);
  check_true "sources" (srcs = [| 0; 1; 0; 1 |]);
  check_true "probs" (probs = [| 0.7; 0.2; 0.3; 0.8 |]);
  check_true "invariants" (csc_invariants_hold c)

let csc_invariants_random =
  QCheck.Test.make ~name:"CSC: columns span nnz, sources strictly increasing"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, _ = random_reversible seed in
      csc_invariants_hold chain && csc_invariants_hold (Chain.lazy_version chain))

let pull_matches_push =
  QCheck.Test.make
    ~name:"pull evolve bit-identical to push (incl. zero-mass sources)"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      let n = Chain.size chain in
      let r = Prob.Rng.create (seed + 3) in
      let push = Array.make n 0. and pull = Array.make n 0. in
      let agree src =
        Chain.evolve_into chain ~src ~dst:push;
        Chain.evolve_pull_into chain ~src ~dst:pull;
        push = pull
      in
      let ok = ref (agree pi) in
      (* Point masses hit single-source columns... *)
      for i = 0 to n - 1 do
        if not (agree (Array.init n (fun j -> if j = i then 1. else 0.))) then
          ok := false
      done;
      (* ... sparse vectors exercise the zero-mass skip both kernels
         share, including unnormalised mass. *)
      for _ = 1 to 5 do
        if not (agree (random_sparse_vector r n)) then ok := false
      done;
      !ok)

let pull_validation () =
  let c = two_state 0.3 0.2 in
  let src = [| 0.25; 0.75 |] and dst = [| 0.; 0. |] in
  check_raises_invalid "src = dst" (fun () ->
      Chain.evolve_pull_into c ~src:dst ~dst);
  check_raises_invalid "src dimension" (fun () ->
      Chain.evolve_pull_into c ~src:[| 1. |] ~dst);
  check_raises_invalid "dst dimension" (fun () ->
      Chain.evolve_pull_into c ~src ~dst:[| 0. |])

let spmm_matches_single_evolves =
  QCheck.Test.make
    ~name:"evolve_many_into rows bit-identical to k single evolves"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      let n = Chain.size chain in
      let r = Prob.Rng.create (seed + 11) in
      let k = 1 + (seed mod 7) in
      let rows =
        Array.init k (fun i ->
            if i = 0 then Array.copy pi else random_sparse_vector r n)
      in
      let src = panel_of_rows rows in
      let dst = panel_create (k * n) in
      Chain.evolve_many_into chain ~k ~src ~dst;
      let ok = ref true in
      Array.iteri
        (fun i row -> if panel_row dst ~n i <> Chain.evolve chain row then ok := false)
        rows;
      !ok)

let spmm_validation () =
  let c = two_state 0.3 0.2 in
  let src = panel_of_rows [| [| 0.5; 0.5 |] |] in
  let dst = panel_create 2 in
  check_raises_invalid "negative k" (fun () ->
      Chain.evolve_many_into c ~k:(-1) ~src ~dst);
  check_raises_invalid "src dimension" (fun () ->
      Chain.evolve_many_into c ~k:2 ~src ~dst:(panel_create 4));
  check_raises_invalid "dst dimension" (fun () ->
      Chain.evolve_many_into c ~k:2 ~src:(panel_create 4) ~dst);
  check_raises_invalid "src = dst" (fun () ->
      Chain.evolve_many_into c ~k:1 ~src ~dst:src);
  (* k = 0 stays legal: an empty panel is a no-op. *)
  Chain.evolve_many_into c ~k:0 ~src:(panel_create 0) ~dst:(panel_create 0);
  (* And the single-row panel round-trips through the kernel. *)
  Chain.evolve_many_into c ~k:1 ~src ~dst;
  check_true "k = 1 row" (panel_row dst ~n:2 0 = Chain.evolve c [| 0.5; 0.5 |])

(* ----- Stationary ----- *)

let stationary_two_state () =
  let c = two_state 0.3 0.2 in
  let expected = two_state_pi 0.3 0.2 in
  check_array ~tol:1e-10 "power" expected (Stationary.by_power c);
  check_array ~tol:1e-10 "solve" expected (Stationary.by_solve c);
  check_true "is stationary" (Stationary.is_stationary c expected);
  check_false "uniform is not" (Stationary.is_stationary c [| 0.5; 0.5 |])

let stationary_solve_matches_power =
  QCheck.Test.make ~name:"by_solve = by_power on random reversible chains"
    ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, _ = random_reversible seed in
      let a = Stationary.by_solve chain in
      let b = Stationary.by_power chain in
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-8) a b)

let stationary_gibbs_is_stationary =
  QCheck.Test.make ~name:"Gibbs measure is stationary for logit chains" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      Stationary.residual chain pi < 1e-10)

(* ----- Mixing ----- *)

let mixing_two_state_exact () =
  (* d(t) = (1-p-q)^t * max(pi0, pi1); with p=q=0.25, lambda=0.5,
     d(t) = 0.5^(t+1). t_mix = min t with 0.5^(t+1) <= 1/4 -> t = 1. *)
  let c = two_state 0.25 0.25 in
  let pi = [| 0.5; 0.5 |] in
  check_true "tmix" (Mixing.mixing_time_all c pi = Some 1);
  let curve = Mixing.tv_curve c pi ~starts:[ 0; 1 ] ~steps:4 in
  check_array ~tol:1e-12 "curve" [| 0.5; 0.25; 0.125; 0.0625; 0.03125 |] curve;
  check_float ~tol:1e-12 "tv_at" 0.125 (Mixing.tv_at c pi ~start:0 ~steps:2)

let mixing_monotone =
  QCheck.Test.make ~name:"d(t) is non-increasing" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      let starts = List.init (Chain.size chain) Fun.id in
      let curve = Mixing.tv_curve chain pi ~starts ~steps:30 in
      let ok = ref true in
      for t = 1 to 30 do
        if curve.(t) > curve.(t - 1) +. 1e-12 then ok := false
      done;
      !ok)

let mixing_spectral_matches_evolution =
  QCheck.Test.make ~name:"spectral t_mix = evolution t_mix" ~count:20
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      let starts = List.init (Chain.size chain) Fun.id in
      Mixing.mixing_time chain pi ~starts
      = Mixing.mixing_time_spectral chain pi ~starts)

let mixing_empirical_close () =
  let c = two_state 0.3 0.2 in
  let pi = two_state_pi 0.3 0.2 in
  let r = rng () in
  let tv = Mixing.empirical_tv r c pi ~start:0 ~steps:100 ~replicas:20_000 in
  check_true "small empirical tv" (tv < 0.02)

let mixing_empirical_validation () =
  let c = two_state 0.3 0.2 in
  let pi = two_state_pi 0.3 0.2 in
  let r = rng () in
  check_raises_invalid "negative steps" (fun () ->
      ignore (Mixing.empirical_tv r c pi ~start:0 ~steps:(-1) ~replicas:10));
  check_raises_invalid "start out of range" (fun () ->
      ignore (Mixing.empirical_tv r c pi ~start:2 ~steps:5 ~replicas:10));
  check_raises_invalid "negative start" (fun () ->
      ignore (Mixing.empirical_tv r c pi ~start:(-1) ~steps:5 ~replicas:10));
  check_raises_invalid "no replicas" (fun () ->
      ignore (Mixing.empirical_tv r c pi ~start:0 ~steps:5 ~replicas:0));
  (* steps = 0 stays legal: the empirical law of the start itself. *)
  check_true "zero steps legal"
    (Mixing.empirical_tv r c pi ~start:0 ~steps:0 ~replicas:10 >= 0.)

let mixing_spectral_bounds () =
  check_float ~tol:1e-12 "upper" (2. *. log 8.)
    (Mixing.upper_mixing_time_spectral ~gap:0.5 ~pi_min:0.5 ~eps:0.25);
  check_float ~tol:1e-12 "lower" (1. *. log 2.)
    (Mixing.lower_mixing_time_spectral ~gap:0.5 ~eps:0.25)

(* ----- Spectral ----- *)

let spectral_two_state () =
  let c = two_state 0.3 0.2 in
  let pi = two_state_pi 0.3 0.2 in
  let values = Spectral.spectrum c pi in
  check_array ~tol:1e-10 "spectrum" [| 1.; 0.5 |] values;
  check_float ~tol:1e-9 "lambda2 power" 0.5 (Spectral.lambda2 c pi);
  check_float ~tol:1e-9 "relaxation" 2. (Spectral.relaxation_time c pi);
  check_float ~tol:1e-9 "gap" 0.5 (Spectral.spectral_gap c pi);
  check_float ~tol:1e-9 "min eigenvalue" 0.5 (Spectral.min_eigenvalue c pi)

let spectral_rejects_nonreversible () =
  let rot =
    Chain.of_rows
      [|
        [| (0, 0.1); (1, 0.9) |];
        [| (1, 0.1); (2, 0.9) |];
        [| (2, 0.1); (0, 0.9) |];
      |]
  in
  let pi = Stationary.by_solve rot in
  check_raises_invalid "symmetrize non-reversible" (fun () ->
      ignore (Spectral.symmetrize rot pi))

let spectral_lambda2_matches_jacobi =
  QCheck.Test.make ~name:"power-iteration lambda2 = jacobi lambda2" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      let full = Spectral.spectrum chain pi in
      let star = Float.max full.(1) (Float.abs full.(Array.length full - 1)) in
      Float.abs (Spectral.lambda2 chain pi -. star) < 1e-6)

let spectral_relaxation_brackets_tmix =
  QCheck.Test.make ~name:"Thm 2.3: t_rel brackets t_mix" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      let trel = Spectral.relaxation_time chain pi in
      let pi_min = Array.fold_left Float.min infinity pi in
      match Mixing.mixing_time_all chain pi with
      | None -> false
      | Some t ->
          let t = float_of_int t in
          let upper = Mixing.upper_mixing_time_spectral ~gap:(1. /. trel) ~pi_min ~eps:0.25 in
          let lower = Mixing.lower_mixing_time_spectral ~gap:(1. /. trel) ~eps:0.25 in
          (* mixing_time is the first integer under 1/4, so allow one step slack *)
          t >= lower -. 1. && t <= upper +. 1.)

(* ----- Bottleneck ----- *)

let bottleneck_two_state () =
  let c = two_state 0.3 0.2 in
  let pi = two_state_pi 0.3 0.2 in
  (* R = {0}: Q(0,1) = pi0 * 0.3, B = 0.3. *)
  check_float ~tol:1e-12 "ratio" 0.3 (Bottleneck.ratio c pi (fun i -> i = 0));
  check_float ~tol:1e-12 "lower bound" (0.5 /. (2. *. 0.3))
    (Bottleneck.lower_bound_tmix 0.3);
  check_raises_invalid "empty set" (fun () ->
      ignore (Bottleneck.ratio c pi (fun _ -> false)));
  check_raises_invalid "too heavy" (fun () ->
      ignore (Bottleneck.ratio_checked c pi (fun _ -> true)))

let bottleneck_lower_bound_valid =
  QCheck.Test.make ~name:"Thm 2.7: bottleneck bound <= t_mix" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      match Mixing.mixing_time_all chain pi with
      | None -> false
      | Some tmix ->
          (* Try all sublevel sets of the stationary probability as scores. *)
          let b, _ = Bottleneck.best_sublevel_set chain pi (fun i -> pi.(i)) in
          Bottleneck.lower_bound_tmix b <= float_of_int tmix +. 1.)

let bottleneck_rejects_heavy_proper_subset () =
  (* pi = (0.4, 0.6): the singleton {1} is a proper subset but carries
     more than half the stationary mass, so ratio_checked must refuse
     it while the unchecked ratio still evaluates. *)
  let c = two_state 0.3 0.2 in
  let pi = two_state_pi 0.3 0.2 in
  check_raises_invalid "pi(R) > 1/2" (fun () ->
      ignore (Bottleneck.ratio_checked c pi (fun i -> i = 1)));
  check_float ~tol:1e-12 "light complement accepted"
    (Bottleneck.ratio c pi (fun i -> i = 0))
    (Bottleneck.ratio_checked c pi (fun i -> i = 0))

let bottleneck_two_well_barrier () =
  (* Metropolis birth-death chain for weights (10, 1, 0.1, 0.1, 1, 10):
     two deep wells at the ends separated by a flat barrier. The best
     sublevel cut of the identity score is theta = 2 — the left half
     {0,1,2} with mass exactly 1/2, which beats theta = 1's lighter set
     at equal edge flow (and theta = 3 is rejected as too heavy). *)
  let w = [| 10.; 1.; 0.1; 0.1; 1.; 10. |] in
  let n = Array.length w in
  let rows =
    Array.init n (fun i ->
        let up =
          if i < n - 1 then 0.5 *. Float.min 1. (w.(i + 1) /. w.(i)) else 0.
        in
        let down = if i > 0 then 0.5 *. Float.min 1. (w.(i - 1) /. w.(i)) else 0. in
        let entries = ref [ (i, 1. -. up -. down) ] in
        if up > 0. then entries := (i + 1, up) :: !entries;
        if down > 0. then entries := (i - 1, down) :: !entries;
        Array.of_list !entries)
  in
  let chain = Chain.of_rows rows in
  let total = Array.fold_left ( +. ) 0. w in
  let pi = Array.map (fun x -> x /. total) w in
  check_true "metropolis chain is reversible" (Chain.is_reversible chain pi);
  let b, theta = Bottleneck.best_sublevel_set chain pi float_of_int in
  check_float ~tol:1e-12 "cut sits at the barrier top" 2. theta;
  check_float ~tol:1e-12 "best ratio = ratio of {0,1,2}"
    (Bottleneck.ratio chain pi (fun i -> i <= 2))
    b;
  (* The barrier cut is strictly tighter than slicing inside a well. *)
  check_true "barrier beats the well-interior cut"
    (b < Bottleneck.ratio chain pi (fun i -> i = 0))

(* ----- Absorbing: closed transient class ----- *)

let absorbing_rejects_closed_transient_class () =
  (* States 0 and 1 swap forever and never reach the absorbing state 2;
     state 3 is honestly transient. analyse must refuse the chain
     instead of producing a singular fundamental matrix. *)
  let chain =
    Chain.of_rows
      [|
        [| (1, 1.) |];
        [| (0, 1.) |];
        [| (2, 1.) |];
        [| (0, 0.5); (2, 0.5) |];
      |]
  in
  check_raises_invalid "closed transient class" (fun () ->
      ignore (Absorbing.analyse chain));
  (* The same topology with an escape hatch out of {0,1} is accepted. *)
  let ok =
    Chain.of_rows
      [|
        [| (1, 1.) |];
        [| (0, 0.5); (2, 0.5) |];
        [| (2, 1.) |];
        [| (0, 0.5); (2, 0.5) |];
      |]
  in
  let a = Absorbing.analyse ok in
  check_float ~tol:1e-9 "absorbs almost surely" 1.
    (Absorbing.absorption_probability a ~start:0 ~target:2)

(* ----- Coupling ----- *)

let coupling_independent_coalesces () =
  let c = two_state 0.5 0.5 in
  let step = Coupling.independent_coupling c in
  let r = rng () in
  (match Coupling.coalescence_time r step ~x0:0 ~y0:1 ~max_steps:10_000 with
  | Some t -> check_true "coalesced" (t > 0)
  | None -> Alcotest.fail "should coalesce");
  check_int "already together"
    0
    (Option.get (Coupling.coalescence_time r step ~x0:1 ~y0:1 ~max_steps:10))

let coupling_stays_together () =
  let c = two_state 0.3 0.2 in
  let step = Coupling.independent_coupling c in
  let r = rng () in
  check_int "no violations" 0
    (Coupling.grand_coupling_check r step ~size:2 ~trials:200 ~horizon:50)

let coupling_estimate_bounds_tmix () =
  (* For the lazy random walk on 2 states the coupling bound must be a
     valid upper bound on the mixing time. *)
  let c = two_state 0.25 0.25 in
  let pi = [| 0.5; 0.5 |] in
  let step = Coupling.independent_coupling c in
  let r = rng () in
  match
    ( Mixing.mixing_time_all c pi,
      Coupling.tmix_upper_estimate r step ~x0:0 ~y0:1 ~max_steps:10_000
        ~replicas:2_000 )
  with
  | Some t, Some est -> check_true "estimate >= tmix" (est >= t)
  | _ -> Alcotest.fail "both should exist"

let coupling_censoring () =
  (* A coupling that never coalesces from distinct states. *)
  let stuck _rng (x, y) = (x, y) in
  let r = rng () in
  check_true "censored -> None"
    (Coupling.tmix_upper_estimate r stuck ~x0:0 ~y0:1 ~max_steps:100 ~replicas:50
    = None)

(* ----- Birth_death ----- *)

let bd_validation () =
  check_raises_invalid "up at n" (fun () ->
      ignore (Birth_death.create ~up:[| 0.5; 0.5 |] ~down:[| 0.; 0.5 |]));
  check_raises_invalid "down at 0" (fun () ->
      ignore (Birth_death.create ~up:[| 0.5; 0. |] ~down:[| 0.5; 0.5 |]));
  check_raises_invalid "sum > 1" (fun () ->
      ignore (Birth_death.create ~up:[| 0.7; 0.7; 0. |] ~down:[| 0.; 0.7; 0.7 |]))

let bd_stationary_closed_form () =
  (* Symmetric walk: up = down = 1/4 inside; pi should be uniform-ish
     with halved mass at the endpoints... compute directly instead:
     detailed balance pi(k+1)/pi(k) = up(k)/down(k+1). *)
  let up = [| 0.25; 0.25; 0.25; 0. |] in
  let down = [| 0.; 0.25; 0.25; 0.25 |] in
  let bd = Birth_death.create ~up ~down in
  let pi = Birth_death.stationary bd in
  check_array ~tol:1e-12 "uniform" (Array.make 4 0.25) pi;
  (* Asymmetric: up twice the down -> pi(k) proportional to 2^k. *)
  let up2 = [| 0.5; 0.5; 0. |] and down2 = [| 0.; 0.25; 0.25 |] in
  let bd2 = Birth_death.create ~up:up2 ~down:down2 in
  let pi2 = Birth_death.stationary bd2 in
  check_array ~tol:1e-12 "geometric" [| 1. /. 7.; 2. /. 7.; 4. /. 7. |] pi2

let bd_chain_consistent () =
  let bd = Birth_death.create ~up:[| 0.3; 0.2; 0. |] ~down:[| 0.; 0.1; 0.4 |] in
  let chain = Birth_death.to_chain bd in
  check_float "up" 0.3 (Chain.prob chain 0 1);
  check_float "stay" 0.7 (Chain.prob chain 0 0);
  check_float "down" 0.4 (Chain.prob chain 2 1);
  let pi = Birth_death.stationary bd in
  check_true "stationary on chain" (Stationary.is_stationary chain pi);
  check_true "reversible" (Chain.is_reversible chain pi)

let bd_mixing_consistent () =
  let bd = Birth_death.create ~up:[| 0.25; 0.25; 0. |] ~down:[| 0.; 0.25; 0.25 |] in
  check_true "evolution = spectral"
    (Birth_death.mixing_time bd = Birth_death.mixing_time_spectral bd);
  let spectrum = Birth_death.spectrum bd in
  check_float ~tol:1e-10 "top eigenvalue" 1. spectrum.(0);
  check_true "relaxation positive" (Birth_death.relaxation_time bd > 0.)

let mixing_squaring_matches_evolution =
  QCheck.Test.make ~name:"squaring t_mix = evolution t_mix" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = random_reversible seed in
      let starts = List.init (Chain.size chain) Fun.id in
      Mixing.mixing_time chain pi ~starts
      = Mixing.mixing_time_squaring chain pi ~starts)

let mixing_squaring_extreme_beta () =
  (* The regime that defeats the eigendecomposition: pi_min ~ 1e-80. *)
  let bd = Logit.Lumping.clique ~n:128 ~delta0:1.0 ~delta1:1.0 ~beta:0.003 in
  let chain = Birth_death.to_chain bd in
  let pi = Birth_death.stationary bd in
  check_true "pi_min underflows the spectral route"
    (Array.fold_left Float.min infinity pi < 1e-25);
  let starts = List.init 129 Fun.id in
  match
    ( Mixing.mixing_time_squaring chain pi ~starts,
      Mixing.mixing_time ~max_steps:100_000 chain pi ~starts )
  with
  | Some a, Some b ->
      (* Squaring renormalisation can move the crossing by a step. *)
      check_true "agree within 1 step" (abs (a - b) <= 1)
  | _ -> Alcotest.fail "both methods should terminate"

let mixing_squaring_size_guard () =
  check_raises_invalid "size guard" (fun () ->
      let rows = Array.make 800 [| (0, 1.) |] in
      let rows = Array.mapi (fun i _ -> [| (i, 1.) |]) rows in
      ignore
        (Mixing.mixing_time_squaring (Chain.of_rows rows)
           (Array.make 800 (1. /. 800.))
           ~starts:[ 0 ]))

(* ----- β-families: one shared structure, per-β probability planes ----- *)

(* The bit-identity contract: every family plane must reproduce an
   independent [chain ~beta] build exactly — same sparsity, same float
   bits — across the β grid, game zoo, and both panel kernels. *)

let family_grid = [ 0.0; 0.25; 1.0; 2.5 ]

let family_rows_equal a b =
  Chain.size a = Chain.size b
  && begin
       let ok = ref true in
       for i = 0 to Chain.size a - 1 do
         if Chain.row a i <> Chain.row b i then ok := false
       done;
       !ok
     end

let family_matches_solo game betas =
  let fam = Logit.Logit_dynamics.chain_family game ~betas in
  List.for_all
    (fun (i, beta) ->
      family_rows_equal (Family.plane fam i)
        (Logit.Logit_dynamics.chain game ~beta))
    (List.mapi (fun i b -> (i, b)) betas)

let family_planes_bit_identical =
  QCheck.Test.make ~name:"family planes = independent chain builds" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, _ = random_potential_game ~players:3 ~strategies:2 seed in
      family_matches_solo game family_grid)

let family_game_zoo () =
  let zoo =
    [
      ("pure coordination", Games.Zoo.pure_coordination ~players:3 ~strategies:2);
      ( "2x2 coordination",
        Games.Coordination.to_game
          (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:0.5) );
      ( "ring graphical",
        Games.Graphical.to_game
          (Games.Graphical.create
             (Graphs.Generators.ring 4)
             (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)) );
    ]
  in
  List.iter
    (fun (name, game) ->
      check_true (name ^ ": planes match solo builds")
        (family_matches_solo game family_grid);
      let fam = Logit.Logit_dynamics.chain_family game ~betas:family_grid in
      (* Logit rows keep every neighbour's softmax mass strictly
         positive at these β, so the sparsity — hence the index
         structure — is β-independent. *)
      check_true (name ^ ": shared structure") (Family.shared_structure fam))
    zoo

let family_accessors () =
  let game, _ = random_potential_game 11 in
  let fam = Logit.Logit_dynamics.chain_family game ~betas:family_grid in
  check_int "num_planes" (List.length family_grid) (Family.num_planes fam);
  check_int "size" (Games.Strategy_space.size (Games.Game.space game))
    (Family.size fam);
  List.iteri
    (fun i b -> check_float (Printf.sprintf "beta %d" i) b (Family.beta fam i))
    family_grid;
  check_array "betas copy" (Array.of_list family_grid) (Family.betas fam);
  (Family.betas fam).(0) <- 99.;
  check_float "betas returns a copy" 0.0 (Family.beta fam 0);
  check_true "find hit" (Family.find fam ~beta:0.25 = Some 1);
  check_true "find miss" (Family.find fam ~beta:0.26 = None);
  check_raises_invalid "plane out of range" (fun () ->
      ignore (Family.plane fam (List.length family_grid)));
  check_raises_invalid "beta out of range" (fun () ->
      ignore (Family.beta fam (-1)))

let family_validation () =
  let game, _ = random_potential_game 11 in
  check_raises_invalid "empty grid" (fun () ->
      ignore (Logit.Logit_dynamics.chain_family game ~betas:[]));
  check_raises_invalid "negative beta" (fun () ->
      ignore (Logit.Logit_dynamics.chain_family game ~betas:[ 1.0; -0.5 ]));
  let c = two_state 0.3 0.2 in
  check_raises_invalid "Family.v empty" (fun () ->
      ignore (Family.v ~betas:[||] ~planes:[||]));
  check_raises_invalid "Family.v length mismatch" (fun () ->
      ignore (Family.v ~betas:[| 1.0 |] ~planes:[| c; c |]));
  check_raises_invalid "Family.v size mismatch" (fun () ->
      ignore
        (Family.v ~betas:[| 1.0; 2.0 |]
           ~planes:[| c; Chain.of_rows [| [| (0, 1.) |] |] |]))

(* The fused multi-plane SpMM must agree bit-for-bit with running
   [evolve_many_into] on each plane alone — shared src panels, distinct
   dst panels, compared by float bits. *)
let family_fused_spmm_matches_per_plane =
  QCheck.Test.make ~name:"fused family SpMM = per-plane evolve_many_into"
    ~count:20
    QCheck.(pair (int_bound 1_000_000) (int_range 1 5))
    (fun (seed, k) ->
      let game, _ = random_potential_game ~players:3 ~strategies:2 seed in
      let fam = Logit.Logit_dynamics.chain_family game ~betas:family_grid in
      let np = Family.num_planes fam in
      let n = Family.size fam in
      let r = rng ~seed () in
      let src =
        Array.init np (fun _ ->
            panel_of_rows (Array.init k (fun _ -> random_sparse_vector r n)))
      in
      let dst_fused = Array.init np (fun _ -> panel_create (k * n)) in
      let dst_solo = Array.init np (fun _ -> panel_create (k * n)) in
      Family.evolve_many_into fam ~k ~src ~dst:dst_fused;
      Array.iteri
        (fun p c -> Chain.evolve_many_into c ~k ~src:src.(p) ~dst:dst_solo.(p))
        (Array.init np (Family.plane fam));
      let ok = ref true in
      for p = 0 to np - 1 do
        for row = 0 to k - 1 do
          let a = panel_row dst_fused.(p) ~n row
          and b = panel_row dst_solo.(p) ~n row in
          Array.iteri
            (fun i x ->
              if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
                ok := false)
            a
        done
      done;
      !ok)

let family_spmm_validation () =
  let game, _ = random_potential_game 11 in
  let fam = Logit.Logit_dynamics.chain_family game ~betas:family_grid in
  let np = Family.num_planes fam in
  let n = Family.size fam in
  let k = 2 in
  let mk () = Array.init np (fun _ -> panel_create (k * n)) in
  let src = mk () in
  check_raises_invalid "panel count mismatch" (fun () ->
      Family.evolve_many_into fam ~k ~src:[| src.(0) |] ~dst:(mk ()));
  check_raises_invalid "dst aliases src" (fun () ->
      Family.evolve_many_into fam ~k ~src ~dst:src);
  check_raises_invalid "bad panel dims" (fun () ->
      Family.evolve_many_into fam ~k:(k + 1) ~src ~dst:(mk ()))

let family_mixing_matches_solo =
  QCheck.Test.make ~name:"family_mixing_times = per-plane mixing_time"
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi = random_potential_game ~players:3 ~strategies:2 seed in
      let fam = Logit.Logit_dynamics.chain_family game ~betas:family_grid in
      let space = Games.Game.space game in
      let pis =
        Array.of_list
          (List.map
             (fun beta -> Logit.Gibbs.stationary space phi ~beta)
             family_grid)
      in
      let starts = List.init (Family.size fam) Fun.id in
      let fused = Mixing.family_mixing_times fam ~pis ~starts in
      let solo =
        Array.of_list
          (List.mapi
             (fun i _ -> Mixing.mixing_time (Family.plane fam i) pis.(i) ~starts)
             family_grid)
      in
      fused = solo)

(* A family whose planes disagree on sparsity still works: structure
   sharing is detected, not assumed, and every panel entry point falls
   back to the per-plane kernels. *)
let family_non_shared_fallback () =
  let a = two_state 0.3 0.2 in
  let b = Chain.of_rows [| [| (1, 1.) |]; [| (0, 1.) |] |] in
  let fam = Family.v ~betas:[| 1.0; 2.0 |] ~planes:[| a; b |] in
  check_false "structure not shared" (Family.shared_structure fam);
  check_true "planes intact"
    (family_rows_equal (Family.plane fam 0) a
    && family_rows_equal (Family.plane fam 1) b);
  let k = 3 in
  let n = 2 in
  let src =
    Array.init 2 (fun _ ->
        panel_of_rows [| [| 1.; 0. |]; [| 0.25; 0.75 |]; [| 0.; 1. |] |])
  in
  let dst = Array.init 2 (fun _ -> panel_create (k * n)) in
  Family.evolve_many_into fam ~k ~src ~dst;
  Array.iteri
    (fun p c ->
      let solo = panel_create (k * n) in
      Chain.evolve_many_into c ~k ~src:src.(p) ~dst:solo;
      for row = 0 to k - 1 do
        check_array
          (Printf.sprintf "plane %d row %d" p row)
          (panel_row solo ~n row)
          (panel_row dst.(p) ~n row)
      done)
    [| a; b |]

let rec family_rm_rf path =
  if Sys.is_directory path then begin
    Array.iter
      (fun e -> family_rm_rf (Filename.concat path e))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let family_codec_roundtrip () =
  let root = Filename.temp_file "logitdyn" ".family" in
  Sys.remove root;
  let cas = Store.Cas.open_ ~dir:root () in
  Fun.protect
    ~finally:(fun () -> try family_rm_rf root with Sys_error _ -> ())
    (fun () ->
      let game, _ = random_potential_game 7 in
      let size = Games.Strategy_space.size (Games.Game.space game) in
      let builds = ref 0 in
      let build () =
        incr builds;
        Logit.Logit_dynamics.chain_family game ~betas:family_grid
      in
      let cached () =
        Family_codec.cached ~store:cas ~game:"test-family" ~size
          ~betas:family_grid ~variant:"sequential-logit" build
      in
      let cold = cached () in
      check_int "cold build runs" 1 !builds;
      let warm = cached () in
      check_int "warm hit skips the build" 1 !builds;
      let fresh = build () in
      List.iteri
        (fun i _ ->
          check_true
            (Printf.sprintf "cold plane %d matches fresh" i)
            (family_rows_equal (Family.plane cold i) (Family.plane fresh i));
          check_true
            (Printf.sprintf "warm plane %d matches fresh" i)
            (family_rows_equal (Family.plane warm i) (Family.plane fresh i)))
        family_grid;
      check_true "warm family keeps shared structure"
        (Family.shared_structure warm);
      check_true "warm betas preserved"
        (Family.betas warm = Array.of_list family_grid);
      check_raises_invalid "empty grid rejected" (fun () ->
          ignore
            (Family_codec.cached ~store:cas ~game:"test-family" ~size ~betas:[]
               ~variant:"sequential-logit" build)))

let family_codec_corrupt_rejected () =
  let game, _ = random_potential_game 7 in
  let fam = Logit.Logit_dynamics.chain_family game ~betas:family_grid in
  let s = Family_codec.encode_structure fam in
  (match Family_codec.decode_structure s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "structure roundtrip: %s" e);
  let p = Family_codec.encode_plane (Family.plane fam 1) in
  (match Family_codec.decode_plane p with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "plane roundtrip: %s" e);
  let truncate s = String.sub s 0 (String.length s - 1) in
  check_true "truncated structure rejected"
    (Result.is_error (Family_codec.decode_structure (truncate s)));
  check_true "truncated plane rejected"
    (Result.is_error (Family_codec.decode_plane (truncate p)))

let suites =
  [
    ( "markov.chain",
      [
        test "validation" chain_validation;
        test "evolve & apply" chain_evolve_apply;
        test "irreducible & aperiodic" chain_structure;
        test "reversibility" chain_reversibility;
        test "simulate & hitting" chain_simulate;
        test "sample frequencies" chain_sample_frequencies;
      ] );
    ( "markov.csr",
      [
        test "rows sorted & duplicate-free" csr_rows_sorted_dupfree;
        qcheck csr_rows_sorted_random;
        qcheck csr_prob_binary_search;
        test "evolve_into" csr_evolve_into;
        qcheck csr_evolve_bit_identical;
        qcheck csr_sampler_agreement;
        test "sampler boundaries" csr_sample_boundaries;
        test "negative step validation" csr_validation_negative_steps;
      ] );
    ( "markov.csc",
      [
        test "two-state transpose" csc_two_state;
        qcheck csc_invariants_random;
        qcheck pull_matches_push;
        test "pull validation" pull_validation;
        qcheck spmm_matches_single_evolves;
        test "spmm validation" spmm_validation;
      ] );
    ( "markov.stationary",
      [
        test "two-state closed form" stationary_two_state;
        qcheck stationary_solve_matches_power;
        qcheck stationary_gibbs_is_stationary;
      ] );
    ( "markov.mixing",
      [
        test "two-state exact" mixing_two_state_exact;
        test "empirical tv" mixing_empirical_close;
        test "empirical tv validation" mixing_empirical_validation;
        test "spectral bound formulas" mixing_spectral_bounds;
        test "squaring at extreme beta" mixing_squaring_extreme_beta;
        test "squaring size guard" mixing_squaring_size_guard;
        qcheck mixing_monotone;
        qcheck mixing_spectral_matches_evolution;
        qcheck mixing_squaring_matches_evolution;
      ] );
    ( "markov.family",
      [
        qcheck family_planes_bit_identical;
        test "game zoo planes & shared structure" family_game_zoo;
        test "accessors" family_accessors;
        test "validation" family_validation;
        qcheck family_fused_spmm_matches_per_plane;
        test "fused SpMM validation" family_spmm_validation;
        qcheck family_mixing_matches_solo;
        test "non-shared structure fallback" family_non_shared_fallback;
        test "codec cached cold/warm" family_codec_roundtrip;
        test "codec roundtrip & corrupt rejection" family_codec_corrupt_rejected;
      ] );
    ( "markov.spectral",
      [
        test "two-state" spectral_two_state;
        test "rejects non-reversible" spectral_rejects_nonreversible;
        qcheck spectral_lambda2_matches_jacobi;
        qcheck spectral_relaxation_brackets_tmix;
      ] );
    ( "markov.bottleneck",
      [
        test "two-state" bottleneck_two_state;
        qcheck bottleneck_lower_bound_valid;
        test "rejects heavy proper subset" bottleneck_rejects_heavy_proper_subset;
        test "two-well barrier chain" bottleneck_two_well_barrier;
      ] );
    ( "markov.absorbing_structure",
      [
        test "rejects closed transient class"
          absorbing_rejects_closed_transient_class;
      ] );
    ( "markov.coupling",
      [
        test "independent coalesces" coupling_independent_coalesces;
        test "stays together" coupling_stays_together;
        test "estimate bounds tmix" coupling_estimate_bounds_tmix;
        test "censoring" coupling_censoring;
      ] );
    ( "markov.birth_death",
      [
        test "validation" bd_validation;
        test "stationary closed forms" bd_stationary_closed_form;
        test "chain consistency" bd_chain_consistent;
        test "mixing & spectrum" bd_mixing_consistent;
      ] );
  ]
