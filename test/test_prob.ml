open Helpers
open Prob

(* ----- Rng ----- *)

let rng_deterministic () =
  let a = Rng.create 99 and b = Rng.create 99 in
  for i = 0 to 20 do
    check_true (Printf.sprintf "same stream %d" i) (Rng.bits64 a = Rng.bits64 b)
  done

let rng_copy_independent () =
  let a = Rng.create 1 in
  let b = Rng.copy a in
  check_true "copy equal" (Rng.bits64 a = Rng.bits64 b);
  let c = Rng.split a in
  check_false "split diverges" (Rng.bits64 a = Rng.bits64 c)

let rng_float_range () =
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Rng.float r in
    check_true "in [0,1)" (x >= 0. && x < 1.)
  done

let rng_int_uniform () =
  let r = rng () in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let k = Rng.int r 5 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun k c ->
      let freq = float_of_int c /. float_of_int n in
      check_float ~tol:0.02 (Printf.sprintf "freq %d" k) 0.2 freq)
    counts;
  check_raises_invalid "bound 0" (fun () -> Rng.int r 0)

let rng_bernoulli_mean () =
  let r = rng () in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  check_float ~tol:0.02 "bernoulli mean" 0.3 (float_of_int !hits /. float_of_int n)

let rng_categorical () =
  let r = rng () in
  let w = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let k = Rng.categorical r w in
    counts.(k) <- counts.(k) + 1
  done;
  check_int "zero-weight never drawn" 0 counts.(1);
  check_float ~tol:0.02 "weight 1/4" 0.25 (float_of_int counts.(0) /. float_of_int n);
  check_raises_invalid "negative weight" (fun () -> Rng.categorical r [| -1.; 2. |]);
  check_raises_invalid "zero total" (fun () -> Rng.categorical r [| 0.; 0. |])

let rng_categorical_boundaries () =
  (* The deterministic selection core, driven by explicit thresholds. *)
  let w = [| 1.; 0.; 3. |] in
  check_int "u in first weight" 0 (Rng.categorical_pick w ~u:0.5);
  check_int "zero weight skipped at its prefix" 2 (Rng.categorical_pick w ~u:1.0);
  check_int "u in last weight" 2 (Rng.categorical_pick w ~u:3.9);
  (* u at or past the accumulated mass (float rounding of u = unif *
     total) must fall back to the last strictly positive weight... *)
  check_int "u = total falls back" 2 (Rng.categorical_pick w ~u:4.0);
  check_int "u past total falls back" 2 (Rng.categorical_pick w ~u:4.5);
  (* ... and never land on a zero-weight tail. *)
  let tail = [| 1.; 3.; 0.; 0. |] in
  check_int "zero tail skipped on fallback" 1 (Rng.categorical_pick tail ~u:4.0);
  (* A zero-weight head is unreachable even at u = 0. *)
  check_int "zero head skipped at u=0" 1 (Rng.categorical_pick [| 0.; 2. |] ~u:0.);
  (* categorical = categorical_pick on the same stream. *)
  let a = rng () and b = rng () in
  for _ = 1 to 1_000 do
    let direct = Rng.categorical a w in
    let total = Array.fold_left ( +. ) 0. w in
    let picked = Rng.categorical_pick w ~u:(Rng.float b *. total) in
    check_int "categorical = pick of scaled uniform" picked direct
  done

let rng_exponential_mean () =
  let r = rng () in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~rate:2.
  done;
  check_float ~tol:0.02 "exp mean 1/rate" 0.5 (!acc /. float_of_int n)

let rng_geometric_mean () =
  let r = rng () in
  let n = 50_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.geometric r 0.25
  done;
  (* mean failures = (1-p)/p = 3 *)
  check_float ~tol:0.1 "geometric mean" 3. (float_of_int !acc /. float_of_int n)

let rng_shuffle_permutes () =
  let r = rng () in
  let a = Array.init 10 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_array ~tol:0. "permutation"
    (Array.init 10 float_of_int)
    (Array.map float_of_int sorted)

(* ----- Logspace ----- *)

let logspace_basic () =
  check_float ~tol:1e-12 "logsumexp" (log 3.) (Logspace.logsumexp [| 0.; 0.; 0. |]);
  check_float ~tol:1e-12 "logsumexp2" (log 2.) (Logspace.logsumexp2 0. 0.);
  check_float "neg_infinity" neg_infinity (Logspace.logsumexp [||]);
  check_float "all -inf" neg_infinity
    (Logspace.logsumexp [| neg_infinity; neg_infinity |])

let logspace_huge () =
  (* Stability: values that would overflow exp directly. *)
  let z = Logspace.logsumexp [| 1000.; 1000. |] in
  check_float ~tol:1e-9 "huge" (1000. +. log 2.) z;
  let p = Logspace.normalize_logs [| 1000.; 1000. +. log 3. |] in
  check_array ~tol:1e-12 "normalize huge" [| 0.25; 0.75 |] p

let logsumexp2_infinities () =
  (* Regression: [m = infinity] used to produce [inf -. inf = nan]
     inside [exp]; an infinite argument must dominate exactly as in
     [logsumexp]. *)
  (* Exact equality: check_float would let a NaN slip through (every
     comparison against NaN is false). *)
  check_true "inf + finite" (Logspace.logsumexp2 infinity 0. = infinity);
  check_true "finite + inf" (Logspace.logsumexp2 1000. infinity = infinity);
  check_true "inf + inf" (Logspace.logsumexp2 infinity infinity = infinity);
  check_true "inf + -inf" (Logspace.logsumexp2 infinity neg_infinity = infinity);
  check_true "-inf + -inf"
    (Logspace.logsumexp2 neg_infinity neg_infinity = neg_infinity);
  check_float ~tol:1e-12 "-inf + finite" 5. (Logspace.logsumexp2 neg_infinity 5.);
  (* Agreement with the n-ary version on the same pairs. *)
  List.iter
    (fun (a, b) ->
      check_true "matches logsumexp"
        (Logspace.logsumexp [| a; b |] = Logspace.logsumexp2 a b))
    [ (infinity, 0.); (0., infinity); (infinity, neg_infinity) ];
  check_float ~tol:1e-12 "matches logsumexp (finite)"
    (Logspace.logsumexp [| 3.; 4. |])
    (Logspace.logsumexp2 3. 4.)

let logspace_log1mexp () =
  check_float ~tol:1e-12 "log1mexp" (log (1. -. exp (-1.))) (Logspace.log1mexp (-1.));
  check_float ~tol:1e-12 "log1mexp small"
    (log (-.Float.expm1 (-1e-10)))
    (Logspace.log1mexp (-1e-10));
  check_raises_invalid "positive arg" (fun () -> ignore (Logspace.log1mexp 0.1))

(* ----- Dist ----- *)

let dist_basic () =
  let d = Dist.of_weights [| 1.; 3. |] in
  check_float "prob" 0.25 (Dist.prob d 0);
  check_int "size" 2 (Dist.size d);
  check_true "support" (Dist.support d = [ 0; 1 ]);
  let point = Dist.point 3 1 in
  check_true "point support" (Dist.support point = [ 1 ]);
  check_raises_invalid "negative" (fun () -> ignore (Dist.of_weights [| -1.; 2. |]))

let dist_tv_kl () =
  let p = Dist.of_weights [| 1.; 1. |] and q = Dist.of_weights [| 1.; 3. |] in
  check_float ~tol:1e-12 "tv" 0.25 (Dist.tv_distance p q);
  check_float ~tol:1e-12 "tv self" 0. (Dist.tv_distance p p);
  check_true "kl nonneg" (Dist.kl_divergence p q > 0.);
  check_float ~tol:1e-12 "kl self" 0. (Dist.kl_divergence q q);
  let point = Dist.point 2 0 in
  check_true "kl infinite" (Dist.kl_divergence q point = infinity)

let dist_entropy_expect () =
  let u = Dist.uniform 4 in
  check_float ~tol:1e-12 "entropy uniform" (log 4.) (Dist.entropy u);
  check_float ~tol:1e-12 "entropy point" 0. (Dist.entropy (Dist.point 4 2));
  check_float ~tol:1e-12 "expect" 1.5 (Dist.expect u float_of_int);
  check_float ~tol:1e-12 "mass" 0.5 (Dist.mass u (fun i -> i < 2))

let dist_evolve () =
  (* Deterministic cycle on 3 states. *)
  let step i = [ ((i + 1) mod 3, 1.) ] in
  let d = Dist.evolve (Dist.point 3 0) step in
  check_float "evolved" 1. (Dist.prob d 1)

let dist_mix_sample () =
  let p = Dist.point 2 0 and q = Dist.point 2 1 in
  let m = Dist.mix 0.3 p q in
  check_float ~tol:1e-12 "mix" 0.3 (Dist.prob m 0);
  let r = rng () in
  let counts = Array.make 2 0 in
  for _ = 1 to 20_000 do
    let k = Dist.sample r m in
    counts.(k) <- counts.(k) + 1
  done;
  check_float ~tol:0.02 "sample freq" 0.3 (float_of_int counts.(0) /. 20_000.)

let dist_log_weights () =
  let d = Dist.of_log_weights [| 0.; log 3. |] in
  check_float ~tol:1e-12 "log weights" 0.25 (Dist.prob d 0)

(* ----- Stats ----- *)

let stats_moments () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_float ~tol:1e-12 "variance" (32. /. 7.) (Stats.variance xs);
  check_float "single variance" 0. (Stats.variance [| 3. |]);
  check_raises_invalid "empty mean" (fun () -> ignore (Stats.mean [||]))

let stats_quantiles () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.median xs);
  check_float "q0" 1. (Stats.quantile xs 0.);
  check_float "q1" 5. (Stats.quantile xs 1.);
  check_float "q interp" 1.5 (Stats.quantile xs 0.125);
  let lo, hi = Stats.min_max xs in
  check_float "min" 1. lo;
  check_float "max" 5. hi

let stats_fit () =
  let xs = [| 0.; 1.; 2.; 3. |] in
  let ys = [| 1.; 3.; 5.; 7. |] in
  let slope, intercept = Stats.linear_fit xs ys in
  check_float ~tol:1e-12 "slope" 2. slope;
  check_float ~tol:1e-12 "intercept" 1. intercept;
  check_float ~tol:1e-12 "corr" 1. (Stats.correlation xs ys);
  check_float ~tol:1e-12 "anticorr" (-1.)
    (Stats.correlation xs (Array.map (fun y -> -.y) ys));
  check_raises_invalid "degenerate" (fun () ->
      ignore (Stats.linear_fit [| 1.; 1. |] [| 1.; 2. |]))

let stats_ci () =
  let xs = Array.init 100 (fun i -> float_of_int (i mod 2)) in
  let m, half = Stats.mean_ci95 xs in
  check_float "ci mean" 0.5 m;
  check_true "ci positive" (half > 0. && half < 0.2)

(* ----- Empirical ----- *)

let empirical_basic () =
  let e = Empirical.create 3 in
  Empirical.add e 0;
  Empirical.add e 0;
  Empirical.add_many e 2 2;
  check_int "count" 2 (Empirical.count e 0);
  check_int "total" 4 (Empirical.total e);
  check_int "size" 3 (Empirical.size e);
  let d = Empirical.to_dist e in
  check_float "dist" 0.5 (Prob.Dist.prob d 0);
  check_float ~tol:1e-12 "tv against self" 0.
    (Empirical.tv_against e (Prob.Dist.of_weights [| 2.; 0.; 2. |]))

let empirical_of_samples () =
  let e = Empirical.of_samples 2 [ 0; 1; 1; 1 ] in
  check_float "from list" 0.75 (Prob.Dist.prob (Empirical.to_dist e) 1);
  check_raises_invalid "empty to_dist" (fun () ->
      ignore (Empirical.to_dist (Empirical.create 2)))

(* ----- Histogram ----- *)

let histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 9.5; 11.0; -1.0 ];
  check_int "total" 6 (Histogram.total h);
  let counts = Histogram.counts h in
  check_int "bin0 (incl clamped -1)" 3 counts.(0);
  check_int "bin4 (incl clamped 11)" 2 counts.(4);
  let lo, hi = Histogram.bin_bounds h 1 in
  check_float "bin lo" 2. lo;
  check_float "bin hi" 4. hi;
  check_true "render non-empty" (String.length (Histogram.render h) > 0);
  check_raises_invalid "bad interval" (fun () ->
      ignore (Histogram.create ~lo:1. ~hi:1. ~bins:3))

(* ----- qcheck properties ----- *)

let tv_triangle =
  QCheck.Test.make ~name:"TV satisfies triangle inequality" ~count:100
    QCheck.(triple (list_of_size (Gen.return 4) pos_float)
              (list_of_size (Gen.return 4) pos_float)
              (list_of_size (Gen.return 4) pos_float))
    (fun (a, b, c) ->
      let valid l = List.exists (fun x -> x > 0.) l && List.for_all (fun x -> Float.is_finite x) l in
      QCheck.assume (valid a && valid b && valid c);
      let d l = Dist.of_weights (Array.of_list l) in
      let da = d a and db = d b and dc = d c in
      Dist.tv_distance da dc
      <= Dist.tv_distance da db +. Dist.tv_distance db dc +. 1e-12)

let logsumexp_monotone =
  QCheck.Test.make ~name:"logsumexp >= max element" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 8) (float_range (-50.) 50.))
    (fun l ->
      let a = Array.of_list l in
      Logspace.logsumexp a >= Array.fold_left Float.max neg_infinity a -. 1e-12)

let suites =
  [
    ( "prob.rng",
      [
        test "deterministic" rng_deterministic;
        test "copy & split" rng_copy_independent;
        test "float range" rng_float_range;
        test "int uniform" rng_int_uniform;
        test "bernoulli mean" rng_bernoulli_mean;
        test "categorical" rng_categorical;
        test "categorical boundaries" rng_categorical_boundaries;
        test "exponential mean" rng_exponential_mean;
        test "geometric mean" rng_geometric_mean;
        test "shuffle permutes" rng_shuffle_permutes;
      ] );
    ( "prob.logspace",
      [
        test "basics" logspace_basic;
        test "huge values" logspace_huge;
        test "logsumexp2 infinities" logsumexp2_infinities;
        test "log1mexp" logspace_log1mexp;
        qcheck logsumexp_monotone;
      ] );
    ( "prob.dist",
      [
        test "basics" dist_basic;
        test "tv & kl" dist_tv_kl;
        test "entropy & expect" dist_entropy_expect;
        test "evolve" dist_evolve;
        test "mix & sample" dist_mix_sample;
        test "log weights" dist_log_weights;
        qcheck tv_triangle;
      ] );
    ( "prob.stats",
      [
        test "moments" stats_moments;
        test "quantiles" stats_quantiles;
        test "linear fit" stats_fit;
        test "confidence interval" stats_ci;
      ] );
    ( "prob.empirical",
      [ test "basics" empirical_basic; test "of_samples" empirical_of_samples ] );
    ("prob.histogram", [ test "basics" histogram_basic ]);
  ]
