(* Recursive-descent JSON over a string with an index cursor. The
   grammar is small enough that hand-rolling beats pulling in a
   dependency the container may not have; strictness (whole-input
   parse, duplicate-free printing, finite numbers only) is what the
   trajectory codec actually needs. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

let is_ws = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_exn s =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < len && is_ws s.[!pos] do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail !pos (Printf.sprintf "expected %c, found %c" c got)
    | None -> fail !pos (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub s !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail !pos (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail !pos "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= len then fail !pos "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'u' ->
               advance ();
               if !pos + 4 > len then fail !pos "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> fail !pos "bad \\u escape"
               in
               pos := !pos + 4;
               (* The bench records are ASCII; encode BMP code points
                  as UTF-8 without surrogate-pair handling. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
           | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> fail !pos "control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let slice = String.sub s start (!pos - start) in
    match float_of_string_opt slice with
    | Some f when Float.is_finite f -> Num f
    | Some _ -> fail start "number out of double range"
    | None -> fail start (Printf.sprintf "bad number %S" slice)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail !pos "expected , or ] in array"
          in
          items []
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let member () =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            (name, parse_value ())
          in
          let rec members acc =
            let m = member () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members (m :: acc)
            | Some '}' -> advance (); Obj (List.rev (m :: acc))
            | _ -> fail !pos "expected , or } in object"
          in
          members []
        end
    | Some c -> if is_num_char c then parse_number () else fail !pos (Printf.sprintf "unexpected %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail !pos "trailing garbage after JSON value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" pos msg)

(* --- printing ---------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite number";
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Integral doubles print without the exponent noise of %.17g. *)
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec emit buf ~indent ~level t =
  let pad n = if indent then Buffer.add_string buf (String.make (2 * n) ' ') in
  let sep_open c items emit_item =
    Buffer.add_char buf c;
    (match items with
    | [] -> ()
    | items ->
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if indent then Buffer.add_char buf '\n';
            pad (level + 1);
            emit_item item)
          items;
        if indent then Buffer.add_char buf '\n';
        pad level)
  in
  match t with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_to_string f)
  | Str s -> escape_string buf s
  | List items ->
      sep_open '[' items (fun item -> emit buf ~indent ~level:(level + 1) item);
      Buffer.add_char buf ']'
  | Obj members ->
      sep_open '{' members (fun (name, v) ->
          escape_string buf name;
          Buffer.add_string buf (if indent then ": " else ":");
          emit buf ~indent ~level:(level + 1) v);
      Buffer.add_char buf '}'

let render ~indent t =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 t;
  if indent then Buffer.add_char buf '\n';
  Buffer.contents buf

let to_string t =
  let s = render ~indent:false t in
  (* Compact form has no trailing newline. *)
  s

let pretty t = render ~indent:true t

(* --- accessors --------------------------------------------------------- *)

let member name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None

let field kind name extract t =
  match member name t with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match extract v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S is not a %s" name kind))

let str_field name = field "string" name (function Str s -> Some s | _ -> None)
let num_field name = field "number" name (function Num f -> Some f | _ -> None)
let bool_field name = field "bool" name (function Bool b -> Some b | _ -> None)
let list_field name = field "array" name (function List l -> Some l | _ -> None)

let int_field name =
  (* Strictly below 2^53: the literal 2^53 + 1 parses to the float
     2^53, so accepting |f| = 2^53 would silently alias two distinct
     JSON integers onto one OCaml int. *)
  field "integer" name (function
    | Num f when Float.is_integer f && Float.abs f < 2. ** 53. ->
        Some (int_of_float f)
    | _ -> None)
