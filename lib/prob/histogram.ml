type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  if bins < 1 then invalid_arg "Histogram.create: need at least one bin";
  { lo; hi; bins = Array.make bins 0; total = 0 }

let bin_index t x =
  let nbins = Array.length t.bins in
  let raw =
    int_of_float (Float.floor ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int nbins))
  in
  Int.max 0 (Int.min (nbins - 1) raw)

let add t x =
  let i = bin_index t x in
  t.bins.(i) <- t.bins.(i) + 1;
  t.total <- t.total + 1

let counts t = Array.copy t.bins
let total t = t.total

let bin_bounds t i =
  let nbins = Array.length t.bins in
  if i < 0 || i >= nbins then invalid_arg "Histogram.bin_bounds: out of range";
  let w = (t.hi -. t.lo) /. float_of_int nbins in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let render ?(width = 40) t =
  let maxc = Array.fold_left Int.max 1 t.bins in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_bounds t i in
      let bar = c * width / maxc in
      Buffer.add_string buf (Printf.sprintf "[%8.3g, %8.3g) %6d " lo hi c);
      for _ = 1 to bar do
        Buffer.add_string buf "#"
      done;
      Buffer.add_char buf '\n')
    t.bins;
  Buffer.contents buf
