(** Stationary distributions of finite chains. *)

(** [by_power ?pool ?tol ?max_iter t] iterates μ ↦ μP from the uniform
    distribution until the L¹ movement per step drops below [tol]
    (default [1e-12]); suitable for any ergodic chain. With [?pool]
    each step runs the pull-mode evolve chunked across domains —
    bit-identical to the serial iteration, same convergence point and
    iteration count. Raises [Common.No_convergence] if [max_iter]
    (default [10_000_000]) is exhausted. *)
val by_power :
  ?pool:Exec.Pool.t -> ?tol:float -> ?max_iter:int -> Chain.t -> float array

(** [by_power_kernel] is {!by_power} generalised over the storage
    layout via {!Kernel.t} — the entry point for out-of-core
    segmented chains, whose π must come from power iteration because
    the transition matrix never fully resides in RAM. [by_power
    ?pool t] is literally [by_power_kernel ?pool (Kernel.of_chain
    t)], so both paths share one movement loop and one convergence
    point. *)
val by_power_kernel :
  ?pool:Exec.Pool.t -> ?tol:float -> ?max_iter:int -> Kernel.t -> float array

(** [by_solve t] computes π exactly (up to LU round-off) by solving
    the linear system [πᵀ(P - I) = 0, Σπ = 1]. Dense O(n³); intended
    for state spaces up to a few thousand states. *)
val by_solve : Chain.t -> float array

(** [residual t pi] is ‖πP - π‖₁, a cheap quality measure. *)
val residual : Chain.t -> float array -> float

(** [is_stationary ?tol t pi] is [residual t pi <= tol]
    (default [1e-8]). *)
val is_stationary : ?tol:float -> Chain.t -> float array -> bool
