(** E3 — Theorem 3.5: the lower-bound potential family mixes in exp(beta*dPhi(1-o(1))).

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
