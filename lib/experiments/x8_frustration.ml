(** X8 (extension) — cut games (anti-coordination): the
    antiferromagnetic mirror of Section 5.

    On an even ring the cut game has exactly two maximum cuts (the two
    alternating colourings) separated by a Θ(δ) barrier — the mirror
    image of the ferromagnetic ring, with the same e^{2δβ}-type
    slowdown. An odd ring is {e frustrated}: no perfect cut exists,
    the ground states are the 2n rotations/reflections of a
    one-defect colouring, they form a connected plateau under
    single flips, and mixing is dramatically faster at the same β.
    We measure exact mixing times and the barrier ζ for both parities
    and for the bipartite complete graph (clique-like barrier). *)

open Games

let analyse name graph ~betas table =
  let cut = Cut_game.create graph in
  let game = Cut_game.to_game cut in
  let space = Cut_game.space cut in
  let phi idx = Cut_game.potential cut idx in
  let zeta = Logit.Barrier.zeta space phi in
  let ground_states =
    List.length (Potential.global_minima space phi)
  in
  (* Extremal starts: the ground states (deep wells) and the two
     monochromatic profiles (potential maxima) — the same start-set
     reduction validated for coordination games in the test suite. *)
  let starts =
    0
    :: (Strategy_space.size space - 1)
    :: Potential.global_minima space phi
  in
  let family = Logit.Logit_dynamics.chain_family game ~betas in
  List.iteri
    (fun bi beta ->
      let chain = Markov.Family.plane family bi in
      let pi = Logit.Gibbs.stationary space phi ~beta in
      let tmix = Markov.Mixing.mixing_time ~max_steps:2_000_000 chain pi ~starts in
      Table.add_row table
        [
          name;
          Table.cell_int (Cut_game.max_cut cut);
          Table.cell_int ground_states;
          Table.cell_float zeta;
          Table.cell_float beta;
          Table.cell_opt_int tmix;
        ])
    betas

let run ~quick =
  let table =
    Table.create
      ~title:"X8: anti-coordination (max-cut) games — frustration vs parity"
      [
        ("graph", Table.Left);
        ("max cut", Table.Right);
        ("#ground states", Table.Right);
        ("zeta", Table.Right);
        ("beta", Table.Right);
        ("t_mix", Table.Right);
      ]
  in
  let betas = if quick then [ 1.0; 2.0 ] else [ 0.5; 1.0; 2.0; 3.0 ] in
  let n_even = if quick then 6 else 8 in
  let n_odd = n_even + 1 in
  analyse (Printf.sprintf "ring-%d (even)" n_even)
    (Graphs.Generators.ring n_even) ~betas table;
  analyse (Printf.sprintf "ring-%d (odd)" n_odd)
    (Graphs.Generators.ring n_odd) ~betas table;
  analyse "K_{3,3} (bipartite)"
    (Graphs.Generators.complete_bipartite 3 3)
    ~betas table;
  Table.add_note table
    "even ring: 2 ground states, barrier like the ferromagnet; odd ring: \
     2n one-defect ground states forming a plateau (zeta drops by delta), \
     faster mixing at equal beta.";
  [ table ]
