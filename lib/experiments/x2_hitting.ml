(** X2 (extension) — hitting versus mixing (related work:
    Asadpour–Saberi; Montanari–Saberi study the hitting time of the
    highest-potential equilibrium rather than the mixing time).

    For graphical coordination games with a risk-dominant "new
    technology" (δ₁ > δ₀) we compute the exact expected hitting time
    of the all-one profile from the all-zero profile (linear solve)
    and the mixing time, on the ring and on the clique. Local
    interaction (ring) hits fast at every β; the clique's hitting time
    explodes with β exactly like its mixing time — the two quantities
    are genuinely different observables and the experiment shows when
    they diverge (on the ring at large β hitting stays moderate while
    mixing keeps a 2δβ exponent). *)

open Games

let analyse graph_name graph ~clique ~beta =
  let desc =
    Graphical.create graph (Coordination.of_deltas ~delta0:0.6 ~delta1:1.0)
  in
  let game = Graphical.to_game desc in
  let space = Game.space game in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary space (Graphical.potential desc) ~beta in
  let target = Graphical.all_one desc in
  let hit =
    Markov.Hitting.expected_time chain ~start:(Graphical.all_zero desc)
      ~target:(fun idx -> idx = target)
  in
  let tmix =
    if clique then
      (* The clique's mixing time explodes with beta: use the exact
         lumped chain (the lumping is validated in the test suite). *)
      Markov.Birth_death.mixing_time_spectral
        (Logit.Lumping.clique
           ~n:(Graphs.Graph.num_vertices graph)
           ~delta0:0.6 ~delta1:1.0 ~beta)
    else
      Markov.Mixing.mixing_time ~max_steps:500_000 chain pi
        ~starts:[ Graphical.all_zero desc; Graphical.all_one desc ]
  in
  (graph_name, hit, tmix)

let run ~quick =
  let n = if quick then 6 else 8 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "X2 (related work): hitting the risk-dominant profile vs mixing, \
            n=%d, d0=0.6, d1=1.0" n)
      [
        ("graph", Table.Left);
        ("beta", Table.Right);
        ("E[hit all-1]", Table.Right);
        ("t_mix", Table.Right);
      ]
  in
  let betas = if quick then [ 1.0 ] else [ 0.5; 1.0; 2.0; 3.0 ] in
  List.iter
    (fun beta ->
      List.iter
        (fun (name, graph) ->
          let name, hit, tmix = analyse name graph ~clique:(name = "clique") ~beta in
          Table.add_row table
            [
              name;
              Table.cell_float beta;
              Table.cell_float hit;
              Table.cell_opt_int tmix;
            ])
        [ ("ring", Graphs.Generators.ring n); ("clique", Graphs.Generators.clique n) ])
    betas;
  Table.add_note table
    "ring: hitting stays polynomial while mixing grows like e^{2*delta1*beta}; \
     clique: both explode together (the barrier blocks the hit too).";
  [ table ]
