(* The logitlint rule catalogue. Every rule here is motivated by a bug
   class this repository has actually hit; see DESIGN.md for the
   stories. Adding a rule = one value of type Syntactic.rule appended
   to [all]; each contributes hooks that the engine drives from a
   single shared AST traversal per file. *)

open Parsetree

let rec lid_head = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> lid_head l
  | Longident.Lapply (l, _) -> lid_head l

(* Treat [Stdlib.f] and [f] alike. *)
let strip_stdlib = function
  | Longident.Ldot (Longident.Lident "Stdlib", s) -> Longident.Lident s
  | Longident.Ldot (Longident.Ldot (Longident.Lident "Stdlib", m), s) ->
      Longident.Ldot (Longident.Lident m, s)
  | l -> l

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let in_lib path = has_prefix ~prefix:"lib/" path

(* ------------------------------------------------------------------ *)
(* float-equality: =, <> or compare where an operand is syntactically
   float-shaped. Caught in the wild: the logsumexp +inf NaN and the
   zero-weight-tail sampling bug both hid behind exact float tests. *)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let is_float_shaped (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident { txt; _ } -> (
      match strip_stdlib txt with
      | Longident.Ldot (Longident.Lident "Float", _) -> true
      | _ -> false)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match strip_stdlib txt with
      | Longident.Lident op -> List.mem op float_ops
      | Longident.Ldot (Longident.Lident "Float", _) -> true
      | _ -> false)
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Longident.Lident "float"; _ }, []); _ })
    ->
      true
  | _ -> false

let float_equality =
  {
    Syntactic.name = "float-equality";
    doc =
      "=, <> or compare with a syntactically float-shaped operand (float \
       literal, Float.* call, or +./-./*././/** arithmetic). Use Common.feq \
       ~eps for tolerance comparisons; annotate intentional exact \
       comparisons.";
    applies = (fun _ -> true);
    check =
      Syntactic.Ast_rule
        (fun ~report ->
          {
            Syntactic.no_hooks with
            on_expr =
              (fun e ->
                match e.pexp_desc with
                | Pexp_apply
                    ( { pexp_desc = Pexp_ident { txt; loc }; _ },
                      (_, a) :: (_, b) :: _ ) -> (
                    match strip_stdlib txt with
                    | Longident.Lident (("=" | "<>" | "compare") as op)
                      when is_float_shaped a || is_float_shaped b ->
                        report loc
                          (Printf.sprintf
                             "exact float comparison (%s); use Common.feq \
                              ~eps, or annotate '(* lint: allow \
                              float-equality *)' if exact comparison is \
                              intended"
                             op)
                    | _ -> ())
                | _ -> ());
          });
  }

(* ------------------------------------------------------------------ *)
(* exn-policy: no failwith / Failure under lib/. Precondition failures
   are Invalid_argument; exhausted iteration budgets are
   Common.No_convergence. Catching Failure (e.g. from float_of_string)
   stays legal — only raising is flagged. *)

let exn_policy =
  {
    Syntactic.name = "exn-policy";
    doc =
      "failwith/Failure are banned under lib/: raise Invalid_argument for \
       precondition violations, Common.No_convergence for exhausted \
       iteration budgets, or a dedicated exception.";
    applies = in_lib;
    check =
      Syntactic.Ast_rule
        (fun ~report ->
          {
            Syntactic.no_hooks with
            on_expr =
              (fun e ->
                match e.pexp_desc with
                | Pexp_ident { txt; loc }
                  when strip_stdlib txt = Longident.Lident "failwith" ->
                    report loc
                      "failwith under lib/; use invalid_arg or \
                       Common.no_convergence"
                | Pexp_construct ({ txt; loc }, _)
                  when strip_stdlib txt = Longident.Lident "Failure" ->
                    report loc
                      "constructing Failure under lib/; use invalid_arg or \
                       Common.no_convergence"
                | _ -> ());
          });
  }

(* ------------------------------------------------------------------ *)
(* bare-random: Stdlib.Random outside lib/prob/rng.ml breaks seeded
   reproducibility (every simulation draws through Prob.Rng's
   splittable streams so results are a function of the seed alone). *)

let bare_random =
  {
    Syntactic.name = "bare-random";
    doc =
      "Stdlib.Random outside lib/prob/rng.ml; draw through Prob.Rng so \
       every run is a function of the seed alone.";
    applies = (fun path -> path <> "lib/prob/rng.ml");
    check =
      Syntactic.Ast_rule
        (fun ~report ->
          let flag loc what =
            report loc
              (Printf.sprintf
                 "%s references Stdlib.Random; use Prob.Rng (seeded, \
                  splittable) instead"
                 what)
          in
          {
            on_expr =
              (fun e ->
                match e.pexp_desc with
                | Pexp_ident { txt; loc } when lid_head txt = "Random" ->
                    flag loc "expression"
                | _ -> ());
            on_module_expr =
              (fun m ->
                match m.pmod_desc with
                | Pmod_ident { txt; loc } when lid_head txt = "Random" ->
                    flag loc "module expression"
                | _ -> ());
            on_typ =
              (fun t ->
                match t.ptyp_desc with
                | Ptyp_constr ({ txt; loc }, _) when lid_head txt = "Random" ->
                    flag loc "type"
                | _ -> ());
          });
  }

(* ------------------------------------------------------------------ *)
(* print-in-lib: no stdout printing from library code — stdout belongs
   to bin/ and to the table renderer. Formatter-parameterised printers
   (Format.pp_print_..., Fmt) stay legal. *)

let stdout_printers =
  [
    "print_string";
    "print_bytes";
    "print_char";
    "print_int";
    "print_float";
    "print_endline";
    "print_newline";
  ]

let print_in_lib =
  {
    Syntactic.name = "print-in-lib";
    doc =
      "printing to stdout from lib/ (print_*, Printf.printf, \
       Format.printf/print_*/std_formatter); return strings or take a \
       formatter instead. lib/experiments/table.ml is exempted by \
       lib/experiments/.logitlint.";
    applies = in_lib;
    check =
      Syntactic.Ast_rule
        (fun ~report ->
          {
            Syntactic.no_hooks with
            on_expr =
              (fun e ->
                match e.pexp_desc with
                | Pexp_ident { txt; loc } -> (
                    match strip_stdlib txt with
                    | Longident.Lident s when List.mem s stdout_printers ->
                        report loc
                          (Printf.sprintf "%s prints to stdout from lib/" s)
                    | Longident.Ldot (Longident.Lident "Printf", "printf") ->
                        report loc "Printf.printf prints to stdout from lib/"
                    | Longident.Ldot (Longident.Lident "Format", s)
                      when s = "printf" || s = "std_formatter"
                           || has_prefix ~prefix:"print_" s ->
                        report loc
                          (Printf.sprintf
                             "Format.%s targets stdout from lib/; take a \
                              formatter argument instead"
                             s)
                    | _ -> ())
                | _ -> ());
          });
  }

(* ------------------------------------------------------------------ *)
(* mli-coverage: every lib/ .ml ships an .mli. True today; the rule
   keeps it true. *)

let mli_coverage =
  {
    Syntactic.name = "mli-coverage";
    doc = "every .ml under lib/ must have a matching .mli interface.";
    applies = in_lib;
    check =
      Syntactic.Tree_rule
        (fun ~files ->
          let have = Hashtbl.create 64 in
          List.iter (fun f -> Hashtbl.replace have f ()) files;
          List.filter_map
            (fun f ->
              if
                in_lib f
                && Filename.check_suffix f ".ml"
                && not (Hashtbl.mem have (f ^ "i"))
              then
                Some
                  ( f,
                    "module has no .mli; every lib/ module declares its \
                     interface" )
              else None)
            files);
  }

(* ------------------------------------------------------------------ *)
(* marshal-outside-store: Marshal (and its Stdlib aliases output_value /
   input_value) is banned everywhere except lib/store. Marshalled bytes
   are not versioned, not endian/word-size stable, and deserialise
   without validation — the artifact store exists precisely to replace
   them with checksummed, versioned codecs that fail loudly. *)

let marshal_outside_store =
  {
    Syntactic.name = "marshal-outside-store";
    doc =
      "Marshal / output_value / input_value outside lib/store/: \
       unversioned, unvalidated bytes. Persist artifacts through the \
       Store codecs (framed, checksummed, versioned) instead.";
    applies = (fun path -> not (has_prefix ~prefix:"lib/store/" path));
    check =
      Syntactic.Ast_rule
        (fun ~report ->
          let flag loc what =
            report loc
              (Printf.sprintf
                 "%s uses Marshal outside lib/store/; persist through the \
                  Store codecs instead"
                 what)
          in
          {
            Syntactic.no_hooks with
            on_expr =
              (fun e ->
                match e.pexp_desc with
                | Pexp_ident { txt; loc }
                  when lid_head (strip_stdlib txt) = "Marshal" ->
                    flag loc "expression"
                | Pexp_ident { txt; loc } -> (
                    match strip_stdlib txt with
                    | Longident.Lident (("output_value" | "input_value") as s)
                      ->
                        report loc
                          (Printf.sprintf
                             "%s is Marshal in disguise; persist through the \
                              Store codecs instead"
                             s)
                    | _ -> ())
                | _ -> ());
            on_module_expr =
              (fun m ->
                match m.pmod_desc with
                | Pmod_ident { txt; loc }
                  when lid_head (strip_stdlib txt) = "Marshal" ->
                    flag loc "module expression"
                | _ -> ());
          });
  }

(* ------------------------------------------------------------------ *)
(* bench-json-outside-bench: the bench trajectory subsystem (lib/bench)
   owns the BENCH snapshot/trajectory filenames. A module elsewhere
   spelling one as a literal is about to write a bench artifact without
   going through Bench.Sink — bypassing migration into the trajectory,
   provenance stamping and the atomic-write discipline. *)

let is_bench_json_literal s =
  let base = Filename.basename s in
  has_prefix ~prefix:"BENCH_" base && Filename.check_suffix base ".json"

let bench_json_outside_bench =
  {
    Syntactic.name = "bench-json-outside-bench";
    doc =
      "a BENCH_<name>.json filename literal outside lib/bench/: bench \
       artifacts are written through Bench.Sink (which owns the paths) so \
       every snapshot also lands in the BENCH_HISTORY.json trajectory.";
    applies = (fun path -> not (has_prefix ~prefix:"lib/bench/" path));
    check =
      Syntactic.Ast_rule
        (fun ~report ->
          {
            Syntactic.no_hooks with
            on_expr =
              (fun e ->
                match e.pexp_desc with
                | Pexp_constant (Pconst_string (s, loc, _))
                  when is_bench_json_literal s ->
                    report loc
                      (Printf.sprintf
                         "literal %S names a bench artifact outside \
                          lib/bench/; route it through Bench.Sink / \
                          Bench.History"
                         s)
                | _ -> ());
          });
  }

(* ------------------------------------------------------------------ *)
(* wall-clock: Unix.gettimeofday outside lib/common/. The wall clock
   steps under NTP, which silently corrupted bench duration minima;
   durations go through Common.Clock.monotonic_ns/span_s and
   timestamps through Common.Clock.wall_s. *)

let wall_clock =
  {
    Syntactic.name = "wall-clock";
    doc =
      "Unix.gettimeofday outside lib/common/: the wall clock can step \
       backwards under NTP and corrupt duration measurements. Use \
       Common.Clock.monotonic_ns/span_s for durations and \
       Common.Clock.wall_s for timestamp fields.";
    applies = (fun path -> not (has_prefix ~prefix:"lib/common/" path));
    check =
      Syntactic.Ast_rule
        (fun ~report ->
          {
            Syntactic.no_hooks with
            on_expr =
              (fun e ->
                match e.pexp_desc with
                | Pexp_ident { txt; loc }
                  when strip_stdlib txt
                       = Longident.Ldot
                           (Longident.Lident "Unix", "gettimeofday") ->
                    report loc
                      "Unix.gettimeofday measures the steppable wall clock; \
                       use Common.Clock (monotonic_ns/span_s for durations, \
                       wall_s for timestamps)"
                | _ -> ());
          });
  }

let all =
  [
    float_equality;
    exn_policy;
    bare_random;
    print_in_lib;
    mli_coverage;
    marshal_outside_store;
    bench_json_outside_bench;
    wall_clock;
  ]
