(** E8 — Theorem 5.5: the clique exponent beta*(Phimax - Phi(1)), including the large-n collapse.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
