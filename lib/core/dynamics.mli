(** Logit-specific couplings and trajectory statistics.

    The couplings here implement the constructions used in the
    paper's upper-bound proofs (Theorems 3.6, 4.2, 5.6) so that
    coalescence experiments can estimate mixing-time upper bounds on
    state spaces too large for exact evolution. *)

(** [interval_coupling game ~beta] is the maximal ("interval")
    coupling of Theorem 3.6 / 4.2: both chains select the same player
    and share the update randomness so that they pick the same
    strategy with the largest possible probability
    ℓ_i = Σ_z min(σ_i(z|x), σ_i(z|y)); with the remaining probability
    the two updates are drawn from the residual distributions.
    Coalesced chains stay together. *)
val interval_coupling : Games.Game.t -> beta:float -> Markov.Coupling.step

(** [threshold_coupling game ~beta] is the monotone coupling of
    Theorem 5.6 for binary-strategy games: same player i, same uniform
    U, each chain plays 0 iff U ≤ σ_i(0|·). *)
val threshold_coupling : Games.Game.t -> beta:float -> Markov.Coupling.step

(** [hitting_time rng game ~beta ~start ~target ~max_steps] simulates
    the logit dynamics until a profile satisfying [target] is reached;
    [None] after [max_steps]. *)
val hitting_time :
  Prob.Rng.t -> Games.Game.t -> beta:float -> start:int -> target:(int -> bool) ->
  max_steps:int -> int option

(** [occupancy rng game ~beta ~start ~burn_in ~samples ~thin] records
    the empirical distribution of the chain state over [samples]
    observations taken every [thin] steps after [burn_in] steps. *)
val occupancy :
  Prob.Rng.t -> Games.Game.t -> beta:float -> start:int -> burn_in:int ->
  samples:int -> thin:int -> Prob.Empirical.t

(** [mean_potential_trajectory rng game phi ~beta ~start ~steps
    ~replicas] averages φ(X_t) over independent replicas, returning
    the array of length [steps + 1] — the observable used to
    visualise convergence in the examples. *)
val mean_potential_trajectory :
  Prob.Rng.t -> Games.Game.t -> (int -> float) -> beta:float -> start:int ->
  steps:int -> replicas:int -> float array
