(** Finite probability distributions over [{0, ..., n-1}].

    The distribution is stored as a dense probability vector. All
    constructors validate non-negativity and normalise mass to one. *)

type t = private float array

(** [of_weights w] normalises the non-negative weight vector [w].
    Raises [Invalid_argument] on negative entries or zero total. *)
val of_weights : float array -> t

(** [of_log_weights lw] normalises log-domain weights stably. *)
val of_log_weights : float array -> t

(** [uniform n] is the uniform distribution on [n] points, [n >= 1]. *)
val uniform : int -> t

(** [point n i] is the Dirac mass at [i] in a space of size [n]. *)
val point : int -> int -> t

(** [size d] is the number of points. *)
val size : t -> int

(** [prob d i] is the mass at point [i]. *)
val prob : t -> int -> float

(** [to_array d] is a fresh copy of the probability vector. *)
val to_array : t -> float array

(** [support d] lists the points with strictly positive mass. *)
val support : t -> int list

(** [tv_distance p q] is the total variation distance
    [1/2 Σ_i |p_i - q_i|]. Sizes must agree. *)
val tv_distance : t -> t -> float

(** [kl_divergence p q] is [Σ p_i log (p_i / q_i)], [infinity] when
    [p] puts mass where [q] does not. *)
val kl_divergence : t -> t -> float

(** [entropy d] is the Shannon entropy in nats. *)
val entropy : t -> float

(** [expect d f] is [Σ_i d_i · f i]. *)
val expect : t -> (int -> float) -> float

(** [mass d pred] is the total mass of points satisfying [pred]. *)
val mass : t -> (int -> bool) -> float

(** [sample rng d] draws a point according to [d]. *)
val sample : Rng.t -> t -> int

(** [evolve d step] pushes [d] forward through the stochastic kernel
    given as sparse rows: [step i] lists the transitions out of [i]. *)
val evolve : t -> (int -> (int * float) list) -> t

(** [mix a p q] is the convex combination [a·p + (1-a)·q],
    [0 <= a <= 1]. *)
val mix : float -> t -> t -> t

(** [pp] prints the probability vector. *)
val pp : Format.formatter -> t -> unit
