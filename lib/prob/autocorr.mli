(** Autocorrelation diagnostics for MCMC observables.

    Used to quantify how fast scalar observables (potential, adoption
    fraction, magnetisation) decorrelate along a logit trajectory —
    the practical face of the mixing-time results. *)

(** [autocorrelation xs lag] is the lag-[lag] sample autocorrelation of
    the series (biased normalisation, standard for ACF plots). Raises
    [Invalid_argument] if the lag is out of range or the series is
    constant. *)
val autocorrelation : float array -> int -> float

(** [acf xs ~max_lag] is the autocorrelation function for lags
    [0..max_lag]. *)
val acf : float array -> max_lag:int -> float array

(** [integrated_time xs] is the integrated autocorrelation time
    τ_int = 1 + 2·Σ_k ρ(k), summed with Geyer's initial positive
    sequence truncation (stop at the first non-positive pair sum). *)
val integrated_time : float array -> float

(** [effective_sample_size xs] is n/τ_int. *)
val effective_sample_size : float array -> float
