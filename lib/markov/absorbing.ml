type t = {
  absorbing : int array;
  transient : int array;
  expected_steps : float array;
  absorption : Linalg.Mat.t;
}

let is_absorbing chain i =
  let ok = ref true in
  (* lint: allow float-equality — structural sparsity: any off-diagonal mass disqualifies *)
  Chain.iter_row chain i (fun j p -> if j <> i && p <> 0. then ok := false);
  !ok

let analyse chain =
  let n = Chain.size chain in
  let absorbing = ref [] and transient = ref [] in
  for i = n - 1 downto 0 do
    if is_absorbing chain i then absorbing := i :: !absorbing
    else transient := i :: !transient
  done;
  let absorbing = Array.of_list !absorbing in
  let transient = Array.of_list !transient in
  if Array.length absorbing = 0 then
    invalid_arg "Absorbing.analyse: chain has no absorbing state";
  (* Every transient state must reach some absorbing state, otherwise
     (I - Q) is singular and absorption is not certain. Backward BFS
     from the absorbing states over the reversed edges. *)
  let preds = Array.make n [] in
  for i = 0 to n - 1 do
    Chain.iter_row chain i (fun j p ->
        if p > 0. && j <> i then preds.(j) <- i :: preds.(j))
  done;
  let absorbed = Array.make n false in
  let queue = Queue.create () in
  Array.iter
    (fun i ->
      absorbed.(i) <- true;
      Queue.add i queue)
    absorbing;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not absorbed.(v) then begin
          absorbed.(v) <- true;
          Queue.add v queue
        end)
      preds.(u)
  done;
  Array.iter
    (fun i ->
      if not absorbed.(i) then
        invalid_arg
          (Printf.sprintf
             "Absorbing.analyse: state %d lies in a closed transient class" i))
    transient;
  let k = Array.length transient in
  let a_count = Array.length absorbing in
  let t_index = Array.make n (-1) and a_index = Array.make n (-1) in
  Array.iteri (fun pos i -> t_index.(i) <- pos) transient;
  Array.iteri (fun pos i -> a_index.(i) <- pos) absorbing;
  if k = 0 then
    {
      absorbing;
      transient;
      expected_steps = [||];
      absorption = Linalg.Mat.identity a_count;
    }
  else begin
    (* (I - Q) over the transient block. *)
    let iq = Linalg.Mat.identity k in
    let r = Linalg.Mat.create k a_count 0. in
    Array.iteri
      (fun row i ->
        Chain.iter_row chain i (fun j p ->
            if t_index.(j) >= 0 then
              Linalg.Mat.set iq row t_index.(j)
                (Linalg.Mat.get iq row t_index.(j) -. p)
            else Linalg.Mat.set r row a_index.(j) p))
      transient;
    let factorization = Linalg.Lu.factorize iq in
    let expected_steps =
      Linalg.Lu.solve_factorized factorization (Array.make k 1.)
    in
    let absorption = Linalg.Mat.create k a_count 0. in
    for column = 0 to a_count - 1 do
      let b = Linalg.Mat.col r column in
      let x = Linalg.Lu.solve_factorized factorization b in
      for row = 0 to k - 1 do
        Linalg.Mat.set absorption row column x.(row)
      done
    done;
    { absorbing; transient; expected_steps; absorption }
  end

let find_position label arr state =
  let found = ref (-1) in
  Array.iteri (fun pos i -> if i = state then found := pos) arr;
  if !found < 0 then invalid_arg label;
  !found

let expected_absorption_time t state =
  if Array.exists (( = ) state) t.absorbing then 0.
  else
    t.expected_steps.(find_position "Absorbing: unknown state" t.transient state)

let absorption_probability t ~start ~target =
  let target_pos =
    find_position "Absorbing.absorption_probability: target not absorbing"
      t.absorbing target
  in
  if Array.exists (( = ) start) t.absorbing then
    if start = target then 1. else 0.
  else
    Linalg.Mat.get t.absorption
      (find_position "Absorbing: unknown start" t.transient start)
      target_pos
