type t = { a : float; b : float; c : float; d : float }

let create ~a ~b ~c ~d =
  if not (a -. d > 0. && b -. c > 0.) then
    invalid_arg "Coordination.create: need delta0 = a-d > 0 and delta1 = b-c > 0";
  { a; b; c; d }

let of_deltas ~delta0 ~delta1 = create ~a:delta0 ~b:delta1 ~c:0. ~d:0.
let delta0 t = t.a -. t.d
let delta1 t = t.b -. t.c

type risk_dominance = Zero_dominant | One_dominant | No_risk_dominant

let risk_dominance t =
  let d0 = delta0 t and d1 = delta1 t in
  if d0 > d1 then Zero_dominant else if d0 < d1 then One_dominant else No_risk_dominant

let payoff t mine theirs =
  match (mine, theirs) with
  | 0, 0 -> t.a
  | 0, 1 -> t.c
  | 1, 0 -> t.d
  | 1, 1 -> t.b
  | _ -> invalid_arg "Coordination.payoff: strategies must be 0 or 1"

let edge_potential t x y =
  match (x, y) with
  | 0, 0 -> -.delta0 t
  | 1, 1 -> -.delta1 t
  | (0 | 1), (0 | 1) -> 0.
  | _ -> invalid_arg "Coordination.edge_potential: strategies must be 0 or 1"

let to_game t =
  let space = Strategy_space.uniform ~players:2 ~strategies:2 in
  Game.create ~name:"coordination-2x2" space (fun player idx ->
      let mine = Strategy_space.player_strategy space idx player in
      let theirs = Strategy_space.player_strategy space idx (1 - player) in
      payoff t mine theirs)
