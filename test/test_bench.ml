(* The bench trajectory subsystem (lib/bench): the JSON codec, the
   versioned Record, migration of the three legacy snapshot shapes,
   the append-only History file, the regression Gate's boundary
   semantics, and the Cli exit codes CI keys off — driven through the
   same functions `logitdyn bench ...` calls. *)

open Helpers
module J = Bench.Json
module Record = Bench.Record
module History = Bench.History
module Migrate = Bench.Migrate
module Gate = Bench.Gate
module Cli = Bench.Cli

(* ---------------- plumbing ---------------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_tmp f =
  let dir = Filename.temp_file "bench_test" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let get_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected error: %s" what msg

let get_error what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error msg -> msg

let rv ?rev ?host ?timestamp ~bench ~workload ~arm ~seconds ~speedup ~correct
    ~quick ~jobs () =
  get_ok "fixture record"
    (Record.v ?rev ?host ?timestamp ~bench ~workload ~arm ~seconds ~speedup
       ~correct ~quick ~jobs ())

let sample ?(seconds = 1.0) ?(speedup = 1.0) ?(correct = true) ?(arm = "csr")
    ?(workload = "tv_curve") ?(jobs = 1) () =
  rv ~bench:"csr_ablation" ~workload ~arm ~seconds ~speedup ~correct
    ~quick:false ~jobs ()

(* ---------------- Json ---------------- *)

let json_parse_basics () =
  let j =
    get_ok "parse"
      (J.parse {| { "a": [1, -2.5, 1e3], "s": "x\n\"yA", "b": true, "n": null } |})
  in
  check_true "array field"
    (J.member "a" j = Some (J.List [ J.Num 1.; J.Num (-2.5); J.Num 1000. ]));
  check_true "escapes" (J.member "s" j = Some (J.Str "x\n\"yA"));
  check_true "bool" (J.member "b" j = Some (J.Bool true));
  check_true "null" (J.member "n" j = Some J.Null)

let json_parse_rejects () =
  List.iter
    (fun (name, s) -> ignore (get_error name (J.parse s)))
    [
      ("trailing garbage", "{} x");
      ("bare NaN literal", "NaN");
      ("bare Infinity literal", "Infinity");
      ("unterminated string", "\"abc");
      ("control char in string", "\"a\nb\"");
      ("missing colon", "{\"a\" 1}");
      ("trailing comma", "[1,]");
      ("empty input", "   ");
      ("number overflow", "1e999");
    ]

let json_print_round_trip () =
  let j =
    J.Obj
      [
        ("pi", J.Num 3.141592653589793);
        ("tiny", J.Num 1e-300);
        ("neg", J.Num (-0.1));
        ("int", J.Num 42.);
        ("esc", J.Str "a\"b\\c\td");
        ("arr", J.List [ J.Bool false; J.Null; J.Obj [] ]);
      ]
  in
  check_true "compact round-trips" (get_ok "reparse" (J.parse (J.to_string j)) = j);
  check_true "pretty round-trips" (get_ok "reparse" (J.parse (J.pretty j)) = j);
  check_raises_invalid "NaN unprintable" (fun () ->
      ignore (J.to_string (J.Num Float.nan)));
  check_raises_invalid "infinity unprintable" (fun () ->
      ignore (J.to_string (J.Num Float.infinity)))

(* int_field must reject any number a double cannot hold exactly:
   |f| >= 2^53 aliases distinct JSON integers (2^53 and 2^53 + 1 both
   parse to the float 2^53), so the boundary itself is out. *)
let int_field_of_literal lit =
  match J.parse (Printf.sprintf "{\"n\": %s}" lit) with
  | Error msg -> Alcotest.failf "parse {\"n\": %s}: %s" lit msg
  | Ok j -> J.int_field "n" j

let json_int_field_boundaries () =
  let two53 = 9007199254740992 in
  let accepts lit expect =
    match int_field_of_literal lit with
    | Ok v -> check_int (Printf.sprintf "int_field %s" lit) expect v
    | Error msg -> Alcotest.failf "int_field %s rejected: %s" lit msg
  in
  let rejects lit =
    ignore (get_error (Printf.sprintf "int_field %s" lit) (int_field_of_literal lit))
  in
  accepts "0" 0;
  accepts (string_of_int (two53 - 1)) (two53 - 1);
  accepts (string_of_int (-(two53 - 1))) (-(two53 - 1));
  rejects (string_of_int two53);
  rejects (string_of_int (two53 + 1));
  rejects (string_of_int (-two53));
  rejects "1.5";
  rejects "-0.25";
  rejects "1e300";
  rejects "true";
  rejects "\"7\""

let json_int_field_safe_range =
  (* Any integer m * 2^e strictly inside the safe range survives a
     print/parse/int_field trip bit-for-bit. *)
  QCheck.Test.make ~name:"int_field round-trips safe integers exactly" ~count:500
    QCheck.(pair (int_bound ((1 lsl 26) - 1)) (int_bound 26))
    (fun (m, e) ->
      let i = m * (1 lsl e) in
      List.for_all
        (fun v -> int_field_of_literal (string_of_int v) = Ok v)
        [ i; -i ])

(* ---------------- Record ---------------- *)

(* Diverse exactly-representable doubles: m * 2^e with |m| < 2^30. *)
let float_gen =
  QCheck.map
    (fun (m, e) -> Float.ldexp (float_of_int m) (e - 40))
    QCheck.(pair (int_bound 1_073_741_823) (int_bound 80))

let name_gen =
  QCheck.map
    (fun s -> if s = "" then "x" else s)
    QCheck.(string_gen_of_size (QCheck.Gen.return 6) QCheck.Gen.printable)

let record_gen =
  QCheck.map
    (fun ((bench, workload, arm), (seconds, speedup, ts), (correct, quick, jobs)) ->
      rv ~rev:"abc1234" ~host:"host-1" ~timestamp:ts ~bench ~workload ~arm
        ~seconds ~speedup:(speedup +. 0.001) ~correct ~quick
        ~jobs:(1 + jobs) ())
    QCheck.(
      triple
        (triple name_gen name_gen name_gen)
        (triple float_gen float_gen float_gen)
        (triple bool bool (int_bound 63)))

let record_json_round_trip =
  QCheck.Test.make ~name:"Record.to_json/of_json round-trips bit-for-bit"
    ~count:200 record_gen (fun r ->
      match J.parse (J.to_string (Record.to_json r)) with
      | Error _ -> false
      | Ok j -> Record.of_json j = Ok r)

let record_validation () =
  let mk seconds speedup =
    Record.v ~bench:"b" ~workload:"w" ~arm:"a" ~seconds ~speedup ~correct:true
      ~quick:false ~jobs:1 ()
  in
  ignore (get_error "NaN seconds" (mk Float.nan 1.0));
  ignore (get_error "+inf seconds" (mk Float.infinity 1.0));
  ignore (get_error "-inf seconds" (mk Float.neg_infinity 1.0));
  ignore (get_error "negative seconds" (mk (-1.0) 1.0));
  ignore (get_error "NaN speedup" (mk 1.0 Float.nan));
  ignore (get_error "zero speedup" (mk 1.0 0.));
  ignore
    (get_error "empty arm"
       (Record.v ~bench:"b" ~workload:"w" ~arm:"" ~seconds:1. ~speedup:1.
          ~correct:true ~quick:false ~jobs:1 ()));
  ignore
    (get_error "jobs < 1"
       (Record.v ~bench:"b" ~workload:"w" ~arm:"a" ~seconds:1. ~speedup:1.
          ~correct:true ~quick:false ~jobs:0 ()));
  (* of_json applies the same validation to hand-built values. *)
  let j = Record.to_json (sample ()) in
  let poisoned =
    match j with
    | J.Obj fields ->
        J.Obj
          (List.map
             (fun (k, v) -> if k = "seconds" then (k, J.Num Float.nan) else (k, v))
             fields)
    | _ -> Alcotest.fail "record json is an object"
  in
  ignore (get_error "of_json rejects NaN seconds" (Record.of_json poisoned))

let sample_rss ?(seconds = 1.0) ?rss () =
  get_ok "rss fixture"
    (Record.v ?peak_rss_kb:rss ~bench:"ooc_ablation" ~workload:"tv_curve"
       ~arm:"stream" ~seconds ~speedup:1.0 ~correct:true ~quick:false ~jobs:1 ())

let record_rss_round_trip () =
  (* With the field present, the JSON trip is exact. *)
  let r = sample_rss ~rss:12_345 () in
  check_true "rss record round-trips"
    (match J.parse (J.to_string (Record.to_json r)) with
    | Ok j -> Record.of_json j = Ok r
    | Error _ -> false);
  (* Without it, the key is omitted entirely — pre-existing
     trajectories and the records this build writes for rss-less arms
     stay byte-compatible — and decoding maps absence back to None. *)
  let bare = sample_rss () in
  (match Record.to_json bare with
  | J.Obj fields ->
      check_false "peak_rss_kb omitted when None"
        (List.mem_assoc "peak_rss_kb" fields);
      (* An explicit null (a hand-edited baseline) also reads as None. *)
      let with_null = J.Obj (fields @ [ ("peak_rss_kb", J.Null) ]) in
      check_true "explicit null reads as None"
        (Record.of_json with_null = Ok bare)
  | _ -> Alcotest.fail "record json is an object");
  check_true "absent key decodes to None"
    (match J.parse (J.to_string (Record.to_json bare)) with
    | Ok j -> Record.of_json j = Ok bare
    | Error _ -> false);
  (* Validation covers the new field. *)
  ignore
    (get_error "negative rss rejected"
       (Record.v ~peak_rss_kb:(-1) ~bench:"b" ~workload:"w" ~arm:"a" ~seconds:1.
          ~speedup:1. ~correct:true ~quick:false ~jobs:1 ()));
  check_true "schema version unchanged by the additive field"
    (Record.schema_version = 1)

let record_key_discriminates () =
  let base = sample () in
  check_true "same fields, same key" (Record.key base = Record.key (sample ()));
  check_false "quick differs"
    (Record.key base = Record.key { base with Record.quick = true });
  check_false "jobs differ"
    (Record.key base = Record.key { base with Record.jobs = 4 });
  check_false "arm differs"
    (Record.key base = Record.key { base with Record.arm = "pre_csr" });
  check_true "seconds do not enter the key"
    (Record.key base = Record.key { base with Record.seconds = 99. })

(* ---------------- History ---------------- *)

let history_round_trip () =
  let records = [ sample (); sample ~arm:"pre_csr" ~seconds:2. () ] in
  check_true "encode/decode round-trips"
    (get_ok "decode" (History.decode (History.encode records)) = records)

let history_schema_bump_detected () =
  let newer =
    J.pretty
      (J.Obj
         [
           ( "schema_version",
             J.Num (float_of_int (Record.schema_version + 1)) );
           ("records", J.List []);
         ])
  in
  let msg = get_error "newer schema refused" (History.decode newer) in
  check_true "error names the version mismatch"
    (contains_substring msg "newer");
  ignore
    (get_error "version 0 refused"
       (History.decode
          (J.pretty (J.Obj [ ("schema_version", J.Num 0.); ("records", J.List []) ]))));
  ignore (get_error "missing header refused" (History.decode "{\"records\": []}"))

let history_append_accumulates () =
  with_tmp (fun dir ->
      let path = Filename.concat dir "hist.json" in
      check_true "missing file is an empty trajectory"
        (get_ok "load" (History.load ~path) = []);
      let a = sample ~seconds:1.0 () in
      let b = sample ~seconds:0.9 () in
      check_int "first append" 1
        (List.length (get_ok "append" (History.append ~path [ a ])));
      let all = get_ok "append" (History.append ~path [ b ]) in
      check_true "append preserves order" (all = [ a; b ]);
      check_true "reload agrees" (get_ok "load" (History.load ~path) = [ a; b ]);
      (* latest_by_key keeps the most recent record per key. *)
      check_true "latest wins" (History.latest_by_key all = [ b ]);
      ignore
        (get_error "corrupt file is an error"
           (let oc = open_out path in
            output_string oc "not json";
            close_out oc;
            History.load ~path)))

let history_encode_validates () =
  let bad = { (sample ()) with Record.seconds = Float.nan } in
  check_raises_invalid "encode refuses invalid records" (fun () ->
      ignore (History.encode [ bad ]))

(* ---------------- Migrate: byte-for-byte legacy fixtures ----------------

   Embedded copies of the checked-in snapshots as of this PR's
   baseline (BENCH_spmm.json still showing the pooled by_power
   regression this PR fixes). The migration contract is pinned against
   these exact bytes. *)

let csr_fixture =
  {|{
  "bench": "csr_ablation",
  "quick": false,
  "game": { "kind": "ring_coordination", "n": 10, "states": 1024, "beta": 1 },
  "evolve_bit_identical": true,
  "workloads": [
    { "name": "tv_curve", "kind": "evolve", "steps": 150,
      "pre_csr_s": 10.497214, "csr_s": 2.745061, "speedup": 3.824, "agree": true },
    { "name": "mixing_time_all", "kind": "evolve", "t_mix": 49,
      "pre_csr_s": 3.683898, "csr_s": 0.845887, "speedup": 4.355, "agree": true },
    { "name": "empirical_tv", "kind": "sample_step", "steps": 200, "replicas": 50000,
      "pre_csr_s": 1.131692, "csr_s": 0.392581, "speedup": 2.883, "agree": true }
  ]
}
|}

let spmm_fixture =
  {|{
  "bench": "spmm_ablation",
  "quick": false,
  "jobs": 4,
  "game": { "kind": "ring_coordination", "n": 10, "states": 1024, "beta": 1 },
  "evolve_bit_identical": true,
  "t_mix": 49,
  "workloads": [
    { "name": "mixing_time_all", "arm": "serial_push", "seconds": 2.784250,
      "speedup": 1.0, "bit_identical": true },
    { "name": "mixing_time_all", "arm": "pooled_pull", "seconds": 1.783843,
      "speedup": 1.561, "bit_identical": true },
    { "name": "mixing_time_all", "arm": "spmm_serial", "seconds": 1.077717,
      "speedup": 2.583, "bit_identical": true },
    { "name": "mixing_time_all", "arm": "spmm_pooled", "seconds": 1.147333,
      "speedup": 2.427, "bit_identical": true }
  ],
  "tv_curve": { "steps": 150, "push_s": 7.791740, "spmm_s": 2.955936, "speedup": 2.636,
    "bit_identical": true },
  "by_power": { "serial_s": 0.004633, "pooled_s": 0.012164, "speedup": 0.381,
    "bit_identical": true }
}
|}

let store_fixture =
  {|{
  "bench": "store_ablation",
  "quick": false,
  "game": { "kind": "ring_coordination", "n": 10, "states": 1024, "beta": 1 },
  "pipeline": { "cold_s": 3.085460, "warm_s": 0.001952, "speedup": 1580.720,
    "cold_misses": 3, "cold_writes": 3, "warm_hits": 3 },
  "identical": { "chain": true, "stationary": true, "tv_curve": true },
  "resume": { "grid": 12, "prefiled": 5, "recomputed": 7, "ok": true }
}
|}

let migrate_csr_fixture () =
  let bench = "csr_ablation" in
  let r ~workload ~arm ~seconds ~speedup =
    rv ~bench ~workload ~arm ~seconds ~speedup ~correct:true ~quick:false
      ~jobs:1 ()
  in
  let expected =
    [
      r ~workload:"tv_curve" ~arm:"pre_csr" ~seconds:10.497214 ~speedup:1.0;
      r ~workload:"tv_curve" ~arm:"csr" ~seconds:2.745061 ~speedup:3.824;
      r ~workload:"mixing_time_all" ~arm:"pre_csr" ~seconds:3.683898
        ~speedup:1.0;
      r ~workload:"mixing_time_all" ~arm:"csr" ~seconds:0.845887 ~speedup:4.355;
      r ~workload:"empirical_tv" ~arm:"pre_csr" ~seconds:1.131692 ~speedup:1.0;
      r ~workload:"empirical_tv" ~arm:"csr" ~seconds:0.392581 ~speedup:2.883;
    ]
  in
  check_true "csr fixture migrates to the six expected records"
    (get_ok "migrate" (Migrate.of_legacy_string csr_fixture) = expected)

let migrate_spmm_fixture () =
  let bench = "spmm_ablation" in
  let r ~workload ~arm ~seconds ~speedup ~jobs =
    rv ~bench ~workload ~arm ~seconds ~speedup ~correct:true ~quick:false ~jobs
      ()
  in
  let expected =
    [
      r ~workload:"mixing_time_all" ~arm:"serial_push" ~seconds:2.784250
        ~speedup:1.0 ~jobs:1;
      r ~workload:"mixing_time_all" ~arm:"pooled_pull" ~seconds:1.783843
        ~speedup:1.561 ~jobs:4;
      r ~workload:"mixing_time_all" ~arm:"spmm_serial" ~seconds:1.077717
        ~speedup:2.583 ~jobs:1;
      r ~workload:"mixing_time_all" ~arm:"spmm_pooled" ~seconds:1.147333
        ~speedup:2.427 ~jobs:4;
      r ~workload:"tv_curve" ~arm:"serial_push" ~seconds:7.791740 ~speedup:1.0
        ~jobs:1;
      r ~workload:"tv_curve" ~arm:"spmm" ~seconds:2.955936 ~speedup:2.636
        ~jobs:1;
      r ~workload:"by_power" ~arm:"serial" ~seconds:0.004633 ~speedup:1.0
        ~jobs:1;
      r ~workload:"by_power" ~arm:"pooled" ~seconds:0.012164 ~speedup:0.381
        ~jobs:4;
    ]
  in
  check_true "spmm fixture migrates to the eight expected records"
    (get_ok "migrate" (Migrate.of_legacy_string spmm_fixture) = expected)

let migrate_store_fixture () =
  let r ~arm ~seconds ~speedup =
    rv ~bench:"store_ablation" ~workload:"pipeline" ~arm ~seconds ~speedup
      ~correct:true ~quick:false ~jobs:1 ()
  in
  let expected =
    [
      r ~arm:"cold" ~seconds:3.085460 ~speedup:1.0;
      r ~arm:"warm" ~seconds:0.001952 ~speedup:1580.720;
    ]
  in
  check_true "store fixture migrates to the cold/warm pair"
    (get_ok "migrate" (Migrate.of_legacy_string store_fixture) = expected)

let migrate_rejects_unknown () =
  ignore
    (get_error "unknown bench kind"
       (Migrate.of_legacy_string "{\"bench\": \"mystery\"}"));
  ignore (get_error "not json" (Migrate.of_legacy_string "nope"))

(* The real checked-in snapshots keep migrating cleanly, whatever their
   current timings: same shapes, same record counts. *)
let migrate_checked_in_snapshots () =
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | None -> ()
  | Some root ->
      List.iter
        (fun (file, expected_count) ->
          let path = Filename.concat root file in
          match Store.Io.read_file path with
          | None -> Alcotest.failf "checked-in snapshot %s is missing" file
          | Some contents -> (
              match Migrate.of_legacy_string contents with
              | Error msg -> Alcotest.failf "%s does not migrate: %s" file msg
              | Ok records ->
                  check_int (file ^ ": record count") expected_count
                    (List.length records)))
        [
          (Bench.Sink.csr_path, 6);
          (Bench.Sink.spmm_path, 8);
          (Bench.Sink.store_path, 2);
        ]

(* ---------------- Gate ---------------- *)

let gate ?strict ?(threshold = 10.) ~baseline ~candidate () =
  Gate.compare ?strict ~threshold ~baseline ~candidate ()

let verdicts report =
  List.map (fun f -> f.Gate.verdict) report.Gate.findings

let gate_threshold_boundary () =
  let base = [ sample ~seconds:1.0 () ] in
  (* Exactly 10% slower: passes (strictly-greater semantics). *)
  let at = gate ~baseline:base ~candidate:[ sample ~seconds:1.1 () ] () in
  check_false "exactly at threshold passes" at.Gate.failed;
  (match verdicts at with
  | [ Gate.Within _ ] -> ()
  | _ -> Alcotest.fail "expected a single Within verdict");
  (* Just over: fails. *)
  let over = gate ~baseline:base ~candidate:[ sample ~seconds:1.11 () ] () in
  check_true "just over threshold fails" over.Gate.failed;
  (match verdicts over with
  | [ Gate.Regression { base_s; cand_s; _ } ] ->
      check_float ~tol:0. "baseline seconds" 1.0 base_s;
      check_float ~tol:0. "candidate seconds" 1.11 cand_s
  | _ -> Alcotest.fail "expected a single Regression verdict");
  (* Faster is of course fine; threshold 0 still allows exact equality. *)
  check_false "faster passes"
    (gate ~baseline:base ~candidate:[ sample ~seconds:0.5 () ] ()).Gate.failed;
  check_false "threshold 0 allows equal"
    (gate ~threshold:0. ~baseline:base ~candidate:[ sample ~seconds:1.0 () ] ())
      .Gate.failed;
  check_true "threshold 0 rejects any slowdown"
    (gate ~threshold:0. ~baseline:base ~candidate:[ sample ~seconds:1.0001 () ] ())
      .Gate.failed;
  check_raises_invalid "negative threshold" (fun () ->
      ignore (gate ~threshold:(-1.) ~baseline:base ~candidate:base ()))

let gate_missing_and_new_workloads () =
  let base = [ sample ~workload:"tv_curve" () ] in
  (* Empty baseline: everything is a new workload, gate passes. *)
  let fresh = gate ~baseline:[] ~candidate:base () in
  check_false "empty baseline passes" fresh.Gate.failed;
  (match verdicts fresh with
  | [ Gate.New_workload _ ] -> ()
  | _ -> Alcotest.fail "expected New_workload");
  (* A workload only in the candidate passes; one only in the baseline
     warns, and fails only under strict. *)
  let cand = [ sample ~workload:"empirical_tv" () ] in
  let drifted = gate ~baseline:base ~candidate:cand () in
  check_false "disappeared workload passes by default" drifted.Gate.failed;
  check_true "disappearance is still reported"
    (List.exists
       (function Gate.Disappeared _ -> true | _ -> false)
       (verdicts drifted));
  check_true "strict fails on disappearance"
    (gate ~strict:true ~baseline:base ~candidate:cand ()).Gate.failed

let gate_incorrect_fails () =
  let base = [ sample ~seconds:1.0 () ] in
  let fast_but_wrong = [ sample ~seconds:0.1 ~correct:false () ] in
  let report = gate ~baseline:base ~candidate:fast_but_wrong () in
  check_true "losing the correctness bit fails even when faster"
    report.Gate.failed;
  (match verdicts report with
  | [ Gate.Incorrect ] -> ()
  | _ -> Alcotest.fail "expected Incorrect, and no Disappeared double-report")

let gate_uses_latest_per_key () =
  (* Two baseline runs for the same key: only the newer one counts. *)
  let baseline = [ sample ~seconds:5.0 (); sample ~seconds:1.0 () ] in
  check_true "old slow baseline run is superseded"
    (gate ~baseline ~candidate:[ sample ~seconds:1.2 () ] ()).Gate.failed;
  (* Same on the candidate side: the re-run wins. *)
  let candidate = [ sample ~seconds:9.0 (); sample ~seconds:1.0 () ] in
  check_false "candidate re-run supersedes its slow first attempt"
    (gate ~baseline:[ sample ~seconds:1.0 () ] ~candidate ()).Gate.failed

let gate_rss_regression () =
  let base = [ sample_rss ~rss:1_000 () ] in
  (* Exactly 10% more RSS: passes, same boundary as timing. *)
  let at = gate ~baseline:base ~candidate:[ sample_rss ~rss:1_100 () ] () in
  check_false "exactly at threshold passes" at.Gate.failed;
  (match verdicts at with
  | [ Gate.Within _ ] -> ()
  | _ -> Alcotest.fail "expected Within at the boundary");
  (* Just over: fails with the dedicated verdict. *)
  let over = gate ~baseline:base ~candidate:[ sample_rss ~rss:1_101 () ] () in
  check_true "just over threshold fails" over.Gate.failed;
  (match verdicts over with
  | [ Gate.Rss_regression { base_kb; cand_kb; _ } ] ->
      check_int "baseline kB" 1_000 base_kb;
      check_int "candidate kB" 1_101 cand_kb
  | _ -> Alcotest.fail "expected a single Rss_regression verdict");
  (* A faster arm that ballooned its memory still fails — speed does
     not buy back the memory-bound claim. *)
  check_true "faster but fatter fails"
    (gate ~baseline:base
       ~candidate:[ sample_rss ~seconds:0.5 ~rss:2_000 () ]
       ())
      .Gate.failed;
  (* A time regression outranks the RSS verdict. *)
  (match
     verdicts
       (gate ~baseline:base ~candidate:[ sample_rss ~seconds:5.0 ~rss:9_000 () ] ())
   with
  | [ Gate.Regression _ ] -> ()
  | _ -> Alcotest.fail "expected the time Regression to outrank RSS");
  (* RSS is judged only when both sides measured it. *)
  check_false "missing candidate rss passes"
    (gate ~baseline:base ~candidate:[ sample_rss () ] ()).Gate.failed;
  check_false "missing baseline rss passes"
    (gate ~baseline:[ sample_rss () ] ~candidate:[ sample_rss ~rss:999_999 () ] ())
      .Gate.failed

(* ---------------- Cli: the exit codes CI keys off ---------------- *)

let write_history path records =
  Store.Io.write_atomic ~path (History.encode records)

let cli_compare_exit_codes () =
  with_tmp (fun dir ->
      let baseline = Filename.concat dir "base.json" in
      let candidate = Filename.concat dir "cand.json" in
      write_history baseline [ sample ~seconds:1.0 () ];
      write_history candidate [ sample ~seconds:1.05 () ];
      check_int "within threshold: 0" 0
        (Cli.compare ~threshold:10. ~baseline ~candidate ());
      write_history candidate [ sample ~seconds:2.0 () ];
      check_int "injected 2x regression: 1" 1
        (Cli.compare ~threshold:10. ~baseline ~candidate ());
      write_history candidate [ sample ~seconds:1.0 ~correct:false () ];
      check_int "lost correctness: 1" 1
        (Cli.compare ~threshold:10. ~baseline ~candidate ());
      write_history candidate [ sample ~workload:"other" () ];
      check_int "disappeared workload, default: 0" 0
        (Cli.compare ~threshold:10. ~baseline ~candidate ());
      check_int "disappeared workload, strict: 1" 1
        (Cli.compare ~strict:true ~threshold:10. ~baseline ~candidate ());
      check_int "missing baseline passes vacuously: 0" 0
        (Cli.compare ~threshold:10.
           ~baseline:(Filename.concat dir "nope.json")
           ~candidate ());
      check_int "missing candidate is an error: 2" 2
        (Cli.compare ~threshold:10. ~baseline
           ~candidate:(Filename.concat dir "nope.json")
           ());
      let oc = open_out candidate in
      output_string oc "not json";
      close_out oc;
      check_int "corrupt candidate is an error: 2" 2
        (Cli.compare ~threshold:10. ~baseline ~candidate ()))

let cli_history_and_ingest () =
  with_tmp (fun dir ->
      let history_path = Filename.concat dir "hist.json" in
      check_int "history of a missing file: 0" 0 (Cli.history ~path:history_path ());
      let legacy = Filename.concat dir "legacy.json" in
      let oc = open_out legacy in
      output_string oc csr_fixture;
      close_out oc;
      check_int "ingest: 0" 0 (Cli.ingest ~history_path [ legacy ]);
      check_int "ingested six records" 6
        (List.length (get_ok "load" (History.load ~path:history_path)));
      check_int "history prints: 0" 0 (Cli.history ~path:history_path ());
      check_int "ingest of a missing file: 2" 2
        (Cli.ingest ~history_path [ Filename.concat dir "nope.json" ]);
      let oc = open_out legacy in
      output_string oc "not json";
      close_out oc;
      check_int "ingest of a corrupt file: 2" 2 (Cli.ingest ~history_path [ legacy ]);
      check_int "failed ingests appended nothing" 6
        (List.length (get_ok "load" (History.load ~path:history_path))))

(* ---------------- Sink ---------------- *)

let sink_record_run () =
  with_tmp (fun dir ->
      let legacy_path = Filename.concat dir "snapshot.json" in
      let history_path = Filename.concat dir "hist.json" in
      let prov =
        { Bench.Sink.rev = "deadbee"; host = "ci-box"; timestamp = 1754600000. }
      in
      let records =
        get_ok "record_run"
          (Bench.Sink.record_run ~history_path ~provenance:prov ~legacy_path
             spmm_fixture)
      in
      check_int "eight records from the spmm shape" 8 (List.length records);
      check_true "records are provenance-stamped"
        (List.for_all
           (fun (r : Record.t) ->
             r.Record.rev = "deadbee" && r.Record.host = "ci-box"
             && r.Record.timestamp > 0.)
           records);
      check_true "legacy snapshot written byte-for-byte"
        (Store.Io.read_file legacy_path = Some spmm_fixture);
      check_true "history holds the same records"
        (get_ok "load" (History.load ~path:history_path) = records);
      (* A malformed snapshot writes nothing at all. *)
      let bad_path = Filename.concat dir "bad.json" in
      ignore
        (get_error "malformed snapshot rejected"
           (Bench.Sink.record_run ~history_path ~provenance:prov
              ~legacy_path:bad_path "{\"bench\": \"mystery\"}"));
      check_false "no torn legacy file" (Sys.file_exists bad_path);
      check_int "history unchanged" 8
        (List.length (get_ok "load" (History.load ~path:history_path))))

let suites =
  [
    ( "bench.json",
      [
        test "parse basics" json_parse_basics;
        test "parse rejects malformed input" json_parse_rejects;
        test "print/parse round-trip" json_print_round_trip;
        test "int_field 2^53 boundaries" json_int_field_boundaries;
        qcheck json_int_field_safe_range;
      ] );
    ( "bench.record",
      [
        qcheck record_json_round_trip;
        test "validation rejects NaN/inf/empty/bad-jobs" record_validation;
        test "peak_rss_kb is additive and round-trips" record_rss_round_trip;
        test "key discriminates quick/jobs/arm, not timings"
          record_key_discriminates;
      ] );
    ( "bench.history",
      [
        test "encode/decode round-trip" history_round_trip;
        test "newer schema version refused" history_schema_bump_detected;
        test "append accumulates atomically" history_append_accumulates;
        test "encode validates records" history_encode_validates;
      ] );
    ( "bench.migrate",
      [
        test "csr fixture, byte-for-byte" migrate_csr_fixture;
        test "spmm fixture, byte-for-byte" migrate_spmm_fixture;
        test "store fixture, byte-for-byte" migrate_store_fixture;
        test "unknown shapes rejected" migrate_rejects_unknown;
        test "checked-in snapshots migrate" migrate_checked_in_snapshots;
      ] );
    ( "bench.gate",
      [
        test "threshold boundary: exactly-at passes, just-over fails"
          gate_threshold_boundary;
        test "missing baseline and new/disappeared workloads"
          gate_missing_and_new_workloads;
        test "lost correctness fails even when faster" gate_incorrect_fails;
        test "latest record per key wins" gate_uses_latest_per_key;
        test "rss regression: boundary, precedence, absence"
          gate_rss_regression;
      ] );
    ( "bench.cli",
      [
        test "compare exit codes" cli_compare_exit_codes;
        test "history and ingest exit codes" cli_history_and_ingest;
      ] );
    ("bench.sink", [ test "record_run writes snapshot + trajectory" sink_record_run ]);
  ]
