(** Eigenvalue computations.

    Two engines are provided:

    - a cyclic Jacobi rotation solver for full spectra of symmetric
      matrices (exact to working precision, O(n³) per sweep, suitable
      for state spaces up to a few thousand states);
    - power iteration with optional deflation for the leading and
      second eigenvalues of large matrices where only matrix-vector
      products are affordable.

    Reversible Markov chains are handled upstream by symmetrising the
    transition matrix; the eigenvalues are invariant under that
    similarity transform. *)

(** Full spectrum of a symmetric matrix by the cyclic Jacobi method.

    [jacobi ?tol ?max_sweeps m] returns the eigenvalues of the
    symmetric matrix [m] sorted in non-increasing order, together with
    the matrix of corresponding eigenvectors (column [k] pairs with
    eigenvalue [k]). [tol] bounds the final off-diagonal Frobenius
    mass (default [1e-12]); [max_sweeps] caps the number of cyclic
    sweeps (default [100]).

    Raises [Invalid_argument] if [m] is not symmetric. *)
val jacobi : ?tol:float -> ?max_sweeps:int -> Mat.t -> float array * Mat.t

(** [eigenvalues m] is [fst (jacobi m)]. *)
val eigenvalues : Mat.t -> float array

(** [power_iteration ?tol ?max_iter ?seed av n] estimates the dominant
    eigenvalue (largest absolute value) and a unit eigenvector of the
    linear operator [av : Vec.t -> Vec.t] acting on dimension [n].
    Convergence is declared when the eigenvalue estimate moves by less
    than [tol] (default [1e-12]) between iterations; gives up after
    [max_iter] (default [100_000]) iterations and returns the current
    estimate. *)
val power_iteration :
  ?tol:float -> ?max_iter:int -> ?seed:int -> (Vec.t -> Vec.t) -> int ->
  float * Vec.t

(** [second_eigenvalue_reversible ?tol ?max_iter row pi n] computes the
    second-largest eigenvalue of a reversible stochastic matrix with
    stationary distribution [pi], given the sparse row accessor [row]
    (state [i] maps to its non-zero transitions). The operator is
    symmetrised as [A = D^{1/2} P D^{-1/2}] with [D = diag pi]; its
    dominant eigenvector [sqrt pi] (eigenvalue 1) is deflated away and
    power iteration finds the next eigenvalue. The result is the
    eigenvalue of largest absolute value other than 1, i.e. λ★ in the
    relaxation-time formula. *)
val second_eigenvalue_reversible :
  ?tol:float -> ?max_iter:int -> (int -> (int * float) list) -> Vec.t -> int ->
  float

(** [general_spectrum m] computes all eigenvalues of an arbitrary real
    square matrix as [(re, im)] pairs, sorted by decreasing real part
    (ties by decreasing imaginary part). The implementation is the
    classic dense path: reduction to upper Hessenberg form by stabilised
    elementary eliminations, followed by the Francis double-shift QR
    iteration. Needed for logit chains of {e non-potential} games,
    which are non-reversible and can have complex spectra (the
    situation ruled out for potential games by Theorem 3.1 of the
    paper). Raises [Common.No_convergence] if a root fails to converge
    within 30×2 iterations (exceptional shifts included), and
    [Invalid_argument] on non-square input. *)
val general_spectrum : Mat.t -> (float * float) array

(** [second_eigenpair_reversible ?tol ?max_iter row pi n] is
    {!second_eigenvalue_reversible} but also returns the eigenvector of
    the {e symmetrised} operator (entries pair with states; the
    corresponding eigenfunction of P is entry/√π, same signs). *)
val second_eigenpair_reversible :
  ?tol:float -> ?max_iter:int -> (int -> (int * float) list) -> Vec.t -> int ->
  float * Vec.t
