(* Technology diffusion on a social network (the motivating application
   of Section 5: Young 2003, Montanari & Saberi 2009).

   Players on a graph play a coordination game with every neighbour;
   strategy 1 is a new technology with a higher coordination payoff
   (delta1 > delta0, so "everyone adopts" is the risk-dominant
   equilibrium). Starting from nobody-adopts, we watch the logit
   dynamics spread the technology and measure the adoption hitting
   time on different network topologies — local interaction (ring)
   adopts fast, global interaction (clique) is stuck behind an
   energy barrier, exactly the clique-vs-ring contrast of the paper.

   Run with: dune exec examples/technology_diffusion.exe *)

let adoption_fraction space idx =
  float_of_int (Games.Strategy_space.weight space idx)
  /. float_of_int (Games.Strategy_space.num_players space)

let diffusion_run ~name graph ~beta ~max_steps rng =
  (* New technology (strategy 1) has the higher payoff: delta1 > delta0. *)
  let basic = Games.Coordination.of_deltas ~delta0:0.6 ~delta1:1.0 in
  let desc = Games.Graphical.create graph basic in
  let game = Games.Graphical.to_game desc in
  let space = Games.Game.space game in
  let target = Games.Graphical.all_one desc in
  let hit =
    Logit.Dynamics.hitting_time rng game ~beta ~start:0
      ~target:(fun idx -> idx = target)
      ~max_steps
  in
  let updates_per_player t =
    float_of_int t /. float_of_int (Graphs.Graph.num_vertices graph)
  in
  (match hit with
  | Some t ->
      Printf.printf "  %-12s full adoption after %7d steps (%.1f updates/player)\n"
        name t (updates_per_player t)
  | None ->
      Printf.printf "  %-12s no full adoption within %d steps\n" name max_steps);
  (* Mean adoption curve over replicas. *)
  let curve =
    Logit.Dynamics.mean_potential_trajectory rng game
      (adoption_fraction space)
      ~beta ~start:0 ~steps:2_000 ~replicas:20
  in
  Printf.printf "  %-12s mean adoption at t=0/500/1000/2000: %.2f %.2f %.2f %.2f\n"
    name curve.(0) curve.(500) curve.(1000) curve.(2000)

let () =
  let rng = Prob.Rng.create 2026 in
  let n = 12 in
  let beta = 2.0 in
  Printf.printf
    "Technology diffusion, n=%d players, beta=%g, new technology favoured\n\
     (delta1=1.0 vs delta0=0.6); start: nobody has adopted.\n\n" n beta;
  List.iter
    (fun (name, graph) -> diffusion_run ~name graph ~beta ~max_steps:300_000 rng)
    [
      ("ring", Graphs.Generators.ring n);
      ("grid-3x4", Graphs.Generators.grid 3 4);
      ("tree", Graphs.Generators.binary_tree n);
      ("clique", Graphs.Generators.clique n);
    ];
  Printf.printf
    "\nAs predicted (Ellison 93; Sec. 5 of the paper), sparse local graphs\n\
     adopt quickly while the clique must jump a Theta(n^2)-deep barrier.\n"
