(** The concrete path families from the paper's proofs, evaluated
    exactly.

    Lemma 3.3 compares M^β against M^0 through 2-step detours via the
    fiber's potential minimiser; Theorem 5.1 (via Lemma 5.4) uses
    bit-fixing canonical paths along a vertex ordering ℓ, with
    congestion controlled by the cutwidth χ(ℓ). Computing these
    congestions exactly lets the experiment suite confirm not only the
    theorem statements but the quantitative content of their proofs. *)

(** [bit_fixing_family space ~order] is the canonical path family
    Γ^ℓ of Theorem 5.1: the path from x to y rewrites the coordinates
    in which they differ, in the order given by the permutation
    [order]. Paths run along Hamming edges (valid for any logit
    chain, whose support includes all unilateral deviations). *)
val bit_fixing_family :
  Games.Strategy_space.t -> order:int array -> Markov.Paths.family

(** [lemma54_congestion desc ~beta ~order] is
    [(rho, bound)] — the exact congestion of Γ^ℓ on the logit chain of
    the graphical coordination game [desc], and the Lemma 5.4 bound
    2n²·exp(χ(ℓ)(δ₀+δ₁)β). Lemma 5.4 asserts rho ≤ bound. *)
val lemma54_congestion :
  Games.Graphical.t -> beta:float -> order:int array -> float * float

(** [admissible_detour_family game phi] is the Lemma 3.3 assignment:
    for profiles x, y differing in one player's strategy, the direct
    edge if it is {e admissible} (one endpoint minimises φ over the
    shared fiber), otherwise the two admissible edges through the
    fiber's minimiser. Defined exactly on the edges of M⁰ (unilateral
    deviations); other pairs raise [Invalid_argument]. *)
val admissible_detour_family :
  Games.Game.t -> (int -> float) -> Markov.Paths.family

(** [lemma33_comparison game phi ~beta] evaluates the Theorem 2.5
    comparison of M^β against M^0 with the Lemma 3.3 paths: returns
    [(alpha, gamma, implied, closed_form)] where [implied] =
    α·γ·t⁰_rel is the relaxation-time bound produced by the argument
    (using the exact t⁰_rel of M⁰) and [closed_form] is the Lemma 3.3
    answer 2mn·exp(βΔΦ). *)
val lemma33_comparison :
  Games.Game.t -> (int -> float) -> beta:float -> float * float * float * float
