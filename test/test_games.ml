open Helpers
open Games

(* ----- Strategy_space ----- *)

let space_encode_decode () =
  let s = Strategy_space.create [| 2; 3; 2 |] in
  check_int "size" 12 (Strategy_space.size s);
  check_int "players" 3 (Strategy_space.num_players s);
  check_int "max strategies" 3 (Strategy_space.max_strategies s);
  Strategy_space.iter s (fun idx ->
      let p = Strategy_space.decode s idx in
      check_int "roundtrip" idx (Strategy_space.encode s p));
  check_raises_invalid "bad profile" (fun () ->
      ignore (Strategy_space.encode s [| 0; 3; 0 |]))

let space_replace () =
  let s = Strategy_space.create [| 2; 3 |] in
  let idx = Strategy_space.encode s [| 1; 2 |] in
  let idx' = Strategy_space.replace s idx 1 0 in
  check_true "replace" (Strategy_space.decode s idx' = [| 1; 0 |]);
  check_int "replace same" idx (Strategy_space.replace s idx 0 1);
  check_int "player strategy" 2 (Strategy_space.player_strategy s idx 1)

let space_neighbors () =
  let s = Strategy_space.uniform ~players:3 ~strategies:2 in
  let nbrs = Strategy_space.neighbors s 0 in
  check_int "cube degree" 3 (List.length nbrs);
  List.iter
    (fun j -> check_int "distance 1" 1 (Strategy_space.hamming_distance s 0 j))
    nbrs;
  let s2 = Strategy_space.create [| 3; 2 |] in
  check_int "mixed degree" 3 (List.length (Strategy_space.neighbors s2 0))

let space_weight () =
  let s = Strategy_space.uniform ~players:4 ~strategies:2 in
  check_int "weight 0" 0 (Strategy_space.weight s 0);
  check_int "weight full" 4
    (Strategy_space.weight s (Strategy_space.encode s [| 1; 1; 1; 1 |]));
  check_int "weight mid" 2
    (Strategy_space.weight s (Strategy_space.encode s [| 1; 0; 1; 0 |]))

let space_iter_profiles () =
  let s = Strategy_space.create [| 2; 3 |] in
  let seen = ref [] in
  Strategy_space.iter_profiles s (fun idx p ->
      seen := (idx, Array.copy p) :: !seen);
  check_int "count" 6 (List.length !seen);
  List.iter
    (fun (idx, p) -> check_int "profile matches" idx (Strategy_space.encode s p))
    !seen

let space_invalid () =
  check_raises_invalid "empty" (fun () -> ignore (Strategy_space.create [||]));
  check_raises_invalid "zero strategies" (fun () ->
      ignore (Strategy_space.create [| 2; 0 |]))

(* ----- Game ----- *)

let pd = Dominant.prisoners_dilemma ()

let game_best_responses () =
  (* In the PD, defect (0) is the unique best response everywhere. *)
  let space = Game.space pd in
  Strategy_space.iter space (fun idx ->
      check_true "defect is BR" (Game.best_responses pd 0 idx = [ 0 ]);
      check_true "defect is BR (p2)" (Game.best_responses pd 1 idx = [ 0 ]))

let game_nash () =
  check_true "PD nash = (0,0)" (Game.pure_nash_profiles pd = [ 0 ]);
  let mp = Zoo.matching_pennies in
  check_true "matching pennies has no PNE" (Game.pure_nash_profiles mp = []);
  let coordination = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:1.) in
  check_int "coordination has 2 PNE" 2
    (List.length (Game.pure_nash_profiles coordination))

let game_dominant () =
  check_true "PD: 0 dominant" (Game.is_dominant_strategy pd 0 0);
  check_false "PD: 1 not dominant" (Game.is_dominant_strategy pd 0 1);
  check_true "PD dominant profile" (Game.dominant_profile pd = Some 0);
  check_true "pennies: no dominant profile"
    (Game.dominant_profile Zoo.matching_pennies = None);
  let lb = Dominant.lower_bound_game ~players:3 ~strategies:3 in
  check_true "thm 4.3 game dominant profile" (Game.dominant_profile lb = Some 0)

let game_welfare_tabulate () =
  check_float "welfare" 2. (Game.social_welfare pd 0);
  let t = Game.tabulate pd in
  Strategy_space.iter (Game.space pd) (fun idx ->
      check_float "tabulated equal" (Game.utility pd 0 idx) (Game.utility t 0 idx))

(* ----- Potential ----- *)

let potential_recover_coordination () =
  let basic = Coordination.of_deltas ~delta0:1.0 ~delta1:0.5 in
  let game = Coordination.to_game basic in
  match Potential.recover game with
  | None -> Alcotest.fail "coordination game must be potential"
  | Some phi ->
      check_true "verifies" (Potential.verify game phi);
      (* Differences must match the canonical potential (up to constant). *)
      let space = Game.space game in
      let p00 = Strategy_space.encode space [| 0; 0 |] in
      let p11 = Strategy_space.encode space [| 1; 1 |] in
      let p01 = Strategy_space.encode space [| 0; 1 |] in
      check_float ~tol:1e-12 "phi(01)-phi(00) = delta0" 1. (phi p01 -. phi p00);
      check_float ~tol:1e-12 "phi(11)-phi(01) = -delta1" (-0.5) (phi p11 -. phi p01)

let potential_rejects_pennies () =
  check_false "matching pennies is not potential"
    (Potential.is_potential_game Zoo.matching_pennies);
  check_false "RPS is not potential" (Potential.is_potential_game Zoo.rock_paper_scissors)

let potential_common_interest () =
  let space = Strategy_space.uniform ~players:3 ~strategies:2 in
  let phi idx = float_of_int (idx mod 3) in
  let game = Potential.common_interest ~name:"ci" space phi in
  check_true "phi is exact potential" (Potential.verify game phi);
  match Potential.recover game with
  | None -> Alcotest.fail "common interest must be potential"
  | Some phi' ->
      (* Recovered potential differs from phi by a constant. *)
      let diff = phi' 0 -. phi 0 in
      Strategy_space.iter space (fun idx ->
          check_float ~tol:1e-9 "constant shift" diff (phi' idx -. phi idx))

let potential_extrema () =
  let space = Strategy_space.uniform ~players:2 ~strategies:2 in
  let phi = function 0 -> -2. | 3 -> 1. | _ -> 0. in
  let vmin, imin, vmax, imax = Potential.extrema space phi in
  check_float "min" (-2.) vmin;
  check_int "argmin" 0 imin;
  check_float "max" 1. vmax;
  check_int "argmax" 3 imax;
  check_float "delta global" 3. (Potential.delta_global space phi);
  (* local: edges of the square; max |diff| over Hamming edges. *)
  check_float "delta local" 2. (Potential.delta_local space phi);
  check_true "minima" (Potential.global_minima space phi = [ 0 ])

let potential_random_games_recoverable =
  QCheck.Test.make ~name:"random potential games recover & verify" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi = random_potential_game ~players:3 ~strategies:2 seed in
      match Potential.recover game with
      | None -> false
      | Some phi' ->
          let space = Game.space game in
          let shift = phi' 0 -. phi 0 in
          let ok = ref true in
          Strategy_space.iter space (fun idx ->
              if Float.abs (phi' idx -. phi idx -. shift) > 1e-9 then ok := false);
          !ok)

let potential_random_nonpotential =
  QCheck.Test.make ~name:"random generic games are not potential" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create (seed + 17) in
      let game = Zoo.random_game r ~players:2 ~strategies:2 in
      (* With probability one a random 2x2x2 payoff tensor has no exact
         potential. *)
      not (Potential.is_potential_game game))

(* ----- Coordination ----- *)

let coordination_basics () =
  let t = Coordination.create ~a:3. ~b:2. ~c:1. ~d:0. in
  check_float "delta0" 3. (Coordination.delta0 t);
  check_float "delta1" 1. (Coordination.delta1 t);
  check_true "risk dominance"
    (Coordination.risk_dominance t = Coordination.Zero_dominant);
  check_true "no risk dominant"
    (Coordination.risk_dominance (Coordination.of_deltas ~delta0:1. ~delta1:1.)
    = Coordination.No_risk_dominant);
  check_float "payoff" 1. (Coordination.payoff t 0 1);
  check_float "edge potential 00" (-3.) (Coordination.edge_potential t 0 0);
  check_float "edge potential 01" 0. (Coordination.edge_potential t 0 1);
  check_raises_invalid "not coordination" (fun () ->
      ignore (Coordination.create ~a:0. ~b:1. ~c:0. ~d:1.))

let coordination_game_is_potential () =
  let game = Coordination.to_game (Coordination.create ~a:3. ~b:2. ~c:1. ~d:0.) in
  check_true "potential" (Potential.is_potential_game game);
  check_int "2 PNE" 2 (List.length (Game.pure_nash_profiles game))

(* ----- Graphical ----- *)

let graphical_potential_is_exact () =
  let desc =
    Graphical.create (Graphs.Generators.ring 4)
      (Coordination.of_deltas ~delta0:1.0 ~delta1:0.7)
  in
  let game = Graphical.to_game desc in
  check_true "graphical potential verifies"
    (Potential.verify game (Graphical.potential desc))

let graphical_consensus_nash () =
  let desc =
    Graphical.create (Graphs.Generators.ring 5)
      (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let game = Graphical.to_game desc in
  check_true "all-zero is PNE" (Game.is_pure_nash game (Graphical.all_zero desc));
  check_true "all-one is PNE" (Game.is_pure_nash game (Graphical.all_one desc))

let graphical_clique_closed_form () =
  let n = 5 and delta0 = 1.3 and delta1 = 0.9 in
  let desc =
    Graphical.create (Graphs.Generators.clique n)
      (Coordination.of_deltas ~delta0 ~delta1)
  in
  let space = Graphical.space desc in
  Strategy_space.iter space (fun idx ->
      let k = Strategy_space.weight space idx in
      check_float ~tol:1e-9 "clique potential closed form"
        (Graphical.clique_potential ~n ~delta0 ~delta1 k)
        (Graphical.potential desc idx))

let graphical_kstar () =
  let n = 9 and delta0 = 1.0 and delta1 = 1.0 in
  let kstar = Graphical.clique_kstar ~n ~delta0 ~delta1 in
  (* Symmetric deltas: maximum near n/2. *)
  check_true "kstar near middle" (kstar = 4 || kstar = 5);
  (* kstar maximises the potential. *)
  for k = 0 to n do
    check_true "kstar is argmax"
      (Graphical.clique_potential ~n ~delta0 ~delta1 k
      <= Graphical.clique_potential ~n ~delta0 ~delta1 kstar +. 1e-12)
  done

let graphical_ising () =
  let desc = Graphical.ising ~delta:2.0 (Graphs.Generators.ring 4) in
  check_float "ising symmetric deltas" (Coordination.delta0 (Graphical.basic desc))
    (Coordination.delta1 (Graphical.basic desc))

(* ----- Dominant ----- *)

let dominant_lower_bound_game () =
  let g = Dominant.lower_bound_game ~players:3 ~strategies:2 in
  check_float "origin payoff" 0. (Game.utility g 0 0);
  check_float "elsewhere" (-1.) (Game.utility g 1 5);
  check_true "potential" (Potential.is_potential_game g);
  check_true "0 dominant for all" (Game.dominant_profile g = Some 0)

let dominant_public_goods () =
  let g = Dominant.n_player_dilemma ~players:4 in
  check_true "free-riding dominant" (Game.is_dominant_strategy g 0 0);
  check_true "dominant profile at 0" (Game.dominant_profile g = Some 0);
  (* The dilemma: full cooperation has higher welfare than the equilibrium. *)
  let space = Game.space g in
  let full = Strategy_space.encode space [| 1; 1; 1; 1 |] in
  check_true "dilemma" (Game.social_welfare g full > Game.social_welfare g 0)

(* ----- Curve_game ----- *)

let curve_shape () =
  let c = Curve_game.create ~players:10 ~global:3. ~local:1. in
  check_int "shell" 3 (Curve_game.shell c);
  check_float "phi(0)" (-3.) (Curve_game.potential_of_weight c 0);
  check_float "phi(shell)" 0. (Curve_game.potential_of_weight c 3);
  check_float "phi(2 shell)" (-3.) (Curve_game.potential_of_weight c 6);
  check_float "phi(n)" (-3.) (Curve_game.potential_of_weight c 10);
  (* Paper's delta constraints. *)
  let game = Curve_game.to_game c in
  let space = Curve_game.space c in
  check_float "global variation" 3.
    (Potential.delta_global space (Curve_game.potential c));
  check_float "local variation" 1.
    (Potential.delta_local space (Curve_game.potential c));
  check_true "is potential game" (Potential.verify game (Curve_game.potential c))

let curve_invalid () =
  check_raises_invalid "local too small" (fun () ->
      ignore (Curve_game.create ~players:4 ~global:3. ~local:1.));
  check_raises_invalid "non-integer shell" (fun () ->
      ignore (Curve_game.create ~players:10 ~global:3. ~local:2.))

(* ----- Congestion ----- *)

let congestion_potential () =
  let c = Congestion.linear_routing ~players:3 ~links:2 in
  let game = Congestion.to_game c in
  check_true "rosenthal is exact potential"
    (Potential.verify game (Congestion.rosenthal c));
  check_true "recoverable" (Potential.is_potential_game game)

let congestion_loads () =
  let c = Congestion.linear_routing ~players:3 ~links:2 in
  let space = Game.space (Congestion.to_game c) in
  let idx = Strategy_space.encode space [| 0; 0; 1 |] in
  check_int "load link0" 2 (Congestion.load c idx 0);
  check_int "load link1" 1 (Congestion.load c idx 1);
  (* Cost of a player on link0 under load 2 is 2 -> utility -2. *)
  check_float "utility" (-2.) (Game.utility (Congestion.to_game c) 0 idx)

let congestion_nash_balanced () =
  let c = Congestion.linear_routing ~players:4 ~links:2 in
  let game = Congestion.to_game c in
  let space = Game.space game in
  List.iter
    (fun idx ->
      let l0 = Congestion.load c idx 0 in
      let balanced = abs (l0 - 2) = 0 in
      check_true "PNE iff balanced" (Game.is_pure_nash game idx = balanced))
    (List.init (Strategy_space.size space) Fun.id)

let congestion_invalid () =
  check_raises_invalid "empty bundle" (fun () ->
      ignore (Congestion.create ~resources:2 ~delay:(fun _ k -> float_of_int k)
                ~bundles:[| [ [] ] |]));
  check_raises_invalid "bad resource" (fun () ->
      ignore (Congestion.create ~resources:2 ~delay:(fun _ k -> float_of_int k)
                ~bundles:[| [ [ 5 ] ] |]))

(* ----- Normal form / Zoo ----- *)

let normal_form_payoffs () =
  let g = Normal_form.bimatrix ~name:"test"
      [| [| 1.; 2. |]; [| 3.; 4. |] |]
      [| [| 5.; 6. |]; [| 7.; 8. |] |]
  in
  let space = Game.space g in
  let idx = Strategy_space.encode space [| 1; 0 |] in
  check_float "row payoff" 3. (Game.utility g 0 idx);
  check_float "col payoff" 7. (Game.utility g 1 idx);
  check_raises_invalid "dims" (fun () ->
      ignore (Normal_form.bimatrix ~name:"x" [| [| 1. |] |] [| [| 1.; 2. |] |]))

let zoo_zero_sum () =
  let g = Zoo.matching_pennies in
  let space = Game.space g in
  Strategy_space.iter space (fun idx ->
      check_float "zero sum" 0. (Game.social_welfare g idx))

let zoo_pure_coordination () =
  let g = Zoo.pure_coordination ~players:3 ~strategies:3 in
  (* PNE: the 3 consensus profiles plus the 3! all-distinct profiles
     (no unilateral deviation can create consensus there). *)
  check_int "9 weak PNE" 9 (List.length (Game.pure_nash_profiles g));
  let consensus = [ 0; 13; 26 ] in
  List.iter
    (fun idx -> check_true "consensus is PNE" (Game.is_pure_nash g idx))
    consensus;
  check_true "potential" (Potential.is_potential_game g)

let suites =
  [
    ( "games.space",
      [
        test "encode/decode roundtrip" space_encode_decode;
        test "replace" space_replace;
        test "neighbors" space_neighbors;
        test "weight" space_weight;
        test "iter_profiles" space_iter_profiles;
        test "invalid input" space_invalid;
      ] );
    ( "games.game",
      [
        test "best responses" game_best_responses;
        test "pure nash" game_nash;
        test "dominant strategies" game_dominant;
        test "welfare & tabulate" game_welfare_tabulate;
      ] );
    ( "games.potential",
      [
        test "recover coordination" potential_recover_coordination;
        test "rejects matching pennies" potential_rejects_pennies;
        test "common interest" potential_common_interest;
        test "extrema & variations" potential_extrema;
        qcheck potential_random_games_recoverable;
        qcheck potential_random_nonpotential;
      ] );
    ( "games.coordination",
      [
        test "basics" coordination_basics;
        test "to_game potential" coordination_game_is_potential;
      ] );
    ( "games.graphical",
      [
        test "edge-sum potential is exact" graphical_potential_is_exact;
        test "consensus profiles are PNE" graphical_consensus_nash;
        test "clique closed form" graphical_clique_closed_form;
        test "kstar" graphical_kstar;
        test "ising" graphical_ising;
      ] );
    ( "games.dominant",
      [
        test "thm 4.3 game" dominant_lower_bound_game;
        test "public goods" dominant_public_goods;
      ] );
    ( "games.curve",
      [ test "thm 3.5 shape" curve_shape; test "invalid parameters" curve_invalid ] );
    ( "games.congestion",
      [
        test "rosenthal potential" congestion_potential;
        test "loads & costs" congestion_loads;
        test "nash = balanced" congestion_nash_balanced;
        test "invalid input" congestion_invalid;
      ] );
    ( "games.normal_form",
      [
        test "bimatrix payoffs" normal_form_payoffs;
        test "zero sum" zoo_zero_sum;
        test "pure coordination" zoo_pure_coordination;
      ] );
  ]
