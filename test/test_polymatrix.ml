open Helpers
open Games

(* ----- Polymatrix ----- *)

let polymatrix_matches_cut_game () =
  (* Anti-coordination payoffs reproduce the cut game exactly. *)
  let graph = Graphs.Generators.ring 5 in
  let poly =
    Polymatrix.create graph ~strategies:2 ~edge_payoff:(fun _ _ a b ->
        if a = b then 0. else 1.)
  in
  let cut = Cut_game.create graph in
  let pg = Polymatrix.to_game poly and cg = Cut_game.to_game cut in
  Strategy_space.iter (Polymatrix.space poly) (fun idx ->
      for i = 0 to 4 do
        check_float "same utilities" (Game.utility cg i idx) (Game.utility pg i idx)
      done;
      check_float ~tol:1e-12 "potentials differ by constant"
        (Cut_game.potential cut idx)
        (Polymatrix.potential poly idx))

let polymatrix_is_potential =
  QCheck.Test.make ~name:"random polymatrix games have exact potentials" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let n = 3 + Prob.Rng.int r 3 in
      let graph = Graphs.Generators.erdos_renyi r n 0.6 in
      (* Random shared payoff per (edge, strategy pair), fixed by memo. *)
      let memo = Hashtbl.create 32 in
      let edge_payoff u v a b =
        let key = (u, v, a, b) in
        match Hashtbl.find_opt memo key with
        | Some x -> x
        | None ->
            let x = Prob.Rng.float r in
            Hashtbl.add memo key x;
            x
      in
      let poly = Polymatrix.create graph ~strategies:2 ~edge_payoff in
      Potential.verify (Polymatrix.to_game poly) (Polymatrix.potential poly))

let ferromagnet_matches_ising () =
  (* +J polymatrix = graphical coordination with delta = 2J up to a
     potential constant. *)
  let graph = Graphs.Generators.ring 5 in
  let j = 0.8 in
  let ferro = Polymatrix.ferromagnet graph ~coupling:j in
  let ising = Graphical.ising ~delta:(2. *. j) graph in
  let space = Polymatrix.space ferro in
  let shift =
    Polymatrix.potential ferro 0 -. Graphical.potential ising 0
  in
  Strategy_space.iter space (fun idx ->
      check_float ~tol:1e-12 "potential equal up to constant" shift
        (Polymatrix.potential ferro idx -. Graphical.potential ising idx))

let spin_glass_couplings () =
  let r = rng () in
  let graph = Graphs.Generators.clique 5 in
  let glass, js = Polymatrix.spin_glass r graph ~coupling:2.0 in
  check_int "one coupling per edge" 10 (Array.length js);
  Array.iter
    (fun j -> check_true "magnitude" (Common.feq ~eps:1e-12 (Float.abs j) 2.0))
    js;
  check_true "is potential game"
    (Potential.verify (Polymatrix.to_game glass) (Polymatrix.potential glass))

let frustration_counts () =
  let graph = Graphs.Generators.ring 3 in
  let mk signs =
    let poly =
      Polymatrix.create graph ~strategies:2 ~edge_payoff:(fun _ _ a b ->
          if a = b then 1. else -1.)
    in
    Polymatrix.frustrated_triangles poly ~couplings:signs
  in
  check_int "all positive: none" 0 (mk [| 1.; 1.; 1. |]);
  check_int "one negative: frustrated" 1 (mk [| -1.; 1.; 1. |]);
  check_int "two negative: balanced" 0 (mk [| -1.; -1.; 1. |]);
  check_int "three negative: frustrated" 1 (mk [| -1.; -1.; -1. |])

(* ----- Transfer matrix ----- *)

let coordination_phi delta0 delta1 =
  Coordination.edge_potential (Coordination.of_deltas ~delta0 ~delta1)

let transfer_matches_enumeration () =
  let phi = coordination_phi 1.0 0.7 in
  List.iter
    (fun beta ->
      let tm = Logit.Transfer_matrix.create ~strategies:2 ~beta phi in
      let n = 7 in
      let desc =
        Graphical.create (Graphs.Generators.ring n)
          (Coordination.of_deltas ~delta0:1.0 ~delta1:0.7)
      in
      let space = Graphical.space desc in
      let direct =
        Logit.Gibbs.log_partition space (Graphical.potential desc) ~beta
      in
      check_float ~tol:1e-9 "log partition" direct
        (Logit.Transfer_matrix.log_partition tm ~n);
      let pi = Logit.Gibbs.stationary space (Graphical.potential desc) ~beta in
      let site0 = ref 0. in
      Array.iteri
        (fun idx p ->
          if Strategy_space.player_strategy space idx 0 = 0 then
            site0 := !site0 +. p)
        pi;
      check_float ~tol:1e-9 "site marginal" !site0
        (Logit.Transfer_matrix.site_marginal tm ~n).(0))
    [ 0.0; 0.9; 5.0 ]

let transfer_pair_marginal_consistent () =
  let phi = coordination_phi 1.0 1.0 in
  let tm = Logit.Transfer_matrix.create ~strategies:2 ~beta:1.5 phi in
  let marginal = Logit.Transfer_matrix.pair_marginal tm ~n:20 in
  let total = ref 0. in
  for a = 0 to 1 do
    for b = 0 to 1 do
      let p = Linalg.Mat.get marginal a b in
      check_true "non-negative" (p >= 0.);
      total := !total +. p
    done
  done;
  check_float ~tol:1e-12 "sums to one" 1. !total;
  (* Symmetric game: the pair marginal is symmetric too. *)
  check_float ~tol:1e-9 "symmetry"
    (Linalg.Mat.get marginal 0 1)
    (Linalg.Mat.get marginal 1 0)

let transfer_huge_ring_stable () =
  let phi = coordination_phi 1.0 1.0 in
  let tm = Logit.Transfer_matrix.create ~strategies:2 ~beta:3.0 phi in
  let logz = Logit.Transfer_matrix.log_partition tm ~n:5_000 in
  check_true "finite" (Float.is_finite logz);
  (* Exact: log Z = n*log(lambda_1) + o(1) with lambda_1 = e^beta + 1
     for the symmetric 2x2 transfer matrix. *)
  check_float ~tol:1e-6 "Perron value" (5_000. *. log (exp 3. +. 1.)) logz;
  let edge = Logit.Transfer_matrix.expected_edge_potential tm ~n:5_000 in
  (* Thermodynamic identity: E[phi_edge] = -d(log lambda_1)/d(beta)
     = -e^beta/(e^beta + 1). *)
  check_float ~tol:1e-6 "edge potential" (-.exp 3. /. (exp 3. +. 1.)) edge

let transfer_correlation_length_grows () =
  let phi = coordination_phi 1.0 1.0 in
  let xi beta =
    Logit.Transfer_matrix.correlation_length
      (Logit.Transfer_matrix.create ~strategies:2 ~beta phi)
  in
  check_true "increasing in beta" (xi 0.5 < xi 1.5 && xi 1.5 < xi 3.0)

let transfer_rejects_asymmetric () =
  check_raises_invalid "asymmetric phi" (fun () ->
      ignore
        (Logit.Transfer_matrix.create ~strategies:2 ~beta:1.
           (fun a b -> if a < b then 1. else 0.)))

let x9_smoke () =
  let tables = (Experiments.Registry.find "x9").Experiments.Registry.run ~quick:true in
  check_int "one table" 1 (List.length tables)

let suites =
  [
    ( "games.polymatrix",
      [
        test "matches cut game" polymatrix_matches_cut_game;
        test "ferromagnet = ising" ferromagnet_matches_ising;
        test "spin glass couplings" spin_glass_couplings;
        test "frustration counting" frustration_counts;
        test "x9 smoke" x9_smoke;
        qcheck polymatrix_is_potential;
      ] );
    ( "logit.transfer_matrix",
      [
        test "matches enumeration" transfer_matches_enumeration;
        test "pair marginal consistent" transfer_pair_marginal_consistent;
        test "huge ring stable" transfer_huge_ring_stable;
        test "correlation length grows" transfer_correlation_length_grows;
        test "rejects asymmetric phi" transfer_rejects_asymmetric;
      ] );
  ]

(* ----- Metropolis (appended) ----- *)

let metropolis_same_gibbs =
  QCheck.Test.make ~name:"Metropolis is reversible wrt the same Gibbs measure"
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi = random_potential_game ~players:3 ~strategies:2 seed in
      let beta = 1.2 in
      let chain = Logit.Metropolis.chain game ~beta in
      let pi = Logit.Gibbs.stationary (Game.space game) phi ~beta in
      Markov.Stationary.residual chain pi < 1e-10
      && Markov.Chain.is_reversible chain pi)

let metropolis_rows_stochastic () =
  let game = Zoo.rock_paper_scissors in
  Strategy_space.iter (Game.space game) (fun idx ->
      let row = Logit.Metropolis.transition_row game ~beta:1.7 idx in
      let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. row in
      check_float ~tol:1e-12 "row mass" 1. total)

let metropolis_accepts_improvements () =
  (* From the off-diagonal profile of a coordination game, a proposal
     into an equilibrium is always accepted. *)
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:1.) in
  let sigma = Logit.Metropolis.update_distribution game ~beta:3. ~player:0 1 in
  (* player 0 plays 1 against 0: switching to 0 improves -> accept = 1. *)
  check_float ~tol:1e-12 "improvement accepted" 1. sigma.(0)

let metropolis_peskun_faster () =
  let desc =
    Graphical.create (Graphs.Generators.ring 5)
      (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let game = Graphical.to_game desc in
  let beta = 2.0 in
  let pi = Logit.Gibbs.stationary (Game.space game) (Graphical.potential desc) ~beta in
  let t_hb =
    Option.get
      (Markov.Mixing.mixing_time_all (Logit.Logit_dynamics.chain game ~beta) pi)
  in
  let t_mh =
    Option.get (Markov.Mixing.mixing_time_all (Logit.Metropolis.chain game ~beta) pi)
  in
  check_true "metropolis at least as fast" (t_mh <= t_hb)

let metropolis_step_law () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.6) in
  let beta = 1.1 in
  let chain = Logit.Metropolis.chain game ~beta in
  let r = rng () in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let next = Logit.Metropolis.step r game ~beta 1 in
    counts.(next) <- counts.(next) + 1
  done;
  Array.iteri
    (fun j c ->
      check_float ~tol:0.012 "one-step law"
        (Markov.Chain.prob chain 1 j)
        (float_of_int c /. float_of_int n))
    counts

(* ----- Perfect sampling (appended) ----- *)

let cftp_attractive_classes () =
  let ring = Graphical.create (Graphs.Generators.ring 4)
      (Coordination.of_deltas ~delta0:1.0 ~delta1:0.6) in
  check_true "coordination attractive"
    (Logit.Perfect_sampling.is_attractive (Graphical.to_game ring) ~beta:1.5);
  let cut = Cut_game.to_game (Cut_game.create (Graphs.Generators.ring 4)) in
  check_false "anti-coordination not attractive"
    (Logit.Perfect_sampling.is_attractive cut ~beta:1.5)

let cftp_samples_exact () =
  let desc =
    Graphical.create (Graphs.Generators.path 4)
      (Coordination.of_deltas ~delta0:1.0 ~delta1:0.8)
  in
  let game = Graphical.to_game desc in
  let beta = 1.2 in
  let r = rng () in
  let xs = Logit.Perfect_sampling.samples r game ~beta ~count:20_000 in
  let emp = Prob.Empirical.create (Game.size game) in
  Array.iter (fun x -> Prob.Empirical.add emp x) xs;
  let pi = Logit.Gibbs.stationary (Game.space game) (Graphical.potential desc) ~beta in
  check_true "TV within sampling noise"
    (Prob.Empirical.tv_against emp (Prob.Dist.of_weights pi) < 0.03)

let cftp_certificate_positive () =
  let desc =
    Graphical.create (Graphs.Generators.ring 4)
      (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let game = Graphical.to_game desc in
  let r = rng () in
  let _, window = Logit.Perfect_sampling.coalescence_epoch r game ~beta:1.0 in
  check_true "window is a power of two" (window land (window - 1) = 0);
  check_true "window positive" (window >= 1)

let cftp_rejects_nonbinary () =
  check_raises_invalid "non-binary" (fun () ->
      ignore
        (Logit.Perfect_sampling.sample (rng ()) Zoo.rock_paper_scissors ~beta:1.))

let x10_smoke () =
  let tables = (Experiments.Registry.find "x10").Experiments.Registry.run ~quick:true in
  check_int "two tables" 2 (List.length tables)

let suites =
  suites
  @ [
      ( "logit.metropolis",
        [
          test "rows stochastic" metropolis_rows_stochastic;
          test "accepts improvements" metropolis_accepts_improvements;
          test "peskun faster" metropolis_peskun_faster;
          test "step law" metropolis_step_law;
          qcheck metropolis_same_gibbs;
        ] );
      ( "logit.perfect_sampling",
        [
          test "attractive classes" cftp_attractive_classes;
          test "samples are exact" cftp_samples_exact;
          test "certificate" cftp_certificate_positive;
          test "rejects non-binary" cftp_rejects_nonbinary;
          test "x10 smoke" x10_smoke;
        ] );
    ]
