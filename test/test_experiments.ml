open Helpers
open Experiments

(* ----- Table ----- *)

let table_render () =
  let t = Table.create ~title:"demo" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "longer"; "22" ];
  Table.add_note t "a note";
  let s = Table.render t in
  check_true "title" (String.length s > 0);
  check_true "contains header"
    (String.length s >= 2 && String.sub s 0 2 = "==");
  check_true "contains note" (contains_substring s "a note")

let table_validation () =
  let t = Table.create ~title:"demo" [ ("a", Table.Left) ] in
  check_raises_invalid "wrong arity" (fun () -> Table.add_row t [ "x"; "y" ]);
  check_raises_invalid "no columns" (fun () -> ignore (Table.create ~title:"t" []))

let table_cells () =
  check_true "int" (Table.cell_int 42 = "42");
  check_true "bool" (Table.cell_bool true = "yes");
  check_true "opt none" (Table.cell_opt_int None = ">max");
  check_true "opt some" (Table.cell_opt_int (Some 7) = "7");
  check_true "sci" (String.length (Table.cell_sci 12345.6) > 0)

(* ----- Registry ----- *)

let registry_complete () =
  check_int "nine experiments" 9 (List.length Registry.all);
  List.iteri
    (fun i e ->
      check_true "id matches position"
        (e.Registry.id = Printf.sprintf "e%d" (i + 1)))
    Registry.all

let registry_find () =
  check_true "find e3" ((Registry.find "E3").Registry.id = "e3");
  match Registry.find "nope" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

(* Run the cheap experiments end-to-end in quick mode and sanity-check
   their headline numbers. *)

let e1_confirms_thm31 () =
  let tables = (Registry.find "e1").Registry.run ~quick:true in
  check_int "one table" 1 (List.length tables);
  let rendered = Table.render (List.hd tables) in
  check_true "mentions matching-pennies"
    (contains_substring rendered "matching-pennies");
  (* Every line flags agreement with the theorem: potential games end
     in "yes", the non-potential baselines in "no". *)
  let data_lines =
    List.filter
      (fun l -> contains_substring l "  yes  " || contains_substring l " no")
      (String.split_on_char '\n' rendered)
  in
  check_true "has data rows" (List.length data_lines > 0)

let e4_runs () =
  let tables = (Registry.find "e4").Registry.run ~quick:true in
  check_int "one table" 1 (List.length tables)

let e6_runs () =
  let tables = (Registry.find "e6").Registry.run ~quick:true in
  check_int "three tables" 3 (List.length tables)

let suites =
  [
    ( "experiments.table",
      [
        test "render" table_render;
        test "validation" table_validation;
        test "cells" table_cells;
      ] );
    ( "experiments.registry",
      [
        test "complete" registry_complete;
        test "find" registry_find;
        test "e1 runs & confirms Thm 3.1" e1_confirms_thm31;
        test "e4 runs" e4_runs;
        test "e6 runs" e6_runs;
      ] );
  ]

(* Quick-mode smoke runs of every remaining experiment: each must
   produce at least one non-empty table without raising. *)
let smoke id expected_tables () =
  let tables = (Registry.find id).Registry.run ~quick:true in
  check_int (id ^ " table count") expected_tables (List.length tables);
  List.iter
    (fun t ->
      let rendered = Table.render t in
      check_true (id ^ " non-empty") (String.length rendered > 80))
    tables

let thm_shape_e3 () =
  (* E3's quick table must show log t_mix increasing with beta. *)
  let tables = (Registry.find "e3").Registry.run ~quick:true in
  let rendered = Table.render (List.hd tables) in
  check_true "has fitted slope note" (contains_substring rendered "fitted")

let thm_shape_e6_plateau () =
  (* E6a quick: t_mix at beta=8 should appear and the note mention
     saturation. *)
  let tables = (Registry.find "e6").Registry.run ~quick:true in
  let rendered = Table.render (List.hd tables) in
  check_true "mentions saturate" (contains_substring rendered "saturate")

let suites =
  suites
  @ [
      ( "experiments.smoke",
        [
          test "e2" (smoke "e2" 1);
          test "e3" (smoke "e3" 1);
          test "e5" (smoke "e5" 1);
          test "e7" (smoke "e7" 1);
          test "e8" (smoke "e8" 2);
          test "e9" (smoke "e9" 3);
          test "x1" (smoke "x1" 1);
          test "x2" (smoke "x2" 1);
          test "x3" (smoke "x3" 1);
          test "x4" (smoke "x4" 1);
          test "x5" (smoke "x5" 2);
          test "e3 shape" thm_shape_e3;
          test "e6 plateau note" thm_shape_e6_plateau;
        ] );
    ]
