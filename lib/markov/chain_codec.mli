(** Binary chain artifacts and build memoisation through the store.

    A chain artifact is the {!Store.Codec} frame of the raw CSR arrays
    plus a layout version; see DESIGN.md ("Artifact store") for the
    on-disk format. Decoding revalidates the full CSR invariant
    ({!Chain.of_csr}), so corrupt or tampered payloads are rejected
    with a clean [Error] rather than yielding a garbage chain, and a
    decoded chain evolves and samples bit-identically to the chain
    that was encoded. *)

(** The CSR layout generation this build writes and reads (bumped when
    {!Chain}'s storage layout changes behaviour). It is embedded in
    the payload {e and} in {!recipe} keys, so artifacts from an older
    layout are orphaned, never misread. *)
val layout_version : int

(** [encode chain] is the framed binary artifact. *)
val encode : Chain.t -> string

(** [decode s] parses and fully revalidates an artifact. *)
val decode : string -> (Chain.t, string) result

(** [recipe ?extra ~game ~size ~beta ~variant ()] is the canonical
    cache key of a chain build: game id, state count, exact β
    (hex-float), dynamics variant (e.g. ["sequential-logit"]), the CSR
    layout and codec versions, plus any [extra] recipe fields. Every
    input that can change the built chain must be in here — that is
    the whole correctness contract of the cache. *)
val recipe :
  ?extra:(string * string) list ->
  game:string ->
  size:int ->
  beta:float ->
  variant:string ->
  unit ->
  Store.Key.t

(** [cached ?store key build] memoises [build] through the store:
    without a store it just builds; with one it decodes a prior
    artifact when present (corrupt artifacts are dropped and rebuilt)
    and files the freshly built chain otherwise. *)
val cached : ?store:Store.Cas.t -> Store.Key.t -> (unit -> Chain.t) -> Chain.t
