type t = { size : int; rows : (int * float) array array }

let row_sum_tolerance = 1e-9

let normalize_row i entries =
  (* Sum duplicates, validate, and renormalise the row to exact mass 1. *)
  let table = Hashtbl.create (Array.length entries) in
  Array.iter
    (fun (j, p) ->
      if p < 0. || Float.is_nan p then
        invalid_arg (Printf.sprintf "Chain: negative probability in row %d" i);
      if p > 0. then
        Hashtbl.replace table j (p +. Option.value ~default:0. (Hashtbl.find_opt table j)))
    entries;
  let total = Hashtbl.fold (fun _ p acc -> acc +. p) table 0. in
  if Float.abs (total -. 1.) > row_sum_tolerance then
    invalid_arg (Printf.sprintf "Chain: row %d sums to %.12g, expected 1" i total);
  let out = Hashtbl.fold (fun j p acc -> (j, p /. total) :: acc) table [] in
  let out = Array.of_list out in
  Array.sort (fun (a, _) (b, _) -> compare a b) out;
  out

let of_rows ?pool rows =
  let size = Array.length rows in
  if size = 0 then invalid_arg "Chain.of_rows: empty chain";
  let check_row i entries =
    Array.iter
      (fun (j, _) ->
        if j < 0 || j >= size then
          invalid_arg (Printf.sprintf "Chain: column %d out of range in row %d" j i))
      entries;
    normalize_row i entries
  in
  let checked = Exec.Pool.init_opt pool ~n:size (fun i -> check_row i rows.(i)) in
  { size; rows = checked }

let of_function ?pool n row =
  let rows = Exec.Pool.init_opt pool ~n (fun i -> Array.of_list (row i)) in
  of_rows ?pool rows

let of_dense m =
  if not (Linalg.Mat.is_square m) then invalid_arg "Chain.of_dense: non-square";
  let n = fst (Linalg.Mat.dims m) in
  of_rows
    (Array.init n (fun i ->
         let entries = ref [] in
         for j = n - 1 downto 0 do
           let p = Linalg.Mat.get m i j in
           if p <> 0. then entries := (j, p) :: !entries
         done;
         Array.of_list !entries))

let size t = t.size
let row t i = t.rows.(i)
let row_list t i = Array.to_list t.rows.(i)

let prob t i j =
  let entries = t.rows.(i) in
  let result = ref 0. in
  Array.iter (fun (k, p) -> if k = j then result := p) entries;
  !result

let evolve t mu =
  if Array.length mu <> t.size then invalid_arg "Chain.evolve: dimension mismatch";
  let out = Array.make t.size 0. in
  for i = 0 to t.size - 1 do
    let mass = mu.(i) in
    if mass > 0. then
      Array.iter (fun (j, p) -> out.(j) <- out.(j) +. (mass *. p)) t.rows.(i)
  done;
  out

let apply t f =
  if Array.length f <> t.size then invalid_arg "Chain.apply: dimension mismatch";
  Array.init t.size (fun i ->
      let acc = ref 0. in
      Array.iter (fun (j, p) -> acc := !acc +. (p *. f.(j))) t.rows.(i);
      !acc)

let to_dense t =
  let m = Linalg.Mat.create t.size t.size 0. in
  Array.iteri
    (fun i entries -> Array.iter (fun (j, p) -> Linalg.Mat.set m i j p) entries)
    t.rows;
  m

let sample_step rng t i =
  let entries = t.rows.(i) in
  let u = Prob.Rng.float rng in
  let acc = ref 0. in
  let result = ref (fst entries.(Array.length entries - 1)) in
  let found = ref false in
  Array.iter
    (fun (j, p) ->
      if not !found then begin
        acc := !acc +. p;
        if u < !acc then begin
          result := j;
          found := true
        end
      end)
    entries;
  !result

let simulate rng t ~start ~steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.simulate: bad start";
  if steps < 0 then invalid_arg "Chain.simulate: negative steps";
  let trajectory = Array.make (steps + 1) start in
  for k = 1 to steps do
    trajectory.(k) <- sample_step rng t trajectory.(k - 1)
  done;
  trajectory

let hitting_time rng t ~start ~target ~max_steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.hitting_time: bad start";
  let rec go state step =
    if target state then Some step
    else if step >= max_steps then None
    else go (sample_step rng t state) (step + 1)
  in
  go start 0

let successors t i =
  Array.to_list (Array.map fst t.rows.(i))

let reachable_from neighbours size start =
  let seen = Array.make size false in
  seen.(start) <- true;
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      (neighbours u)
  done;
  seen

let is_irreducible t =
  let forward = reachable_from (successors t) t.size 0 in
  if not (Array.for_all Fun.id forward) then false
  else begin
    (* Backward reachability needs the reversed adjacency. *)
    let preds = Array.make t.size [] in
    Array.iteri
      (fun i entries ->
        Array.iter (fun (j, p) -> if p > 0. then preds.(j) <- i :: preds.(j)) entries)
      t.rows;
    let backward = reachable_from (fun u -> preds.(u)) t.size 0 in
    Array.for_all Fun.id backward
  end

let gcd_aux a b =
  let rec go a b = if b = 0 then a else go b (a mod b) in
  go (Stdlib.abs a) (Stdlib.abs b)

let is_aperiodic t =
  (* Any positive self-loop makes an irreducible chain aperiodic; this
     is the common case for logit chains (the selected player may keep
     her strategy). Otherwise compute the period as the gcd over edges
     (u, v) of level(u) + 1 - level(v) for BFS levels from state 0. *)
  let has_loop = ref false in
  Array.iteri
    (fun i entries ->
      Array.iter (fun (j, p) -> if i = j && p > 0. then has_loop := true) entries)
    t.rows;
  if !has_loop then true
  else begin
    let level = Array.make t.size (-1) in
    level.(0) <- 0;
    let queue = Queue.create () in
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if level.(v) < 0 then begin
            level.(v) <- level.(u) + 1;
            Queue.add v queue
          end)
        (successors t u)
    done;
    let g = ref 0 in
    Array.iteri
      (fun u entries ->
        if level.(u) >= 0 then
          Array.iter
            (fun (v, p) ->
              if p > 0. && level.(v) >= 0 then
                g := Stdlib.abs (gcd_aux !g (level.(u) + 1 - level.(v))))
            entries)
      t.rows;
    !g = 1
  end

let is_reversible ?(tol = 1e-9) t pi =
  if Array.length pi <> t.size then invalid_arg "Chain.is_reversible: dimension";
  let ok = ref true in
  Array.iteri
    (fun i entries ->
      Array.iter
        (fun (j, p) ->
          let flow = pi.(i) *. p in
          let back = pi.(j) *. prob t j i in
          if Float.abs (flow -. back) > tol then ok := false)
        entries)
    t.rows;
  !ok

let edge_measure t pi i j = pi.(i) *. prob t i j

let lazy_version t =
  of_rows
    (Array.mapi
       (fun i entries ->
         let halved = Array.map (fun (j, p) -> (j, 0.5 *. p)) entries in
         Array.append halved [| (i, 0.5) |])
       t.rows)
