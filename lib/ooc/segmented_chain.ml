(* Distribution evolution over an on-disk segment.

   The gather loops below replay [Markov.Chain]'s pull kernels over
   block views instead of in-RAM CSC arrays: per destination column
   the sources arrive in ascending order with the same
   [mass > 0.] skip and the same register accumulation, so every
   result is bit-identical to the in-RAM kernels — serial, pooled,
   mmap or stream. Blocks own disjoint column ranges, hence one
   writer per destination and race-free pool dispatch, the same
   argument as the PR 5 CSC kernels. *)

type t = { seg : Segment.t }

let of_segment seg = { seg }

let open_ ?access path = Result.map (fun seg -> { seg }) (Segment.open_ ?access path)

let close t = Segment.close t.seg
let segment t = t.seg
let size t = Segment.size t.seg
let nnz t = Segment.nnz t.seg

(* Cutover cost of one block: its share of the matrix, one
   multiply-add per stored transition — the calibration that routes
   small segments down the pool's serial path. *)
let block_cost t = Int.max 1 (nnz t / Segment.num_blocks t.seg)

let check_args name t ~src ~dst =
  let n = size t in
  if Array.length src <> n || Array.length dst <> n then
    invalid_arg (name ^ ": dimension mismatch");
  if src == dst then invalid_arg (name ^ ": src and dst must be distinct")

(* One block of destinations, single distribution. Annotations keep
   every Bigarray access on the monomorphic unboxed path. *)
let evolve_view (v : Segment.view) ~(src : float array) ~(dst : float array) =
  let cs : Segment.int_ba = v.Segment.cs in
  let rows : Segment.int_ba = v.Segment.rows in
  let probs : Segment.float_ba = v.Segment.probs in
  let cs_shift = v.Segment.cs_shift and k_shift = v.Segment.k_shift in
  for j = v.Segment.v_col_lo to v.Segment.v_col_hi - 1 do
    let klo = Bigarray.Array1.unsafe_get cs (j - cs_shift) in
    let kstop = Bigarray.Array1.unsafe_get cs (j - cs_shift + 1) - 1 in
    let acc = ref 0. in
    for k = klo to kstop do
      let mass =
        Array.unsafe_get src (Bigarray.Array1.unsafe_get rows (k - k_shift))
      in
      if mass > 0. then
        acc := !acc +. (mass *. Bigarray.Array1.unsafe_get probs (k - k_shift))
    done;
    (* lint: allow domain-capture — blocks own disjoint column ranges: dst.(j) has exactly one writer *)
    Array.unsafe_set dst j !acc
  done

let evolve_into ?pool t ~src ~dst =
  check_args "Ooc.Segmented_chain.evolve_into" t ~src ~dst;
  let nb = Segment.num_blocks t.seg in
  Exec.Pool.iter_opt ~cost:(block_cost t) pool ~n:nb (fun b ->
      evolve_view (Segment.view t.seg b) ~src ~dst)

(* One block of destinations, k panel rows. Per (r, j) cell the
   gather is identical to [evolve_view]'s inner loop, so each panel
   row matches a single-distribution evolve bit for bit — the same
   cell-level argument as [Chain.evolve_many_into], independent of
   the loop nesting around it. *)
let evolve_view_many (v : Segment.view) ~k ~n ~(src : Markov.Chain.panel)
    ~(dst : Markov.Chain.panel) =
  let cs : Segment.int_ba = v.Segment.cs in
  let rows : Segment.int_ba = v.Segment.rows in
  let probs : Segment.float_ba = v.Segment.probs in
  let cs_shift = v.Segment.cs_shift and k_shift = v.Segment.k_shift in
  for j = v.Segment.v_col_lo to v.Segment.v_col_hi - 1 do
    let klo = Bigarray.Array1.unsafe_get cs (j - cs_shift) in
    let kstop = Bigarray.Array1.unsafe_get cs (j - cs_shift + 1) - 1 in
    for r = 0 to k - 1 do
      let base = r * n in
      let acc = ref 0. in
      for kk = klo to kstop do
        let mass =
          Bigarray.Array1.unsafe_get src
            (base + Bigarray.Array1.unsafe_get rows (kk - k_shift))
        in
        if mass > 0. then
          acc := !acc +. (mass *. Bigarray.Array1.unsafe_get probs (kk - k_shift))
      done;
      (* lint: allow domain-capture — blocks own disjoint column ranges: dst cell (r, j) has exactly one writer *)
      Bigarray.Array1.unsafe_set dst (base + j) !acc
    done
  done

let evolve_many_into ?pool t ~k ~(src : Markov.Chain.panel)
    ~(dst : Markov.Chain.panel) =
  if k < 0 then invalid_arg "Ooc.Segmented_chain.evolve_many_into: negative k";
  let n = size t in
  if Bigarray.Array1.dim src <> k * n || Bigarray.Array1.dim dst <> k * n then
    invalid_arg "Ooc.Segmented_chain.evolve_many_into: panel dimension mismatch";
  if src == dst then
    invalid_arg "Ooc.Segmented_chain.evolve_many_into: src and dst must be distinct";
  let nb = Segment.num_blocks t.seg in
  Exec.Pool.iter_opt
    ~cost:(Int.max 1 k * block_cost t)
    pool ~n:nb
    (fun b -> evolve_view_many (Segment.view t.seg b) ~k ~n ~src ~dst)

let kernel t =
  Markov.Kernel.v ~size:(size t)
    ~evolve_into:(fun ~pool ~src ~dst -> evolve_into ?pool t ~src ~dst)
    ~evolve_many_into:(fun ~pool ~k ~src ~dst -> evolve_many_into ?pool t ~k ~src ~dst)
