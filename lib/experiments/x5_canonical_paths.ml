(** X5 (extension) — the proofs' own combinatorics, evaluated exactly.

    (a) Lemma 5.4: the congestion of the bit-fixing path family Γ^ℓ
    on the logit chain of a graphical coordination game is at most
    2n²·exp(χ(ℓ)(δ₀+δ₁)β). We compute ρ(Γ^ℓ) exactly for the optimal
    ordering on several topologies and report the slack.

    (b) Lemma 3.3: the comparison of M^β with M^0 through admissible
    detours yields t_rel ≤ α·γ·t⁰_rel ≤ 2mn·exp(βΔΦ). We evaluate
    α and γ exactly and show the chain of inequalities
    t_rel ≤ α·γ·t⁰_rel ≤ closed form numerically. *)

open Games

let part_a ~quick =
  let n = if quick then 5 else 6 in
  let delta = 0.5 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "X5a (Lem 5.4): exact congestion of bit-fixing paths, n=%d"
           n)
      [
        ("graph", Table.Left);
        ("beta", Table.Right);
        ("chi(order)", Table.Right);
        ("rho exact", Table.Right);
        ("Lem 5.4 bound", Table.Right);
        ("bound/rho", Table.Right);
      ]
  in
  let betas = if quick then [ 0.5 ] else [ 0.25; 0.5; 1.0 ] in
  List.iter
    (fun (name, graph) ->
      let _, order = Graphs.Cutwidth.exact_with_ordering graph in
      let desc =
        Graphical.create graph (Coordination.of_deltas ~delta0:delta ~delta1:delta)
      in
      List.iter
        (fun beta ->
          let rho, bound = Logit.Comparison.lemma54_congestion desc ~beta ~order in
          Table.add_row table
            [
              name;
              Table.cell_float beta;
              Table.cell_int (Graphs.Cutwidth.of_ordering graph order);
              Table.cell_float rho;
              Table.cell_float bound;
              Table.cell_float (bound /. rho);
            ])
        betas)
    [
      ("path", Graphs.Generators.path n);
      ("ring", Graphs.Generators.ring n);
      ("star", Graphs.Generators.star n);
      ("clique", Graphs.Generators.clique n);
    ];
  Table.add_note table "Lemma 5.4 holds iff bound/rho >= 1 everywhere.";
  table

let part_b ~quick =
  let table =
    Table.create
      ~title:"X5b (Lem 3.3): comparison constants alpha, gamma, exact chain"
      [
        ("game", Table.Left);
        ("beta", Table.Right);
        ("t_rel exact", Table.Right);
        ("alpha*gamma*t_rel0", Table.Right);
        ("2mn e^{beta dPhi}", Table.Right);
      ]
  in
  let games =
    [
      Coordination.to_game (Coordination.of_deltas ~delta0:1.0 ~delta1:0.6);
      Zoo.pure_coordination ~players:3 ~strategies:2;
      Graphical.to_game
        (Graphical.create (Graphs.Generators.ring 4)
           (Coordination.of_deltas ~delta0:0.8 ~delta1:0.8));
    ]
  in
  let betas = if quick then [ 1.0 ] else [ 0.5; 1.0; 2.0 ] in
  List.iter
    (fun game ->
      let phi = Option.get (Potential.recover game) in
      let family = Logit.Logit_dynamics.chain_family game ~betas in
      List.iteri
        (fun bi beta ->
          let alpha, gamma, implied, closed =
            Logit.Comparison.lemma33_comparison game phi ~beta
          in
          ignore alpha;
          ignore gamma;
          let chain = Markov.Family.plane family bi in
          let pi = Logit.Gibbs.stationary (Game.space game) phi ~beta in
          let trel = Markov.Spectral.relaxation_time chain pi in
          Table.add_row table
            [
              Game.name game;
              Table.cell_float beta;
              Table.cell_float trel;
              Table.cell_float implied;
              Table.cell_float closed;
            ])
        betas)
    games;
  Table.add_note table
    "Thm 2.5 guarantees column 3 <= column 4 and exactness requires \
     column 3 >= t_rel.";
  table

let run ~quick = [ part_a ~quick; part_b ~quick ]
