let bfs_distances g src =
  let n = Graph.num_vertices g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let queue = Queue.create () in
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  dist

let is_connected g =
  let n = Graph.num_vertices g in
  n <= 1 || Array.for_all (fun d -> d >= 0) (bfs_distances g 0)

let connected_components g =
  let n = Graph.num_vertices g in
  let seen = Array.make n false in
  let components = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let dist = bfs_distances g v in
      let comp = ref [] in
      for u = n - 1 downto 0 do
        if dist.(u) >= 0 then begin
          seen.(u) <- true;
          comp := u :: !comp
        end
      done;
      components := !comp :: !components
    end
  done;
  List.rev !components

let diameter g =
  let n = Graph.num_vertices g in
  if n = 0 then invalid_arg "Props.diameter: empty graph";
  let best = ref 0 in
  for v = 0 to n - 1 do
    Array.iter
      (fun d ->
        if d < 0 then invalid_arg "Props.diameter: disconnected graph";
        if d > !best then best := d)
      (bfs_distances g v)
  done;
  !best

let is_bipartite g =
  let n = Graph.num_vertices g in
  let colour = Array.make n (-1) in
  let ok = ref true in
  for start = 0 to n - 1 do
    if colour.(start) < 0 then begin
      colour.(start) <- 0;
      let queue = Queue.create () in
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun v ->
            if colour.(v) < 0 then begin
              colour.(v) <- 1 - colour.(u);
              Queue.add v queue
            end
            else if colour.(v) = colour.(u) then ok := false)
          (Graph.neighbors g u)
      done
    end
  done;
  !ok

let triangle_count g =
  (* For each edge (u, v) count common neighbours above v to count each
     triangle exactly once. *)
  Graph.fold_edges
    (fun acc u v ->
      let nu = Graph.neighbors g u in
      acc + List.length (List.filter (fun w -> w > v && Graph.has_edge g v w) nu))
    0 g

let degree_histogram g =
  let hist = Array.make (Graph.max_degree g + 1) 0 in
  for v = 0 to Graph.num_vertices g - 1 do
    let d = Graph.degree g v in
    hist.(d) <- hist.(d) + 1
  done;
  hist
