(** E4 — Theorem 3.6: for β ≤ c/(n·δΦ) the mixing time is O(n log n).

    We take graphical coordination games on rings of growing size, set
    β exactly at the theorem's threshold with c = 1/2, and measure the
    exact mixing time; the ratio t_mix/(n log n) must stay bounded
    (and the explicit path-coupling constant must dominate it). *)

open Games

let run ~quick =
  let table =
    Table.create ~title:"E4 (Thm 3.6): small-beta mixing is O(n log n)"
      [
        ("n", Table.Right);
        ("beta = c/(n dphi)", Table.Right);
        ("t_mix", Table.Right);
        ("n ln n", Table.Right);
        ("t_mix/(n ln n)", Table.Right);
        ("coupling bound", Table.Right);
      ]
  in
  let c = 0.5 in
  let sizes = if quick then [ 3; 5; 7 ] else [ 3; 4; 5; 6; 7; 8; 9; 10 ] in
  List.iter
    (fun n ->
      let game_desc =
        Graphical.create (Graphs.Generators.ring n)
          (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
      in
      let game = Graphical.to_game game_desc in
      let space = Game.space game in
      let phi = Graphical.potential game_desc in
      let delta_local = Potential.delta_local space phi in
      let beta = Logit.Bounds.thm36_beta_threshold ~c ~n ~delta_local in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary space phi ~beta in
      let tmix = Markov.Mixing.mixing_time_all ~max_steps:100_000 chain pi in
      let nlogn = float_of_int n *. log (float_of_int n) in
      let bound = Logit.Bounds.thm36_tmix_upper ~c ~n () in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float beta;
          Table.cell_opt_int tmix;
          Table.cell_float nlogn;
          (match tmix with
          | Some t -> Table.cell_float (float_of_int t /. nlogn)
          | None -> "-");
          Table.cell_float bound;
        ])
    sizes;
  Table.add_note table
    "t_mix/(n ln n) should be bounded by a constant; the last column is the \
     explicit Thm 3.6 path-coupling bound n(ln n + ln 4)/(1-c).";
  [ table ]
