type t = float array

let of_weights w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Dist.of_weights: empty";
  let total = ref 0. in
  Array.iter
    (fun x ->
      if x < 0. || Float.is_nan x then invalid_arg "Dist.of_weights: negative weight";
      total := !total +. x)
    w;
  if !total <= 0. then invalid_arg "Dist.of_weights: zero total mass";
  Array.map (fun x -> x /. !total) w

let of_log_weights lw =
  if Array.length lw = 0 then invalid_arg "Dist.of_log_weights: empty";
  Logspace.normalize_logs lw

let uniform n =
  if n < 1 then invalid_arg "Dist.uniform: need at least one point";
  Array.make n (1. /. float_of_int n)

let point n i =
  if n < 1 then invalid_arg "Dist.point: need at least one point";
  if i < 0 || i >= n then invalid_arg "Dist.point: index out of range";
  Array.init n (fun j -> if j = i then 1. else 0.)

let size = Array.length
let prob d i = d.(i)
let to_array = Array.copy

let support d =
  let acc = ref [] in
  for i = Array.length d - 1 downto 0 do
    if d.(i) > 0. then acc := i :: !acc
  done;
  !acc

let check_same_size name p q =
  if Array.length p <> Array.length q then
    invalid_arg ("Dist." ^ name ^ ": size mismatch")

let tv_distance p q =
  check_same_size "tv_distance" p q;
  let acc = ref 0. in
  Array.iteri (fun i pi -> acc := !acc +. Float.abs (pi -. q.(i))) p;
  0.5 *. !acc

let kl_divergence p q =
  check_same_size "kl_divergence" p q;
  let acc = ref 0. in
  Array.iteri
    (fun i pi ->
      if pi > 0. then
        if q.(i) > 0. then acc := !acc +. (pi *. log (pi /. q.(i)))
        else acc := infinity)
    p;
  !acc

let entropy d =
  let acc = ref 0. in
  Array.iter (fun p -> if p > 0. then acc := !acc -. (p *. log p)) d;
  !acc

let expect d f =
  let acc = ref 0. in
  Array.iteri (fun i p -> if p > 0. then acc := !acc +. (p *. f i)) d;
  !acc

let mass d pred =
  let acc = ref 0. in
  Array.iteri (fun i p -> if pred i then acc := !acc +. p) d;
  !acc

let sample rng d = Rng.categorical rng d

let evolve d step =
  let n = Array.length d in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    let di = d.(i) in
    if di > 0. then
      List.iter (fun (j, p) -> out.(j) <- out.(j) +. (di *. p)) (step i)
  done;
  out

let mix a p q =
  check_same_size "mix" p q;
  if a < 0. || a > 1. then invalid_arg "Dist.mix: coefficient out of [0,1]";
  Array.mapi (fun i pi -> (a *. pi) +. ((1. -. a) *. q.(i))) p

let pp ppf d =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    d
