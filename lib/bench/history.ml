let default_path = "BENCH_HISTORY.json"
let ( let* ) = Result.bind

let encode records =
  List.iter
    (fun r ->
      match Record.validate r with
      | Ok _ -> ()
      | Error msg -> invalid_arg ("Bench.History.encode: " ^ msg))
    records;
  Json.pretty
    (Json.Obj
       [
         ("schema_version", Json.Num (float_of_int Record.schema_version));
         ("records", Json.List (List.map Record.to_json records));
       ])

let decode s =
  let* j = Json.parse s in
  let* version = Json.int_field "schema_version" j in
  let* () =
    if version > Record.schema_version then
      Error
        (Printf.sprintf
           "trajectory schema_version %d is newer than supported %d (produced \
            by a newer logitdyn; refusing to misread it)"
           version Record.schema_version)
    else if version < 1 then
      Error (Printf.sprintf "bad trajectory schema_version %d" version)
    else Ok ()
  in
  let* records = Json.list_field "records" j in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | r :: rest -> (
        match Record.of_json r with
        | Ok record -> go (i + 1) (record :: acc) rest
        | Error msg -> Error (Printf.sprintf "record %d: %s" i msg))
  in
  go 0 [] records

let load ~path =
  if not (Sys.file_exists path) then Ok []
  else
    match Store.Io.read_file path with
    | None -> Error (Printf.sprintf "%s: cannot read" path)
    | Some contents -> (
        match decode contents with
        | Ok records -> Ok records
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let append ~path records =
  let* existing = load ~path in
  let all = existing @ records in
  match Store.Io.write_atomic ~path (encode all) with
  | () -> Ok all
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let latest_by_key records =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = Record.key r in
      if not (Hashtbl.mem tbl key) then order := key :: !order;
      Hashtbl.replace tbl key r)
    records;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order
