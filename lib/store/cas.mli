(** The content-addressed on-disk artifact cache.

    Artifacts are framed byte strings ({!Codec}) filed under the MD5
    digest of their build recipe ({!Key}):

    {v
      <root>/
        objects/<d₀d₁>/<digest>.art    the artifacts (d₀d₁ = first two
                                       hex digits, to keep directories
                                       small)
        tmp/                           staging area for atomic writes
    v}

    The default root is [$XDG_CACHE_HOME/logitdyn] (falling back to
    [$HOME/.cache/logitdyn]); [logitdyn --store DIR] and tests point
    elsewhere. All writes go through temp-file + rename inside the same
    filesystem ({!Io.write_atomic}), so concurrent {!Exec.Pool} workers
    and parallel CI jobs sharing one store never observe torn
    artifacts — at worst two racers both compute and the last rename
    wins with identical bytes.

    A handle counts hits, misses and writes so front ends can report
    warm-cache behaviour ([store: 12 hit(s), 0 miss(es)]). *)

type t

(** [default_dir ()] is the default store root (no directories are
    created). *)
val default_dir : unit -> string

(** [open_ ?dir ()] opens (creating if needed) a store rooted at [dir]
    (default {!default_dir}). Raises [Sys_error] if the root cannot be
    created. *)
val open_ : ?dir:string -> unit -> t

(** [dir t] is the store root. *)
val dir : t -> string

type stats = { hits : int; misses : int; writes : int }

(** [stats t] is the handle's counters so far: [hits]/[misses] count
    {!get}/{!get_decoded} lookups, [writes] counts {!put}s. *)
val stats : t -> stats

(** [put t key artifact] files [artifact] under [key], atomically,
    overwriting any previous object. *)
val put : t -> Key.t -> string -> unit

(** [get t key] is the raw artifact bytes, if present. Counts a hit or
    a miss. *)
val get : t -> Key.t -> string option

(** [get_decoded t key ~decode] reads and decodes in one step. A
    missing object, or one [decode] rejects (truncated, bit-flipped,
    wrong kind, old format version), counts as a miss — a corrupt
    object is also deleted so the rebuilt artifact replaces it. *)
val get_decoded : t -> Key.t -> decode:(string -> ('a, string) result) -> 'a option

(** [mem t key] tests presence without touching the counters. *)
val mem : t -> Key.t -> bool

(** [find_or_add t key build] is the cached artifact if present, else
    [build ()], which is filed before being returned. *)
val find_or_add : t -> Key.t -> (unit -> string) -> string

type entry = {
  digest : string;  (** the recipe hash (file basename) *)
  size : int;  (** artifact size in bytes *)
  mtime : float;  (** last-write time (epoch seconds) *)
  path : string;  (** absolute path of the object file *)
}

(** [ls t] lists every object, sorted by digest. *)
val ls : t -> entry list

(** {1 Out-of-core segments}

    Multi-GB segment files ({!Ooc.Segment}) are too large to pass
    through {!put}/{!get} as in-memory strings; they live beside the
    objects under [<root>/segments/<digest>.seg], written by the
    segment builder itself (atomically, via temp + rename) and read
    back with [mmap]. They share the store's gc budget. *)

(** [segment_path t key] is the canonical path for the segment built
    from recipe [key]. The file may or may not exist; the parent
    directory does. *)
val segment_path : t -> Key.t -> string

(** [ls_segments t] lists every segment file (digest = basename,
    sorted), stat-based — nothing is read or mapped. *)
val ls_segments : t -> entry list

(** [verify t] checks every object's framing and checksum via
    {!Codec.inspect}: [Ok kind] per sound artifact, [Error reason] per
    corrupt one. Nothing is deleted. *)
val verify : t -> (entry * (Codec.kind, string) result) list

(** [remove t ~digest] deletes one object; [false] if absent. *)
val remove : t -> digest:string -> bool

(** [gc ?max_bytes t ~older_than] deletes every object and segment
    whose mtime is more than [older_than] seconds old, then — when
    [max_bytes] is given — evicts the least-recently-written
    survivors (LRU by mtime, objects and segments pooled) until the
    store's total size is at most [max_bytes]. Returns (files
    deleted, bytes freed). Stale temp files from interrupted writers
    are swept on every gc. Raises [Invalid_argument] on a negative
    [max_bytes]. *)
val gc : ?max_bytes:int -> t -> older_than:float -> int * int

(** [clear t] deletes every object and segment; returns the number
    deleted. *)
val clear : t -> int
