type t = { counts : int array; mutable total : int }

let create n =
  if n < 1 then invalid_arg "Empirical.create: need at least one point";
  { counts = Array.make n 0; total = 0 }

let add t i =
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let add_many t i k =
  if k < 0 then invalid_arg "Empirical.add_many: negative count";
  t.counts.(i) <- t.counts.(i) + k;
  t.total <- t.total + k

let count t i = t.counts.(i)
let total t = t.total
let size t = Array.length t.counts

let to_dist t =
  if t.total = 0 then invalid_arg "Empirical.to_dist: no observations";
  Dist.of_weights (Array.map float_of_int t.counts)

let tv_against t d = Dist.tv_distance (to_dist t) d

let of_samples n xs =
  let t = create n in
  List.iter (fun i -> add t i) xs;
  t
