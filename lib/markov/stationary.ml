let by_power ?(tol = 1e-12) ?(max_iter = 10_000_000) t =
  let n = Chain.size t in
  let mu = ref (Array.make n (1. /. float_of_int n)) in
  let scratch = ref (Array.make n 0.) in
  let rec go iter =
    if iter > max_iter then
      Common.no_convergence "Stationary.by_power: no convergence within %d iterations"
        max_iter;
    Chain.evolve_into t ~src:!mu ~dst:!scratch;
    let moved = ref 0. in
    Array.iteri (fun i x -> moved := !moved +. Float.abs (x -. !mu.(i))) !scratch;
    let previous = !mu in
    mu := !scratch;
    scratch := previous;
    if !moved > tol then go (iter + 1)
  in
  go 1;
  !mu

let by_solve t =
  let n = Chain.size t in
  (* Unknown: the column vector π. Equations: for each state j < n-1,
     Σ_i π_i (P(i,j) - δ_ij) = 0; the last equation is Σ_i π_i = 1. *)
  let a = Linalg.Mat.create n n 0. in
  for i = 0 to n - 1 do
    Chain.iter_row t i (fun j p -> if j < n - 1 then Linalg.Mat.set a j i p);
    if i < n - 1 then Linalg.Mat.set a i i (Linalg.Mat.get a i i -. 1.);
    Linalg.Mat.set a (n - 1) i 1.
  done;
  let b = Array.init n (fun i -> if i = n - 1 then 1. else 0.) in
  let pi = Linalg.Lu.solve a b in
  (* Round-off can leave tiny negative entries; clamp and renormalise. *)
  let pi = Array.map (fun x -> Float.max x 0.) pi in
  let total = Array.fold_left ( +. ) 0. pi in
  Array.map (fun x -> x /. total) pi

let residual t pi =
  let next = Chain.evolve t pi in
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. Float.abs (x -. pi.(i))) next;
  !acc

let is_stationary ?(tol = 1e-8) t pi = residual t pi <= tol
