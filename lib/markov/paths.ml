type path = (int * int) list
type family = int -> int -> path

let path_connects path x y =
  let rec walk last = function
    | [] -> last = y
    | (u, v) :: rest -> u = last && walk v rest
  in
  walk x path

let validate t fam =
  let n = Chain.size t in
  let offending = ref None in
  (try
     for x = 0 to n - 1 do
       for y = 0 to n - 1 do
         if x <> y then begin
           let path = fam x y in
           let edges_ok =
             List.for_all (fun (u, v) -> Chain.prob t u v > 0.) path
           in
           if (not edges_ok) || not (path_connects path x y) then begin
             offending := Some (x, y);
             raise Exit
           end
         end
       done
     done
   with Exit -> ());
  !offending

let edge_loads t fam weight =
  (* Accumulate Σ weight(x,y)·|Γ| over paths through each directed edge. *)
  let n = Chain.size t in
  let loads = Hashtbl.create (4 * n) in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      if x <> y then begin
        let path = fam x y in
        let len = float_of_int (List.length path) in
        let w = weight x y *. len in
        List.iter
          (fun (u, v) ->
            if Chain.prob t u v <= 0. then
              invalid_arg "Paths: path uses a non-edge of the chain";
            let key = (u, v) in
            Hashtbl.replace loads key
              (w +. Option.value ~default:0. (Hashtbl.find_opt loads key)))
          path
      end
    done
  done;
  loads

let congestion t pi fam =
  let loads = edge_loads t fam (fun x y -> pi.(x) *. pi.(y)) in
  Hashtbl.fold
    (fun (u, v) load acc ->
      let q = pi.(u) *. Chain.prob t u v in
      Float.max acc (load /. q))
    loads 0.

let relaxation_upper_bound ~congestion =
  if congestion <= 0. then invalid_arg "Paths.relaxation_upper_bound";
  congestion

let comparison_congestion t pi ~reference:(that, that_pi) fam =
  if Chain.size t <> Chain.size that then
    invalid_arg "Paths.comparison_congestion: state spaces differ";
  (* Only ordered pairs that are edges of the reference chain carry
     weight Q̂(x,y) = π̂(x)·P̂(x,y). *)
  let n = Chain.size t in
  let loads = Hashtbl.create (4 * n) in
  for x = 0 to n - 1 do
    Chain.iter_row that x (fun y p_hat ->
        if x <> y && p_hat > 0. then begin
          let path = fam x y in
          let len = float_of_int (List.length path) in
          let w = that_pi.(x) *. p_hat *. len in
          List.iter
            (fun (u, v) ->
              if Chain.prob t u v <= 0. then
                invalid_arg "Paths: path uses a non-edge of the chain";
              let key = (u, v) in
              Hashtbl.replace loads key
                (w +. Option.value ~default:0. (Hashtbl.find_opt loads key)))
            path
        end)
  done;
  let alpha =
    Hashtbl.fold
      (fun (u, v) load acc ->
        let q = pi.(u) *. Chain.prob t u v in
        Float.max acc (load /. q))
      loads 0.
  in
  let gamma =
    let best = ref 0. in
    Array.iteri
      (fun x px -> if that_pi.(x) > 0. then best := Float.max !best (px /. that_pi.(x)))
      pi;
    !best
  in
  (alpha, gamma)
