(** The single exit point for bench results. The harness hands each
    ablation's legacy snapshot JSON to [record_run]; the sink writes
    the snapshot atomically, migrates it into trajectory records,
    stamps them with provenance (git revision, host, wall-clock time)
    and appends them to [BENCH_HISTORY.json].

    Owning the filenames here — with the [bench-json-outside-bench]
    lint rule guarding the rest of the tree — means the snapshot and
    the trajectory cannot drift: the trajectory is derived from the
    very bytes written to the snapshot. *)

(** Legacy snapshot paths, one per ablation family. *)
val csr_path : string

val spmm_path : string
val store_path : string
val serve_path : string
val ooc_path : string
val family_path : string

type provenance = { rev : string; host : string; timestamp : float }

(** [provenance ()] samples the current git short revision (["unknown"]
    outside a work tree), hostname and unix time. *)
val provenance : unit -> provenance

val stamp : provenance -> Record.t -> Record.t

(** [record_run ?history_path ?provenance ~legacy_path legacy_json]
    validates [legacy_json] by migrating it, writes it to
    [legacy_path] atomically, and appends the stamped records to
    [history_path] (default {!History.default_path}). Nothing is
    written if migration fails — a malformed snapshot never reaches
    disk. Returns the appended records. *)
val record_run :
  ?history_path:string ->
  ?provenance:provenance ->
  legacy_path:string ->
  string ->
  (Record.t list, string) result
