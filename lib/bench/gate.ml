type verdict =
  | Within of { base_s : float; cand_s : float; ratio : float }
  | Regression of { base_s : float; cand_s : float; ratio : float }
  | Rss_regression of { base_kb : int; cand_kb : int; ratio : float }
  | Incorrect
  | New_workload of { cand_s : float }
  | Disappeared of { base_s : float }

type finding = { key : string; verdict : verdict }

type report = {
  threshold : float;
  strict : bool;
  findings : finding list;
  failed : bool;
}

let compare ?(strict = false) ~threshold ~baseline ~candidate () =
  if Float.is_nan threshold || (not (Float.is_finite threshold)) || threshold < 0.
  then invalid_arg "Bench.Gate.compare: threshold must be finite and >= 0";
  let base_latest = History.latest_by_key baseline in
  let cand_latest = History.latest_by_key candidate in
  let base_tbl = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace base_tbl (Record.key r) r) base_latest;
  let judge (cand : Record.t) =
    let key = Record.key cand in
    let verdict =
      if not cand.Record.correct then Incorrect
      else
        match Hashtbl.find_opt base_tbl key with
        | None -> New_workload { cand_s = cand.Record.seconds }
        | Some base ->
            Hashtbl.remove base_tbl key;
            let base_s = base.Record.seconds in
            let cand_s = cand.Record.seconds in
            let ratio = cand_s /. base_s in
            (* Exactly threshold percent slower still passes; the
               boundary tests pin this strictness. *)
            if cand_s > base_s *. (1. +. (threshold /. 100.)) then
              Regression { base_s; cand_s; ratio }
            else (
              (* Same threshold and boundary semantics for peak RSS,
                 judged only when both sides measured it — a time
                 regression outranks an RSS one, and an arm that
                 stops (or starts) reporting RSS is not a failure. *)
              match (base.Record.peak_rss_kb, cand.Record.peak_rss_kb) with
              | Some base_kb, Some cand_kb
                when base_kb > 0
                     && float_of_int cand_kb
                        > float_of_int base_kb *. (1. +. (threshold /. 100.)) ->
                  Rss_regression
                    {
                      base_kb;
                      cand_kb;
                      ratio = float_of_int cand_kb /. float_of_int base_kb;
                    }
              | _ -> Within { base_s; cand_s; ratio })
    in
    (* An Incorrect candidate still consumes its baseline key so it is
       not double-reported as disappeared. *)
    if verdict = Incorrect then Hashtbl.remove base_tbl key;
    { key; verdict }
  in
  let cand_findings = List.map judge cand_latest in
  let disappeared =
    List.filter_map
      (fun r ->
        let key = Record.key r in
        if Hashtbl.mem base_tbl key then
          Some { key; verdict = Disappeared { base_s = r.Record.seconds } }
        else None)
      base_latest
  in
  let findings = cand_findings @ disappeared in
  let failed =
    List.exists
      (fun f ->
        match f.verdict with
        | Regression _ | Rss_regression _ | Incorrect -> true
        | Disappeared _ -> strict
        | Within _ | New_workload _ -> false)
      findings
  in
  { threshold; strict; findings; failed }

let pp_verdict fmt = function
  | Within { base_s; cand_s; ratio } ->
      Format.fprintf fmt "ok %.6fs -> %.6fs (x%.3f)" base_s cand_s ratio
  | Regression { base_s; cand_s; ratio } ->
      Format.fprintf fmt "REGRESSION %.6fs -> %.6fs (x%.3f)" base_s cand_s
        ratio
  | Rss_regression { base_kb; cand_kb; ratio } ->
      Format.fprintf fmt "RSS REGRESSION %dkB -> %dkB (x%.3f)" base_kb cand_kb
        ratio
  | Incorrect -> Format.fprintf fmt "INCORRECT"
  | New_workload { cand_s } -> Format.fprintf fmt "new %.6fs" cand_s
  | Disappeared { base_s } ->
      Format.fprintf fmt "disappeared (baseline %.6fs)" base_s

let pp_report fmt report =
  List.iter
    (fun { key; verdict } ->
      Format.fprintf fmt "%-60s %a@." key pp_verdict verdict)
    report.findings;
  Format.fprintf fmt "gate: %s (threshold %.1f%%%s, %d arms)@."
    (if report.failed then "FAIL" else "PASS")
    report.threshold
    (if report.strict then ", strict" else "")
    (List.length report.findings)
