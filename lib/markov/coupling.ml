type step = Prob.Rng.t -> int * int -> int * int

let coalescence_time rng step ~x0 ~y0 ~max_steps =
  let rec go (x, y) t =
    if x = y then Some t
    else if t >= max_steps then None
    else go (step rng (x, y)) (t + 1)
  in
  go (x0, y0) 0

let coalescence_samples rng step ~x0 ~y0 ~max_steps ~replicas =
  if replicas < 1 then invalid_arg "Coupling.coalescence_samples: need replicas";
  Array.init replicas (fun _ ->
      match coalescence_time rng step ~x0 ~y0 ~max_steps with
      | Some t -> t
      | None -> max_steps + 1)

let tmix_upper_estimate rng step ~x0 ~y0 ~max_steps ~replicas =
  let samples = coalescence_samples rng step ~x0 ~y0 ~max_steps ~replicas in
  let censored = Array.fold_left (fun acc t -> if t > max_steps then acc + 1 else acc) 0 samples in
  if 4 * censored > replicas then None
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    (* Index of the 75th percentile: the smallest t with at least 3/4 of
       the mass at or below it. *)
    let k = (3 * (replicas - 1)) / 4 in
    Some sorted.(k)
  end

let independent_coupling chain rng (x, y) =
  if x = y then
    let z = Chain.sample_step rng chain x in
    (z, z)
  else
    let x' = Chain.sample_step rng chain x in
    let y' = Chain.sample_step rng chain y in
    (x', y')

let grand_coupling_check rng step ~size ~trials ~horizon =
  if size < 1 then invalid_arg "Coupling.grand_coupling_check: empty space";
  let violations = ref 0 in
  for _ = 1 to trials do
    let x = Prob.Rng.int rng size and y = Prob.Rng.int rng size in
    let pair = ref (x, y) in
    for _ = 1 to horizon do
      let was_together = fst !pair = snd !pair in
      pair := step rng !pair;
      if was_together && fst !pair <> snd !pair then incr violations
    done
  done;
  !violations
