type t = { up : float array; down : float array }

let create ~up ~down =
  let n1 = Array.length up in
  if n1 = 0 || Array.length down <> n1 then
    invalid_arg "Birth_death.create: need equal non-empty arrays";
  let n = n1 - 1 in
  (* lint: allow float-equality — boundary rates must be exactly zero *)
  if up.(n) <> 0. then invalid_arg "Birth_death.create: up.(n) must be 0";
  (* lint: allow float-equality — boundary rates must be exactly zero *)
  if down.(0) <> 0. then invalid_arg "Birth_death.create: down.(0) must be 0";
  Array.iteri
    (fun k u ->
      let d = down.(k) in
      if u < 0. || d < 0. then invalid_arg "Birth_death.create: negative rate";
      if u +. d > 1. +. 1e-12 then
        invalid_arg "Birth_death.create: up + down exceeds 1")
    up;
  { up = Array.copy up; down = Array.copy down }

let size t = Array.length t.up
let up t k = t.up.(k)
let down t k = t.down.(k)

let to_chain t =
  let n1 = size t in
  Chain.of_rows
    (Array.init n1 (fun k ->
         let stay = 1. -. t.up.(k) -. t.down.(k) in
         let entries = ref [] in
         if t.up.(k) > 0. then entries := (k + 1, t.up.(k)) :: !entries;
         if t.down.(k) > 0. then entries := (k - 1, t.down.(k)) :: !entries;
         if stay > 1e-15 then entries := (k, stay) :: !entries;
         Array.of_list !entries))

let stationary t =
  let n1 = size t in
  let log_weights = Array.make n1 0. in
  for k = 1 to n1 - 1 do
    if t.up.(k - 1) <= 0. || t.down.(k) <= 0. then
      invalid_arg "Birth_death.stationary: chain is not irreducible";
    log_weights.(k) <- log_weights.(k - 1) +. log t.up.(k - 1) -. log t.down.(k)
  done;
  Prob.Logspace.normalize_logs log_weights

let mixing_time ?eps ?max_steps t =
  let chain = to_chain t in
  Mixing.mixing_time_all ?eps ?max_steps chain (stationary t)

let spectrum t = Spectral.spectrum (to_chain t) (stationary t)

let relaxation_time t =
  let values = spectrum t in
  let star = Float.max values.(1) (Float.abs values.(Array.length values - 1)) in
  1. /. (1. -. star)

let decomposition t =
  let n1 = size t in
  let diag = Array.init n1 (fun k -> 1. -. t.up.(k) -. t.down.(k)) in
  let off = Array.init (n1 - 1) (fun k -> sqrt (t.up.(k) *. t.down.(k + 1))) in
  Linalg.Tridiag.eigensystem ~diag ~off

let mixing_time_spectral ?eps ?max_steps t =
  let pi = stationary t in
  let starts = List.init (size t) Fun.id in
  let pi_min = Array.fold_left Float.min infinity pi in
  (* The eigendecomposition route loses all precision once 1/sqrt(pi)
     amplifies eigenvector round-off past the TV threshold; fall back
     to exact repeated squaring for such extreme chains. *)
  if pi_min > 1e-25 then
    Mixing.mixing_time_from_decomposition ?eps ?max_steps
      ~decomposition:(decomposition t) pi ~starts
  else Mixing.mixing_time_squaring ?eps ?max_steps (to_chain t) pi ~starts
