/* Monotonic and wall clocks for Common.Clock.

   OCaml 5.1's Unix library exposes only gettimeofday (wall clock),
   which NTP steps and leap smearing can move backwards — poison for
   duration measurements (time_pair minima, daemon latency
   histograms). POSIX clock_gettime(CLOCK_MONOTONIC) is the correct
   source; binding it directly keeps lib/common free of any OCaml
   library dependency.

   The stubs never raise: on a (practically impossible on any POSIX
   host) clock_gettime failure they return -1 and the OCaml side falls
   back to the other clock. [noalloc] is deliberately NOT claimed:
   caml_copy_int64 allocates a boxed int64. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <time.h>

/* logitdyn_clock_ns(monotonic): nanoseconds on CLOCK_MONOTONIC when
   [monotonic] is true, CLOCK_REALTIME (epoch) otherwise; -1 on
   failure. */
CAMLprim value logitdyn_clock_ns(value monotonic)
{
  CAMLparam1(monotonic);
  struct timespec ts;
  clockid_t id = Bool_val(monotonic) ? CLOCK_MONOTONIC : CLOCK_REALTIME;
  if (clock_gettime(id, &ts) != 0)
    CAMLreturn(caml_copy_int64(-1));
  CAMLreturn(caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec));
}
