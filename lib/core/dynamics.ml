open Games

let interval_coupling game ~beta rng (x, y) =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let player = Prob.Rng.int rng n in
  if x = y then begin
    let sigma = Logit_dynamics.update_distribution game ~beta ~player x in
    let a = Prob.Rng.categorical rng sigma in
    let z = Strategy_space.replace space x player a in
    (z, z)
  end
  else begin
    let sx = Logit_dynamics.update_distribution game ~beta ~player x in
    let sy = Logit_dynamics.update_distribution game ~beta ~player y in
    let m = Array.length sx in
    let common = Array.init m (fun a -> Float.min sx.(a) sy.(a)) in
    let overlap = Array.fold_left ( +. ) 0. common in
    if overlap >= 1. -. 1e-12 || Prob.Rng.float rng < overlap then begin
      let a = Prob.Rng.categorical rng common in
      ( Strategy_space.replace space x player a,
        Strategy_space.replace space y player a )
    end
    else begin
      let residual s = Array.init m (fun a -> Float.max 0. (s.(a) -. common.(a))) in
      let ax = Prob.Rng.categorical rng (residual sx) in
      let ay = Prob.Rng.categorical rng (residual sy) in
      ( Strategy_space.replace space x player ax,
        Strategy_space.replace space y player ay )
    end
  end

let threshold_coupling game ~beta rng (x, y) =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  for i = 0 to n - 1 do
    if Strategy_space.num_strategies space i <> 2 then
      invalid_arg "Dynamics.threshold_coupling: binary strategies required"
  done;
  let player = Prob.Rng.int rng n in
  let u = Prob.Rng.float rng in
  let move state =
    let sigma = Logit_dynamics.update_distribution game ~beta ~player state in
    let a = if u <= sigma.(0) then 0 else 1 in
    Strategy_space.replace space state player a
  in
  (move x, move y)

let hitting_time rng game ~beta ~start ~target ~max_steps =
  let rec go state step =
    if target state then Some step
    else if step >= max_steps then None
    else go (Logit_dynamics.step rng game ~beta state) (step + 1)
  in
  go start 0

let occupancy rng game ~beta ~start ~burn_in ~samples ~thin =
  if burn_in < 0 || samples < 1 || thin < 1 then invalid_arg "Dynamics.occupancy";
  let emp = Prob.Empirical.create (Game.size game) in
  let state = ref start in
  for _ = 1 to burn_in do
    state := Logit_dynamics.step rng game ~beta !state
  done;
  for _ = 1 to samples do
    for _ = 1 to thin do
      state := Logit_dynamics.step rng game ~beta !state
    done;
    Prob.Empirical.add emp !state
  done;
  emp

let mean_potential_trajectory rng game phi ~beta ~start ~steps ~replicas =
  if steps < 0 || replicas < 1 then
    invalid_arg "Dynamics.mean_potential_trajectory";
  let acc = Array.make (steps + 1) 0. in
  for _ = 1 to replicas do
    let state = ref start in
    acc.(0) <- acc.(0) +. phi !state;
    for t = 1 to steps do
      state := Logit_dynamics.step rng game ~beta !state;
      acc.(t) <- acc.(t) +. phi !state
    done
  done;
  Array.map (fun total -> total /. float_of_int replicas) acc
