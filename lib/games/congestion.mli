(** Congestion games (Rosenthal).

    Players choose among explicit resource bundles; each resource [r]
    has a delay function of its load, and a player pays the sum of the
    delays of the resources she uses. Every congestion game is an
    exact potential game with the Rosenthal potential

    {v Φ(x) = Σ_r Σ_{k=1..load_r(x)} delay_r(k), v}

    which matches the paper's sign convention (utilities are negated
    costs). The class motivates the hitting-time comparison with
    Asadpour–Saberi cited in the paper's related work. *)

type t

(** [create ~resources ~delay ~bundles] defines a congestion game:
    [resources] is the number of resources, [delay r k] the delay of
    resource [r] under load [k >= 1], and [bundles.(i)] the list of
    resource subsets (as sorted lists) available to player [i]. Every
    bundle must be non-empty with valid resource ids; every player
    needs at least one bundle. *)
val create : resources:int -> delay:(int -> int -> float) -> bundles:int list list array -> t

(** [to_game t] is the strategic game (strategy [s] of player [i]
    selects [List.nth bundles.(i) s]). *)
val to_game : t -> Game.t

(** [rosenthal t idx] is the Rosenthal potential at profile [idx]. *)
val rosenthal : t -> int -> float

(** [load t idx r] is the number of players using resource [r] in
    profile [idx]. *)
val load : t -> int -> int -> int

(** [linear_routing ~players ~links] is a singleton congestion game:
    each player picks one of [links] identical parallel links with
    delay k on load k (the load-balancing game of Asadpour–Saberi). *)
val linear_routing : players:int -> links:int -> t
