(** Empirical measures over [{0, ..., n-1}] built from samples.

    Used to estimate the law of a simulated chain at a fixed time and
    compare it against the exact stationary distribution. *)

type t

(** [create n] is an empty empirical measure over [n] points. *)
val create : int -> t

(** [add t i] records one observation of point [i]. *)
val add : t -> int -> unit

(** [add_many t i k] records [k] observations of point [i]. *)
val add_many : t -> int -> int -> unit

(** [count t i] is the number of observations of [i] so far. *)
val count : t -> int -> int

(** [total t] is the number of observations recorded. *)
val total : t -> int

(** [size t] is the number of points of the underlying space. *)
val size : t -> int

(** [to_dist t] is the normalised empirical distribution.
    Raises [Invalid_argument] when no observations were recorded. *)
val to_dist : t -> Dist.t

(** [tv_against t d] is the total variation distance between the
    empirical distribution and [d]. *)
val tv_against : t -> Dist.t -> float

(** [of_samples n xs] builds the measure over [n] points from the
    sample list [xs]. *)
val of_samples : int -> int list -> t
