(* Fixture tests for the logitlint engine (tools/lint): per rule a
   positive snippet, a negative snippet, and a suppressed snippet, all
   driven through the real file-parsing path via a temp tree. *)

open Helpers
module L = Lint_engine.Lint
module R = Lint_engine.Rules

(* ---------------- temp-tree plumbing ---------------- *)

let mkdir_p path =
  let segments = String.split_on_char '/' path in
  let start = if String.length path > 0 && path.[0] = '/' then "/" else "" in
  ignore
    (List.fold_left
       (fun acc seg ->
         if seg = "" then acc
         else begin
           let dir = if acc = "" || acc = "/" then acc ^ seg else acc ^ "/" ^ seg in
           if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
           dir
         end)
       start segments)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_root f =
  let root = Filename.temp_file "logitlint" ".fixtures" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf root with Sys_error _ -> ()) (fun () -> f root)

let add root rel contents =
  mkdir_p (Filename.concat root (Filename.dirname rel));
  let oc = open_out (Filename.concat root rel) in
  output_string oc contents;
  close_out oc

(* Lint one fixture file with every rule; return (rule, line, suppressed). *)
let lint_one ?config root rel contents =
  add root rel contents;
  List.map
    (fun (f : L.finding) -> (f.rule, f.line, f.suppressed))
    (L.lint_file ?config ~rules:R.all ~root ~relpath:rel ())

let names fs = List.map (fun (r, _, _) -> r) fs
let check_clean msg fs = check_int msg 0 (List.length fs)

(* ---------------- float-equality ---------------- *)

let float_equality_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let f x = x = 1.0\n\
           let g x = x +. 1. <> x\n\
           let h x = compare (Float.abs x) 0.5\n"
      in
      check_int "three findings" 3 (List.length fs);
      List.iter
        (fun (r, _, s) ->
          check_true "rule name" (r = "float-equality");
          check_false "not suppressed" s)
        fs)

let float_equality_negative () =
  with_root (fun root ->
      check_clean "int/no-float comparisons are clean"
        (lint_one root "lib/a.ml"
           "let f x y = x = y\n\
            let g n = n <> 0\n\
            let near a b = Float.abs (a -. b) <= 1e-9\n"))

let float_equality_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "(* lint: allow float-equality — exact zero intended *)\n\
           let f x = x = 0.\n\
           let same_line y = y <> 1.  (* lint: allow float-equality *)\n"
      in
      check_int "both findings present" 2 (List.length fs);
      List.iter (fun (_, _, s) -> check_true "suppressed" s) fs)

(* ---------------- exn-policy ---------------- *)

let exn_policy_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let f () = failwith \"nope\"\nlet g () = raise (Failure \"nope\")\n"
      in
      check_int "failwith and Failure both flagged" 2
        (List.length (List.filter (( = ) "exn-policy") (names fs))))

let exn_policy_negative () =
  with_root (fun root ->
      (* Outside lib/ the rule does not apply; catching Failure inside
         lib/ (e.g. from float_of_string) stays legal. *)
      check_clean "failwith outside lib/ is fine"
        (lint_one root "bin/a.ml" "let f () = failwith \"nope\"\n");
      check_clean "catching Failure is fine"
        (lint_one root "lib/b.ml"
           "let f s = try float_of_string s with Failure _ -> 0.\n\
            let g () = invalid_arg \"precondition\"\n"))

let exn_policy_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "(* lint: allow exn-policy — crossing a C boundary *)\n\
           let f () = failwith \"nope\"\n"
      in
      match fs with
      | [ ("exn-policy", 2, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed exn-policy finding")

(* ---------------- bare-random ---------------- *)

let bare_random_positive () =
  with_root (fun root ->
      let ml = lint_one root "lib/a.ml" "let x = Random.int 3\n" in
      check_int "expression flagged" 1
        (List.length (List.filter (( = ) "bare-random") (names ml)));
      let mli =
        lint_one root "lib/b.mli" "val f : Random.State.t -> int\n"
      in
      check_int "type in .mli flagged" 1
        (List.length (List.filter (( = ) "bare-random") (names mli)));
      let opened = lint_one root "test/c.ml" "open Random\nlet x = int 3\n" in
      check_int "open Random flagged" 1
        (List.length (List.filter (( = ) "bare-random") (names opened))))

let bare_random_negative () =
  with_root (fun root ->
      check_clean "Prob.Rng draws are clean"
        (lint_one root "lib/a.ml" "let f rng = Prob.Rng.int rng 3\n");
      check_clean "the rng module itself is exempt"
        (lint_one root "lib/prob/rng.ml" "let reseed () = Random.bits ()\n"))

let bare_random_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let x = Random.int 3 (* lint: allow bare-random *)\n"
      in
      match fs with
      | [ ("bare-random", 1, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed bare-random finding")

(* ---------------- print-in-lib ---------------- *)

let print_in_lib_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let f () = print_endline \"hi\"\n\
           let g () = Printf.printf \"%d\" 3\n\
           let h () = Format.printf \"x\"\n"
      in
      check_int "all three printers flagged" 3
        (List.length (List.filter (( = ) "print-in-lib") (names fs))))

let print_in_lib_negative () =
  with_root (fun root ->
      check_clean "stdout printing outside lib/ is fine"
        (lint_one root "bin/a.ml" "let f () = print_endline \"hi\"\n");
      check_clean "formatter-parameterised printers are fine"
        (lint_one root "lib/b.ml"
           "let pp ppf x = Format.fprintf ppf \"%d\" x\n\
            let pp2 ppf () = Format.pp_print_string ppf \"x\"\n"))

let print_in_lib_config_exempt () =
  with_root (fun root ->
      (* Mirrors lib/experiments/.logitlint: the table renderer is the
         one lib module allowed to print. *)
      let config =
        add root "lib/.logitlint" "disable print-in-lib in table.ml\n";
        L.Config.load (Filename.concat root "lib/.logitlint")
      in
      check_clean "config-exempted file is clean"
        (lint_one ~config root "lib/table.ml"
           "let print t = print_string t\n");
      let other =
        lint_one ~config root "lib/other.ml" "let f () = print_newline ()\n"
      in
      check_int "same config still flags other files" 1
        (List.length (List.filter (( = ) "print-in-lib") (names other))))

(* ---------------- marshal-outside-store ---------------- *)

let marshal_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "let dump oc x = Marshal.to_channel oc x []\n\
           let dump2 oc x = output_value oc x\n\
           let load ic = input_value ic\n\
           module M = Marshal\n"
      in
      check_int "Marshal, output_value, input_value and the module alias" 4
        (List.length (List.filter (( = ) "marshal-outside-store") (names fs))))

let marshal_negative () =
  with_root (fun root ->
      check_clean "lib/store/ itself is exempt"
        (lint_one root "lib/store/codec.ml"
           "let roundtrip x = Marshal.from_string (Marshal.to_string x []) 0\n");
      check_clean "ordinary output_string is clean"
        (lint_one root "bin/a.ml"
           "let f oc = output_string oc \"x\"\nlet g () = print_string \"y\"\n"))

let marshal_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "bench/a.ml"
          "let size x = Marshal.total_size x 0 (* lint: allow \
           marshal-outside-store *)\n"
      in
      match fs with
      | [ ("marshal-outside-store", 1, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed marshal finding")

(* ---------------- bench-json-outside-bench ---------------- *)

let bench_json_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "bench/a.ml"
          "let p = \"BENCH_csr.json\"\n\
           let q dir = Filename.concat dir \"BENCH_new.json\"\n"
      in
      check_int "both filename literals flagged" 2
        (List.length
           (List.filter (( = ) "bench-json-outside-bench") (names fs))))

let bench_json_negative () =
  with_root (fun root ->
      check_clean "lib/bench/ itself owns the filenames"
        (lint_one root "lib/bench/sink.ml"
           "let csr_path = \"BENCH_csr.json\"\n");
      check_clean "non-bench json and non-json bench strings are clean"
        (lint_one root "bin/a.ml"
           "let a = \"history.json\"\n\
            let b = \"BENCH_notes.txt\"\n\
            let c = \"see the BENCH files\"\n"))

let bench_json_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "bin/a.ml"
          "let p = \"BENCH_csr.json\" (* lint: allow \
           bench-json-outside-bench *)\n"
      in
      match fs with
      | [ ("bench-json-outside-bench", 1, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed bench-json finding")

(* ---------------- wall-clock ---------------- *)

let wall_clock_positive () =
  with_root (fun root ->
      let fs =
        lint_one root "bench/a.ml"
          "let t0 = Unix.gettimeofday ()\n\
           let t1 = Stdlib.Unix.gettimeofday ()\n"
      in
      check_int "qualified and Stdlib-qualified both flagged" 2
        (List.length (List.filter (( = ) "wall-clock") (names fs))))

let wall_clock_negative () =
  with_root (fun root ->
      check_clean "lib/common/ itself is exempt"
        (lint_one root "lib/common/common.ml"
           "let wall_s () = Unix.gettimeofday ()\n");
      check_clean "other Unix calls are clean"
        (lint_one root "bin/a.ml"
           "let s = Unix.sleepf 0.1\nlet g = gettimeofday\n"))

let wall_clock_suppressed () =
  with_root (fun root ->
      let fs =
        lint_one root "bin/a.ml"
          "let t = Unix.gettimeofday () (* lint: allow wall-clock *)\n"
      in
      match fs with
      | [ ("wall-clock", 1, true) ] -> ()
      | _ -> Alcotest.fail "expected one suppressed wall-clock finding")

(* ---------------- mli-coverage (tree rule, via run) ---------------- *)

let mli_coverage_positive () =
  with_root (fun root ->
      add root "lib/bare.ml" "let x = 1\n";
      add root "lib/covered.ml" "let x = 1\n";
      add root "lib/covered.mli" "val x : int\n";
      add root "bin/main.ml" "let () = ()\n";
      let result = L.run ~root ~dirs:[ "lib"; "bin" ] ~rules:R.all in
      let v = L.violations result in
      check_int "exactly the uncovered lib module is flagged" 1
        (List.length v);
      match v with
      | [ f ] ->
          check_true "rule" (f.rule = "mli-coverage");
          check_true "file" (f.file = "lib/bare.ml")
      | _ -> ())

let mli_coverage_suppressed () =
  with_root (fun root ->
      add root "lib/bare.ml" "(* lint: allow mli-coverage *)\nlet x = 1\n";
      let result = L.run ~root ~dirs:[ "lib" ] ~rules:R.all in
      check_int "suppressed on line 1" 0 (List.length (L.violations result));
      check_int "still reported as suppressed" 1
        (List.length (L.suppressed result)))

(* ---------------- engine plumbing ---------------- *)

let parse_error_reported () =
  with_root (fun root ->
      let fs = lint_one root "lib/bad.ml" "let let let = in in\n" in
      match fs with
      | [ (rule, _, suppressed) ] ->
          check_true "parse-error rule" (rule = L.parse_error_rule);
          check_false "never suppressed" suppressed
      | _ -> Alcotest.fail "expected exactly one parse-error finding")

let config_error_raises () =
  with_root (fun root ->
      add root ".logitlint" "frobnicate the-rule\n";
      match L.Config.load (Filename.concat root ".logitlint") with
      | exception L.Config_error _ -> ()
      | _ -> Alcotest.fail "expected Config_error on a malformed directive")

let subtree_config_inherited () =
  with_root (fun root ->
      add root "lib/.logitlint" "disable exn-policy\n";
      add root "lib/deep/nested.ml" "let f () = failwith \"ok here\"\n";
      add root "lib/deep/nested.mli" "val f : unit -> 'a\n";
      let result = L.run ~root ~dirs:[ "lib" ] ~rules:R.all in
      check_int "directive applies to the whole subtree" 0
        (List.length (L.violations result)))

let suppression_names_multiple_rules () =
  with_root (fun root ->
      let fs =
        lint_one root "lib/a.ml"
          "(* lint: allow exn-policy float-equality *)\n\
           let f x = if x = 0. then failwith \"both suppressed\" else ()\n"
      in
      check_int "both findings present" 2 (List.length fs);
      List.iter (fun (_, _, s) -> check_true "suppressed" s) fs)

let whole_repo_is_clean () =
  (* The acceptance gate, as a test: the shipped tree carries zero
     unsuppressed violations. Dune runs tests inside _build, where
     dotfiles like .logitlint are not copied, so walk the real source
     tree via DUNE_SOURCEROOT (set by dune for every test action). *)
  match Sys.getenv_opt "DUNE_SOURCEROOT" with
  | None -> ()
  | Some root when
      not (Sys.file_exists (Filename.concat root "lib/experiments/.logitlint"))
    ->
      Alcotest.fail "source root is missing lib/experiments/.logitlint"
  | Some root ->
      let result =
        L.run ~root ~dirs:[ "lib"; "bin"; "bench"; "test" ] ~rules:R.all
      in
      List.iter
        (fun (f : L.finding) ->
          Alcotest.failf "unsuppressed violation: %s:%d [%s] %s" f.file f.line
            f.rule f.message)
        (L.violations result)

let suites =
  [
    ( "lint.float-equality",
      [
        test "positive" float_equality_positive;
        test "negative" float_equality_negative;
        test "suppressed" float_equality_suppressed;
      ] );
    ( "lint.exn-policy",
      [
        test "positive" exn_policy_positive;
        test "negative" exn_policy_negative;
        test "suppressed" exn_policy_suppressed;
      ] );
    ( "lint.bare-random",
      [
        test "positive" bare_random_positive;
        test "negative" bare_random_negative;
        test "suppressed" bare_random_suppressed;
      ] );
    ( "lint.print-in-lib",
      [
        test "positive" print_in_lib_positive;
        test "negative" print_in_lib_negative;
        test "config exemption" print_in_lib_config_exempt;
      ] );
    ( "lint.marshal-outside-store",
      [
        test "positive" marshal_positive;
        test "negative" marshal_negative;
        test "suppressed" marshal_suppressed;
      ] );
    ( "lint.bench-json-outside-bench",
      [
        test "positive" bench_json_positive;
        test "negative" bench_json_negative;
        test "suppressed" bench_json_suppressed;
      ] );
    ( "lint.wall-clock",
      [
        test "positive" wall_clock_positive;
        test "negative" wall_clock_negative;
        test "suppressed" wall_clock_suppressed;
      ] );
    ( "lint.mli-coverage",
      [
        test "positive" mli_coverage_positive;
        test "suppressed" mli_coverage_suppressed;
      ] );
    ( "lint.engine",
      [
        test "parse errors become findings" parse_error_reported;
        test "malformed config raises" config_error_raises;
        test "config inherited down the subtree" subtree_config_inherited;
        test "one comment can allow several rules" suppression_names_multiple_rules;
        test "whole repo is clean" whole_repo_is_clean;
      ] );
  ]
