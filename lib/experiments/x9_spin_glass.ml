(** X9 (extension) — spin glasses: heterogeneous graphical games.

    Section 5 studies homogeneous coordination on a graph; the
    polymatrix substrate lets every edge carry its own ±J coupling.
    On a clique, the ferromagnet's barrier is Θ(n²δ) (Thm 5.5's worst
    case) while random ±J instances are frustrated: their ground
    states need not be consensus profiles, the barrier ζ collapses,
    and the logit dynamics mixes orders of magnitude faster at the
    same β — the physics intuition ("frustration destroys the
    energy gap") expressed through the paper's own quantities ζ and
    t_mix. *)

let analyse table name game_desc ~couplings ~beta =
  let game = Games.Polymatrix.to_game game_desc in
  let space = Games.Polymatrix.space game_desc in
  let phi idx = Games.Polymatrix.potential game_desc idx in
  let zeta = Logit.Barrier.zeta space phi in
  let frustrated =
    match couplings with
    | Some js -> Table.cell_int (Games.Polymatrix.frustrated_triangles game_desc ~couplings:js)
    | None -> "0"
  in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary space phi ~beta in
  (* The ferromagnetic baseline mixes in ~e^{beta*Theta(n^2)} steps and
     pi_min underflows the eigendecomposition, so exact repeated
     squaring is the right engine for every instance here. *)
  let tmix =
    Markov.Mixing.mixing_time_squaring chain pi
      ~starts:(List.init (Games.Strategy_space.size space) Fun.id)
  in
  Table.add_row table
    [
      name;
      frustrated;
      Table.cell_float zeta;
      Table.cell_float beta;
      Table.cell_opt_int tmix;
      Table.cell_int (List.length (Games.Potential.global_minima space phi));
    ]

let run ~quick =
  let n = if quick then 6 else 7 in
  let beta = if quick then 1.0 else 1.2 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "X9: clique ferromagnet vs random +-J spin glasses, n=%d, beta=%g" n
           beta)
      [
        ("instance", Table.Left);
        ("frustrated triangles", Table.Right);
        ("zeta", Table.Right);
        ("beta", Table.Right);
        ("t_mix", Table.Right);
        ("#ground states", Table.Right);
      ]
  in
  let graph = Graphs.Generators.clique n in
  analyse table "ferromagnet (+J)" (Games.Polymatrix.ferromagnet graph ~coupling:1.0)
    ~couplings:None ~beta;
  let seeds = if quick then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
  List.iter
    (fun seed ->
      let rng = Prob.Rng.create (1000 + seed) in
      let glass, js = Games.Polymatrix.spin_glass rng graph ~coupling:1.0 in
      analyse table
        (Printf.sprintf "glass seed %d" seed)
        glass ~couplings:(Some js) ~beta)
    seeds;
  Table.add_note table
    "same graph, same |J|, same beta: frustration (negative triangle \
     products) collapses zeta and with it the exponential slowdown.";
  [ table ]
