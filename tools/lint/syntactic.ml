(* The syntactic pass: file discovery, Parsetree parsing and the
   single-walk rule engine. Every AST rule contributes a set of hooks
   (on_expr / on_module_expr / on_typ); the engine instantiates the
   hooks of every active rule once per file and drives them all from
   ONE [Ast_iterator] traversal — with a dozen rules, the old
   walk-per-rule engine re-traversed each AST a dozen times, and the
   walks themselves (not parsing) dominated lint wall time. *)

type kind = Ml | Mli

type source_ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

(* A rule's per-file visitor: invoked from the shared traversal. *)
type hooks = {
  on_expr : Parsetree.expression -> unit;
  on_module_expr : Parsetree.module_expr -> unit;
  on_typ : Parsetree.core_type -> unit;
}

let nothing _ = ()
let no_hooks = { on_expr = nothing; on_module_expr = nothing; on_typ = nothing }

type check =
  | Ast_rule of (report:Lint.reporter -> hooks)
  | Tree_rule of (files:string list -> (string * string) list)

type rule = {
  name : string;
  doc : string;
  applies : string -> bool;
  check : check;
}

(* ------------------------------------------------------------------ *)
(* Parsing. Pparse reads the file itself, so locations carry the path
   we hand it. Parse and lex errors become "parse-error" findings —
   never suppressed: the linter cannot vouch for code it cannot read. *)

let parse_error_rule = "parse-error"

let parse_ast kind path =
  match kind with
  | Ml -> Structure (Pparse.parse_implementation ~tool_name:"logitlint" path)
  | Mli -> Signature (Pparse.parse_interface ~tool_name:"logitlint" path)

let parse_error_finding relpath exn =
  let line, col =
    match exn with
    | Syntaxerr.Error e ->
        let loc = Syntaxerr.location_of_error e in
        (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    | Lexer.Error (_, loc) ->
        (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    | _ -> (1, 0)
  in
  {
    Lint.rule = parse_error_rule;
    file = relpath;
    line;
    col;
    message = Printexc.to_string exn;
    suppressed = false;
  }

(* One traversal, every hook: the iterator calls each rule's callback
   at each node before descending. *)
let walk_once hooks ast =
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          List.iter (fun h -> h.on_expr e) hooks;
          default_iterator.expr it e);
      module_expr =
        (fun it m ->
          List.iter (fun h -> h.on_module_expr m) hooks;
          default_iterator.module_expr it m);
      typ =
        (fun it t ->
          List.iter (fun h -> h.on_typ t) hooks;
          default_iterator.typ it t);
    }
  in
  match ast with
  | Structure s -> it.structure it s
  | Signature s -> it.signature it s

(* ------------------------------------------------------------------ *)
(* Single-file driver (the fixture tests call this directly). *)

let kind_of_path path = if Filename.check_suffix path ".mli" then Mli else Ml

let lint_file ?(config = Lint.Config.empty) ~rules ~root ~relpath () =
  let abs = Filename.concat root relpath in
  let active =
    List.filter
      (fun r ->
        (match r.check with Ast_rule _ -> true | Tree_rule _ -> false)
        && r.applies relpath
        && not (Lint.Config.disables config ~rule:r.name ~path:relpath))
      rules
  in
  if active = [] then []
  else
    match parse_ast (kind_of_path relpath) abs with
    | exception ((Sys_error _ | Lint.Config_error _) as e) -> raise e
    | exception exn -> [ parse_error_finding relpath exn ]
    | ast ->
        let lines = Lint.read_lines abs in
        let out = ref [] in
        let hooks =
          List.filter_map
            (fun r ->
              match r.check with
              | Ast_rule f ->
                  Some
                    (f ~report:(Lint.reporter ~rule:r.name ~relpath ~lines ~into:out))
              | Tree_rule _ -> None)
            active
        in
        walk_once hooks ast;
        List.rev !out

(* ------------------------------------------------------------------ *)
(* Tree walk and the pass over a file list. *)

let rec walk_dir root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  let entries = Sys.readdir abs in
  Array.sort compare entries;
  Array.fold_left
    (fun acc name ->
      if name = "" || name.[0] = '.' || name.[0] = '_' then acc
      else
        let rel' = if rel = "" then name else rel ^ "/" ^ name in
        let abs' = Filename.concat abs name in
        if Sys.is_directory abs' then walk_dir root rel' acc
        else if
          Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
        then rel' :: acc
        else acc)
    acc entries

let discover ~root ~dirs =
  let dirs = List.map (fun d -> if d = "." then "" else d) dirs in
  List.concat_map
    (fun d ->
      let abs = if d = "" then root else Filename.concat root d in
      if Sys.file_exists abs && Sys.is_directory abs then walk_dir root d []
      else [])
    dirs
  |> List.sort_uniq compare

let run_pass ~root ~files ~config_for ~rules =
  let per_file =
    List.concat_map
      (fun f -> lint_file ~config:(config_for f) ~rules ~root ~relpath:f ())
      files
  in
  let tree =
    List.concat_map
      (fun r ->
        match r.check with
        | Ast_rule _ -> []
        | Tree_rule g ->
            g ~files
            |> List.filter_map (fun (f, message) ->
                   if not (r.applies f) then None
                   else if
                     Lint.Config.disables (config_for f) ~rule:r.name ~path:f
                   then None
                   else
                     let abs = Filename.concat root f in
                     let suppressed =
                       Sys.file_exists abs
                       && Lint.suppressed_at (Lint.read_lines abs) ~rule:r.name
                            ~line:1
                     in
                     Some
                       {
                         Lint.rule = r.name;
                         file = f;
                         line = 1;
                         col = 0;
                         message;
                         suppressed;
                       }))
      rules
  in
  per_file @ tree
