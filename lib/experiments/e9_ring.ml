(** E9 — Theorems 5.6 / 5.7: graphical coordination on the ring with
    no risk-dominant strategy mixes in Θ-ish(e^{2δβ}) · O(n log n):
    exponential only in β (with the fixed exponent 2δ, not a growing
    one), polynomial in n — in sharp contrast with the clique.

    Part A: β sweep at fixed n; fitted β-slope of log t_mix → 2δ,
    bracketed by the Thm 5.7 lower and Thm 5.6 upper bounds.
    Part B: n sweep at fixed β; t_mix/(n log n) stays bounded.
    Part C: ring vs clique head-to-head at equal n, δ, β. *)

open Games

let ring_game n delta =
  let desc =
    Graphical.create (Graphs.Generators.ring n)
      (Coordination.of_deltas ~delta0:delta ~delta1:delta)
  in
  (desc, Graphical.to_game desc)

let ring_tmix ?(max_steps = 2_000_000) desc game beta =
  let space = Game.space game in
  let phi = Graphical.potential desc in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary space phi ~beta in
  Markov.Mixing.mixing_time ~max_steps chain pi
    ~starts:[ Graphical.all_zero desc; Graphical.all_one desc ]

let part_a ~quick =
  let n = if quick then 6 else 8 in
  let delta = 1.0 in
  let table =
    Table.create
      ~title:(Printf.sprintf "E9a (Thm 5.6/5.7): ring beta sweep, n=%d, delta=%.1f" n delta)
      [
        ("beta", Table.Right);
        ("t_mix", Table.Right);
        ("Thm 5.7 lower", Table.Right);
        ("Thm 5.6 upper", Table.Right);
        ("log t_mix", Table.Right);
        ("2*delta*beta", Table.Right);
      ]
  in
  let desc, game = ring_game n delta in
  let betas = if quick then [ 0.5; 1.5 ] else [ 0.25; 0.5; 1.0; 1.5; 2.0; 2.5 ] in
  let results = Sweep.map (fun beta -> (beta, ring_tmix desc game beta)) betas in
  let logs = ref [] in
  List.iter
    (fun (beta, tmix) ->
      (match tmix with
      | Some t when t > 0 -> logs := (beta, log (float_of_int t)) :: !logs
      | _ -> ());
      Table.add_row table
        [
          Table.cell_float beta;
          Table.cell_opt_int tmix;
          Table.cell_float (Logit.Bounds.thm57_tmix_lower ~beta ~delta ());
          Table.cell_float (Logit.Bounds.thm56_tmix_upper ~n ~beta ~delta ());
          (match tmix with
          | Some t when t > 0 -> Table.cell_log (log (float_of_int t))
          | _ -> "-");
          Table.cell_log (2. *. delta *. beta);
        ])
    results;
  (match !logs with
  | _ :: _ :: _ ->
      let points = List.rev !logs in
      let half = List.filteri (fun i _ -> (2 * i) + 2 >= List.length points) points in
      let xs = Array.of_list (List.map fst half) in
      let ys = Array.of_list (List.map snd half) in
      let slope, _ = Prob.Stats.linear_fit xs ys in
      Table.add_note table
        (Printf.sprintf "large-beta fitted slope = %.3f vs 2*delta = %.3f" slope
           (2. *. delta))
  | _ -> ());
  table

let part_b ~quick =
  let delta = 1.0 and beta = 1.0 in
  let table =
    Table.create
      ~title:(Printf.sprintf "E9b (Thm 5.6): ring n sweep, beta=%.1f" beta)
      [
        ("n", Table.Right);
        ("t_mix", Table.Right);
        ("n ln n", Table.Right);
        ("t_mix/(n ln n)", Table.Right);
      ]
  in
  let sizes = if quick then [ 4; 6 ] else [ 4; 6; 8; 10; 12 ] in
  let results =
    Sweep.map
      (fun n ->
        let desc, game = ring_game n delta in
        (n, ring_tmix desc game beta))
      sizes
  in
  List.iter
    (fun (n, tmix) ->
      let nlogn = float_of_int n *. log (float_of_int n) in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_opt_int tmix;
          Table.cell_float nlogn;
          (match tmix with
          | Some t -> Table.cell_float (float_of_int t /. nlogn)
          | None -> "-");
        ])
    results;
  table

let part_c ~quick =
  let delta = 1.0 in
  let n = if quick then 6 else 8 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "E9c: ring vs clique separation, n=%d, delta=%.1f" n delta)
      [
        ("beta", Table.Right);
        ("t_mix ring", Table.Right);
        ("t_mix clique (lumped)", Table.Right);
        ("clique/ring", Table.Right);
      ]
  in
  let desc, game = ring_game n delta in
  let betas = if quick then [ 1.0 ] else [ 0.5; 1.0; 1.5; 2.0 ] in
  let results =
    Sweep.map
      (fun beta ->
        let ring = ring_tmix desc game beta in
        let clique_bd = Logit.Lumping.clique ~n ~delta0:delta ~delta1:delta ~beta in
        let clique = Markov.Birth_death.mixing_time_spectral clique_bd in
        (beta, ring, clique))
      betas
  in
  List.iter
    (fun (beta, ring, clique) ->
      Table.add_row table
        [
          Table.cell_float beta;
          Table.cell_opt_int ring;
          Table.cell_opt_int clique;
          (match (ring, clique) with
          | Some r, Some c when r > 0 ->
              Table.cell_float (float_of_int c /. float_of_int r)
          | _ -> "-");
        ])
    results;
  Table.add_note table
    "same local delta, same n: the clique's barrier is Theta(n^2 delta) \
     against the ring's 2*delta, so the gap explodes with beta.";
  table

let run ~quick = [ part_a ~quick; part_b ~quick; part_c ~quick ]
