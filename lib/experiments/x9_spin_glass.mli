(** X9 — Ising spin glasses as heterogeneous graphical games: random
    frustration lowers the barrier ζ and the mixing time relative to
    the ferromagnetic instance on the same graph.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
