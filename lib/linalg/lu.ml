exception Singular

type factorization = { lu : Mat.t; perm : int array; sign : int }

let pivot_tolerance = 1e-300

let factorize m =
  if not (Mat.is_square m) then invalid_arg "Lu.factorize: non-square matrix";
  let n = fst (Mat.dims m) in
  let lu = Mat.copy m in
  let perm = Array.init n Fun.id in
  let sign = ref 1 in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest entry of column k to the
       diagonal to keep the elimination numerically stable. *)
    let pivot_row = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (Mat.get lu i k) > Float.abs (Mat.get lu !pivot_row k) then
        pivot_row := i
    done;
    if !pivot_row <> k then begin
      for j = 0 to n - 1 do
        let t = Mat.get lu k j in
        Mat.set lu k j (Mat.get lu !pivot_row j);
        Mat.set lu !pivot_row j t
      done;
      let t = perm.(k) in
      perm.(k) <- perm.(!pivot_row);
      perm.(!pivot_row) <- t;
      sign := - !sign
    end;
    let pivot = Mat.get lu k k in
    if Float.abs pivot < pivot_tolerance then raise Singular;
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      for j = k + 1 to n - 1 do
        Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
      done
    done
  done;
  { lu; perm; sign = !sign }

let solve_factorized { lu; perm; sign = _ } b =
  let n = fst (Mat.dims lu) in
  if Array.length b <> n then invalid_arg "Lu.solve_factorized: dimension mismatch";
  let x = Array.init n (fun i -> b.(perm.(i))) in
  (* Forward substitution with the unit lower factor. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with the upper factor. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (Mat.get lu i j *. x.(j))
    done;
    x.(i) <- !acc /. Mat.get lu i i
  done;
  x

let solve a b = solve_factorized (factorize a) b

let determinant a =
  match factorize a with
  | exception Singular -> 0.
  | { lu; sign; _ } ->
      let n = fst (Mat.dims lu) in
      let det = ref (float_of_int sign) in
      for i = 0 to n - 1 do
        det := !det *. Mat.get lu i i
      done;
      !det

let inverse a =
  let f = factorize a in
  let n = fst (Mat.dims a) in
  let inv = Mat.create n n 0. in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    let x = solve_factorized f e in
    for i = 0 to n - 1 do
      Mat.set inv i j x.(i)
    done
  done;
  inv
