type t = {
  m : int;
  beta : float;
  phi : int -> int -> float;
  phi_min : float;
  values : float array;  (** eigenvalues of the scaled matrix, desc *)
  vectors : Linalg.Mat.t;
  scaled : Linalg.Mat.t;  (** T̃(a,b) = e^{-β(φ(a,b) - φ_min)} *)
}

let create ~strategies ~beta phi =
  if strategies < 1 then invalid_arg "Transfer_matrix.create: need strategies";
  if beta < 0. then invalid_arg "Transfer_matrix.create: beta >= 0";
  for a = 0 to strategies - 1 do
    for b = a + 1 to strategies - 1 do
      if Float.abs (phi a b -. phi b a) > 1e-12 then
        invalid_arg "Transfer_matrix.create: edge potential must be symmetric"
    done
  done;
  let phi_min = ref (phi 0 0) in
  for a = 0 to strategies - 1 do
    for b = 0 to strategies - 1 do
      if phi a b < !phi_min then phi_min := phi a b
    done
  done;
  let phi_min = !phi_min in
  let scaled =
    Linalg.Mat.init strategies strategies (fun a b ->
        exp (-.beta *. (phi a b -. phi_min)))
  in
  let values, vectors = Linalg.Eigen.jacobi scaled in
  { m = strategies; beta; phi; phi_min; values; vectors; scaled }

let check_ring n = if n < 3 then invalid_arg "Transfer_matrix: ring needs n >= 3"

(* S_p = Σ_k (λ_k/λ₁)^p; all entries of T̃ are positive, so λ₁ is the
   simple Perron root and the ratios have modulus < 1. *)
let ratio_power_sum t p =
  let top = t.values.(0) in
  let acc = ref 0. in
  Array.iter
    (fun lambda ->
      let r = lambda /. top in
      let magnitude = exp (float_of_int p *. log (Float.abs r)) in
      let signed =
        if r < 0. && p land 1 = 1 then -.magnitude
        else if r < 0. then magnitude
        else magnitude
      in
      if Float.abs r > 0. then acc := !acc +. signed)
    t.values;
  !acc

let log_partition t ~n =
  check_ring n;
  (* Z = Σ λ_kⁿ on the scaled matrix, un-scaled by e^{-βφ_min} per edge. *)
  (-.t.beta *. t.phi_min *. float_of_int n)
  +. (float_of_int n *. log t.values.(0))
  +. log (ratio_power_sum t n)

let pair_marginal t ~n =
  check_ring n;
  let top = t.values.(0) in
  (* G(b, a) = Σ_k (λ_k/λ₁)^{n-1} U(b,k) U(a,k). *)
  let g =
    Linalg.Mat.init t.m t.m (fun b a ->
        let acc = ref 0. in
        Array.iteri
          (fun k lambda ->
            let r = lambda /. top in
            let magnitude = exp (float_of_int (n - 1) *. log (Float.abs r)) in
            let signed =
              if r < 0. && (n - 1) land 1 = 1 then -.magnitude else magnitude
            in
            acc :=
              !acc
              +. (signed *. Linalg.Mat.get t.vectors b k *. Linalg.Mat.get t.vectors a k))
          t.values;
        !acc)
  in
  let s_n = ratio_power_sum t n in
  let marginal =
    Linalg.Mat.init t.m t.m (fun a b ->
        Linalg.Mat.get t.scaled a b *. Linalg.Mat.get g b a /. (top *. s_n))
  in
  (* Round-off guard: clamp and renormalise to a distribution. *)
  let total = ref 0. in
  for a = 0 to t.m - 1 do
    for b = 0 to t.m - 1 do
      let v = Float.max 0. (Linalg.Mat.get marginal a b) in
      Linalg.Mat.set marginal a b v;
      total := !total +. v
    done
  done;
  Linalg.Mat.scale (1. /. !total) marginal

let expected_edge_potential t ~n =
  let marginal = pair_marginal t ~n in
  let acc = ref 0. in
  for a = 0 to t.m - 1 do
    for b = 0 to t.m - 1 do
      acc := !acc +. (Linalg.Mat.get marginal a b *. t.phi a b)
    done
  done;
  !acc

let site_marginal t ~n =
  let marginal = pair_marginal t ~n in
  Array.init t.m (fun a ->
      let acc = ref 0. in
      for b = 0 to t.m - 1 do
        acc := !acc +. Linalg.Mat.get marginal a b
      done;
      !acc)

let correlation_length t =
  if t.m < 2 then infinity
  else begin
    let top = t.values.(0) in
    let second =
      Array.fold_left
        (fun acc lambda ->
          if Float.abs (lambda -. top) > 1e-15 then Float.max acc (Float.abs lambda)
          else acc)
        0.
        t.values
    in
    if second <= 0. then infinity
    else begin
      let ratio = second /. top in
      if ratio >= 1. then infinity else -1. /. log ratio
    end
  end
