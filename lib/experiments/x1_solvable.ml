(** X1 (extension) — the paper's Section 4 closing remark: the
    β-independent mixing-time bound extends beyond dominant-strategy
    games to max-solvable games "albeit with a much larger function".

    We take dominance-solvable games (iterated strict dominance, the
    fully-specified classical core of that class — DESIGN.md records
    the substitution), including one with {e no} dominant strategies,
    and sweep β: the mixing time of each saturates, while a
    two-equilibrium coordination game measured alongside keeps
    growing. *)

open Games

let mixing_at game beta =
  let chain = Logit.Logit_dynamics.chain game ~beta in
  match Logit.Gibbs.of_game game ~beta with
  | Some pi ->
      (* Reversible: binary-searched spectral mixing handles the
         exponentially slow coordination control instantly. *)
      Markov.Mixing.mixing_time_spectral chain pi
        ~starts:(List.init (Games.Game.size game) Fun.id)
  | None ->
      let pi = Markov.Stationary.by_solve chain in
      Markov.Mixing.mixing_time_all ~max_steps:200_000 chain pi

let run ~quick =
  let table =
    Table.create
      ~title:"X1 (Sec. 4 remark): dominance-solvable games also plateau"
      [
        ("game", Table.Left);
        ("solvable", Table.Right);
        ("dominant", Table.Right);
        ("beta", Table.Right);
        ("t_mix", Table.Right);
      ]
  in
  let games =
    [
      Dominant.prisoners_dilemma ();
      Zoo.iterated_dominance_game;
      Zoo.beauty_contest ~players:2 ~levels:(if quick then 3 else 4);
      (* contrast: not dominance-solvable, keeps growing *)
      Coordination.to_game (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0);
    ]
  in
  let betas = if quick then [ 1.0; 8.0 ] else [ 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ] in
  List.iter
    (fun game ->
      let solvable = Solvable.is_dominance_solvable game in
      let dominant = Game.dominant_profile game <> None in
      List.iter
        (fun beta ->
          Table.add_row table
            [
              Game.name game;
              Table.cell_bool solvable;
              Table.cell_bool dominant;
              Table.cell_float beta;
              Table.cell_opt_int (mixing_at game beta);
            ])
        betas)
    games;
  Table.add_note table
    "solvable games saturate in beta; the coordination game (solvable=no) \
     is the growing control.";
  [ table ]
