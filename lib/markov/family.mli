(** β-families: one shared index structure, per-β probability planes.

    Every quantity the paper bounds is studied as a function of β, so
    the repo's workloads are overwhelmingly β-grids over one game. The
    sparsity structure of the logit chain — which transitions exist —
    is decided by β-independent payoff comparisons, so across a grid
    the CSR/CSC index arrays are (almost always) identical and only the
    probability values differ. A family reifies that: [v] rewrites the
    planes through {!Chain.with_structure_of} so they physically share
    plane 0's index arrays whenever the structures agree, and
    {!evolve_many_into} advances one panel per plane in a single fused
    traversal of the shared structure
    ({!Chain.evolve_many_shared_into}).

    Sharing is checked, never assumed: a plane whose structure differs
    (softmax tails can underflow to exact zero at extreme β and drop
    entries) keeps its own arrays, {!shared_structure} is [false], and
    the panel operation silently falls back to per-plane
    {!Chain.evolve_many_into} — bit-identical either way, since the
    fused kernel's per-cell gather is exactly the per-plane one's.

    Each plane is a full first-class {!Chain.t} (built by
    [Logit.Logit_dynamics.chain_family] through the same
    [of_function] / [normalized_row] pipeline as an independent
    [chain ~beta] build, hence bit-identical to it), so everything that
    consumes a chain or a {!Kernel} works on a family member
    unchanged. *)

type t

(** [v ~betas ~planes] assembles a family from per-β chains:
    [planes.(i)] is the chain at inverse temperature [betas.(i)]. The
    arrays must be non-empty, of equal length, and the planes must
    share a state space ([Invalid_argument] otherwise). Planes whose
    sparsity structure equals plane 0's are rewritten to physically
    share its index arrays ({!Chain.with_structure_of} — observables
    unchanged, bit-for-bit). *)
val v : betas:float array -> planes:Chain.t array -> t

(** [num_planes t] is the number of β grid points. *)
val num_planes : t -> int

(** [size t] is the number of states (shared by every plane). *)
val size : t -> int

(** [betas t] is a copy of the β grid, in plane order. *)
val betas : t -> float array

(** [beta t i] is the inverse temperature of plane [i].
    Raises [Invalid_argument] if [i] is out of range. *)
val beta : t -> int -> float

(** [plane t i] is the chain at [beta t i] — a full {!Chain.t},
    bit-identical to an independent build at that β.
    Raises [Invalid_argument] if [i] is out of range. *)
val plane : t -> int -> Chain.t

(** [shared_structure t] is true iff every plane physically shares
    plane 0's index arrays — the precondition for the fused panel
    kernel (checked at build time, not assumed). *)
val shared_structure : t -> bool

(** [kernel t i] is plane [i] seen through the {!Kernel} evolution
    interface — [tv_curve_kernel] / [mixing_time_kernel] /
    [panel_sweep_kernel] / [by_power_kernel] consume it unchanged. *)
val kernel : t -> int -> Kernel.t

(** [find t ~beta] is the index of the plane whose β equals [beta]
    bit-for-bit ([Int64.bits_of_float] comparison, matching the store
    keys' hex-float identity), or [None]. *)
val find : t -> beta:float -> int option

(** [evolve_many_into ?pool t ~k ~src ~dst] advances one
    [k]-distribution panel per plane: fused over the shared structure
    ({!Chain.evolve_many_shared_into}) when {!shared_structure},
    per-plane {!Chain.evolve_many_into} otherwise — bit-identical
    results either way, for any pool size. [src] and [dst] must hold
    one panel of dimension [k * size t] per plane, destinations
    pairwise distinct and distinct from every source
    ([Invalid_argument] otherwise). *)
val evolve_many_into :
  ?pool:Exec.Pool.t ->
  t ->
  k:int ->
  src:Chain.panel array ->
  dst:Chain.panel array ->
  unit
