(* CSR (compressed sparse row) chain storage.

   Row [i] occupies the index range [row_start.(i), row_start.(i+1))
   of the flat [cols]/[probs] arrays; [cols] is strictly increasing
   within each row (guaranteed by [normalize_row], which sums
   duplicates and drops zeros). [cum] holds the per-row running prefix
   sums of [probs] in the same left-to-right order the old linear-scan
   sampler accumulated them, so the binary-search sampler picks exactly
   the same entry for the same uniform draw. *)

(* Transposed (CSC) view, derived lazily from the CSR arrays the first
   time a pull-mode kernel needs it. Column [j] owns the index range
   [t_col_start.(j), t_col_start.(j+1)) of [t_cols]/[t_probs]:
   [t_cols] lists the *source* states i with P(i,j) > 0 in strictly
   increasing order (the transpose visits CSR rows in ascending i, and
   each row holds at most one entry per column) and [t_probs] the
   matching probabilities, bit-for-bit. Derived data only: never
   serialised — [Chain_codec] frames and recipe keys are computed from
   the CSR arrays alone and stay byte-stable. *)
type csc = {
  t_col_start : int array;
  t_cols : int array;
  t_probs : float array;
}

type t = {
  size : int;
  row_start : int array;
  cols : int array;
  probs : float array;
  cum : float array;
  csc : csc option Atomic.t;
}

let row_sum_tolerance = 1e-9

let normalize_row i entries =
  (* Sum duplicates, validate, and renormalise the row to exact mass 1. *)
  let table = Hashtbl.create (Array.length entries) in
  Array.iter
    (fun (j, p) ->
      if p < 0. || Float.is_nan p then
        invalid_arg (Printf.sprintf "Chain: negative probability in row %d" i);
      if p > 0. then
        Hashtbl.replace table j (p +. Option.value ~default:0. (Hashtbl.find_opt table j)))
    entries;
  let total = Hashtbl.fold (fun _ p acc -> acc +. p) table 0. in
  if Float.abs (total -. 1.) > row_sum_tolerance then
    invalid_arg (Printf.sprintf "Chain: row %d sums to %.12g, expected 1" i total);
  let out = Hashtbl.fold (fun j p acc -> (j, p /. total) :: acc) table [] in
  let out = Array.of_list out in
  Array.sort (fun (a, _) (b, _) -> compare a b) out;
  out

(* The public single-row entry point: exactly the validation +
   normalisation pipeline [of_rows] applies, so external row
   consumers (the out-of-core segment builder) produce probabilities
   bit-identical to an in-RAM chain built from the same generator. *)
let normalized_row ~size i entries =
  if size <= 0 then invalid_arg "Chain.normalized_row: size must be positive";
  Array.iter
    (fun (j, _) ->
      if j < 0 || j >= size then
        invalid_arg (Printf.sprintf "Chain: column %d out of range in row %d" j i))
    entries;
  normalize_row i entries

(* Pack validated per-row tuple arrays into the flat CSR arrays. *)
let pack size checked =
  let nnz = Array.fold_left (fun acc r -> acc + Array.length r) 0 checked in
  let row_start = Array.make (size + 1) 0 in
  let cols = Array.make nnz 0 in
  let probs = Array.make nnz 0. in
  let cum = Array.make nnz 0. in
  let k = ref 0 in
  for i = 0 to size - 1 do
    row_start.(i) <- !k;
    let acc = ref 0. in
    Array.iter
      (fun (j, p) ->
        cols.(!k) <- j;
        probs.(!k) <- p;
        acc := !acc +. p;
        cum.(!k) <- !acc;
        incr k)
      checked.(i)
  done;
  row_start.(size) <- !k;
  { size; row_start; cols; probs; cum; csc = Atomic.make None }

let of_rows ?pool rows =
  let size = Array.length rows in
  if size = 0 then invalid_arg "Chain.of_rows: empty chain";
  let check_row i entries = normalized_row ~size i entries in
  (* Cutover cost: normalising a row is a hash insert + fold + sort per
     entry — call it 64 work units each — so tiny chains build serially
     while logit-sized ones still fan out. *)
  let entries = Array.fold_left (fun acc r -> acc + Array.length r) 0 rows in
  let cost = 64 * (1 + (entries / size)) in
  let checked = Exec.Pool.init_opt ~cost pool ~n:size (fun i -> check_row i rows.(i)) in
  pack size checked

let of_function ?pool n row =
  (* [row] is caller code — for logit chains a full transition-row
     build, microseconds each — so assume macro-task weight rather than
     serialising on the unknowable. *)
  let rows = Exec.Pool.init_opt ~cost:1024 pool ~n (fun i -> Array.of_list (row i)) in
  of_rows ?pool rows

let of_dense m =
  if not (Linalg.Mat.is_square m) then invalid_arg "Chain.of_dense: non-square";
  let n = fst (Linalg.Mat.dims m) in
  of_rows
    (Array.init n (fun i ->
         let entries = ref [] in
         for j = n - 1 downto 0 do
           let p = Linalg.Mat.get m i j in
           (* lint: allow float-equality — exactly-zero entries are structurally absent *)
           if p <> 0. then entries := (j, p) :: !entries
         done;
         Array.of_list !entries))

let to_csr t = (Array.copy t.row_start, Array.copy t.cols, Array.copy t.probs)

let of_csr ~row_start ~cols ~probs =
  let size = Array.length row_start - 1 in
  if size < 1 then invalid_arg "Chain.of_csr: empty chain";
  let nnz = Array.length cols in
  if Array.length probs <> nnz then
    invalid_arg "Chain.of_csr: cols/probs length mismatch";
  if row_start.(0) <> 0 || row_start.(size) <> nnz then
    invalid_arg "Chain.of_csr: row offsets do not span the arrays";
  let row_start = Array.copy row_start in
  let cols = Array.copy cols in
  let probs = Array.copy probs in
  (* [cum] is derived data: recompute it with exactly the accumulation
     order of [pack], so a deserialised chain samples bit-identically
     to the chain that was serialised. *)
  let cum = Array.make nnz 0. in
  for i = 0 to size - 1 do
    let lo = row_start.(i) and hi = row_start.(i + 1) in
    if hi <= lo then
      invalid_arg (Printf.sprintf "Chain.of_csr: empty or negative row %d" i);
    let acc = ref 0. in
    for k = lo to hi - 1 do
      let j = cols.(k) in
      if j < 0 || j >= size then
        invalid_arg (Printf.sprintf "Chain.of_csr: column %d out of range in row %d" j i);
      if k > lo && cols.(k - 1) >= j then
        invalid_arg
          (Printf.sprintf "Chain.of_csr: columns not strictly increasing in row %d" i);
      let p = probs.(k) in
      (* [not (p > 0.)] also rejects NaN. *)
      if not (p > 0.) || p > 1. then
        invalid_arg
          (Printf.sprintf "Chain.of_csr: probability %.12g out of (0, 1] in row %d" p i);
      acc := !acc +. p;
      cum.(k) <- !acc
    done;
    if Float.abs (!acc -. 1.) > 1e-6 then
      invalid_arg (Printf.sprintf "Chain.of_csr: row %d sums to %.12g" i !acc)
  done;
  { size; row_start; cols; probs; cum; csc = Atomic.make None }

let size t = t.size
let nnz t = t.row_start.(t.size)
let degree t i = t.row_start.(i + 1) - t.row_start.(i)

let iter_row t i f =
  for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
    f t.cols.(k) t.probs.(k)
  done

let row t i =
  let lo = t.row_start.(i) in
  Array.init (degree t i) (fun k -> (t.cols.(lo + k), t.probs.(lo + k)))

let row_list t i = Array.to_list (row t i)

let prob t i j =
  (* Binary search over the strictly increasing column slice of row i. *)
  let lo = ref t.row_start.(i) and hi = ref (t.row_start.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.cols.(mid) in
    if c = j then begin
      result := t.probs.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

(* Counting transpose of the CSR arrays. Rows are visited in ascending
   i and entries within a row in ascending k, so the per-column source
   lists come out strictly increasing — the ordering the pull kernel's
   bit-identity argument rests on. *)
let build_csc t =
  let n = t.size in
  let nnz = t.row_start.(n) in
  let t_col_start = Array.make (n + 1) 0 in
  for k = 0 to nnz - 1 do
    let j = t.cols.(k) in
    t_col_start.(j + 1) <- t_col_start.(j + 1) + 1
  done;
  for j = 1 to n do
    t_col_start.(j) <- t_col_start.(j) + t_col_start.(j - 1)
  done;
  let cursor = Array.sub t_col_start 0 n in
  let t_cols = Array.make nnz 0 in
  let t_probs = Array.make nnz 0. in
  for i = 0 to n - 1 do
    for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
      let j = t.cols.(k) in
      let slot = cursor.(j) in
      t_cols.(slot) <- i;
      t_probs.(slot) <- t.probs.(k);
      cursor.(j) <- slot + 1
    done
  done;
  { t_col_start; t_cols; t_probs }

(* The transpose is built at most once per chain in the common case; a
   concurrent first call may build it twice, but both builds are
   identical and the compare-and-set publishes exactly one of them, so
   every reader sees the same arrays (and the race is on an [Atomic],
   visible to TSan as synchronised). *)
let csc t =
  match Atomic.get t.csc with
  | Some c -> c
  | None ->
      let c = build_csc t in
      if Atomic.compare_and_set t.csc None (Some c) then c
      else (match Atomic.get t.csc with Some c -> c | None -> assert false)

let to_csc t =
  let c = csc t in
  (Array.copy c.t_col_start, Array.copy c.t_cols, Array.copy c.t_probs)

(* --- shared structure (β-families) ----------------------------------- *)

let int_arrays_equal a b =
  a == b
  || begin
       let n = Array.length a in
       n = Array.length b
       && begin
            let i = ref 0 in
            while !i < n && Array.unsafe_get a !i = Array.unsafe_get b !i do
              incr i
            done;
            !i = n
          end
     end

let same_structure a b =
  a.size = b.size
  && int_arrays_equal a.row_start b.row_start
  && int_arrays_equal a.cols b.cols

(* Physically share [base]'s index arrays when the structures agree.
   The probabilities and prefix sums stay the plane's own; the CSC view
   is pre-seeded with [base]'s index arrays plus a fresh [t_probs]
   filled by the same counting-transpose order [build_csc] uses — the
   values are copied straight from [t.probs], no arithmetic, so the
   seeded view is bit-identical to the one the plane would derive
   lazily on its own. A chain whose structure differs from [base]'s
   (sparsity can differ across β when softmax tails underflow) is
   returned unchanged. *)
let with_structure_of ~base t =
  if t == base then t
  else if not (same_structure base t) then t
  else begin
    let bc = csc base in
    let nnz = Array.length bc.t_probs in
    let t_probs = Array.make nnz 0. in
    let cursor = Array.sub bc.t_col_start 0 t.size in
    for i = 0 to t.size - 1 do
      for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
        let j = t.cols.(k) in
        let slot = cursor.(j) in
        t_probs.(slot) <- t.probs.(k);
        cursor.(j) <- slot + 1
      done
    done;
    {
      t with
      row_start = base.row_start;
      cols = base.cols;
      csc = Atomic.make (Some { bc with t_probs });
    }
  end

let check_evolve_args name t ~src ~dst =
  if Array.length src <> t.size || Array.length dst <> t.size then
    invalid_arg (name ^ ": dimension mismatch");
  if src == dst then invalid_arg (name ^ ": src and dst must be distinct")

(* Push (scatter) kernel: stream the CSR rows, accumulate into [dst].
   Indices are validated at construction ([cols] entries are in
   [0, size) and [row_start] is monotone within bounds) and the
   dimension checks in the callers cover [src]/[dst], so unchecked
   accesses are safe; the accumulation order matches the historical
   boxed-row code exactly. *)
let push_into t ~src ~dst =
  Array.fill dst 0 t.size 0.;
  let row_start = t.row_start and cols = t.cols and probs = t.probs in
  for i = 0 to t.size - 1 do
    let mass = Array.unsafe_get src i in
    if mass > 0. then begin
      let stop = Array.unsafe_get row_start (i + 1) - 1 in
      for k = Array.unsafe_get row_start i to stop do
        let j = Array.unsafe_get cols k in
        Array.unsafe_set dst j
          (Array.unsafe_get dst j +. (mass *. Array.unsafe_get probs k))
      done
    end
  done

(* Pull (gather) kernel for one destination: dst.(j) = Σᵢ src.(i)·P(i,j)
   with sources visited in increasing i. The push kernel deposits into
   slot j once per source row, rows ascending, starting from the 0. the
   fill wrote — the exact same addition sequence this register
   accumulation performs (0. +. x = x exactly, and mass·p > 0 so no
   signed zeros differ) — and it skips rows whose mass is not > 0.,
   which the per-entry guard below mirrors. Hence pull results are
   bit-identical to push, while every destination slot is written by
   exactly one loop iteration, so destinations can be chunked across
   domains race-free. *)
let pull_one c src j =
  let col_start = c.t_col_start and rows = c.t_cols and probs = c.t_probs in
  let acc = ref 0. in
  let stop = Array.unsafe_get col_start (j + 1) - 1 in
  for k = Array.unsafe_get col_start j to stop do
    let mass = Array.unsafe_get src (Array.unsafe_get rows k) in
    if mass > 0. then acc := !acc +. (mass *. Array.unsafe_get probs k)
  done;
  !acc

(* Cutover cost of one gathered destination: the average row degree
   (one fused multiply-add per stored transition). At logit-chain
   degrees this sends |S| ~ 1024 single-distribution evolves — the
   pooled by_power regression recorded in BENCH_spmm.json — down the
   serial path, while genuinely large chains still dispatch. *)
let evolve_cost t = Int.max 1 (t.row_start.(t.size) / t.size)

let evolve_pull_into ?pool t ~src ~dst =
  check_evolve_args "Chain.evolve_pull_into" t ~src ~dst;
  let c = csc t in
  match pool with
  | Some pool when Exec.Pool.parallelize pool ~cost:(evolve_cost t) ~n:t.size ->
      Exec.Pool.parallel_for pool ~n:t.size (fun j ->
          (* lint: allow domain-capture — pull kernel: dst.(j) has exactly one writer, iteration j *)
          Array.unsafe_set dst j (pull_one c src j))
  | _ ->
      (* Direct loop: a closure dispatch per destination costs ~15% of
         the whole kernel at logit-chain degrees. *)
      for j = 0 to t.size - 1 do
        Array.unsafe_set dst j (pull_one c src j)
      done

let evolve_into ?pool t ~src ~dst =
  check_evolve_args "Chain.evolve_into" t ~src ~dst;
  match pool with
  | Some pool when Exec.Pool.parallelize pool ~cost:(evolve_cost t) ~n:t.size ->
      let c = csc t in
      Exec.Pool.parallel_for pool ~n:t.size (fun j ->
          (* lint: allow domain-capture — pull kernel: dst.(j) has exactly one writer, iteration j *)
          Array.unsafe_set dst j (pull_one c src j))
  | _ ->
      (* Below the cutover the push scatter is the fastest serial
         kernel, and it is bit-identical to the pooled pull. *)
      push_into t ~src ~dst

let evolve t mu =
  if Array.length mu <> t.size then invalid_arg "Chain.evolve: dimension mismatch";
  let out = Array.make t.size 0. in
  push_into t ~src:mu ~dst:out;
  out

type panel = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Distributions per SpMM block: the src and dst slices of a block are
   re-read/re-written across the whole column sweep, so keep
   2 · block · size doubles within a conservative L2 budget. *)
let panel_block_bytes = 262_144

(* The panel annotations matter: without them the parameters infer as
   polymorphic bigarrays and every element access compiles to the
   generic (boxing) C call instead of a direct unboxed float load. *)
let evolve_many_into ?pool t ~k ~(src : panel) ~(dst : panel) =
  if k < 0 then invalid_arg "Chain.evolve_many_into: negative k";
  let n = t.size in
  if Bigarray.Array1.dim src <> k * n || Bigarray.Array1.dim dst <> k * n then
    invalid_arg "Chain.evolve_many_into: panel dimension mismatch";
  if src == dst then
    invalid_arg "Chain.evolve_many_into: src and dst must be distinct";
  let c = csc t in
  let block = Int.max 1 (Int.min k (panel_block_bytes / (16 * n))) in
  let blocks = (k + block - 1) / block in
  (* One flat index space over (block, destination) pairs: a single
     pool dispatch per call, and chunks claim consecutive destinations
     of one block, so a block's panel slice stays cache-resident while
     the matrix columns stream through. Each (r, j) cell is written by
     exactly one iteration; per cell the sources arrive in ascending i
     exactly as in [pull_one], so every row of the panel is
     bit-identical to a single-distribution evolve, for any pool size
     and any block size. *)
  let col_start = c.t_col_start and rows = c.t_cols and probs = c.t_probs in
  (* Cutover cost of one (block, destination) index: [block] gathered
     rows of [evolve_cost] multiply-adds each. *)
  Exec.Pool.iter_opt ~cost:(block * evolve_cost t) pool ~n:(blocks * n) (fun idx ->
      let b = idx / n in
      let j = idx - (b * n) in
      let r_hi = Int.min k ((b * block) + block) - 1 in
      let klo = Array.unsafe_get col_start j in
      let kstop = Array.unsafe_get col_start (j + 1) - 1 in
      for r = b * block to r_hi do
        let base = r * n in
        let acc = ref 0. in
        for kk = klo to kstop do
          let mass =
            Bigarray.Array1.unsafe_get src (base + Array.unsafe_get rows kk)
          in
          if mass > 0. then acc := !acc +. (mass *. Array.unsafe_get probs kk)
        done;
        (* lint: allow domain-capture — SpMM: dst cell (r, j) has exactly one writer, dispatch item (b, j) *)
        Bigarray.Array1.unsafe_set dst (base + j) !acc
      done)

(* Fused multi-plane SpMM: one call advances a panel for every plane of
   a β-family over ONE shared index structure. The dispatch space is
   flat (plane, block, destination); per (plane, r, j) cell the inner
   loop is exactly [evolve_many_into]'s gather (ascending sources,
   [mass > 0.] skip), so every plane's panel is bit-identical to a
   per-plane [evolve_many_into] — the fusion only changes how the
   shared [t_col_start]/[t_cols] traffic is amortised. *)
let evolve_many_shared_into ?pool planes ~k ~(src : panel array)
    ~(dst : panel array) =
  let np = Array.length planes in
  if np = 0 then invalid_arg "Chain.evolve_many_shared_into: no planes";
  if k < 0 then invalid_arg "Chain.evolve_many_shared_into: negative k";
  let base = planes.(0) in
  let n = base.size in
  Array.iter
    (fun t ->
      if not (same_structure base t) then
        invalid_arg "Chain.evolve_many_shared_into: planes do not share structure")
    planes;
  if Array.length src <> np || Array.length dst <> np then
    invalid_arg "Chain.evolve_many_shared_into: need one src/dst panel per plane";
  Array.iteri
    (fun p s ->
      if Bigarray.Array1.dim s <> k * n || Bigarray.Array1.dim dst.(p) <> k * n
      then invalid_arg "Chain.evolve_many_shared_into: panel dimension mismatch")
    src;
  for p = 0 to np - 1 do
    for q = 0 to np - 1 do
      if dst.(p) == src.(q) then
        invalid_arg "Chain.evolve_many_shared_into: src and dst panels must be distinct";
      if q > p && dst.(p) == dst.(q) then
        invalid_arg "Chain.evolve_many_shared_into: dst panels must be distinct"
    done
  done;
  let c = csc base in
  (* Per-plane probability planes over the shared index arrays: the
     counting-transpose slot order is a pure function of the structure,
     so [c]'s indices address every plane's [t_probs] correctly. *)
  let plane_probs = Array.map (fun t -> (csc t).t_probs) planes in
  (* The [panel_block_bytes] budget is per dispatch item, and a fused
     item walks its row block in EVERY plane's src/dst panels — so the
     block shrinks by the plane count to keep the same cache footprint
     as a solo [evolve_many_into] block. Block size never changes any
     cell's value (each (plane, row, column) gather is independent), so
     bit-identity is unaffected. *)
  let block = Int.max 1 (Int.min k (panel_block_bytes / (16 * n * np))) in
  let blocks = (k + block - 1) / block in
  let col_start = c.t_col_start and rows = c.t_cols in
  (* One dispatch item per (block, destination) pair — the SAME index
     space as [evolve_many_into], with the plane loop fused inside:
     column [j]'s slice of the shared [col_start]/[rows] arrays is
     resolved once and then drives the gather for every plane, which is
     the whole point of structure sharing. Per plane the (r, kk)
     iteration order and the [mass > 0.] skip are exactly
     [evolve_many_into]'s, so each plane's panel comes out
     bit-identical to a solo advance. Cutover cost of one item is
     [np] planes × [block] gathered rows of [evolve_cost]
     multiply-adds — the same total calibration as [np] separate
     [evolve_many_into] calls, so a β-grid on a below-cutover chain
     never dispatches however many planes it fuses. *)
  Exec.Pool.iter_opt ~cost:(np * block * evolve_cost base) pool
    ~n:(blocks * n)
    (fun idx ->
      let b = idx / n in
      let j = idx - (b * n) in
      let r_hi = Int.min k ((b * block) + block) - 1 in
      let klo = Array.unsafe_get col_start j in
      let kstop = Array.unsafe_get col_start (j + 1) - 1 in
      for p = 0 to np - 1 do
        let probs = Array.unsafe_get plane_probs p in
        let src : panel = Array.unsafe_get src p in
        let dst : panel = Array.unsafe_get dst p in
        for r = b * block to r_hi do
          let base = r * n in
          let acc = ref 0. in
          for kk = klo to kstop do
            let mass =
              Bigarray.Array1.unsafe_get src (base + Array.unsafe_get rows kk)
            in
            if mass > 0. then acc := !acc +. (mass *. Array.unsafe_get probs kk)
          done;
          (* lint: allow domain-capture — fused SpMM: dst cell (p, r, j) has exactly one writer, dispatch item (b, j) *)
          Bigarray.Array1.unsafe_set dst (base + j) !acc
        done
      done)

let apply ?pool t f =
  if Array.length f <> t.size then invalid_arg "Chain.apply: dimension mismatch";
  (* Gather-mode like [pull_one]: row i is read by exactly one
     iteration and out.(i) written once, so chunking rows across
     domains is race-free; accesses are unchecked because the CSR
     invariant bounds them and [f] is length-checked above. *)
  let out = Array.make t.size 0. in
  let row_start = t.row_start and cols = t.cols and probs = t.probs in
  Exec.Pool.iter_opt ~cost:(evolve_cost t) pool ~n:t.size (fun i ->
      let acc = ref 0. in
      let stop = Array.unsafe_get row_start (i + 1) - 1 in
      for k = Array.unsafe_get row_start i to stop do
        acc :=
          !acc
          +. (Array.unsafe_get probs k
              *. Array.unsafe_get f (Array.unsafe_get cols k))
      done;
      (* lint: allow domain-capture — gather: out.(i) has exactly one writer, iteration i *)
      Array.unsafe_set out i !acc);
  out

let to_dense t =
  let m = Linalg.Mat.create t.size t.size 0. in
  for i = 0 to t.size - 1 do
    iter_row t i (fun j p -> Linalg.Mat.set m i j p)
  done;
  m

let sample_step_of t i ~u =
  let lo = t.row_start.(i) and hi = t.row_start.(i + 1) - 1 in
  (* Smallest k with u < cum.(k) — the entry the old linear scan chose;
     a u at or past the accumulated row mass (possible when the
     renormalised probabilities round their sum below the draw) falls
     back to the last entry, which is strictly positive by
     construction. *)
  let cum = t.cum in
  if u >= Array.unsafe_get cum hi then t.cols.(hi)
  else begin
    let a = ref lo and b = ref hi in
    while !a < !b do
      let mid = (!a + !b) / 2 in
      if u < Array.unsafe_get cum mid then b := mid else a := mid + 1
    done;
    Array.unsafe_get t.cols !a
  end

let sample_step rng t i = sample_step_of t i ~u:(Prob.Rng.float rng)

let simulate rng t ~start ~steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.simulate: bad start";
  if steps < 0 then invalid_arg "Chain.simulate: negative steps";
  let trajectory = Array.make (steps + 1) start in
  for k = 1 to steps do
    trajectory.(k) <- sample_step rng t trajectory.(k - 1)
  done;
  trajectory

let hitting_time rng t ~start ~target ~max_steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.hitting_time: bad start";
  if max_steps < 0 then invalid_arg "Chain.hitting_time: negative max_steps";
  let rec go state step =
    if target state then Some step
    else if step >= max_steps then None
    else go (sample_step rng t state) (step + 1)
  in
  go start 0

let successors t i =
  List.init (degree t i) (fun k -> t.cols.(t.row_start.(i) + k))

let reachable_from neighbours size start =
  let seen = Array.make size false in
  seen.(start) <- true;
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      (neighbours u)
  done;
  seen

let is_irreducible t =
  let forward = reachable_from (successors t) t.size 0 in
  if not (Array.for_all Fun.id forward) then false
  else begin
    (* Backward reachability needs the reversed adjacency. *)
    let preds = Array.make t.size [] in
    for i = 0 to t.size - 1 do
      iter_row t i (fun j p -> if p > 0. then preds.(j) <- i :: preds.(j))
    done;
    let backward = reachable_from (fun u -> preds.(u)) t.size 0 in
    Array.for_all Fun.id backward
  end

let gcd_aux a b =
  let rec go a b = if b = 0 then a else go b (a mod b) in
  go (Stdlib.abs a) (Stdlib.abs b)

let is_aperiodic t =
  (* Any positive self-loop makes an irreducible chain aperiodic; this
     is the common case for logit chains (the selected player may keep
     her strategy). Otherwise compute the period as the gcd over edges
     (u, v) of level(u) + 1 - level(v) for BFS levels from state 0. *)
  let has_loop = ref false in
  for i = 0 to t.size - 1 do
    iter_row t i (fun j p -> if i = j && p > 0. then has_loop := true)
  done;
  if !has_loop then true
  else begin
    let level = Array.make t.size (-1) in
    level.(0) <- 0;
    let queue = Queue.create () in
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if level.(v) < 0 then begin
            level.(v) <- level.(u) + 1;
            Queue.add v queue
          end)
        (successors t u)
    done;
    let g = ref 0 in
    for u = 0 to t.size - 1 do
      if level.(u) >= 0 then
        iter_row t u (fun v p ->
            if p > 0. && level.(v) >= 0 then
              g := Stdlib.abs (gcd_aux !g (level.(u) + 1 - level.(v))))
    done;
    !g = 1
  end

let is_reversible ?(tol = 1e-9) t pi =
  if Array.length pi <> t.size then invalid_arg "Chain.is_reversible: dimension";
  let ok = ref true in
  for i = 0 to t.size - 1 do
    iter_row t i (fun j p ->
        let flow = pi.(i) *. p in
        let back = pi.(j) *. prob t j i in
        if Float.abs (flow -. back) > tol then ok := false)
  done;
  !ok

let edge_measure t pi i j = pi.(i) *. prob t i j

let lazy_version t =
  of_rows
    (Array.init t.size (fun i ->
         let halved = Array.map (fun (j, p) -> (j, 0.5 *. p)) (row t i) in
         Array.append halved [| (i, 0.5) |]))
