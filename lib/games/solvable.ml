let check_alive game alive =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  if Array.length alive <> n then invalid_arg "Solvable: wrong alive length";
  Array.iteri
    (fun i l ->
      if l = [] then invalid_arg "Solvable: empty strategy set";
      List.iter
        (fun s ->
          if s < 0 || s >= Strategy_space.num_strategies space i then
            invalid_arg "Solvable: strategy out of range")
        l)
    alive

(* Iterate over all profiles whose entries come from [alive], calling
   [f] with the profile as an int array (reused between calls). *)
let iter_restricted alive f =
  let n = Array.length alive in
  let choices = Array.map Array.of_list alive in
  let counters = Array.make n 0 in
  let profile = Array.map (fun c -> c.(0)) choices in
  let rec advance i =
    if i < n then begin
      counters.(i) <- counters.(i) + 1;
      if counters.(i) = Array.length choices.(i) then begin
        counters.(i) <- 0;
        profile.(i) <- choices.(i).(0);
        advance (i + 1)
      end
      else profile.(i) <- choices.(i).(counters.(i))
    end
  in
  let total = Array.fold_left (fun acc c -> acc * Array.length c) 1 choices in
  for _ = 1 to total do
    f profile;
    advance 0
  done

let strictly_dominates game alive player b a =
  (* b strictly dominates a for [player] over the restricted profiles. *)
  let space = Game.space game in
  let dominated = ref true in
  let restricted = Array.copy alive in
  restricted.(player) <- [ a ];
  iter_restricted restricted (fun profile ->
      if !dominated then begin
        let idx_a = Strategy_space.encode space profile in
        let idx_b = Strategy_space.replace space idx_a player b in
        if Game.utility game player idx_b <= Game.utility game player idx_a then
          dominated := false
      end);
  !dominated

let eliminate_once game alive =
  check_alive game alive;
  let n = Array.length alive in
  let changed = ref false in
  let next = Array.copy alive in
  for i = 0 to n - 1 do
    let survivors =
      List.filter
        (fun a ->
          not
            (List.exists
               (fun b -> b <> a && strictly_dominates game alive i b a)
               alive.(i)))
        alive.(i)
    in
    (* Keep at least one strategy: if everything were eliminated (can
       only happen through ties) retain the original set. *)
    if survivors <> [] && List.length survivors < List.length next.(i) then begin
      next.(i) <- survivors;
      changed := true
    end
  done;
  (next, !changed)

let surviving_strategies game =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let alive =
    Array.init n (fun i ->
        List.init (Strategy_space.num_strategies space i) Fun.id)
  in
  let rec fixpoint alive =
    let next, changed = eliminate_once game alive in
    if changed then fixpoint next else next
  in
  fixpoint alive

let is_dominance_solvable game =
  Array.for_all (fun l -> List.length l = 1) (surviving_strategies game)

let solution game =
  let surviving = surviving_strategies game in
  if Array.for_all (fun l -> List.length l = 1) surviving then
    Some
      (Strategy_space.encode (Game.space game)
         (Array.map (function [ s ] -> s | _ -> assert false) surviving))
  else None

let second_price_auction ~bidders ~valuations ~bids =
  if bidders < 2 then invalid_arg "Solvable.second_price_auction: need 2 bidders";
  if Array.length valuations <> bidders then
    invalid_arg "Solvable.second_price_auction: one valuation per bidder";
  if Array.length bids < 2 then
    invalid_arg "Solvable.second_price_auction: need at least two bid levels";
  let space =
    Strategy_space.create (Array.make bidders (Array.length bids))
  in
  Game.create ~name:(Printf.sprintf "second-price-auction(n=%d)" bidders) space
    (fun player idx ->
      let bid i = bids.(Strategy_space.player_strategy space idx i) in
      let winner = ref 0 in
      for i = 1 to bidders - 1 do
        if bid i > bid !winner then winner := i
      done;
      if !winner <> player then 0.
      else begin
        let second = ref neg_infinity in
        for i = 0 to bidders - 1 do
          if i <> !winner && bid i > !second then second := bid i
        done;
        valuations.(player) -. !second
      end)
