(** The profile space S = S₁ × ... × Sₙ of a strategic game.

    A profile is an [int array] of length [n] whose [i]-th entry is
    the strategy of player [i], in [{0, ..., counts.(i) - 1}]. Profiles
    are also indexed by integers in [{0, ..., size-1}] through a
    mixed-radix encoding, which is how the Markov-chain substrate
    addresses states. The encoding is little-endian in the player
    index: player 0 is the fastest-varying digit. *)

type t

type profile = int array

(** [create counts] is the space with [counts.(i)] strategies for
    player [i]. Every count must be at least 1 and the total size must
    fit in an [int]; raises [Invalid_argument] otherwise. *)
val create : int array -> t

(** [uniform ~players ~strategies] is the space of [players] players
    with [strategies] strategies each. *)
val uniform : players:int -> strategies:int -> t

(** [num_players s] is n. *)
val num_players : t -> int

(** [num_strategies s i] is |S_i|. *)
val num_strategies : t -> int -> int

(** [max_strategies s] is m = max_i |S_i|. *)
val max_strategies : t -> int

(** [size s] is |S| = Π_i |S_i|. *)
val size : t -> int

(** [encode s p] is the index of profile [p].
    Raises [Invalid_argument] on out-of-range entries. *)
val encode : t -> profile -> int

(** [decode s idx] is the profile with index [idx] (fresh array). *)
val decode : t -> int -> profile

(** [player_strategy s idx i] is the strategy of player [i] in the
    profile with index [idx], without materialising the profile. *)
val player_strategy : t -> int -> int -> int

(** [replace s idx i a] is the index of the profile obtained from
    profile [idx] by setting player [i]'s strategy to [a] — the
    [(a, x₋ᵢ)] operation of the paper, in index space. *)
val replace : t -> int -> int -> int -> int

(** [iter s f] applies [f] to every profile index in increasing
    order. *)
val iter : t -> (int -> unit) -> unit

(** [iter_profiles s f] applies [f idx p] to every profile; the array
    [p] is reused between calls and must not be stowed away. *)
val iter_profiles : t -> (int -> profile -> unit) -> unit

(** [neighbors s idx] lists the indices of profiles at Hamming
    distance one from [idx] (the Hamming-graph neighbourhood). *)
val neighbors : t -> int -> int list

(** [hamming_distance s a b] is the number of players whose strategy
    differs between profiles [a] and [b]. *)
val hamming_distance : t -> int -> int -> int

(** [weight s idx] is the number of players playing a non-zero
    strategy — w(x) of the paper for binary games. *)
val weight : t -> int -> int

(** [pp_profile] prints a profile as [(s₀, s₁, ...)]. *)
val pp_profile : Format.formatter -> profile -> unit
