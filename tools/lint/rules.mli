(** The logitlint rule catalogue. README.md ("Lint") documents each
    rule's motivation; [logitlint --list-rules] prints the docs. *)

val float_equality : Lint.rule
val exn_policy : Lint.rule
val bare_random : Lint.rule
val print_in_lib : Lint.rule
val mli_coverage : Lint.rule
val marshal_outside_store : Lint.rule
val bench_json_outside_bench : Lint.rule

(** Every rule, in reporting order. *)
val all : Lint.rule list

(** [is_float_shaped e] — exposed for the fixture tests: whether an
    operand is syntactically float-valued (float literal, [Float.*]
    call or float arithmetic). *)
val is_float_shaped : Parsetree.expression -> bool
