(** X7 (extension) — the logit dynamics' stationary distribution
    versus the logit quantal response equilibrium.

    Both objects are parameterised by the same β and coincide at
    β = 0 (everything is uniform). The QRE is the static mean-field
    fixed point economists attach to the same choice rule; the chain's
    stationary law is correlated across players. We measure the TV
    gap over β for a potential game with two equilibria (the gap grows
    — the product measure cannot represent the bimodal Gibbs
    distribution), for matching pennies (the QRE stays uniform, which
    IS the chain's stationary law, so the gap vanishes at all β), and
    for a ring graphical game. *)

open Games

let run ~quick =
  let table =
    Table.create ~title:"X7: QRE product measure vs stationary distribution"
      [
        ("game", Table.Left);
        ("beta", Table.Right);
        ("QRE converged", Table.Right);
        ("TV(QRE, stationary)", Table.Right);
        ("max marginal gap", Table.Right);
      ]
  in
  let games =
    [
      Coordination.to_game (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0);
      Zoo.matching_pennies;
      Graphical.to_game
        (Graphical.create
           (Graphs.Generators.ring (if quick then 4 else 6))
           (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0));
    ]
  in
  let betas = if quick then [ 0.0; 1.0 ] else [ 0.0; 0.5; 1.0; 1.5; 2.0; 3.0 ] in
  List.iter
    (fun game ->
      let space = Game.space game in
      List.iter
        (fun beta ->
          match Logit.Qre.stationary_gap game ~beta with
          | None ->
              Table.add_row table
                [ Game.name game; Table.cell_float beta; "no"; "-"; "-" ]
          | Some (qre, tv) ->
              (* Largest per-player marginal discrepancy between the QRE
                 mixture and the stationary marginal. *)
              let stationary =
                match Logit.Gibbs.of_game game ~beta with
                | Some pi -> pi
                | None ->
                    Markov.Stationary.by_solve (Logit.Logit_dynamics.chain game ~beta)
              in
              let gap = ref 0. in
              for i = 0 to Game.num_players game - 1 do
                let m = Strategy_space.num_strategies space i in
                let marginal = Array.make m 0. in
                Array.iteri
                  (fun idx p ->
                    let s = Strategy_space.player_strategy space idx i in
                    marginal.(s) <- marginal.(s) +. p)
                  stationary;
                Array.iteri
                  (fun a p -> gap := Float.max !gap (Float.abs (p -. qre.(i).(a))))
                  marginal
              done;
              Table.add_row table
                [
                  Game.name game;
                  Table.cell_float beta;
                  "yes";
                  Printf.sprintf "%.4f" tv;
                  Printf.sprintf "%.4f" !gap;
                ])
        betas)
    games;
  Table.add_note table
    "matching pennies: QRE = uniform = stationary law at every beta; \
     coordination games: the product QRE cannot carry the bimodal Gibbs \
     correlation, so TV grows with beta even when the marginals agree.";
  [ table ]
