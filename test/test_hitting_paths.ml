open Helpers
open Markov

(* ----- Hitting ----- *)

let two_state p q =
  Chain.of_rows [| [| (0, 1. -. p); (1, p) |]; [| (0, q); (1, 1. -. q) |] |]

let hitting_two_state () =
  (* From 0, hitting {1} is geometric with success prob p: mean 1/p. *)
  let c = two_state 0.25 0.1 in
  check_float ~tol:1e-9 "mean hit" 4. (Hitting.expected_time c ~start:0 ~target:(fun i -> i = 1));
  check_float "on target" 0. (Hitting.expected_time c ~start:1 ~target:(fun i -> i = 1));
  check_float ~tol:1e-9 "worst" 10.
    (Hitting.worst_expected_time c ~target:(fun i -> i = 0));
  check_raises_invalid "empty target" (fun () ->
      ignore (Hitting.expected_times c ~target:(fun _ -> false)))

let hitting_random_walk () =
  (* Symmetric walk on {0,1,2,3} with reflecting ends; E_0[hit 3] for the
     lazy-at-ends chain below: classic gambler's values computed by the
     solver must satisfy the recurrence h(i) = 1 + avg of neighbours. *)
  let bd =
    Birth_death.create ~up:[| 0.5; 0.5; 0.5; 0. |] ~down:[| 0.; 0.5; 0.5; 0.5 |]
  in
  let c = Birth_death.to_chain bd in
  let h = Hitting.expected_times c ~target:(fun i -> i = 3) in
  check_float ~tol:1e-9 "h(2)" (1. +. (0.5 *. h.(1))) h.(2);
  check_float ~tol:1e-9 "h(0)" (1. +. (0.5 *. h.(0)) +. (0.5 *. h.(1))) h.(0);
  check_float "h(3)" 0. h.(3)

let hitting_probabilities () =
  (* Gambler's ruin on {0..4}, absorbing at both ends: probability of
     reaching 4 before 0 from i is i/4. *)
  let rows =
    Array.init 5 (fun i ->
        if i = 0 || i = 4 then [| (i, 1.) |]
        else [| (i - 1, 0.5); (i + 1, 0.5) |])
  in
  let c = Chain.of_rows rows in
  let p = Hitting.probabilities c ~target:(fun i -> i = 4) ~avoid:(fun i -> i = 0) in
  check_array ~tol:1e-9 "ruin probabilities" [| 0.; 0.25; 0.5; 0.75; 1. |] p

let hitting_simulated_close () =
  let c = two_state 0.25 0.1 in
  let r = rng () in
  let est =
    Hitting.simulated r c ~start:0 ~target:(fun i -> i = 1) ~replicas:20_000
      ~max_steps:10_000
  in
  check_float ~tol:0.15 "simulated mean" 4. est

let hitting_matches_simulation_logit () =
  (* Exact vs simulated on a logit chain. *)
  let game = Games.Coordination.to_game (Games.Coordination.of_deltas ~delta0:1. ~delta1:0.6) in
  let chain = Logit.Logit_dynamics.chain game ~beta:1.2 in
  let exact = Hitting.expected_time chain ~start:3 ~target:(fun i -> i = 0) in
  let r = rng () in
  let sim =
    Hitting.simulated r chain ~start:3 ~target:(fun i -> i = 0) ~replicas:20_000
      ~max_steps:100_000
  in
  check_float ~tol:(0.05 *. exact) "logit hitting" exact sim

(* ----- Paths ----- *)

let line_chain =
  (* 0 - 1 - 2 lazy walk. *)
  Chain.of_rows
    [|
      [| (0, 0.5); (1, 0.5) |];
      [| (0, 0.25); (1, 0.5); (2, 0.25) |];
      [| (1, 0.5); (2, 0.5) |];
    |]

let line_pi = [| 0.25; 0.5; 0.25 |]

let line_family x y =
  (* monotone path through the line *)
  let rec build u acc = if u = y then List.rev acc
    else
      let v = if y > u then u + 1 else u - 1 in
      build v ((u, v) :: acc)
  in
  build x []

let paths_validate () =
  check_true "valid family" (Paths.validate line_chain line_family = None);
  let broken x y = if x = 0 && y = 2 then [ (0, 2) ] else line_family x y in
  check_true "broken detected" (Paths.validate line_chain broken = Some (0, 2))

let paths_congestion_bounds_relaxation () =
  let rho = Paths.congestion line_chain line_pi line_family in
  let trel = Spectral.relaxation_time line_chain line_pi in
  check_true "Thm 2.6: trel <= rho" (trel <= rho +. 1e-9);
  check_float "relaxation_upper_bound is rho" rho
    (Paths.relaxation_upper_bound ~congestion:rho)

let paths_congestion_thm26_random =
  QCheck.Test.make ~name:"Thm 2.6 on random logit chains (bit-fixing paths)"
    ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi = random_potential_game ~players:3 ~strategies:2 seed in
      let beta = 1.0 in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary (Games.Game.space game) phi ~beta in
      let fam =
        Logit.Comparison.bit_fixing_family (Games.Game.space game)
          ~order:[| 0; 1; 2 |]
      in
      let rho = Paths.congestion chain pi fam in
      Spectral.relaxation_time chain pi <= rho +. 1e-9)

let paths_comparison_identity () =
  (* Comparing a chain against itself with single-edge paths gives
     alpha >= max path length = 1 edge... more simply: bound must be
     valid: trel <= alpha*gamma*trel. *)
  let fam x y = [ (x, y) ] in
  (* this family is only valid on edges of the reference = the chain itself *)
  let alpha, gamma =
    Paths.comparison_congestion line_chain line_pi
      ~reference:(line_chain, line_pi) fam
  in
  check_float ~tol:1e-9 "alpha = 1 (each edge carries itself)" 1. alpha;
  check_float ~tol:1e-9 "gamma = 1" 1. gamma

let suites =
  [
    ( "markov.hitting",
      [
        test "two-state closed form" hitting_two_state;
        test "random-walk recurrence" hitting_random_walk;
        test "gambler's ruin probabilities" hitting_probabilities;
        test "simulated close to exact" hitting_simulated_close;
        test "logit exact vs simulated" hitting_matches_simulation_logit;
      ] );
    ( "markov.paths",
      [
        test "validate" paths_validate;
        test "congestion bounds relaxation" paths_congestion_bounds_relaxation;
        test "comparison identity" paths_comparison_identity;
        qcheck paths_congestion_thm26_random;
      ] );
  ]
