(** X4 — conclusions: time-varying beta schedules on the Thm 3.5 potential.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
