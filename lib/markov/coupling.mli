(** Generic Markov-chain coupling simulation (paper, Theorem 2.1).

    A coupling is any joint step function whose marginals follow the
    chain; by the coupling theorem
    ‖Pᵗ(x,·) - Pᵗ(y,·)‖_TV ≤ P(τ_couple > t), so empirical
    coalescence-time quantiles yield upper-bound estimates of the
    mixing time. The logit-specific interval coupling lives in the
    core library; this module provides the driver machinery. *)

type step = Prob.Rng.t -> int * int -> int * int
(** One joint step of the coupled pair. Implementations must satisfy
    the coupling property (each marginal follows the chain) and keep
    coalesced pairs together. *)

(** [coalescence_time rng step ~x0 ~y0 ~max_steps] simulates the
    coupled pair until it coalesces; [None] if still apart after
    [max_steps]. *)
val coalescence_time :
  Prob.Rng.t -> step -> x0:int -> y0:int -> max_steps:int -> int option

(** [coalescence_samples rng step ~x0 ~y0 ~max_steps ~replicas] runs
    independent replicas, returning the observed coalescence times
    (censored replicas are recorded as [max_steps + 1]). *)
val coalescence_samples :
  Prob.Rng.t -> step -> x0:int -> y0:int -> max_steps:int -> replicas:int ->
  int array

(** [tmix_upper_estimate rng step ~x0 ~y0 ~max_steps ~replicas] is the
    empirical 75th percentile of the coalescence time — an estimate of
    a time t with P(τ > t) ≤ 1/4, hence of an upper bound on
    t_mix(1/4) for this pair of start states. [None] when more than a
    quarter of the replicas were censored. *)
val tmix_upper_estimate :
  Prob.Rng.t -> step -> x0:int -> y0:int -> max_steps:int -> replicas:int ->
  int option

(** [independent_coupling chain] is the trivial coupling that moves
    the two copies independently until they happen to meet, then glues
    them — a baseline for comparing against structured couplings. *)
val independent_coupling : Chain.t -> step

(** [grand_coupling_check rng step ~size ~trials ~horizon] exercises a
    coupling from random start pairs and verifies the "stay together"
    property along the way; returns the number of violations (0 for a
    correct implementation). Used by the test suite. *)
val grand_coupling_check :
  Prob.Rng.t -> step -> size:int -> trials:int -> horizon:int -> int
