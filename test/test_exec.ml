(* The multicore execution layer: Exec.Pool itself, and the
   parallel-vs-serial equivalence of every kernel that grew a [?pool]
   parameter. The contract under test: for a fixed seed, every kernel
   returns the same answer (bit-equal for the Monte Carlo paths, within
   1e-12 for the deterministic ones) for pool sizes 1, 2 and 4 as for
   the plain serial code path. *)

open Helpers

(* ----- fixtures ----- *)

let mk_game seed =
  let game, phi = random_potential_game ~players:3 ~strategies:2 seed in
  let beta = 0.5 +. (0.5 *. float_of_int (seed land 3)) in
  (game, phi, beta)

let ring_game n =
  let desc =
    Games.Graphical.create
      (Graphs.Generators.ring n)
      (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  Games.Graphical.to_game desc

(* Run [f] under a given serial cutover, restoring the process-global
   default afterwards even if [f] raises. *)
let with_cutover limit f =
  let saved = Exec.Pool.serial_cutover () in
  Exec.Pool.set_serial_cutover limit;
  Fun.protect ~finally:(fun () -> Exec.Pool.set_serial_cutover saved) f

(* Run [f] once per pool size in {1, 2, 4} and return the conjunction,
   leaving the serial cutover alone. *)
let for_each_pool_size f =
  List.for_all
    (fun domains -> Exec.Pool.with_pool ~domains (fun pool -> f pool))
    [ 1; 2; 4 ]

(* Same, with the serial cutover forced to 0 (always dispatch): the
   equivalence fixtures are tiny, and under the default cutover every
   pooled kernel would fall back to its serial loop, making these
   tests vacuously true. *)
let for_all_pool_sizes f = with_cutover 0 (fun () -> for_each_pool_size f)

let chain_rows_equal a b =
  Markov.Chain.size a = Markov.Chain.size b
  && begin
       let ok = ref true in
       for i = 0 to Markov.Chain.size a - 1 do
         if Markov.Chain.row a i <> Markov.Chain.row b i then ok := false
       done;
       !ok
     end

let max_abs_diff a b =
  let d = ref 0. in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

(* ----- Pool unit tests ----- *)

let pool_map_matches_init () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let expected = Array.init 1000 (fun i -> (i * i) + 1) in
      let got = Exec.Pool.map pool ~n:1000 (fun i -> (i * i) + 1) in
      Alcotest.(check (array int)) "map = Array.init" expected got;
      check_int "size" 4 (Exec.Pool.size pool);
      Alcotest.(check (array int)) "empty map" [||] (Exec.Pool.map pool ~n:0 (fun i -> i)))

let pool_for_covers_each_index_once () =
  Exec.Pool.with_pool ~domains:4 (fun pool ->
      let n = 10_000 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Exec.Pool.parallel_for pool ~n (fun i -> Atomic.incr hits.(i));
      check_true "each index exactly once"
        (Array.for_all (fun a -> Atomic.get a = 1) hits))

let pool_reduce_deterministic_across_sizes () =
  (* A non-associative float sum: the chunked association must depend
     only on n, so all pool sizes agree exactly. *)
  let n = 5_000 in
  let sum_with domains =
    Exec.Pool.with_pool ~domains (fun pool ->
        Exec.Pool.reduce pool ~n
          ~map:(fun i -> 1. /. float_of_int (i + 1))
          ~combine:( +. ) ~init:0.)
  in
  let s1 = sum_with 1 and s2 = sum_with 2 and s4 = sum_with 4 in
  check_true "pool sizes 1 = 2" (s1 = s2);
  check_true "pool sizes 2 = 4" (s2 = s4);
  check_float ~tol:0.01 "harmonic number ~ ln n + gamma"
    (log (float_of_int n) +. 0.5772)
    s1

let pool_propagates_exceptions () =
  Exec.Pool.with_pool ~domains:3 (fun pool ->
      (match
         Exec.Pool.parallel_for pool ~n:10_000 (fun i ->
             if i = 7_777 then failwith "boom")
       with
      | exception Failure msg -> check_true "failure message" (msg = "boom")
      | () -> Alcotest.fail "expected the body's exception to propagate");
      (* The pool survives a failed call. *)
      let again = Exec.Pool.map pool ~n:100 (fun i -> i) in
      check_int "pool still alive" 99 again.(99))

let pool_shutdown_is_final () =
  let pool = Exec.Pool.create ~domains:2 () in
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool;
  (* idempotent *)
  check_raises_invalid "parallel_for after shutdown" (fun () ->
      Exec.Pool.parallel_for pool ~n:1000 ~chunk:1 (fun _ -> ()));
  check_raises_invalid "bad size" (fun () -> ignore (Exec.Pool.create ~domains:0 ()))

let pool_nested_calls_do_not_deadlock () =
  Exec.Pool.with_pool ~domains:3 (fun pool ->
      let totals = Array.init 4 (fun _ -> Atomic.make 0) in
      Exec.Pool.parallel_for pool ~chunk:1 ~n:4 (fun outer ->
          Exec.Pool.parallel_for pool ~chunk:8 ~n:100 (fun _ ->
              Atomic.incr totals.(outer)));
      check_true "all inner iterations ran"
        (Array.for_all (fun a -> Atomic.get a = 100) totals))

(* ----- equivalence: parallelized kernels vs serial ----- *)

let equiv_chain_rows =
  QCheck.Test.make ~name:"pooled logit chain rows = serial (pools 1,2,4)"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, _, beta = mk_game seed in
      let serial = Logit.Logit_dynamics.chain game ~beta in
      for_all_pool_sizes (fun pool ->
          chain_rows_equal serial (Logit.Logit_dynamics.chain ~pool game ~beta)))

let equiv_dense_chain_rows =
  QCheck.Test.make
    ~name:"pooled simultaneous-update chain rows = serial (pools 1,2,4)"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, _, beta = mk_game seed in
      let serial = Logit.Parallel_logit.chain game ~beta in
      for_all_pool_sizes (fun pool ->
          chain_rows_equal serial (Logit.Parallel_logit.chain ~pool game ~beta)))

let equiv_tv_curve =
  QCheck.Test.make ~name:"pooled tv_curve = serial within 1e-12 (pools 1,2,4)"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi, beta = mk_game seed in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary (Games.Game.space game) phi ~beta in
      let starts = List.init (Markov.Chain.size chain) Fun.id in
      let serial = Markov.Mixing.tv_curve chain pi ~starts ~steps:25 in
      for_all_pool_sizes (fun pool ->
          let parallel = Markov.Mixing.tv_curve ~pool chain pi ~starts ~steps:25 in
          max_abs_diff serial parallel <= 1e-12))

let equiv_mixing_time_all =
  QCheck.Test.make ~name:"pooled mixing_time_all = serial (pools 1,2,4)"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi, beta = mk_game seed in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary (Games.Game.space game) phi ~beta in
      let serial = Markov.Mixing.mixing_time_all chain pi in
      for_all_pool_sizes (fun pool ->
          Markov.Mixing.mixing_time_all ~pool chain pi = serial))

let equiv_empirical_tv =
  QCheck.Test.make
    ~name:"pooled empirical_tv bit-equal to serial for a fixed seed" ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi, beta = mk_game seed in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let pi = Logit.Gibbs.stationary (Games.Game.space game) phi ~beta in
      let run pool =
        Markov.Mixing.empirical_tv ?pool (Prob.Rng.create (seed + 1)) chain pi
          ~start:0 ~steps:40 ~replicas:300
      in
      let serial = run None in
      for_all_pool_sizes (fun pool -> run (Some pool) = serial))

let equiv_cftp_samples () =
  let game = ring_game 4 in
  let beta = 1.0 in
  let run pool =
    Logit.Perfect_sampling.samples ?pool (Prob.Rng.create 5) game ~beta ~count:12
  in
  let serial = run None in
  check_true "pooled CFTP samples bit-equal to serial"
    (for_all_pool_sizes (fun pool -> run (Some pool) = serial))

(* ----- equivalence: pull / SpMM kernels vs serial push ----- *)

let mk_chain seed =
  let game, phi, beta = mk_game seed in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary (Games.Game.space game) phi ~beta in
  (chain, pi)

let equiv_pooled_evolve =
  QCheck.Test.make
    ~name:"pooled evolve_into (pull) bit-equal to serial push (pools 1,2,4)"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = mk_chain seed in
      let n = Markov.Chain.size chain in
      let r = Prob.Rng.create (seed + 17) in
      let sources = pi :: List.init 4 (fun _ -> random_sparse_vector r n) in
      let serial = Array.make n 0. and pooled = Array.make n 0. in
      List.for_all
        (fun src ->
          Markov.Chain.evolve_into chain ~src ~dst:serial;
          for_all_pool_sizes (fun pool ->
              Markov.Chain.evolve_into ~pool chain ~src ~dst:pooled;
              pooled = serial))
        sources)

let equiv_spmm =
  QCheck.Test.make
    ~name:"pooled evolve_many_into = k serial evolve_into (pools 1,2,4)"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = mk_chain seed in
      let n = Markov.Chain.size chain in
      let r = Prob.Rng.create (seed + 23) in
      let k = 1 + (seed mod 5) in
      let rows =
        Array.init k (fun i ->
            if i = 0 then Array.copy pi else random_sparse_vector r n)
      in
      let src = panel_of_rows rows in
      let expected =
        Array.map
          (fun row ->
            let dst = Array.make n 0. in
            Markov.Chain.evolve_into chain ~src:row ~dst;
            dst)
          rows
      in
      let rows_match dst =
        let ok = ref true in
        Array.iteri
          (fun i exp -> if panel_row dst ~n i <> exp then ok := false)
          expected;
        !ok
      in
      let serial_dst = panel_create (k * n) in
      Markov.Chain.evolve_many_into chain ~k ~src ~dst:serial_dst;
      rows_match serial_dst
      && for_all_pool_sizes (fun pool ->
             let dst = panel_create (k * n) in
             Markov.Chain.evolve_many_into ~pool chain ~k ~src ~dst;
             rows_match dst))

let equiv_by_power =
  QCheck.Test.make
    ~name:"pooled Stationary.by_power bit-equal to serial (pools 1,2,4)"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, _ = mk_chain seed in
      let serial = Markov.Stationary.by_power chain in
      for_all_pool_sizes (fun pool ->
          Markov.Stationary.by_power ~pool chain = serial))

let equiv_apply =
  QCheck.Test.make ~name:"pooled Chain.apply bit-equal to serial (pools 1,2,4)"
    ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, _ = mk_chain seed in
      let n = Markov.Chain.size chain in
      let r = Prob.Rng.create (seed + 29) in
      let f = Array.init n (fun _ -> Prob.Rng.float r -. 0.5) in
      let serial = Markov.Chain.apply chain f in
      for_all_pool_sizes (fun pool -> Markov.Chain.apply ~pool chain f = serial))

let equiv_basin_tv_curve =
  QCheck.Test.make
    ~name:"pooled basin_tv_curve bit-equal to serial (pools 1,2,4)"
    ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let chain, pi = mk_chain seed in
      let n = Markov.Chain.size chain in
      let basin i = i < n / 2 in
      let serial =
        Logit.Metastability.basin_tv_curve chain pi ~basin ~start:0 ~steps:20
      in
      for_all_pool_sizes (fun pool ->
          Logit.Metastability.basin_tv_curve ~pool chain pi ~basin ~start:0
            ~steps:20
          = serial))

(* ----- the serial cutover ----- *)

let cutover_set_get () =
  check_int "default cutover" 65_536 Exec.Pool.default_serial_cutover;
  check_int "process default in effect" Exec.Pool.default_serial_cutover
    (Exec.Pool.serial_cutover ());
  with_cutover 123 (fun () ->
      check_int "round-trips" 123 (Exec.Pool.serial_cutover ()));
  check_int "restored" Exec.Pool.default_serial_cutover
    (Exec.Pool.serial_cutover ());
  check_raises_invalid "negative cutover rejected" (fun () ->
      Exec.Pool.set_serial_cutover (-1))

let cutover_parallelize_boundary () =
  with_cutover 100 (fun () ->
      Exec.Pool.with_pool ~domains:2 (fun pool ->
          (* parallelize <=> n * cost >= cutover, overflow-free. *)
          check_false "work 99 stays serial"
            (Exec.Pool.parallelize pool ~cost:33 ~n:3);
          check_true "work 100 dispatches"
            (Exec.Pool.parallelize pool ~cost:25 ~n:4);
          check_false "unit cost, n = 99" (Exec.Pool.parallelize pool ~cost:1 ~n:99);
          check_true "unit cost, n = 100" (Exec.Pool.parallelize pool ~cost:1 ~n:100);
          check_false "n = 0 never dispatches"
            (Exec.Pool.parallelize pool ~cost:1000 ~n:0);
          check_false "cost 0 never dispatches"
            (Exec.Pool.parallelize pool ~cost:0 ~n:1000);
          check_raises_invalid "negative cost rejected" (fun () ->
              ignore (Exec.Pool.parallelize pool ~cost:(-1) ~n:10)));
      Exec.Pool.with_pool ~domains:1 (fun pool ->
          check_false "size-1 pool never dispatches"
            (Exec.Pool.parallelize pool ~cost:1000 ~n:1000)));
  with_cutover 0 (fun () ->
      Exec.Pool.with_pool ~domains:2 (fun pool ->
          check_true "cutover 0 disables the guard"
            (Exec.Pool.parallelize pool ~cost:1 ~n:1)));
  with_cutover max_int (fun () ->
      Exec.Pool.with_pool ~domains:2 (fun pool ->
          (* The n * cost comparison must not overflow into
             always-parallel when the limit is huge. *)
          check_false "huge cutover, large work, no overflow"
            (Exec.Pool.parallelize pool ~cost:1_000_000 ~n:1_000_000)))

let dispatch_counter_counts () =
  with_cutover 0 (fun () ->
      Exec.Pool.with_pool ~domains:2 (fun pool ->
          check_int "fresh pool has no dispatches" 0 (Exec.Pool.dispatches pool);
          let chain, pi = mk_chain 3 in
          let dst = Array.make (Markov.Chain.size chain) 0. in
          Markov.Chain.evolve_into ~pool chain ~src:pi ~dst;
          check_true "pooled evolve above cutover dispatches"
            (Exec.Pool.dispatches pool > 0)))

(* Every [?pool] kernel, run with work far below the cutover: the
   result must be bit-identical to the plain serial call AND the pool
   must never be dispatched to (the counter stays put) — the serial
   fallback is the whole point of the cutover fix, so a kernel that
   quietly pays dispatch overhead here is a regression. *)
let below_cutover_kernels_serial_and_silent () =
  let chain, pi = mk_chain 42 in
  let n = Markov.Chain.size chain in
  let rng = Prob.Rng.create 7 in
  let src = random_sparse_vector rng n in
  let f = Array.init n (fun i -> float_of_int (i mod 5) -. 2.) in
  let k = 3 in
  let rows =
    Array.init k (fun i -> if i = 0 then Array.copy pi else random_sparse_vector rng n)
  in
  let src_panel = panel_of_rows rows in
  let starts = List.init n Fun.id in
  let game = ring_game 4 in
  let basin i = i < n / 2 in
  (* Serial references, no pool anywhere. *)
  let evolve_serial = Array.make n 0. in
  Markov.Chain.evolve_into chain ~src ~dst:evolve_serial;
  let apply_serial = Markov.Chain.apply chain f in
  let spmm_serial = panel_create (k * n) in
  Markov.Chain.evolve_many_into chain ~k ~src:src_panel ~dst:spmm_serial;
  let curve_serial = Markov.Mixing.tv_curve chain pi ~starts ~steps:15 in
  let tmix_serial = Markov.Mixing.mixing_time_all chain pi in
  let emp_serial =
    Markov.Mixing.empirical_tv (Prob.Rng.create 11) chain pi ~start:0 ~steps:20
      ~replicas:100
  in
  let power_serial = Markov.Stationary.by_power chain in
  let basin_serial =
    Logit.Metastability.basin_tv_curve chain pi ~basin ~start:0 ~steps:10
  in
  let cftp_serial =
    Logit.Perfect_sampling.samples (Prob.Rng.create 5) game ~beta:1.0 ~count:6
  in
  let chain_serial = Logit.Logit_dynamics.chain game ~beta:1.0 in
  (* The β-family entry points ride the same contract: build, fused
     SpMM and the fused mixing sweep must all stay serial (and silent)
     below the cutover, whatever the plane count. *)
  let fam_betas = [ 0.5; 1.0 ] in
  let fam_serial = Logit.Logit_dynamics.chain_family game ~betas:fam_betas in
  let gn = Games.Game.size game in
  let fam_rows = Array.init k (fun _ -> random_sparse_vector rng gn) in
  let fam_src = Array.init 2 (fun _ -> panel_of_rows fam_rows) in
  let fam_spmm_serial = Array.init 2 (fun _ -> panel_create (k * gn)) in
  Markov.Family.evolve_many_into fam_serial ~k ~src:fam_src
    ~dst:fam_spmm_serial;
  let fam_pis =
    Array.init 2 (fun i ->
        Markov.Stationary.by_solve (Markov.Family.plane fam_serial i))
  in
  let fam_starts = List.init gn Fun.id in
  let fam_tmix_serial =
    Markov.Mixing.family_mixing_times fam_serial ~pis:fam_pis
      ~starts:fam_starts
  in
  let panel_eq ?(cols = n) a b =
    let ok = ref true in
    for i = 0 to k - 1 do
      if panel_row a ~n:cols i <> panel_row b ~n:cols i then ok := false
    done;
    !ok
  in
  with_cutover max_int (fun () ->
      check_true "all kernels serial and silent below cutover"
        (for_each_pool_size (fun pool ->
             let before = Exec.Pool.dispatches pool in
             let dst = Array.make n 0. in
             Markov.Chain.evolve_into ~pool chain ~src ~dst;
             let ok = ref (dst = evolve_serial) in
             ok := !ok && Markov.Chain.apply ~pool chain f = apply_serial;
             let spmm = panel_create (k * n) in
             Markov.Chain.evolve_many_into ~pool chain ~k ~src:src_panel
               ~dst:spmm;
             ok := !ok && panel_eq spmm spmm_serial;
             ok :=
               !ok
               && Markov.Mixing.tv_curve ~pool chain pi ~starts ~steps:15
                  = curve_serial;
             ok :=
               !ok && Markov.Mixing.mixing_time_all ~pool chain pi = tmix_serial;
             ok :=
               !ok
               && Markov.Mixing.empirical_tv ~pool (Prob.Rng.create 11) chain pi
                    ~start:0 ~steps:20 ~replicas:100
                  = emp_serial;
             ok := !ok && Markov.Stationary.by_power ~pool chain = power_serial;
             ok :=
               !ok
               && Logit.Metastability.basin_tv_curve ~pool chain pi ~basin
                    ~start:0 ~steps:10
                  = basin_serial;
             ok :=
               !ok
               && Logit.Perfect_sampling.samples ~pool (Prob.Rng.create 5) game
                    ~beta:1.0 ~count:6
                  = cftp_serial;
             ok :=
               !ok
               && chain_rows_equal chain_serial
                    (Logit.Logit_dynamics.chain ~pool game ~beta:1.0);
             let fam_pool =
               Logit.Logit_dynamics.chain_family ~pool game ~betas:fam_betas
             in
             ok :=
               !ok
               && List.for_all
                    (fun i ->
                      chain_rows_equal
                        (Markov.Family.plane fam_serial i)
                        (Markov.Family.plane fam_pool i))
                    [ 0; 1 ];
             let fam_spmm = Array.init 2 (fun _ -> panel_create (k * gn)) in
             Markov.Family.evolve_many_into ~pool fam_serial ~k ~src:fam_src
               ~dst:fam_spmm;
             ok :=
               !ok
               && panel_eq ~cols:gn fam_spmm.(0) fam_spmm_serial.(0)
               && panel_eq ~cols:gn fam_spmm.(1) fam_spmm_serial.(1);
             ok :=
               !ok
               && Markov.Mixing.family_mixing_times ~pool fam_serial
                    ~pis:fam_pis ~starts:fam_starts
                  = fam_tmix_serial;
             !ok && Exec.Pool.dispatches pool = before)))

(* ----- β-family pool equivalence ----- *)

(* The family entry points across pool sizes 1/2/4 with the cutover
   forced to 0: every plane of a pooled [chain_family], every panel of
   the fused SpMM, and every fused mixing time must be bit-identical to
   the serial build. *)

let equiv_family_build =
  QCheck.Test.make ~name:"chain_family: pooled = serial (pools 1/2/4)"
    ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, _, beta = mk_game seed in
      let betas = [ 0.25 *. beta; beta; 2. *. beta ] in
      let serial = Logit.Logit_dynamics.chain_family game ~betas in
      for_all_pool_sizes (fun pool ->
          let pooled = Logit.Logit_dynamics.chain_family ~pool game ~betas in
          Markov.Family.shared_structure pooled
          = Markov.Family.shared_structure serial
          && List.for_all
               (fun i ->
                 chain_rows_equal
                   (Markov.Family.plane serial i)
                   (Markov.Family.plane pooled i))
               [ 0; 1; 2 ]))

let equiv_family_spmm =
  QCheck.Test.make
    ~name:"family fused SpMM: pooled = serial (pools 1/2/4)" ~count:10
    QCheck.(pair (int_bound 1_000_000) (int_range 1 4))
    (fun (seed, k) ->
      let game, _, beta = mk_game seed in
      let betas = [ beta; 2. *. beta ] in
      let fam = Logit.Logit_dynamics.chain_family game ~betas in
      let n = Markov.Family.size fam in
      let rng = Prob.Rng.create seed in
      let rows = Array.init k (fun _ -> random_sparse_vector rng n) in
      let src = Array.init 2 (fun _ -> panel_of_rows rows) in
      let run pool =
        let dst = Array.init 2 (fun _ -> panel_create (k * n)) in
        Markov.Family.evolve_many_into ?pool fam ~k ~src ~dst;
        Array.map (fun p -> Array.init k (panel_row p ~n)) dst
      in
      let serial = run None in
      for_all_pool_sizes (fun pool -> run (Some pool) = serial))

let equiv_family_mixing =
  QCheck.Test.make
    ~name:"family_mixing_times: pooled = serial (pools 1/2/4)" ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let game, phi, beta = mk_game seed in
      let betas = [ beta; 2. *. beta ] in
      let fam = Logit.Logit_dynamics.chain_family game ~betas in
      let space = Games.Game.space game in
      let pis =
        Array.of_list
          (List.map (fun beta -> Logit.Gibbs.stationary space phi ~beta) betas)
      in
      let starts = List.init (Markov.Family.size fam) Fun.id in
      let serial = Markov.Mixing.family_mixing_times fam ~pis ~starts in
      for_all_pool_sizes (fun pool ->
          Markov.Mixing.family_mixing_times ~pool fam ~pis ~starts = serial))

(* ----- Parallel_logit.transition_row properties ----- *)

let parallel_row_factorises =
  QCheck.Test.make
    ~name:"Parallel_logit row: sums to 1, factorises, no zero entries"
    ~count:20
    QCheck.(pair (int_bound 1_000_000) (int_bound 1_000))
    (fun (seed, idx_seed) ->
      let game, _, beta = mk_game seed in
      let space = Games.Game.space game in
      let size = Games.Game.size game in
      let n = Games.Strategy_space.num_players space in
      let idx = idx_seed mod size in
      let row = Logit.Parallel_logit.transition_row game ~beta idx in
      let sum = List.fold_left (fun acc (_, p) -> acc +. p) 0. row in
      let sigmas =
        Array.init n (fun i ->
            Logit.Logit_dynamics.update_distribution game ~beta ~player:i idx)
      in
      Float.abs (sum -. 1.) <= 1e-9
      && List.for_all (fun (_, p) -> p > 0.) row
      && List.for_all
           (fun (target, p) ->
             let profile = Games.Strategy_space.decode space target in
             let expected = ref 1. in
             Array.iteri (fun i s -> expected := !expected *. sigmas.(i).(s)) profile;
             Float.abs (p -. !expected) <= 1e-12)
           row)

(* ----- Rng.split determinism and independence ----- *)

let split_regression () =
  (* Hard-coded SplitMix64 outputs for seed 123: a silent change to the
     generator or the split derivation would silently invalidate every
     recorded parallel experiment table, so pin the exact bits. *)
  let r = Prob.Rng.create 123 in
  let s = Prob.Rng.split r in
  let d1 = Prob.Rng.bits64 s in
  let d2 = Prob.Rng.bits64 s in
  let d3 = Prob.Rng.bits64 s in
  check_true "draw 1" (d1 = 4718803527119784656L);
  check_true "draw 2" (d2 = 5243736499129471309L);
  check_true "draw 3" (d3 = -5131873906650628720L);
  let streams = Prob.Rng.split_n (Prob.Rng.create 123) 3 in
  let firsts = Array.map Prob.Rng.bits64 streams in
  check_true "stream 0" (firsts.(0) = 4718803527119784656L);
  check_true "stream 1" (firsts.(1) = -349125621559417454L);
  check_true "stream 2" (firsts.(2) = 7810277641046366518L);
  check_raises_invalid "negative count" (fun () ->
      ignore (Prob.Rng.split_n (Prob.Rng.create 1) (-1)))

let split_streams_stable_across_runs () =
  let draw_all seed =
    let streams = Prob.Rng.split_n (Prob.Rng.create seed) 4 in
    Array.map
      (fun s -> Array.init 1_000 (fun _ -> Prob.Rng.bits64 s))
      streams
  in
  let a = draw_all 99 and b = draw_all 99 in
  check_true "identical streams across runs" (a = b)

let sibling_streams_do_not_overlap () =
  let streams = Prob.Rng.split_n (Prob.Rng.create 99) 2 in
  let draws = 10_000 in
  let seen = Hashtbl.create (2 * draws) in
  let left = streams.(0) and right = streams.(1) in
  for _ = 1 to draws do
    Hashtbl.replace seen (Prob.Rng.bits64 left) ()
  done;
  check_int "no internal collisions" draws (Hashtbl.length seen);
  let overlap = ref 0 in
  for _ = 1 to draws do
    if Hashtbl.mem seen (Prob.Rng.bits64 right) then incr overlap
  done;
  check_int "no cross-stream collisions" 0 !overlap

let suites =
  [
    ( "exec.pool",
      [
        test "map matches Array.init" pool_map_matches_init;
        test "parallel_for covers every index once" pool_for_covers_each_index_once;
        test "reduce deterministic across pool sizes"
          pool_reduce_deterministic_across_sizes;
        test "exceptions propagate, pool survives" pool_propagates_exceptions;
        test "shutdown is final and idempotent" pool_shutdown_is_final;
        test "nested calls do not deadlock" pool_nested_calls_do_not_deadlock;
      ] );
    ( "exec.equivalence",
      [
        qcheck equiv_chain_rows;
        qcheck equiv_dense_chain_rows;
        qcheck equiv_tv_curve;
        qcheck equiv_mixing_time_all;
        qcheck equiv_empirical_tv;
        test "CFTP samples deterministic across pools" equiv_cftp_samples;
      ] );
    ( "exec.kernels",
      [
        qcheck equiv_pooled_evolve;
        qcheck equiv_spmm;
        qcheck equiv_by_power;
        qcheck equiv_apply;
        qcheck equiv_basin_tv_curve;
      ] );
    ( "exec.cutover",
      [
        test "set/get and validation" cutover_set_get;
        test "parallelize boundary semantics" cutover_parallelize_boundary;
        test "dispatch counter counts pooled runs" dispatch_counter_counts;
        test "below cutover: bit-identical and zero dispatches"
          below_cutover_kernels_serial_and_silent;
      ] );
    ( "exec.family",
      [
        qcheck equiv_family_build;
        qcheck equiv_family_spmm;
        qcheck equiv_family_mixing;
      ] );
    ("exec.parallel_logit", [ qcheck parallel_row_factorises ]);
    ( "exec.rng",
      [
        test "split regression values" split_regression;
        test "split streams stable across runs" split_streams_stable_across_runs;
        test "sibling streams do not overlap" sibling_streams_do_not_overlap;
      ] );
  ]
