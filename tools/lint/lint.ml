(* The logitlint engine: file discovery, parsing, rule dispatch,
   suppression comments, per-directory config, and the two reporters.
   The rule catalogue itself lives in rules.ml. *)

type kind = Ml | Mli

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  suppressed : bool;
}

type source_ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

type reporter = Location.t -> string -> unit

type check =
  | Ast_rule of (report:reporter -> source_ast -> unit)
  | Tree_rule of (files:string list -> (string * string) list)

type rule = {
  name : string;
  doc : string;
  applies : string -> bool;
  check : check;
}

exception Config_error of string

(* ------------------------------------------------------------------ *)
(* Per-directory configuration: a [.logitlint] file holds one
   directive per line, applying to the whole subtree below it.

     # comment
     disable <rule>
     disable <rule> in <basename>                                     *)

module Config = struct
  type directive = { disable : string; only_file : string option }
  type t = directive list

  let empty = []

  let parse_line ~path lnum raw =
    let line = String.trim raw in
    if line = "" || line.[0] = '#' then None
    else
      match
        String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
      with
      | [ "disable"; rule ] -> Some { disable = rule; only_file = None }
      | [ "disable"; rule; "in"; base ] ->
          Some { disable = rule; only_file = Some base }
      | _ ->
          raise
            (Config_error
               (Printf.sprintf "%s:%d: unrecognised directive %S" path lnum
                  line))

  let load path =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let out = ref [] in
          let lnum = ref 0 in
          (try
             while true do
               let raw = input_line ic in
               incr lnum;
               match parse_line ~path !lnum raw with
               | Some d -> out := d :: !out
               | None -> ()
             done
           with End_of_file -> ());
          List.rev !out)
    end

  let disables t ~rule ~path =
    let base = Filename.basename path in
    List.exists
      (fun d ->
        d.disable = rule
        && match d.only_file with None -> true | Some b -> b = base)
      t
end

(* ------------------------------------------------------------------ *)
(* Suppression comments: a finding of rule R at line L is suppressed
   when line L or line L-1 carries "lint: allow <rules>" naming R. *)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let allow_marker = "lint: allow"

let allowed_rules_of_line line =
  match find_substring line allow_marker with
  | None -> []
  | Some i ->
      let rest =
        String.sub line
          (i + String.length allow_marker)
          (String.length line - i - String.length allow_marker)
      in
      let rest =
        match find_substring rest "*)" with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      String.map (function ',' | '\t' -> ' ' | c -> c) rest
      |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           out := input_line ic :: !out
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))

let suppressed_at lines ~rule ~line =
  let covers l =
    l >= 1 && l <= Array.length lines
    && List.mem rule (allowed_rules_of_line lines.(l - 1))
  in
  covers line || covers (line - 1)

(* ------------------------------------------------------------------ *)
(* Parsing. Pparse reads the file itself, so locations carry the path
   we hand it. Parse and lex errors become "parse-error" findings —
   never suppressed: the linter cannot vouch for code it cannot read. *)

let parse_error_rule = "parse-error"

let parse_ast kind path =
  match kind with
  | Ml -> Structure (Pparse.parse_implementation ~tool_name:"logitlint" path)
  | Mli -> Signature (Pparse.parse_interface ~tool_name:"logitlint" path)

let parse_error_finding relpath exn =
  let line, col =
    match exn with
    | Syntaxerr.Error e ->
        let loc = Syntaxerr.location_of_error e in
        (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    | Lexer.Error (_, loc) ->
        (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
    | _ -> (1, 0)
  in
  {
    rule = parse_error_rule;
    file = relpath;
    line;
    col;
    message = Printexc.to_string exn;
    suppressed = false;
  }

(* ------------------------------------------------------------------ *)
(* Single-file driver (the fixture tests call this directly). *)

let kind_of_path path = if Filename.check_suffix path ".mli" then Mli else Ml

let lint_file ?(config = Config.empty) ~rules ~root ~relpath () =
  let abs = Filename.concat root relpath in
  let active =
    List.filter
      (fun r ->
        (match r.check with Ast_rule _ -> true | Tree_rule _ -> false)
        && r.applies relpath
        && not (Config.disables config ~rule:r.name ~path:relpath))
      rules
  in
  if active = [] then []
  else
    match parse_ast (kind_of_path relpath) abs with
    | exception ((Sys_error _ | Config_error _) as e) -> raise e
    | exception exn -> [ parse_error_finding relpath exn ]
    | ast ->
        let lines = read_lines abs in
        let out = ref [] in
        List.iter
          (fun r ->
            let report (loc : Location.t) message =
              let line = loc.loc_start.pos_lnum in
              let col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol in
              let suppressed = suppressed_at lines ~rule:r.name ~line in
              out :=
                { rule = r.name; file = relpath; line; col; message; suppressed }
                :: !out
            in
            match r.check with
            | Ast_rule f -> f ~report ast
            | Tree_rule _ -> ())
          active;
        List.rev !out

(* ------------------------------------------------------------------ *)
(* Tree walk and the full run. *)

let rec walk_dir root rel acc =
  let abs = if rel = "" then root else Filename.concat root rel in
  let entries = Sys.readdir abs in
  Array.sort compare entries;
  Array.fold_left
    (fun acc name ->
      if name = "" || name.[0] = '.' || name.[0] = '_' then acc
      else
        let rel' = if rel = "" then name else rel ^ "/" ^ name in
        let abs' = Filename.concat abs name in
        if Sys.is_directory abs' then walk_dir root rel' acc
        else if
          Filename.check_suffix name ".ml" || Filename.check_suffix name ".mli"
        then rel' :: acc
        else acc)
    acc entries

type result = { files : string list; findings : finding list }

let ancestors_of relpath =
  (* "lib/markov/chain.ml" -> [""; "lib"; "lib/markov"] *)
  let rec up acc dir =
    if dir = "." || dir = "" || dir = "/" then "" :: acc
    else up (dir :: acc) (Filename.dirname dir)
  in
  up [] (Filename.dirname relpath)

let compare_findings a b =
  compare (a.file, a.line, a.col, a.rule) (b.file, b.line, b.col, b.rule)

let run ~root ~dirs ~rules =
  let dirs = List.map (fun d -> if d = "." then "" else d) dirs in
  let files =
    List.concat_map
      (fun d ->
        let abs = if d = "" then root else Filename.concat root d in
        if Sys.file_exists abs && Sys.is_directory abs then walk_dir root d []
        else [])
      dirs
    |> List.sort_uniq compare
  in
  let cfg_cache : (string, Config.t) Hashtbl.t = Hashtbl.create 16 in
  let dir_config dir =
    match Hashtbl.find_opt cfg_cache dir with
    | Some c -> c
    | None ->
        let path =
          if dir = "" then Filename.concat root ".logitlint"
          else Filename.concat (Filename.concat root dir) ".logitlint"
        in
        let c = Config.load path in
        Hashtbl.add cfg_cache dir c;
        c
  in
  let config_for relpath =
    List.concat_map dir_config (ancestors_of relpath)
  in
  let per_file =
    List.concat_map
      (fun f -> lint_file ~config:(config_for f) ~rules ~root ~relpath:f ())
      files
  in
  let tree =
    List.concat_map
      (fun r ->
        match r.check with
        | Ast_rule _ -> []
        | Tree_rule g ->
            g ~files
            |> List.filter_map (fun (f, message) ->
                   if not (r.applies f) then None
                   else if
                     Config.disables (config_for f) ~rule:r.name ~path:f
                   then None
                   else
                     let abs = Filename.concat root f in
                     let suppressed =
                       Sys.file_exists abs
                       && suppressed_at (read_lines abs) ~rule:r.name ~line:1
                     in
                     Some
                       {
                         rule = r.name;
                         file = f;
                         line = 1;
                         col = 0;
                         message;
                         suppressed;
                       }))
      rules
  in
  { files; findings = List.sort compare_findings (per_file @ tree) }

let violations r = List.filter (fun f -> not f.suppressed) r.findings
let suppressed r = List.filter (fun f -> f.suppressed) r.findings

(* ------------------------------------------------------------------ *)
(* Reporters. *)

let to_text ?(show_suppressed = false) r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      if (not f.suppressed) || show_suppressed then
        Buffer.add_string buf
          (Printf.sprintf "%s:%d:%d: [%s]%s %s\n" f.file f.line f.col f.rule
             (if f.suppressed then " (suppressed)" else "")
             f.message))
    r.findings;
  Buffer.add_string buf
    (Printf.sprintf "logitlint: %d violation%s, %d suppressed, %d files scanned\n"
       (List.length (violations r))
       (if List.length (violations r) = 1 then "" else "s")
       (List.length (suppressed r))
       (List.length r.files));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~root r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"root\": \"%s\",\n  \"files_scanned\": %d,\n  \
        \"violations\": %d,\n  \"suppressed\": %d,\n  \"findings\": ["
       (json_escape root) (List.length r.files)
       (List.length (violations r))
       (List.length (suppressed r)));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \
            \"col\": %d, \"suppressed\": %b, \"message\": \"%s\"}"
           (json_escape f.rule) (json_escape f.file) f.line f.col f.suppressed
           (json_escape f.message)))
    r.findings;
  Buffer.add_string buf (if r.findings = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf
