let check_matrix name m =
  let rows = Array.length m in
  if rows = 0 then invalid_arg (name ^ ": empty matrix");
  let cols = Array.length m.(0) in
  if cols = 0 then invalid_arg (name ^ ": empty rows");
  Array.iter
    (fun row -> if Array.length row <> cols then invalid_arg (name ^ ": ragged matrix"))
    m;
  (rows, cols)

let bimatrix ~name a b =
  let ra, ca = check_matrix "Normal_form.bimatrix" a in
  let rb, cb = check_matrix "Normal_form.bimatrix" b in
  if ra <> rb || ca <> cb then invalid_arg "Normal_form.bimatrix: dimension mismatch";
  let space = Strategy_space.create [| ra; ca |] in
  Game.create ~name space (fun player idx ->
      let row = Strategy_space.player_strategy space idx 0 in
      let column = Strategy_space.player_strategy space idx 1 in
      match player with
      | 0 -> a.(row).(column)
      | 1 -> b.(row).(column)
      | _ -> invalid_arg "Normal_form: player out of range")

let symmetric ~name a =
  let rows, cols = check_matrix "Normal_form.symmetric" a in
  if rows <> cols then invalid_arg "Normal_form.symmetric: matrix must be square";
  let transposed = Array.init cols (fun i -> Array.init rows (fun j -> a.(j).(i))) in
  bimatrix ~name a transposed

let zero_sum ~name a =
  let negated = Array.map (Array.map (fun x -> -.x)) a in
  bimatrix ~name a negated
