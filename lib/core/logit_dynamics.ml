open Games

let update_distribution game ~beta ~player idx =
  if beta < 0. then invalid_arg "Logit_dynamics: beta must be non-negative";
  let space = Game.space game in
  let m = Strategy_space.num_strategies space player in
  let log_weights =
    Array.init m (fun a ->
        beta *. Game.utility game player (Strategy_space.replace space idx player a))
  in
  Prob.Logspace.normalize_logs log_weights

let transition_row game ~beta idx =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let inv_n = 1. /. float_of_int n in
  let self = ref 0. in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let sigma = update_distribution game ~beta ~player:i idx in
    let current = Strategy_space.player_strategy space idx i in
    Array.iteri
      (fun a p ->
        if a = current then self := !self +. (inv_n *. p)
        else if p > 0. then
          entries := (Strategy_space.replace space idx i a, inv_n *. p) :: !entries)
      sigma
  done;
  if !self > 0. then (idx, !self) :: !entries else !entries

let chain ?pool game ~beta =
  Markov.Chain.of_function ?pool (Game.size game) (fun idx ->
      transition_row game ~beta idx)

(* β-family build: tabulate the β-independent part of every row once —
   per (state, player, strategy) the utility, the deviation target and
   the current strategy — then re-softmax the tabulated utilities per β
   and assemble each row in [transition_row]'s exact order. The log
   weights are [beta *. u] with the very same [u] a fresh
   [update_distribution] would compute, the softmax is the same
   [normalize_logs] call, and the self-loop accumulates over players
   0..n-1 exactly as above, so every plane is bit-identical to an
   independent [chain ~beta] build (same [of_function] / [of_rows]
   pipeline downstream). *)
let chain_family ?pool game ~betas =
  if betas = [] then invalid_arg "Logit_dynamics.chain_family: empty beta grid";
  List.iter
    (fun beta ->
      if beta < 0. then invalid_arg "Logit_dynamics: beta must be non-negative")
    betas;
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let size = Game.size game in
  let offs = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offs.(i + 1) <- offs.(i) + Strategy_space.num_strategies space i
  done;
  let stride = offs.(n) in
  let utils = Array.make (size * stride) 0. in
  let targets = Array.make (size * stride) 0 in
  let currents = Array.make (size * n) 0 in
  (* Tabulation: state idx owns slices [idx*stride, (idx+1)*stride) of
     utils/targets and [idx*n, (idx+1)*n) of currents — one writer per
     cell, so the captured writes below are race-free. *)
  Exec.Pool.iter_opt ~cost:1024 pool ~n:size (fun idx ->
      for i = 0 to n - 1 do
        (* lint: allow domain-capture — currents.(idx*n+i) has exactly one writer, state idx *)
        currents.((idx * n) + i) <- Strategy_space.player_strategy space idx i;
        let o = (idx * stride) + offs.(i) in
        for a = 0 to offs.(i + 1) - offs.(i) - 1 do
          let target = Strategy_space.replace space idx i a in
          (* lint: allow domain-capture — targets.(o+a) has exactly one writer, state idx *)
          targets.(o + a) <- target;
          (* lint: allow domain-capture — utils.(o+a) has exactly one writer, state idx *)
          utils.(o + a) <- Game.utility game i target
        done
      done);
  let inv_n = 1. /. float_of_int n in
  let row_of_beta beta idx =
    let self = ref 0. in
    let entries = ref [] in
    for i = 0 to n - 1 do
      let o = (idx * stride) + offs.(i) in
      let m = offs.(i + 1) - offs.(i) in
      let log_weights = Array.init m (fun a -> beta *. utils.(o + a)) in
      let sigma = Prob.Logspace.normalize_logs log_weights in
      let current = currents.((idx * n) + i) in
      Array.iteri
        (fun a p ->
          if a = current then self := !self +. (inv_n *. p)
          else if p > 0. then entries := (targets.(o + a), inv_n *. p) :: !entries)
        sigma
    done;
    if !self > 0. then (idx, !self) :: !entries else !entries
  in
  let planes =
    List.map
      (fun beta -> Markov.Chain.of_function ?pool size (row_of_beta beta))
      betas
  in
  Markov.Family.v ~betas:(Array.of_list betas) ~planes:(Array.of_list planes)

let step rng game ~beta idx =
  let space = Game.space game in
  let player = Prob.Rng.int rng (Strategy_space.num_players space) in
  let sigma = update_distribution game ~beta ~player idx in
  let a = Prob.Rng.categorical rng sigma in
  Strategy_space.replace space idx player a

let trajectory rng game ~beta ~start ~steps =
  if steps < 0 then invalid_arg "Logit_dynamics.trajectory: negative steps";
  let out = Array.make (steps + 1) start in
  for k = 1 to steps do
    out.(k) <- step rng game ~beta out.(k - 1)
  done;
  out

let best_response_probability game ~beta idx =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let sigma = update_distribution game ~beta ~player:i idx in
    let best = Game.best_responses game i idx in
    List.iter (fun a -> acc := !acc +. sigma.(a)) best
  done;
  !acc /. float_of_int n
