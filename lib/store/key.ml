type t = { kind : string; fields : (string * string) list; digest : string }

let check_no_newline what s =
  String.iter
    (fun c ->
      if c = '\n' || c = '\r' then
        invalid_arg (Printf.sprintf "Store.Key: newline in %s %S" what s))
    s

let v ~kind fields =
  if kind = "" then invalid_arg "Store.Key: empty kind";
  check_no_newline "kind" kind;
  List.iter
    (fun (name, value) ->
      if name = "" then invalid_arg "Store.Key: empty field name";
      check_no_newline "field name" name;
      if String.contains name '=' then
        invalid_arg (Printf.sprintf "Store.Key: '=' in field name %S" name);
      check_no_newline "field value" value)
    fields;
  let buf = Buffer.create 128 in
  Buffer.add_string buf kind;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      Buffer.add_string buf value;
      Buffer.add_char buf '\n')
    fields;
  let canonical = Buffer.contents buf in
  { kind; fields; digest = Digest.to_hex (Digest.string canonical) }

let kind t = t.kind
let digest t = t.digest

let describe t =
  let buf = Buffer.create 128 in
  Buffer.add_string buf t.kind;
  Buffer.add_char buf '\n';
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      Buffer.add_string buf value;
      Buffer.add_char buf '\n')
    t.fields;
  Buffer.contents buf

let float_field x = Printf.sprintf "%h" x
