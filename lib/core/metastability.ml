let slow_partition chain pi =
  let n = Markov.Chain.size chain in
  if n < 2 then invalid_arg "Metastability: trivial chain";
  (* Deflated power iteration on A = D^{1/2} P D^{-1/2}: avoids a dense
     O(n^3) eigensolve; only the second eigenpair is needed. The
     corresponding eigenfunction of P is f = u / sqrt(pi), which has
     the same signs as u since pi > 0. *)
  let lambda2, vector =
    Linalg.Eigen.second_eigenpair_reversible
      (fun i -> Markov.Chain.row_list chain i)
      pi n
  in
  let negative = ref [] and positive = ref [] in
  for i = n - 1 downto 0 do
    if vector.(i) < 0. then negative := i :: !negative
    else positive := i :: !positive
  done;
  (!negative, !positive, lambda2)

let escape_time_scale ~lambda2 =
  if lambda2 >= 1. then invalid_arg "Metastability: lambda2 must be < 1";
  1. /. (1. -. lambda2)

let restricted_distribution pi subset =
  let mass = ref 0. in
  Array.iteri (fun i p -> if subset i then mass := !mass +. p) pi;
  if !mass <= 0. then invalid_arg "Metastability: zero-mass basin";
  Array.mapi (fun i p -> if subset i then p /. !mass else 0.) pi

let basin_tv_curve ?pool chain pi ~basin ~start ~steps =
  if steps < 0 then invalid_arg "Metastability.basin_tv_curve";
  let n = Markov.Chain.size chain in
  if Array.length pi <> n then
    invalid_arg "Metastability.basin_tv_curve: dimension mismatch";
  let restricted = restricted_distribution pi basin in
  let mu = Array.make n 0. in
  mu.(start) <- 1.;
  (* Both targets have length n (checked above), so the allocation-free
     loop can use unchecked access; the left-to-right sum matches the
     boxed [Array.iteri] accumulation it replaces. *)
  let tv target mu =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. Float.abs (Array.unsafe_get mu i -. Array.unsafe_get target i)
    done;
    0.5 *. !acc
  in
  let out = Array.make (steps + 1) (0., 0.) in
  let current = ref mu in
  let scratch = ref (Array.make n 0.) in
  for t = 0 to steps do
    out.(t) <- (tv restricted !current, tv pi !current);
    if t < steps then begin
      (* Pooled runs pull-evolve the single distribution — bit-identical
         to the serial push, so the curve is pool-independent. *)
      Markov.Chain.evolve_into ?pool chain ~src:!current ~dst:!scratch;
      let previous = !current in
      current := !scratch;
      scratch := previous
    end
  done;
  out
