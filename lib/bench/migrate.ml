let ( let* ) = Result.bind

let record ~bench ~workload ~arm ~seconds ~speedup ~correct ~quick ~jobs =
  Record.v ~bench ~workload ~arm ~seconds ~speedup ~correct ~quick ~jobs ()

(* As [record], but carrying an (optional) peak-RSS sample — the
   out-of-core snapshot's stream arm reports one. *)
let record_rss ~peak_rss_kb ~bench ~workload ~arm ~seconds ~speedup ~correct
    ~quick ~jobs =
  Record.v ?peak_rss_kb ~bench ~workload ~arm ~seconds ~speedup ~correct ~quick
    ~jobs ()

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* head = f x in
      let* tail = collect f rest in
      Ok (head @ tail)

(* BENCH_csr.json: each workload times the same kernel pre-CSR and
   CSR; both arms are serial. *)
let csr j =
  let bench = "csr_ablation" in
  let* quick = Json.bool_field "quick" j in
  let* workloads = Json.list_field "workloads" j in
  collect
    (fun w ->
      let* workload = Json.str_field "name" w in
      let* pre_csr_s = Json.num_field "pre_csr_s" w in
      let* csr_s = Json.num_field "csr_s" w in
      let* speedup = Json.num_field "speedup" w in
      let* correct = Json.bool_field "agree" w in
      let* pre =
        record ~bench ~workload ~arm:"pre_csr" ~seconds:pre_csr_s ~speedup:1.0
          ~correct ~quick ~jobs:1
      in
      let* post =
        record ~bench ~workload ~arm:"csr" ~seconds:csr_s ~speedup ~correct
          ~quick ~jobs:1
      in
      Ok [ pre; post ])
    workloads

(* BENCH_spmm.json: four mixing_time_all arms (pooled ones at the
   snapshot's jobs), plus the tv_curve push-vs-SpMM pair and the
   by_power serial-vs-pooled pair. *)
let spmm j =
  let bench = "spmm_ablation" in
  let* quick = Json.bool_field "quick" j in
  let* jobs = Json.int_field "jobs" j in
  let* workloads = Json.list_field "workloads" j in
  let* mixing =
    collect
      (fun w ->
        let* workload = Json.str_field "name" w in
        let* arm = Json.str_field "arm" w in
        let* seconds = Json.num_field "seconds" w in
        let* speedup = Json.num_field "speedup" w in
        let* correct = Json.bool_field "bit_identical" w in
        (* Arms are serial_push / pooled_pull / spmm_serial /
           spmm_pooled: pooled iff the name says so. *)
        let pooled =
          let n = String.length arm and p = String.length "pooled" in
          let rec at i = i + p <= n && (String.sub arm i p = "pooled" || at (i + 1)) in
          at 0
        in
        let arm_jobs = if pooled then jobs else 1 in
        let* r =
          record ~bench ~workload ~arm ~seconds ~speedup ~correct ~quick
            ~jobs:arm_jobs
        in
        Ok [ r ])
      workloads
  in
  let* tv = Json.member "tv_curve" j |> Option.to_result ~none:"missing field \"tv_curve\"" in
  let* push_s = Json.num_field "push_s" tv in
  let* spmm_s = Json.num_field "spmm_s" tv in
  let* tv_speedup = Json.num_field "speedup" tv in
  let* tv_correct = Json.bool_field "bit_identical" tv in
  let* tv_push =
    record ~bench ~workload:"tv_curve" ~arm:"serial_push" ~seconds:push_s
      ~speedup:1.0 ~correct:tv_correct ~quick ~jobs:1
  in
  let* tv_spmm =
    record ~bench ~workload:"tv_curve" ~arm:"spmm" ~seconds:spmm_s
      ~speedup:tv_speedup ~correct:tv_correct ~quick ~jobs:1
  in
  let* bp = Json.member "by_power" j |> Option.to_result ~none:"missing field \"by_power\"" in
  let* serial_s = Json.num_field "serial_s" bp in
  let* pooled_s = Json.num_field "pooled_s" bp in
  let* bp_speedup = Json.num_field "speedup" bp in
  let* bp_correct = Json.bool_field "bit_identical" bp in
  let* bp_serial =
    record ~bench ~workload:"by_power" ~arm:"serial" ~seconds:serial_s
      ~speedup:1.0 ~correct:bp_correct ~quick ~jobs:1
  in
  let* bp_pooled =
    record ~bench ~workload:"by_power" ~arm:"pooled" ~seconds:pooled_s
      ~speedup:bp_speedup ~correct:bp_correct ~quick ~jobs
  in
  Ok (mixing @ [ tv_push; tv_spmm; bp_serial; bp_pooled ])

(* BENCH_store.json: the cold/warm pipeline pair. The resume block
   records counts, not timings, so it has no trajectory record. *)
let store j =
  let bench = "store_ablation" in
  let* quick = Json.bool_field "quick" j in
  let* pipeline =
    Json.member "pipeline" j |> Option.to_result ~none:"missing field \"pipeline\""
  in
  let* cold_s = Json.num_field "cold_s" pipeline in
  let* warm_s = Json.num_field "warm_s" pipeline in
  let* speedup = Json.num_field "speedup" pipeline in
  let* identical =
    Json.member "identical" j |> Option.to_result ~none:"missing field \"identical\""
  in
  let* chain_ok = Json.bool_field "chain" identical in
  let* stationary_ok = Json.bool_field "stationary" identical in
  let* tv_ok = Json.bool_field "tv_curve" identical in
  let correct = chain_ok && stationary_ok && tv_ok in
  let* cold =
    record ~bench ~workload:"pipeline" ~arm:"cold" ~seconds:cold_s ~speedup:1.0
      ~correct ~quick ~jobs:1
  in
  let* warm =
    record ~bench ~workload:"pipeline" ~arm:"warm" ~seconds:warm_s ~speedup
      ~correct ~quick ~jobs:1
  in
  Ok [ cold; warm ]

(* BENCH_serve.json: the daemon load bench. Coalescing pair: 8
   same-chain mixing requests answered serially vs through one
   coalesced panel sweep. Open-loop latencies are tracked as seconds
   so the regression gate bounds p50/p99 drift like any other arm. *)
let serve j =
  let bench = "serve_ablation" in
  let* quick = Json.bool_field "quick" j in
  let* co =
    Json.member "coalescing" j
    |> Option.to_result ~none:"missing field \"coalescing\""
  in
  let* serial_s = Json.num_field "serial_s" co in
  let* coalesced_s = Json.num_field "coalesced_s" co in
  let* speedup = Json.num_field "speedup" co in
  let* correct = Json.bool_field "bit_identical" co in
  let* ol =
    Json.member "open_loop" j
    |> Option.to_result ~none:"missing field \"open_loop\""
  in
  let* p50_ms = Json.num_field "p50_ms" ol in
  let* p99_ms = Json.num_field "p99_ms" ol in
  let* serial =
    record ~bench ~workload:"coalescing_x8" ~arm:"serial" ~seconds:serial_s
      ~speedup:1.0 ~correct ~quick ~jobs:1
  in
  let* coalesced =
    record ~bench ~workload:"coalescing_x8" ~arm:"coalesced"
      ~seconds:coalesced_s ~speedup ~correct ~quick ~jobs:1
  in
  let* p50 =
    record ~bench ~workload:"open_loop" ~arm:"p50_latency"
      ~seconds:(p50_ms /. 1000.) ~speedup:1.0 ~correct ~quick ~jobs:1
  in
  let* p99 =
    record ~bench ~workload:"open_loop" ~arm:"p99_latency"
      ~seconds:(p99_ms /. 1000.) ~speedup:1.0 ~correct ~quick ~jobs:1
  in
  Ok [ serial; coalesced; p50; p99 ]

(* BENCH_ooc.json: out-of-core segment arms. One [workloads] entry per
   timed arm (pack, tv_curve over mmap/stream, serial/pooled), each
   with its own jobs count and an optional [peak_rss_kb] — the stream
   arm's memory-bound claim rides the trajectory via that field. The
   shared correctness bit is the snapshot's [equivalent]: bitwise
   equality of the out-of-core results against the in-RAM kernels. *)
let ooc j =
  let bench = "ooc_ablation" in
  let* quick = Json.bool_field "quick" j in
  let* correct = Json.bool_field "equivalent" j in
  let* workloads = Json.list_field "workloads" j in
  collect
    (fun w ->
      let* workload = Json.str_field "name" w in
      let* arm = Json.str_field "arm" w in
      let* seconds = Json.num_field "seconds" w in
      let* speedup = Json.num_field "speedup" w in
      let* jobs = Json.int_field "jobs" w in
      let* peak_rss_kb =
        match Json.member "peak_rss_kb" w with
        | None | Some Json.Null -> Ok None
        | Some _ -> Result.map Option.some (Json.int_field "peak_rss_kb" w)
      in
      let* r =
        record_rss ~peak_rss_kb ~bench ~workload ~arm ~seconds ~speedup
          ~correct ~quick ~jobs
      in
      Ok [ r ])
    workloads

(* BENCH_family.json: β-family arms. One [workloads] entry per timed
   arm (grid build per-point vs family, panel sweep sequential vs
   fused, family store cold vs warm), each with its own jobs count and
   correctness bit — per-arm bitwise equality of the family path
   against the independent per-β path. *)
let family j =
  let bench = "family_ablation" in
  let* quick = Json.bool_field "quick" j in
  let* workloads = Json.list_field "workloads" j in
  collect
    (fun w ->
      let* workload = Json.str_field "name" w in
      let* arm = Json.str_field "arm" w in
      let* seconds = Json.num_field "seconds" w in
      let* speedup = Json.num_field "speedup" w in
      let* jobs = Json.int_field "jobs" w in
      let* correct = Json.bool_field "bit_identical" w in
      let* r =
        record ~bench ~workload ~arm ~seconds ~speedup ~correct ~quick ~jobs
      in
      Ok [ r ])
    workloads

let of_legacy j =
  let* bench = Json.str_field "bench" j in
  match bench with
  | "csr_ablation" -> csr j
  | "spmm_ablation" -> spmm j
  | "store_ablation" -> store j
  | "serve_ablation" -> serve j
  | "ooc_ablation" -> ooc j
  | "family_ablation" -> family j
  | other -> Error (Printf.sprintf "unknown legacy bench kind %S" other)

let of_legacy_string s =
  let* j = Json.parse s in
  of_legacy j
