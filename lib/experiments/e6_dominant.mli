(** E6 — Theorems 4.2/4.3: beta-independent plateau for dominant-strategy games.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
