(** One point of the performance trajectory: a (bench, workload, arm)
    measurement from one run of the bench harness, plus the metadata
    needed to compare it fairly later (git revision, host, pool size,
    quick-vs-full profile).

    Records are append-only facts — the trajectory file accumulates
    them across runs — so the codec is versioned: {!schema_version} is
    written into every trajectory file and a decoder refuses files
    stamped with a *newer* version instead of silently misreading
    them. *)

type t = {
  bench : string;  (** bench family, e.g. ["spmm_ablation"] *)
  workload : string;  (** e.g. ["mixing_time_all"] *)
  arm : string;  (** e.g. ["spmm_pooled"]; the reference arm is ["serial*"] *)
  seconds : float;  (** wall-clock seconds; finite and non-negative *)
  speedup : float;  (** vs the family's serial arm; finite and positive *)
  correct : bool;  (** the run's bit-identity / agreement gate *)
  quick : bool;  (** quick profile? quick and full timings never compare *)
  jobs : int;  (** pool size of the arm (1 = serial) *)
  rev : string;  (** git revision, ["unknown"] when unavailable *)
  host : string;  (** hostname, ["unknown"] when unavailable *)
  timestamp : float;  (** unix seconds at record time; 0 when unknown *)
  peak_rss_kb : int option;
      (** peak resident set over the arm's run (kB), for memory-bound
          arms like the out-of-core stream; [None] for arms that do
          not measure it. Omitted from the JSON when [None], so
          pre-existing trajectories decode unchanged. *)
}

(** The trajectory codec version. Bump when the record shape changes
    incompatibly; {!History} writes it into the file header. *)
val schema_version : int

(** [validate t] checks the invariants the rest of the subsystem
    relies on: non-empty [bench]/[workload]/[arm], finite non-negative
    [seconds] (NaN and infinities rejected), finite positive
    [speedup], [jobs >= 1], finite non-negative [timestamp], and a
    non-negative [peak_rss_kb] when present. *)
val validate : t -> (t, string) result

(** [v ~bench ~workload ~arm ~seconds ~speedup ~correct ~quick ~jobs
    ()] builds a validated record; [rev]/[host] default to
    ["unknown"], [timestamp] to [0.], [peak_rss_kb] to [None].
    A provided [peak_rss_kb] must be non-negative. *)
val v :
  ?rev:string ->
  ?host:string ->
  ?timestamp:float ->
  ?peak_rss_kb:int ->
  bench:string ->
  workload:string ->
  arm:string ->
  seconds:float ->
  speedup:float ->
  correct:bool ->
  quick:bool ->
  jobs:int ->
  unit ->
  (t, string) result

(** [key t] is the identity the regression gate matches baseline and
    candidate records on: bench, workload, arm, quick flag and pool
    size (quick and full runs measure different problems, as do
    different pool sizes). *)
val key : t -> string

val to_json : t -> Json.t

(** [of_json j] decodes and {!validate}s one record. *)
val of_json : Json.t -> (t, string) result

val pp : Format.formatter -> t -> unit
