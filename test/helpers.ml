(* Shared test helpers. *)

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.1e)" msg expected actual tol

let check_true msg cond = Alcotest.(check bool) msg true cond
let check_false msg cond = Alcotest.(check bool) msg false cond
let check_int msg expected actual = Alcotest.(check int) msg expected actual

let check_array ?(tol = 1e-9) msg expected actual =
  check_int (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i x -> check_float ~tol (Printf.sprintf "%s[%d]" msg i) x actual.(i))
    expected

let check_raises_invalid msg f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" msg

let test name f = Alcotest.test_case name `Quick f

(* A deterministic RNG per test. *)
let rng ?(seed = 42) () = Prob.Rng.create seed

(* Random small reversible chain: a random-weight Gibbs-like chain via a
   random potential on a small cube. *)
let random_potential_game ?(players = 3) ?(strategies = 2) seed =
  let r = Prob.Rng.create seed in
  Games.Zoo.random_potential r ~players ~strategies

let qcheck t = QCheck_alcotest.to_alcotest t

(* Flat row-major Float64 panels for the SpMM kernel tests. *)
let panel_of_rows rows =
  let k = Array.length rows in
  let n = if k = 0 then 0 else Array.length rows.(0) in
  let p = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (k * n) in
  Array.iteri
    (fun r row ->
      Array.iteri (fun i x -> Bigarray.Array1.set p ((r * n) + i) x) row)
    rows;
  p

let panel_create len = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout len

(* The explicit panel annotation keeps the Bigarray read on the
   monomorphic fast path (and the bigarray-boxing lint quiet). *)
let panel_row (p : Markov.Chain.panel) ~n r =
  Array.init n (fun i -> Bigarray.Array1.get p ((r * n) + i))

(* Source vectors for the push-vs-pull kernels: a fair share of exact
   zeros exercises the zero-mass skip both kernels must agree on. *)
let random_sparse_vector r n =
  Array.init n (fun _ -> if Prob.Rng.float r < 0.4 then 0. else Prob.Rng.float r)

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  if n = 0 then true
  else begin
    let found = ref false in
    for i = 0 to h - n do
      if (not !found) && String.sub haystack i n = needle then found := true
    done;
    !found
  end
