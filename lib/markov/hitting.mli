(** Exact hitting times by linear solve.

    For a target set A, the expected hitting times h(x) = E_x[τ_A]
    solve the linear system h(x) = 0 on A and
    h(x) = 1 + Σ_y P(x,y) h(y) off A. The paper's related-work section
    contrasts mixing times with the hitting times studied by
    Asadpour–Saberi and Montanari–Saberi; this module lets experiments
    compare both quantities exactly. *)

(** [expected_times t ~target] is the vector of expected hitting times
    of [{i | target i}] from every state (0 on the target). Raises
    [Invalid_argument] if the target is empty, and [Linalg.Lu.Singular]
    if some state cannot reach the target. Dense O(size³). *)
val expected_times : Chain.t -> target:(int -> bool) -> float array

(** [expected_time t ~start ~target] is [expected_times].(start). *)
val expected_time : Chain.t -> start:int -> target:(int -> bool) -> float

(** [worst_expected_time t ~target] is the maximum over start states. *)
val worst_expected_time : Chain.t -> target:(int -> bool) -> float

(** [probabilities t ~target ~avoid] is the vector of probabilities of
    reaching [target] before [avoid] from each state (1 on the target,
    0 on [avoid]). States in both sets count as [target]. *)
val probabilities : Chain.t -> target:(int -> bool) -> avoid:(int -> bool) -> float array

(** [simulated rng t ~start ~target ~replicas ~max_steps] estimates
    the mean hitting time by simulation; censored replicas count as
    [max_steps]. Useful beyond the dense-solve size limit. *)
val simulated :
  Prob.Rng.t -> Chain.t -> start:int -> target:(int -> bool) -> replicas:int ->
  max_steps:int -> float
