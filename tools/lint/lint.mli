(** The logitlint shared core: finding/result types, per-directory
    config, suppression comments and the reporters. The two analysis
    passes — {!Syntactic} (Parsetree, one walk per file) and {!Typed}
    (.cmt Typedtree) — both funnel findings through this module, so
    rules behave identically (suppression syntax, config directives,
    report shape) whichever pass hosts them. {!Driver} composes the
    passes into a full run. *)

type finding = {
  rule : string;
  file : string;  (** path relative to the scan root, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
  suppressed : bool;
}

type reporter = Location.t -> string -> unit

(** Raised on a malformed [.logitlint] line; the CLI maps it to exit
    code 2 rather than silently ignoring configuration. *)
exception Config_error of string

module Config : sig
  type t

  val empty : t

  (** [load path] reads a [.logitlint] file ([] when absent). Lines:
      comments ([# ...]), [disable <rule>], [disable <rule> in
      <basename>]. Raises {!Config_error} on anything else. *)
  val load : string -> t

  val disables : t -> rule:string -> path:string -> bool
end

(** [config_cache root] is a memoised [relpath -> Config.t] resolver:
    the config in force for a file is the concatenation of every
    [.logitlint] on the directory path from the root down to it. Both
    passes share one resolver per run. *)
val config_cache : string -> string -> Config.t

(** [suppressed_at lines ~rule ~line] — whether line [line] or the
    line above carries a [(* lint: allow <rule> *)] annotation. *)
val suppressed_at : string array -> rule:string -> line:int -> bool

(** [allowed_rules_of_line line] — the rule names a
    ["lint: allow ..."] marker on [line] names (for tests). *)
val allowed_rules_of_line : string -> string list

(** [read_lines path] — the file's lines, for suppression lookup. *)
val read_lines : string -> string array

(** [reporter ~rule ~relpath ~lines ~into] anchors messages at source
    locations, resolves suppression against [lines], and conses the
    finding onto [into]. *)
val reporter :
  rule:string ->
  relpath:string ->
  lines:string array ->
  into:finding list ref ->
  reporter

type result = {
  files : string list;  (** every source file scanned *)
  findings : finding list;  (** both passes, sorted and deduplicated *)
  typed_files : int;  (** files the typed pass analysed *)
  typed_skipped : string list;  (** typed-applicable files with no .cmt *)
  syntactic_ms : float;  (** wall time of the syntactic pass *)
  typed_ms : float;  (** wall time of the typed pass *)
}

val compare_findings : finding -> finding -> int
val violations : result -> finding list
val suppressed : result -> finding list
val to_text : ?show_suppressed:bool -> result -> string
val to_json : root:string -> result -> string
