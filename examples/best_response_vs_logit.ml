(* Best-response dynamics (beta = infinity) versus logit dynamics.

   Three behaviours the library makes visible side by side:
   - on a potential game, BR dynamics absorbs into SOME pure Nash
     equilibrium, and which one depends on the starting point; the
     logit dynamics instead selects the risk-dominant equilibrium in
     the long run regardless of the start (Blume 93);
   - on matching pennies (no PNE), BR dynamics cycles forever while
     the logit chain is ergodic with a well-defined stationary law;
   - the absorbing-chain analysis gives the exact BR absorption
     probabilities that the simulation estimates.

   Run with: dune exec examples/best_response_vs_logit.exe *)

let () =
  let rng = Prob.Rng.create 99 in

  (* A coordination game where (1,1) is payoff-dominant-looking but
     (0,0) is risk dominant: delta0 > delta1. *)
  let game =
    Games.Coordination.to_game (Games.Coordination.of_deltas ~delta0:1.2 ~delta1:1.0)
  in
  Printf.printf "Coordination game, delta0=1.2 (risk dominant), delta1=1.0\n\n";

  (* Exact BR absorption probabilities from the off-diagonal start. *)
  let br_chain = Logit.Best_response.chain game in
  let analysis = Markov.Absorbing.analyse br_chain in
  Printf.printf "Best-response dynamics from profile (0,1):\n";
  List.iter
    (fun target ->
      Printf.printf "  P(absorbed at profile %d) = %.4f   E[steps] = %.3f\n" target
        (Markov.Absorbing.absorption_probability analysis ~start:2 ~target)
        (Markov.Absorbing.expected_absorption_time analysis 2))
    [ 0; 3 ];

  (* Simulation agrees. *)
  let hist =
    Logit.Best_response.absorption_histogram rng game ~start:2 ~replicas:2_000
      ~max_steps:1_000
  in
  Printf.printf "  simulated: %s\n\n"
    (String.concat ", "
       (List.map (fun (p, c) -> Printf.sprintf "profile %d x%d" p c) hist));

  (* The logit dynamics at growing beta forgets the start entirely and
     concentrates on the risk-dominant equilibrium. *)
  let phi = Option.get (Games.Potential.recover game) in
  Printf.printf "Logit dynamics stationary mass on the two equilibria:\n";
  List.iter
    (fun beta ->
      let pi = Logit.Gibbs.stationary (Games.Game.space game) phi ~beta in
      Printf.printf "  beta=%5.1f   pi(0,0)=%.4f   pi(1,1)=%.4f\n" beta pi.(0) pi.(3))
    [ 0.5; 1.0; 2.0; 5.0; 10.0 ];
  Printf.printf
    "  -> selection of the risk-dominant equilibrium (Blume 93), while BR\n\
    \     dynamics splits according to the basin of the start.\n\n";

  (* Matching pennies: BR cycles, logit mixes. *)
  Printf.printf "Matching pennies:\n";
  (match
     Logit.Best_response.run_until_nash rng Games.Zoo.matching_pennies ~start:0
       ~max_steps:10_000
   with
  | Some _ -> print_endline "  BR converged (unexpected!)"
  | None -> print_endline "  BR dynamics: still cycling after 10000 steps (no PNE)");
  let chain = Logit.Logit_dynamics.chain Games.Zoo.matching_pennies ~beta:2.0 in
  let pi = Markov.Stationary.by_solve chain in
  (match Markov.Mixing.mixing_time_all chain pi with
  | Some t ->
      Printf.printf
        "  logit dynamics at beta=2: ergodic, t_mix = %d, stationary = uniform\n\
        \  (by symmetry): pi = (%.3f, %.3f, %.3f, %.3f)\n"
        t pi.(0) pi.(1) pi.(2) pi.(3)
  | None -> assert false)
