(* The logitdynd server: a single-threaded select loop over a
   Unix-domain socket.

   Life of a request: bytes arrive on a client fd → the incremental
   Reader pops length-prefixed Codec frames → decode_request →
   admission control (the per-iteration queue is bounded; beyond it
   every request is rejected with the typed Overloaded, never silently
   dropped) → the whole queue goes to Scheduler.run_batch, which
   coalesces same-chain mixing work into one panel sweep → responses
   are buffered per client and flushed as fds become writable.

   Because one loop iteration reads every readable client before
   processing, requests that arrive while a batch is computing pile up
   in kernel buffers and all land in the next batch — concurrency
   converts into batch width, which is exactly the coalescing the
   panel kernel wants.

   Shutdown (stop, typically from a SIGTERM handler) is graceful by
   construction: the loop performs one final drain — read whatever the
   connected clients already sent, process it, flush every response
   with blocking writes — so in-flight pipelined requests never lose
   their responses. Only then does it close fds and unlink the
   socket. *)

module P = Protocol

type client = {
  fd : Unix.file_descr;
  reader : P.Reader.t;
  out : Buffer.t;
  mutable out_off : int;
  mutable eof : bool;  (* peer closed its write side; flush then close *)
  mutable dead : bool;  (* connection failed; reap without flushing *)
}

type counters = {
  mutable served : int;
  mutable rejected : int;
  mutable expired : int;
  mutable failed : int;
  mutable queue_peak : int;
}

type t = {
  listen_fd : Unix.file_descr;
  socket_path : string;
  engine : Engine.t;
  max_queue : int;
  max_clients : int;
  stop_flag : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  sched : Scheduler.stats;
  counters : counters;
  mutable clients : client list;
}

let default_max_queue = 1024
let default_max_clients = 64

let create ?(max_queue = default_max_queue) ?(max_clients = default_max_clients)
    ~engine ~socket_path () =
  if max_queue < 0 then invalid_arg "Server.create: negative max_queue";
  if max_clients < 1 then invalid_arg "Server.create: need max_clients >= 1";
  if String.length socket_path + 1 > 104 then
    (* sun_path is 104-108 bytes depending on the platform. *)
    invalid_arg "Server.create: socket path too long";
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock listen_fd;
  Unix.bind listen_fd (Unix.ADDR_UNIX socket_path);
  Unix.listen listen_fd 64;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    listen_fd;
    socket_path;
    engine;
    max_queue;
    max_clients;
    stop_flag = Atomic.make false;
    wake_r;
    wake_w;
    sched = Scheduler.stats_zero ();
    counters = { served = 0; rejected = 0; expired = 0; failed = 0; queue_peak = 0 };
    clients = [];
  }

let socket_path t = t.socket_path

(* Safe to call from a signal handler or another domain: one atomic
   store and one pipe write (EAGAIN on a full pipe is fine — the byte
   already in it will wake the loop). *)
let stop t =
  Atomic.set t.stop_flag true;
  (* the byte count is irrelevant: any successful write wakes the
     select loop, and a full pipe (EAGAIN) means a wake-up is already
     pending *)
  (* lint: allow unchecked-unix-result *)
  try ignore (Unix.write_substring t.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

let stats_reply t =
  let chain_cache_hits, chain_cache_misses = Engine.cache_stats t.engine in
  let store_hits, store_misses = Engine.store_stats t.engine in
  P.Stats_r
    {
      P.served = t.counters.served;
      rejected = t.counters.rejected;
      expired = t.counters.expired;
      failed = t.counters.failed;
      batches = t.sched.Scheduler.batches;
      max_batch = t.sched.Scheduler.max_batch;
      panel_steps = t.sched.Scheduler.panel_steps;
      queue_peak = t.counters.queue_peak;
      chain_cache_hits;
      chain_cache_misses;
      store_hits;
      store_misses;
    }

let respond c resp = P.write_framed c.out (P.encode_response resp)

(* --- the read side ---------------------------------------------------- *)

let accept_pass t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if List.length t.clients >= t.max_clients then
          (* shedding an over-capacity connection must never kill the
             accept loop: close itself can raise (EINTR, or ECONNRESET
             from a peer that already hung up) *)
          try Unix.close fd with Unix.Unix_error _ -> ()
        else begin
          Unix.set_nonblock fd;
          t.clients <-
            {
              fd;
              reader = P.Reader.create ();
              out = Buffer.create 4096;
              out_off = 0;
              eof = false;
              dead = false;
            }
            :: t.clients
        end;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let read_buf = Bytes.create 65536

(* Pull every complete frame out of [c], admitting jobs into [queue]
   (bounded by max_queue) and answering Stats / Overloaded / protocol
   errors immediately. *)
let harvest_frames t c queue =
  let rec go () =
    match P.Reader.next c.reader with
    | Error _ ->
        (* Unrecoverable framing corruption: tell the client once and
           stop reading it. *)
        respond c { P.req_id = 0; result = Error (P.Bad_request "corrupt frame") };
        t.counters.failed <- t.counters.failed + 1;
        c.eof <- true
    | Ok None -> ()
    | Ok (Some frame) ->
        (match P.decode_request frame with
        | Error msg ->
            respond c { P.req_id = 0; result = Error (P.Bad_request msg) };
            t.counters.failed <- t.counters.failed + 1
        | Ok req -> (
            match req.P.query with
            | P.Stats ->
                (* Counters are cheap and must not sit behind a heavy
                   batch: answered at read time. *)
                respond c { P.req_id = req.P.id; result = Ok (stats_reply t) }
            | query ->
                if Queue.length queue >= t.max_queue then begin
                  respond c { P.req_id = req.P.id; result = Error P.Overloaded };
                  t.counters.rejected <- t.counters.rejected + 1
                end
                else begin
                  let deadline_ns =
                    Option.map
                      (fun ms ->
                        Int64.add
                          (Common.Clock.monotonic_ns ())
                          (Int64.mul (Int64.of_int ms) 1_000_000L))
                      req.P.deadline_ms
                  in
                  Queue.add
                    { Scheduler.tag = c; req_id = req.P.id; deadline_ns; query }
                    queue
                end));
        go ()
  in
  go ()

let read_pass t c queue =
  let rec go () =
    match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> c.eof <- true
    | n ->
        P.Reader.feed c.reader read_buf ~len:n;
        harvest_frames t c queue;
        if not c.eof then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> c.dead <- true
  in
  if not (c.eof || c.dead) then go ()

(* --- the write side --------------------------------------------------- *)

let pending_out c = Buffer.length c.out - c.out_off

let write_pass c =
  let rec go () =
    let n = pending_out c in
    if n > 0 then begin
      match
        Unix.write_substring c.fd (Buffer.contents c.out) c.out_off n
      with
      | written ->
          c.out_off <- c.out_off + written;
          if pending_out c = 0 then begin
            Buffer.clear c.out;
            c.out_off <- 0
          end
          else if written > 0 then go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> c.dead <- true
    end
  in
  if not c.dead then go ()

(* --- batch processing -------------------------------------------------- *)

let process_queue t queue =
  let depth = Queue.length queue in
  if depth > t.counters.queue_peak then t.counters.queue_peak <- depth;
  if depth > 0 then begin
    let jobs = List.of_seq (Queue.to_seq queue) in
    Queue.clear queue;
    List.iter
      (fun ((job : client Scheduler.job), outcome) ->
        (match outcome with
        | Ok _ -> t.counters.served <- t.counters.served + 1
        | Error P.Deadline_exceeded -> t.counters.expired <- t.counters.expired + 1
        | Error P.Overloaded -> t.counters.rejected <- t.counters.rejected + 1
        | Error (P.Bad_request _ | P.Server_error _) ->
            t.counters.failed <- t.counters.failed + 1);
        let c = job.Scheduler.tag in
        if not c.dead then
          respond c { P.req_id = job.Scheduler.req_id; result = outcome })
      (Scheduler.run_batch t.engine t.sched jobs)
  end

let reap t =
  List.iter
    (fun c ->
      if c.dead || (c.eof && pending_out c = 0) then begin
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        c.dead <- true
      end)
    t.clients;
  t.clients <- List.filter (fun c -> not c.dead) t.clients

(* --- shutdown drain ---------------------------------------------------- *)

let flush_blocking c =
  if not c.dead then begin
    (try Unix.clear_nonblock c.fd with Unix.Unix_error _ -> ());
    let rec go () =
      if pending_out c > 0 then begin
        match
          Unix.write_substring c.fd (Buffer.contents c.out) c.out_off
            (pending_out c)
        with
        | written ->
            c.out_off <- c.out_off + written;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (_, _, _) -> c.dead <- true
      end
    in
    go ()
  end

let drain t =
  (* Admit the backlog first: a client whose connect already succeeded
     is in-flight even if this loop never accepted it — closing the
     listen fd now would reset it and drop its pipelined requests. *)
  accept_pass t;
  (* Then stop accepting: the socket disappears from the filesystem,
     so new connections fail fast while the drain runs. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ());
  let queue = Queue.create () in
  (* One final nonblocking read pass: whatever a connected client had
     already written (pipelined requests included) is admitted. *)
  List.iter (fun c -> read_pass t c queue) t.clients;
  process_queue t queue;
  List.iter flush_blocking t.clients;
  List.iter
    (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
    t.clients;
  t.clients <- [];
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()

(* --- the loop ----------------------------------------------------------- *)

let drain_wake t =
  let b = Bytes.create 64 in
  let rec go () =
    match Unix.read t.wake_r b 0 64 with
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

let serve_forever t =
  let queue = Queue.create () in
  let rec loop () =
    if Atomic.get t.stop_flag then drain t
    else begin
      let readers =
        t.listen_fd :: t.wake_r
        :: List.filter_map
             (fun c -> if c.eof || c.dead then None else Some c.fd)
             t.clients
      in
      let writers =
        List.filter_map
          (fun c -> if (not c.dead) && pending_out c > 0 then Some c.fd else None)
          t.clients
      in
      match Unix.select readers writers [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, writable, _ ->
          if List.memq t.wake_r readable then drain_wake t;
          if Atomic.get t.stop_flag then drain t
          else begin
            if List.memq t.listen_fd readable then accept_pass t;
            List.iter
              (fun c -> if List.memq c.fd readable then read_pass t c queue)
              t.clients;
            process_queue t queue;
            List.iter
              (fun c ->
                if List.memq c.fd writable || pending_out c > 0 then write_pass c)
              t.clients;
            reap t;
            loop ()
          end
    end
  in
  loop ()
