(** Distribution evolution over an on-disk {!Segment}.

    Presents the same [evolve_into] / [evolve_many_into] contract as
    {!Markov.Chain}, streaming the matrix block by block instead of
    holding it in RAM. The gathers replay the in-RAM pull kernels
    exactly — ascending sources per destination, the same
    [mass > 0.] skip, the same register accumulation — so results
    are bit-identical to [Chain.evolve_into] on the same chain,
    serial or pooled, mmap or stream.

    Pooled runs shard the block table across domains. Blocks own
    disjoint column ranges, so every destination entry has exactly
    one writer and no synchronisation is needed; [~cost] is the
    average block nnz, which routes small segments down
    {!Exec.Pool}'s serial cutover. *)

type t

(** [of_segment seg] wraps an already-open segment. The wrapper does
    not own [seg]'s lifetime beyond {!close}. *)
val of_segment : Segment.t -> t

(** [open_ ?access path] opens a segment file for evolution;
    see {!Segment.open_} for validation and failure modes. *)
val open_ : ?access:Segment.access -> string -> (t, string) result

val close : t -> unit
val segment : t -> Segment.t
val size : t -> int
val nnz : t -> int

(** [evolve_into ?pool t ~src ~dst] writes one transition step of
    [src] into [dst], streaming blocks from disk. Same contract and
    bit-exact results as {!Markov.Chain.evolve_into}. *)
val evolve_into : ?pool:Exec.Pool.t -> t -> src:float array -> dst:float array -> unit

(** [evolve_many_into ?pool t ~k ~src ~dst] advances [k] row-major
    distributions one step; each panel row matches a
    single-distribution {!evolve_into} bit for bit. Same contract as
    {!Markov.Chain.evolve_many_into}. *)
val evolve_many_into :
  ?pool:Exec.Pool.t -> t -> k:int -> src:Markov.Chain.panel -> dst:Markov.Chain.panel -> unit

(** [kernel t] packages the two evolves as a {!Markov.Kernel.t}, the
    hand-off that lets {!Markov.Mixing.tv_curve_kernel},
    {!Markov.Mixing.mixing_time_kernel} and
    {!Markov.Stationary.by_power_kernel} run unchanged over an
    on-disk chain. *)
val kernel : t -> Markov.Kernel.t
