let empty n = Graph.create n

let clique n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges n !edges

let path n =
  Graph.of_edges n (List.init (Int.max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Generators.ring: need at least 3 vertices";
  Graph.of_edges n (List.init n (fun i -> (i, (i + 1) mod n)))

let star n =
  if n < 1 then invalid_arg "Generators.star: need at least 1 vertex";
  Graph.of_edges n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Generators.grid: negative dimension";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges (rows * cols) !edges

let torus rows cols =
  if rows < 3 || cols < 3 then
    invalid_arg "Generators.torus: need at least 3 rows and 3 columns";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (idx r c, idx r ((c + 1) mod cols)) :: !edges;
      edges := (idx r c, idx ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.of_edges (rows * cols) !edges

let complete_bipartite a b =
  if a < 0 || b < 0 then invalid_arg "Generators.complete_bipartite: negative side";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges (a + b) !edges

let binary_tree n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    if (2 * i) + 1 < n then edges := (i, (2 * i) + 1) :: !edges;
    if (2 * i) + 2 < n then edges := (i, (2 * i) + 2) :: !edges
  done;
  Graph.of_edges n !edges

let erdos_renyi rng n p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prob.Rng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges n !edges

let random_regular rng n d =
  if d < 0 || d >= n then invalid_arg "Generators.random_regular: need 0 <= d < n";
  if n * d mod 2 <> 0 then invalid_arg "Generators.random_regular: n*d must be even";
  if d = 0 then Graph.create n
  else begin
    (* Pairing model: shuffle n*d half-edge stubs, pair them up, and
       restart whenever the pairing creates a loop or multi-edge. *)
    let stubs = Array.init (n * d) (fun i -> i / d) in
    let rec attempt remaining =
      if remaining = 0 then
        Common.no_convergence "Generators.random_regular: too many restarts"
      else begin
        Prob.Rng.shuffle rng stubs;
        let seen = Hashtbl.create (n * d) in
        let ok = ref true in
        let edges = ref [] in
        let k = ref 0 in
        while !ok && !k < Array.length stubs do
          let u = stubs.(!k) and v = stubs.(!k + 1) in
          let key = (Int.min u v, Int.max u v) in
          if u = v || Hashtbl.mem seen key then ok := false
          else begin
            Hashtbl.add seen key ();
            edges := (u, v) :: !edges;
            k := !k + 2
          end
        done;
        if !ok then Graph.of_edges n !edges else attempt (remaining - 1)
      end
    in
    attempt 10_000
  end
