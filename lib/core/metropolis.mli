(** Metropolis dynamics — the classical alternative to the logit
    (heat-bath) update rule.

    The selected player proposes a uniformly random {e other} strategy
    and accepts it with probability min(1, e^{β·Δu}). For potential games
    the chain is reversible with the {e same} Gibbs stationary
    distribution as the logit dynamics, but the kernels differ: by
    Peskun's ordering the Metropolis chain dominates the heat-bath
    chain off the diagonal for two-strategy fibers, so its relaxation
    time is at most the logit one's (and at least half of it).
    Experiment X10 measures the actual ratio across games and β. *)

(** [update_distribution game ~beta ~player idx] is the distribution
    of [player]'s next strategy (including staying put via rejection). *)
val update_distribution : Games.Game.t -> beta:float -> player:int -> int -> float array

(** [transition_row game ~beta idx], [chain game ~beta], [step rng
    game ~beta idx], [trajectory ...]: exactly parallel to
    {!Logit_dynamics}. *)
val transition_row : Games.Game.t -> beta:float -> int -> (int * float) list

val chain : Games.Game.t -> beta:float -> Markov.Chain.t
val step : Prob.Rng.t -> Games.Game.t -> beta:float -> int -> int

val trajectory :
  Prob.Rng.t -> Games.Game.t -> beta:float -> start:int -> steps:int -> int array
