(** Graphical coordination games (paper, Section 5).

    Each vertex of a social graph G is a player with strategies
    {0, 1}; she plays the basic 2×2 coordination game with every
    neighbour and collects the sum of the payoffs. The game is an
    exact potential game whose potential is the sum over edges of the
    basic game's potential: Φ(x) = Σ_{(u,v) ∈ E} φ(x_u, x_v). *)

type t

(** [create graph basic] is the graphical coordination game of [basic]
    played on [graph]. *)
val create : Graphs.Graph.t -> Coordination.t -> t

(** [graph t], [basic t]: the components. *)
val graph : t -> Graphs.Graph.t

val basic : t -> Coordination.t

(** [to_game t] is the n-player strategic game (n = vertices of the
    graph), with tabulated utilities when the profile space is small
    enough ([size <= 1 lsl 22]). *)
val to_game : t -> Game.t

(** [potential t idx] is Φ at the profile with index [idx]. *)
val potential : t -> int -> float

(** [space t] is the binary profile space of the game. *)
val space : t -> Strategy_space.t

(** [all_zero t] and [all_one t] are the indices of the consensus
    profiles 0…0 and 1…1 (the pure Nash equilibria when the graph has
    at least one edge). *)
val all_zero : t -> int

val all_one : t -> int

(** [ising ~beta_is_half_delta:δ graph] is the special case δ₀ = δ₁ = δ
    with zero off-diagonal payoffs — the Ising model on [graph] with
    coupling δ/2 (no external field), for which the Glauber dynamics
    coincides with the logit dynamics. *)
val ising : delta:float -> Graphs.Graph.t -> t

(** Closed-form potential for the {b clique} (paper, Section 5.2):
    [clique_potential ~n ~delta0 ~delta1 k] is Φ of any profile with
    [k] players playing 1 on K_n. *)
val clique_potential : n:int -> delta0:float -> delta1:float -> int -> float

(** [clique_kstar ~n ~delta0 ~delta1] is k*, the number of 1-players
    maximising the clique potential: the integer in [0..n] closest to
    ⌊(n-1)·δ₀/(δ₀+δ₁) + 1/2⌋ that maximises [clique_potential]. *)
val clique_kstar : n:int -> delta0:float -> delta1:float -> int
