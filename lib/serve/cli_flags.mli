(** Conflict checking for the store-related command-line flags.

    Duplicated or contradictory flags used to resolve silently
    (cmdliner's plain [opt] keeps the last [--store]; [--store] next to
    [--no-cache] kept whichever branch the code read first). Both are
    now hard usage errors: the binaries collect every occurrence and
    feed them through {!resolve_store}, turning [Error] into a usage
    message on stderr and exit code 2. *)

type store_choice = {
  dir : string option;  (** explicit store directory, if one was given *)
  no_cache : bool;  (** [true] iff [--no-cache] was passed *)
}

(** [resolve_store ~stores ~no_cache_count] resolves every [--store]
    occurrence (in order) and the number of [--no-cache] occurrences
    into a single choice. [Error] with a usage message when [--store]
    is repeated, [--no-cache] is repeated, or the two are combined. *)
val resolve_store :
  stores:string list -> no_cache_count:int -> (store_choice, string) result

(** Resolution of [--beta] vs [--betas LO:HI:STEP]. *)
type beta_choice =
  | Beta_single of float  (** one grid point (historical behaviour) *)
  | Beta_grid of float list  (** an inclusive LO:HI:STEP grid, in order *)

(** [resolve_betas ~beta ~betas] resolves the two flags: both given is
    a conflict ([Error], exit 2 in the binaries), neither defaults to
    the historical [Beta_single 1.0], and a [--betas LO:HI:STEP] spec
    parses to the inclusive grid [lo, lo+step, …, hi] (endpoint
    included up to a tiny representation slack). Grid points are
    computed as [lo +. i *. step], so each one carries exactly the β
    bits a separate [--beta] invocation at that value would. [Error]
    on a malformed spec, [lo < 0], [step <= 0] or [hi < lo]. *)
val resolve_betas :
  beta:float option -> betas:string option -> (beta_choice, string) result
