open Helpers
open Linalg

(* ----- Vec ----- *)

let vec_basic () =
  let v = Vec.init 4 float_of_int in
  check_int "dim" 4 (Vec.dim v);
  check_float "sum" 6. (Vec.sum v);
  check_float "norm1" 6. (Vec.norm1 v);
  check_float "norm_inf" 3. (Vec.norm_inf v);
  check_float "norm2" (sqrt 14.) (Vec.norm2 v);
  check_int "max_index" 3 (Vec.max_index v);
  check_int "min_index" 0 (Vec.min_index v)

let vec_arith () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  check_array "add" [| 5.; 7.; 9. |] (Vec.add x y);
  check_array "sub" [| -3.; -3.; -3. |] (Vec.sub x y);
  check_array "scale" [| 2.; 4.; 6. |] (Vec.scale 2. x);
  check_float "dot" 32. (Vec.dot x y);
  let z = Vec.copy y in
  Vec.axpy ~alpha:2. x z;
  check_array "axpy" [| 6.; 9.; 12. |] z

let vec_normalize () =
  check_array "normalize" [| 0.25; 0.75 |] (Vec.normalize_l1 [| 1.; 3. |]);
  check_raises_invalid "zero mass" (fun () -> Vec.normalize_l1 [| 0.; 0. |]);
  check_raises_invalid "dim mismatch" (fun () -> Vec.add [| 1. |] [| 1.; 2. |])

let vec_approx () =
  check_true "close" (Vec.approx_equal ~tol:1e-6 [| 1.; 2. |] [| 1.; 2. +. 1e-7 |]);
  check_false "far" (Vec.approx_equal ~tol:1e-9 [| 1. |] [| 1.001 |]);
  check_false "length" (Vec.approx_equal [| 1. |] [| 1.; 2. |])

(* ----- Mat ----- *)

let mat_basic () =
  let m = Mat.init 2 3 (fun i j -> float_of_int ((3 * i) + j)) in
  check_int "rows" 2 (fst (Mat.dims m));
  check_int "cols" 3 (snd (Mat.dims m));
  check_float "get" 5. (Mat.get m 1 2);
  check_array "row" [| 3.; 4.; 5. |] (Mat.row m 1);
  check_array "col" [| 2.; 5. |] (Mat.col m 2);
  let mt = Mat.transpose m in
  check_int "t rows" 3 (fst (Mat.dims mt));
  check_float "t get" 5. (Mat.get mt 2 1)

let mat_mul () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Mat.mul a b in
  check_array "mul row0" [| 19.; 22. |] (Mat.row c 0);
  check_array "mul row1" [| 43.; 50. |] (Mat.row c 1);
  check_array "mulv" [| 5.; 11. |] (Mat.mulv a [| 1.; 2. |]);
  check_array "vmul" [| 7.; 10. |] (Mat.vmul [| 1.; 2. |] a)

let mat_pow () =
  let a = Mat.of_rows [| [| 1.; 1. |]; [| 0.; 1. |] |] in
  let a5 = Mat.pow a 5 in
  check_float "pow upper" 5. (Mat.get a5 0 1);
  check_true "pow 0 = I" (Mat.approx_equal (Mat.pow a 0) (Mat.identity 2));
  check_raises_invalid "neg pow" (fun () -> Mat.pow a (-1))

let mat_props () =
  let sym = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  check_true "symmetric" (Mat.is_symmetric sym);
  check_float "trace" 5. (Mat.trace sym);
  let asym = Mat.of_rows [| [| 2.; 1. |]; [| 0.; 3. |] |] in
  check_false "not symmetric" (Mat.is_symmetric asym);
  let i, j, v = Mat.max_abs_offdiag (Mat.of_rows [| [| 0.; -5. |]; [| 2.; 0. |] |]) in
  check_int "offdiag i" 0 i;
  check_int "offdiag j" 1 j;
  check_float "offdiag v" 5. v

let mat_invalid () =
  check_raises_invalid "ragged" (fun () -> Mat.of_rows [| [| 1. |]; [| 1.; 2. |] |]);
  check_raises_invalid "empty" (fun () -> Mat.of_rows [||]);
  check_raises_invalid "mul dims" (fun () ->
      Mat.mul (Mat.create 2 3 0.) (Mat.create 2 3 0.))

(* ----- Lu ----- *)

let lu_solve () =
  let a = Mat.of_rows [| [| 4.; 3. |]; [| 6.; 3. |] |] in
  let x = Lu.solve a [| 10.; 12. |] in
  check_array ~tol:1e-12 "solve" [| 1.; 2. |] x

let lu_solve_bigger () =
  (* Random well-conditioned system: check A x = b. *)
  let r = rng () in
  let n = 12 in
  let a = Mat.init n n (fun i j -> Prob.Rng.float r +. if i = j then 5. else 0.) in
  let b = Array.init n (fun i -> float_of_int i) in
  let x = Lu.solve a b in
  let back = Mat.mulv a x in
  check_array ~tol:1e-9 "Ax=b" b back

let lu_determinant () =
  check_float "det" (-2.)
    (Lu.determinant (Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |]));
  check_float "det singular" 0.
    (Lu.determinant (Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |]));
  check_float "det identity" 1. (Lu.determinant (Mat.identity 5))

let lu_inverse () =
  let a = Mat.of_rows [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Lu.inverse a in
  check_true "A * A^-1 = I"
    (Mat.approx_equal ~tol:1e-12 (Mat.mul a inv) (Mat.identity 2))

let lu_singular () =
  match Lu.solve (Mat.of_rows [| [| 1.; 1. |]; [| 1.; 1. |] |]) [| 1.; 2. |] with
  | exception Lu.Singular -> ()
  | _ -> Alcotest.fail "expected Singular"

(* ----- Eigen ----- *)

let jacobi_known () =
  (* [[2,1],[1,2]] has eigenvalues 3 and 1. *)
  let values, vectors = Eigen.jacobi (Mat.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |]) in
  check_array ~tol:1e-10 "values" [| 3.; 1. |] values;
  (* Eigenvector for 3 is (1,1)/sqrt 2 up to sign. *)
  let v0 = Mat.col vectors 0 in
  check_float ~tol:1e-10 "vector ratio" 1. (v0.(0) /. v0.(1))

let jacobi_diag () =
  let values = Eigen.eigenvalues (Mat.of_rows [| [| 5.; 0. |]; [| 0.; -2. |] |]) in
  check_array "diag" [| 5.; -2. |] values

let jacobi_reconstruction () =
  (* A = V diag(values) V^T for a random symmetric matrix. *)
  let r = rng ~seed:3 () in
  let n = 8 in
  let m0 = Mat.init n n (fun _ _ -> Prob.Rng.float r -. 0.5) in
  let a = Mat.scale 0.5 (Mat.add m0 (Mat.transpose m0)) in
  let values, v = Eigen.jacobi a in
  let d = Mat.init n n (fun i j -> if i = j then values.(i) else 0.) in
  let rebuilt = Mat.mul (Mat.mul v d) (Mat.transpose v) in
  check_true "V D V^T = A" (Mat.approx_equal ~tol:1e-8 rebuilt a)

let jacobi_orthogonal () =
  let r = rng ~seed:4 () in
  let n = 6 in
  let m0 = Mat.init n n (fun _ _ -> Prob.Rng.float r) in
  let a = Mat.scale 0.5 (Mat.add m0 (Mat.transpose m0)) in
  let _, v = Eigen.jacobi a in
  check_true "V^T V = I"
    (Mat.approx_equal ~tol:1e-9 (Mat.mul (Mat.transpose v) v) (Mat.identity n))

let jacobi_rejects_asymmetric () =
  check_raises_invalid "asymmetric" (fun () ->
      Eigen.jacobi (Mat.of_rows [| [| 1.; 2. |]; [| 0.; 1. |] |]))

let power_iteration_basic () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let lambda, v = Eigen.power_iteration (Mat.mulv a) 2 in
  check_float ~tol:1e-9 "dominant" 3. lambda;
  check_float ~tol:1e-6 "eigvec" 1. (Float.abs (v.(0) /. v.(1)))

let second_eigenvalue_two_state () =
  (* Two-state chain p=0.3, q=0.2: lambda_2 = 1 - p - q = 0.5. *)
  let rows i = if i = 0 then [ (0, 0.7); (1, 0.3) ] else [ (0, 0.2); (1, 0.8) ] in
  let pi = [| 0.4; 0.6 |] in
  let lambda = Eigen.second_eigenvalue_reversible rows pi 2 in
  check_float ~tol:1e-9 "lambda2" 0.5 lambda

let general_rotation () =
  let t = 1.1 in
  let spec =
    Eigen.general_spectrum
      (Mat.of_rows [| [| cos t; -.sin t |]; [| sin t; cos t |] |])
  in
  check_float ~tol:1e-10 "re" (cos t) (fst spec.(0));
  check_float ~tol:1e-10 "im" (sin t) (Float.abs (snd spec.(0)))

let general_matches_jacobi () =
  let r = rng ~seed:5 () in
  let n = 7 in
  let m0 = Mat.init n n (fun _ _ -> Prob.Rng.float r) in
  let a = Mat.scale 0.5 (Mat.add m0 (Mat.transpose m0)) in
  let jac = Eigen.eigenvalues a in
  let gen = Eigen.general_spectrum a in
  Array.iteri
    (fun i v ->
      check_float ~tol:1e-8 (Printf.sprintf "lambda %d" i) v (fst gen.(i));
      check_float ~tol:1e-8 "imag zero" 0. (snd gen.(i)))
    jac

let general_companion () =
  (* Companion matrix of z^4 = 1: fourth roots of unity. *)
  let c =
    Mat.of_rows
      [|
        [| 0.; 0.; 0.; 1. |];
        [| 1.; 0.; 0.; 0. |];
        [| 0.; 1.; 0.; 0. |];
        [| 0.; 0.; 1.; 0. |];
      |]
  in
  let spec = Eigen.general_spectrum c in
  (* Sorted by re desc: 1, +-i, -1. *)
  check_float ~tol:1e-9 "root 1" 1. (fst spec.(0));
  check_float ~tol:1e-9 "root i re" 0. (fst spec.(1));
  check_float ~tol:1e-9 "root i im" 1. (Float.abs (snd spec.(1)));
  check_float ~tol:1e-9 "root -1" (-1.) (fst spec.(3))

let general_trace_sum =
  QCheck.Test.make ~name:"general_spectrum: eigenvalue sum = trace" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let n = 2 + Prob.Rng.int r 5 in
      let a = Mat.init n n (fun _ _ -> Prob.Rng.float r -. 0.5) in
      let spec = Eigen.general_spectrum a in
      let sum_re = Array.fold_left (fun acc (re, _) -> acc +. re) 0. spec in
      let sum_im = Array.fold_left (fun acc (_, im) -> acc +. im) 0. spec in
      Float.abs (sum_re -. Mat.trace a) < 1e-6 && Float.abs sum_im < 1e-6)

let lu_det_product =
  QCheck.Test.make ~name:"det(AB) = det(A)det(B)" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let n = 2 + Prob.Rng.int r 4 in
      let a = Mat.init n n (fun _ _ -> Prob.Rng.float r -. 0.5) in
      let b = Mat.init n n (fun _ _ -> Prob.Rng.float r -. 0.5) in
      let lhs = Lu.determinant (Mat.mul a b) in
      let rhs = Lu.determinant a *. Lu.determinant b in
      Float.abs (lhs -. rhs) <= 1e-6 *. (1. +. Float.abs rhs))

let suites =
  [
    ( "linalg.vec",
      [
        test "basics" vec_basic;
        test "arithmetic" vec_arith;
        test "normalize & errors" vec_normalize;
        test "approx_equal" vec_approx;
      ] );
    ( "linalg.mat",
      [
        test "basics" mat_basic;
        test "multiplication" mat_mul;
        test "power" mat_pow;
        test "properties" mat_props;
        test "invalid input" mat_invalid;
      ] );
    ( "linalg.lu",
      [
        test "solve 2x2" lu_solve;
        test "solve 12x12" lu_solve_bigger;
        test "determinant" lu_determinant;
        test "inverse" lu_inverse;
        test "singular" lu_singular;
        qcheck lu_det_product;
      ] );
    ( "linalg.eigen",
      [
        test "jacobi known" jacobi_known;
        test "jacobi diagonal" jacobi_diag;
        test "jacobi reconstruction" jacobi_reconstruction;
        test "jacobi orthogonality" jacobi_orthogonal;
        test "jacobi rejects asymmetric" jacobi_rejects_asymmetric;
        test "power iteration" power_iteration_basic;
        test "second eigenvalue 2-state" second_eigenvalue_two_state;
        test "general: rotation" general_rotation;
        test "general vs jacobi" general_matches_jacobi;
        test "general: companion" general_companion;
        qcheck general_trace_sum;
      ] );
  ]
