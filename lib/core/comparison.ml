open Games

let bit_fixing_family space ~order =
  let n = Strategy_space.num_players space in
  if Array.length order <> n then
    invalid_arg "Comparison.bit_fixing_family: order length mismatch";
  fun x y ->
    if x = y then []
    else begin
      let path = ref [] in
      let current = ref x in
      Array.iter
        (fun i ->
          let target = Strategy_space.player_strategy space y i in
          if Strategy_space.player_strategy space !current i <> target then begin
            let next = Strategy_space.replace space !current i target in
            path := (!current, next) :: !path;
            current := next
          end)
        order;
      List.rev !path
    end

let lemma54_congestion desc ~beta ~order =
  let game = Graphical.to_game desc in
  let space = Game.space game in
  let chain = Logit_dynamics.chain game ~beta in
  let pi = Gibbs.stationary space (Graphical.potential desc) ~beta in
  let rho = Markov.Paths.congestion chain pi (bit_fixing_family space ~order) in
  let n = Strategy_space.num_players space in
  let chi = Graphs.Cutwidth.of_ordering (Graphical.graph desc) order in
  let basic = Graphical.basic desc in
  let d0 = Coordination.delta0 basic and d1 = Coordination.delta1 basic in
  let bound =
    2. *. float_of_int (n * n) *. exp (float_of_int chi *. (d0 +. d1) *. beta)
  in
  (rho, bound)

let fiber_minimizer game phi idx player =
  let space = Game.space game in
  let m = Strategy_space.num_strategies space player in
  let best = ref (Strategy_space.replace space idx player 0) in
  for a = 1 to m - 1 do
    let candidate = Strategy_space.replace space idx player a in
    if phi candidate < phi !best then best := candidate
  done;
  !best

let differing_player space x y =
  let n = Strategy_space.num_players space in
  let found = ref None in
  for i = 0 to n - 1 do
    if Strategy_space.player_strategy space x i <> Strategy_space.player_strategy space y i
    then
      match !found with
      | None -> found := Some i
      | Some _ -> invalid_arg "Comparison: pair differs in more than one player"
  done;
  match !found with
  | Some i -> i
  | None -> invalid_arg "Comparison: pair does not differ"

let admissible_detour_family game phi =
  let space = Game.space game in
  fun x y ->
    if x = y then []
    else begin
      let player = differing_player space x y in
      let z = fiber_minimizer game phi x player in
      if z = x || z = y then [ (x, y) ]
      else [ (x, z); (z, y) ]
    end

let lemma33_comparison game phi ~beta =
  let space = Game.space game in
  let chain = Logit_dynamics.chain game ~beta in
  let pi = Gibbs.stationary space phi ~beta in
  let reference_chain = Logit_dynamics.chain game ~beta:0. in
  let reference_pi =
    Array.make (Game.size game) (1. /. float_of_int (Game.size game))
  in
  let alpha, gamma =
    Markov.Paths.comparison_congestion chain pi
      ~reference:(reference_chain, reference_pi)
      (admissible_detour_family game phi)
  in
  (* Exact relaxation time of M^0 (Lemma 3.2 bounds it by n; the true
     value is what the comparison actually transfers). *)
  let trel0 = Markov.Spectral.relaxation_time reference_chain reference_pi in
  let n = Game.num_players game and m = Game.max_strategies game in
  let closed_form =
    Bounds.lemma33_trel_upper ~n ~m ~beta
      ~delta_phi:(Potential.delta_global space phi)
  in
  (alpha, gamma, alpha *. gamma *. trel0, closed_form)
