(** Numerically stable computations with log-domain quantities.

    The logit update rule and the Gibbs measure exponentiate
    [β · potential] values; for large β these overflow [float]
    immediately, so every normalisation in the library is performed in
    the log domain through this module. *)

(** [logsumexp xs] is [log (Σ_i exp xs.(i))], computed stably by
    factoring out the maximum. Returns [neg_infinity] on an empty
    array or when all entries are [neg_infinity]. *)
val logsumexp : float array -> float

(** [logsumexp2 a b] is [log (exp a + exp b)] computed stably.
    Like {!logsumexp}, an infinite argument yields [infinity] (rather
    than the NaN of the naive [inf -. inf]). *)
val logsumexp2 : float -> float -> float

(** [normalize_logs xs] maps log-weights to a probability vector:
    entry [i] becomes [exp (xs.(i) - logsumexp xs)]. All-[-inf] input
    raises [Invalid_argument]. *)
val normalize_logs : float array -> float array

(** [log1mexp x] is [log (1 - exp x)] for [x < 0], computed stably
    (switches between [log1p] and [expm1] at the canonical threshold
    [-ln 2]). Raises [Invalid_argument] for [x >= 0]. *)
val log1mexp : float -> float
