(* CSR (compressed sparse row) chain storage.

   Row [i] occupies the index range [row_start.(i), row_start.(i+1))
   of the flat [cols]/[probs] arrays; [cols] is strictly increasing
   within each row (guaranteed by [normalize_row], which sums
   duplicates and drops zeros). [cum] holds the per-row running prefix
   sums of [probs] in the same left-to-right order the old linear-scan
   sampler accumulated them, so the binary-search sampler picks exactly
   the same entry for the same uniform draw. *)

type t = {
  size : int;
  row_start : int array;
  cols : int array;
  probs : float array;
  cum : float array;
}

let row_sum_tolerance = 1e-9

let normalize_row i entries =
  (* Sum duplicates, validate, and renormalise the row to exact mass 1. *)
  let table = Hashtbl.create (Array.length entries) in
  Array.iter
    (fun (j, p) ->
      if p < 0. || Float.is_nan p then
        invalid_arg (Printf.sprintf "Chain: negative probability in row %d" i);
      if p > 0. then
        Hashtbl.replace table j (p +. Option.value ~default:0. (Hashtbl.find_opt table j)))
    entries;
  let total = Hashtbl.fold (fun _ p acc -> acc +. p) table 0. in
  if Float.abs (total -. 1.) > row_sum_tolerance then
    invalid_arg (Printf.sprintf "Chain: row %d sums to %.12g, expected 1" i total);
  let out = Hashtbl.fold (fun j p acc -> (j, p /. total) :: acc) table [] in
  let out = Array.of_list out in
  Array.sort (fun (a, _) (b, _) -> compare a b) out;
  out

(* Pack validated per-row tuple arrays into the flat CSR arrays. *)
let pack size checked =
  let nnz = Array.fold_left (fun acc r -> acc + Array.length r) 0 checked in
  let row_start = Array.make (size + 1) 0 in
  let cols = Array.make nnz 0 in
  let probs = Array.make nnz 0. in
  let cum = Array.make nnz 0. in
  let k = ref 0 in
  for i = 0 to size - 1 do
    row_start.(i) <- !k;
    let acc = ref 0. in
    Array.iter
      (fun (j, p) ->
        cols.(!k) <- j;
        probs.(!k) <- p;
        acc := !acc +. p;
        cum.(!k) <- !acc;
        incr k)
      checked.(i)
  done;
  row_start.(size) <- !k;
  { size; row_start; cols; probs; cum }

let of_rows ?pool rows =
  let size = Array.length rows in
  if size = 0 then invalid_arg "Chain.of_rows: empty chain";
  let check_row i entries =
    Array.iter
      (fun (j, _) ->
        if j < 0 || j >= size then
          invalid_arg (Printf.sprintf "Chain: column %d out of range in row %d" j i))
      entries;
    normalize_row i entries
  in
  let checked = Exec.Pool.init_opt pool ~n:size (fun i -> check_row i rows.(i)) in
  pack size checked

let of_function ?pool n row =
  let rows = Exec.Pool.init_opt pool ~n (fun i -> Array.of_list (row i)) in
  of_rows ?pool rows

let of_dense m =
  if not (Linalg.Mat.is_square m) then invalid_arg "Chain.of_dense: non-square";
  let n = fst (Linalg.Mat.dims m) in
  of_rows
    (Array.init n (fun i ->
         let entries = ref [] in
         for j = n - 1 downto 0 do
           let p = Linalg.Mat.get m i j in
           (* lint: allow float-equality — exactly-zero entries are structurally absent *)
           if p <> 0. then entries := (j, p) :: !entries
         done;
         Array.of_list !entries))

let to_csr t = (Array.copy t.row_start, Array.copy t.cols, Array.copy t.probs)

let of_csr ~row_start ~cols ~probs =
  let size = Array.length row_start - 1 in
  if size < 1 then invalid_arg "Chain.of_csr: empty chain";
  let nnz = Array.length cols in
  if Array.length probs <> nnz then
    invalid_arg "Chain.of_csr: cols/probs length mismatch";
  if row_start.(0) <> 0 || row_start.(size) <> nnz then
    invalid_arg "Chain.of_csr: row offsets do not span the arrays";
  let row_start = Array.copy row_start in
  let cols = Array.copy cols in
  let probs = Array.copy probs in
  (* [cum] is derived data: recompute it with exactly the accumulation
     order of [pack], so a deserialised chain samples bit-identically
     to the chain that was serialised. *)
  let cum = Array.make nnz 0. in
  for i = 0 to size - 1 do
    let lo = row_start.(i) and hi = row_start.(i + 1) in
    if hi <= lo then
      invalid_arg (Printf.sprintf "Chain.of_csr: empty or negative row %d" i);
    let acc = ref 0. in
    for k = lo to hi - 1 do
      let j = cols.(k) in
      if j < 0 || j >= size then
        invalid_arg (Printf.sprintf "Chain.of_csr: column %d out of range in row %d" j i);
      if k > lo && cols.(k - 1) >= j then
        invalid_arg
          (Printf.sprintf "Chain.of_csr: columns not strictly increasing in row %d" i);
      let p = probs.(k) in
      (* [not (p > 0.)] also rejects NaN. *)
      if not (p > 0.) || p > 1. then
        invalid_arg
          (Printf.sprintf "Chain.of_csr: probability %.12g out of (0, 1] in row %d" p i);
      acc := !acc +. p;
      cum.(k) <- !acc
    done;
    if Float.abs (!acc -. 1.) > 1e-6 then
      invalid_arg (Printf.sprintf "Chain.of_csr: row %d sums to %.12g" i !acc)
  done;
  { size; row_start; cols; probs; cum }

let size t = t.size
let nnz t = t.row_start.(t.size)
let degree t i = t.row_start.(i + 1) - t.row_start.(i)

let iter_row t i f =
  for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
    f t.cols.(k) t.probs.(k)
  done

let row t i =
  let lo = t.row_start.(i) in
  Array.init (degree t i) (fun k -> (t.cols.(lo + k), t.probs.(lo + k)))

let row_list t i = Array.to_list (row t i)

let prob t i j =
  (* Binary search over the strictly increasing column slice of row i. *)
  let lo = ref t.row_start.(i) and hi = ref (t.row_start.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.cols.(mid) in
    if c = j then begin
      result := t.probs.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

let evolve_into t ~src ~dst =
  if Array.length src <> t.size || Array.length dst <> t.size then
    invalid_arg "Chain.evolve_into: dimension mismatch";
  if src == dst then invalid_arg "Chain.evolve_into: src and dst must be distinct";
  Array.fill dst 0 t.size 0.;
  (* Indices below are validated at construction ([cols] entries are in
     [0, size) and [row_start] is monotone within bounds) and the
     dimension checks above cover [src]/[dst], so unchecked accesses are
     safe; the accumulation order matches the boxed-row code exactly. *)
  let row_start = t.row_start and cols = t.cols and probs = t.probs in
  for i = 0 to t.size - 1 do
    let mass = Array.unsafe_get src i in
    if mass > 0. then begin
      let stop = Array.unsafe_get row_start (i + 1) - 1 in
      for k = Array.unsafe_get row_start i to stop do
        let j = Array.unsafe_get cols k in
        Array.unsafe_set dst j
          (Array.unsafe_get dst j +. (mass *. Array.unsafe_get probs k))
      done
    end
  done

let evolve t mu =
  if Array.length mu <> t.size then invalid_arg "Chain.evolve: dimension mismatch";
  let out = Array.make t.size 0. in
  evolve_into t ~src:mu ~dst:out;
  out

let apply t f =
  if Array.length f <> t.size then invalid_arg "Chain.apply: dimension mismatch";
  Array.init t.size (fun i ->
      let acc = ref 0. in
      for k = t.row_start.(i) to t.row_start.(i + 1) - 1 do
        acc := !acc +. (t.probs.(k) *. f.(t.cols.(k)))
      done;
      !acc)

let to_dense t =
  let m = Linalg.Mat.create t.size t.size 0. in
  for i = 0 to t.size - 1 do
    iter_row t i (fun j p -> Linalg.Mat.set m i j p)
  done;
  m

let sample_step_of t i ~u =
  let lo = t.row_start.(i) and hi = t.row_start.(i + 1) - 1 in
  (* Smallest k with u < cum.(k) — the entry the old linear scan chose;
     a u at or past the accumulated row mass (possible when the
     renormalised probabilities round their sum below the draw) falls
     back to the last entry, which is strictly positive by
     construction. *)
  let cum = t.cum in
  if u >= Array.unsafe_get cum hi then t.cols.(hi)
  else begin
    let a = ref lo and b = ref hi in
    while !a < !b do
      let mid = (!a + !b) / 2 in
      if u < Array.unsafe_get cum mid then b := mid else a := mid + 1
    done;
    Array.unsafe_get t.cols !a
  end

let sample_step rng t i = sample_step_of t i ~u:(Prob.Rng.float rng)

let simulate rng t ~start ~steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.simulate: bad start";
  if steps < 0 then invalid_arg "Chain.simulate: negative steps";
  let trajectory = Array.make (steps + 1) start in
  for k = 1 to steps do
    trajectory.(k) <- sample_step rng t trajectory.(k - 1)
  done;
  trajectory

let hitting_time rng t ~start ~target ~max_steps =
  if start < 0 || start >= t.size then invalid_arg "Chain.hitting_time: bad start";
  if max_steps < 0 then invalid_arg "Chain.hitting_time: negative max_steps";
  let rec go state step =
    if target state then Some step
    else if step >= max_steps then None
    else go (sample_step rng t state) (step + 1)
  in
  go start 0

let successors t i =
  List.init (degree t i) (fun k -> t.cols.(t.row_start.(i) + k))

let reachable_from neighbours size start =
  let seen = Array.make size false in
  seen.(start) <- true;
  let queue = Queue.create () in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
      (neighbours u)
  done;
  seen

let is_irreducible t =
  let forward = reachable_from (successors t) t.size 0 in
  if not (Array.for_all Fun.id forward) then false
  else begin
    (* Backward reachability needs the reversed adjacency. *)
    let preds = Array.make t.size [] in
    for i = 0 to t.size - 1 do
      iter_row t i (fun j p -> if p > 0. then preds.(j) <- i :: preds.(j))
    done;
    let backward = reachable_from (fun u -> preds.(u)) t.size 0 in
    Array.for_all Fun.id backward
  end

let gcd_aux a b =
  let rec go a b = if b = 0 then a else go b (a mod b) in
  go (Stdlib.abs a) (Stdlib.abs b)

let is_aperiodic t =
  (* Any positive self-loop makes an irreducible chain aperiodic; this
     is the common case for logit chains (the selected player may keep
     her strategy). Otherwise compute the period as the gcd over edges
     (u, v) of level(u) + 1 - level(v) for BFS levels from state 0. *)
  let has_loop = ref false in
  for i = 0 to t.size - 1 do
    iter_row t i (fun j p -> if i = j && p > 0. then has_loop := true)
  done;
  if !has_loop then true
  else begin
    let level = Array.make t.size (-1) in
    level.(0) <- 0;
    let queue = Queue.create () in
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if level.(v) < 0 then begin
            level.(v) <- level.(u) + 1;
            Queue.add v queue
          end)
        (successors t u)
    done;
    let g = ref 0 in
    for u = 0 to t.size - 1 do
      if level.(u) >= 0 then
        iter_row t u (fun v p ->
            if p > 0. && level.(v) >= 0 then
              g := Stdlib.abs (gcd_aux !g (level.(u) + 1 - level.(v))))
    done;
    !g = 1
  end

let is_reversible ?(tol = 1e-9) t pi =
  if Array.length pi <> t.size then invalid_arg "Chain.is_reversible: dimension";
  let ok = ref true in
  for i = 0 to t.size - 1 do
    iter_row t i (fun j p ->
        let flow = pi.(i) *. p in
        let back = pi.(j) *. prob t j i in
        if Float.abs (flow -. back) > tol then ok := false)
  done;
  !ok

let edge_measure t pi i j = pi.(i) *. prob t i j

let lazy_version t =
  of_rows
    (Array.init t.size (fun i ->
         let halved = Array.map (fun (j, p) -> (j, 0.5 *. p)) (row t i) in
         Array.append halved [| (i, 0.5) |]))
