(** Closed-form theorem bounds from the paper.

    Every bound is implemented exactly as stated so that experiments
    can print measured-vs-bound columns. Quantities that overflow
    [float] for large β are also offered in log form. *)

(** {1 Section 3 — potential games} *)

(** [lemma33_trel_upper ~n ~m ~beta ~delta_phi] is the Lemma 3.3
    relaxation-time bound 2mn·exp(βΔΦ). *)
val lemma33_trel_upper : n:int -> m:int -> beta:float -> delta_phi:float -> float

(** [thm34_tmix_upper ?eps ~n ~m ~beta ~delta_phi ()] is the Theorem
    3.4 mixing-time bound
    2mn·exp(βΔΦ)·(log(1/ε) + βΔΦ + n·log m), default ε = 1/4. *)
val thm34_tmix_upper :
  ?eps:float -> n:int -> m:int -> beta:float -> delta_phi:float -> unit -> float

(** [thm34_log_tmix_upper ?eps ~n ~m ~beta ~delta_phi ()] is its
    natural logarithm, safe for large β. *)
val thm34_log_tmix_upper :
  ?eps:float -> n:int -> m:int -> beta:float -> delta_phi:float -> unit -> float

(** [thm36_beta_threshold ~c ~n ~delta_local] is the largest β covered
    by Theorem 3.6, c/(n·δΦ) (requires 0 < c < 1). *)
val thm36_beta_threshold : c:float -> n:int -> delta_local:float -> float

(** [thm36_tmix_upper ?eps ~c ~n ()] is the explicit path-coupling
    bound of Theorem 3.6, n·(log n + log(1/ε))/(1-c). *)
val thm36_tmix_upper : ?eps:float -> c:float -> n:int -> unit -> float

(** [thm38_log_tmix_upper ~beta ~zeta] is βζ — the log of the leading
    factor of the Theorem 3.8 upper bound exp(βζ(1+o(1))). *)
val thm38_log_tmix_upper : beta:float -> zeta:float -> float

(** [lemma37_trel_upper ~n ~m ~beta ~zeta] is the Lemma 3.7 bound
    n·m^(2n+1)·exp(βζ). *)
val lemma37_trel_upper : n:int -> m:int -> beta:float -> zeta:float -> float

(** [thm39_log_tmix_lower ~beta ~zeta] is βζ — the log of the leading
    factor of the Theorem 3.9 lower bound exp(βζ(1-o(1))). *)
val thm39_log_tmix_lower : beta:float -> zeta:float -> float

(** {1 Section 4 — dominant strategies} *)

(** [thm42_tmix_upper ~n ~m] is the β-independent upper bound
    2·mⁿ·ln 4·(2n·ln n + 1) implied by the Theorem 4.2 proof (the
    O(mⁿ·n log n) with its constants made explicit: k = 2mⁿ·ln 4
    phases of t* = 2n·ln n steps, plus one step so the n = 1 edge case
    stays positive). *)
val thm42_tmix_upper : n:int -> m:int -> float

(** [thm43_tmix_lower ~n ~m] is the Theorem 4.3 bound
    (mⁿ - 1)/(4(m-1)). *)
val thm43_tmix_lower : n:int -> m:int -> float

(** {1 Section 5 — graphical coordination games} *)

(** [thm51_tmix_upper ~n ~beta ~cutwidth ~delta0 ~delta1] is the
    Theorem 5.1 bound 2n³·exp(χ(G)(δ₀+δ₁)β)·(nδ₀β + 1). *)
val thm51_tmix_upper :
  n:int -> beta:float -> cutwidth:int -> delta0:float -> delta1:float -> float

(** [thm51_log_tmix_upper ~n ~beta ~cutwidth ~delta0 ~delta1]: its
    logarithm. *)
val thm51_log_tmix_upper :
  n:int -> beta:float -> cutwidth:int -> delta0:float -> delta1:float -> float

(** [thm55_exponent ~n ~beta ~delta0 ~delta1] is β(Φ_max - Φ(1)), the
    common exponent of the Theorem 5.5 clique bounds. *)
val thm55_exponent : n:int -> beta:float -> delta0:float -> delta1:float -> float

(** [thm56_tmix_upper ?eps ~n ~beta ~delta ()] is the explicit
    path-coupling bound of Theorem 5.6 for the ring,
    (log n + log(1/ε))·n·(1 + exp(2δβ))/2. *)
val thm56_tmix_upper : ?eps:float -> n:int -> beta:float -> delta:float -> unit -> float

(** [thm57_tmix_lower ?eps ~beta ~delta ()] is the Theorem 5.7 ring
    lower bound (1-2ε)·(1 + exp(2δβ))/2. *)
val thm57_tmix_lower : ?eps:float -> beta:float -> delta:float -> unit -> float

(** {1 Generic spectral/bottleneck conversions (Theorems 2.3, 2.7)} *)

(** [tmix_of_trel_upper ~trel ~pi_min ~eps] is t_rel·log(1/(ε·π_min)). *)
val tmix_of_trel_upper : trel:float -> pi_min:float -> eps:float -> float

(** [tmix_of_trel_lower ~trel ~eps] is (t_rel - 1)·log(1/(2ε)). *)
val tmix_of_trel_lower : trel:float -> eps:float -> float
