(** Conflict checking for the store-related command-line flags.

    Duplicated or contradictory flags used to resolve silently
    (cmdliner's plain [opt] keeps the last [--store]; [--store] next to
    [--no-cache] kept whichever branch the code read first). Both are
    now hard usage errors: the binaries collect every occurrence and
    feed them through {!resolve_store}, turning [Error] into a usage
    message on stderr and exit code 2. *)

type store_choice = {
  dir : string option;  (** explicit store directory, if one was given *)
  no_cache : bool;  (** [true] iff [--no-cache] was passed *)
}

(** [resolve_store ~stores ~no_cache_count] resolves every [--store]
    occurrence (in order) and the number of [--no-cache] occurrences
    into a single choice. [Error] with a usage message when [--store]
    is repeated, [--no-cache] is repeated, or the two are combined. *)
val resolve_store :
  stores:string list -> no_cache_count:int -> (store_choice, string) result
