let tv_against pi mu =
  let n = Array.length mu in
  if Array.length pi <> n then invalid_arg "Mixing: dimension mismatch";
  (* Lengths checked above, so unchecked access is safe; left-to-right
     summation matches the previous [Array.iteri] implementation. *)
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. Float.abs (Array.unsafe_get mu i -. Array.unsafe_get pi i)
  done;
  0.5 *. !acc

let point_mass n i =
  let v = Array.make n 0. in
  v.(i) <- 1.;
  v

let check_starts t starts =
  if starts = [] then invalid_arg "Mixing: empty start set";
  List.iter
    (fun s ->
      if s < 0 || s >= Chain.size t then invalid_arg "Mixing: start out of range")
    starts

(* The start distributions live in one flat row-major Float64 panel
   (start r occupies [r·n, (r+1)·n)), double-buffered across steps and
   advanced by the blocked SpMM [Chain.evolve_many_into]: one traversal
   of the transition matrix updates every start, so the matrix traffic
   that used to be re-streamed per start is amortised over the whole
   panel. Each panel row is bit-identical to the historical per-start
   push evolve, the per-row TV refresh sums in the same left-to-right
   order as [tv_against], and Float.max over the tvs is exact and
   order-independent, so curves and mixing times agree bit-for-bit with
   the per-start path, pooled or serial. *)

let check_starts_kernel kernel starts =
  if starts = [] then invalid_arg "Mixing: empty start set";
  List.iter
    (fun s ->
      if s < 0 || s >= Kernel.size kernel then
        invalid_arg "Mixing: start out of range")
    starts

let check_pi_kernel kernel pi =
  if Array.length pi <> Kernel.size kernel then
    invalid_arg "Mixing: dimension mismatch"

let panel_create len =
  Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout len

let panel_of_starts n starts =
  let p = panel_create (List.length starts * n) in
  Bigarray.Array1.fill p 0.;
  List.iteri (fun r s -> Bigarray.Array1.set p ((r * n) + s) 1.) starts;
  p

(* TV of panel row [r] against pi; bounds are guaranteed by the callers
   ([pi] length-checked against the chain, panels allocated with
   [Array.length tvs] rows), and the summation order is exactly that of
   [tv_against]. *)
let tv_row pi (panel : Chain.panel) r =
  let n = Array.length pi in
  let base = r * n in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc :=
      !acc
      +. Float.abs
           (Bigarray.Array1.unsafe_get panel (base + i) -. Array.unsafe_get pi i)
  done;
  0.5 *. !acc

let refresh_tvs pool pi panel tvs =
  (* Cutover cost of one TV row: one |S|-length abs-diff sum. *)
  Exec.Pool.iter_opt ~cost:(Array.length pi) pool ~n:(Array.length tvs) (fun r ->
      (* lint: allow domain-capture — tvs.(r) has exactly one writer, iteration r *)
      tvs.(r) <- tv_row pi panel r)

let worst tvs = Array.fold_left Float.max 0. tvs

(* The one panel-evolution loop every exact-TV consumer drives: the
   serial CLI paths, the daemon's coalesced scheduler and the
   out-of-core segmented path all settle their answers through this
   exact function, generalised over the storage layout via
   [Kernel.t] — which is what makes "coalesced (or segmented)
   answers are bit-identical to serial in-RAM answers" true by
   construction rather than by test alone. *)
let panel_sweep_kernel ?pool kernel pi ~starts ~decide =
  check_starts_kernel kernel starts;
  check_pi_kernel kernel pi;
  let n = Kernel.size kernel in
  let k = List.length starts in
  let src = ref (panel_of_starts n starts) in
  let dst = ref (panel_create (k * n)) in
  let tvs = Array.make k 0. in
  refresh_tvs pool pi !src tvs;
  let rec go step =
    match decide ~step ~worst:(worst tvs) with
    | Some r -> r
    | None ->
        kernel.Kernel.evolve_many_into ~pool ~k ~src:!src ~dst:!dst;
        let previous = !src in
        src := !dst;
        dst := previous;
        refresh_tvs pool pi !src tvs;
        go (step + 1)
  in
  go 0

let panel_sweep ?pool t pi ~starts ~decide =
  panel_sweep_kernel ?pool (Kernel.of_chain t) pi ~starts ~decide

let tv_curve_kernel ?pool kernel pi ~starts ~steps =
  if steps < 0 then invalid_arg "Mixing.tv_curve: negative steps";
  let curve = Array.make (steps + 1) 0. in
  panel_sweep_kernel ?pool kernel pi ~starts ~decide:(fun ~step ~worst ->
      curve.(step) <- worst;
      if step >= steps then Some curve else None)

let tv_curve ?pool t pi ~starts ~steps =
  tv_curve_kernel ?pool (Kernel.of_chain t) pi ~starts ~steps

let mixing_time_kernel ?pool ?(eps = 0.25) ?(max_steps = 1_000_000) kernel pi
    ~starts =
  panel_sweep_kernel ?pool kernel pi ~starts ~decide:(fun ~step ~worst ->
      if worst <= eps then Some (Some step)
      else if step >= max_steps then Some None
      else None)

let mixing_time ?pool ?eps ?max_steps t pi ~starts =
  mixing_time_kernel ?pool ?eps ?max_steps (Kernel.of_chain t) pi ~starts

let mixing_time_all ?pool ?eps ?max_steps t pi =
  mixing_time ?pool ?eps ?max_steps t pi ~starts:(List.init (Chain.size t) Fun.id)

(* β-family sweep: one panel per plane, all planes advancing in
   lockstep through the fused multi-plane SpMM when the family shares
   its structure (per-plane [evolve_many_into] otherwise — the cell
   arithmetic is the same either way). Each plane settles independently
   through [decide] and drops out of the fused advance; the surviving
   subset still shares the structure (physical sharing is preserved by
   taking subsets), so the traversal stays fused to the end. Per plane
   the (step, worst) sequence [decide] observes is exactly the one a
   solo [panel_sweep_kernel] over that plane would produce — same
   initial refresh, same per-step evolve/swap/refresh — which is the
   bit-identity contract the scheduler and the β-grid CLI rely on. *)
let family_panel_sweep ?pool family ~pis ~starts ~decide =
  let np = Family.num_planes family in
  if Array.length pis <> np then
    invalid_arg "Mixing.family_panel_sweep: need one pi per plane";
  let n = Family.size family in
  Array.iter
    (fun pi -> if Array.length pi <> n then invalid_arg "Mixing: dimension mismatch")
    pis;
  if starts = [] then invalid_arg "Mixing: empty start set";
  List.iter
    (fun s -> if s < 0 || s >= n then invalid_arg "Mixing: start out of range")
    starts;
  let k = List.length starts in
  let src = Array.init np (fun _ -> panel_of_starts n starts) in
  let dst = Array.init np (fun _ -> panel_create (k * n)) in
  let tvs = Array.init np (fun _ -> Array.make k 0.) in
  for p = 0 to np - 1 do
    refresh_tvs pool pis.(p) src.(p) tvs.(p)
  done;
  let settled = Array.make np false in
  (* The live-plane subset arrays are rebuilt only when a plane
     settles — membership changes at most [np] times over the whole
     sweep, so the steady-state step allocates nothing. The panel
     references in [src_a]/[dst_a] are kept in lockstep with the
     per-plane double-buffer swap below. *)
  let live_arr = ref (Array.init np Fun.id) in
  let planes_a = ref (Array.init np (Family.plane family)) in
  let src_a = ref (Array.copy src) in
  let dst_a = ref (Array.copy dst) in
  let rebuild () =
    let live =
      Array.of_list (List.filter (fun p -> not settled.(p)) (List.init np Fun.id))
    in
    live_arr := live;
    planes_a := Array.map (Family.plane family) live;
    src_a := Array.map (fun p -> src.(p)) live;
    dst_a := Array.map (fun p -> dst.(p)) live
  in
  let rec go step =
    let changed = ref false in
    Array.iter
      (fun p ->
        if decide ~plane:p ~step ~worst:(worst tvs.(p)) then begin
          settled.(p) <- true;
          changed := true
        end)
      !live_arr;
    if !changed then rebuild ();
    if Array.length !live_arr > 0 then begin
      if Family.shared_structure family then
        Chain.evolve_many_shared_into ?pool !planes_a ~k ~src:!src_a ~dst:!dst_a
      else
        Array.iteri
          (fun i c ->
            Chain.evolve_many_into ?pool c ~k ~src:(!src_a).(i) ~dst:(!dst_a).(i))
          !planes_a;
      Array.iteri
        (fun i p ->
          let previous = src.(p) in
          src.(p) <- dst.(p);
          dst.(p) <- previous;
          (!src_a).(i) <- src.(p);
          (!dst_a).(i) <- dst.(p);
          refresh_tvs pool pis.(p) src.(p) tvs.(p))
        !live_arr;
      go (step + 1)
    end
  in
  go 0

let family_mixing_times ?pool ?(eps = 0.25) ?(max_steps = 1_000_000) family ~pis
    ~starts =
  let out = Array.make (Family.num_planes family) None in
  family_panel_sweep ?pool family ~pis ~starts ~decide:(fun ~plane ~step ~worst ->
      if worst <= eps then begin
        (* lint: allow domain-capture — decide runs on the driving thread only *)
        out.(plane) <- Some step;
        true
      end
      else step >= max_steps);
  out

let tv_at t pi ~start ~steps =
  check_starts t [ start ];
  if steps < 0 then invalid_arg "Mixing.tv_at: negative steps";
  let n = Chain.size t in
  let mu = ref (point_mass n start) in
  let scratch = ref (Array.make n 0.) in
  for _ = 1 to steps do
    Chain.evolve_into t ~src:!mu ~dst:!scratch;
    let previous = !mu in
    mu := !scratch;
    scratch := previous
  done;
  tv_against pi !mu

let empirical_tv ?pool rng t pi ~start ~steps ~replicas =
  check_starts t [ start ];
  if steps < 0 then invalid_arg "Mixing.empirical_tv: negative steps";
  if replicas < 1 then invalid_arg "Mixing.empirical_tv: need replicas";
  (* Replica r always consumes stream r of the split, so the estimate
     is a function of the seed alone — the same bits drive the chains
     whether they run serially or across any number of domains. *)
  let streams = Prob.Rng.split_n rng replicas in
  let final = Array.make replicas start in
  (* Cutover cost of one replica: [steps] sampler draws, each an RNG
     advance plus an O(log degree) binary search — call it 8 units. *)
  Exec.Pool.iter_opt ~cost:(8 * steps) pool ~n:replicas (fun r ->
      let rng = streams.(r) in
      let state = ref start in
      for _ = 1 to steps do
        state := Chain.sample_step rng t !state
      done;
      (* lint: allow domain-capture — final.(r) has exactly one writer, replica r *)
      final.(r) <- !state);
  let emp = Prob.Empirical.create (Chain.size t) in
  Array.iter (Prob.Empirical.add emp) final;
  Prob.Empirical.tv_against emp (Prob.Dist.of_weights pi)

let upper_mixing_time_spectral ~gap ~pi_min ~eps =
  if gap <= 0. || pi_min <= 0. || eps <= 0. then
    invalid_arg "Mixing.upper_mixing_time_spectral";
  (1. /. gap) *. log (1. /. (eps *. pi_min))

let lower_mixing_time_spectral ~gap ~eps =
  if gap <= 0. || eps <= 0. then invalid_arg "Mixing.lower_mixing_time_spectral";
  ((1. /. gap) -. 1.) *. log (1. /. (2. *. eps))

let decompose t pi = Linalg.Eigen.jacobi (Spectral.symmetrize t pi)

(* λ^t with sign handling and underflow-to-zero for huge t. *)
let eigen_pow lambda t =
  if t = 0 then 1.
  (* lint: allow float-equality — exact zero short-circuits before log *)
  else if lambda = 0. then 0.
  else begin
    let magnitude = exp (float_of_int t *. log (Float.abs lambda)) in
    if lambda < 0. && t land 1 = 1 then -.magnitude else magnitude
  end

let tv_at_spectral ~decomposition pi ~start ~steps =
  let values, u = decomposition in
  let n = Array.length pi in
  if start < 0 || start >= n then invalid_arg "Mixing.tv_at_spectral: bad start";
  if steps < 0 then invalid_arg "Mixing.tv_at_spectral: negative steps";
  let k_count = Array.length values in
  (* Pᵗ(x,y) = Σ_k λ_kᵗ U(x,k) U(y,k) √(π(y)/π(x)). *)
  let powers = Array.map (fun lambda -> eigen_pow lambda steps) values in
  let sqrt_pi = Array.map sqrt pi in
  let acc = ref 0. in
  for y = 0 to n - 1 do
    let p = ref 0. in
    for k = 0 to k_count - 1 do
      (* lint: allow float-equality — exact-zero skip of underflowed spectral terms *)
      if powers.(k) <> 0. then
        p := !p +. (powers.(k) *. Linalg.Mat.get u start k *. Linalg.Mat.get u y k)
    done;
    let pt = !p *. sqrt_pi.(y) /. sqrt_pi.(start) in
    acc := !acc +. Float.abs (pt -. pi.(y))
  done;
  0.5 *. !acc

let mixing_time_from_decomposition ?(eps = 0.25) ?(max_steps = max_int / 4)
    ~decomposition pi ~starts =
  if starts = [] then invalid_arg "Mixing: empty start set";
  let d steps =
    List.fold_left
      (fun acc start ->
        Float.max acc (tv_at_spectral ~decomposition pi ~start ~steps))
      0. starts
  in
  if d 0 <= eps then Some 0
  else begin
    (* Double to bracket, then binary search on the monotone d(·). *)
    let rec bracket hi = if d hi <= eps then Some hi else if hi >= max_steps then None else bracket (Int.min max_steps (2 * hi)) in
    match bracket 1 with
    | None -> None
    | Some hi ->
        let rec search lo hi =
          (* invariant: d(lo) > eps >= d(hi) *)
          if hi - lo <= 1 then hi
          else
            let mid = lo + ((hi - lo) / 2) in
            if d mid <= eps then search lo mid else search mid hi
        in
        Some (search (hi / 2) hi)
  end

let mixing_time_spectral ?eps ?max_steps t pi ~starts =
  check_starts t starts;
  mixing_time_from_decomposition ?eps ?max_steps ~decomposition:(decompose t pi)
    pi ~starts

let renormalize_rows m =
  let n, _ = Linalg.Mat.dims m in
  for i = 0 to n - 1 do
    let s = ref 0. in
    for j = 0 to n - 1 do
      s := !s +. Linalg.Mat.get m i j
    done;
    if !s > 0. then
      for j = 0 to n - 1 do
        Linalg.Mat.set m i j (Linalg.Mat.get m i j /. !s)
      done
  done;
  m

let mixing_time_squaring ?(eps = 0.25) ?(max_steps = max_int / 4) t pi ~starts =
  check_starts t starts;
  let n = Chain.size t in
  if n > 768 then invalid_arg "Mixing.mixing_time_squaring: state space too large";
  let d_matrix m =
    List.fold_left
      (fun acc start ->
        let tv = ref 0. in
        for y = 0 to n - 1 do
          tv := !tv +. Float.abs (Linalg.Mat.get m start y -. pi.(y))
        done;
        Float.max acc (0.5 *. !tv))
      0. starts
  in
  let p = Chain.to_dense t in
  if d_matrix (Linalg.Mat.identity n) <= eps then Some 0
  else begin
    (* Precompute P^(2^k) until the power alone has mixed or the step
       budget is exceeded. *)
    let powers = ref [ p ] in
    let rec grow m k =
      if d_matrix m <= eps then Some k
      else if 1 lsl (k + 1) > max_steps || k >= 61 then None
      else begin
        let m2 = renormalize_rows (Linalg.Mat.mul m m) in
        powers := m2 :: !powers;
        grow m2 (k + 1)
      end
    in
    match grow p 0 with
    | None -> None
    | Some top ->
        let powers = Array.of_list (List.rev !powers) in
        (* Find the largest t with d(t) > eps by fixing bits from the
           top; the answer is that t plus one. *)
        let accumulated = ref None in
        let steps = ref 0 in
        for k = top - 1 downto 0 do
          let candidate =
            match !accumulated with
            | None -> Linalg.Mat.copy powers.(k)
            | Some q -> renormalize_rows (Linalg.Mat.mul q powers.(k))
          in
          if d_matrix candidate > eps then begin
            accumulated := Some candidate;
            steps := !steps + (1 lsl k)
          end
        done;
        Some (!steps + 1)
  end
