(* Dominant strategies cap the mixing time (Section 4).

   For the Theorem 4.3 game the mixing time first grows with beta and
   then saturates: unlike generic potential games, the noise can be
   taken to zero without the dynamics losing ergodicity speed beyond
   an absolute O(m^n n log n) ceiling. We contrast it with the
   Theorem 3.5 potential family at the same sizes, whose mixing time
   grows without bound.

   Run with: dune exec examples/dominant_plateau.exe *)

let () =
  let players = 10 in
  Printf.printf
    "Mixing time vs beta: dominant-strategy game vs generic potential game\n\
     (both n=%d, binary strategies; exact, via lumped chains)\n\n" players;
  let curve = Games.Curve_game.create ~players ~global:2.5 ~local:0.5 in
  Printf.printf "%6s  %22s  %22s\n" "beta" "dominant (Thm 4.3 game)"
    "potential (Thm 3.5 game)";
  List.iter
    (fun beta ->
      let dominant =
        Logit.Lumping.dominant_lower_bound ~players ~strategies:2 ~beta
      in
      let generic = Logit.Lumping.curve ~game:curve ~beta in
      let show bd =
        match Markov.Birth_death.mixing_time_spectral bd with
        | Some t -> string_of_int t
        | None -> "huge"
      in
      Printf.printf "%6.1f  %22s  %22s\n" beta (show dominant) (show generic))
    [ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0 ];
  let lower = Logit.Bounds.thm43_tmix_lower ~n:players ~m:2 in
  let upper = Logit.Bounds.thm42_tmix_upper ~n:players ~m:2 in
  Printf.printf
    "\nThe dominant game saturates inside [%.0f, %.0f] (Thms 4.3 / 4.2),\n\
     while the potential game keeps growing like e^{beta * dPhi}.\n"
    lower upper;

  (* Best-response probability: why the plateau exists. With a dominant
     profile, every player puts probability >= 1/m on the dominant
     strategy at every beta (Observation 4.1). *)
  let game = Games.Dominant.lower_bound_game ~players:4 ~strategies:2 in
  Printf.printf
    "\nObservation 4.1 check (n=4): min over profiles of sigma_i(0|x):\n";
  List.iter
    (fun beta ->
      let worst = ref 1. in
      Games.Strategy_space.iter (Games.Game.space game) (fun idx ->
          for i = 0 to 3 do
            let sigma =
              Logit.Logit_dynamics.update_distribution game ~beta ~player:i idx
            in
            if sigma.(0) < !worst then worst := sigma.(0)
          done);
      Printf.printf "  beta=%5.1f  min sigma_i(0|x) = %.4f  (>= 1/m = 0.5)\n" beta
        !worst)
    [ 0.0; 1.0; 10.0 ]
