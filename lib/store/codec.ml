(* Binary artifact framing: magic + version + kind + length + payload
   + CRC-32, everything little-endian, floats as IEEE-754 bit
   patterns. Hand-rolled on Bytes/Buffer — deliberately not Marshal,
   so artifacts survive compiler upgrades and corruption fails loudly
   instead of segfaulting or yielding garbage. *)

let version = 1
let magic = "LDAF"
let header_len = 12

type kind =
  | Chain
  | Dist
  | Curve
  | Table
  | Table_list
  | Request
  | Response
  | Segment
  | Chain_structure
  | Chain_plane

let kind_tag = function
  | Chain -> 1
  | Dist -> 2
  | Curve -> 3
  | Table -> 4
  | Table_list -> 5
  | Request -> 6
  | Response -> 7
  | Segment -> 8
  | Chain_structure -> 9
  | Chain_plane -> 10

let kind_of_tag = function
  | 1 -> Some Chain
  | 2 -> Some Dist
  | 3 -> Some Curve
  | 4 -> Some Table
  | 5 -> Some Table_list
  | 6 -> Some Request
  | 7 -> Some Response
  | 8 -> Some Segment
  | 9 -> Some Chain_structure
  | 10 -> Some Chain_plane
  | _ -> None

let kind_name = function
  | Chain -> "chain"
  | Dist -> "dist"
  | Curve -> "curve"
  | Table -> "table"
  | Table_list -> "tables"
  | Request -> "request"
  | Response -> "response"
  | Segment -> "segment"
  | Chain_structure -> "chain-structure"
  | Chain_plane -> "chain-plane"

(* CRC-32, IEEE 802.3 polynomial (reflected 0xEDB88320). *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?len s =
  let len = match len with Some l -> l | None -> String.length s in
  if len < 0 || len > String.length s then invalid_arg "Codec.crc32: bad length";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = 0 to len - 1 do
    let idx = Int32.to_int (Int32.logand !c 0xFFl) lxor Char.code s.[i] in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.to_int (Int32.logxor !c 0xFFFFFFFFl) land 0xFFFFFFFF

module Enc = struct
  type t = Buffer.t

  let create () = Buffer.create 256

  let u8 b v =
    if v < 0 || v > 0xFF then invalid_arg "Codec.Enc.u8: out of range";
    Buffer.add_char b (Char.chr v)

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then invalid_arg "Codec.Enc.u32: out of range";
    Buffer.add_int32_le b (Int32.of_int v)

  let i64 b v = Buffer.add_int64_le b v
  let int_ b v = i64 b (Int64.of_int v)
  let float b v = i64 b (Int64.bits_of_float v)

  let string b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let int_array b a =
    u32 b (Array.length a);
    Array.iter (int_ b) a

  let float_array b a =
    u32 b (Array.length a);
    Array.iter (float b) a

  let list b item xs =
    u32 b (List.length xs);
    List.iter (item b) xs
end

module Dec = struct
  type t = { s : string; mutable pos : int; limit : int }

  (* Internal control flow only: [unframe] catches it and returns
     [Error], so corruption never escapes the module as an exception. *)
  exception Corrupt of string

  let fail msg = raise (Corrupt msg)

  let need d n =
    if n < 0 || d.limit - d.pos < n then
      fail
        (Printf.sprintf "truncated payload: need %d byte(s) at offset %d" n
           (d.pos - header_len))

  let u8 d =
    need d 1;
    let v = Char.code d.s.[d.pos] in
    d.pos <- d.pos + 1;
    v

  let u32 d =
    need d 4;
    let v = Int32.to_int (String.get_int32_le d.s d.pos) land 0xFFFFFFFF in
    d.pos <- d.pos + 4;
    v

  let i64 d =
    need d 8;
    let v = String.get_int64_le d.s d.pos in
    d.pos <- d.pos + 8;
    v

  let int_ d =
    let v = i64 d in
    let n = Int64.to_int v in
    if Int64.of_int n <> v then fail "integer out of native range";
    n

  let float d = Int64.float_of_bits (i64 d)

  let string d =
    let n = u32 d in
    need d n;
    let s = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    s

  let int_array d =
    let n = u32 d in
    need d (8 * n);
    let a = Array.make n 0 in
    for i = 0 to n - 1 do
      a.(i) <- int_ d
    done;
    a

  let float_array d =
    let n = u32 d in
    need d (8 * n);
    let a = Array.make n 0. in
    for i = 0 to n - 1 do
      a.(i) <- float d
    done;
    a

  let list d item =
    let n = u32 d in
    let acc = ref [] in
    for _ = 1 to n do
      acc := item d :: !acc
    done;
    List.rev !acc
end

let add_u16_le b v =
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

let get_u16_le s pos = Char.code s.[pos] lor (Char.code s.[pos + 1] lsl 8)

let max_payload_bytes = 0xFFFFFFFF

let frame ~kind write =
  let payload = Enc.create () in
  write payload;
  let len = Buffer.length payload in
  if len > max_payload_bytes then
    invalid_arg
      (Printf.sprintf
         "Codec.frame: %d-byte payload exceeds the u32 frame bound (%d)" len
         max_payload_bytes);
  let out = Buffer.create (header_len + len + 4) in
  Buffer.add_string out magic;
  add_u16_le out version;
  add_u16_le out (kind_tag kind);
  Buffer.add_int32_le out (Int32.of_int len);
  Buffer.add_buffer out payload;
  let body = Buffer.contents out in
  let crc = crc32 body in
  Buffer.add_int32_le out (Int32.of_int crc);
  Buffer.contents out

(* Validate everything up to (but not including) the payload bytes:
   magic, version, kind tag, declared length vs physical length, and
   the trailing CRC over header + payload. *)
let check_frame s =
  let total = String.length s in
  if total < header_len + 4 then
    Error (Printf.sprintf "artifact too short (%d bytes)" total)
  else if String.sub s 0 4 <> magic then Error "bad magic: not a logitdyn artifact"
  else
    let ver = get_u16_le s 4 in
    if ver <> version then
      Error
        (Printf.sprintf "unsupported format version %d (this build reads %d)" ver
           version)
    else
      let tag = get_u16_le s 6 in
      match kind_of_tag tag with
      | None -> Error (Printf.sprintf "unknown payload kind tag %d" tag)
      | Some k ->
          let len = Int32.to_int (String.get_int32_le s 8) land 0xFFFFFFFF in
          if total <> header_len + len + 4 then
            Error
              (Printf.sprintf
                 "length mismatch: header declares %d payload byte(s), file \
                  has %d"
                 len
                 (total - header_len - 4))
          else
            let stored =
              Int32.to_int (String.get_int32_le s (header_len + len))
              land 0xFFFFFFFF
            in
            let computed = crc32 ~len:(header_len + len) s in
            if stored <> computed then
              Error
                (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
                   stored computed)
            else Ok (k, len)

let inspect s = check_frame s

let unframe ~kind s read =
  match check_frame s with
  | Error _ as e -> e
  | Ok (k, len) ->
      if k <> kind then
        Error
          (Printf.sprintf "artifact kind is %s, expected %s" (kind_name k)
             (kind_name kind))
      else begin
        let d = { Dec.s; pos = header_len; limit = header_len + len } in
        match read d with
        | v ->
            if d.Dec.pos <> d.Dec.limit then
              Error
                (Printf.sprintf "%d trailing payload byte(s) left undecoded"
                   (d.Dec.limit - d.Dec.pos))
            else Ok v
        | exception Dec.Corrupt msg -> Error msg
      end

let encode_dist a = frame ~kind:Dist (fun b -> Enc.float_array b a)
let decode_dist s = unframe ~kind:Dist s Dec.float_array
let encode_curve a = frame ~kind:Curve (fun b -> Enc.float_array b a)
let decode_curve s = unframe ~kind:Curve s Dec.float_array
