(** Exit-code-returning entry points behind [logitdyn bench ...]. They
    live in the library — not [bin/] — so the gate tests drive the
    exact code path CI does and assert on the same exit codes.

    Exit codes: [0] success / gate pass, [1] gate fail (regression,
    lost correctness, or — under [--strict] — a disappeared workload),
    [2] I/O or decode error. *)

(** [history ~path ()] prints the trajectory: every record in append
    order, then the latest-per-key summary. A missing file is an
    empty trajectory (exit 0). *)
val history : ?path:string -> unit -> int

(** [compare ~baseline ~candidate ~threshold ()] loads the two
    trajectory files and runs {!Gate.compare}. A missing [baseline]
    file passes (first run ever); a missing [candidate] is an error
    (exit 2) — the run being gated must have produced records. *)
val compare :
  ?strict:bool ->
  ?threshold:float ->
  baseline:string ->
  candidate:string ->
  unit ->
  int

(** Default [--threshold] for {!compare}: percent slowdown allowed
    before the gate fails. *)
val default_threshold : float

(** [ingest ~history_path paths ()] migrates legacy [BENCH_*.json]
    snapshots into the trajectory — how a baseline is seeded from
    pre-trajectory checkouts. *)
val ingest : ?history_path:string -> string list -> int
