(** Atomic file plumbing shared by the cache and by every artifact the
    bench harness writes ([BENCH_csr.json], [BENCH_store.json]).

    The write protocol is write-to-temp + [Sys.rename]: readers — and
    concurrent {!Exec.Pool} workers or parallel CI jobs racing on the
    same store — observe either the old file or the complete new one,
    never a torn prefix, because POSIX rename within a filesystem is
    atomic. *)

(** [write_atomic ?tmp_dir ~path contents] writes [contents] to [path]
    atomically. The temp file lives in [tmp_dir] (default: [path]'s
    directory, which guarantees same-filesystem rename) and is removed
    if anything fails before the rename. *)
val write_atomic : ?tmp_dir:string -> path:string -> string -> unit

(** [read_file path] is the whole file, or [None] if it does not exist
    or cannot be read. *)
val read_file : string -> string option

(** [mkdir_p path] creates [path] and any missing parents (0755). *)
val mkdir_p : string -> unit
