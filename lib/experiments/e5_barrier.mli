(** E5 — Theorems 3.8/3.9: the barrier zeta, not dPhi, governs large-beta mixing.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
