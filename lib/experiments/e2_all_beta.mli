(** E2 — Lemma 3.3 / Theorem 3.4: the all-beta relaxation- and mixing-time upper bounds dominate exact measurements.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
