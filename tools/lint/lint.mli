(** The logitlint engine: discovery, parsing, rule dispatch,
    suppression, per-directory config and reporting. The rule
    catalogue lives in {!Rules}. *)

type kind = Ml | Mli

type finding = {
  rule : string;
  file : string;  (** path relative to the scan root, '/'-separated *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  message : string;
  suppressed : bool;
}

type source_ast =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

type reporter = Location.t -> string -> unit

type check =
  | Ast_rule of (report:reporter -> source_ast -> unit)
      (** Called once per parsed file the rule applies to. *)
  | Tree_rule of (files:string list -> (string * string) list)
      (** Called once per run with every scanned relative path; returns
          [(file, message)] findings anchored to line 1. *)

type rule = {
  name : string;  (** the name used by suppressions and config *)
  doc : string;
  applies : string -> bool;  (** relative-path filter *)
  check : check;
}

(** Raised on a malformed [.logitlint] line; the CLI maps it to exit
    code 2 rather than silently ignoring configuration. *)
exception Config_error of string

module Config : sig
  type t

  val empty : t

  (** [load path] reads a [.logitlint] file ([] when absent). Lines:
      comments ([# ...]), [disable <rule>], [disable <rule> in
      <basename>]. Raises {!Config_error} on anything else. *)
  val load : string -> t

  val disables : t -> rule:string -> path:string -> bool
end

(** Rule name attached to findings for unparseable files. Parse errors
    are never suppressed. *)
val parse_error_rule : string

(** [lint_file ?config ~rules ~root ~relpath ()] parses one file and
    runs every applicable AST rule, marking suppressed findings
    (a line or preceding-line comment [(* lint: allow <rule> *)]).
    Tree rules are skipped — they need the whole file list. *)
val lint_file :
  ?config:Config.t ->
  rules:rule list ->
  root:string ->
  relpath:string ->
  unit ->
  finding list

type result = { files : string list; findings : finding list }

(** [run ~root ~dirs ~rules] scans every [.ml]/[.mli] under
    [root]/[dirs] (skipping dot- and underscore-prefixed entries),
    threading per-directory [.logitlint] config down each subtree,
    then runs tree rules over the collected file list. Findings are
    sorted by (file, line, col, rule). *)
val run : root:string -> dirs:string list -> rules:rule list -> result

val violations : result -> finding list
val suppressed : result -> finding list

val to_text : ?show_suppressed:bool -> result -> string
val to_json : root:string -> result -> string
