let of_ordering g order =
  let n = Graph.num_vertices g in
  if Array.length order <> n then invalid_arg "Cutwidth.of_ordering: wrong length";
  let position = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n || position.(v) >= 0 then
        invalid_arg "Cutwidth.of_ordering: not a permutation";
      position.(v) <- i)
    order;
  (* Sweep the ordering, maintaining the running cut: placing vertex v
     closes the edges to already-placed neighbours and opens the rest. *)
  let cut = ref 0 and best = ref 0 in
  Array.iter
    (fun v ->
      let placed_before u = position.(u) < position.(v) in
      List.iter
        (fun u -> if placed_before u then decr cut else incr cut)
        (Graph.neighbors g v);
      if !cut > !best then best := !cut)
    order;
  !best

let max_exact_vertices = 24

let exact_dp g =
  let n = Graph.num_vertices g in
  if n > max_exact_vertices then
    invalid_arg "Cutwidth.exact: graph too large for the subset DP";
  if n = 0 then (0, [||])
  else begin
    let size = 1 lsl n in
    let best = Array.make size max_int in
    let choice = Array.make size (-1) in
    (* cut.(s) = number of edges between subset s and its complement;
       computed incrementally from s with one vertex removed. *)
    let cut = Array.make size 0 in
    best.(0) <- 0;
    for s = 1 to size - 1 do
      let v = ref 0 in
      while s land (1 lsl !v) = 0 do
        incr v
      done;
      let v = !v in
      let prev = s lxor (1 lsl v) in
      let internal =
        List.fold_left
          (fun acc u -> if prev land (1 lsl u) <> 0 then acc + 1 else acc)
          0 (Graph.neighbors g v)
      in
      cut.(s) <- cut.(prev) + Graph.degree g v - (2 * internal);
      (* best.(s): minimum over the last-placed vertex w of the max of
         the prefix cutwidth and the cut of s itself. *)
      for w = 0 to n - 1 do
        if s land (1 lsl w) <> 0 then begin
          let without = s lxor (1 lsl w) in
          let candidate = Int.max best.(without) cut.(s) in
          if candidate < best.(s) then begin
            best.(s) <- candidate;
            choice.(s) <- w
          end
        end
      done
    done;
    let order = Array.make n 0 in
    let s = ref (size - 1) in
    for i = n - 1 downto 0 do
      let w = choice.(!s) in
      order.(i) <- w;
      s := !s lxor (1 lsl w)
    done;
    (best.(size - 1), order)
  end

let exact g = fst (exact_dp g)
let exact_with_ordering g = exact_dp g

let heuristic ?(restarts = 20) ?(seed = 1) g =
  let n = Graph.num_vertices g in
  if n = 0 then 0
  else begin
    let rng = Prob.Rng.create seed in
    let best_overall = ref max_int in
    (* Steepest descent over the insertion neighbourhood (remove a
       vertex, reinsert elsewhere) — strictly stronger than adjacent
       transpositions, which stall on paths. *)
    let insert order i j =
      let v = order.(i) in
      if i < j then Array.blit order (i + 1) order i (j - i)
      else Array.blit order j order (j + 1) (i - j);
      order.(j) <- v
    in
    for _ = 1 to restarts do
      let order = Array.init n Fun.id in
      Prob.Rng.shuffle rng order;
      let current = ref (of_ordering g order) in
      let improved = ref true in
      while !improved do
        improved := false;
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j then begin
              insert order i j;
              let candidate = of_ordering g order in
              if candidate < !current then begin
                current := candidate;
                improved := true
              end
              else insert order j i
            end
          done
        done
      done;
      if !current < !best_overall then best_overall := !current
    done;
    !best_overall
  end
