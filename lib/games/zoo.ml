let matching_pennies =
  Normal_form.zero_sum ~name:"matching-pennies" [| [| 1.; -1. |]; [| -1.; 1. |] |]

let battle_of_sexes =
  Normal_form.bimatrix ~name:"battle-of-sexes"
    [| [| 2.; 0. |]; [| 0.; 1. |] |]
    [| [| 1.; 0. |]; [| 0.; 2. |] |]

let rock_paper_scissors =
  Normal_form.zero_sum ~name:"rock-paper-scissors"
    [| [| 0.; -1.; 1. |]; [| 1.; 0.; -1. |]; [| -1.; 1.; 0. |] |]

let pure_coordination ~players ~strategies =
  if players < 2 || strategies < 2 then
    invalid_arg "Zoo.pure_coordination: need >= 2 players and strategies";
  let space = Strategy_space.uniform ~players ~strategies in
  Game.create
    ~name:(Printf.sprintf "pure-coordination(n=%d,m=%d)" players strategies)
    space
    (fun _player idx ->
      let first = Strategy_space.player_strategy space idx 0 in
      let agree = ref true in
      for i = 1 to players - 1 do
        if Strategy_space.player_strategy space idx i <> first then agree := false
      done;
      if !agree then 1. else 0.)

let random_potential rng ~players ~strategies =
  let space = Strategy_space.uniform ~players ~strategies in
  let table = Array.init (Strategy_space.size space) (fun _ -> Prob.Rng.float rng) in
  let phi idx = table.(idx) in
  (Potential.common_interest ~name:"random-potential" space phi, phi)

let random_game rng ~players ~strategies =
  let space = Strategy_space.uniform ~players ~strategies in
  let table =
    Array.init players (fun _ ->
        Array.init (Strategy_space.size space) (fun _ -> Prob.Rng.float rng))
  in
  Game.create ~name:"random-game" space (fun player idx -> table.(player).(idx))

let iterated_dominance_game =
  (* Elimination order: P2's col 2 (dominated by col 1), then P1's
     row 2 (by row 0), then P2's col 1 (by col 0), then P1's row 1 —
     leaving (0,0). The 9 and 5 entries stop the eliminations from
     being possible in round one. *)
  Normal_form.bimatrix ~name:"iterated-dominance-3x3"
    [| [| 3.; 2.; 0. |]; [| 2.; 3.; 5. |]; [| 1.; 1.; 9. |] |]
    [| [| 3.; 2.; 0. |]; [| 1.; 0.5; 0. |]; [| 2.; 3.; 0. |] |]

let beauty_contest ~players ~levels =
  if players < 2 || levels < 2 then invalid_arg "Zoo.beauty_contest";
  let space = Strategy_space.uniform ~players ~strategies:levels in
  Game.create ~name:(Printf.sprintf "beauty-contest(n=%d,m=%d)" players levels)
    space
    (fun player idx ->
      let total = ref 0 in
      for i = 0 to players - 1 do
        total := !total + Strategy_space.player_strategy space idx i
      done;
      let target = 2. /. 3. *. float_of_int !total /. float_of_int players in
      let mine = float_of_int (Strategy_space.player_strategy space idx player) in
      (* The tiny effort cost breaks the exact payoff ties of the
         discrete game so that iterated STRICT dominance goes through
         (the standard lexicographic refinement). *)
      -.Float.abs (mine -. target) -. (0.001 *. mine))
