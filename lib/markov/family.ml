(* A β-family: one shared CSR/CSC index structure, one probability
   plane per β. [v] rewrites every plane through
   [Chain.with_structure_of] so that when the sparsity structures agree
   (the common case — the payoff comparisons that decide which
   transitions exist are β-independent) all planes physically share
   plane 0's index arrays, and the fused multi-plane SpMM applies.
   When some plane's structure differs (softmax tail underflow at
   extreme β) the family still works — [shared] is false and every
   panel operation falls back to per-plane kernels, bit-identical
   either way. *)

type t = {
  betas : float array;
  planes : Chain.t array;
  shared : bool;
}

let v ~betas ~planes =
  let np = Array.length planes in
  if np = 0 then invalid_arg "Family.v: empty family";
  if Array.length betas <> np then
    invalid_arg "Family.v: betas and planes must have equal length";
  let base = planes.(0) in
  let size = Chain.size base in
  Array.iter
    (fun c ->
      if Chain.size c <> size then
        invalid_arg "Family.v: planes must share a state space")
    planes;
  let planes = Array.map (fun c -> Chain.with_structure_of ~base c) planes in
  let shared =
    Array.for_all (fun c -> Chain.same_structure base c) planes
  in
  { betas = Array.copy betas; planes; shared }

let num_planes t = Array.length t.planes
let size t = Chain.size t.planes.(0)
let betas t = Array.copy t.betas

let beta t i =
  if i < 0 || i >= Array.length t.betas then invalid_arg "Family.beta: index";
  t.betas.(i)

let plane t i =
  if i < 0 || i >= Array.length t.planes then invalid_arg "Family.plane: index";
  t.planes.(i)

let shared_structure t = t.shared
let kernel t i = Kernel.of_chain (plane t i)

let find t ~beta:b =
  let key = Int64.bits_of_float b in
  let rec go i =
    if i >= Array.length t.betas then None
    else if Int64.bits_of_float t.betas.(i) = key then Some i
    else go (i + 1)
  in
  go 0

let evolve_many_into ?pool t ~k ~src ~dst =
  let np = Array.length t.planes in
  if Array.length src <> np || Array.length dst <> np then
    invalid_arg "Family.evolve_many_into: need one src/dst panel per plane";
  if t.shared then Chain.evolve_many_shared_into ?pool t.planes ~k ~src ~dst
  else
    Array.iteri
      (fun p c -> Chain.evolve_many_into ?pool c ~k ~src:src.(p) ~dst:dst.(p))
      t.planes
