(* logitlint — the project lint pass. See README.md ("Lint") for the
   rule catalogue and suppression syntax.

   Exit codes: 0 clean, 1 unsuppressed violations, 2 usage/config/IO
   error. *)

open Lint_engine

let () =
  let root = ref "." in
  let format = ref "text" in
  let show_suppressed = ref false in
  let list_rules = ref false in
  let out_file = ref "" in
  let typed = ref false in
  let require_cmt = ref false in
  let locator = ref Locator.Auto in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR scan relative to DIR (default .)");
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ( "--show-suppressed",
        Arg.Set show_suppressed,
        " include suppressed findings in the text report" );
      ( "--typed",
        Arg.Set typed,
        " also run the .cmt-based typed pass (build @lint first)" );
      ( "--require-cmt",
        Arg.Set require_cmt,
        " with --typed: treat a missing .cmt as a failure (exit 2), \
         not a skip — the CI gate uses this" );
      ( "--locator",
        Arg.Symbol
          ( [ "auto"; "dune"; "scan" ],
            fun s ->
              locator :=
                match s with
                | "dune" -> Locator.Dune
                | "scan" -> Locator.Scan
                | _ -> Locator.Auto ),
        " cmt resolution strategy (default auto: dune describe, then \
         _build scan; use scan when running under dune exec — the \
         parent dune holds the build lock)" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
      ( "-o",
        Arg.Set_string out_file,
        "FILE also write the report to FILE (stdout is unaffected)" );
    ]
  in
  let usage =
    "logitlint [options] [DIR ...]\n\
     Scans DIRs (default: lib bin bench test tools) under --root for \
     project rule violations."
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Syntactic.rule) -> Printf.printf "%-22s %s\n" r.name r.doc)
      Rules.all;
    List.iter
      (fun (r : Typed.rule) ->
        Printf.printf "%-22s [typed] %s\n" r.name r.doc)
      Typed_rules.all;
    exit 0
  end;
  let dirs = if !dirs = [] then Driver.default_dirs else List.rev !dirs in
  match Driver.run ~root:!root ~dirs ~typed:!typed ~locator:!locator () with
  | exception Lint.Config_error msg ->
      prerr_endline ("logitlint: config error: " ^ msg);
      exit 2
  | exception Sys_error msg ->
      prerr_endline ("logitlint: " ^ msg);
      exit 2
  | result ->
      let report =
        match !format with
        | "json" -> Lint.to_json ~root:!root result
        | _ -> Lint.to_text ~show_suppressed:!show_suppressed result
      in
      print_string report;
      if !out_file <> "" then begin
        let oc = open_out !out_file in
        output_string oc report;
        close_out oc
      end;
      if !typed && !require_cmt && result.Lint.typed_skipped <> [] then begin
        prerr_endline
          "logitlint: --require-cmt: typed pass skipped files (run \
           `dune build @lint` first)";
        exit 2
      end;
      exit (if Lint.violations result = [] then 0 else 1)
