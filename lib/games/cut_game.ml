type t = {
  graph : Graphs.Graph.t;
  weight : float;
  space : Strategy_space.t;
}

let create ?(weight = 1.) graph =
  if weight <= 0. then invalid_arg "Cut_game.create: weight must be positive";
  let n = Graphs.Graph.num_vertices graph in
  if n = 0 then invalid_arg "Cut_game.create: empty graph";
  { graph; weight; space = Strategy_space.uniform ~players:n ~strategies:2 }

let graph t = t.graph
let weight t = t.weight
let space t = t.space

let cut_size t idx =
  Graphs.Graph.fold_edges
    (fun acc u v ->
      if
        Strategy_space.player_strategy t.space idx u
        <> Strategy_space.player_strategy t.space idx v
      then acc + 1
      else acc)
    0 t.graph

let potential t idx = -.(t.weight *. float_of_int (cut_size t idx))

let to_game t =
  let utility player idx =
    let mine = Strategy_space.player_strategy t.space idx player in
    let differing =
      List.fold_left
        (fun acc v ->
          if Strategy_space.player_strategy t.space idx v <> mine then acc + 1
          else acc)
        0
        (Graphs.Graph.neighbors t.graph player)
    in
    t.weight *. float_of_int differing
  in
  let g =
    Game.create
      ~name:(Printf.sprintf "cut-game(n=%d)" (Graphs.Graph.num_vertices t.graph))
      t.space utility
  in
  if Strategy_space.size t.space <= 1 lsl 22 then Game.tabulate g else g

let max_cut t =
  let best = ref 0 in
  Strategy_space.iter t.space (fun idx ->
      let c = cut_size t idx in
      if c > !best then best := c);
  !best
