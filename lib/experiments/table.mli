(** Fixed-width ASCII tables for experiment output. *)

type align = Left | Right

type t

(** [create ~title columns] starts a table with the given column
    headers and alignments. *)
val create : title:string -> (string * align) list -> t

(** [add_row t cells] appends a row; the cell count must match the
    column count. *)
val add_row : t -> string list -> unit

(** [add_note t note] appends a free-form footnote line. *)
val add_note : t -> string -> unit

(** [render t] lays the table out with column widths fitted to
    content. *)
val render : t -> string

(** [print t] renders to stdout. *)
val print : t -> unit

(** {1 Binary artifacts}

    Tables are the unit the experiment sweep checkpoints through the
    store: an interrupted [logitdyn experiment all] resumes by decoding
    each completed experiment's table list instead of recomputing it.
    The round trip is exact — rendering a decoded table reproduces the
    original byte for byte. *)

(** [encode t] frames one table as a {!Store.Codec.Table} artifact. *)
val encode : t -> string

(** [decode s] rejects truncated/corrupt/mis-typed artifacts with a
    clean [Error]. *)
val decode : string -> (t, string) result

(** [encode_list ts] frames an experiment's full table list
    ({!Store.Codec.Table_list}). *)
val encode_list : t list -> string

val decode_list : string -> (t list, string) result

(** {1 Cell formatting helpers} *)

(** [cell_int n] and friends format typical cell payloads; [cell_float]
    uses [%.4g], [cell_sci] scientific notation [%.3e], [cell_log]
    prints a natural-log value as itself with 2 decimals. *)
val cell_int : int -> string

val cell_float : float -> string
val cell_sci : float -> string
val cell_log : float -> string
val cell_bool : bool -> string

(** [cell_opt_int o] prints [>max] marker for [None]. *)
val cell_opt_int : int option -> string
