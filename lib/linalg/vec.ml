type t = float array

let create n x = Array.make n x
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_same_dim name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let add x y =
  check_same_dim "add" x y;
  Array.mapi (fun i xi -> xi +. y.(i)) x

let sub x y =
  check_same_dim "sub" x y;
  Array.mapi (fun i xi -> xi -. y.(i)) x

let scale a x = Array.map (fun xi -> a *. xi) x

let axpy ~alpha x y =
  check_same_dim "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let dot x y =
  check_same_dim "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm2 x = sqrt (dot x x)

let norm1 x =
  let acc = ref 0. in
  Array.iter (fun xi -> acc := !acc +. Float.abs xi) x;
  !acc

let norm_inf x = Array.fold_left (fun m xi -> Float.max m (Float.abs xi)) 0. x

let sum x =
  let acc = ref 0. in
  Array.iter (fun xi -> acc := !acc +. xi) x;
  !acc

let normalize_l1 x =
  let s = sum x in
  if s <= 0. then invalid_arg "Vec.normalize_l1: non-positive total mass";
  scale (1. /. s) x

let extremum_index name better x =
  if Array.length x = 0 then invalid_arg ("Vec." ^ name ^ ": empty vector");
  let best = ref 0 in
  for i = 1 to Array.length x - 1 do
    if better x.(i) x.(!best) then best := i
  done;
  !best

let max_index x = extremum_index "max_index" (fun a b -> a > b) x
let min_index x = extremum_index "min_index" (fun a b -> a < b) x

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let ok = ref true in
  Array.iteri (fun i xi -> if Float.abs (xi -. y.(i)) > tol then ok := false) x;
  !ok

let pp ppf v =
  Format.fprintf ppf "[@[<hov>%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%.6g" x))
    v
