(** Canonical paths and chain comparison (paper, Theorems 2.5 / 2.6).

    For a reversible chain with edge measure Q(e) = π(x)P(x,y) and a
    family Γ = {Γ_{x,y}} of chain paths, one per ordered pair of
    states, the congestion

    {v ρ = max_e (1/Q(e)) Σ_{(x,y): e ∈ Γ_{x,y}} π(x)π(y)|Γ_{x,y}| v}

    upper-bounds the relaxation time: 1/(1-λ₂) ≤ ρ (Thm 2.6). The
    comparison form (Thm 2.5) runs the paths of one chain through
    another. These are the engines behind Lemma 3.3 and Theorem 5.1;
    the experiment suite evaluates ρ exactly for the paper's path
    families and checks it against the closed-form bounds. *)

type path = (int * int) list
(** A chain path as a list of directed edges [(u, v)], consecutive. *)

(** [family f] wraps a path chooser: [f x y] must return a path from
    [x] to [y] along edges of the chain whenever [x <> y]. *)
type family = int -> int -> path

(** [validate t fam] checks that every path of [fam] over all ordered
    pairs uses only positive-probability edges of [t] and connects its
    endpoints; returns the first offending pair if any. O(size²·len). *)
val validate : Chain.t -> family -> (int * int) option

(** [congestion t pi fam] is the exact congestion ρ of the family over
    all ordered pairs [(x, y)], [x <> y], of the chain [t] with
    stationary distribution [pi] (Theorem 2.6). Raises
    [Invalid_argument] if a path uses a non-edge. *)
val congestion : Chain.t -> float array -> family -> float

(** [relaxation_upper_bound ~congestion] is the Theorem 2.6 relaxation
    time bound (= ρ itself, since t_rel ≤ ρ for non-negative
    spectra). *)
val relaxation_upper_bound : congestion:float -> float

(** [comparison_congestion t pi ~reference:(that, that_pi) fam] is the
    Theorem 2.5 congestion: paths of [t] carry the edges of the
    reference chain [that]:

    {v A = max_e (1/Q(e)) Σ_{(x,y) edge of that: e ∈ Γ_{x,y}}
                                   Q̂(x,y)|Γ_{x,y}|, v}

    so that 1/(1-λ₂) ≤ A·γ·1/(1-λ̂₂) with
    γ = max_x π(x)/π̂(x) (returned second). *)
val comparison_congestion :
  Chain.t -> float array -> reference:Chain.t * float array -> family ->
  float * float
