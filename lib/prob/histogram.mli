(** Fixed-width histograms over a real interval, with an ASCII
    renderer used by the example programs to visualise trajectories. *)

type t

(** [create ~lo ~hi ~bins] covers [[lo, hi)] with [bins] equal-width
    bins. Raises [Invalid_argument] unless [lo < hi] and [bins >= 1].
    Observations outside the interval are clamped into the boundary
    bins. *)
val create : lo:float -> hi:float -> bins:int -> t

(** [add t x] records observation [x]. *)
val add : t -> float -> unit

(** [counts t] is a fresh copy of the per-bin counts. *)
val counts : t -> int array

(** [total t] is the number of recorded observations. *)
val total : t -> int

(** [bin_bounds t i] is the half-open interval covered by bin [i]. *)
val bin_bounds : t -> int -> float * float

(** [render ?width t] draws the histogram with unicode block bars,
    [width] characters for the fullest bin (default 40). *)
val render : ?width:int -> t -> string
