(** Two-player games in normal (bimatrix) form. *)

(** [bimatrix ~name a b] is the two-player game where the row player
    (player 0) choosing [i] and the column player (player 1) choosing
    [j] yields payoffs [a.(i).(j)] and [b.(i).(j)]. The matrices must
    be non-empty, rectangular, and of equal dimensions. *)
val bimatrix : name:string -> float array array -> float array array -> Game.t

(** [symmetric ~name a] is [bimatrix a aᵀ]: both players face the same
    payoff structure. *)
val symmetric : name:string -> float array array -> Game.t

(** [zero_sum ~name a] is [bimatrix a (-a)]. *)
val zero_sum : name:string -> float array array -> Game.t
