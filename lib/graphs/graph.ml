module IntSet = Set.Make (Int)

type t = { n : int; adj : IntSet.t array }

let create n =
  if n < 0 then invalid_arg "Graph.create: negative vertex count";
  { n; adj = Array.make n IntSet.empty }

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let add_edge g u v =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  let adj = Array.copy g.adj in
  adj.(u) <- IntSet.add v adj.(u);
  adj.(v) <- IntSet.add u adj.(v);
  { g with adj }

let of_edges n edge_list =
  let g = create n in
  (* Mutate the fresh adjacency array directly; the copy in [add_edge]
     would make this quadratic in the number of edges. *)
  List.iter
    (fun (u, v) ->
      check_vertex g u;
      check_vertex g v;
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      g.adj.(u) <- IntSet.add v g.adj.(u);
      g.adj.(v) <- IntSet.add u g.adj.(v))
    edge_list;
  g

let num_vertices g = g.n

let num_edges g =
  let total = Array.fold_left (fun acc s -> acc + IntSet.cardinal s) 0 g.adj in
  total / 2

let neighbors g v =
  check_vertex g v;
  IntSet.elements g.adj.(v)

let degree g v =
  check_vertex g v;
  IntSet.cardinal g.adj.(v)

let max_degree g = Array.fold_left (fun acc s -> Int.max acc (IntSet.cardinal s)) 0 g.adj

let has_edge g u v =
  check_vertex g u;
  check_vertex g v;
  IntSet.mem v g.adj.(u)

let fold_edges f acc g =
  let acc = ref acc in
  for u = 0 to g.n - 1 do
    IntSet.iter (fun v -> if u < v then acc := f !acc u v) g.adj.(u)
  done;
  !acc

let edges g = List.rev (fold_edges (fun acc u v -> (u, v) :: acc) [] g)

let equal g h = g.n = h.n && Array.for_all2 IntSet.equal g.adj h.adj

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d)@ {%a}" g.n (num_edges g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g)
