let () =
  Alcotest.run "logitdyn"
    (Test_linalg.suites @ Test_prob.suites @ Test_graphs.suites
   @ Test_games.suites @ Test_markov.suites @ Test_logit.suites
   @ Test_hitting_paths.suites @ Test_extensions.suites
   @ Test_numerics_ext.suites @ Test_polymatrix.suites
   @ Test_experiments.suites @ Test_exec.suites @ Test_lint.suites
   @ Test_store.suites @ Test_bench.suites @ Test_serve.suites
   @ Test_ooc.suites)
