(** Perfect sampling from the Gibbs measure by coupling from the past
    (Propp–Wilson 1996).

    For binary-strategy games whose threshold update is {e monotone}
    (attractive: a player's probability of choosing 1 never decreases
    when opponents switch 0 → 1 — true for every graphical
    coordination game and more generally for ferromagnetic polymatrix
    games), the grand coupling driven by shared (player, U) randomness
    preserves the coordinate-wise order, so it suffices to run the two
    extreme chains from all-0 and all-1. Coupling from the past with
    doubling epochs then returns a sample distributed {e exactly}
    according to the stationary Gibbs measure — no mixing-time
    knowledge, no bias. The expected running time is O(t_mix·log n),
    so it inherits the paper's bounds: cheap on rings and at small β,
    exponential on cliques at large β. *)

(** [is_attractive game ~beta] checks monotonicity of the threshold
    update exhaustively: for every pair of comparable profiles x ≤ y
    and every player, σ_i(1|x) ≤ σ_i(1|y). Exponential in n — meant
    for validating game classes in tests. Requires binary strategies. *)
val is_attractive : Games.Game.t -> beta:float -> bool

(** [sample rng game ~beta] draws one exact stationary sample by CFTP.
    Requires binary strategies; correctness additionally requires the
    game to be attractive (see {!is_attractive}) — this is NOT checked
    here (it costs 4ⁿ); non-monotone games yield biased samples.
    [max_epochs] (default 40, i.e. 2⁴⁰ steps) bounds the backward
    doubling; raises [Common.No_convergence] beyond it. *)
val sample : ?max_epochs:int -> Prob.Rng.t -> Games.Game.t -> beta:float -> int

(** [samples ?pool rng game ~beta ~count] draws independent exact
    samples, one {!Prob.Rng.split_n} stream per sample; [?pool] runs
    the CFTP replicas across domains with bit-identical output for any
    pool size. *)
val samples :
  ?max_epochs:int -> ?pool:Exec.Pool.t -> Prob.Rng.t -> Games.Game.t ->
  beta:float -> count:int -> int array

(** [coalescence_epoch rng game ~beta] runs one CFTP and also reports
    how far back it had to go: [(sample, steps)] where [steps] is the
    length of the final backward window — an empirical proxy for the
    mixing time that comes with a correctness certificate. *)
val coalescence_epoch :
  ?max_epochs:int -> Prob.Rng.t -> Games.Game.t -> beta:float -> int * int
