(* The panel-coalescing scheduler.

   A batch is whatever the server read off its clients in one loop
   iteration. Mixing queries that resolve to the same chain — same
   game id, n and exact beta bits, regardless of which client sent
   them — are settled together: panel-route groups drive ONE
   Mixing.panel_sweep whose decide callback retires each request at
   its own eps, so one SpMM matrix traversal per step serves the whole
   group; spectral-route groups share the entry's cached
   eigendecomposition. Answers are bit-identical to serial evaluation
   because both run the same primitives over the same floats — the
   coalescing only changes who pays for the matrix traffic.

   Deadlines are absolute monotonic nanosecond instants fixed at
   admission; they are enforced between panel steps (and before any
   serial evaluation), never mid-traversal. *)

module P = Protocol

type 'a job = {
  tag : 'a;
  req_id : int;
  deadline_ns : int64 option;
  query : P.query;
}

type stats = {
  mutable batches : int;
  mutable max_batch : int;
  mutable panel_steps : int;
}

let stats_zero () = { batches = 0; max_batch = 0; panel_steps = 0 }

let expired job =
  match job.deadline_ns with
  | None -> false
  | Some d -> Int64.compare (Common.Clock.monotonic_ns ()) d > 0

let guard f =
  match f () with
  | r -> r
  | exception Common.No_convergence msg -> Error (P.Server_error msg)
  | exception Invalid_argument msg -> Error (P.Server_error msg)

(* One coalesced panel sweep over [group], a list of (position, job,
   eps, replicas, seed) all on [e]'s chain. Each request settles at
   its own eps exactly as the serial Mixing.mixing_time would: the eps
   check runs before the deadline and budget checks, so a request
   whose answer lands on its deadline step still gets its answer. *)
let run_panel_group engine stats out e group =
  let jobs = Array.of_list group in
  let settled = Array.make (Array.length jobs) None in
  let remaining = ref (Array.length jobs) in
  let budget = Engine.max_steps engine in
  let steps_taken = ref 0 in
  let sweep () =
    Markov.Mixing.panel_sweep ?pool:(Engine.pool engine) e.Engine.chain
      e.Engine.pi ~starts:(Engine.all_starts e)
      ~decide:(fun ~step ~worst ->
        steps_taken := step;
        let now = Common.Clock.monotonic_ns () in
        Array.iteri
          (fun i (_, job, eps, _, _) ->
            if Option.is_none settled.(i) then
              if worst <= eps then begin
                settled.(i) <- Some (Ok (Some step));
                decr remaining
              end
              else
                match job.deadline_ns with
                | Some d when Int64.compare now d > 0 ->
                    settled.(i) <- Some (Error P.Deadline_exceeded);
                    decr remaining
                | _ ->
                    if step >= budget then begin
                      settled.(i) <- Some (Ok None);
                      decr remaining
                    end)
          jobs;
        if !remaining = 0 then Some (Ok ()) else None)
  in
  (match guard sweep with
  | Ok () -> ()
  | Error e ->
      (* The sweep itself failed: every still-pending request inherits
         the failure. *)
      Array.iteri
        (fun i s -> if Option.is_none s then settled.(i) <- Some (Error e))
        settled);
  stats.panel_steps <- stats.panel_steps + !steps_taken;
  Array.iteri
    (fun i (pos, _, _, replicas, seed) ->
      out.(pos) <-
        (match settled.(i) with
        | Some (Ok tmix) ->
            guard (fun () ->
                Ok (Engine.mixing_reply_of engine e ~tmix ~replicas ~seed))
        | Some (Error err) -> Error err
        | None -> Error (P.Server_error "panel sweep left a request unsettled")))
    jobs

(* Spectral-route group: the entry's eigendecomposition is computed
   once (then cached on the entry across batches); each request is a
   cheap doubling + binary search at its own eps. *)
let run_spectral_group engine out e group =
  List.iter
    (fun (pos, job, eps, replicas, seed) ->
      out.(pos) <-
        (if expired job then Error P.Deadline_exceeded
         else
           guard (fun () ->
               let tmix =
                 Markov.Mixing.mixing_time_from_decomposition ~eps
                   ~decomposition:(Engine.decomposition e) e.Engine.pi
                   ~starts:(Engine.all_starts e)
               in
               Ok (Engine.mixing_reply_of engine e ~tmix ~replicas ~seed))))
    group

let run_batch engine stats jobs =
  let jobs_a = Array.of_list jobs in
  let n = Array.length jobs_a in
  if n = 0 then []
  else begin
    stats.batches <- stats.batches + 1;
    if n > stats.max_batch then stats.max_batch <- n;
    let out = Array.make n (Error (P.Server_error "unprocessed")) in
    (* Coalesce mixing queries chain by chain; everything else is
       evaluated serially in arrival order. *)
    let groups = Hashtbl.create 8 in
    let order = ref [] in
    Array.iteri
      (fun pos job ->
        match job.query with
        | P.Mixing { game; n = players; beta; eps; replicas; seed } ->
            let key = (game, players, Int64.bits_of_float beta) in
            if not (Hashtbl.mem groups key) then order := key :: !order;
            Hashtbl.replace groups key
              ((pos, job, eps, replicas, seed)
              :: (try Hashtbl.find groups key with Not_found -> []))
        | q ->
            out.(pos) <-
              (if expired job then Error P.Deadline_exceeded
               else guard (fun () -> Engine.eval engine q)))
      jobs_a;
    List.iter
      (fun ((game, players, _) as key) ->
        let group = List.rev (Hashtbl.find groups key) in
        let _, sample_job, _, _, _ = List.hd group in
        let beta =
          match sample_job.query with
          | P.Mixing { beta; _ } -> beta
          | _ -> 0. (* unreachable: groups hold only Mixing queries *)
        in
        match Engine.entry engine ~game ~n:players ~beta with
        | Error msg ->
            List.iter
              (fun (pos, _, _, _, _) -> out.(pos) <- Error (P.Bad_request msg))
              group
        | Ok e ->
            if Engine.spectral_route engine e then
              run_spectral_group engine out e group
            else begin
              (* Requests already past their deadline skip the sweep. *)
              let live, dead =
                List.partition (fun (_, job, _, _, _) -> not (expired job)) group
              in
              List.iter
                (fun (pos, _, _, _, _) -> out.(pos) <- Error P.Deadline_exceeded)
                dead;
              if live <> [] then run_panel_group engine stats out e live
            end)
      (List.rev !order);
    Array.to_list (Array.mapi (fun i job -> (job, out.(i))) jobs_a)
  end
