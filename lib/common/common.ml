exception No_convergence of string

let () =
  Printexc.register_printer (function
    | No_convergence msg -> Some (Printf.sprintf "No_convergence(%s)" msg)
    | _ -> None)

let no_convergence fmt =
  Printf.ksprintf (fun msg -> raise (No_convergence msg)) fmt

let feq ~eps a b =
  if eps < 0. || Float.is_nan eps then invalid_arg "Common.feq: need eps >= 0";
  Float.abs (a -. b) <= eps
