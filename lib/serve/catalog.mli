(** The named-game catalogue.

    One table maps a stable game id ("ring", "clique", ...) to its
    builder; the CLI, the daemon and the load bench all resolve ids
    here, so a chain recipe means the same thing to every front end —
    which is what lets the daemon's warm cache serve CLI-built
    artifacts and vice versa. *)

type spec = {
  id : string;  (** stable identifier, also the chain-recipe key *)
  doc : string;  (** one-line description for [logitdyn list] *)
  build : n:int -> beta:float -> Games.Game.t * (int -> float) option;
      (** builds the game and, when it is (or recovers as) a potential
          game, its potential function over encoded profiles *)
}

(** Every named game, in listing order. *)
val all : spec list

(** [find id] is the spec registered under [id], if any. *)
val find : string -> spec option
