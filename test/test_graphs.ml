open Helpers
open Graphs

(* ----- Graph ----- *)

let graph_basic () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (1, 0) ] in
  check_int "vertices" 4 (Graph.num_vertices g);
  check_int "edges deduped" 2 (Graph.num_edges g);
  check_true "has edge" (Graph.has_edge g 0 1);
  check_true "symmetric" (Graph.has_edge g 1 0);
  check_false "no edge" (Graph.has_edge g 0 3);
  check_int "degree" 2 (Graph.degree g 1);
  check_int "max degree" 2 (Graph.max_degree g);
  check_true "neighbors sorted" (Graph.neighbors g 1 = [ 0; 2 ])

let graph_add_edge () =
  let g = Graph.create 3 in
  let g = Graph.add_edge g 0 2 in
  check_true "added" (Graph.has_edge g 0 2);
  check_int "idempotent" 1 (Graph.num_edges (Graph.add_edge g 0 2));
  check_raises_invalid "self-loop" (fun () -> ignore (Graph.add_edge g 1 1));
  check_raises_invalid "range" (fun () -> ignore (Graph.add_edge g 0 5))

let graph_edges_fold () =
  let g = Graph.of_edges 3 [ (2, 0); (1, 2) ] in
  check_true "edges sorted" (Graph.edges g = [ (0, 2); (1, 2) ]);
  check_int "fold count" 2 (Graph.fold_edges (fun acc _ _ -> acc + 1) 0 g);
  check_true "equal" (Graph.equal g (Graph.of_edges 3 [ (1, 2); (0, 2) ]));
  check_false "not equal" (Graph.equal g (Graph.create 3))

(* ----- Generators ----- *)

let generators_counts () =
  check_int "clique edges" 10 (Graph.num_edges (Generators.clique 5));
  check_int "path edges" 4 (Graph.num_edges (Generators.path 5));
  check_int "ring edges" 5 (Graph.num_edges (Generators.ring 5));
  check_int "star edges" 4 (Graph.num_edges (Generators.star 5));
  check_int "grid 2x3 edges" 7 (Graph.num_edges (Generators.grid 2 3));
  check_int "torus 3x3 edges" 18 (Graph.num_edges (Generators.torus 3 3));
  check_int "K23 edges" 6 (Graph.num_edges (Generators.complete_bipartite 2 3));
  check_int "tree edges" 6 (Graph.num_edges (Generators.binary_tree 7));
  check_raises_invalid "tiny ring" (fun () -> ignore (Generators.ring 2))

let generators_regular () =
  let r = rng () in
  let g = Generators.random_regular r 10 3 in
  for v = 0 to 9 do
    check_int (Printf.sprintf "degree %d" v) 3 (Graph.degree g v)
  done;
  check_raises_invalid "odd product" (fun () ->
      ignore (Generators.random_regular r 5 3))

let generators_er () =
  let r = rng () in
  let g0 = Generators.erdos_renyi r 10 0. in
  check_int "p=0" 0 (Graph.num_edges g0);
  let g1 = Generators.erdos_renyi r 10 1. in
  check_int "p=1" 45 (Graph.num_edges g1)

(* ----- Props ----- *)

let props_connectivity () =
  check_true "ring connected" (Props.is_connected (Generators.ring 6));
  check_false "empty disconnected" (Props.is_connected (Generators.empty 3));
  let comps = Props.connected_components (Graph.of_edges 5 [ (0, 1); (3, 4) ]) in
  check_int "3 components" 3 (List.length comps);
  check_true "component content" (List.mem [ 3; 4 ] comps)

let props_distances () =
  let g = Generators.path 5 in
  check_array ~tol:0. "bfs"
    [| 0.; 1.; 2.; 3.; 4. |]
    (Array.map float_of_int (Props.bfs_distances g 0));
  check_int "path diameter" 4 (Props.diameter g);
  check_int "ring diameter" 3 (Props.diameter (Generators.ring 6));
  check_int "clique diameter" 1 (Props.diameter (Generators.clique 4));
  check_raises_invalid "disconnected diameter" (fun () ->
      ignore (Props.diameter (Generators.empty 2)))

let props_bipartite_triangles () =
  check_true "ring6 bipartite" (Props.is_bipartite (Generators.ring 6));
  check_false "ring5 not bipartite" (Props.is_bipartite (Generators.ring 5));
  check_true "tree bipartite" (Props.is_bipartite (Generators.binary_tree 7));
  check_int "K4 triangles" 4 (Props.triangle_count (Generators.clique 4));
  check_int "K5 triangles" 10 (Props.triangle_count (Generators.clique 5));
  check_int "ring triangles" 0 (Props.triangle_count (Generators.ring 6));
  check_int "triangle of C3" 1 (Props.triangle_count (Generators.ring 3))

let props_degree_histogram () =
  let h = Props.degree_histogram (Generators.star 5) in
  check_int "leaves" 4 h.(1);
  check_int "hub" 1 h.(4)

(* ----- Cutwidth ----- *)

let cutwidth_known () =
  check_int "path" 1 (Cutwidth.exact (Generators.path 6));
  check_int "ring" 2 (Cutwidth.exact (Generators.ring 6));
  check_int "empty" 0 (Cutwidth.exact (Generators.empty 4));
  (* Clique K_n has cutwidth floor(n^2/4). *)
  check_int "K4" 4 (Cutwidth.exact (Generators.clique 4));
  check_int "K5" 6 (Cutwidth.exact (Generators.clique 5));
  check_int "K6" 9 (Cutwidth.exact (Generators.clique 6));
  (* Star K_{1,n-1} has cutwidth ceil((n-1)/2). *)
  check_int "star5" 2 (Cutwidth.exact (Generators.star 5));
  check_int "star6" 3 (Cutwidth.exact (Generators.star 6))

let cutwidth_ordering () =
  let g = Generators.path 4 in
  check_int "natural order" 1 (Cutwidth.of_ordering g [| 0; 1; 2; 3 |]);
  check_int "bad order" 3 (Cutwidth.of_ordering g [| 0; 2; 1; 3 |]);
  check_raises_invalid "not a permutation" (fun () ->
      ignore (Cutwidth.of_ordering g [| 0; 0; 1; 2 |]))

let cutwidth_optimal_ordering_consistent () =
  let g = Generators.grid 2 3 in
  let width, order = Cutwidth.exact_with_ordering g in
  check_int "ordering realises value" width (Cutwidth.of_ordering g order)

let cutwidth_heuristic_upper_bound =
  QCheck.Test.make ~name:"heuristic >= exact cutwidth on random graphs" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Prob.Rng.create seed in
      let n = 4 + Prob.Rng.int r 5 in
      let g = Generators.erdos_renyi r n 0.4 in
      let exact = Cutwidth.exact g in
      let heuristic = Cutwidth.heuristic ~restarts:10 ~seed g in
      heuristic >= exact)

let cutwidth_heuristic_often_tight () =
  (* On small structured graphs the local search should find the optimum. *)
  List.iter
    (fun g -> check_int "heuristic tight" (Cutwidth.exact g) (Cutwidth.heuristic g))
    [ Generators.path 7; Generators.ring 7; Generators.clique 6 ]

let suites =
  [
    ( "graphs.graph",
      [
        test "basics" graph_basic;
        test "add_edge" graph_add_edge;
        test "edges & fold" graph_edges_fold;
      ] );
    ( "graphs.generators",
      [
        test "edge counts" generators_counts;
        test "random regular" generators_regular;
        test "erdos-renyi extremes" generators_er;
      ] );
    ( "graphs.props",
      [
        test "connectivity" props_connectivity;
        test "distances & diameter" props_distances;
        test "bipartite & triangles" props_bipartite_triangles;
        test "degree histogram" props_degree_histogram;
      ] );
    ( "graphs.cutwidth",
      [
        test "known values" cutwidth_known;
        test "of_ordering" cutwidth_ordering;
        test "optimal ordering consistent" cutwidth_optimal_ordering_consistent;
        test "heuristic tight on structured graphs" cutwidth_heuristic_often_tight;
        qcheck cutwidth_heuristic_upper_bound;
      ] );
  ]
