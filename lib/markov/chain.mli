(** Finite Markov chains in CSR (compressed sparse row) representation.

    The logit dynamics on n players with m strategies each has mⁿ
    states but only n(m-1)+1 non-zero transitions per state, so the
    whole library works with sparse rows; dense matrices are
    materialised only for small state spaces (spectral analysis).

    Internally the rows live in three flat arrays — column indices,
    probabilities and per-row prefix sums, plus a row-offset array —
    so the hot kernels ([evolve_into], [apply], [sample_step], [prob])
    run over contiguous unboxed memory with zero allocation. Column
    indices are strictly increasing within every row (duplicates are
    summed and zeros dropped at construction), which is what makes the
    binary searches in [prob] and the sampler correct.

    A transposed (CSC) view is derived lazily on first use by the
    pull-mode kernels ([evolve_pull_into], [evolve_many_into], and any
    pooled [evolve_into]): per destination column, the source states in
    strictly increasing order with their probabilities. It is derived
    data — never serialised, rebuilt after {!of_csr} — and it makes
    distribution evolution a gather in which each destination is
    written by exactly one loop iteration, so the work can be chunked
    across {!Exec.Pool} domains while staying bit-identical to the
    serial push (scatter) kernel. *)

type t

(** [of_rows ?pool rows] validates and packs a chain: [rows.(i)] lists
    the non-zero transitions [(j, p)] out of state [i]. Requires every
    probability non-negative, row sums within [1e-9] of one, and
    column indices in range; duplicate columns within a row are
    summed. Row sums are renormalised exactly to one. Validation and
    normalisation are per-row independent; [?pool] distributes them
    across domains (identical results, any pool size). *)
val of_rows : ?pool:Exec.Pool.t -> (int * float) array array -> t

(** [of_function ?pool n row] tabulates [row i] for every state —
    with [?pool], rows are built and normalised in parallel, which is
    the hot path when materialising logit chains ([row] must be safe
    to call concurrently for distinct states). *)
val of_function : ?pool:Exec.Pool.t -> int -> (int -> (int * float) list) -> t

(** [normalized_row ~size i entries] is the exact validation +
    normalisation pipeline {!of_rows} applies to one row: column
    indices checked against [size], duplicates summed, zeros dropped,
    probabilities renormalised to exact mass one and sorted by
    column. Exposed so out-of-RAM row consumers ({!Ooc.Segment}'s
    streaming builder) store probabilities bit-identical to the
    in-RAM chain built from the same generator. Raises
    [Invalid_argument] exactly when {!of_rows} would. *)
val normalized_row : size:int -> int -> (int * float) array -> (int * float) array

(** [of_dense m] converts a dense stochastic matrix.
    Raises [Invalid_argument] if [m] is not square/stochastic. *)
val of_dense : Linalg.Mat.t -> t

(** [to_csr t] exposes the raw CSR arrays as copies: row offsets
    (length [size t + 1]), column indices and probabilities (length
    [nnz t]) — the serialisation surface behind {!Chain_codec}. The
    per-row prefix sums are derived data and deliberately not
    exposed; {!of_csr} recomputes them. *)
val to_csr : t -> int array * int array * float array

(** [of_csr ~row_start ~cols ~probs] rebuilds a chain from raw CSR
    arrays (copied, not aliased), validating the full invariant —
    offsets spanning the arrays with every row non-empty, columns in
    range and strictly increasing within each row, probabilities in
    (0, 1] and each row's mass within [1e-6] of one — and re-deriving
    the per-row prefix sums in construction order, so the rebuilt
    chain evolves and samples bit-identically to the one
    [to_csr] came from. Raises [Invalid_argument] on any violation
    (a decoded artifact must fail loudly, never yield a garbage
    chain). *)
val of_csr : row_start:int array -> cols:int array -> probs:float array -> t

(** [to_csc t] exposes the lazily-derived transposed layout as copies:
    column offsets (length [size t + 1]), source-state indices and
    probabilities (length [nnz t]). Slice
    [t_col_start.(j), t_col_start.(j+1)) lists the states [i] with
    [P(i, j) > 0] in strictly increasing order, probabilities
    bit-identical to the CSR entries they mirror. Derived data for the
    pull kernels and for tests — deliberately absent from
    {!Chain_codec} artifacts, whose frames and keys depend on the CSR
    arrays alone. *)
val to_csc : t -> int array * int array * float array

(** [size t] is the number of states. *)
val size : t -> int

(** [nnz t] is the total number of stored transitions. *)
val nnz : t -> int

(** [degree t i] is the number of stored transitions out of state [i]
    (at least 1: every row carries mass one). *)
val degree : t -> int -> int

(** [iter_row t i f] applies [f j p] to every stored transition
    [i → j] with probability [p], in increasing column order, without
    materialising the row. This is the allocation-free way to walk a
    row; prefer it over {!row} in loops. *)
val iter_row : t -> int -> (int -> float -> unit) -> unit

(** [row t i] is the sparse row of state [i], freshly allocated as a
    tuple array view over the CSR storage (sorted by column, safe to
    mutate). *)
val row : t -> int -> (int * float) array

(** [row_list t i] is the row as a list. *)
val row_list : t -> int -> (int * float) list

(** [prob t i j] is P(i, j) — a binary search over the sorted column
    slice of row [i], O(log degree). *)
val prob : t -> int -> int -> float

(** [evolve t mu] is the push-forward μP of the distribution vector
    [mu]. *)
val evolve : t -> float array -> float array

(** [evolve_into ?pool t ~src ~dst] writes the push-forward [src]·P
    into [dst] without allocating — the double-buffered kernel behind
    {!Mixing.tv_curve} and friends. [src] and [dst] must be distinct
    arrays of length [size t] ([Invalid_argument] otherwise). Without
    [?pool] this is the serial push (scatter) kernel; with [?pool] the
    destinations are gathered in pull mode and chunked across the
    pool's domains — unless the estimated work [nnz t] is below
    {!Exec.Pool.serial_cutover}, in which case the pooled call runs
    the serial push directly (dispatch overhead would dominate). Both
    paths produce bit-identical results (for each destination the
    contributions are summed over sources in increasing order either
    way), identical to {!evolve}. *)
val evolve_into : ?pool:Exec.Pool.t -> t -> src:float array -> dst:float array -> unit

(** [evolve_pull_into ?pool t ~src ~dst] is the pull-mode (gather)
    evolve over the transposed layout:
    [dst.(j) = Σᵢ src.(i)·P(i,j)] with sources visited in increasing
    [i], so the result is bit-identical to the push kernel while each
    destination is owned by exactly one writer — the race-free shape
    behind pooled single-distribution evolution. Same argument checks
    as {!evolve_into}. Exposed separately so the serial pull kernel
    can be tested and benchmarked against the push kernel directly. *)
val evolve_pull_into :
  ?pool:Exec.Pool.t -> t -> src:float array -> dst:float array -> unit

(** A flat row-major panel of [k] distributions over the state space:
    distribution [r] occupies indices [r*size t, (r+1)*size t) of a
    Float64 {!Bigarray.Array1}. *)
type panel = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** [evolve_many_into ?pool t ~k ~src ~dst] advances all [k]
    distributions of the [src] panel one step into [dst] in a single
    traversal of the transition matrix (blocked SpMM): the matrix
    columns stream once per block of distributions — the block sized so
    its panel slices fit in L2 — so matrix traffic is amortised over
    the block instead of being re-read per distribution. Every panel
    row of the result is bit-identical to a single-distribution
    {!evolve_into} of that row, for any pool size and any block size
    (per destination the sources are summed in increasing order, and
    each [(r, j)] cell is written by exactly one iteration). [src] and
    [dst] must be distinct panels of dimension [k * size t]
    ([Invalid_argument] otherwise). *)
val evolve_many_into : ?pool:Exec.Pool.t -> t -> k:int -> src:panel -> dst:panel -> unit

(** [same_structure a b] is true iff [a] and [b] have identical sparsity
    structure: equal size and element-wise equal [row_start]/[cols]
    arrays (physical sharing short-circuits). Two chains over the same
    game at different β usually agree — the β-independent payoff
    comparisons determine which transitions exist — but softmax tail
    underflow can drop entries at extreme β, so structure sharing is a
    checked property, never an assumption. *)
val same_structure : t -> t -> bool

(** [with_structure_of ~base t] is [t] with its CSR index arrays (and
    CSC view) physically shared with [base] when
    [same_structure base t]; otherwise [t] unchanged. The probabilities
    and prefix sums remain [t]'s own, and the pre-seeded CSC view
    carries [t]'s probabilities permuted in exactly the
    counting-transpose slot order the lazy derivation would use — pure
    copies, no arithmetic — so every observable of the result is
    bit-identical to [t]'s. This is the memory/locality backbone of
    {!Family}: one β-grid's planes share one set of index arrays. *)
val with_structure_of : base:t -> t -> t

(** [evolve_many_shared_into ?pool planes ~k ~src ~dst] advances one
    [k]-distribution panel per plane in a single fused traversal of the
    planes' shared index structure: the transposed column slices are
    read once per (plane, block) pair while the probability planes vary,
    amortising index traffic across the β-grid. Requires a non-empty
    [planes] array whose members all satisfy
    [same_structure planes.(0)], and [src]/[dst] arrays with one panel
    of dimension [k * size] per plane, destinations pairwise distinct
    and distinct from every source ([Invalid_argument] otherwise). The
    per-cell gather is exactly {!evolve_many_into}'s (sources in
    increasing order, one writer per destination cell), so each plane's
    [dst] is bit-identical to a per-plane [evolve_many_into] call, for
    any pool size. The pool dispatch is over the flat
    (plane × block × destination) space with the same per-item cost
    calibration as {!evolve_many_into}, so below-cutover grids never
    dispatch regardless of the number of planes. *)
val evolve_many_shared_into :
  ?pool:Exec.Pool.t -> t array -> k:int -> src:panel array -> dst:panel array -> unit

(** [apply ?pool t f] is the function application Pf,
    [(Pf)(i) = Σ_j P(i,j) f(j)] — already gather-mode over the CSR
    rows, so [?pool] chunks the rows across domains race-free with
    bit-identical results. *)
val apply : ?pool:Exec.Pool.t -> t -> float array -> float array

(** [to_dense t] materialises the dense transition matrix. *)
val to_dense : t -> Linalg.Mat.t

(** [sample_step rng t i] draws the next state from P(i, ·) by binary
    search on the precomputed per-row prefix sums — O(log degree) per
    step with no allocation, and bit-compatible with the historical
    linear scan (same prefix sums, same tie-breaking). *)
val sample_step : Prob.Rng.t -> t -> int -> int

(** [sample_step_of t i ~u] is the deterministic core of
    {!sample_step}: the next state selected by the uniform draw
    [u ∈ [0, 1)]. The entry chosen is the first whose running prefix
    sum exceeds [u]; a [u] at or beyond the accumulated row mass
    (reachable only through floating-point rounding) falls back to the
    last stored entry, which is strictly positive by construction.
    Exposed for boundary testing and for callers that manage their own
    uniform variates (e.g. common random numbers couplings). *)
val sample_step_of : t -> int -> u:float -> int

(** [simulate rng t ~start ~steps] returns the trajectory
    [x₀ = start, x₁, ..., x_steps] (length [steps + 1]). *)
val simulate : Prob.Rng.t -> t -> start:int -> steps:int -> int array

(** [hitting_time rng t ~start ~target ~max_steps] simulates until the
    chain first reaches a state satisfying [target]; [None] if not hit
    within [max_steps]. A [start] already satisfying [target] hits at
    time 0. Raises [Invalid_argument] on a bad [start] or a negative
    [max_steps]. *)
val hitting_time :
  Prob.Rng.t -> t -> start:int -> target:(int -> bool) -> max_steps:int ->
  int option

(** [is_irreducible t] tests strong connectivity of the transition
    graph (two BFS passes, forward and backward). *)
val is_irreducible : t -> bool

(** [is_aperiodic t] tests aperiodicity (gcd of cycle lengths via BFS
    levels; sufficient check: some state has a self-loop, otherwise a
    full gcd computation on the strongly-connected chain). *)
val is_aperiodic : t -> bool

(** [is_reversible ?tol t pi] checks detailed balance
    π(x)P(x,y) = π(y)P(y,x) for all edges. *)
val is_reversible : ?tol:float -> t -> float array -> bool

(** [edge_measure t pi i j] is Q(i,j) = π(i)·P(i,j). *)
val edge_measure : t -> float array -> int -> int -> float

(** [lazy_version t] is the chain ½(I + P) — aperiodic by
    construction, same stationary distribution. *)
val lazy_version : t -> t
