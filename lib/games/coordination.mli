(** 2×2 coordination games (paper, Section 5, payoff matrix (10)).

    Strategies are 0 and 1 with payoff matrix

    {v            0       1
         0 |  a, a  |  c, d  |
         1 |  d, c  |  b, b  |  v}

    and δ₀ = a - d, δ₁ = b - c. The game is a coordination game when
    δ₀ > 0 and δ₁ > 0, in which case (0,0) and (1,1) are its pure
    Nash equilibria and the one with the larger δ is risk dominant.
    Its exact potential is φ(0,0) = -δ₀, φ(1,1) = -δ₁,
    φ(0,1) = φ(1,0) = 0. *)

type t = private { a : float; b : float; c : float; d : float }

(** [create ~a ~b ~c ~d] validates δ₀ > 0 and δ₁ > 0 and packs the
    parameters. Raises [Invalid_argument] otherwise. *)
val create : a:float -> b:float -> c:float -> d:float -> t

(** [of_deltas ~delta0 ~delta1] is the normalised game with
    [a = delta0], [b = delta1], [c = d = 0]. *)
val of_deltas : delta0:float -> delta1:float -> t

(** [delta0 t] is a - d. *)
val delta0 : t -> float

(** [delta1 t] is b - c. *)
val delta1 : t -> float

type risk_dominance = Zero_dominant | One_dominant | No_risk_dominant

(** [risk_dominance t] classifies the equilibria: (0,0) is risk
    dominant when δ₀ > δ₁, (1,1) when δ₀ < δ₁. *)
val risk_dominance : t -> risk_dominance

(** [payoff t mine theirs] is the payoff of a player choosing [mine]
    against an opponent choosing [theirs]; strategies are in {0,1}. *)
val payoff : t -> int -> int -> float

(** [edge_potential t x y] is the potential φ of the basic game on the
    pair of strategies [(x, y)]. *)
val edge_potential : t -> int -> int -> float

(** [to_game t] is the two-player strategic game. *)
val to_game : t -> Game.t
