(* Pure resolution of the store-related CLI flags, shared by logitdyn
   and logitdynd. Kept free of cmdliner so the conflict matrix is unit
   testable: the binaries collect every occurrence with
   [Arg.opt_all]/[flag_all] and map [Error] to a usage failure with
   exit code 2. *)

type store_choice = { dir : string option; no_cache : bool }

let resolve_store ~stores ~no_cache_count =
  if List.length stores > 1 then
    Error "--store given more than once; pass a single store directory"
  else if no_cache_count > 1 then Error "--no-cache given more than once"
  else
    match stores with
    | _ :: _ when no_cache_count > 0 ->
        Error "--store conflicts with --no-cache: pick a store or disable it"
    | [ dir ] -> Ok { dir = Some dir; no_cache = false }
    | _ -> Ok { dir = None; no_cache = no_cache_count > 0 }
