(** Shared evaluation engine behind the CLI and the daemon.

    One instance owns the in-memory chain cache (keyed by game id, n
    and the exact beta bits), the optional on-disk {!Store.Cas} warm
    cache, an optional domain pool for the SpMM kernels, and the
    mixing route policy. The CLI's serial paths and the daemon's
    coalescing scheduler both answer through this module — via the
    same {!Markov.Mixing.panel_sweep} /
    {!Markov.Mixing.mixing_time_from_decomposition} primitives — which
    is what makes coalesced answers bit-identical to serial ones. *)

type t

(** A built chain with everything derived from it once per (game, n,
    beta): the stationary distribution, reversibility, and a lazily
    cached eigendecomposition for the spectral route. *)
type entry = {
  spec : Catalog.spec;
  game : Games.Game.t;
  potential : (int -> float) option;
  chain : Markov.Chain.t;
  pi : float array;
  reversible : bool;
  mutable decomposition : (float array * Linalg.Mat.t) option;
}

val default_spectral_cutoff : int
val default_max_steps : int

(** [create ?pool ?store ?spectral_cutoff ?max_steps ()] — a
    reversible chain with at most [spectral_cutoff] states (default
    [2048], the CLI's historical policy; tests pass [0] to force the
    panel route) answers mixing queries through its
    eigendecomposition; everything else runs the blocked-SpMM panel
    with a budget of [max_steps] (default [5_000_000]) steps. Raises
    [Invalid_argument] on negative [max_steps]. *)
val create :
  ?pool:Exec.Pool.t -> ?store:Store.Cas.t -> ?spectral_cutoff:int ->
  ?max_steps:int -> unit -> t

val pool : t -> Exec.Pool.t option

(** The panel-route step budget. *)
val max_steps : t -> int

(** [entry t ~game ~n ~beta] builds (or returns the cached) chain
    entry; [Error] on an unknown game or an oversized state space.
    Failed builds are cached too — a bad request does not get
    recomputed per retry. *)
val entry : t -> game:string -> n:int -> beta:float -> (entry, string) result

(** [spectral_route t e] — whether mixing queries on [e] go through
    the eigendecomposition. *)
val spectral_route : t -> entry -> bool

(** The (lazily computed, cached) eigendecomposition of an entry. *)
val decomposition : entry -> float array * Linalg.Mat.t

(** Every state of the entry's chain, the start set of exact d(t). *)
val all_starts : entry -> int list

(** Potential-barrier quantities, when the game has a potential. *)
val barrier_of : entry -> Protocol.barrier option

(** [empirical_of t e ~tmix ~replicas ~seed] is the Monte-Carlo TV
    estimate at [tmix] (or 1000 steps when [tmix] is [None]);
    [None] when [replicas <= 0]. *)
val empirical_of :
  t -> entry -> tmix:int option -> replicas:int -> seed:int ->
  (int * float) option

(** [mixing_reply_of t e ~tmix ~replicas ~seed] assembles the full
    mixing reply around an already-settled [tmix] — the scheduler uses
    this after a coalesced panel sweep. *)
val mixing_reply_of :
  t -> entry -> tmix:int option -> replicas:int -> seed:int -> Protocol.reply

(** [eval t q] answers a single query serially. [Stats] is not an
    engine query (the server owns the counters) and returns
    [Server_error]. *)
val eval : t -> Protocol.query -> (Protocol.reply, Protocol.error) result

(** (in-memory chain cache hits, misses) *)
val cache_stats : t -> int * int

(** (on-disk store hits, misses); zeros without a store. *)
val store_stats : t -> int * int
