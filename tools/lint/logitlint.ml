(* logitlint — the project lint pass. See README.md ("Lint") for the
   rule catalogue and suppression syntax.

   Exit codes: 0 clean, 1 unsuppressed violations, 2 usage/config/IO
   error. *)

let default_dirs = [ "lib"; "bin"; "bench"; "test" ]

let () =
  let root = ref "." in
  let format = ref "text" in
  let show_suppressed = ref false in
  let list_rules = ref false in
  let out_file = ref "" in
  let dirs = ref [] in
  let spec =
    [
      ("--root", Arg.Set_string root, "DIR scan relative to DIR (default .)");
      ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format (default text)" );
      ( "--show-suppressed",
        Arg.Set show_suppressed,
        " include suppressed findings in the text report" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
      ( "-o",
        Arg.Set_string out_file,
        "FILE also write the report to FILE (stdout is unaffected)" );
    ]
  in
  let usage =
    "logitlint [options] [DIR ...]\n\
     Scans DIRs (default: lib bin bench test) under --root for project \
     rule violations."
  in
  Arg.parse spec (fun d -> dirs := d :: !dirs) usage;
  if !list_rules then begin
    List.iter
      (fun (r : Lint_engine.Lint.rule) ->
        Printf.printf "%-16s %s\n" r.name r.doc)
      Lint_engine.Rules.all;
    exit 0
  end;
  let dirs = if !dirs = [] then default_dirs else List.rev !dirs in
  match
    Lint_engine.Lint.run ~root:!root ~dirs ~rules:Lint_engine.Rules.all
  with
  | exception Lint_engine.Lint.Config_error msg ->
      prerr_endline ("logitlint: config error: " ^ msg);
      exit 2
  | exception Sys_error msg ->
      prerr_endline ("logitlint: " ^ msg);
      exit 2
  | result ->
      let report =
        match !format with
        | "json" -> Lint_engine.Lint.to_json ~root:!root result
        | _ -> Lint_engine.Lint.to_text ~show_suppressed:!show_suppressed result
      in
      print_string report;
      if !out_file <> "" then begin
        let oc = open_out !out_file in
        output_string oc report;
        close_out oc
      end;
      exit (if Lint_engine.Lint.violations result = [] then 0 else 1)
