(** Games with dominant strategies (paper, Section 4).

    Theorem 4.2 shows the mixing time of the logit dynamics for a game
    with a dominant profile is O(mⁿ · n log n) {e independently of β};
    Theorem 4.3 exhibits a matching Ω(m^{n-1}) lower-bound game. *)

(** [lower_bound_game ~players ~strategies] is the Theorem 4.3 game:
    every player has utility 0 at the all-zero profile and -1
    everywhere else. Strategy 0 is (weakly) dominant for everyone, and
    the game is a potential game with Φ(x) = [x ≠ 0]. *)
val lower_bound_game : players:int -> strategies:int -> Game.t

(** [lower_bound_potential ~players ~strategies idx] is the potential
    of that game at profile [idx]: 0 at the all-zero profile, 1
    elsewhere. *)
val lower_bound_potential : players:int -> strategies:int -> int -> float

(** [prisoners_dilemma ?temptation ?reward ?punishment ?sucker ()] is
    the classic 2-player dilemma (defect = strategy 0 is strictly
    dominant). Defaults: T=5, R=3, P=1, S=0. *)
val prisoners_dilemma :
  ?temptation:float -> ?reward:float -> ?punishment:float -> ?sucker:float ->
  unit -> Game.t

(** [n_player_dilemma ~players] is a linear public-goods dilemma:
    contributing (strategy 1) costs 1.5 and pays 1 to every player
    including self, so free-riding (strategy 0) is strictly
    dominant. *)
val n_player_dilemma : players:int -> Game.t
