type t = {
  graph : Graphs.Graph.t;
  space : Strategy_space.t;
  edge_payoff : int -> int -> int -> int -> float;
}

let create graph ~strategies ~edge_payoff =
  if strategies < 2 then invalid_arg "Polymatrix.create: need >= 2 strategies";
  let n = Graphs.Graph.num_vertices graph in
  if n = 0 then invalid_arg "Polymatrix.create: empty graph";
  { graph; space = Strategy_space.uniform ~players:n ~strategies; edge_payoff }

let graph t = t.graph
let space t = t.space

let shared_payoff t u v a b =
  if u < v then t.edge_payoff u v a b else t.edge_payoff v u b a

let potential t idx =
  Graphs.Graph.fold_edges
    (fun acc u v ->
      acc
      -. t.edge_payoff u v
           (Strategy_space.player_strategy t.space idx u)
           (Strategy_space.player_strategy t.space idx v))
    0. t.graph

let to_game t =
  let utility player idx =
    let mine = Strategy_space.player_strategy t.space idx player in
    List.fold_left
      (fun acc v ->
        acc
        +. shared_payoff t player v mine
             (Strategy_space.player_strategy t.space idx v))
      0.
      (Graphs.Graph.neighbors t.graph player)
  in
  let g =
    Game.create
      ~name:(Printf.sprintf "polymatrix(n=%d)" (Graphs.Graph.num_vertices t.graph))
      t.space utility
  in
  if Strategy_space.size t.space <= 1 lsl 22 then Game.tabulate g else g

let edge_index_table graph =
  let table = Hashtbl.create 64 in
  List.iteri (fun k (u, v) -> Hashtbl.replace table (u, v) k) (Graphs.Graph.edges graph);
  table

let spin_glass rng graph ~coupling =
  if coupling <= 0. then invalid_arg "Polymatrix.spin_glass: coupling > 0";
  let edges = Graphs.Graph.edges graph in
  let couplings =
    Array.of_list
      (List.map (fun _ -> if Prob.Rng.bool rng then coupling else -.coupling) edges)
  in
  let index = edge_index_table graph in
  let edge_payoff u v a b =
    let j = couplings.(Hashtbl.find index (u, v)) in
    if a = b then j else -.j
  in
  (create graph ~strategies:2 ~edge_payoff, couplings)

let ferromagnet graph ~coupling =
  if coupling <= 0. then invalid_arg "Polymatrix.ferromagnet: coupling > 0";
  create graph ~strategies:2 ~edge_payoff:(fun _u _v a b ->
      if a = b then coupling else -.coupling)

let frustrated_triangles t ~couplings =
  let edges = Graphs.Graph.edges t.graph in
  if Array.length couplings <> List.length edges then
    invalid_arg "Polymatrix.frustrated_triangles: one coupling per edge";
  let index = edge_index_table t.graph in
  let j u v = couplings.(Hashtbl.find index (Int.min u v, Int.max u v)) in
  let n = Graphs.Graph.num_vertices t.graph in
  let count = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Graphs.Graph.has_edge t.graph u v then
        for w = v + 1 to n - 1 do
          if Graphs.Graph.has_edge t.graph u w && Graphs.Graph.has_edge t.graph v w
          then if j u v *. j u w *. j v w < 0. then incr count
        done
    done
  done;
  !count
