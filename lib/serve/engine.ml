(* Shared evaluation engine behind the CLI and the daemon.

   One instance owns: an in-memory cache of built chains (keyed by
   game id, n and the exact beta bits), the on-disk Store.Cas warm
   cache for chain and stationary artifacts, an optional domain pool
   for the SpMM kernels, and the route policy (spectral vs panel) for
   mixing queries. The CLI's serial answers and the daemon's coalesced
   answers both come out of this module — through the very same
   Mixing.panel_sweep / mixing_time_from_decomposition primitives — so
   they agree bit for bit. *)

module P = Protocol

type entry = {
  spec : Catalog.spec;
  game : Games.Game.t;
  potential : (int -> float) option;
  chain : Markov.Chain.t;
  pi : float array;
  reversible : bool;
  mutable decomposition : (float array * Linalg.Mat.t) option;
}

type t = {
  pool : Exec.Pool.t option;
  store : Store.Cas.t option;
  spectral_cutoff : int;
  max_steps : int;
  chains : (string * int * int64, (entry, string) result) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let default_spectral_cutoff = 2048
let default_max_steps = 5_000_000

(* Mirrors the CLI's historical guard: exact evolution beyond 2^16
   states is out of budget for a query daemon. *)
let max_state_space = 1 lsl 16

let create ?pool ?store ?(spectral_cutoff = default_spectral_cutoff)
    ?(max_steps = default_max_steps) () =
  if max_steps < 0 then invalid_arg "Engine.create: negative max_steps";
  {
    pool;
    store;
    spectral_cutoff;
    max_steps;
    chains = Hashtbl.create 16;
    cache_hits = 0;
    cache_misses = 0;
  }

let pool t = t.pool
let max_steps t = t.max_steps

let store_stats t =
  match t.store with
  | None -> (0, 0)
  | Some cas ->
      let s = Store.Cas.stats cas in
      (s.Store.Cas.hits, s.Store.Cas.misses)

let cache_stats t = (t.cache_hits, t.cache_misses)

(* Chain builds are keyed by the full recipe: game id, n, state count,
   exact beta, dynamics variant, CSR layout + codec versions. *)
let build_chain ?pool ~store spec game ~n ~beta =
  let key =
    Markov.Chain_codec.recipe ~game:spec.Catalog.id ~size:(Games.Game.size game)
      ~beta ~variant:"sequential-logit"
      ~extra:[ ("n", string_of_int n) ]
      ()
  in
  Markov.Chain_codec.cached ?store key (fun () ->
      Logit.Logit_dynamics.chain ?pool game ~beta)

let stationary_key spec ~n ~size ~beta =
  Store.Key.v ~kind:"dist"
    [
      ("game", spec.Catalog.id);
      ("n", string_of_int n);
      ("size", string_of_int size);
      ("beta", Store.Key.float_field beta);
      ("role", "stationary");
      ("codec", string_of_int Store.Codec.version);
    ]

let stationary_of ?store spec game potential ~n ~beta =
  let compute () =
    match potential with
    | Some phi -> Logit.Gibbs.stationary (Games.Game.space game) phi ~beta
    | None ->
        let chain = Logit.Logit_dynamics.chain game ~beta in
        Markov.Stationary.by_solve chain
  in
  match store with
  | None -> compute ()
  | Some cas -> (
      let size = Games.Game.size game in
      let key = stationary_key spec ~n ~size ~beta in
      match Store.Cas.get_decoded cas key ~decode:Store.Codec.decode_dist with
      | Some pi when Array.length pi = size -> pi
      | _ ->
          let pi = compute () in
          Store.Cas.put cas key (Store.Codec.encode_dist pi);
          pi)

let build_entry t ~game:game_id ~n ~beta =
  match Catalog.find game_id with
  | None -> Error (Printf.sprintf "unknown game %S" game_id)
  | Some spec -> (
      match spec.Catalog.build ~n ~beta with
      | exception Invalid_argument msg -> Error msg
      | game, potential ->
          let size = Games.Game.size game in
          if size > max_state_space then
            Error
              (Printf.sprintf "state space too large (%d > %d); reduce n" size
                 max_state_space)
          else begin
            let chain = build_chain ?pool:t.pool ~store:t.store spec game ~n ~beta in
            let pi = stationary_of ?store:t.store spec game potential ~n ~beta in
            let reversible = Markov.Chain.is_reversible ~tol:1e-7 chain pi in
            Ok { spec; game; potential; chain; pi; reversible; decomposition = None }
          end)

let entry t ~game ~n ~beta =
  let key = (game, n, Int64.bits_of_float beta) in
  match Hashtbl.find_opt t.chains key with
  | Some cached ->
      t.cache_hits <- t.cache_hits + 1;
      cached
  | None ->
      t.cache_misses <- t.cache_misses + 1;
      let built = build_entry t ~game ~n ~beta in
      Hashtbl.replace t.chains key built;
      built

let spectral_route t e =
  e.reversible && Games.Game.size e.game <= t.spectral_cutoff

let decomposition e =
  match e.decomposition with
  | Some d -> d
  | None ->
      let d = Markov.Mixing.decompose e.chain e.pi in
      e.decomposition <- Some d;
      d

let all_starts e = List.init (Games.Game.size e.game) Fun.id

let barrier_of e =
  match e.potential with
  | None -> None
  | Some phi ->
      let space = Games.Game.space e.game in
      Some
        {
          P.d_global = Games.Potential.delta_global space phi;
          d_local = Games.Potential.delta_local space phi;
          zeta = Logit.Barrier.zeta space phi;
        }

let empirical_of t e ~tmix ~replicas ~seed =
  if replicas <= 0 then None
  else begin
    let steps = Option.value tmix ~default:1000 in
    let tv =
      Markov.Mixing.empirical_tv ?pool:t.pool (Prob.Rng.create seed) e.chain e.pi
        ~start:0 ~steps ~replicas
    in
    Some (steps, tv)
  end

let mixing_reply_of t e ~tmix ~replicas ~seed =
  P.Mixing_r
    {
      P.size = Games.Game.size e.game;
      reversible = e.reversible;
      route = (if spectral_route t e then P.Spectral else P.Panel);
      tmix;
      empirical = empirical_of t e ~tmix ~replicas ~seed;
      barrier = barrier_of e;
    }

let eval_mixing t e ~eps ~replicas ~seed =
  let tmix =
    if spectral_route t e then
      Markov.Mixing.mixing_time_from_decomposition ~eps
        ~decomposition:(decomposition e) e.pi ~starts:(all_starts e)
    else
      Markov.Mixing.mixing_time ?pool:t.pool ~eps ~max_steps:t.max_steps e.chain
        e.pi ~starts:(all_starts e)
  in
  mixing_reply_of t e ~tmix ~replicas ~seed

(* The dense hitting-time solve has a tighter budget than panel
   evolution; both bounds are the CLI's historical ones. *)
let max_hitting_space = 4096
let hitting_tmix_budget = 2_000_000

let eval_hitting t e =
  let size = Games.Game.size e.game in
  if size > max_hitting_space then
    Error
      (P.Bad_request
         (Printf.sprintf "state space too large (%d) for the dense solve" size))
  else
    match e.potential with
    | None ->
        Error
          (P.Bad_request "hitting targets are defined via the potential; game has none")
    | Some phi ->
        let space = Games.Game.space e.game in
        let vmin, argmin, _, _ = Games.Potential.extrema space phi in
        let target idx = phi idx <= vmin +. 1e-12 in
        let times = Markov.Hitting.expected_times e.chain ~target in
        let worst = Array.fold_left Float.max 0. times in
        let hit_tmix =
          Markov.Mixing.mixing_time ?pool:t.pool
            ~max_steps:hitting_tmix_budget e.chain e.pi ~starts:(all_starts e)
        in
        Ok
          (P.Hitting_r
             { P.size; argmin; phi_min = vmin; worst_hitting = worst; hit_tmix })

let eval t (q : P.query) : (P.reply, P.error) result =
  match q with
  | P.Stats -> Error (P.Server_error "Stats is answered by the server, not the engine")
  | P.Mixing { game; n; beta; eps; replicas; seed } -> (
      match entry t ~game ~n ~beta with
      | Error msg -> Error (P.Bad_request msg)
      | Ok e -> Ok (eval_mixing t e ~eps ~replicas ~seed))
  | P.Stationary { game; n; beta } -> (
      match entry t ~game ~n ~beta with
      | Error msg -> Error (P.Bad_request msg)
      | Ok e -> Ok (P.Stationary_r (Array.copy e.pi)))
  | P.Hitting { game; n; beta } -> (
      match entry t ~game ~n ~beta with
      | Error msg -> Error (P.Bad_request msg)
      | Ok e -> eval_hitting t e)
  | P.Simulate { game; n; beta; steps; seed } -> (
      match entry t ~game ~n ~beta with
      | Error msg -> Error (P.Bad_request msg)
      | Ok e ->
          if steps < 0 then Error (P.Bad_request "negative steps")
          else begin
            let rng = Prob.Rng.create seed in
            let traj =
              Logit.Logit_dynamics.trajectory rng e.game ~beta ~start:0 ~steps
            in
            Ok (P.Simulate_r traj)
          end)
  | P.Sample { game; n; beta; count; seed } -> (
      match entry t ~game ~n ~beta with
      | Error msg -> Error (P.Bad_request msg)
      | Ok e ->
          if count < 1 then Error (P.Bad_request "need count >= 1")
          else begin
            let space = Games.Game.space e.game in
            let binary =
              List.init (Games.Strategy_space.num_players space) (fun i ->
                  Games.Strategy_space.num_strategies space i)
              |> List.for_all (( = ) 2)
            in
            if not binary then
              Error (P.Bad_request "CFTP requires binary strategies")
            else begin
              let rng = Prob.Rng.create seed in
              let samples = Array.make count 0 in
              let max_window = ref 0 in
              match
                for k = 0 to count - 1 do
                  let x, window =
                    Logit.Perfect_sampling.coalescence_epoch rng e.game ~beta
                  in
                  samples.(k) <- x;
                  if window > !max_window then max_window := window
                done
              with
              | () -> Ok (P.Sample_r { samples; max_window = !max_window })
              | exception Common.No_convergence msg ->
                  Error (P.Server_error msg)
            end
          end)
