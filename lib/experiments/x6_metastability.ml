(** X6 (extension) — the transient phase of slowly-mixing chains
    (paper conclusions; the SODA'12 follow-up [2]).

    On the Theorem 3.5 double-well game at large β: (a) the sign
    partition of the second eigenvector recovers the weight cut
    through the barrier shell — the very bottleneck set of the
    lower-bound proof; (b) started inside a basin, the chain reaches
    the basin-restricted stationary profile in O(n log n) steps while
    remaining exponentially far from global equilibrium — quantified
    by the two TV curves. *)

let run ~quick =
  let players = if quick then 8 else 10 in
  let cg = Games.Curve_game.create ~players ~global:3. ~local:1. in
  let game = Games.Curve_game.to_game cg in
  let space = Games.Curve_game.space cg in
  let phi = Games.Curve_game.potential cg in
  let beta = 4.0 in
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let pi = Logit.Gibbs.stationary space phi ~beta in
  let negative, positive, lambda2 = Logit.Metastability.slow_partition chain pi in
  (* Does the sign partition equal a weight cut at the barrier shell? *)
  let shell = Games.Curve_game.shell cg in
  (* Is the partition a weight cut, and at which threshold? A weight
     cut collapses the 2^n sign pattern onto a single threshold; the
     proofs' bottleneck sets are exactly such cuts near the shell. *)
  let cut_threshold_of side =
    let sorted = List.sort compare side in
    let candidates = List.init (players + 2) Fun.id in
    List.find_opt
      (fun threshold ->
        sorted
        = List.filter
            (fun i -> Games.Strategy_space.weight space i < threshold)
            (List.init (Games.Game.size game) Fun.id))
      candidates
  in
  let cut_threshold =
    match (cut_threshold_of negative, cut_threshold_of positive) with
    | Some t, _ | _, Some t -> Some t
    | None, None -> None
  in
  let table1 =
    Table.create
      ~title:
        (Printf.sprintf
           "X6a: slow mode of the Thm 3.5 game, n=%d, beta=%.1f" players beta)
      [ ("quantity", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row table1 [ "lambda_2"; Printf.sprintf "%.10f" lambda2 ];
  Table.add_row table1
    [ "escape scale 1/(1-lambda_2)";
      Table.cell_sci (Logit.Metastability.escape_time_scale ~lambda2) ];
  Table.add_row table1
    [ "|negative side|"; Table.cell_int (List.length negative) ];
  Table.add_row table1
    [ "|positive side|"; Table.cell_int (List.length positive) ];
  Table.add_row table1
    [ "partition is a weight cut"; Table.cell_bool (cut_threshold <> None) ];
  Table.add_row table1
    [ "cut threshold (weight <)";
      (match cut_threshold with Some t -> Table.cell_int t | None -> "-") ];
  Table.add_row table1 [ "barrier shell weight"; Table.cell_int shell ];
  Table.add_note table1
    "the 2^n-state sign pattern collapses onto a single weight threshold \
     (the proofs' bottleneck family); entropy pushes the crossing from the \
     shell toward the heavier well.";

  (* Metastable equilibration inside the SHALLOW basin (weights below
     the shell): most of pi's mass lives on the other side, so the
     chain started at the all-zero profile equilibrates locally while
     staying far from global equilibrium. *)
  let basin i = Games.Strategy_space.weight space i < shell in
  let steps = if quick then 400 else 1_000 in
  let curve = Logit.Metastability.basin_tv_curve chain pi ~basin ~start:0 ~steps in
  let table2 =
    Table.create
      ~title:"X6b: TV to the basin profile vs TV to global equilibrium"
      [
        ("t", Table.Right);
        ("TV to basin pi", Table.Right);
        ("TV to global pi", Table.Right);
      ]
  in
  List.iter
    (fun t ->
      let basin_tv, global_tv = curve.(t) in
      Table.add_row table2
        [
          Table.cell_int t;
          Printf.sprintf "%.4f" basin_tv;
          Printf.sprintf "%.4f" global_tv;
        ])
    (List.filter (fun t -> t <= steps) [ 0; 25; 50; 100; 200; 400; 1_000 ]);
  Table.add_note table2
    "metastability = first column collapses while the second stays put \
     (global mixing needs e^{beta*dPhi}-scale time).";
  [ table1; table2 ]
