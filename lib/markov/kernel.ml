(* A first-class evolution interface: the contract Mixing and
   Stationary actually consume from a chain. In-RAM chains
   ([of_chain]) and out-of-core segmented chains
   ([Ooc.Segmented_chain.kernel]) both satisfy it, so the sweep loops
   are written once and stay bit-identical across storage layouts.

   The pool travels as an explicit [option] (not [?pool]) because an
   optional argument followed only by labelled ones could never be
   erased at a call site anyway (warning 16). *)

type t = {
  size : int;
  evolve_into :
    pool:Exec.Pool.t option -> src:float array -> dst:float array -> unit;
  evolve_many_into :
    pool:Exec.Pool.t option -> k:int -> src:Chain.panel -> dst:Chain.panel -> unit;
}

let size t = t.size

let v ~size ~evolve_into ~evolve_many_into =
  if size <= 0 then invalid_arg "Kernel.v: size must be positive";
  { size; evolve_into; evolve_many_into }

let of_chain chain =
  {
    size = Chain.size chain;
    evolve_into = (fun ~pool ~src ~dst -> Chain.evolve_into ?pool chain ~src ~dst);
    evolve_many_into =
      (fun ~pool ~k ~src ~dst -> Chain.evolve_many_into ?pool chain ~k ~src ~dst);
  }
