let off_diagonal_mass m =
  let n = fst (Mat.dims m) in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let x = Mat.get m i j in
      acc := !acc +. (2. *. x *. x)
    done
  done;
  sqrt !acc

(* One Jacobi rotation annihilating entry (p, q), updating both the
   working matrix [a] and the accumulated eigenvector matrix [v]. *)
let rotate a v p q =
  let apq = Mat.get a p q in
  (* lint: allow float-equality — the rotation is a no-op only on an exact zero *)
  if apq <> 0. then begin
    let app = Mat.get a p p and aqq = Mat.get a q q in
    let theta = (aqq -. app) /. (2. *. apq) in
    (* Stable formula for t = tan of the rotation angle. *)
    let t =
      let s = if theta >= 0. then 1. else -1. in
      s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
    in
    let c = 1. /. sqrt ((t *. t) +. 1.) in
    let s = t *. c in
    let n = fst (Mat.dims a) in
    for k = 0 to n - 1 do
      let akp = Mat.get a k p and akq = Mat.get a k q in
      Mat.set a k p ((c *. akp) -. (s *. akq));
      Mat.set a k q ((s *. akp) +. (c *. akq))
    done;
    for k = 0 to n - 1 do
      let apk = Mat.get a p k and aqk = Mat.get a q k in
      Mat.set a p k ((c *. apk) -. (s *. aqk));
      Mat.set a q k ((s *. apk) +. (c *. aqk))
    done;
    for k = 0 to n - 1 do
      let vkp = Mat.get v k p and vkq = Mat.get v k q in
      Mat.set v k p ((c *. vkp) -. (s *. vkq));
      Mat.set v k q ((s *. vkp) +. (c *. vkq))
    done
  end

let jacobi ?(tol = 1e-12) ?(max_sweeps = 100) m =
  if not (Mat.is_symmetric ~tol:1e-8 m) then
    invalid_arg "Eigen.jacobi: matrix is not symmetric";
  let n = fst (Mat.dims m) in
  let a = Mat.copy m in
  let v = Mat.identity n in
  if n > 1 then begin
    let sweep = ref 0 in
    while off_diagonal_mass a > tol && !sweep < max_sweeps do
      incr sweep;
      for p = 0 to n - 2 do
        for q = p + 1 to n - 1 do
          rotate a v p q
        done
      done
    done
  end;
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> compare (Mat.get a j j) (Mat.get a i i)) order;
  let values = Array.map (fun i -> Mat.get a i i) order in
  let vectors = Mat.init n n (fun i k -> Mat.get v i order.(k)) in
  (values, vectors)

let eigenvalues m = fst (jacobi m)

(* Deterministic pseudo-random starting vector; a fixed generator keeps
   spectral computations reproducible without threading an RNG here. *)
let starting_vector seed n =
  let state = ref (Int64.of_int (seed lxor 0x9E3779B9)) in
  let next () =
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.
  in
  Array.init n (fun _ -> next () -. 0.5)

let power_iteration ?(tol = 1e-12) ?(max_iter = 100_000) ?(seed = 42) av n =
  if n <= 0 then invalid_arg "Eigen.power_iteration: empty dimension";
  let x = ref (starting_vector seed n) in
  let nrm = Vec.norm2 !x in
  x := Vec.scale (1. /. nrm) !x;
  let lambda = ref 0. in
  let continue_ = ref true in
  let iter = ref 0 in
  while !continue_ && !iter < max_iter do
    incr iter;
    let y = av !x in
    let ny = Vec.norm2 y in
    (* lint: allow float-equality — exactly-null iterate: the operator killed x *)
    if ny = 0. then begin
      lambda := 0.;
      continue_ := false
    end
    else begin
      let y = Vec.scale (1. /. ny) y in
      let new_lambda = Vec.dot y (av y) in
      if Float.abs (new_lambda -. !lambda) < tol then continue_ := false;
      lambda := new_lambda;
      x := y
    end
  done;
  (!lambda, !x)

let second_eigenpair_reversible ?(tol = 1e-12) ?(max_iter = 100_000) row pi n =
  if Array.length pi <> n then
    invalid_arg "Eigen.second_eigenvalue_reversible: dimension mismatch";
  let sqrt_pi = Array.map sqrt pi in
  (* A = D^{1/2} P D^{-1/2}: A_{ij} = sqrt(pi_i) P_{ij} / sqrt(pi_j).
     Its top eigenvector is sqrt_pi with eigenvalue 1; we project it
     out of every iterate so the power method converges to λ★. *)
  let top = Vec.scale (1. /. Vec.norm2 sqrt_pi) sqrt_pi in
  let apply x =
    let y = Array.make n 0. in
    for i = 0 to n - 1 do
      let xi_scaled = sqrt_pi.(i) in
      List.iter
        (fun (j, p) ->
          (* lint: allow float-equality — exact-zero skip of absent entries *)
          if p <> 0. then y.(i) <- y.(i) +. (xi_scaled *. p *. x.(j) /. sqrt_pi.(j)))
        (row i)
    done;
    let proj = Vec.dot y top in
    Vec.axpy ~alpha:(-.proj) top y;
    y
  in
  power_iteration ~tol ~max_iter apply n

let second_eigenvalue_reversible ?tol ?max_iter row pi n =
  fst (second_eigenpair_reversible ?tol ?max_iter row pi n)

(* --- General real eigenvalues: Hessenberg reduction + Francis QR --- *)

(* Reduce a square matrix (copied) to upper Hessenberg form by
   elementary stabilised eliminations (the classic [elmhes]). Entries
   below the first subdiagonal become the elimination multipliers and
   are ignored by [hqr]. *)
let hessenberg a =
  let n = fst (Mat.dims a) in
  for m = 1 to n - 2 do
    let x = ref 0. and i = ref m in
    for j = m to n - 1 do
      if Float.abs (Mat.get a j (m - 1)) > Float.abs !x then begin
        x := Mat.get a j (m - 1);
        i := j
      end
    done;
    if !i <> m then begin
      for j = m - 1 to n - 1 do
        let t = Mat.get a !i j in
        Mat.set a !i j (Mat.get a m j);
        Mat.set a m j t
      done;
      for j = 0 to n - 1 do
        let t = Mat.get a j !i in
        Mat.set a j !i (Mat.get a j m);
        Mat.set a j m t
      done
    end;
    (* lint: allow float-equality — an exactly-zero pivot column needs no elimination *)
    if !x <> 0. then
      for i = m + 1 to n - 1 do
        let y = Mat.get a i (m - 1) in
        (* lint: allow float-equality — exact-zero multiplier: row already eliminated *)
        if y <> 0. then begin
          let y = y /. !x in
          Mat.set a i (m - 1) y;
          for j = m to n - 1 do
            Mat.set a i j (Mat.get a i j -. (y *. Mat.get a m j))
          done;
          for j = 0 to n - 1 do
            Mat.set a j m (Mat.get a j m +. (y *. Mat.get a j i))
          done
        end
      done
  done

let sign_of a b = if b >= 0. then Float.abs a else -.Float.abs a

(* Francis double-shift QR on an upper Hessenberg matrix ([hqr] of
   Numerical Recipes, 0-indexed). Destroys [a]; fills [wr], [wi]. *)
let hqr a wr wi =
  let n = fst (Mat.dims a) in
  let anorm = ref 0. in
  for i = 0 to n - 1 do
    for j = Int.max (i - 1) 0 to n - 1 do
      anorm := !anorm +. Float.abs (Mat.get a i j)
    done
  done;
  let t = ref 0. in
  let nn = ref (n - 1) in
  while !nn >= 0 do
    let its = ref 0 in
    let continue_outer = ref true in
    while !continue_outer do
      (* Find the smallest l with negligible subdiagonal a(l, l-1). *)
      let l = ref !nn in
      let searching = ref true in
      while !searching && !l >= 1 do
        let s =
          let s = Float.abs (Mat.get a (!l - 1) (!l - 1)) +. Float.abs (Mat.get a !l !l) in
          (* lint: allow float-equality — exact-zero fallback to the matrix norm *)
          if s = 0. then !anorm else s
        in
        (* lint: allow float-equality — classic |a|+s = s negligibility test *)
        if Float.abs (Mat.get a !l (!l - 1)) +. s = s then begin
          Mat.set a !l (!l - 1) 0.;
          searching := false
        end
        else decr l
      done;
      let l = !l in
      let x = ref (Mat.get a !nn !nn) in
      if l = !nn then begin
        (* One real root found. *)
        wr.(!nn) <- !x +. !t;
        wi.(!nn) <- 0.;
        decr nn;
        continue_outer := false
      end
      else begin
        let y = ref (Mat.get a (!nn - 1) (!nn - 1)) in
        let w = ref (Mat.get a !nn (!nn - 1) *. Mat.get a (!nn - 1) !nn) in
        if l = !nn - 1 then begin
          (* A 2x2 block: two roots (real pair or conjugate pair). *)
          let p = 0.5 *. (!y -. !x) in
          let q = (p *. p) +. !w in
          let z = sqrt (Float.abs q) in
          x := !x +. !t;
          if q >= 0. then begin
            let z = p +. sign_of z p in
            wr.(!nn - 1) <- !x +. z;
            wr.(!nn) <- wr.(!nn - 1);
            (* lint: allow float-equality — guard against dividing by an exact zero *)
            if z <> 0. then wr.(!nn) <- !x -. (!w /. z);
            wi.(!nn - 1) <- 0.;
            wi.(!nn) <- 0.
          end
          else begin
            wr.(!nn - 1) <- !x +. p;
            wr.(!nn) <- !x +. p;
            wi.(!nn - 1) <- -.z;
            wi.(!nn) <- z
          end;
          nn := !nn - 2;
          continue_outer := false
        end
        else begin
          (* No root isolated yet: one double-shift QR sweep. *)
          if !its = 30 then
            Common.no_convergence
              "Eigen.general_spectrum: too many QR iterations";
          if !its = 10 || !its = 20 then begin
            (* Exceptional shift to break symmetry-induced stalls. *)
            t := !t +. !x;
            for i = 0 to !nn do
              Mat.set a i i (Mat.get a i i -. !x)
            done;
            let s =
              Float.abs (Mat.get a !nn (!nn - 1))
              +. Float.abs (Mat.get a (!nn - 1) (!nn - 2))
            in
            y := 0.75 *. s;
            x := !y;
            w := -0.4375 *. s *. s
          end;
          incr its;
          let p = ref 0. and q = ref 0. and r = ref 0. in
          let m = ref (!nn - 2) in
          let found = ref false in
          while (not !found) && !m >= l do
            let z = Mat.get a !m !m in
            let rr = !x -. z in
            let ss = !y -. z in
            p := (((rr *. ss) -. !w) /. Mat.get a (!m + 1) !m) +. Mat.get a !m (!m + 1);
            q := Mat.get a (!m + 1) (!m + 1) -. z -. rr -. ss;
            r := Mat.get a (!m + 2) (!m + 1);
            let s = Float.abs !p +. Float.abs !q +. Float.abs !r in
            p := !p /. s;
            q := !q /. s;
            r := !r /. s;
            if !m = l then found := true
            else begin
              let u = Float.abs (Mat.get a !m (!m - 1)) *. (Float.abs !q +. Float.abs !r) in
              let v =
                Float.abs !p
                *. (Float.abs (Mat.get a (!m - 1) (!m - 1))
                   +. Float.abs z
                   +. Float.abs (Mat.get a (!m + 1) (!m + 1)))
              in
              (* lint: allow float-equality — classic u+v = v negligibility test *)
              if u +. v = v then found := true else decr m
            end
          done;
          let m = !m in
          for i = m + 2 to !nn do
            Mat.set a i (i - 2) 0.
          done;
          for i = m + 3 to !nn do
            Mat.set a i (i - 3) 0.
          done;
          for k = m to !nn - 1 do
            if k <> m then begin
              p := Mat.get a k (k - 1);
              q := Mat.get a (k + 1) (k - 1);
              r := if k <> !nn - 1 then Mat.get a (k + 2) (k - 1) else 0.;
              x := Float.abs !p +. Float.abs !q +. Float.abs !r;
              (* lint: allow float-equality — guard against normalising a null vector *)
              if !x <> 0. then begin
                p := !p /. !x;
                q := !q /. !x;
                r := !r /. !x
              end
            end;
            let s = sign_of (sqrt ((!p *. !p) +. (!q *. !q) +. (!r *. !r))) !p in
            (* lint: allow float-equality — an exactly-null reflector is skipped *)
            if s <> 0. then begin
              if k = m then begin
                if l <> m then Mat.set a k (k - 1) (-.Mat.get a k (k - 1))
              end
              else Mat.set a k (k - 1) (-.s *. !x);
              p := !p +. s;
              x := !p /. s;
              y := !q /. s;
              let z = !r /. s in
              q := !q /. !p;
              r := !r /. !p;
              for j = k to !nn do
                let pp = ref (Mat.get a k j +. (!q *. Mat.get a (k + 1) j)) in
                if k <> !nn - 1 then begin
                  pp := !pp +. (!r *. Mat.get a (k + 2) j);
                  Mat.set a (k + 2) j (Mat.get a (k + 2) j -. (!pp *. z))
                end;
                Mat.set a (k + 1) j (Mat.get a (k + 1) j -. (!pp *. !y));
                Mat.set a k j (Mat.get a k j -. (!pp *. !x))
              done;
              let mmin = Int.min !nn (k + 3) in
              for i = l to mmin do
                let pp = ref ((!x *. Mat.get a i k) +. (!y *. Mat.get a i (k + 1))) in
                if k <> !nn - 1 then begin
                  pp := !pp +. (z *. Mat.get a i (k + 2));
                  Mat.set a i (k + 2) (Mat.get a i (k + 2) -. (!pp *. !r))
                end;
                Mat.set a i (k + 1) (Mat.get a i (k + 1) -. (!pp *. !q));
                Mat.set a i k (Mat.get a i k -. !pp)
              done
            end
          done
        end
      end
    done
  done

let general_spectrum m =
  if not (Mat.is_square m) then invalid_arg "Eigen.general_spectrum: non-square";
  let n = fst (Mat.dims m) in
  if n = 0 then [||]
  else if n = 1 then [| (Mat.get m 0 0, 0.) |]
  else begin
    let a = Mat.copy m in
    hessenberg a;
    let wr = Array.make n 0. and wi = Array.make n 0. in
    hqr a wr wi;
    let values = Array.init n (fun i -> (wr.(i), wi.(i))) in
    Array.sort (fun (r1, i1) (r2, i2) ->
        let c = compare r2 r1 in
        if c <> 0 then c else compare i2 i1)
      values;
    values
  end
