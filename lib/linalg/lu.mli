(** LU decomposition with partial pivoting, and linear solving.

    Used by the Markov-chain substrate to compute stationary
    distributions of non-reversible chains by solving the singular
    system [πP = π, Σπ = 1] after substituting the normalisation
    equation for one row. *)

exception Singular
(** Raised when a (numerically) singular matrix is factored or solved. *)

type factorization = private {
  lu : Mat.t;        (** packed L (unit lower) and U factors *)
  perm : int array;  (** row permutation applied during pivoting *)
  sign : int;        (** parity of the permutation: [+1] or [-1] *)
}

(** [factorize m] computes the pivoted LU factorization of the square
    matrix [m]. Raises [Singular] if a pivot underflows, and
    [Invalid_argument] if [m] is not square. *)
val factorize : Mat.t -> factorization

(** [solve_factorized f b] solves [A x = b] given [f = factorize a]. *)
val solve_factorized : factorization -> Vec.t -> Vec.t

(** [solve a b] solves the linear system [a x = b].
    Raises [Singular] if [a] is singular. *)
val solve : Mat.t -> Vec.t -> Vec.t

(** [determinant a] is the determinant of [a], computed from the LU
    factors ([0.] if [a] is singular). *)
val determinant : Mat.t -> float

(** [inverse a] is the matrix inverse. Raises [Singular]. *)
val inverse : Mat.t -> Mat.t
