(* Benchmark harness.

   Phase 1 regenerates every experiment table of DESIGN.md /
   EXPERIMENTS.md (the paper has no numeric tables of its own; the
   theorem-indexed experiments E1..E9 play that role).

   Phase 2 runs Bechamel micro-benchmarks of the hot kernels plus the
   ablation pairs called out in DESIGN.md:
   - sparse evolve vs dense matrix-vector product,
   - lumped birth-death step vs full-chain step,
   - deflated power iteration vs full Jacobi for lambda_2,
   - logit transition-row construction and coupling steps.

   Phase 1.5 times the multicore execution layer against the serial
   kernels it replaces (same inputs, results checked for agreement):
   chain materialisation, the all-starts TV sweep, mixing_time_all,
   Monte Carlo empirical TV, and CFTP replicas. --jobs N picks the
   pool size (default: the machine's recommended domain count, at
   least 2).

   Pass --quick to shrink the experiment sweeps; pass --skip-micro to
   print only the tables. *)

open Bechamel
open Toolkit

let quick = Array.exists (( = ) "--quick") Sys.argv
let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv

let jobs =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = "--jobs" then int_of_string_opt Sys.argv.(i + 1)
    else find (i + 1)
  in
  match find 1 with
  | Some j when j >= 2 -> j
  | _ -> Int.max 2 (Domain.recommended_domain_count ())

(* --- Phase 2 fixtures ------------------------------------------------ *)

let ring_desc =
  Games.Graphical.create (Graphs.Generators.ring 10)
    (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)

let ring_game = Games.Graphical.to_game ring_desc
let beta = 1.0
let ring_chain = lazy (Logit.Logit_dynamics.chain ring_game ~beta)

let ring_dense = lazy (Markov.Chain.to_dense (Lazy.force ring_chain))

let clique_bd = lazy (Logit.Lumping.clique ~n:64 ~delta0:1.0 ~delta1:1.0 ~beta)
let clique_bd_chain = lazy (Markov.Birth_death.to_chain (Lazy.force clique_bd))

let small_desc =
  Games.Graphical.create (Graphs.Generators.ring 6)
    (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)

let small_game = Games.Graphical.to_game small_desc
let small_chain = lazy (Logit.Logit_dynamics.chain small_game ~beta)

let small_pi =
  lazy
    (Logit.Gibbs.stationary (Games.Game.space small_game)
       (Games.Graphical.potential small_desc)
       ~beta)

let tests =
  let uniform_vector n = Array.make n (1. /. float_of_int n) in
  [
    Test.make ~name:"logit/transition-row"
      (Staged.stage (fun () ->
           ignore (Logit.Logit_dynamics.transition_row ring_game ~beta 511)));
    Test.make ~name:"kernel/matvec-sparse"
      (Staged.stage (fun () ->
           let chain = Lazy.force ring_chain in
           ignore (Markov.Chain.evolve chain (uniform_vector 1024))));
    Test.make ~name:"kernel/matvec-dense"
      (Staged.stage (fun () ->
           let dense = Lazy.force ring_dense in
           ignore (Linalg.Mat.vmul (uniform_vector 1024) dense)));
    Test.make ~name:"kernel/lumping-bd-step"
      (Staged.stage (fun () ->
           let chain = Lazy.force clique_bd_chain in
           ignore (Markov.Chain.evolve chain (uniform_vector 65))));
    Test.make ~name:"kernel/lambda2-power"
      (Staged.stage (fun () ->
           let chain = Lazy.force small_chain in
           ignore (Markov.Spectral.lambda2 ~tol:1e-9 chain (Lazy.force small_pi))));
    Test.make ~name:"kernel/lambda2-jacobi"
      (Staged.stage (fun () ->
           let chain = Lazy.force small_chain in
           ignore (Markov.Spectral.spectrum chain (Lazy.force small_pi))));
    Test.make ~name:"logit/simulate-step"
      (Staged.stage
         (let rng = Prob.Rng.create 1 in
          let state = ref 0 in
          fun () -> state := Logit.Logit_dynamics.step rng ring_game ~beta !state));
    Test.make ~name:"logit/coupling-step"
      (Staged.stage
         (let rng = Prob.Rng.create 2 in
          let step = Logit.Dynamics.interval_coupling ring_game ~beta in
          let pair = ref (0, 1023) in
          fun () -> pair := step rng !pair));
    Test.make ~name:"barrier/zeta-ring10"
      (Staged.stage (fun () ->
           ignore
             (Logit.Barrier.zeta (Games.Game.space ring_game)
                (Games.Graphical.potential ring_desc))));
    Test.make ~name:"graphs/cutwidth-exact-n12"
      (Staged.stage (fun () ->
           ignore (Graphs.Cutwidth.exact (Graphs.Generators.ring 12))));
    Test.make ~name:"logit/metropolis-step"
      (Staged.stage
         (let rng = Prob.Rng.create 3 in
          let state = ref 0 in
          fun () -> state := Logit.Metropolis.step rng ring_game ~beta !state));
    Test.make ~name:"logit/cftp-exact-sample"
      (Staged.stage
         (let rng = Prob.Rng.create 4 in
          fun () ->
            ignore (Logit.Perfect_sampling.sample rng small_game ~beta)));
    Test.make ~name:"logit/transfer-matrix-n1000"
      (Staged.stage
         (let phi =
            Games.Coordination.edge_potential
              (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
          in
          fun () ->
            let tm = Logit.Transfer_matrix.create ~strategies:2 ~beta:2.0 phi in
            ignore (Logit.Transfer_matrix.log_partition tm ~n:1000)));
    Test.make ~name:"kernel/tridiag-bd-n256"
      (Staged.stage (fun () ->
           let bd = Logit.Lumping.clique ~n:255 ~delta0:1.0 ~delta1:1.0 ~beta:0.01 in
           ignore (Markov.Birth_death.decomposition bd)));
  ]

(* --- Phase 1.5: serial vs parallel ablation --------------------------- *)

let time f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let chain_equal a b =
  Markov.Chain.size a = Markov.Chain.size b
  && begin
       let ok = ref true in
       for i = 0 to Markov.Chain.size a - 1 do
         if Markov.Chain.row a i <> Markov.Chain.row b i then ok := false
       done;
       !ok
     end

let max_abs_diff a b =
  let d = ref 0. in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

let run_ablation () =
  let n_ring = if quick then 8 else 10 in
  let steps = if quick then 50 else 200 in
  let replicas = if quick then 2_000 else 20_000 in
  let cftp_count = if quick then 200 else 1_000 in
  let desc =
    Games.Graphical.create (Graphs.Generators.ring n_ring)
      (Games.Coordination.of_deltas ~delta0:1.0 ~delta1:1.0)
  in
  let game = Games.Graphical.to_game desc in
  let size = Games.Game.size game in
  let pi =
    Logit.Gibbs.stationary (Games.Game.space game)
      (Games.Graphical.potential desc)
      ~beta
  in
  let starts = List.init size Fun.id in
  Exec.Pool.with_pool ~domains:jobs @@ fun pool ->
  let table =
    Experiments.Table.create
      ~title:
        (Printf.sprintf
           "exec ablation: serial vs %d domains (ring n=%d, |S|=%d, beta=%g)"
           jobs n_ring size beta)
      [
        ("kernel", Experiments.Table.Left);
        ("serial s", Experiments.Table.Right);
        ("parallel s", Experiments.Table.Right);
        ("speedup", Experiments.Table.Right);
        ("agree", Experiments.Table.Right);
      ]
  in
  let add name t_serial t_parallel agree =
    Experiments.Table.add_row table
      [
        name;
        Printf.sprintf "%.3f" t_serial;
        Printf.sprintf "%.3f" t_parallel;
        Printf.sprintf "%.2fx" (t_serial /. t_parallel);
        agree;
      ]
  in
  let chain_s, t_s = time (fun () -> Logit.Logit_dynamics.chain game ~beta) in
  let chain_p, t_p = time (fun () -> Logit.Logit_dynamics.chain ~pool game ~beta) in
  add "chain materialise (sparse rows)" t_s t_p
    (Experiments.Table.cell_bool (chain_equal chain_s chain_p));
  let curve_s, t_s =
    time (fun () -> Markov.Mixing.tv_curve chain_s pi ~starts ~steps)
  in
  let curve_p, t_p =
    time (fun () -> Markov.Mixing.tv_curve ~pool chain_s pi ~starts ~steps)
  in
  add
    (Printf.sprintf "tv_curve (all starts, %d steps)" steps)
    t_s t_p
    (Printf.sprintf "max|d| %.1e" (max_abs_diff curve_s curve_p));
  let tmix_s, t_s = time (fun () -> Markov.Mixing.mixing_time_all chain_s pi) in
  let tmix_p, t_p =
    time (fun () -> Markov.Mixing.mixing_time_all ~pool chain_s pi)
  in
  add "mixing_time_all" t_s t_p (Experiments.Table.cell_bool (tmix_s = tmix_p));
  let emp_s, t_s =
    time (fun () ->
        Markov.Mixing.empirical_tv (Prob.Rng.create 11) chain_s pi ~start:0
          ~steps:100 ~replicas)
  in
  let emp_p, t_p =
    time (fun () ->
        Markov.Mixing.empirical_tv ~pool (Prob.Rng.create 11) chain_s pi ~start:0
          ~steps:100 ~replicas)
  in
  add
    (Printf.sprintf "empirical_tv (%d replicas)" replicas)
    t_s t_p
    (Experiments.Table.cell_bool (emp_s = emp_p));
  let small = Games.Graphical.to_game small_desc in
  let cftp_s, t_s =
    time (fun () ->
        Logit.Perfect_sampling.samples (Prob.Rng.create 12) small ~beta
          ~count:cftp_count)
  in
  let cftp_p, t_p =
    time (fun () ->
        Logit.Perfect_sampling.samples ~pool (Prob.Rng.create 12) small ~beta
          ~count:cftp_count)
  in
  add
    (Printf.sprintf "CFTP samples (%d draws)" cftp_count)
    t_s t_p
    (Experiments.Table.cell_bool (cftp_s = cftp_p));
  Experiments.Table.add_note table
    "parallel runs reuse one pool; agreement is checked on the actual outputs.";
  Experiments.Table.print table

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ~stabilize:true ()
  in
  let grouped = Test.make_grouped ~name:"kernels" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
  in
  let table =
    Experiments.Table.create ~title:"micro-benchmarks (Bechamel, OLS estimate)"
      [
        ("benchmark", Experiments.Table.Left);
        ("ns/run", Experiments.Table.Right);
        ("r^2", Experiments.Table.Right);
      ]
  in
  List.iter
    (fun (name, ns, r2) ->
      Experiments.Table.add_row table
        [ name; Printf.sprintf "%.1f" ns; Printf.sprintf "%.4f" r2 ])
    (List.sort compare rows);
  Experiments.Table.print table

let () =
  Printf.printf "logitdyn benchmark harness%s\n"
    (if quick then " (quick mode)" else "");
  Printf.printf "phase 1: regenerating every experiment table (E1..E9, X1..X10)\n";
  let t0 = Unix.gettimeofday () in
  Experiments.Registry.run_all ~quick ();
  Printf.printf "\nphase 1 elapsed: %.1fs\n" (Unix.gettimeofday () -. t0);
  Printf.printf "\nphase 1.5: serial vs parallel ablation (%d domains)\n%!" jobs;
  run_ablation ();
  if not skip_micro then begin
    Printf.printf "\nphase 2: micro-benchmarks\n%!";
    run_micro ()
  end
