(** Finite Markov chains in sparse-row representation.

    The logit dynamics on n players with m strategies each has mⁿ
    states but only n(m-1)+1 non-zero transitions per state, so the
    whole library works with sparse rows; dense matrices are
    materialised only for small state spaces (spectral analysis). *)

type t

(** [of_rows ?pool rows] validates and packs a chain: [rows.(i)] lists
    the non-zero transitions [(j, p)] out of state [i]. Requires every
    probability non-negative, row sums within [1e-9] of one, and
    column indices in range; duplicate columns within a row are
    summed. Row sums are renormalised exactly to one. Validation and
    normalisation are per-row independent; [?pool] distributes them
    across domains (identical results, any pool size). *)
val of_rows : ?pool:Exec.Pool.t -> (int * float) array array -> t

(** [of_function ?pool n row] tabulates [row i] for every state —
    with [?pool], rows are built and normalised in parallel, which is
    the hot path when materialising logit chains ([row] must be safe
    to call concurrently for distinct states). *)
val of_function : ?pool:Exec.Pool.t -> int -> (int -> (int * float) list) -> t

(** [of_dense m] converts a dense stochastic matrix.
    Raises [Invalid_argument] if [m] is not square/stochastic. *)
val of_dense : Linalg.Mat.t -> t

(** [size t] is the number of states. *)
val size : t -> int

(** [row t i] is the sparse row of state [i] (not to be mutated). *)
val row : t -> int -> (int * float) array

(** [row_list t i] is the row as a list. *)
val row_list : t -> int -> (int * float) list

(** [prob t i j] is P(i, j). *)
val prob : t -> int -> int -> float

(** [evolve t mu] is the push-forward μP of the distribution vector
    [mu]. *)
val evolve : t -> float array -> float array

(** [apply t f] is the function application Pf,
    [(Pf)(i) = Σ_j P(i,j) f(j)]. *)
val apply : t -> float array -> float array

(** [to_dense t] materialises the dense transition matrix. *)
val to_dense : t -> Linalg.Mat.t

(** [sample_step rng t i] draws the next state from P(i, ·). *)
val sample_step : Prob.Rng.t -> t -> int -> int

(** [simulate rng t ~start ~steps] returns the trajectory
    [x₀ = start, x₁, ..., x_steps] (length [steps + 1]). *)
val simulate : Prob.Rng.t -> t -> start:int -> steps:int -> int array

(** [hitting_time rng t ~start ~target ~max_steps] simulates until the
    chain first reaches a state satisfying [target]; [None] if not hit
    within [max_steps]. A [start] already satisfying [target] hits at
    time 0. *)
val hitting_time :
  Prob.Rng.t -> t -> start:int -> target:(int -> bool) -> max_steps:int ->
  int option

(** [is_irreducible t] tests strong connectivity of the transition
    graph (two BFS passes, forward and backward). *)
val is_irreducible : t -> bool

(** [is_aperiodic t] tests aperiodicity (gcd of cycle lengths via BFS
    levels; sufficient check: some state has a self-loop, otherwise a
    full gcd computation on the strongly-connected chain). *)
val is_aperiodic : t -> bool

(** [is_reversible ?tol t pi] checks detailed balance
    π(x)P(x,y) = π(y)P(y,x) for all edges. *)
val is_reversible : ?tol:float -> t -> float array -> bool

(** [edge_measure t pi i j] is Q(i,j) = π(i)·P(i,j). *)
val edge_measure : t -> float array -> int -> int -> float

(** [lazy_version t] is the chain ½(I + P) — aperiodic by
    construction, same stationary distribution. *)
val lazy_version : t -> t
