(* The logitlint shared core: finding and result types, per-directory
   config, suppression comments, and the two reporters. The two
   analysis passes live in Syntactic (Parsetree, one walk per file)
   and Typed (.cmt Typedtree, type information in hand); both funnel
   their findings through the machinery here so a rule behaves the
   same — same suppression syntax, same config directives, same
   report shape — whichever pass hosts it. *)

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  suppressed : bool;
}

type reporter = Location.t -> string -> unit

exception Config_error of string

(* ------------------------------------------------------------------ *)
(* Per-directory configuration: a [.logitlint] file holds one
   directive per line, applying to the whole subtree below it.

     # comment
     disable <rule>
     disable <rule> in <basename>                                     *)

module Config = struct
  type directive = { disable : string; only_file : string option }
  type t = directive list

  let empty = []

  let parse_line ~path lnum raw =
    let line = String.trim raw in
    if line = "" || line.[0] = '#' then None
    else
      match
        String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
      with
      | [ "disable"; rule ] -> Some { disable = rule; only_file = None }
      | [ "disable"; rule; "in"; base ] ->
          Some { disable = rule; only_file = Some base }
      | _ ->
          raise
            (Config_error
               (Printf.sprintf "%s:%d: unrecognised directive %S" path lnum
                  line))

  let load path =
    if not (Sys.file_exists path) then []
    else begin
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let out = ref [] in
          let lnum = ref 0 in
          (try
             while true do
               let raw = input_line ic in
               incr lnum;
               match parse_line ~path !lnum raw with
               | Some d -> out := d :: !out
               | None -> ()
             done
           with End_of_file -> ());
          List.rev !out)
    end

  let disables t ~rule ~path =
    let base = Filename.basename path in
    List.exists
      (fun d ->
        d.disable = rule
        && match d.only_file with None -> true | Some b -> b = base)
      t
end

(* Per-directory [.logitlint] files compose down the tree: the config
   in force for [lib/markov/chain.ml] is the concatenation of the
   root, [lib/] and [lib/markov/] files. [config_cache root] memoises
   the per-directory loads so both passes share one loader. *)

let ancestors_of relpath =
  (* "lib/markov/chain.ml" -> [""; "lib"; "lib/markov"] *)
  let rec up acc dir =
    if dir = "." || dir = "" || dir = "/" then "" :: acc
    else up (dir :: acc) (Filename.dirname dir)
  in
  up [] (Filename.dirname relpath)

let config_cache root =
  let cache : (string, Config.t) Hashtbl.t = Hashtbl.create 16 in
  let dir_config dir =
    match Hashtbl.find_opt cache dir with
    | Some c -> c
    | None ->
        let path =
          if dir = "" then Filename.concat root ".logitlint"
          else Filename.concat (Filename.concat root dir) ".logitlint"
        in
        let c = Config.load path in
        Hashtbl.add cache dir c;
        c
  in
  fun relpath -> List.concat_map dir_config (ancestors_of relpath)

(* ------------------------------------------------------------------ *)
(* Suppression comments: a finding of rule R at line L is suppressed
   when line L or line L-1 carries "lint: allow <rules>" naming R. *)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

let allow_marker = "lint: allow"

let allowed_rules_of_line line =
  match find_substring line allow_marker with
  | None -> []
  | Some i ->
      let rest =
        String.sub line
          (i + String.length allow_marker)
          (String.length line - i - String.length allow_marker)
      in
      let rest =
        match find_substring rest "*)" with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      String.map (function ',' | '\t' -> ' ' | c -> c) rest
      |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let out = ref [] in
      (try
         while true do
           out := input_line ic :: !out
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))

let suppressed_at lines ~rule ~line =
  let covers l =
    l >= 1 && l <= Array.length lines
    && List.mem rule (allowed_rules_of_line lines.(l - 1))
  in
  covers line || covers (line - 1)

(* The one reporter constructor both passes use: anchor a message at a
   source location, decide suppression from the real source lines, and
   accumulate. *)
let reporter ~rule ~relpath ~lines ~into : reporter =
 fun (loc : Location.t) message ->
  let line = loc.loc_start.pos_lnum in
  let col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol in
  let suppressed = suppressed_at lines ~rule ~line in
  into := { rule; file = relpath; line; col; message; suppressed } :: !into

(* ------------------------------------------------------------------ *)
(* Results and reporting. *)

type result = {
  files : string list;
  findings : finding list;
  typed_files : int;
  typed_skipped : string list;
  syntactic_ms : float;
  typed_ms : float;
}

let compare_findings a b =
  compare
    (a.file, a.line, a.col, a.rule, a.message)
    (b.file, b.line, b.col, b.rule, b.message)

let violations r = List.filter (fun f -> not f.suppressed) r.findings
let suppressed r = List.filter (fun f -> f.suppressed) r.findings

let to_text ?(show_suppressed = false) r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      if (not f.suppressed) || show_suppressed then
        Buffer.add_string buf
          (Printf.sprintf "%s:%d:%d: [%s]%s %s\n" f.file f.line f.col f.rule
             (if f.suppressed then " (suppressed)" else "")
             f.message))
    r.findings;
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s: typed pass skipped (no .cmt; build @lint first)\n"
           f))
    r.typed_skipped;
  Buffer.add_string buf
    (Printf.sprintf
       "logitlint: %d violation%s, %d suppressed, %d files scanned \
        (syntactic %.1f ms%s)\n"
       (List.length (violations r))
       (if List.length (violations r) = 1 then "" else "s")
       (List.length (suppressed r))
       (List.length r.files)
       r.syntactic_ms
       (if r.typed_files > 0 || r.typed_skipped <> [] then
          Printf.sprintf ", typed %.1f ms over %d cmt(s)" r.typed_ms
            r.typed_files
        else ""));
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~root r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"root\": \"%s\",\n  \"files_scanned\": %d,\n  \
        \"violations\": %d,\n  \"suppressed\": %d,\n  \
        \"typed_files\": %d,\n  \"syntactic_ms\": %.1f,\n  \
        \"typed_ms\": %.1f,\n  \"typed_skipped\": [%s],\n  \"findings\": ["
       (json_escape root) (List.length r.files)
       (List.length (violations r))
       (List.length (suppressed r))
       r.typed_files r.syntactic_ms r.typed_ms
       (String.concat ", "
          (List.map (fun f -> "\"" ^ json_escape f ^ "\"") r.typed_skipped)));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d, \
            \"col\": %d, \"suppressed\": %b, \"message\": \"%s\"}"
           (json_escape f.rule) (json_escape f.file) f.line f.col f.suppressed
           (json_escape f.message)))
    r.findings;
  Buffer.add_string buf (if r.findings = [] then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf
