(** X8 — anti-coordination (cut) games: frustration flattens the
    barrier and speeds mixing, the antiferromagnetic counterpart of
    the paper's Section 5.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
