(** E1 — Theorem 3.1: every eigenvalue of the logit chain of a
    potential game is real and non-negative (so t_rel = 1/(1-λ₂)).

    We compute full spectra with the general (Francis QR) solver for a
    collection of potential games — where all eigenvalues must come
    out real and ≥ 0 — and for non-potential games, where negative
    real parts and genuinely complex eigenvalues do occur, showing the
    theorem's hypothesis is not vacuous. *)

open Games

let spectral_row table game beta =
  let chain = Logit.Logit_dynamics.chain game ~beta in
  let dense = Markov.Chain.to_dense chain in
  let spectrum = Linalg.Eigen.general_spectrum dense in
  let min_re =
    Array.fold_left (fun acc (re, _) -> Float.min acc re) infinity spectrum
  in
  let max_im =
    Array.fold_left (fun acc (_, im) -> Float.max acc (Float.abs im)) 0. spectrum
  in
  let is_potential = Potential.is_potential_game game in
  let nonneg = min_re >= -1e-9 && max_im <= 1e-9 in
  Table.add_row table
    [
      Game.name game;
      Table.cell_int (Game.size game);
      Table.cell_float beta;
      Table.cell_bool is_potential;
      Printf.sprintf "%+.6f" min_re;
      Table.cell_sci max_im;
      Table.cell_bool nonneg;
    ]

let games ~quick =
  let rng = Prob.Rng.create 20110604 in
  let randoms = if quick then 2 else 6 in
  let random_potentials =
    List.init randoms (fun k ->
        let players = 2 + (k mod 2) and strategies = 2 + (k / 2 mod 2) in
        let game, _phi = Zoo.random_potential rng ~players ~strategies in
        game)
  in
  let random_games =
    List.init randoms (fun k ->
        Zoo.random_game rng ~players:(2 + (k mod 2)) ~strategies:2)
  in
  [
    Coordination.to_game (Coordination.of_deltas ~delta0:1.0 ~delta1:0.6);
    Zoo.battle_of_sexes;
    Zoo.pure_coordination ~players:3 ~strategies:2;
    Graphical.to_game
      (Graphical.create (Graphs.Generators.ring 4)
         (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0));
    Congestion.to_game (Congestion.linear_routing ~players:3 ~links:2);
  ]
  @ random_potentials
  @ [ Zoo.matching_pennies; Zoo.rock_paper_scissors ]
  @ random_games

let run ~quick =
  let table =
    Table.create ~title:"E1 (Thm 3.1): spectra of logit chains"
      [
        ("game", Table.Left);
        ("|S|", Table.Right);
        ("beta", Table.Right);
        ("potential", Table.Right);
        ("min Re(lambda)", Table.Right);
        ("max |Im(lambda)|", Table.Right);
        ("all >= 0", Table.Right);
      ]
  in
  let betas = if quick then [ 1.0 ] else [ 0.5; 2.0 ] in
  List.iter
    (fun game -> List.iter (fun beta -> spectral_row table game beta) betas)
    (games ~quick);
  Table.add_note table
    "Thm 3.1 guarantees 'all >= 0' for every potential game; the converse \
     is not claimed (tiny random games can pass by luck), but complex \
     spectra appear only without a potential.";
  [ table ]
