(** E7 — Theorem 5.1: cutwidth controls the relaxation-time exponent of graphical coordination games.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
