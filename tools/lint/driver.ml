(* Composing the two passes into one run: discover sources, resolve
   per-directory config once, run the syntactic pass (always) and the
   typed pass (opt-in: it needs a bin-annot build), merge and time. *)

let default_dirs = [ "lib"; "bin"; "bench"; "test"; "tools" ]

let ms_since t0 = Common.Clock.span_s ~since:t0 *. 1000.

let run ?(dirs = default_dirs) ?(typed = false) ?(locator = Locator.Auto)
    ~root () : Lint.result =
  let config_for = Lint.config_cache root in
  let files = Syntactic.discover ~root ~dirs in
  let t0 = Common.Clock.monotonic_ns () in
  let syntactic =
    Syntactic.run_pass ~root ~files ~config_for ~rules:Rules.all
  in
  let syntactic_ms = ms_since t0 in
  let typed_findings, typed_files, typed_skipped, typed_ms =
    if not typed then ([], 0, [], 0.)
    else begin
      let t1 = Common.Clock.monotonic_ns () in
      let cmt_for = Locator.locate ~root ~mode:locator in
      let findings, analysed, skipped =
        Typed.run_pass ~root ~files ~config_for ~rules:Typed_rules.all
          ~cmt_for
      in
      (findings, analysed, skipped, ms_since t1)
    end
  in
  {
    Lint.files;
    findings =
      List.sort_uniq Lint.compare_findings (syntactic @ typed_findings);
    typed_files;
    typed_skipped;
    syntactic_ms;
    typed_ms;
  }
