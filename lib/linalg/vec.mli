(** Dense vectors of floats.

    A vector is a plain [float array]; this module collects the
    numerical-kernel operations used throughout the library so that
    callers never hand-roll loops (and so that the kernels can be
    tuned in one place). All binary operations require operands of
    equal length and raise [Invalid_argument] otherwise. *)

type t = float array

(** [create n x] is a fresh vector of length [n] filled with [x]. *)
val create : int -> float -> t

(** [init n f] is [| f 0; ...; f (n-1) |]. *)
val init : int -> (int -> float) -> t

(** [copy v] is a fresh copy of [v]. *)
val copy : t -> t

(** [dim v] is the length of [v]. *)
val dim : t -> int

(** [add x y] is the element-wise sum. *)
val add : t -> t -> t

(** [sub x y] is the element-wise difference. *)
val sub : t -> t -> t

(** [scale a x] multiplies every entry of [x] by [a]. *)
val scale : float -> t -> t

(** [axpy ~alpha x y] updates [y <- alpha * x + y] in place. *)
val axpy : alpha:float -> t -> t -> unit

(** [dot x y] is the inner product. *)
val dot : t -> t -> float

(** [norm2 x] is the Euclidean norm. *)
val norm2 : t -> float

(** [norm1 x] is the sum of absolute values. *)
val norm1 : t -> float

(** [norm_inf x] is the maximum absolute value, [0.] on empty input. *)
val norm_inf : t -> float

(** [sum x] is the sum of the entries. *)
val sum : t -> float

(** [normalize_l1 x] rescales [x] so that its entries sum to one.
    Raises [Invalid_argument] if the sum is not strictly positive. *)
val normalize_l1 : t -> t

(** [max_index x] is the index of a maximal entry.
    Raises [Invalid_argument] on the empty vector. *)
val max_index : t -> int

(** [min_index x] is the index of a minimal entry.
    Raises [Invalid_argument] on the empty vector. *)
val min_index : t -> int

(** [approx_equal ?tol x y] tests element-wise closeness with absolute
    tolerance [tol] (default [1e-9]). *)
val approx_equal : ?tol:float -> t -> t -> bool

(** [pp] prints a vector as [[v0; v1; ...]] with 6 significant digits. *)
val pp : Format.formatter -> t -> unit
