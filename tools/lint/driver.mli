(** Composition of the {!Syntactic} and {!Typed} passes into one lint
    run over a source tree. *)

(** The directories scanned by default: ["lib"; "bin"; "bench";
    "test"; "tools"] — the linter lints itself. *)
val default_dirs : string list

(** [run ~root ()] lints [root]. [typed] (default false) additionally
    runs the .cmt-based pass — sources whose cmt cannot be found are
    listed in [typed_skipped], not errors, so the syntactic pass
    degrades gracefully without a build. [locator] picks the cmt
    resolution strategy (default {!Locator.Auto}). Findings from both
    passes are merged, sorted and deduplicated. *)
val run :
  ?dirs:string list ->
  ?typed:bool ->
  ?locator:Locator.mode ->
  root:string ->
  unit ->
  Lint.result
