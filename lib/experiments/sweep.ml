let pool : Exec.Pool.t option ref = ref None

let set_jobs n =
  (match !pool with Some p -> Exec.Pool.shutdown p | None -> ());
  pool := if n <= 1 then None else Some (Exec.Pool.create ~domains:n ())

let current_pool () = !pool

let map f xs =
  match !pool with
  | None -> List.map f xs
  | Some p ->
      let arr = Array.of_list xs in
      (* Chunk of 1: grid points are few and heavy, so claim them one
         at a time for the best load balance. Cutover audit: each point
         is an entire experiment cell — seconds, not microseconds — so
         the dispatch-overhead guard the evolve kernels need would be a
         no-op here and the map dispatches unconditionally. *)
      Array.to_list (Exec.Pool.map ~chunk:1 p ~n:(Array.length arr) (fun i -> f arr.(i)))

let map_family game ~betas f =
  (* Build the whole β-grid's chains as one family — utilities
     tabulated once, index structure shared — then run the grid points
     through [map] as usual. Each plane is bit-identical to the
     independent [chain ~beta] the point used to build itself, so the
     printed tables cannot change. *)
  let family = Logit.Logit_dynamics.chain_family ?pool:!pool game ~betas in
  map
    (fun i -> f (Markov.Family.beta family i) (Markov.Family.plane family i))
    (List.init (Markov.Family.num_planes family) Fun.id)

let map_cached ?store ~key ~encode ~decode f xs =
  match store with
  | None -> map f xs
  | Some cas ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results =
        Array.map (fun x -> Store.Cas.get_decoded cas (key x) ~decode) arr
      in
      let missing =
        List.filter (fun i -> Option.is_none results.(i)) (List.init n Fun.id)
      in
      (* Only the missing grid points go through the pool; each one is
         checkpointed the moment it completes, so an interrupted sweep
         resumes from the last finished point rather than from zero. *)
      let computed =
        map
          (fun i ->
            let y = f arr.(i) in
            Store.Cas.put cas (key arr.(i)) (encode y);
            (i, y))
          missing
      in
      List.iter (fun (i, y) -> results.(i) <- Some y) computed;
      Array.to_list
        (Array.map
           (function Some y -> y | None -> invalid_arg "Sweep.map_cached")
           results)
