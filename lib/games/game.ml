type t = {
  name : string;
  space : Strategy_space.t;
  utility : int -> int -> float;
}

let create ~name space utility = { name; space; utility }
let name g = g.name
let space g = g.space
let utility g player idx = g.utility player idx
let num_players g = Strategy_space.num_players g.space
let size g = Strategy_space.size g.space
let max_strategies g = Strategy_space.max_strategies g.space

let tabulate g =
  let n = num_players g and s = size g in
  let table = Array.init n (fun i -> Array.init s (fun idx -> g.utility i idx)) in
  { g with utility = (fun i idx -> table.(i).(idx)) }

let best_responses g player idx =
  let space = g.space in
  let m = Strategy_space.num_strategies space player in
  let payoff a = g.utility player (Strategy_space.replace space idx player a) in
  let best = ref (payoff 0) in
  for a = 1 to m - 1 do
    let u = payoff a in
    if u > !best then best := u
  done;
  let acc = ref [] in
  for a = m - 1 downto 0 do
    if payoff a = !best then acc := a :: !acc
  done;
  !acc

let is_pure_nash g idx =
  let space = g.space in
  let n = Strategy_space.num_players space in
  let ok = ref true in
  let player = ref 0 in
  while !ok && !player < n do
    let i = !player in
    let here = g.utility i idx in
    let m = Strategy_space.num_strategies space i in
    for a = 0 to m - 1 do
      if g.utility i (Strategy_space.replace space idx i a) > here then ok := false
    done;
    incr player
  done;
  !ok

let pure_nash_profiles g =
  let acc = ref [] in
  Strategy_space.iter g.space (fun idx -> if is_pure_nash g idx then acc := idx :: !acc);
  List.rev !acc

let is_dominant_strategy g player s =
  let space = g.space in
  let m = Strategy_space.num_strategies space player in
  if s < 0 || s >= m then invalid_arg "Game.is_dominant_strategy: strategy out of range";
  let dominant = ref true in
  (* It suffices to check profiles in which [player] already plays [s]:
     each such profile represents one opponent sub-profile. *)
  Strategy_space.iter space (fun idx ->
      if !dominant && Strategy_space.player_strategy space idx player = s then begin
        let u_s = g.utility player idx in
        for a = 0 to m - 1 do
          if g.utility player (Strategy_space.replace space idx player a) > u_s then
            dominant := false
        done
      end);
  !dominant

let dominant_profile g =
  let space = g.space in
  let n = Strategy_space.num_players space in
  let choice = Array.make n (-1) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if !ok then begin
      let m = Strategy_space.num_strategies space i in
      let s = ref 0 in
      let found = ref false in
      while (not !found) && !s < m do
        if is_dominant_strategy g i !s then begin
          found := true;
          choice.(i) <- !s
        end
        else incr s
      done;
      if not !found then ok := false
    end
  done;
  if !ok then Some (Strategy_space.encode space choice) else None

let social_welfare g idx =
  let n = num_players g in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. g.utility i idx
  done;
  !acc
