type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (* reversed *)
  mutable notes : string list;      (* reversed *)
}

let create ~title columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  {
    title;
    headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [];
    notes = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong cell count";
  t.rows <- cells :: t.rows

let add_note t note = t.notes <- note :: t.notes

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w c -> Int.max w (String.length c)) widths row)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row cells =
    let parts =
      List.map2
        (fun (cell, align) width -> pad align width cell)
        (List.combine cells t.aligns)
        widths
    in
    Buffer.add_string buf (String.concat "  " parts);
    Buffer.add_char buf '\n'
  in
  render_row t.headers;
  let rule = List.map (fun w -> String.make w '-') widths in
  Buffer.add_string buf (String.concat "  " rule);
  Buffer.add_char buf '\n';
  List.iter render_row rows;
  List.iter
    (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t)

(* --- binary artifacts ------------------------------------------------- *)

(* Payload: title, headers, aligns, then rows and notes in logical
   (insertion) order — the reversed in-memory accumulators are an
   implementation detail that must not leak into the format. *)

let write_payload b t =
  let module E = Store.Codec.Enc in
  E.string b t.title;
  E.list b E.string t.headers;
  E.list b (fun b a -> E.u8 b (match a with Left -> 0 | Right -> 1)) t.aligns;
  E.list b (fun b row -> E.list b E.string row) (List.rev t.rows);
  E.list b E.string (List.rev t.notes)

let read_payload d =
  let module D = Store.Codec.Dec in
  let title = D.string d in
  let headers = D.list d D.string in
  let aligns =
    D.list d (fun d ->
        match D.u8 d with
        | 0 -> Left
        | 1 -> Right
        | tag -> D.fail (Printf.sprintf "unknown alignment tag %d" tag))
  in
  let rows = D.list d (fun d -> D.list d D.string) in
  let notes = D.list d D.string in
  if headers = [] then D.fail "table artifact with no columns";
  let columns = List.length headers in
  if List.length aligns <> columns then
    D.fail "table artifact: alignment/header count mismatch";
  List.iter
    (fun row ->
      if List.length row <> columns then
        D.fail "table artifact: row width does not match the column count")
    rows;
  { title; headers; aligns; rows = List.rev rows; notes = List.rev notes }

let encode t = Store.Codec.frame ~kind:Store.Codec.Table (fun b -> write_payload b t)
let decode s = Store.Codec.unframe ~kind:Store.Codec.Table s read_payload

let encode_list ts =
  Store.Codec.frame ~kind:Store.Codec.Table_list (fun b ->
      Store.Codec.Enc.list b write_payload ts)

let decode_list s =
  Store.Codec.unframe ~kind:Store.Codec.Table_list s (fun d ->
      Store.Codec.Dec.list d read_payload)

let cell_int = string_of_int
let cell_float x = Printf.sprintf "%.4g" x
let cell_sci x = Printf.sprintf "%.3e" x
let cell_log x = Printf.sprintf "%.2f" x
let cell_bool b = if b then "yes" else "no"
let cell_opt_int = function Some n -> string_of_int n | None -> ">max"
