open Games

let require_binary game =
  let space = Game.space game in
  for i = 0 to Strategy_space.num_players space - 1 do
    if Strategy_space.num_strategies space i <> 2 then
      invalid_arg "Perfect_sampling: binary strategies required"
  done

let dominates space x y =
  (* x <= y coordinate-wise *)
  let n = Strategy_space.num_players space in
  let ok = ref true in
  for i = 0 to n - 1 do
    if Strategy_space.player_strategy space x i > Strategy_space.player_strategy space y i
    then ok := false
  done;
  !ok

let is_attractive game ~beta =
  require_binary game;
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let size = Strategy_space.size space in
  let sigma1 =
    Array.init size (fun idx ->
        Array.init n (fun i ->
            (Logit_dynamics.update_distribution game ~beta ~player:i idx).(1)))
  in
  let ok = ref true in
  for x = 0 to size - 1 do
    for y = 0 to size - 1 do
      if !ok && x <> y && dominates space x y then
        for i = 0 to n - 1 do
          if sigma1.(x).(i) > sigma1.(y).(i) +. 1e-12 then ok := false
        done
    done
  done;
  !ok

(* One threshold update with shared randomness (player, u): both
   extreme chains use the same pair, preserving the partial order for
   attractive games. *)
let apply_move game ~beta (player, u) state =
  let space = Game.space game in
  let sigma = Logit_dynamics.update_distribution game ~beta ~player state in
  Strategy_space.replace space state player (if u <= sigma.(0) then 0 else 1)

let run_cftp ?(max_epochs = 40) rng game ~beta =
  require_binary game;
  let space = Game.space game in
  let top_start =
    Strategy_space.encode space (Array.make (Strategy_space.num_players space) 1)
  in
  (* moves.(k) drives the step at time -(k+1); older moves are appended
     as the window doubles and MUST stay fixed across epochs. *)
  let moves = ref [||] in
  let ensure upto =
    let have = Array.length !moves in
    if upto > have then begin
      let fresh =
        Array.init (upto - have) (fun _ ->
            ( Prob.Rng.int rng (Strategy_space.num_players space),
              Prob.Rng.float rng ))
      in
      moves := Array.append !moves fresh
    end
  in
  let rec attempt epoch =
    if epoch > max_epochs then
      Common.no_convergence
        "Perfect_sampling: no coalescence within %d doubling epochs" max_epochs;
    let window = 1 lsl epoch in
    ensure window;
    let top = ref top_start and bottom = ref 0 in
    for k = window - 1 downto 0 do
      let move = !moves.(k) in
      top := apply_move game ~beta move !top;
      bottom := apply_move game ~beta move !bottom
    done;
    if !top = !bottom then (!top, window) else attempt (epoch + 1)
  in
  attempt 0

let coalescence_epoch ?max_epochs rng game ~beta =
  run_cftp ?max_epochs rng game ~beta

let sample ?max_epochs rng game ~beta = fst (run_cftp ?max_epochs rng game ~beta)

let samples ?max_epochs ?pool rng game ~beta ~count =
  if count < 1 then invalid_arg "Perfect_sampling.samples: need count >= 1";
  (* One split stream per sample: sample k is a function of the seed
     and k only, so the array is reproducible for any pool size. *)
  let streams = Prob.Rng.split_n rng count in
  (* Cutover cost of one draw: a whole CFTP run — doubling backward
     windows of full-lattice logit sweeps — is macro-task weight. *)
  Exec.Pool.init_opt ~cost:8192 pool ~n:count (fun k ->
      sample ?max_epochs streams.(k) game ~beta)
