type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  if n = 0 then [||]
  else begin
    let out = Array.make n t in
    for i = 0 to n - 1 do
      out.(i) <- split t
    done;
    out
  end

(* 53 uniform mantissa bits, as in the reference implementation. *)
let float t = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) *. 0x1p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the high bits avoids modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let value = Int64.rem bits bound64 in
    if Int64.sub bits value > Int64.sub Int64.max_int (Int64.sub bound64 1L) then
      draw ()
    else Int64.to_int value
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t < p

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  let u = 1. -. float t in
  -.log u /. rate

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p must be in (0, 1]";
  (* lint: allow float-equality — exact boundary where log (1 - p) is -inf *)
  if p = 1. then 0
  else
    let u = 1. -. float t in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let categorical_pick weights ~u =
  let n = Array.length weights in
  let acc = ref 0. and chosen = ref (n - 1) and found = ref false in
  for i = 0 to n - 1 do
    if not !found then begin
      acc := !acc +. weights.(i);
      if u < !acc then begin
        chosen := i;
        found := true
      end
    end
  done;
  (* If rounding left u at or beyond the accumulated total, fall back
     to the last strictly positive weight (a zero-weight tail must
     never be selected). *)
  if not !found then begin
    let i = ref (n - 1) in
    (* lint: allow float-equality — a zero-weight tail must never be selected *)
    while weights.(!i) = 0. && !i > 0 do
      decr i
    done;
    chosen := !i
  end;
  !chosen

let categorical t weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Rng.categorical: empty weights";
  let total = ref 0. in
  Array.iter
    (fun w ->
      if w < 0. || Float.is_nan w then invalid_arg "Rng.categorical: negative weight";
      total := !total +. w)
    weights;
  if !total <= 0. then invalid_arg "Rng.categorical: zero total weight";
  categorical_pick weights ~u:(float t *. !total)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
