(** Mean-field (fluid-limit) dynamics for weight-symmetric games.

    For the lumped birth–death chains of {!Lumping}, one logit update
    changes the 1-fraction k/n by ±1/n, so as n grows the rescaled
    process concentrates on the deterministic flow

    {v ẋ = up(x) - down(x), v}

    whose stable fixed points are the metastable states and whose
    unstable fixed points sit at the barrier top (the k* of
    Section 5.2). This module evaluates the drift at the exact
    finite-n rates, locates the fixed points, and integrates the flow
    — the deterministic skeleton that the stochastic experiments
    (E8, X6) decorate with exponential escape times. *)

(** [drift ~players ~beta phi_of_weight k] is up(k) - down(k) of the
    lumped chain at state [k] — the expected change of the weight per
    step (in units of one strategy flip). *)
val drift : players:int -> beta:float -> (int -> float) -> int -> float

(** [fixed_points ~players ~beta phi_of_weight] scans k = 0..n and
    returns the (k, kind) pairs where the drift changes sign or
    vanishes; [`Stable] when the flow points inward from both sides,
    [`Unstable] when it points outward. Endpoints count as stable when
    the flow pushes into them. *)
val fixed_points :
  players:int -> beta:float -> (int -> float) -> (int * [ `Stable | `Unstable ]) list

(** [trajectory ~players ~beta phi_of_weight ~start ~steps] integrates
    the rescaled Euler flow k ← k + drift(k) from weight [start],
    returning the (real-valued) weight after each step. The continuous
    state is rounded to the nearest integer for rate evaluation. *)
val trajectory :
  players:int -> beta:float -> (int -> float) -> start:float -> steps:int ->
  float array

(** [clique_fixed_points ~n ~delta0 ~delta1 ~beta] specialises to the
    clique game; for δ₀ = δ₁ and β above the critical noise the flow
    has stable points near 0 and n and an unstable point at k*
    (Section 5.2's potential maximiser). *)
val clique_fixed_points :
  n:int -> delta0:float -> delta1:float -> beta:float ->
  (int * [ `Stable | `Unstable ]) list
