(** The panel-coalescing scheduler.

    {!run_batch} takes everything the server read in one loop
    iteration and answers it: mixing queries on the same game id and n
    — across β and across clients — are coalesced. A single-β panel
    group is settled by {e one} {!Markov.Mixing.panel_sweep}; a group
    spanning several β builds {e one} {!Markov.Family} from the
    entries' chains and settles every plane through the fused
    multi-plane sweep ({!Markov.Mixing.family_panel_sweep}), one
    traversal of the shared index structure per step for the whole
    β-grid. Each request retires at its own eps either way; reversible
    small chains share their entry's cached eigendecomposition per β
    instead. All other queries are evaluated serially in arrival
    order.

    Answers are bit-identical to per-request serial evaluation — both
    paths run the same primitives over the same floats. Deadlines are
    enforced between panel steps and before every serial evaluation;
    an expired request gets the typed {!Protocol.Deadline_exceeded},
    never a silent drop. *)

(** A unit of admitted work. ['a] is the caller's routing tag (the
    server keeps the owning client there); the scheduler never looks
    at it. *)
type 'a job = {
  tag : 'a;
  req_id : int;
  deadline_ns : int64 option;
      (** absolute {!Common.Clock.monotonic_ns} instant, fixed at
          admission *)
  query : Protocol.query;
}

(** Cumulative counters, reported through the [Stats] query. *)
type stats = {
  mutable batches : int;
  mutable max_batch : int;  (** widest batch so far *)
  mutable panel_steps : int;  (** total coalesced SpMM panel steps *)
}

val stats_zero : unit -> stats

(** [run_batch engine stats jobs] answers every job, returning
    [(job, outcome)] pairs in the input order (so per-client response
    order follows request order). Never raises: engine failures
    surface as {!Protocol.Server_error} outcomes. *)
val run_batch :
  Engine.t -> stats -> 'a job list ->
  ('a job * (Protocol.reply, Protocol.error) result) list
