(* The out-of-core segment subsystem (lib/ooc): on-disk format round
   trips, corruption rejection, block-boundary handling with tiny
   block budgets, and — the load-bearing property — bit-identity of
   the streaming/mmap'd SpMM to the in-RAM chain across access modes
   and pool sizes, including the Kernel.t entry points that Mixing
   and Stationary consume. *)

open Helpers
module Chain = Markov.Chain
module Segment = Ooc.Segment
module Schain = Ooc.Segmented_chain

(* ---------------- plumbing ---------------- *)

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_tmp f =
  let dir = Filename.temp_file "ooc_test" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let get_ok what = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected error: %s" what msg

let is_error = function Error _ -> true | Ok _ -> false

let check_bits msg expected actual =
  check_int (msg ^ ": length") (Array.length expected) (Array.length actual);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float actual.(i) then
        Alcotest.failf "%s[%d]: expected %h, got %h" msg i x actual.(i))
    expected

(* Random sparse rows, precomputed so the generator is deterministic
   across pack's two passes. Duplicate columns are allowed (Chain
   merges them); weights are normalised to sum to 1 within the row
   tolerance. *)
let random_rows ?(seed = 7) ?(n = 50) ?(max_extra = 4) () =
  let r = rng ~seed () in
  Array.init n (fun i ->
      let extra = Prob.Rng.int r (max_extra + 1) in
      let entries =
        (i, 0.2 +. Prob.Rng.float r)
        :: List.init extra (fun _ -> (Prob.Rng.int r n, 0.01 +. Prob.Rng.float r))
      in
      let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. entries in
      List.map (fun (j, w) -> (j, w /. total)) entries)

let random_chain ?seed ?n ?max_extra () =
  let rows = random_rows ?seed ?n ?max_extra () in
  (rows, Chain.of_function (Array.length rows) (fun i -> rows.(i)))

let pack_rows dir name ?block_nnz rows =
  let path = Filename.concat dir name in
  let info =
    Segment.pack ?block_nnz ~path ~size:(Array.length rows)
      ~row:(fun i -> rows.(i))
      ()
  in
  (path, info)

(* Gather the global CSC arrays back out of a segment's block views. *)
let gather_csc seg =
  let n = Segment.size seg and nnz = Segment.nnz seg in
  let col_start = Array.make (n + 1) 0 in
  col_start.(n) <- nnz;
  let rows = Array.make nnz (-1) in
  let probs = Array.make nnz nan in
  for b = 0 to Segment.num_blocks seg - 1 do
    let (v : Segment.view) = Segment.view seg b in
    let cs : Segment.int_ba = v.cs in
    let vr : Segment.int_ba = v.rows in
    let vp : Segment.float_ba = v.probs in
    for j = v.v_col_lo to v.v_col_hi - 1 do
      col_start.(j) <- Bigarray.Array1.get cs (j - v.cs_shift);
      let k_hi = Bigarray.Array1.get cs (j - v.cs_shift + 1) in
      for k = Bigarray.Array1.get cs (j - v.cs_shift) to k_hi - 1 do
        rows.(k) <- Bigarray.Array1.get vr (k - v.k_shift);
        probs.(k) <- Bigarray.Array1.get vp (k - v.k_shift)
      done
    done
  done;
  (col_start, rows, probs)

let with_open_seg ?access path f =
  let seg = get_ok "open segment" (Segment.open_ ?access path) in
  Fun.protect ~finally:(fun () -> Segment.close seg) (fun () -> f seg)

let corrupt_file path ~at ~with_ =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      ignore (Unix.lseek fd at Unix.SEEK_SET : int);
      let b = Bytes.make 1 with_ in
      ignore (Unix.write fd b 0 1 : int))

(* ---------------- format round trips ---------------- *)

let pack_roundtrip () =
  with_tmp (fun dir ->
      let rows, chain = random_chain ~seed:11 ~n:50 () in
      (* block_nnz 16 on a ~150-nnz chain forces many blocks, so
         column ranges straddle block boundaries. *)
      let path, info = pack_rows dir "t.seg" ~block_nnz:16 rows in
      check_int "info size" (Chain.size chain) info.Segment.b_n;
      check_int "info nnz" (Chain.nnz chain) info.Segment.b_nnz;
      check_true "several blocks" (info.Segment.b_blocks > 2);
      let col_start, cols, probs = Chain.to_csc chain in
      with_open_seg path (fun seg ->
          check_int "size" (Chain.size chain) (Segment.size seg);
          check_int "nnz" (Chain.nnz chain) (Segment.nnz seg);
          check_int "blocks" info.Segment.b_blocks (Segment.num_blocks seg);
          check_int "file bytes" info.Segment.b_bytes (Segment.file_bytes seg);
          let got_cs, got_rows, got_probs = gather_csc seg in
          Alcotest.(check (array int)) "col_start" col_start got_cs;
          Alcotest.(check (array int)) "rows" cols got_rows;
          check_bits "probs" probs got_probs))

let pack_matches_pack_chain () =
  with_tmp (fun dir ->
      let rows, chain = random_chain ~seed:23 ~n:31 () in
      let path_f, _ = pack_rows dir "f.seg" ~block_nnz:8 rows in
      let path_c = Filename.concat dir "c.seg" in
      let info_c = Segment.pack_chain ~block_nnz:8 ~path:path_c chain in
      check_int "nnz agrees" (Chain.nnz chain) info_c.Segment.b_nnz;
      with_open_seg path_f (fun a ->
          with_open_seg path_c (fun b ->
              let cs_a, r_a, p_a = gather_csc a in
              let cs_b, r_b, p_b = gather_csc b in
              Alcotest.(check (array int)) "col_start" cs_a cs_b;
              Alcotest.(check (array int)) "rows" r_a r_b;
              check_bits "probs" p_a p_b)))

let stream_matches_mmap () =
  with_tmp (fun dir ->
      let rows, _ = random_chain ~seed:5 ~n:29 () in
      let path, _ = pack_rows dir "t.seg" ~block_nnz:8 rows in
      with_open_seg ~access:Segment.Mmap path (fun m ->
          with_open_seg ~access:Segment.Stream path (fun s ->
              check_true "access tags" (Segment.access m = Segment.Mmap);
              check_true "access tags" (Segment.access s = Segment.Stream);
              let cs_m, r_m, p_m = gather_csc m in
              let cs_s, r_s, p_s = gather_csc s in
              Alcotest.(check (array int)) "col_start" cs_m cs_s;
              Alcotest.(check (array int)) "rows" r_m r_s;
              check_bits "probs" p_m p_s)))

let single_column_blocks () =
  (* block_nnz 1 degenerates to one column per block — the extreme
     boundary-straddling case. *)
  with_tmp (fun dir ->
      let rows, chain = random_chain ~seed:3 ~n:17 () in
      let path, info = pack_rows dir "t.seg" ~block_nnz:1 rows in
      check_int "one column per block" (Chain.size chain) info.Segment.b_blocks;
      with_open_seg path (fun seg ->
          let cs, r, p = gather_csc seg in
          let cs', r', p' = Chain.to_csc chain in
          Alcotest.(check (array int)) "col_start" cs' cs;
          Alcotest.(check (array int)) "rows" r' r;
          check_bits "probs" p' p))

let pack_validation () =
  with_tmp (fun dir ->
      let path = Filename.concat dir "bad.seg" in
      check_raises_invalid "size 0" (fun () ->
          ignore (Segment.pack ~path ~size:0 ~row:(fun _ -> [ (0, 1.) ]) ()));
      check_raises_invalid "block_nnz 0" (fun () ->
          ignore
            (Segment.pack ~block_nnz:0 ~path ~size:1 ~row:(fun _ -> [ (0, 1.) ]) ()));
      check_raises_invalid "negative probability" (fun () ->
          ignore
            (Segment.pack ~path ~size:2
               ~row:(fun _ -> [ (0, 1.5); (1, -0.5) ])
               ()));
      check_raises_invalid "column out of range" (fun () ->
          ignore (Segment.pack ~path ~size:2 ~row:(fun _ -> [ (7, 1.) ]) ()));
      (* A failed pack must not leave a partial file behind. *)
      check_false "no partial file" (Sys.file_exists path))

let pack_drift_detected () =
  (* The two passes must see the same rows; a generator that answers
     differently on the second pass fails loudly instead of writing a
     silently wrong segment. *)
  with_tmp (fun dir ->
      let path = Filename.concat dir "drift.seg" in
      let calls = ref 0 in
      let row i =
        incr calls;
        if !calls <= 3 then [ (i, 1.) ] else [ (0, 1.) ]
      in
      check_raises_invalid "drifting generator" (fun () ->
          ignore (Segment.pack ~path ~size:3 ~row ()));
      check_false "no partial file" (Sys.file_exists path))

(* ---------------- verify and corruption ---------------- *)

let verify_clean_and_corrupt () =
  with_tmp (fun dir ->
      let rows, _ = random_chain ~seed:13 ~n:20 () in
      let path, info = pack_rows dir "t.seg" ~block_nnz:8 rows in
      with_open_seg path (fun seg ->
          check_true "fresh file verifies" (Segment.verify seg = Ok ()));
      (* Flip one byte in the probs region (the tail of the file):
         open still succeeds — the header is intact — but verify's
         CRC sweep pinpoints the damaged block. *)
      corrupt_file path ~at:(info.Segment.b_bytes - 3) ~with_:'\xff';
      with_open_seg path (fun seg ->
          match Segment.verify seg with
          | Ok () -> Alcotest.fail "corrupt payload passed verify"
          | Error msgs -> check_true "names a block" (msgs <> [])))

let open_rejects_garbage () =
  with_tmp (fun dir ->
      let rows, _ = random_chain ~seed:17 ~n:12 () in
      let path, _ = pack_rows dir "t.seg" ~block_nnz:8 rows in
      (* Bad magic. *)
      let bad = Filename.concat dir "magic.seg" in
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin bad in
      output_string oc contents;
      close_out oc;
      corrupt_file bad ~at:0 ~with_:'\x00';
      check_true "bad magic rejected" (is_error (Segment.open_ bad));
      (* Truncated file. *)
      let trunc = Filename.concat dir "trunc.seg" in
      let oc = open_out_bin trunc in
      output_string oc (String.sub contents 0 (String.length contents / 2));
      close_out oc;
      check_true "truncated rejected" (is_error (Segment.open_ trunc));
      (* Not a file at all. *)
      check_true "missing rejected"
        (is_error (Segment.open_ (Filename.concat dir "nope.seg")));
      let empty = Filename.concat dir "empty.seg" in
      close_out (open_out_bin empty);
      check_true "empty rejected" (is_error (Segment.open_ empty)))

let closed_segment_raises () =
  with_tmp (fun dir ->
      let rows, _ = random_chain ~seed:19 ~n:8 () in
      let path, _ = pack_rows dir "t.seg" rows in
      let seg = get_ok "open" (Segment.open_ path) in
      Segment.close seg;
      Segment.close seg;
      check_raises_invalid "view after close" (fun () ->
          ignore (Segment.view seg 0)))

(* ---------------- evolve bit-identity ---------------- *)

let random_dist r n =
  let v = Array.init n (fun _ -> 0.01 +. Prob.Rng.float r) in
  let total = Array.fold_left ( +. ) 0. v in
  Array.map (fun x -> x /. total) v

let evolve_bit_identity () =
  with_tmp (fun dir ->
      let rows, chain = random_chain ~seed:29 ~n:47 () in
      let n = Chain.size chain in
      let path, _ = pack_rows dir "t.seg" ~block_nnz:8 rows in
      let r = rng ~seed:71 () in
      let srcs =
        Array.init 3 (fun _ -> random_dist r n)
        |> Array.to_list
        |> List.cons (Array.init n (fun i -> if i = 0 then 1. else 0.))
      in
      let expected =
        List.map
          (fun src ->
            let dst = Array.make n 0. in
            Chain.evolve_into chain ~src ~dst;
            dst)
          srcs
      in
      List.iter
        (fun access ->
          with_open_seg ~access path (fun seg ->
              let sc = Schain.of_segment seg in
              let run pool =
                List.iteri
                  (fun i src ->
                    let dst = Array.make n nan in
                    Schain.evolve_into ?pool sc ~src ~dst;
                    check_bits
                      (Printf.sprintf "src %d" i)
                      (List.nth expected i) dst)
                  srcs
              in
              run None;
              List.iter
                (fun domains ->
                  Exec.Pool.with_pool ~domains (fun pool -> run (Some pool)))
                [ 2; 4 ]))
        [ Segment.Mmap; Segment.Stream ])

let evolve_many_bit_identity () =
  with_tmp (fun dir ->
      let rows, chain = random_chain ~seed:31 ~n:33 () in
      let n = Chain.size chain in
      let path, _ = pack_rows dir "t.seg" ~block_nnz:4 rows in
      let k = 3 in
      let r = rng ~seed:77 () in
      let src_rows = Array.init k (fun _ -> random_dist r n) in
      let src = panel_of_rows src_rows in
      let expected = panel_create (k * n) in
      Chain.evolve_many_into chain ~k ~src ~dst:expected;
      with_open_seg path (fun seg ->
          let sc = Schain.of_segment seg in
          let run pool =
            let dst = panel_create (k * n) in
            Bigarray.Array1.fill dst nan;
            Schain.evolve_many_into ?pool sc ~k ~src ~dst;
            for i = 0 to (k * n) - 1 do
              if
                Int64.bits_of_float (Bigarray.Array1.get dst i)
                <> Int64.bits_of_float (Bigarray.Array1.get expected i)
              then Alcotest.failf "panel cell %d differs" i
            done
          in
          run None;
          List.iter
            (fun domains ->
              Exec.Pool.with_pool ~domains (fun pool -> run (Some pool)))
            [ 2; 4 ]))

let evolve_argument_checks () =
  with_tmp (fun dir ->
      let rows, _ = random_chain ~seed:37 ~n:9 () in
      let path, _ = pack_rows dir "t.seg" rows in
      with_open_seg path (fun seg ->
          let sc = Schain.of_segment seg in
          let n = Schain.size sc in
          let v = Array.make n 0. in
          check_raises_invalid "src length" (fun () ->
              Schain.evolve_into sc ~src:(Array.make (n + 1) 0.) ~dst:(Array.copy v));
          check_raises_invalid "dst length" (fun () ->
              Schain.evolve_into sc ~src:v ~dst:(Array.make (n - 1) 0.));
          check_raises_invalid "aliased src/dst" (fun () ->
              Schain.evolve_into sc ~src:v ~dst:v);
          check_raises_invalid "negative k" (fun () ->
              let p = panel_create n in
              Schain.evolve_many_into sc ~k:(-1) ~src:p ~dst:(panel_create n))))

(* ---------------- kernel entry points ---------------- *)

let kernel_entry_points () =
  with_tmp (fun dir ->
      let game, _phi = random_potential_game ~players:3 ~strategies:2 41 in
      let beta = 1.2 in
      let chain = Logit.Logit_dynamics.chain game ~beta in
      let n = Chain.size chain in
      let path = Filename.concat dir "g.seg" in
      let _ =
        Segment.pack ~block_nnz:8 ~path ~size:n
          ~row:(Logit.Logit_dynamics.transition_row game ~beta)
          ()
      in
      let pi = Markov.Stationary.by_power chain in
      with_open_seg path (fun seg ->
          let k = Schain.kernel (Schain.of_segment seg) in
          check_int "kernel size" n (Markov.Kernel.size k);
          let pi_seg = Markov.Stationary.by_power_kernel k in
          check_bits "by_power" pi pi_seg;
          let starts = [ 0; 1; n / 2; n - 1 ] in
          let curve = Markov.Mixing.tv_curve chain pi ~starts ~steps:20 in
          let curve_seg = Markov.Mixing.tv_curve_kernel k pi ~starts ~steps:20 in
          check_bits "tv_curve" curve curve_seg;
          let tmix = Markov.Mixing.mixing_time chain pi ~starts in
          let tmix_seg = Markov.Mixing.mixing_time_kernel k pi ~starts in
          check_true "mixing_time" (tmix = tmix_seg);
          check_true "mixing_time found" (tmix <> None);
          Exec.Pool.with_pool ~domains:4 (fun pool ->
              let curve_pool =
                Markov.Mixing.tv_curve_kernel ~pool k pi ~starts ~steps:20
              in
              check_bits "tv_curve pooled" curve curve_pool;
              let pi_pool = Markov.Stationary.by_power_kernel ~pool k in
              check_bits "by_power pooled" pi pi_pool)))

(* ---------------- QCheck round trips ---------------- *)

let qcheck_roundtrip =
  QCheck.Test.make ~count:40 ~name:"segment round trip is bit-identical"
    QCheck.(triple (int_range 1 40) (int_range 1 9) (int_range 0 10_000))
    (fun (n, block_nnz, seed) ->
      with_tmp (fun dir ->
          let rows, chain = random_chain ~seed ~n ~max_extra:3 () in
          let path, _ = pack_rows dir "q.seg" ~block_nnz rows in
          with_open_seg path (fun seg ->
              let cs, r, p = gather_csc seg in
              let cs', r', p' = Chain.to_csc chain in
              let bits_equal a b =
                Array.length a = Array.length b
                && Array.for_all2
                     (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
                     a b
              in
              let src =
                random_dist (Prob.Rng.create (seed + 1)) (Chain.size chain)
              in
              let dst = Array.make (Chain.size chain) nan in
              let dst' = Array.make (Chain.size chain) nan in
              Chain.evolve_into chain ~src ~dst;
              Schain.evolve_into (Schain.of_segment seg) ~src ~dst:dst';
              cs = cs' && r = r' && bits_equal p p'
              && bits_equal dst dst'
              && Segment.verify seg = Ok ())))

(* ---------------- suites ---------------- *)

let suites =
  [
    ( "ooc.segment",
      [
        test "pack round trip" pack_roundtrip;
        test "pack matches pack_chain" pack_matches_pack_chain;
        test "stream matches mmap" stream_matches_mmap;
        test "single-column blocks" single_column_blocks;
        test "pack validation" pack_validation;
        test "pack drift detected" pack_drift_detected;
        test "verify clean and corrupt" verify_clean_and_corrupt;
        test "open rejects garbage" open_rejects_garbage;
        test "closed segment raises" closed_segment_raises;
        qcheck qcheck_roundtrip;
      ] );
    ( "ooc.evolve",
      [
        test "evolve bit identity" evolve_bit_identity;
        test "evolve_many bit identity" evolve_many_bit_identity;
        test "argument checks" evolve_argument_checks;
        test "kernel entry points" kernel_entry_points;
      ] );
  ]
