(** Versioned, endian-stable binary framing for on-disk artifacts.

    Every artifact is a single framed byte string:

    {v
      offset  size  field
      0       4     magic "LDAF" (logit-dynamics artifact file)
      4       2     format version, little-endian
      6       2     payload kind tag, little-endian
      8       4     payload length, little-endian
      12      len   payload
      12+len  4     CRC-32 (IEEE) of bytes [0, 12+len), little-endian
    v}

    All multi-byte values are little-endian regardless of host; floats
    are stored as their IEEE-754 bit patterns, so decode∘encode is the
    identity bit for bit. Artifacts produced by one compiler are
    readable by any other — nothing here goes near [Marshal] (the
    [marshal-outside-store] lint rule keeps it that way repo-wide).

    Corrupt input never escapes as an exception or a garbage value:
    {!unframe} validates magic, version, kind, length and checksum and
    returns [Error] with a description on any mismatch, including
    truncation, single-bit flips and trailing bytes. *)

(** The current format version, stamped into every frame. Bump it when
    the payload encoding of any kind changes; old artifacts are then
    rejected (and simply rebuilt) rather than misread. *)
val version : int

(** Payload kinds. The tag travels in the frame header so an artifact
    can never be decoded as the wrong type of object. *)
type kind =
  | Chain  (** a CSR Markov chain ({!Markov.Chain_codec}) *)
  | Dist  (** a stationary distribution (float array) *)
  | Curve  (** a TV curve (float array) *)
  | Table  (** one experiment table ({!Experiments.Table}) *)
  | Table_list  (** an experiment's full table list *)
  | Request  (** a daemon wire request ({!Serve.Protocol}) *)
  | Response  (** a daemon wire response ({!Serve.Protocol}) *)
  | Segment  (** an out-of-core segment header ({!Ooc.Segment}) *)
  | Chain_structure
      (** a β-family's shared CSR index structure
          ({!Markov.Family_codec}): row offsets + columns, no
          probabilities *)
  | Chain_plane
      (** one β plane of a family ({!Markov.Family_codec}):
          probabilities over a separately-filed structure *)

(** [kind_name k] is a short lowercase name for messages and [store ls]. *)
val kind_name : kind -> string

(** Incremental payload writer over an internal buffer. Encoders never
    fail on well-typed input except [u8]/[u32] on out-of-range values
    ([Invalid_argument]). *)
module Enc : sig
  type t

  val u8 : t -> int -> unit
  val u32 : t -> int -> unit
  val i64 : t -> int64 -> unit

  (** [int_ b v] stores an OCaml [int] as a full [i64]. *)
  val int_ : t -> int -> unit

  (** [float b v] stores the IEEE-754 bit pattern ([Int64.bits_of_float]). *)
  val float : t -> float -> unit

  (** [string b s] stores a [u32] byte length followed by the bytes. *)
  val string : t -> string -> unit

  (** [int_array]/[float_array] store a [u32] length then the elements. *)
  val int_array : t -> int array -> unit

  val float_array : t -> float array -> unit

  (** [list b item xs] stores a [u32] count then each element via [item]. *)
  val list : t -> (t -> 'a -> unit) -> 'a list -> unit
end

(** Payload reader. Every read is bounds-checked against the framed
    payload; a short or malformed payload raises the internal corrupt
    exception, which {!unframe} converts to [Error] — it never escapes
    to callers of the public API. *)
module Dec : sig
  type t

  (** [fail msg] aborts decoding with [msg] — for client decoders
      (chain/table payloads) to signal semantic corruption; {!unframe}
      turns it into [Error msg]. *)
  val fail : string -> 'a

  val u8 : t -> int
  val u32 : t -> int
  val i64 : t -> int64
  val int_ : t -> int
  val float : t -> float
  val string : t -> string
  val int_array : t -> int array
  val float_array : t -> float array
  val list : t -> (t -> 'a) -> 'a list
end

(** The largest payload a frame can carry: the length field is a u32,
    so [0xFFFFFFFF] bytes. Writers that might exceed it (out-of-core
    segment regions) must split their data into bounded blocks. *)
val max_payload_bytes : int

(** [frame ~kind write] runs [write] on a fresh encoder and wraps the
    payload in the header + checksum described above. Raises
    [Invalid_argument] if the payload exceeds {!max_payload_bytes} —
    a typed failure, never a silently wrapped length field. *)
val frame : kind:kind -> (Enc.t -> unit) -> string

(** [unframe ~kind s read] validates the frame (magic, version, kind,
    length, CRC) and runs [read] over the payload. [Error] on any
    mismatch, on a [Dec] failure, or if [read] leaves payload bytes
    unconsumed. *)
val unframe : kind:kind -> string -> (Dec.t -> 'a) -> ('a, string) result

(** [inspect s] validates the frame without decoding the payload and
    returns the kind and payload byte length — the check behind
    [logitdyn store verify]. *)
val inspect : string -> (kind * int, string) result

(** {1 Flat float-array artifacts} *)

(** Stationary distributions and TV curves are plain float arrays; the
    two kinds are distinct so a curve can never be read as a
    distribution. *)

val encode_dist : float array -> string

val decode_dist : string -> (float array, string) result

val encode_curve : float array -> string

val decode_curve : string -> (float array, string) result

(** [crc32 ?len s] is the CRC-32 (IEEE 802.3) of the first [len] bytes
    of [s] (default: all) — exposed for tests and for {!Cas.verify}. *)
val crc32 : ?len:int -> string -> int
