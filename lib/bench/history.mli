(** The append-only performance trajectory: every bench run appends
    its records to one schema'd [BENCH_HISTORY.json], so the perf
    story of the repo is a single ordered file instead of three
    mutually incompatible one-shot snapshots.

    File shape:
    {v
    { "schema_version": 1, "records": [ { ...Record... }, ... ] }
    v}

    Writes go through {!Store.Io.write_atomic} (temp file + rename),
    so a killed bench run can never leave a torn trajectory. *)

(** The canonical trajectory filename, relative to the repo root. The
    single source of truth — the lint rule [bench-json-outside-bench]
    keeps other modules from spelling BENCH filenames themselves. *)
val default_path : string

(** [encode records] renders a trajectory file (pretty-printed, with
    the current {!Record.schema_version} header). Raises
    [Invalid_argument] if a record fails {!Record.validate} — callers
    must not be able to write an unreadable trajectory. *)
val encode : Record.t list -> string

(** [decode s] parses a trajectory file. A [schema_version] newer
    than {!Record.schema_version} is an error ("produced by a newer
    logitdyn"), as is any record that fails validation. *)
val decode : string -> (Record.t list, string) result

(** [load ~path] reads the trajectory at [path]; a missing file is
    [Ok []] (an empty trajectory), an unreadable or malformed one is
    [Error _]. *)
val load : path:string -> (Record.t list, string) result

(** [append ~path records] loads, appends and atomically rewrites.
    Returns the new full trajectory. *)
val append : path:string -> Record.t list -> (Record.t list, string) result

(** [latest_by_key records] keeps, for every {!Record.key}, only the
    last (most recently appended) record — the "current state" view
    the gate and the history table both start from. Ordered by first
    appearance of each key. *)
val latest_by_key : Record.t list -> Record.t list
