let check_game_dims name n m =
  if n < 1 || m < 1 then invalid_arg ("Bounds." ^ name ^ ": need n, m >= 1")

let check_beta name beta =
  if beta < 0. then invalid_arg ("Bounds." ^ name ^ ": beta must be non-negative")

let lemma33_trel_upper ~n ~m ~beta ~delta_phi =
  check_game_dims "lemma33_trel_upper" n m;
  check_beta "lemma33_trel_upper" beta;
  2. *. float_of_int m *. float_of_int n *. exp (beta *. delta_phi)

let thm34_log_tmix_upper ?(eps = 0.25) ~n ~m ~beta ~delta_phi () =
  check_game_dims "thm34_log_tmix_upper" n m;
  check_beta "thm34_log_tmix_upper" beta;
  let nf = float_of_int n and mf = float_of_int m in
  log (2. *. mf *. nf)
  +. (beta *. delta_phi)
  +. log (log (1. /. eps) +. (beta *. delta_phi) +. (nf *. log mf))

let thm34_tmix_upper ?eps ~n ~m ~beta ~delta_phi () =
  exp (thm34_log_tmix_upper ?eps ~n ~m ~beta ~delta_phi ())

let thm36_beta_threshold ~c ~n ~delta_local =
  if c <= 0. || c >= 1. then invalid_arg "Bounds.thm36_beta_threshold: need 0 < c < 1";
  if delta_local <= 0. then invalid_arg "Bounds.thm36_beta_threshold: delta_local > 0";
  c /. (float_of_int n *. delta_local)

let thm36_tmix_upper ?(eps = 0.25) ~c ~n () =
  if c <= 0. || c >= 1. then invalid_arg "Bounds.thm36_tmix_upper: need 0 < c < 1";
  let nf = float_of_int n in
  nf *. (log nf +. log (1. /. eps)) /. (1. -. c)

let thm38_log_tmix_upper ~beta ~zeta =
  check_beta "thm38_log_tmix_upper" beta;
  beta *. zeta

let lemma37_trel_upper ~n ~m ~beta ~zeta =
  check_game_dims "lemma37_trel_upper" n m;
  check_beta "lemma37_trel_upper" beta;
  let nf = float_of_int n and mf = float_of_int m in
  nf *. (mf ** ((2. *. nf) +. 1.)) *. exp (beta *. zeta)

let thm39_log_tmix_lower ~beta ~zeta =
  check_beta "thm39_log_tmix_lower" beta;
  beta *. zeta

let thm42_tmix_upper ~n ~m =
  check_game_dims "thm42_tmix_upper" n m;
  let nf = float_of_int n and mf = float_of_int m in
  (2. *. (mf ** nf) *. log 4. *. ((2. *. nf *. log nf) +. 1.)) +. 1.

let thm43_tmix_lower ~n ~m =
  check_game_dims "thm43_tmix_lower" n m;
  if m < 2 then invalid_arg "Bounds.thm43_tmix_lower: need m >= 2";
  let mf = float_of_int m and nf = float_of_int n in
  ((mf ** nf) -. 1.) /. (4. *. (mf -. 1.))

let thm51_log_tmix_upper ~n ~beta ~cutwidth ~delta0 ~delta1 =
  check_beta "thm51_log_tmix_upper" beta;
  if n < 1 || cutwidth < 0 then invalid_arg "Bounds.thm51_log_tmix_upper";
  let nf = float_of_int n in
  log (2. *. (nf ** 3.))
  +. (float_of_int cutwidth *. (delta0 +. delta1) *. beta)
  +. log ((nf *. delta0 *. beta) +. 1.)

let thm51_tmix_upper ~n ~beta ~cutwidth ~delta0 ~delta1 =
  exp (thm51_log_tmix_upper ~n ~beta ~cutwidth ~delta0 ~delta1)

let thm55_exponent ~n ~beta ~delta0 ~delta1 =
  check_beta "thm55_exponent" beta;
  if not (delta0 >= delta1) then
    invalid_arg "Bounds.thm55_exponent: paper convention requires delta0 >= delta1";
  beta *. Barrier.zeta_clique ~n ~delta0 ~delta1

let thm56_tmix_upper ?(eps = 0.25) ~n ~beta ~delta () =
  check_beta "thm56_tmix_upper" beta;
  if n < 3 then invalid_arg "Bounds.thm56_tmix_upper: ring needs n >= 3";
  let nf = float_of_int n in
  (log nf +. log (1. /. eps)) *. nf *. (1. +. exp (2. *. delta *. beta)) /. 2.

let thm57_tmix_lower ?(eps = 0.25) ~beta ~delta () =
  check_beta "thm57_tmix_lower" beta;
  (1. -. (2. *. eps)) *. (1. +. exp (2. *. delta *. beta)) /. 2.

let tmix_of_trel_upper ~trel ~pi_min ~eps =
  if trel <= 0. || pi_min <= 0. || eps <= 0. then
    invalid_arg "Bounds.tmix_of_trel_upper";
  trel *. log (1. /. (eps *. pi_min))

let tmix_of_trel_lower ~trel ~eps =
  if trel <= 0. || eps <= 0. then invalid_arg "Bounds.tmix_of_trel_lower";
  Float.max 0. ((trel -. 1.) *. log (1. /. (2. *. eps)))
