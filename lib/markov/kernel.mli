(** The evolution contract shared by in-RAM and out-of-core chains.

    {!Mixing} and {!Stationary} only ever consume two operations from
    a chain: single-distribution evolution ([evolve_into]) and panel
    evolution ([evolve_many_into]). This record reifies exactly that
    surface so their sweep loops are generalised once over the
    storage layout — {!of_chain} adapts an in-RAM {!Chain.t},
    [Ooc.Segmented_chain.kernel] adapts an on-disk segment — and the
    bit-identity guarantees of the underlying kernels carry through
    unchanged (the loops cannot observe anything but the evolved
    vectors).

    The pool is an explicit [option] rather than a [?pool] optional:
    an optional argument followed only by labelled arguments could
    never be erased at a call site (OCaml warning 16), and the sweep
    loops always hold the pool as an option already. *)

type t = {
  size : int;  (** number of states *)
  evolve_into :
    pool:Exec.Pool.t option -> src:float array -> dst:float array -> unit;
      (** same contract as {!Chain.evolve_into}: writes [src]·P into
          [dst]; [src] and [dst] distinct arrays of length [size]. *)
  evolve_many_into :
    pool:Exec.Pool.t option -> k:int -> src:Chain.panel -> dst:Chain.panel -> unit;
      (** same contract as {!Chain.evolve_many_into}: advances [k]
          panel rows in one matrix traversal. *)
}

(** [size t] is the number of states. *)
val size : t -> int

(** [v ~size ~evolve_into ~evolve_many_into] builds a kernel from its
    parts. Raises [Invalid_argument] on a non-positive size; the
    evolution functions must honour the {!Chain} contracts
    (dimension checks, distinct src/dst, bit-identical panel rows). *)
val v :
  size:int ->
  evolve_into:
    (pool:Exec.Pool.t option -> src:float array -> dst:float array -> unit) ->
  evolve_many_into:
    (pool:Exec.Pool.t option ->
    k:int ->
    src:Chain.panel ->
    dst:Chain.panel ->
    unit) ->
  t

(** [of_chain c] is the in-RAM chain [c] seen through the interface —
    every call delegates to the corresponding {!Chain} kernel. *)
val of_chain : Chain.t -> t
