type t = {
  counts : int array;
  strides : int array;  (** strides.(i) = Π_{j<i} counts.(j) *)
  size : int;
}

type profile = int array

let create counts =
  let n = Array.length counts in
  if n = 0 then invalid_arg "Strategy_space.create: no players";
  Array.iter
    (fun c -> if c < 1 then invalid_arg "Strategy_space.create: empty strategy set")
    counts;
  let strides = Array.make n 1 in
  let size = ref 1 in
  for i = 0 to n - 1 do
    strides.(i) <- !size;
    if !size > max_int / counts.(i) then
      invalid_arg "Strategy_space.create: profile space too large";
    size := !size * counts.(i)
  done;
  { counts = Array.copy counts; strides; size = !size }

let uniform ~players ~strategies = create (Array.make players strategies)

let num_players s = Array.length s.counts
let num_strategies s i = s.counts.(i)
let max_strategies s = Array.fold_left Int.max 1 s.counts
let size s = s.size

let encode s p =
  if Array.length p <> Array.length s.counts then
    invalid_arg "Strategy_space.encode: wrong profile length";
  let idx = ref 0 in
  for i = 0 to Array.length p - 1 do
    if p.(i) < 0 || p.(i) >= s.counts.(i) then
      invalid_arg "Strategy_space.encode: strategy out of range";
    idx := !idx + (p.(i) * s.strides.(i))
  done;
  !idx

let decode s idx =
  if idx < 0 || idx >= s.size then invalid_arg "Strategy_space.decode: out of range";
  Array.init (Array.length s.counts) (fun i -> idx / s.strides.(i) mod s.counts.(i))

let player_strategy s idx i = idx / s.strides.(i) mod s.counts.(i)

let replace s idx i a =
  if a < 0 || a >= s.counts.(i) then
    invalid_arg "Strategy_space.replace: strategy out of range";
  let current = player_strategy s idx i in
  idx + ((a - current) * s.strides.(i))

let iter s f =
  for idx = 0 to s.size - 1 do
    f idx
  done

let iter_profiles s f =
  let n = Array.length s.counts in
  let p = Array.make n 0 in
  for idx = 0 to s.size - 1 do
    f idx p;
    (* Increment the mixed-radix counter. *)
    let i = ref 0 in
    let carrying = ref true in
    while !carrying && !i < n do
      p.(!i) <- p.(!i) + 1;
      if p.(!i) = s.counts.(!i) then begin
        p.(!i) <- 0;
        incr i
      end
      else carrying := false
    done
  done

let neighbors s idx =
  let n = Array.length s.counts in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    let current = player_strategy s idx i in
    for a = s.counts.(i) - 1 downto 0 do
      if a <> current then acc := replace s idx i a :: !acc
    done
  done;
  !acc

let hamming_distance s a b =
  let n = Array.length s.counts in
  let d = ref 0 in
  for i = 0 to n - 1 do
    if player_strategy s a i <> player_strategy s b i then incr d
  done;
  !d

let weight s idx =
  let n = Array.length s.counts in
  let w = ref 0 in
  for i = 0 to n - 1 do
    if player_strategy s idx i <> 0 then incr w
  done;
  !w

let pp_profile ppf p =
  Format.fprintf ppf "@[<h>(%a)@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    p
