type t = {
  resources : int;
  delay : int -> int -> float;
  bundles : int list array array;  (** player -> strategy -> sorted resource list *)
  space : Strategy_space.t;
}

let create ~resources ~delay ~bundles =
  if resources < 1 then invalid_arg "Congestion.create: need resources";
  let check_bundle b =
    if b = [] then invalid_arg "Congestion.create: empty bundle";
    List.iter
      (fun r ->
        if r < 0 || r >= resources then
          invalid_arg "Congestion.create: resource id out of range")
      b;
    List.sort_uniq compare b
  in
  let bundles =
    Array.map
      (fun per_player ->
        if per_player = [] then invalid_arg "Congestion.create: player without bundles";
        Array.of_list (List.map check_bundle per_player))
      bundles
  in
  let counts = Array.map Array.length bundles in
  { resources; delay; bundles; space = Strategy_space.create counts }

let load t idx r =
  let n = Strategy_space.num_players t.space in
  let total = ref 0 in
  for i = 0 to n - 1 do
    let s = Strategy_space.player_strategy t.space idx i in
    if List.mem r t.bundles.(i).(s) then incr total
  done;
  !total

let cost t player idx =
  let s = Strategy_space.player_strategy t.space idx player in
  List.fold_left (fun acc r -> acc +. t.delay r (load t idx r)) 0.
    t.bundles.(player).(s)

let to_game t =
  let g =
    Game.create
      ~name:(Printf.sprintf "congestion(n=%d,r=%d)"
               (Strategy_space.num_players t.space) t.resources)
      t.space
      (fun player idx -> -.cost t player idx)
  in
  if Strategy_space.size t.space <= 1 lsl 18 then Game.tabulate g else g

let rosenthal t idx =
  let acc = ref 0. in
  for r = 0 to t.resources - 1 do
    for k = 1 to load t idx r do
      acc := !acc +. t.delay r k
    done
  done;
  !acc

let linear_routing ~players ~links =
  if players < 1 || links < 1 then invalid_arg "Congestion.linear_routing";
  create ~resources:links
    ~delay:(fun _r k -> float_of_int k)
    ~bundles:(Array.make players (List.init links (fun r -> [ r ])))
