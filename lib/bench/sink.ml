let csr_path = "BENCH_csr.json"
let spmm_path = "BENCH_spmm.json"
let store_path = "BENCH_store.json"
let serve_path = "BENCH_serve.json"
let ooc_path = "BENCH_ooc.json"
let family_path = "BENCH_family.json"

type provenance = { rev : string; host : string; timestamp : float }

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ | (exception _) -> "unknown")

let provenance () =
  {
    rev = git_rev ();
    host = (try Unix.gethostname () with _ -> "unknown");
    (* A timestamp, not a duration: wall clock is correct here. *)
    timestamp = Common.Clock.wall_s ();
  }

let stamp p (r : Record.t) =
  { r with Record.rev = p.rev; host = p.host; timestamp = p.timestamp }

let ( let* ) = Result.bind

let record_run ?(history_path = History.default_path) ?provenance:prov
    ~legacy_path legacy_json =
  let* records = Migrate.of_legacy_string legacy_json in
  let p = match prov with Some p -> p | None -> provenance () in
  let stamped = List.map (stamp p) records in
  let* () =
    match Store.Io.write_atomic ~path:legacy_path legacy_json with
    | () -> Ok ()
    | exception Sys_error msg -> Error msg
  in
  let* _all = History.append ~path:history_path stamped in
  Ok stamped
