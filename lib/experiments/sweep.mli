(** Parallel sweep driver for the experiment tables.

    Experiments are registered as plain [run ~quick] thunks, so the
    pool is threaded through module state rather than through every
    signature: the front end calls {!set_jobs} once, and each
    experiment maps its β / n grid through {!map}, which evaluates the
    grid points on the pool (in any order) but always returns the
    results in input order, keeping the printed tables identical to a
    serial run. Grid-point thunks must not mutate shared state. *)

(** [set_jobs n] installs a fresh global pool of [n] domains ([n <= 1]
    reverts to serial), shutting down any previous one. *)
val set_jobs : int -> unit

(** [current_pool ()] is the installed pool, if any — for experiments
    that want to pass it further down (e.g. into
    {!Markov.Mixing.mixing_time_all}). *)
val current_pool : unit -> Exec.Pool.t option

(** [map f xs] is [List.map f xs], evaluated on the installed pool when
    there is one. Results are returned in input order. *)
val map : ('a -> 'b) -> 'a list -> 'b list
