(** Cut games — anti-coordination on a graph.

    Each vertex picks a side in {0, 1} and earns [weight] for every
    neighbour on the {e other} side; the exact potential is −weight
    times the cut size, so the potential minimisers are the maximum
    cuts and the logit dynamics is Glauber dynamics on the
    {e antiferromagnetic} Ising model. The class complements the
    paper's (ferromagnetic) graphical coordination games: on bipartite
    graphs it has two mirror ground states and a clique-like barrier,
    while odd cycles are {e frustrated} — many ground states, lower
    barriers, faster mixing (experiment X8). *)

type t

(** [create ?weight graph] packs the game; [weight] (default 1) must
    be positive. *)
val create : ?weight:float -> Graphs.Graph.t -> t

(** [graph t] and [weight t]: components. *)
val graph : t -> Graphs.Graph.t

val weight : t -> float

(** [space t] is the binary profile space. *)
val space : t -> Strategy_space.t

(** [cut_size t idx] is the number of bichromatic edges in the profile
    with index [idx]. *)
val cut_size : t -> int -> int

(** [potential t idx] is Φ(x) = -weight·cut(x). *)
val potential : t -> int -> float

(** [to_game t] is the strategic game (tabulated when small). *)
val to_game : t -> Game.t

(** [max_cut t] is the maximum cut size (exhaustive; the space is
    binary so this is O(2ⁿ·|E|)). *)
val max_cut : t -> int
