(** The Theorem 3.5 lower-bound family.

    For target global variation g and local variation l with
    2g/n ≤ l ≤ g, set c = g/l and define on {0,1}ⁿ

    {v Φ(x) = -l · min { c, |c - w(x)| } v}

    where w(x) is the Hamming weight. Then δΦ = l, ΔΦ = g, the
    minimum is at the all-zero profile, the maximum (0) on the shell
    w(x) = c, and the bottleneck through that shell forces
    t_mix ≥ exp(βΔΦ(1-o(1))). *)

type t

(** [create ~players ~global ~local] validates the constraints
    [2·global/players <= local <= global] and [global/local] integral
    (within 1e-9) and packs the parameters. *)
val create : players:int -> global:float -> local:float -> t

(** [shell t] is c = g/l, the weight of the maximum-potential shell. *)
val shell : t -> int

(** [potential t idx] is Φ at profile index [idx] of the binary
    space. *)
val potential : t -> int -> float

(** [potential_of_weight t w] is Φ of any profile of Hamming weight
    [w] (the potential is symmetric). *)
val potential_of_weight : t -> int -> float

(** [to_game t] is the common-interest game realising Φ. *)
val to_game : t -> Game.t

(** [space t] is the binary profile space. *)
val space : t -> Strategy_space.t
