(** Cutwidth of a graph (Section 5.1, Theorem 5.1 of the paper).

    For a linear ordering ℓ of the vertices, the cut after position
    [i] is the number of edges with one endpoint among the first [i+1]
    vertices and the other beyond; the cutwidth of ℓ is the maximum
    cut, and the cutwidth χ(G) of the graph is the minimum over all
    orderings. Theorem 5.1 bounds the mixing time of graphical
    coordination games by an exponential in χ(G)·(δ₀+δ₁)·β.

    Computing χ(G) is NP-hard in general; this module provides an
    exact O(2ⁿ·n) dynamic program over vertex subsets (practical to
    n ≈ 20, which covers every game whose chain we can analyse
    exactly anyway) and a local-search heuristic upper bound for
    larger graphs. *)

(** [of_ordering g order] is the cutwidth of the specific ordering
    [order] (a permutation of the vertices). Raises
    [Invalid_argument] if [order] is not a permutation. *)
val of_ordering : Graph.t -> int array -> int

(** [exact g] is χ(G) by dynamic programming over subsets. Raises
    [Invalid_argument] for graphs with more than 24 vertices (the DP
    table would not fit in memory). *)
val exact : Graph.t -> int

(** [exact_with_ordering g] also returns an optimal ordering. *)
val exact_with_ordering : Graph.t -> int * int array

(** [heuristic ?restarts ?seed g] is an upper bound on χ(G) obtained
    by steepest-descent local search over adjacent transpositions from
    [restarts] random starts (default 20). *)
val heuristic : ?restarts:int -> ?seed:int -> Graph.t -> int
