(* The Braess paradox under logit dynamics.

   Four drivers travel from s to t in the classic diamond network:

        s ---(load/n')--- a ---(1)--- t
        s ---(1)--------- b ---(load/n')-- t

   Each driver picks the upper (s-a-t) or lower (s-b-t) route; the
   variable edges cost load/4 (n' = number of drivers), the fixed
   edges cost 1. Adding a free shortcut a-b opens a third route
   (s-a-b-t) using both variable edges. At equilibrium everyone takes
   the shortcut and total cost RISES — the paradox. We verify it at
   the level of the logit dynamics' stationary distribution: expected
   social cost under the Gibbs measure is computed exactly before and
   after the shortcut, across beta.

   Run with: dune exec examples/braess_paradox.exe *)

let drivers = 4

(* Resources: 0 = s-a (variable), 1 = a-t (fixed 1), 2 = s-b (fixed 1),
   3 = b-t (variable), 4 = shortcut a-b (free). *)
let delay resource k =
  match resource with
  | 0 | 3 -> float_of_int k /. float_of_int drivers
  | 1 | 2 -> 1.
  | 4 -> 0.
  | _ -> invalid_arg "unknown resource"

let without_shortcut =
  Games.Congestion.create ~resources:4 ~delay
    ~bundles:(Array.make drivers [ [ 0; 1 ]; [ 2; 3 ] ])

let with_shortcut =
  Games.Congestion.create ~resources:5 ~delay
    ~bundles:(Array.make drivers [ [ 0; 1 ]; [ 2; 3 ]; [ 0; 4; 3 ] ])

let expected_social_cost cgame beta =
  let game = Games.Congestion.to_game cgame in
  let space = Games.Game.space game in
  let phi = Games.Congestion.rosenthal cgame in
  let pi = Logit.Gibbs.stationary space phi ~beta in
  let acc = ref 0. in
  Array.iteri
    (fun idx p -> acc := !acc +. (p *. -.Games.Game.social_welfare game idx))
    pi;
  !acc

let () =
  Printf.printf
    "Braess paradox, %d drivers, exact stationary expected social cost:\n\n"
    drivers;
  Printf.printf "%6s  %18s  %18s  %10s\n" "beta" "without shortcut"
    "with shortcut" "paradox?";
  List.iter
    (fun beta ->
      let before = expected_social_cost without_shortcut beta in
      let after = expected_social_cost with_shortcut beta in
      Printf.printf "%6.2f  %18.4f  %18.4f  %10s\n" beta before after
        (if after > before +. 1e-9 then "yes" else "no"))
    [ 0.0; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ];
  Printf.printf
    "\nAt high beta the dynamics settles into the shortcut equilibrium and\n\
     the network-wide cost is higher than before the 'improvement' —\n\
     the paradox, read off the Gibbs measure rather than from a Nash\n\
     computation.\n\n";

  (* How the dynamics actually distributes drivers: expected shortcut
     usage under the Gibbs measure. *)
  let game = Games.Congestion.to_game with_shortcut in
  let space = Games.Game.space game in
  let phi = Games.Congestion.rosenthal with_shortcut in
  List.iter
    (fun beta ->
      let pi = Logit.Gibbs.stationary space phi ~beta in
      let users = ref 0. in
      Array.iteri
        (fun idx p ->
          for i = 0 to drivers - 1 do
            if Games.Strategy_space.player_strategy space idx i = 2 then
              users := !users +. p
          done)
        pi;
      Printf.printf "beta=%5.1f  E[#shortcut users] = %.3f of %d\n" beta !users
        drivers)
    [ 0.5; 4.0; 16.0 ];
  Printf.printf
    "\nThe discrete game has many weakly-tied equilibria, but the dynamics\n\
     keeps drivers on the shortcut routes that congest the variable edges\n\
     for everyone.\n"
