open Games

type mixed = float array array

let uniform game =
  let space = Game.space game in
  Array.init (Strategy_space.num_players space) (fun i ->
      let m = Strategy_space.num_strategies space i in
      Array.make m (1. /. float_of_int m))

let check_mixed game sigma =
  let space = Game.space game in
  if Array.length sigma <> Strategy_space.num_players space then
    invalid_arg "Qre: wrong number of players";
  Array.iteri
    (fun i s ->
      if Array.length s <> Strategy_space.num_strategies space i then
        invalid_arg "Qre: wrong mixture length")
    sigma

let expected_utility game sigma ~player ~strategy =
  check_mixed game sigma;
  let space = Game.space game in
  let acc = ref 0. in
  Strategy_space.iter_profiles space (fun idx profile ->
      if profile.(player) = strategy then begin
        (* Probability of the opponents' sub-profile under the product
           measure. *)
        let p = ref 1. in
        Array.iteri (fun i s -> if i <> player then p := !p *. sigma.(i).(s)) profile;
        if !p > 0. then acc := !acc +. (!p *. Game.utility game player idx)
      end);
  !acc

let logit_response game ~beta sigma player =
  if beta < 0. then invalid_arg "Qre: beta must be non-negative";
  let space = Game.space game in
  let m = Strategy_space.num_strategies space player in
  let log_weights =
    Array.init m (fun strategy ->
        beta *. expected_utility game sigma ~player ~strategy)
  in
  Prob.Logspace.normalize_logs log_weights

let residual game ~beta sigma =
  check_mixed game sigma;
  let n = Game.num_players game in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    let response = logit_response game ~beta sigma i in
    Array.iteri
      (fun a p -> worst := Float.max !worst (Float.abs (p -. sigma.(i).(a))))
      response
  done;
  !worst

let fixed_point ?(tol = 1e-12) ?(max_iter = 100_000) ?(damping = 0.5) game ~beta =
  if damping <= 0. || damping > 1. then invalid_arg "Qre: damping in (0, 1]";
  let n = Game.num_players game in
  let sigma = ref (uniform game) in
  let rec go iter =
    if residual game ~beta !sigma <= tol then Some !sigma
    else if iter >= max_iter then None
    else begin
      let next =
        Array.init n (fun i ->
            let response = logit_response game ~beta !sigma i in
            Array.mapi
              (fun a p -> ((1. -. damping) *. !sigma.(i).(a)) +. (damping *. p))
              response)
      in
      sigma := next;
      go (iter + 1)
    end
  in
  go 0

let product_distribution game sigma =
  check_mixed game sigma;
  let space = Game.space game in
  let out = Array.make (Strategy_space.size space) 0. in
  Strategy_space.iter_profiles space (fun idx profile ->
      let p = ref 1. in
      Array.iteri (fun i s -> p := !p *. sigma.(i).(s)) profile;
      out.(idx) <- !p);
  out

let stationary_gap game ~beta =
  match fixed_point game ~beta with
  | None -> None
  | Some qre ->
      let stationary =
        match Gibbs.of_game game ~beta with
        | Some pi -> pi
        | None ->
            Markov.Stationary.by_solve (Logit_dynamics.chain game ~beta)
      in
      let tv =
        Prob.Dist.tv_distance
          (Prob.Dist.of_weights (product_distribution game qre))
          (Prob.Dist.of_weights stationary)
      in
      Some (qre, tv)
