let hypot a b = Float.hypot a b
let sign_of a b = if b >= 0. then Float.abs a else -.Float.abs a

(* Implicit QL with Wilkinson shift, accumulating rotations into [z]
   (EISPACK tql2, 0-indexed). [d] holds the diagonal and receives the
   eigenvalues; [e] holds the off-diagonal in e.(0 .. n-2). *)
let tql2 d e z =
  let n = Array.length d in
  if n = 1 then ()
  else begin
    (* Shift the off-diagonal up: the classic loop expects e.(i) to
       couple rows i and i+1, which is already our layout. *)
    let eps = epsilon_float in
    for l = 0 to n - 1 do
      let iter = ref 0 in
      let finished = ref false in
      while not !finished do
        (* Find a negligible off-diagonal element. *)
        let m = ref l in
        let searching = ref true in
        while !searching && !m < n - 1 do
          let dd = Float.abs d.(!m) +. Float.abs d.(!m + 1) in
          if Float.abs e.(!m) <= eps *. dd then searching := false else incr m
        done;
        let m = !m in
        if m = l then finished := true
        else begin
          incr iter;
          if !iter > 50 then
            Common.no_convergence "Tridiag: QL iteration did not converge";
          let g = (d.(l + 1) -. d.(l)) /. (2. *. e.(l)) in
          let r = hypot g 1. in
          let g = ref (d.(m) -. d.(l) +. (e.(l) /. (g +. sign_of r g))) in
          let s = ref 1. and c = ref 1. and p = ref 0. in
          let broke = ref false in
          let i = ref (m - 1) in
          while (not !broke) && !i >= l do
            let idx = !i in
            let f = !s *. e.(idx) in
            let b = !c *. e.(idx) in
            let r = hypot f !g in
            e.(idx + 1) <- r;
            (* lint: allow float-equality — exact underflow of the rotation radius *)
            if r = 0. then begin
              d.(idx + 1) <- d.(idx + 1) -. !p;
              e.(m) <- 0.;
              broke := true
            end
            else begin
              s := f /. r;
              c := !g /. r;
              let gg = d.(idx + 1) -. !p in
              let rr = ((d.(idx) -. gg) *. !s) +. (2. *. !c *. b) in
              p := !s *. rr;
              d.(idx + 1) <- gg +. !p;
              g := (!c *. rr) -. b;
              (* Accumulate the rotation into the eigenvector matrix. *)
              for k = 0 to n - 1 do
                let zk1 = Mat.get z k (idx + 1) in
                let zk0 = Mat.get z k idx in
                Mat.set z k (idx + 1) ((!s *. zk0) +. (!c *. zk1));
                Mat.set z k idx ((!c *. zk0) -. (!s *. zk1))
              done;
              decr i
            end
          done;
          if not (!broke && !i >= l) then begin
            if not !broke then begin
              d.(l) <- d.(l) -. !p;
              e.(l) <- !g;
              e.(m) <- 0.
            end
          end
        end
      done
    done
  end

let eigensystem ~diag ~off =
  let n = Array.length diag in
  if n = 0 then invalid_arg "Tridiag.eigensystem: empty matrix";
  if Array.length off <> Int.max 0 (n - 1) then
    invalid_arg "Tridiag.eigensystem: off-diagonal length must be n-1";
  let d = Array.copy diag in
  (* e needs a slot for e.(n-1) used as workspace. *)
  let e = Array.make n 0. in
  Array.blit off 0 e 0 (n - 1);
  let z = Mat.identity n in
  tql2 d e z;
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> compare d.(j) d.(i)) order;
  let values = Array.map (fun i -> d.(i)) order in
  let vectors = Mat.init n n (fun i k -> Mat.get z i order.(k)) in
  (values, vectors)

let eigenvalues ~diag ~off = fst (eigensystem ~diag ~off)
