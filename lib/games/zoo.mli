(** Classic example games used in tests, examples, and as
    non-potential baselines. *)

(** Matching pennies: two players, zero-sum, {e not} a potential game
    (the canonical example where the logit chain is non-reversible). *)
val matching_pennies : Game.t

(** Battle of the sexes with payoffs (2,1)/(1,2) on coordination and 0
    off-diagonal. A potential game. *)
val battle_of_sexes : Game.t

(** Rock-paper-scissors, zero-sum; not a potential game. *)
val rock_paper_scissors : Game.t

(** [pure_coordination ~players ~strategies] pays each player 1 when
    all players choose the same strategy and 0 otherwise — a potential
    game with [strategies] symmetric equilibria, useful for slow-mixing
    sanity checks. *)
val pure_coordination : players:int -> strategies:int -> Game.t

(** [random_potential rng ~players ~strategies] draws a uniform random
    potential in [[0, 1)] per profile and realises it as a
    common-interest game; the returned function is the potential. *)
val random_potential :
  Prob.Rng.t -> players:int -> strategies:int -> Game.t * (int -> float)

(** [random_game rng ~players ~strategies] draws independent uniform
    payoffs in [[0, 1)] — almost surely not a potential game. *)
val random_game : Prob.Rng.t -> players:int -> strategies:int -> Game.t

(** A 3×3 two-player game solvable by three rounds of iterated strict
    dominance to the profile (0,0), in which {e neither} player has a
    dominant strategy at the outset — used by the EX1 extension
    experiment on the paper's max-solvable-games remark. *)
val iterated_dominance_game : Game.t

(** [beauty_contest ~players ~levels] is a discrete Keynesian beauty
    contest: strategies are {0,...,levels-1}, the target is 2/3 of the
    average choice, and payoffs are the negated distance to the target
    minus a lexicographic effort cost (0.001 per level) that breaks
    the discrete game's exact ties. With two players, higher
    strategies die round by round under iterated strict dominance;
    with more players the discrete game may retain {0, 1}. *)
val beauty_contest : players:int -> levels:int -> Game.t
