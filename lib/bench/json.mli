(** A minimal, dependency-free JSON reader/writer for the bench
    trajectory ([BENCH_HISTORY.json]) and the legacy [BENCH_*.json]
    snapshots it migrates. Strict on input (no trailing garbage, no
    NaN/Infinity literals, no comments) and canonical on output
    (floats printed with ["%.17g"], so every finite double
    round-trips bit-for-bit). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** [parse s] parses exactly one JSON value spanning all of [s]
    (surrounding whitespace allowed). Numbers are IEEE doubles;
    [Error] carries a character offset and reason. *)
val parse : string -> (t, string) result

(** [to_string t] prints compact single-line JSON. Raises
    [Invalid_argument] on a non-finite [Num] — JSON has no NaN or
    infinities, and the bench records must have rejected them
    earlier. *)
val to_string : t -> string

(** [pretty t] is [to_string] with two-space indentation and one
    object member / array element per line — the shape the checked-in
    trajectory file uses so diffs stay reviewable. *)
val pretty : t -> string

(** [member name t] is the value of field [name] of an [Obj]. *)
val member : string -> t -> t option

(** Typed field accessors: [Error] names the missing/mistyped field. *)

val str_field : string -> t -> (string, string) result
val num_field : string -> t -> (float, string) result
val bool_field : string -> t -> (bool, string) result
val int_field : string -> t -> (int, string) result
val list_field : string -> t -> (t list, string) result
