(* The typed rules. These need the Typedtree rather than the
   Parsetree because every check hinges on information only the
   typechecker has: resolved paths (is this [set] Array's, Hashtbl's
   or Atomic's? is this closure really going to [Exec.Pool]?),
   binder identity (is the mutated cell bound inside the closure or
   captured from outside?), and inferred types (is this Bigarray's
   kind concrete at the access site?).

   Known false-negative shapes, by design (documented in DESIGN.md):
   - interprocedural writes: a named function passed to the pool, or a
     helper called from the closure, is not analysed;
   - aliased captures: [let d = dst in d.(i) <- x] where the alias is
     closure-local roots at the local binding;
   - mutation through an unrecognised accessor chain (anything whose
     root expression we cannot trace to an identifier) is skipped. *)

open Typedtree

let last_two comps =
  match List.rev comps with
  | fn :: m :: _ -> Some (m, fn)
  | [ fn ] -> Some ("", fn)
  | [] -> None

let callee_components (f : expression) =
  match f.exp_desc with
  | Texp_ident (p, _, _) -> Typed.components p
  | _ -> []

(* n-th supplied argument of an application, in order. *)
let nth_arg args n =
  let rec go i = function
    | [] -> None
    | (_, Some e) :: tl -> if i = n then Some e else go (i + 1) tl
    | (_, None) :: tl -> go i tl
  in
  go 0 args

(* ------------------------------------------------------------------ *)
(* domain-capture                                                      *)
(* ------------------------------------------------------------------ *)

let pool_fns =
  [ "parallel_for"; "map"; "reduce"; "iter_opt"; "init_opt"; "parallelize" ]

(* A call is a pool dispatch when its resolved path ends in one of the
   entry points above and passes through a [Pool] module (either the
   component itself or a dune-mangled [Lib__Pool] compilation unit). *)
let pool_call comps =
  match List.rev comps with
  | fn :: rest when List.mem fn pool_fns ->
      if
        List.exists
          (fun c -> c = "Pool" || String.ends_with ~suffix:"__Pool" c)
          rest
      then Some fn
      else None
  | _ -> None

(* Mutating stdlib entry points, with the index of the argument that
   names the mutated structure. [Atomic.*] is deliberately absent:
   publishing through Atomic is the sanctioned cross-domain write. *)
let mutator comps =
  match last_two comps with
  | Some (("" | "Stdlib"), (":=" | "incr" | "decr")) -> Some 0
  | Some
      ( ("Array" | "Floatarray" | "Bytes" | "Array1" | "Array2" | "Array3"
        | "Genarray"),
        ("set" | "unsafe_set" | "fill") ) ->
      Some 0
  | Some
      ( "Hashtbl",
        ("add" | "replace" | "remove" | "reset" | "clear"
        | "filter_map_inplace") ) ->
      Some 0
  | Some (("Array" | "Bytes"), "blit") -> Some 2
  | Some (("Array1" | "Array2" | "Array3" | "Genarray"), "blit") -> Some 1
  | _ -> None

(* Read accessors we trace through when rooting a mutation target:
   [rows.(r).cells.(i) <- v] mutates whatever [rows] names. *)
let getter comps =
  match last_two comps with
  | Some (_, "!") -> true
  | Some
      ( ("Array" | "Floatarray" | "Bytes" | "String" | "Hashtbl" | "Array1"
        | "Array2" | "Array3" | "Genarray"),
        ("get" | "unsafe_get" | "find" | "find_opt") ) ->
      true
  | _ -> false

type root = Local of Ident.t | Global of Path.t | Unknown

let rec root_of (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Local id
  | Texp_ident (p, _, _) -> Global p
  | Texp_field (e', _, _) -> root_of e'
  | Texp_apply (f, args) when getter (callee_components f) -> (
      match nth_arg args 0 with Some a -> root_of a | None -> Unknown)
  | _ -> Unknown

(* Every identifier bound anywhere inside [e]: parameters, lets,
   match/try patterns, for-loop indices. Anything the closure mutates
   whose root is in this set is chunk-local and race-free. *)
let collect_bound (e : expression) =
  let tbl = Hashtbl.create 32 in
  let add id = Hashtbl.replace tbl (Ident.unique_name id) () in
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      pat =
        (fun (type k) it (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> add id
          | Tpat_alias (_, id, _) -> add id
          | _ -> ());
          default_iterator.pat it p);
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_for (id, _, _, _, _, _) -> add id
          | Texp_function { param; _ } -> add param
          | Texp_letop { param; _ } -> add param
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.expr it e;
  tbl

let check_domain_capture ~report str =
  let open Tast_iterator in
  let inspect_closure pool_fn (clo : expression) =
    match clo.exp_desc with
    | Texp_function _ ->
        let bound = collect_bound clo in
        let local id = Hashtbl.mem bound (Ident.unique_name id) in
        let flag loc what =
          report loc
            (Printf.sprintf
               "closure passed to Exec.Pool.%s writes to captured %s; \
                make it chunk-local, publish through Atomic, or justify \
                with (* lint: allow domain-capture *)"
               pool_fn what)
        in
        let on_target loc describe = function
          | Local id when not (local id) ->
              flag loc (describe (Ident.name id))
          | Global p ->
              flag loc (describe (String.concat "." (Typed.components p)))
          | Local _ | Unknown -> ()
        in
        let it =
          {
            default_iterator with
            expr =
              (fun it e ->
                (match e.exp_desc with
                | Texp_setfield (tgt, _, lbl, _) ->
                    on_target e.exp_loc
                      (fun n ->
                        Printf.sprintf "mutable field %s.%s" n lbl.lbl_name)
                      (root_of tgt)
                | Texp_apply (f, args) -> (
                    match mutator (callee_components f) with
                    | Some n -> (
                        match nth_arg args n with
                        | Some tgt ->
                            on_target e.exp_loc
                              (fun name -> Printf.sprintf "%S" name)
                              (root_of tgt)
                        | None -> ())
                    | None -> ())
                | _ -> ());
                default_iterator.expr it e);
          }
        in
        it.expr it clo
    | _ -> ()
  in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_apply (f, args) -> (
              match pool_call (callee_components f) with
              | Some fn ->
                  List.iter
                    (function
                      | _, Some a -> inspect_closure fn a | _, None -> ())
                    args
              | None -> ())
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* bigarray-boxing                                                     *)
(* ------------------------------------------------------------------ *)

let ba_dims = [ "Array1"; "Array2"; "Array3"; "Genarray" ]
let ba_access = [ "get"; "set"; "unsafe_get"; "unsafe_set" ]

let known_kinds =
  [
    "float32_elt"; "float64_elt"; "int8_signed_elt"; "int8_unsigned_elt";
    "int16_signed_elt"; "int16_unsigned_elt"; "int32_elt"; "int64_elt";
    "int_elt"; "nativeint_elt"; "complex32_elt"; "complex64_elt"; "char_elt";
  ]

let known_layouts = [ "c_layout"; "fortran_layout" ]

let head_name env ty =
  match Types.get_desc (Typed.expand env ty) with
  | Types.Tconstr (p, _, _) -> (
      match List.rev (Typed.components p) with n :: _ -> Some n | [] -> None)
  | _ -> None

let check_bigarray_boxing ~report str =
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_apply (f, args) -> (
              let comps = callee_components f in
              match last_two comps with
              | Some (dim, fn)
                when List.mem dim ba_dims && List.mem fn ba_access
                     && List.mem "Bigarray" comps -> (
                  match nth_arg args 0 with
                  | None -> ()
                  | Some ba -> (
                      match
                        Types.get_desc (Typed.expand ba.exp_env ba.exp_type)
                      with
                      | Types.Tconstr (_, [ _elt; kind; layout ], _) ->
                          let bad name names ty =
                            match head_name ba.exp_env ty with
                            | Some n when List.mem n names -> []
                            | _ -> [ name ]
                          in
                          let vague =
                            bad "kind" known_kinds kind
                            @ bad "layout" known_layouts layout
                          in
                          if vague <> [] then
                            report e.exp_loc
                              (Printf.sprintf
                                 "Bigarray.%s.%s through a value whose %s \
                                  is not statically concrete compiles to \
                                  the generic boxed access path (~7x \
                                  slower); annotate the parameter's kind \
                                  and layout"
                                 dim fn
                                 (String.concat " and " vague))
                      | _ -> ()))
              | _ -> ())
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* unchecked-unix-result                                               *)
(* ------------------------------------------------------------------ *)

(* Calls that can fail transiently (EINTR/EAGAIN) or on teardown
   (close on a reset peer) and so must sit under a Unix_error
   handler. *)
let eintr_fns =
  [
    "read"; "write"; "write_substring"; "single_write"; "select"; "accept";
    "connect"; "close"; "waitpid"; "recv"; "send"; "recvfrom"; "sendto";
  ]

let unix_call (e : expression) =
  match e.exp_desc with
  | Texp_apply (f, _) -> (
      match callee_components f with
      | "Unix" :: rest -> ( match List.rev rest with fn :: _ -> Some fn | [] -> None)
      | _ -> None)
  | _ -> None

let is_unit env ty =
  match head_name env ty with Some "unit" -> true | _ -> false

(* Does this (value or computation) pattern catch Unix_error? A
   wildcard or variable handler catches everything, including it. *)
let rec catches_unix_error : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_construct (_, cd, _, _) -> cd.cstr_name = "Unix_error"
  | Tpat_alias (p', _, _) -> catches_unix_error p'
  | Tpat_or (a, b, _) -> catches_unix_error a || catches_unix_error b
  | Tpat_value v -> catches_unix_error (v :> value general_pattern)
  | Tpat_exception p' -> catches_unix_error p'
  | _ -> false

(* Only exception cases guard a match scrutinee. *)
let rec exception_case_catches : type k. k general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_exception p' -> catches_unix_error p'
  | Tpat_or (a, b, _) -> exception_case_catches a || exception_case_catches b
  | Tpat_value v -> exception_case_catches (v :> value general_pattern)
  | _ -> false

let span (loc : Location.t) = (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let inside (s, e) regions =
  s >= 0 && List.exists (fun (rs, re) -> rs <= s && e <= re) regions

let check_unix_result ~report str =
  let open Tast_iterator in
  (* pass 1: character ranges whose Unix_errors are handled — try
     bodies with a matching handler, match scrutinees with a matching
     exception case. *)
  let guarded = ref [] in
  let collect =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_try (body, cases) ->
              if List.exists (fun c -> catches_unix_error c.c_lhs) cases then
                guarded := span body.exp_loc :: !guarded
          | Texp_match (scrut, cases, _) ->
              if List.exists (fun c -> exception_case_catches c.c_lhs) cases
              then guarded := span scrut.exp_loc :: !guarded
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  collect.structure collect str;
  let guarded = !guarded in
  (* pass 2: flag unguarded transient-failure calls and discarded
     results. *)
  let discarded (e : expression) context =
    match unix_call e with
    | Some fn when not (is_unit e.exp_env e.exp_type) ->
        report e.exp_loc
          (Printf.sprintf
             "result of Unix.%s is discarded (%s); check it or justify \
              with (* lint: allow unchecked-unix-result *)"
             fn context)
    | _ -> ()
  in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_sequence (e1, _) -> discarded e1 "sequence"
          | Texp_apply (f, [ (_, Some arg) ])
            when callee_components f = [ "Stdlib"; "ignore" ] ->
              discarded arg "ignore"
          | Texp_let (_, vbs, _) ->
              List.iter
                (fun vb ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_any -> discarded vb.vb_expr "let _"
                  | _ -> ())
                vbs
          | _ -> ());
          (match unix_call e with
          | Some fn
            when List.mem fn eintr_fns && not (inside (span e.exp_loc) guarded)
            ->
              report e.exp_loc
                (Printf.sprintf
                   "Unix.%s can fail transiently (EINTR/EAGAIN/reset \
                    peer) but no enclosing Unix_error handler covers it"
                   fn)
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

let all : Typed.rule list =
  [
    {
      Typed.name = "domain-capture";
      doc =
        "closures dispatched to Exec.Pool must not write captured \
         mutable state except through Atomic";
      applies = (fun _ -> true);
      check = check_domain_capture;
    };
    {
      Typed.name = "bigarray-boxing";
      doc =
        "Bigarray element access must see a statically concrete \
         kind/layout (the generic path is ~7x slower)";
      applies = (fun _ -> true);
      check = check_bigarray_boxing;
    };
    {
      Typed.name = "unchecked-unix-result";
      doc =
        "Unix results in lib/serve, lib/store and lib/ooc must be \
         consumed and transient failures (EINTR/EAGAIN) handled";
      applies =
        (fun p ->
          has_prefix "lib/serve/" p || has_prefix "lib/store/" p
          || has_prefix "lib/ooc/" p);
      check = check_unix_result;
    };
  ]
