(** Asynchronous best-response dynamics — the β = ∞ limit of the logit
    dynamics (paper, Section 1; parallel version in [17]).

    At each step a uniformly random player moves to a uniformly random
    best response against the current profile. For potential games
    this is an absorbing process on the pure Nash equilibria; for
    games without PNE (matching pennies) it walks forever. Provided as
    the classical baseline the logit dynamics generalises. *)

(** [step rng game idx] performs one best-response update (the moving
    player randomises uniformly over her best-response set, so she may
    stay put when already best-responding). *)
val step : Prob.Rng.t -> Games.Game.t -> int -> int

(** [run_until_nash rng game ~start ~max_steps] iterates until a pure
    Nash equilibrium is reached; [Some (profile, steps)] on success. *)
val run_until_nash :
  Prob.Rng.t -> Games.Game.t -> start:int -> max_steps:int -> (int * int) option

(** [absorption_histogram rng game ~start ~replicas ~max_steps] counts
    which PNE absorbs each replica — the β = ∞ analogue of the Gibbs
    measure's equilibrium selection. Censored replicas are dropped;
    the result maps profile index to absorption count. *)
val absorption_histogram :
  Prob.Rng.t -> Games.Game.t -> start:int -> replicas:int -> max_steps:int ->
  (int * int) list

(** [chain game] is the best-response Markov chain (uniform player,
    uniform best response). Its absorbing classes are the PNE of
    potential games; it is NOT ergodic in general — use the logit
    chain for mixing questions. *)
val chain : Games.Game.t -> Markov.Chain.t
