(** X10 — update-rule ablation: heat-bath (the paper's logit rule) vs
    Metropolis, plus exact-sampling certificates via coupling from the
    past.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
