(** The perf-regression gate: compare the latest candidate record for
    every {!Record.key} against the latest baseline record for the
    same key, and fail on any arm that got more than [threshold]
    percent slower — or that lost its correctness bit, which is worse
    than slow.

    Boundary semantics (pinned by tests): a candidate at *exactly*
    [threshold] percent slower passes; strictly beyond fails. Keys
    present only in the candidate are new workloads and pass; keys
    present only in the baseline are reported as disappeared and fail
    only under [~strict:true]. *)

type verdict =
  | Within of { base_s : float; cand_s : float; ratio : float }
      (** at or under the threshold; [ratio] is [cand_s /. base_s] *)
  | Regression of { base_s : float; cand_s : float; ratio : float }
  | Rss_regression of { base_kb : int; cand_kb : int; ratio : float }
      (** the arm held its timing but its peak RSS grew more than
          [threshold] percent; judged only when both baseline and
          candidate carry {!Record.t.peak_rss_kb}, with the same
          exactly-at-threshold-passes boundary as timing. A time
          regression outranks this verdict. *)
  | Incorrect  (** the candidate arm failed its own correctness gate *)
  | New_workload of { cand_s : float }
  | Disappeared of { base_s : float }

type finding = { key : string; verdict : verdict }

type report = {
  threshold : float;  (** allowed slowdown, percent *)
  strict : bool;
  findings : finding list;
      (** candidate keys in first-appearance order, then disappeared
          baseline keys *)
  failed : bool;
}

(** [compare ?strict ~threshold ~baseline ~candidate] gates the two
    trajectories. Raises [Invalid_argument] on a negative or
    non-finite [threshold]. An empty [baseline] means every candidate
    key is {!New_workload} — a first run always passes. *)
val compare :
  ?strict:bool ->
  threshold:float ->
  baseline:Record.t list ->
  candidate:Record.t list ->
  unit ->
  report

val pp_verdict : Format.formatter -> verdict -> unit

(** [pp_report] prints one line per finding plus a PASS/FAIL summary. *)
val pp_report : Format.formatter -> report -> unit
