let symmetrize t pi =
  let n = Chain.size t in
  if Array.length pi <> n then invalid_arg "Spectral.symmetrize: dimension mismatch";
  if not (Chain.is_reversible ~tol:1e-7 t pi) then
    invalid_arg "Spectral.symmetrize: chain is not reversible w.r.t. pi";
  let sqrt_pi = Array.map sqrt pi in
  let a = Linalg.Mat.create n n 0. in
  for i = 0 to n - 1 do
    Chain.iter_row t i (fun j p ->
        (* lint: allow float-equality — exact-zero skip of absent entries *)
        if p <> 0. then Linalg.Mat.set a i j (sqrt_pi.(i) *. p /. sqrt_pi.(j)))
  done;
  (* Symmetrise the round-off asymmetry exactly. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let avg = 0.5 *. (Linalg.Mat.get a i j +. Linalg.Mat.get a j i) in
      Linalg.Mat.set a i j avg;
      Linalg.Mat.set a j i avg
    done
  done;
  a

let spectrum t pi = Linalg.Eigen.eigenvalues (symmetrize t pi)

let lambda2 ?tol ?max_iter t pi =
  Linalg.Eigen.second_eigenvalue_reversible ?tol ?max_iter
    (fun i -> Chain.row_list t i)
    pi (Chain.size t)

let relaxation_time_of_gap gap =
  if gap <= 0. then invalid_arg "Spectral.relaxation_time_of_gap: non-positive gap";
  1. /. gap

let lambda_star_of_spectrum values =
  if Array.length values < 2 then invalid_arg "Spectral: trivial chain";
  Float.max values.(1) (Float.abs values.(Array.length values - 1))

let relaxation_time t pi =
  relaxation_time_of_gap (1. -. lambda_star_of_spectrum (spectrum t pi))

let spectral_gap t pi = 1. -. lambda_star_of_spectrum (spectrum t pi)

let min_eigenvalue t pi =
  let values = spectrum t pi in
  values.(Array.length values - 1)
