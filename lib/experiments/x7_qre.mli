(** X7 — quantal response equilibrium vs the dynamics' stationary law:
    the mean-field product measure is not the Gibbs measure.

    See DESIGN.md (per-experiment index) for workload, parameters and
    the modules exercised; EXPERIMENTS.md records representative
    output. *)

(** [run ~quick] produces the result tables; [quick] shrinks every
    sweep to CI scale. *)
val run : quick:bool -> Table.t list
