(* On-disk segmented CSC chains.

   File layout (all integers little-endian, floats as IEEE-754 bits):

     [Store.Codec frame, kind Segment]   header: sizes, region offsets,
                                         per-block ranges and CRCs
     [zero padding to an 8-byte boundary]
     col_start region                    (n+1) x int64
     rows region                         nnz   x int64
     probs region                        nnz   x float64

   The three regions are the transposed (CSC) layout of
   [Markov.Chain]: column j owns slice [col_start.(j), col_start.(j+1))
   of rows/probs, sources in strictly increasing order — exactly the
   arrays [Chain.to_csc] exposes, so the streaming gather kernel in
   [Segmented_chain] replays [Chain.pull_one] bit for bit.

   Indices are stored as int64, not int32: mapped with the Bigarray
   [Int] kind they read back as unboxed native ints — an int32 kind
   would box an [Int32.t] per element inside the gather loop.

   Blocks partition the column range; each block's bytes (its
   col_start slice + rows slice + probs slice) carry a CRC-32 in the
   header, and every block's byte extent is kept under the u32 frame
   bound, the same ceiling [Store.Codec.frame] enforces for the
   header itself. *)

let layout_version = 1

(* ~4 MiB of rows+probs per block: bounded build memory, bounded
   stream-mode fetch size, and enough work per block that the pool's
   serial cutover sees real costs. *)
let default_block_nnz = 262_144

(* Spill buffers flush to disk at this size during pass 2 of the
   builder, so build memory stays O(blocks), not O(nnz). *)
let spill_flush_bytes = 1 lsl 20

type block = { col_lo : int; col_hi : int; k_lo : int; k_hi : int; crc : int }

type header = {
  n : int;
  nnz : int;
  col_start_off : int;
  rows_off : int;
  probs_off : int;
  blocks : block array;
}

type int_ba = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type float_ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type view = {
  v_col_lo : int;
  v_col_hi : int;
  cs : int_ba;
  cs_shift : int;
  rows : int_ba;
  probs : float_ba;
  k_shift : int;
}

type access = Mmap | Stream

type mapped = { m_cs : int_ba; m_rows : int_ba; m_probs : float_ba }

type t = {
  path : string;
  fd : Unix.file_descr;
  header : header;
  access : access;
  mapped : mapped option;
  (* Stream mode has no pread in OCaml 5.1's Unix, so positioned reads
     are lseek+read under this lock — safe across pool domains. *)
  io_lock : Mutex.t;
  mutable closed : bool;
}

(* --- EINTR-guarded Unix helpers ---------------------------------------- *)

let rec eintr f x =
  match f x with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> eintr f x

let close_noerr fd =
  (* A close interrupted by a signal must not be retried (the
     descriptor state is unspecified, POSIX); other errors are
     ignorable on a read path. *)
  try Unix.close fd with Unix.Unix_error _ -> ()

let write_all fd bytes off len =
  let rec go written =
    if written < len then
      match Unix.write fd bytes (off + written) (len - written) with
      | w -> go (written + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go written
  in
  go 0

let read_exactly fd bytes off len =
  let rec go got =
    if got < len then
      match Unix.read fd bytes (off + got) (len - got) with
      | 0 -> raise (Sys_error "Ooc.Segment: unexpected end of file")
      | r -> go (got + r)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go got
  in
  go 0

let lseek_to fd pos =
  let (_ : int) = eintr (Unix.lseek fd pos) Unix.SEEK_SET in
  ()

(* --- header codec ------------------------------------------------------ *)

let block_entry_bytes = (4 * 8) + 4

(* The frame length is a function of the block count alone, which is
   what lets the builder reserve the header's byte extent before the
   per-block CRCs exist. *)
let header_frame_bytes ~num_blocks =
  (* Codec header + [u32 layout; 5 x int64; u32 count; entries] + CRC. *)
  12 + (4 + (5 * 8) + 4 + (num_blocks * block_entry_bytes)) + 4

let align8 x = (x + 7) land lnot 7

let encode_header h =
  Store.Codec.frame ~kind:Store.Codec.Segment (fun b ->
      let module E = Store.Codec.Enc in
      E.u32 b layout_version;
      E.int_ b h.n;
      E.int_ b h.nnz;
      E.int_ b h.col_start_off;
      E.int_ b h.rows_off;
      E.int_ b h.probs_off;
      E.list b
        (fun b blk ->
          E.int_ b blk.col_lo;
          E.int_ b blk.col_hi;
          E.int_ b blk.k_lo;
          E.int_ b blk.k_hi;
          E.u32 b blk.crc)
        (Array.to_list h.blocks))

let decode_header s =
  Store.Codec.unframe ~kind:Store.Codec.Segment s (fun d ->
      let module D = Store.Codec.Dec in
      let v = D.u32 d in
      if v <> layout_version then
        D.fail
          (Printf.sprintf "unsupported segment layout version %d (this build reads %d)"
             v layout_version);
      let n = D.int_ d in
      let nnz = D.int_ d in
      let col_start_off = D.int_ d in
      let rows_off = D.int_ d in
      let probs_off = D.int_ d in
      let blocks =
        D.list d (fun d ->
            let col_lo = D.int_ d in
            let col_hi = D.int_ d in
            let k_lo = D.int_ d in
            let k_hi = D.int_ d in
            let crc = D.u32 d in
            { col_lo; col_hi; k_lo; k_hi; crc })
      in
      { n; nnz; col_start_off; rows_off; probs_off; blocks = Array.of_list blocks })

(* Structural validation of a decoded header against the file size:
   offsets must match the layout formula and the blocks must tile
   [0, n) x [0, nnz) contiguously. *)
let validate_header h ~file_bytes =
  let num_blocks = Array.length h.blocks in
  let expect_cs = align8 (header_frame_bytes ~num_blocks) in
  if h.n < 1 then Error "segment header: empty chain"
  else if h.nnz < h.n then Error "segment header: fewer transitions than states"
  else if num_blocks = 0 then Error "segment header: no blocks"
  else if h.col_start_off <> expect_cs then Error "segment header: bad col_start offset"
  else if h.rows_off <> h.col_start_off + (8 * (h.n + 1)) then
    Error "segment header: bad rows offset"
  else if h.probs_off <> h.rows_off + (8 * h.nnz) then
    Error "segment header: bad probs offset"
  else if file_bytes <> h.probs_off + (8 * h.nnz) then
    Error
      (Printf.sprintf "segment file is %d byte(s), header implies %d" file_bytes
         (h.probs_off + (8 * h.nnz)))
  else begin
    let ok = ref (Ok ()) in
    Array.iteri
      (fun b blk ->
        if !ok = Ok () then begin
          let prev_col = if b = 0 then 0 else h.blocks.(b - 1).col_hi in
          let prev_k = if b = 0 then 0 else h.blocks.(b - 1).k_hi in
          if blk.col_lo <> prev_col || blk.k_lo <> prev_k
             || blk.col_hi <= blk.col_lo || blk.k_hi < blk.k_lo
          then ok := Error (Printf.sprintf "segment header: block %d ranges are not contiguous" b)
        end)
      h.blocks;
    match !ok with
    | Error _ as e -> e
    | Ok () ->
        let last = h.blocks.(num_blocks - 1) in
        if last.col_hi <> h.n || last.k_hi <> h.nnz then
          Error "segment header: blocks do not cover the chain"
        else Ok ()
  end

(* --- byte (de)coding of region slices ---------------------------------- *)

let bytes_of_ints values lo hi =
  (* values.(lo..hi-1) as int64 LE bytes. *)
  let out = Bytes.create (8 * (hi - lo)) in
  for i = lo to hi - 1 do
    Bytes.set_int64_le out (8 * (i - lo)) (Int64.of_int values.(i))
  done;
  out

(* --- accessors --------------------------------------------------------- *)

let size t = t.header.n
let nnz t = t.header.nnz
let blocks t = t.header.blocks
let num_blocks t = Array.length t.header.blocks
let access t = t.access
let path t = t.path
let file_bytes t = t.header.probs_off + (8 * t.header.nnz)

let check_open t =
  if t.closed then invalid_arg "Ooc.Segment: segment is closed"

(* --- positioned raw reads (stream mode and verify) --------------------- *)

let read_at t ~pos ~len =
  let buf = Bytes.create len in
  Mutex.lock t.io_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.io_lock)
    (fun () ->
      lseek_to t.fd pos;
      read_exactly t.fd buf 0 len);
  buf

(* --- open -------------------------------------------------------------- *)

let host_supported () =
  if Sys.big_endian then Error "segments require a little-endian host"
  else if Sys.word_size <> 64 then Error "segments require a 64-bit host"
  else Ok ()

(* A corrupted length field must be a clean rejection, not a
   multi-GB allocation: headers are tiny (36 bytes per block), so a
   generous fixed ceiling suffices. *)
let max_header_bytes = 16 * 1024 * 1024

let read_header fd =
  let head = Bytes.create 12 in
  lseek_to fd 0;
  read_exactly fd head 0 12;
  let declared = Int32.to_int (Bytes.get_int32_le head 8) land 0xFFFFFFFF in
  let total = 12 + declared + 4 in
  if total > max_header_bytes then
    Error (Printf.sprintf "segment header declares %d byte(s) — not a segment" declared)
  else begin
    let frame = Bytes.create total in
    Bytes.blit head 0 frame 0 12;
    read_exactly fd frame 12 (total - 12);
    decode_header (Bytes.to_string frame)
  end

let map_ints fd ~pos ~dim : int_ba =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.Int Bigarray.c_layout false
       [| dim |])

let map_floats fd ~pos ~dim : float_ba =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.Float64 Bigarray.c_layout
       false [| dim |])

(* One pass over the structural arrays — col_start monotone and
   consistent with the header's block ranges, every row index in
   [0, n) — so the gather kernels can use unchecked accesses exactly
   like [Chain] does after its construction-time validation. Probs
   need no check for memory safety (every bit pattern is a float);
   [verify] covers them via the block CRCs. *)
let validate_mapped h (m : mapped) =
  let ok = ref (Ok ()) in
  let n = h.n in
  (let prev = ref 0 in
   if Bigarray.Array1.get m.m_cs 0 <> 0 then ok := Error "col_start does not begin at 0"
   else begin
     (try
        for j = 1 to n do
          let v = Bigarray.Array1.get m.m_cs j in
          if v < !prev then begin
            ok := Error (Printf.sprintf "col_start not monotone at column %d" j);
            raise Exit
          end;
          prev := v
        done
      with Exit -> ());
     if !ok = Ok () && !prev <> h.nnz then
       ok := Error "col_start does not end at nnz"
   end);
  if !ok = Ok () then begin
    try
      for k = 0 to h.nnz - 1 do
        let i = Bigarray.Array1.get m.m_rows k in
        if i < 0 || i >= n then begin
          ok := Error (Printf.sprintf "row index %d out of range at position %d" i k);
          raise Exit
        end
      done
    with Exit -> ()
  end;
  !ok

let open_ ?(access = Mmap) path =
  match host_supported () with
  | Error _ as e -> e
  | Ok () -> (
      match eintr (Unix.openfile path [ Unix.O_RDONLY ]) 0 with
      | exception Unix.Unix_error (err, _, _) ->
          Error (Printf.sprintf "%s: %s" path (Unix.error_message err))
      | fd -> (
          let finish_err msg =
            close_noerr fd;
            Error msg
          in
          match read_header fd with
          | exception Sys_error msg -> finish_err msg
          | exception Unix.Unix_error (err, _, _) ->
              finish_err (Unix.error_message err)
          | Error msg -> finish_err msg
          | Ok header -> (
              let file_bytes = (eintr Unix.fstat fd).Unix.st_size in
              match validate_header header ~file_bytes with
              | Error msg -> finish_err msg
              | Ok () -> (
                  let t =
                    {
                      path;
                      fd;
                      header;
                      access;
                      mapped = None;
                      io_lock = Mutex.create ();
                      closed = false;
                    }
                  in
                  match access with
                  | Stream -> Ok t
                  | Mmap -> (
                      match
                        let m_cs =
                          map_ints fd ~pos:header.col_start_off ~dim:(header.n + 1)
                        in
                        let m_rows = map_ints fd ~pos:header.rows_off ~dim:header.nnz in
                        let m_probs =
                          map_floats fd ~pos:header.probs_off ~dim:header.nnz
                        in
                        { m_cs; m_rows; m_probs }
                      with
                      | exception Unix.Unix_error (err, _, _) ->
                          finish_err (Unix.error_message err)
                      | m -> (
                          match validate_mapped header m with
                          | Error msg -> finish_err msg
                          | Ok () -> Ok { t with mapped = Some m }))))))

let close t =
  if not t.closed then begin
    t.closed <- true;
    (* The maps (if any) stay valid until the GC collects them —
       munmap is tied to the bigarray proxies, not the fd. *)
    close_noerr t.fd
  end

(* --- block views -------------------------------------------------------- *)

let ints_of_bytes bytes count : int_ba =
  let a = Bigarray.Array1.create Bigarray.Int Bigarray.C_layout count in
  for i = 0 to count - 1 do
    let v = Bytes.get_int64_le bytes (8 * i) in
    let iv = Int64.to_int v in
    if Int64.of_int iv <> v then
      raise (Sys_error "Ooc.Segment: index out of native range");
    Bigarray.Array1.set a i iv
  done;
  a

let floats_of_bytes bytes count : float_ba =
  let a = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout count in
  for i = 0 to count - 1 do
    Bigarray.Array1.set a i (Int64.float_of_bits (Bytes.get_int64_le bytes (8 * i)))
  done;
  a

(* Stream-mode fetches re-validate what the open-time pass validated
   for mmap mode: the cs slice must match the header's k range and
   stay monotone, and every row index must be in [0, n), so the
   unchecked gather downstream is safe even against a file corrupted
   after open. *)
let fetch_block t blk =
  let cols = blk.col_hi - blk.col_lo in
  let cnt = blk.k_hi - blk.k_lo in
  let cs_bytes =
    read_at t ~pos:(t.header.col_start_off + (8 * blk.col_lo)) ~len:(8 * (cols + 1))
  in
  let rows_bytes = read_at t ~pos:(t.header.rows_off + (8 * blk.k_lo)) ~len:(8 * cnt) in
  let probs_bytes =
    read_at t ~pos:(t.header.probs_off + (8 * blk.k_lo)) ~len:(8 * cnt)
  in
  let cs = ints_of_bytes cs_bytes (cols + 1) in
  let rows = ints_of_bytes rows_bytes cnt in
  let probs = floats_of_bytes probs_bytes cnt in
  let bad msg = raise (Sys_error ("Ooc.Segment: corrupt block: " ^ msg)) in
  if Bigarray.Array1.get cs 0 <> blk.k_lo then bad "col_start mismatch at block start";
  for c = 1 to cols do
    if Bigarray.Array1.get cs c < Bigarray.Array1.get cs (c - 1) then
      bad "col_start not monotone"
  done;
  if Bigarray.Array1.get cs cols <> blk.k_hi then bad "col_start mismatch at block end";
  let n = t.header.n in
  for k = 0 to cnt - 1 do
    let i = Bigarray.Array1.get rows k in
    if i < 0 || i >= n then bad "row index out of range"
  done;
  {
    v_col_lo = blk.col_lo;
    v_col_hi = blk.col_hi;
    cs;
    cs_shift = blk.col_lo;
    rows;
    probs;
    k_shift = blk.k_lo;
  }

let view t b =
  check_open t;
  if b < 0 || b >= num_blocks t then invalid_arg "Ooc.Segment.view: bad block index";
  let blk = t.header.blocks.(b) in
  match t.mapped with
  | Some m ->
      {
        v_col_lo = blk.col_lo;
        v_col_hi = blk.col_hi;
        cs = m.m_cs;
        cs_shift = 0;
        rows = m.m_rows;
        probs = m.m_probs;
        k_shift = 0;
      }
  | None -> fetch_block t blk

(* --- verify ------------------------------------------------------------- *)

let block_crc t blk =
  let cols = blk.col_hi - blk.col_lo in
  let cnt = blk.k_hi - blk.k_lo in
  let cs = read_at t ~pos:(t.header.col_start_off + (8 * blk.col_lo)) ~len:(8 * (cols + 1)) in
  let rows = read_at t ~pos:(t.header.rows_off + (8 * blk.k_lo)) ~len:(8 * cnt) in
  let probs = read_at t ~pos:(t.header.probs_off + (8 * blk.k_lo)) ~len:(8 * cnt) in
  Store.Codec.crc32 (Bytes.to_string cs ^ Bytes.to_string rows ^ Bytes.to_string probs)

let verify t =
  check_open t;
  let errors = ref [] in
  Array.iteri
    (fun b blk ->
      match block_crc t blk with
      | crc ->
          if crc <> blk.crc then
            errors :=
              Printf.sprintf "block %d: checksum mismatch (stored %08x, computed %08x)"
                b blk.crc crc
              :: !errors
      | exception Sys_error msg -> errors := Printf.sprintf "block %d: %s" b msg :: !errors)
    t.header.blocks;
  match List.rev !errors with [] -> Ok () | es -> Error es

(* --- the streaming builder --------------------------------------------- *)

type build_info = { b_n : int; b_nnz : int; b_blocks : int; b_bytes : int }

(* Greedy column partition: close a block once it holds [block_nnz]
   entries (never splitting a column, so a hub column can overshoot
   — its byte extent is checked against the u32 bound below). *)
let partition_columns ~n ~block_nnz col_start =
  let blocks = ref [] in
  let col_lo = ref 0 in
  let acc = ref 0 in
  for j = 0 to n - 1 do
    let d = col_start.(j + 1) - col_start.(j) in
    if !acc > 0 && !acc + d > block_nnz then begin
      blocks :=
        {
          col_lo = !col_lo;
          col_hi = j;
          k_lo = col_start.(!col_lo);
          k_hi = col_start.(j);
          crc = 0;
        }
        :: !blocks;
      col_lo := j;
      acc := d
    end
    else acc := !acc + d
  done;
  blocks :=
    {
      col_lo = !col_lo;
      col_hi = n;
      k_lo = col_start.(!col_lo);
      k_hi = col_start.(n);
      crc = 0;
    }
    :: !blocks;
  Array.of_list (List.rev !blocks)

let block_bytes blk =
  (8 * (blk.col_hi - blk.col_lo + 1)) + (16 * (blk.k_hi - blk.k_lo))

let remove_noerr path = try Sys.remove path with Sys_error _ -> ()

let rmdir_noerr path =
  match Sys.readdir path with
  | names ->
      Array.iter (fun name -> remove_noerr (Filename.concat path name)) names;
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | exception Sys_error _ -> ()

let with_fd path flags perm f =
  let fd = eintr (Unix.openfile path flags) perm in
  Fun.protect ~finally:(fun () -> close_noerr fd) (fun () -> f fd)

let append_to_spill path buf =
  with_fd path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o600 (fun fd ->
      write_all fd (Buffer.to_bytes buf) 0 (Buffer.length buf));
  Buffer.clear buf

(* [block_of_col blocks j]: binary search for the block owning column
   [j]; blocks tile the column range so the search always lands. *)
let block_of_col (blocks : block array) j =
  let lo = ref 0 and hi = ref (Array.length blocks - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if j >= blocks.(mid).col_hi then lo := mid + 1
    else if j < blocks.(mid).col_lo then hi := mid - 1
    else begin
      lo := mid;
      hi := mid
    end
  done;
  !lo

let pack_prepared ?(block_nnz = default_block_nnz) ~path ~size:n ~prepared_row () =
  (match host_supported () with Ok () -> () | Error msg -> invalid_arg ("Ooc.Segment.pack: " ^ msg));
  if n < 1 then invalid_arg "Ooc.Segment.pack: size must be positive";
  if n > 0x3FFF_FFFF then invalid_arg "Ooc.Segment.pack: size exceeds the int32 spill bound";
  if block_nnz < 1 then invalid_arg "Ooc.Segment.pack: block_nnz must be positive";
  (* Pass 1: column in-degrees -> col_start prefix sums. O(n) memory;
     the rows themselves are not retained. *)
  let col_start = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let entries : (int * float) array = prepared_row i in
    Array.iter (fun ((j : int), (_ : float)) -> col_start.(j + 1) <- col_start.(j + 1) + 1) entries
  done;
  for j = 1 to n do
    col_start.(j) <- col_start.(j) + col_start.(j - 1)
  done;
  let nnz = col_start.(n) in
  let blocks = partition_columns ~n ~block_nnz col_start in
  Array.iteri
    (fun b blk ->
      if block_bytes blk > Store.Codec.max_payload_bytes then
        invalid_arg
          (Printf.sprintf
             "Ooc.Segment.pack: block %d spans %d byte(s), past the u32 bound — \
              a single column is too dense for this block size"
             b (block_bytes blk)))
    blocks;
  let num_blocks = Array.length blocks in
  let hdr_bytes = header_frame_bytes ~num_blocks in
  let col_start_off = align8 hdr_bytes in
  let rows_off = col_start_off + (8 * (n + 1)) in
  let probs_off = rows_off + (8 * nnz) in
  Store.Io.mkdir_p (Filename.dirname path);
  let pid = Unix.getpid () in
  let tmp = Printf.sprintf "%s.tmp.%d" path pid in
  let spill_dir = Printf.sprintf "%s.spill.%d" path pid in
  Store.Io.mkdir_p spill_dir;
  let spill_path b = Filename.concat spill_dir (Printf.sprintf "block_%d" b) in
  let cleanup () =
    remove_noerr tmp;
    rmdir_noerr spill_dir
  in
  Fun.protect ~finally:cleanup (fun () ->
      (* Pass 2: spill (j, i, p) records to per-block files. The row
         generator must be deterministic across the two passes; the
         per-column cursors below detect any drift and fail loudly. *)
      let bufs = Array.init num_blocks (fun _ -> Buffer.create 4096) in
      for i = 0 to n - 1 do
        let entries : (int * float) array = prepared_row i in
        Array.iter
          (fun ((j : int), (p : float)) ->
            let b = block_of_col blocks j in
            let buf = bufs.(b) in
            Buffer.add_int32_le buf (Int32.of_int j);
            Buffer.add_int32_le buf (Int32.of_int i);
            Buffer.add_int64_le buf (Int64.bits_of_float p);
            if Buffer.length buf >= spill_flush_bytes then
              append_to_spill (spill_path b) buf)
          entries
      done;
      Array.iteri
        (fun b buf -> if Buffer.length buf > 0 then append_to_spill (spill_path b) buf)
        bufs;
      with_fd tmp [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 (fun fd ->
          (* col_start region, streamed in bounded chunks. *)
          lseek_to fd col_start_off;
          let chunk = 65_536 in
          let j = ref 0 in
          while !j <= n do
            let hi = Int.min (n + 1) (!j + chunk) in
            let bytes = bytes_of_ints col_start !j hi in
            write_all fd bytes 0 (Bytes.length bytes);
            j := hi
          done;
          (* Per block: cursor-place the spilled records (a counting
             transpose — the generator emits rows in ascending i, so
             file order per column is already ascending i, exactly as
             [Chain.build_csc] places them), then write the region
             slices and record the CRC. *)
          let blocks =
            Array.mapi
              (fun b blk ->
                let cols = blk.col_hi - blk.col_lo in
                let cnt = blk.k_hi - blk.k_lo in
                let raw = Bytes.create (16 * cnt) in
                if cnt > 0 then
                  with_fd (spill_path b) [ Unix.O_RDONLY ] 0 (fun sfd ->
                      let st = eintr Unix.fstat sfd in
                      if st.Unix.st_size <> 16 * cnt then
                        invalid_arg
                          "Ooc.Segment.pack: row generator changed between passes";
                      read_exactly sfd raw 0 (16 * cnt));
                remove_noerr (spill_path b);
                let rows_bytes = Bytes.create (8 * cnt) in
                let probs_bytes = Bytes.create (8 * cnt) in
                let cursor =
                  Array.init cols (fun c -> col_start.(blk.col_lo + c) - blk.k_lo)
                in
                for r = 0 to cnt - 1 do
                  let j = Int32.to_int (Bytes.get_int32_le raw (16 * r)) in
                  let i = Int32.to_int (Bytes.get_int32_le raw ((16 * r) + 4)) in
                  let pbits = Bytes.get_int64_le raw ((16 * r) + 8) in
                  let c = j - blk.col_lo in
                  let slot = cursor.(c) in
                  if slot >= col_start.(j + 1) - blk.k_lo then
                    invalid_arg
                      "Ooc.Segment.pack: row generator changed between passes";
                  Bytes.set_int64_le rows_bytes (8 * slot) (Int64.of_int i);
                  Bytes.set_int64_le probs_bytes (8 * slot) pbits;
                  cursor.(c) <- slot + 1
                done;
                Array.iteri
                  (fun c pos ->
                    if pos <> col_start.(blk.col_lo + c + 1) - blk.k_lo then
                      invalid_arg
                        "Ooc.Segment.pack: row generator changed between passes")
                  cursor;
                lseek_to fd (rows_off + (8 * blk.k_lo));
                write_all fd rows_bytes 0 (8 * cnt);
                lseek_to fd (probs_off + (8 * blk.k_lo));
                write_all fd probs_bytes 0 (8 * cnt);
                let cs_bytes = bytes_of_ints col_start blk.col_lo (blk.col_hi + 1) in
                let crc =
                  Store.Codec.crc32
                    (Bytes.to_string cs_bytes ^ Bytes.to_string rows_bytes
                   ^ Bytes.to_string probs_bytes)
                in
                { blk with crc })
              blocks
          in
          (* Header last: its byte extent was reserved up front, so a
             crash mid-build leaves a file no header ever validates. *)
          let header = { n; nnz; col_start_off; rows_off; probs_off; blocks } in
          let frame = encode_header header in
          if String.length frame <> hdr_bytes then
            invalid_arg "Ooc.Segment.pack: header size drifted from its reservation";
          lseek_to fd 0;
          write_all fd (Bytes.of_string frame) 0 hdr_bytes;
          if col_start_off > hdr_bytes then
            write_all fd (Bytes.make (col_start_off - hdr_bytes) '\000') 0
              (col_start_off - hdr_bytes);
          eintr Unix.fsync fd);
      (* Atomic publish: same directory, same filesystem. *)
      Unix.rename tmp path;
      { b_n = n; b_nnz = nnz; b_blocks = num_blocks; b_bytes = probs_off + (8 * nnz) })

let pack ?block_nnz ~path ~size ~row () =
  let prepared_row i =
    Markov.Chain.normalized_row ~size i (Array.of_list (row i))
  in
  pack_prepared ?block_nnz ~path ~size ~prepared_row ()

let pack_chain ?block_nnz ~path chain =
  (* Rows of an existing chain are already validated and normalised —
     renormalising would divide by a sum that is only approximately
     one and perturb the stored bits, so they are written as-is and
     the segment is bit-identical to the chain it came from. *)
  pack_prepared ?block_nnz ~path ~size:(Markov.Chain.size chain)
    ~prepared_row:(Markov.Chain.row chain) ()
