type t = {
  graph : Graphs.Graph.t;
  basic : Coordination.t;
  space : Strategy_space.t;
}

let create graph basic =
  let n = Graphs.Graph.num_vertices graph in
  if n = 0 then invalid_arg "Graphical.create: empty social graph";
  { graph; basic; space = Strategy_space.uniform ~players:n ~strategies:2 }

let graph t = t.graph
let basic t = t.basic
let space t = t.space

let potential t idx =
  Graphs.Graph.fold_edges
    (fun acc u v ->
      let xu = Strategy_space.player_strategy t.space idx u in
      let xv = Strategy_space.player_strategy t.space idx v in
      acc +. Coordination.edge_potential t.basic xu xv)
    0. t.graph

let utility t player idx =
  let mine = Strategy_space.player_strategy t.space idx player in
  List.fold_left
    (fun acc v ->
      acc
      +. Coordination.payoff t.basic mine (Strategy_space.player_strategy t.space idx v))
    0.
    (Graphs.Graph.neighbors t.graph player)

let to_game t =
  let g =
    Game.create ~name:(Printf.sprintf "graphical-coordination(n=%d)"
                         (Graphs.Graph.num_vertices t.graph))
      t.space
      (fun player idx -> utility t player idx)
  in
  if Strategy_space.size t.space <= 1 lsl 22 then Game.tabulate g else g

let all_zero _t = 0

let all_one t =
  Strategy_space.encode t.space (Array.make (Strategy_space.num_players t.space) 1)

let ising ~delta graph =
  if delta <= 0. then invalid_arg "Graphical.ising: delta must be positive";
  create graph (Coordination.of_deltas ~delta0:delta ~delta1:delta)

let clique_potential ~n ~delta0 ~delta1 k =
  if k < 0 || k > n then invalid_arg "Graphical.clique_potential: k out of range";
  let pairs x = float_of_int (x * (x - 1)) /. 2. in
  -.((pairs (n - k) *. delta0) +. (pairs k *. delta1))

let clique_kstar ~n ~delta0 ~delta1 =
  let best = ref 0 in
  for k = 1 to n do
    if
      clique_potential ~n ~delta0 ~delta1 k
      > clique_potential ~n ~delta0 ~delta1 !best
    then best := k
  done;
  !best
