(* Wire types and codecs for the logitdynd socket protocol.

   A message on the wire is a u32 little-endian byte length followed by
   exactly that many bytes of a Store.Codec frame (magic, version,
   kind tag Request/Response, payload, CRC-32) — the same framing
   discipline as on-disk artifacts, so a corrupt or truncated message
   is rejected with a description instead of being misread, and
   nothing here goes near Marshal. *)

module Codec = Store.Codec

type query =
  | Mixing of {
      game : string;
      n : int;
      beta : float;
      eps : float;
      replicas : int;
      seed : int;
    }
  | Stationary of { game : string; n : int; beta : float }
  | Hitting of { game : string; n : int; beta : float }
  | Simulate of { game : string; n : int; beta : float; steps : int; seed : int }
  | Sample of { game : string; n : int; beta : float; count : int; seed : int }
  | Stats

type request = { id : int; deadline_ms : int option; query : query }

type error =
  | Overloaded
  | Deadline_exceeded
  | Bad_request of string
  | Server_error of string

type route = Panel | Spectral

type barrier = { d_global : float; d_local : float; zeta : float }

type mixing_reply = {
  size : int;
  reversible : bool;
  route : route;
  tmix : int option;
  empirical : (int * float) option;
  barrier : barrier option;
}

type hitting_reply = {
  size : int;
  argmin : int;
  phi_min : float;
  worst_hitting : float;
  hit_tmix : int option;
}

type stats_reply = {
  served : int;
  rejected : int;
  expired : int;
  failed : int;
  batches : int;
  max_batch : int;
  panel_steps : int;
  queue_peak : int;
  chain_cache_hits : int;
  chain_cache_misses : int;
  store_hits : int;
  store_misses : int;
}

type reply =
  | Mixing_r of mixing_reply
  | Stationary_r of float array
  | Hitting_r of hitting_reply
  | Simulate_r of int array
  | Sample_r of { samples : int array; max_window : int }
  | Stats_r of stats_reply

type response = { req_id : int; result : (reply, error) Result.t }

(* ------------------------------------------------------------------ *)
(* codecs                                                              *)

let enc_option enc_v b = function
  | None -> Codec.Enc.u8 b 0
  | Some v ->
      Codec.Enc.u8 b 1;
      enc_v b v

let dec_option dec_v d =
  match Codec.Dec.u8 d with
  | 0 -> None
  | 1 -> Some (dec_v d)
  | t -> Codec.Dec.fail (Printf.sprintf "bad option tag %d" t)

let enc_query b = function
  | Mixing { game; n; beta; eps; replicas; seed } ->
      Codec.Enc.u8 b 1;
      Codec.Enc.string b game;
      Codec.Enc.int_ b n;
      Codec.Enc.float b beta;
      Codec.Enc.float b eps;
      Codec.Enc.int_ b replicas;
      Codec.Enc.int_ b seed
  | Stationary { game; n; beta } ->
      Codec.Enc.u8 b 2;
      Codec.Enc.string b game;
      Codec.Enc.int_ b n;
      Codec.Enc.float b beta
  | Hitting { game; n; beta } ->
      Codec.Enc.u8 b 3;
      Codec.Enc.string b game;
      Codec.Enc.int_ b n;
      Codec.Enc.float b beta
  | Simulate { game; n; beta; steps; seed } ->
      Codec.Enc.u8 b 4;
      Codec.Enc.string b game;
      Codec.Enc.int_ b n;
      Codec.Enc.float b beta;
      Codec.Enc.int_ b steps;
      Codec.Enc.int_ b seed
  | Sample { game; n; beta; count; seed } ->
      Codec.Enc.u8 b 5;
      Codec.Enc.string b game;
      Codec.Enc.int_ b n;
      Codec.Enc.float b beta;
      Codec.Enc.int_ b count;
      Codec.Enc.int_ b seed
  | Stats -> Codec.Enc.u8 b 6

let dec_query d =
  match Codec.Dec.u8 d with
  | 1 ->
      let game = Codec.Dec.string d in
      let n = Codec.Dec.int_ d in
      let beta = Codec.Dec.float d in
      let eps = Codec.Dec.float d in
      let replicas = Codec.Dec.int_ d in
      let seed = Codec.Dec.int_ d in
      Mixing { game; n; beta; eps; replicas; seed }
  | 2 ->
      let game = Codec.Dec.string d in
      let n = Codec.Dec.int_ d in
      let beta = Codec.Dec.float d in
      Stationary { game; n; beta }
  | 3 ->
      let game = Codec.Dec.string d in
      let n = Codec.Dec.int_ d in
      let beta = Codec.Dec.float d in
      Hitting { game; n; beta }
  | 4 ->
      let game = Codec.Dec.string d in
      let n = Codec.Dec.int_ d in
      let beta = Codec.Dec.float d in
      let steps = Codec.Dec.int_ d in
      let seed = Codec.Dec.int_ d in
      Simulate { game; n; beta; steps; seed }
  | 5 ->
      let game = Codec.Dec.string d in
      let n = Codec.Dec.int_ d in
      let beta = Codec.Dec.float d in
      let count = Codec.Dec.int_ d in
      let seed = Codec.Dec.int_ d in
      Sample { game; n; beta; count; seed }
  | 6 -> Stats
  | t -> Codec.Dec.fail (Printf.sprintf "unknown query tag %d" t)

let encode_request r =
  Codec.frame ~kind:Codec.Request (fun b ->
      Codec.Enc.int_ b r.id;
      enc_option Codec.Enc.int_ b r.deadline_ms;
      enc_query b r.query)

let decode_request s =
  Codec.unframe ~kind:Codec.Request s (fun d ->
      let id = Codec.Dec.int_ d in
      let deadline_ms = dec_option Codec.Dec.int_ d in
      let query = dec_query d in
      { id; deadline_ms; query })

let enc_error b = function
  | Overloaded -> Codec.Enc.u8 b 1
  | Deadline_exceeded -> Codec.Enc.u8 b 2
  | Bad_request msg ->
      Codec.Enc.u8 b 3;
      Codec.Enc.string b msg
  | Server_error msg ->
      Codec.Enc.u8 b 4;
      Codec.Enc.string b msg

let dec_error d =
  match Codec.Dec.u8 d with
  | 1 -> Overloaded
  | 2 -> Deadline_exceeded
  | 3 -> Bad_request (Codec.Dec.string d)
  | 4 -> Server_error (Codec.Dec.string d)
  | t -> Codec.Dec.fail (Printf.sprintf "unknown error tag %d" t)

let enc_bool b v = Codec.Enc.u8 b (if v then 1 else 0)

let dec_bool d =
  match Codec.Dec.u8 d with
  | 0 -> false
  | 1 -> true
  | t -> Codec.Dec.fail (Printf.sprintf "bad bool %d" t)

let enc_reply b = function
  | Mixing_r m ->
      Codec.Enc.u8 b 1;
      Codec.Enc.int_ b m.size;
      enc_bool b m.reversible;
      enc_bool b (m.route = Spectral);
      enc_option Codec.Enc.int_ b m.tmix;
      enc_option
        (fun b (steps, tv) ->
          Codec.Enc.int_ b steps;
          Codec.Enc.float b tv)
        b m.empirical;
      enc_option
        (fun b { d_global; d_local; zeta } ->
          Codec.Enc.float b d_global;
          Codec.Enc.float b d_local;
          Codec.Enc.float b zeta)
        b m.barrier
  | Stationary_r pi ->
      Codec.Enc.u8 b 2;
      Codec.Enc.float_array b pi
  | Hitting_r h ->
      Codec.Enc.u8 b 3;
      Codec.Enc.int_ b h.size;
      Codec.Enc.int_ b h.argmin;
      Codec.Enc.float b h.phi_min;
      Codec.Enc.float b h.worst_hitting;
      enc_option Codec.Enc.int_ b h.hit_tmix
  | Simulate_r traj ->
      Codec.Enc.u8 b 4;
      Codec.Enc.int_array b traj
  | Sample_r { samples; max_window } ->
      Codec.Enc.u8 b 5;
      Codec.Enc.int_array b samples;
      Codec.Enc.int_ b max_window
  | Stats_r s ->
      Codec.Enc.u8 b 6;
      Codec.Enc.int_ b s.served;
      Codec.Enc.int_ b s.rejected;
      Codec.Enc.int_ b s.expired;
      Codec.Enc.int_ b s.failed;
      Codec.Enc.int_ b s.batches;
      Codec.Enc.int_ b s.max_batch;
      Codec.Enc.int_ b s.panel_steps;
      Codec.Enc.int_ b s.queue_peak;
      Codec.Enc.int_ b s.chain_cache_hits;
      Codec.Enc.int_ b s.chain_cache_misses;
      Codec.Enc.int_ b s.store_hits;
      Codec.Enc.int_ b s.store_misses

let dec_reply d =
  match Codec.Dec.u8 d with
  | 1 ->
      let size = Codec.Dec.int_ d in
      let reversible = dec_bool d in
      let route = if dec_bool d then Spectral else Panel in
      let tmix = dec_option Codec.Dec.int_ d in
      let empirical =
        dec_option
          (fun d ->
            let steps = Codec.Dec.int_ d in
            let tv = Codec.Dec.float d in
            (steps, tv))
          d
      in
      let barrier =
        dec_option
          (fun d ->
            let d_global = Codec.Dec.float d in
            let d_local = Codec.Dec.float d in
            let zeta = Codec.Dec.float d in
            { d_global; d_local; zeta })
          d
      in
      Mixing_r { size; reversible; route; tmix; empirical; barrier }
  | 2 -> Stationary_r (Codec.Dec.float_array d)
  | 3 ->
      let size = Codec.Dec.int_ d in
      let argmin = Codec.Dec.int_ d in
      let phi_min = Codec.Dec.float d in
      let worst_hitting = Codec.Dec.float d in
      let hit_tmix = dec_option Codec.Dec.int_ d in
      Hitting_r { size; argmin; phi_min; worst_hitting; hit_tmix }
  | 4 -> Simulate_r (Codec.Dec.int_array d)
  | 5 ->
      let samples = Codec.Dec.int_array d in
      let max_window = Codec.Dec.int_ d in
      Sample_r { samples; max_window }
  | 6 ->
      let served = Codec.Dec.int_ d in
      let rejected = Codec.Dec.int_ d in
      let expired = Codec.Dec.int_ d in
      let failed = Codec.Dec.int_ d in
      let batches = Codec.Dec.int_ d in
      let max_batch = Codec.Dec.int_ d in
      let panel_steps = Codec.Dec.int_ d in
      let queue_peak = Codec.Dec.int_ d in
      let chain_cache_hits = Codec.Dec.int_ d in
      let chain_cache_misses = Codec.Dec.int_ d in
      let store_hits = Codec.Dec.int_ d in
      let store_misses = Codec.Dec.int_ d in
      Stats_r
        {
          served;
          rejected;
          expired;
          failed;
          batches;
          max_batch;
          panel_steps;
          queue_peak;
          chain_cache_hits;
          chain_cache_misses;
          store_hits;
          store_misses;
        }
  | t -> Codec.Dec.fail (Printf.sprintf "unknown reply tag %d" t)

let encode_response r =
  Codec.frame ~kind:Codec.Response (fun b ->
      Codec.Enc.int_ b r.req_id;
      match r.result with
      | Ok reply ->
          Codec.Enc.u8 b 1;
          enc_reply b reply
      | Error e ->
          Codec.Enc.u8 b 0;
          enc_error b e)

let decode_response s =
  Codec.unframe ~kind:Codec.Response s (fun d ->
      let req_id = Codec.Dec.int_ d in
      let result =
        match Codec.Dec.u8 d with
        | 1 -> Ok (dec_reply d)
        | 0 -> Error (dec_error d)
        | t -> Codec.Dec.fail (Printf.sprintf "bad result tag %d" t)
      in
      { req_id; result })

(* ------------------------------------------------------------------ *)
(* length-prefixed stream framing                                      *)

(* Large enough for any panel/stationary payload on the daemon's
   size-guarded state spaces, small enough that a corrupted length
   prefix cannot make a reader buffer gigabytes. *)
let max_frame_len = 1 lsl 26

let write_framed buf s =
  let len = String.length s in
  if len > max_frame_len then invalid_arg "Protocol.write_framed: frame too large";
  Buffer.add_int32_le buf (Int32.of_int len);
  Buffer.add_string buf s

module Reader = struct
  type t = { mutable pending : Buffer.t }

  let create () = { pending = Buffer.create 4096 }
  let feed t bytes ~len = Buffer.add_subbytes t.pending bytes 0 len

  (* Pop one complete frame body (without its length prefix), if the
     buffer holds one. [Error] is sticky protocol corruption: a length
     prefix beyond [max_frame_len] can never resynchronise. *)
  let next t =
    let data = Buffer.contents t.pending in
    let total = String.length data in
    if total < 4 then Ok None
    else
      let len = Int32.to_int (String.get_int32_le data 0) land 0xFFFFFFFF in
      if len > max_frame_len then
        Error (Printf.sprintf "frame length %d exceeds limit %d" len max_frame_len)
      else if total < 4 + len then Ok None
      else begin
        let frame = String.sub data 4 len in
        let rest = Buffer.create (Int.max 64 (total - 4 - len)) in
        Buffer.add_substring rest data (4 + len) (total - 4 - len);
        t.pending <- rest;
        Ok (Some frame)
      end
end
