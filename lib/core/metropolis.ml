open Games

let update_distribution game ~beta ~player idx =
  if beta < 0. then invalid_arg "Metropolis: beta must be non-negative";
  let space = Game.space game in
  let m = Strategy_space.num_strategies space player in
  let current = Strategy_space.player_strategy space idx player in
  if m = 1 then [| 1. |]
  else begin
    (* Propose uniformly among the OTHER m-1 strategies; accepting with
       min(1, e^{beta du}) then Peskun-dominates the heat-bath rule on
       every fiber. *)
    let current_utility = Game.utility game player idx in
    let proposal_mass = 1. /. float_of_int (m - 1) in
    let out = Array.make m 0. in
    let stay = ref 0. in
    for a = 0 to m - 1 do
      if a <> current then begin
        let target = Strategy_space.replace space idx player a in
        let delta = Game.utility game player target -. current_utility in
        let accept = Float.min 1. (exp (beta *. delta)) in
        out.(a) <- accept *. proposal_mass;
        stay := !stay +. ((1. -. accept) *. proposal_mass)
      end
    done;
    out.(current) <- !stay;
    out
  end

let transition_row game ~beta idx =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let inv_n = 1. /. float_of_int n in
  let self = ref 0. in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let sigma = update_distribution game ~beta ~player:i idx in
    let current = Strategy_space.player_strategy space idx i in
    Array.iteri
      (fun a p ->
        if a = current then self := !self +. (inv_n *. p)
        else if p > 0. then
          entries := (Strategy_space.replace space idx i a, inv_n *. p) :: !entries)
      sigma
  done;
  if !self > 0. then (idx, !self) :: !entries else !entries

let chain game ~beta =
  Markov.Chain.of_function (Game.size game) (fun idx -> transition_row game ~beta idx)

let step rng game ~beta idx =
  let space = Game.space game in
  let player = Prob.Rng.int rng (Strategy_space.num_players space) in
  let m = Strategy_space.num_strategies space player in
  if m = 1 then idx
  else begin
    let current = Strategy_space.player_strategy space idx player in
    let draw = Prob.Rng.int rng (m - 1) in
    let proposal = if draw >= current then draw + 1 else draw in
    let target = Strategy_space.replace space idx player proposal in
    let delta = Game.utility game player target -. Game.utility game player idx in
    if delta >= 0. || Prob.Rng.float rng < exp (beta *. delta) then target else idx
  end

let trajectory rng game ~beta ~start ~steps =
  if steps < 0 then invalid_arg "Metropolis.trajectory: negative steps";
  let out = Array.make (steps + 1) start in
  for k = 1 to steps do
    out.(k) <- step rng game ~beta out.(k - 1)
  done;
  out
