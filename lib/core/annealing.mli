(** Time-varying inverse noise ("learning process" variant from the
    paper's conclusions): the logit dynamics with β = β(t).

    With a logarithmic schedule this is classical simulated annealing;
    the experiments compare schedules by their hitting time of the
    potential minimiser and the quality of the final profile. *)

type schedule =
  | Constant of float  (** β(t) = c *)
  | Linear of { start : float; rate : float }
      (** β(t) = start + rate·t *)
  | Exponential of { start : float; factor : float }
      (** β(t) = start · factorᵗ, [factor >= 1] *)
  | Logarithmic of { scale : float }
      (** β(t) = log(1 + t)/scale — the classical SA guarantee shape *)

(** [beta_at schedule t] is β(t) for step [t >= 0]. Raises
    [Invalid_argument] on negative [t] or invalid parameters. *)
val beta_at : schedule -> int -> float

(** [pp_schedule] prints a schedule. *)
val pp_schedule : Format.formatter -> schedule -> unit

(** [trajectory rng game schedule ~start ~steps] runs the
    inhomogeneous dynamics, applying β(t) at step t. *)
val trajectory :
  Prob.Rng.t -> Games.Game.t -> schedule -> start:int -> steps:int -> int array

(** [hitting_minimum rng game phi schedule ~start ~max_steps] is the
    first time a global potential minimiser is visited. *)
val hitting_minimum :
  Prob.Rng.t -> Games.Game.t -> (int -> float) -> schedule -> start:int ->
  max_steps:int -> int option

(** [final_potential rng game phi schedule ~start ~steps ~replicas] is
    the mean of φ(X_steps) over replicas — the annealing quality
    metric. *)
val final_potential :
  Prob.Rng.t -> Games.Game.t -> (int -> float) -> schedule -> start:int ->
  steps:int -> replicas:int -> float
