(** E8 — Theorem 5.5: on the clique,
    log t_mix ≍ β(Φ_max - Φ(1)) (constants in the base).

    The clique game is weight-symmetric; its exact lumped chain gives
    mixing times for n far beyond direct enumeration. We sweep β for
    several (δ₀, δ₁) pairs — including the worst case δ₀ = δ₁ where
    Φ_max - Φ(1) = Θ(n²δ) — and fit the β-slope of log t_mix against
    the predicted exponent β(Φ_max - Φ(1)). *)

(* Large-n scaling: the exponent Phimax - Phi(1) is Theta(n^2 delta), so
   at beta = c/zeta(n) the mixing time should stay near exp(c) for every
   n — an n-collapse made measurable by the tridiagonal eigensolver on
   the lumped chain. *)
let scale_table ~quick =
  let table =
    Table.create
      ~title:"E8b (Thm 5.5): clique n-scaling at beta = 12/zeta(n)"
      [
        ("n", Table.Right);
        ("zeta = Phimax-Phi(1)", Table.Right);
        ("beta", Table.Right);
        ("t_mix (lumped)", Table.Right);
        ("log t_mix / (beta*zeta)", Table.Right);
      ]
  in
  let sizes = if quick then [ 16; 48 ] else [ 16; 32; 64; 128; 256 ] in
  List.iter
    (fun n ->
      let zeta = Logit.Barrier.zeta_clique ~n ~delta0:1.0 ~delta1:1.0 in
      let beta = 12. /. zeta in
      let bd = Logit.Lumping.clique ~n ~delta0:1.0 ~delta1:1.0 ~beta in
      let tmix = Markov.Birth_death.mixing_time_spectral bd in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_float zeta;
          Table.cell_float beta;
          Table.cell_opt_int tmix;
          (match tmix with
          | Some t when t > 1 ->
              Table.cell_float (log (float_of_int t) /. (beta *. zeta))
          | _ -> "-");
        ])
    sizes;
  Table.add_note table
    "zeta grows 256x across the sweep yet the ratio stays bounded near a \
     constant: the exponent scales as beta*(Phimax - Phi(1)) uniformly in \
     n, up to the polynomial prefactor.";
  table

let run ~quick =
  let n = if quick then 8 else 12 in
  let table =
    Table.create
      ~title:(Printf.sprintf "E8 (Thm 5.5): clique exponent, n=%d" n)
      [
        ("d0", Table.Right);
        ("d1", Table.Right);
        ("Phimax-Phi(1)", Table.Right);
        ("beta", Table.Right);
        ("t_mix (lumped)", Table.Right);
        ("log t_mix", Table.Right);
        ("slope/zeta", Table.Right);
      ]
  in
  let deltas = if quick then [ (1.0, 1.0) ] else [ (1.0, 1.0); (1.5, 1.0); (2.0, 1.0) ] in
  List.iter
    (fun (delta0, delta1) ->
      let zeta = Logit.Barrier.zeta_clique ~n ~delta0 ~delta1 in
      let betas =
        (* Keep beta*zeta in a computable-but-clearly-exponential range. *)
        let top = 18. /. zeta in
        List.map (fun k -> top *. float_of_int k /. 6.) [ 1; 2; 3; 4; 5; 6 ]
      in
      let logs = ref [] in
      List.iter
        (fun beta ->
          let bd = Logit.Lumping.clique ~n ~delta0 ~delta1 ~beta in
          let tmix = Markov.Birth_death.mixing_time_spectral bd in
          (match tmix with
          | Some t when t > 0 -> logs := (beta, log (float_of_int t)) :: !logs
          | _ -> ());
          let slope_cell =
            match !logs with
            | (b2, l2) :: (b1, l1) :: _ when b2 > b1 ->
                Table.cell_float ((l2 -. l1) /. (b2 -. b1) /. zeta)
            | _ -> "-"
          in
          Table.add_row table
            [
              Table.cell_float delta0;
              Table.cell_float delta1;
              Table.cell_float zeta;
              Table.cell_float beta;
              Table.cell_opt_int tmix;
              (match tmix with
              | Some t when t > 0 -> Table.cell_log (log (float_of_int t))
              | _ -> "-");
              slope_cell;
            ])
        betas)
    deltas;
  Table.add_note table
    "slope/zeta is the local d(log t_mix)/d(beta) normalised by \
     Phimax-Phi(1); Thm 5.5 predicts it tends to 1.";
  let scale = scale_table ~quick in
  [ table; scale ]
