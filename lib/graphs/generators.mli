(** Standard social-graph topologies.

    The paper's Section 5 analyses graphical coordination games on a
    clique and on a ring; the cutwidth bound (Theorem 5.1) applies to
    arbitrary graphs, so a zoo of topologies is provided for the E7
    experiment. *)

(** [empty n] has no edges. *)
val empty : int -> Graph.t

(** [clique n] is the complete graph K_n. *)
val clique : int -> Graph.t

(** [path n] is the path 0-1-...-(n-1). *)
val path : int -> Graph.t

(** [ring n] is the cycle C_n; requires [n >= 3]. *)
val ring : int -> Graph.t

(** [star n] connects vertex 0 to all others; requires [n >= 1]. *)
val star : int -> Graph.t

(** [grid rows cols] is the rows×cols grid graph. *)
val grid : int -> int -> Graph.t

(** [torus rows cols] is the grid with wrap-around edges; requires
    [rows >= 3] and [cols >= 3] to stay a simple graph. *)
val torus : int -> int -> Graph.t

(** [complete_bipartite a b] is K_{a,b}. *)
val complete_bipartite : int -> int -> Graph.t

(** [binary_tree n] is the complete binary tree on [n] vertices with
    heap indexing (children of [i] are [2i+1], [2i+2]). *)
val binary_tree : int -> Graph.t

(** [erdos_renyi rng n p] includes each edge independently with
    probability [p]. *)
val erdos_renyi : Prob.Rng.t -> int -> float -> Graph.t

(** [random_regular rng n d] samples a d-regular simple graph on [n]
    vertices by the pairing model with restarts. Requires [n * d]
    even, [0 <= d < n]. Raises [Common.No_convergence] if the restart
    budget (10,000 pairings) is exhausted. *)
val random_regular : Prob.Rng.t -> int -> int -> Graph.t
