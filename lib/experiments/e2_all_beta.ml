(** E2 — Lemma 3.3 / Theorem 3.4: for every potential game and every
    β, t_rel ≤ 2mn·e^{βΔΦ} and
    t_mix ≤ 2mn·e^{βΔΦ}(log 4 + βΔΦ + n log m).

    We measure the exact relaxation and mixing times of small
    potential games over a β sweep and print them against the bounds;
    the bound must dominate at every β and its exponential β-slope
    must match the measured growth up to the o(1) slack. *)

open Games

let sweep_game table game phi betas =
  let space = Game.space game in
  let n = Strategy_space.num_players space in
  let m = Strategy_space.max_strategies space in
  let delta_phi = Potential.delta_global space phi in
  (* Each β grid point is independent: evaluate them on the sweep pool
     and append the rows in β order afterwards. The chains come from
     one β-family (utilities tabulated once, shared index structure) —
     bit-identical to the per-point rebuilds this replaced. *)
  let rows =
    Sweep.map_family game ~betas
      (fun beta chain ->
        let pi = Logit.Gibbs.stationary space phi ~beta in
        let trel = Markov.Spectral.relaxation_time chain pi in
        let tmix =
          Markov.Mixing.mixing_time_all ~max_steps:2_000_000 chain pi
        in
        let trel_bound = Logit.Bounds.lemma33_trel_upper ~n ~m ~beta ~delta_phi in
        let tmix_bound = Logit.Bounds.thm34_tmix_upper ~n ~m ~beta ~delta_phi () in
        [
          Game.name game;
          Table.cell_float beta;
          Table.cell_float delta_phi;
          Table.cell_float trel;
          Table.cell_sci trel_bound;
          Table.cell_opt_int tmix;
          Table.cell_sci tmix_bound;
          (match tmix with
          | Some t when t > 0 -> Table.cell_float (tmix_bound /. float_of_int t)
          | Some _ -> "inf"
          | None -> "-");
        ])
  in
  List.iter (Table.add_row table) rows

let run ~quick =
  let table =
    Table.create ~title:"E2 (Lem 3.3 / Thm 3.4): all-beta upper bounds"
      [
        ("game", Table.Left);
        ("beta", Table.Right);
        ("dPhi", Table.Right);
        ("t_rel", Table.Right);
        ("bound t_rel", Table.Right);
        ("t_mix", Table.Right);
        ("bound t_mix", Table.Right);
        ("bound/t_mix", Table.Right);
      ]
  in
  let betas = if quick then [ 0.5; 1.5 ] else [ 0.0; 0.5; 1.0; 1.5; 2.0; 3.0 ] in
  let coordination = Coordination.to_game (Coordination.of_deltas ~delta0:1.0 ~delta1:1.0) in
  let coordination_phi =
    match Potential.recover coordination with
    | Some phi -> phi
    | None -> assert false
  in
  sweep_game table coordination coordination_phi betas;
  let pure = Zoo.pure_coordination ~players:3 ~strategies:2 in
  let pure_phi =
    match Potential.recover pure with Some phi -> phi | None -> assert false
  in
  sweep_game table pure pure_phi betas;
  let ring =
    Graphical.create (Graphs.Generators.ring 5)
      (Coordination.of_deltas ~delta0:0.5 ~delta1:0.5)
  in
  let ring_game = Graphical.to_game ring in
  sweep_game table ring_game (Graphical.potential ring) betas;
  Table.add_note table
    "Bound must dominate measurements at every beta (ratio >= 1).";
  [ table ]
