open Helpers
open Games

(* ----- Best response dynamics ----- *)

let br_converges_on_potential_games () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.5) in
  let r = rng () in
  for start = 0 to 3 do
    match Logit.Best_response.run_until_nash r game ~start ~max_steps:1_000 with
    | Some (profile, _) -> check_true "lands on a PNE" (Game.is_pure_nash game profile)
    | None -> Alcotest.fail "BR dynamics must converge on a potential game"
  done

let br_never_settles_on_pennies () =
  let r = rng () in
  check_true "pennies never absorb"
    (Logit.Best_response.run_until_nash r Zoo.matching_pennies ~start:0
       ~max_steps:2_000
    = None)

let br_absorption_split () =
  (* Pure coordination from a symmetric start splits between equilibria. *)
  let game = Zoo.pure_coordination ~players:2 ~strategies:2 in
  let r = rng () in
  let hist =
    Logit.Best_response.absorption_histogram r game ~start:1 ~replicas:400
      ~max_steps:1_000
  in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  check_int "no censoring" 400 total;
  List.iter
    (fun (profile, _) ->
      check_true "absorbed at PNE" (Game.is_pure_nash game profile))
    hist;
  check_true "both equilibria reached" (List.length hist >= 2)

let br_chain_fixes_nash () =
  let game = Dominant.prisoners_dilemma () in
  let chain = Logit.Best_response.chain game in
  (* The dominant profile is absorbing. *)
  check_float "absorbing" 1. (Markov.Chain.prob chain 0 0)

(* ----- Parallel logit ----- *)

let parallel_rows_stochastic () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.8) in
  List.iter
    (fun beta ->
      Strategy_space.iter (Game.space game) (fun idx ->
          let row = Logit.Parallel_logit.transition_row game ~beta idx in
          let total = List.fold_left (fun acc (_, p) -> acc +. p) 0. row in
          check_float ~tol:1e-12 "row mass" 1. total))
    [ 0.0; 1.5 ]

let parallel_factorises () =
  (* P(x,y) must be the product of the per-player update probabilities. *)
  let game = Zoo.battle_of_sexes in
  let beta = 1.1 in
  let chain = Logit.Parallel_logit.chain game ~beta in
  let space = Game.space game in
  let s0 = Logit.Logit_dynamics.update_distribution game ~beta ~player:0 0 in
  let s1 = Logit.Logit_dynamics.update_distribution game ~beta ~player:1 0 in
  Strategy_space.iter space (fun target ->
      let a = Strategy_space.player_strategy space target 0 in
      let b = Strategy_space.player_strategy space target 1 in
      check_float ~tol:1e-12 "product form" (s0.(a) *. s1.(b))
        (Markov.Chain.prob chain 0 target))

let parallel_beta_zero_matches_gibbs () =
  (* At beta = 0 both dynamics have the uniform stationary law. *)
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.8) in
  let phi = Option.get (Potential.recover game) in
  check_float ~tol:1e-9 "no gap at beta 0" 0.
    (Logit.Parallel_logit.gibbs_gap game phi ~beta:0.)

let parallel_gap_grows () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.8) in
  let phi = Option.get (Potential.recover game) in
  let g1 = Logit.Parallel_logit.gibbs_gap game phi ~beta:0.5 in
  let g2 = Logit.Parallel_logit.gibbs_gap game phi ~beta:2.0 in
  check_true "gap positive" (g1 > 1e-6);
  check_true "gap grows" (g2 > g1)

let parallel_step_law () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.8) in
  let beta = 0.9 in
  let chain = Logit.Parallel_logit.chain game ~beta in
  let r = rng () in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let next = Logit.Parallel_logit.step r game ~beta 2 in
    counts.(next) <- counts.(next) + 1
  done;
  Array.iteri
    (fun j c ->
      check_float ~tol:0.012 "one-step law"
        (Markov.Chain.prob chain 2 j)
        (float_of_int c /. float_of_int n))
    counts

(* ----- Annealing ----- *)

let annealing_schedules () =
  let open Logit.Annealing in
  check_float "constant" 2. (beta_at (Constant 2.) 100);
  check_float "linear" 5. (beta_at (Linear { start = 1.; rate = 0.04 }) 100);
  check_float ~tol:1e-9 "exponential" (0.5 *. (1.01 ** 10.))
    (beta_at (Exponential { start = 0.5; factor = 1.01 }) 10);
  check_float ~tol:1e-12 "log" (log 101. /. 2.)
    (beta_at (Logarithmic { scale = 2. }) 100);
  check_raises_invalid "negative time" (fun () ->
      ignore (beta_at (Constant 1.) (-1)));
  check_raises_invalid "bad factor" (fun () ->
      ignore (beta_at (Exponential { start = 1.; factor = 0.5 }) 1))

let annealing_trajectory_runs () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.5) in
  let r = rng () in
  let traj =
    Logit.Annealing.trajectory r game
      (Logit.Annealing.Linear { start = 0.; rate = 0.01 })
      ~start:3 ~steps:200
  in
  check_int "length" 201 (Array.length traj);
  check_int "start" 3 traj.(0)

let annealing_finds_minimum () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:2. ~delta1:0.5) in
  let phi = Option.get (Potential.recover game) in
  let r = rng () in
  match
    Logit.Annealing.hitting_minimum r game phi
      (Logit.Annealing.Logarithmic { scale = 1. })
      ~start:3 ~max_steps:50_000
  with
  | Some t -> check_true "hits minimum" (t < 50_000)
  | None -> Alcotest.fail "annealing should reach the potential minimum"

let annealing_cold_beats_hot_on_quality () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:2. ~delta1:0.5) in
  let phi = Option.get (Potential.recover game) in
  let r = rng () in
  let quality schedule =
    Logit.Annealing.final_potential r game phi schedule ~start:3 ~steps:300
      ~replicas:200
  in
  let hot = quality (Logit.Annealing.Constant 0.05) in
  let annealed = quality (Logit.Annealing.Linear { start = 0.; rate = 0.02 }) in
  check_true "annealing reaches lower potential" (annealed < hot)

(* ----- Solvable ----- *)

let solvable_pd () =
  let game = Dominant.prisoners_dilemma () in
  check_true "PD solvable" (Solvable.is_dominance_solvable game);
  check_true "solution = defect/defect" (Solvable.solution game = Some 0)

let solvable_iterated_game () =
  let game = Zoo.iterated_dominance_game in
  check_true "no dominant profile" (Game.dominant_profile game = None);
  check_true "solvable" (Solvable.is_dominance_solvable game);
  check_true "solution (0,0)" (Solvable.solution game = Some 0);
  (* The solution must be a PNE. *)
  check_true "solution is PNE"
    (Game.is_pure_nash game (Option.get (Solvable.solution game)))

let solvable_needs_iterations () =
  let game = Zoo.iterated_dominance_game in
  let space = Game.space game in
  let full =
    Array.init 2 (fun i -> List.init (Strategy_space.num_strategies space i) Fun.id)
  in
  let once, changed = Solvable.eliminate_once game full in
  check_true "first round eliminates" changed;
  (* After one round, the game is not yet solved. *)
  check_true "not yet solved"
    (Array.exists (fun l -> List.length l > 1) once)

let solvable_rejects_coordination () =
  check_false "coordination unsolvable"
    (Solvable.is_dominance_solvable
       (Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:1.)));
  check_false "pennies unsolvable"
    (Solvable.is_dominance_solvable Zoo.matching_pennies)

let solvable_beauty_contest () =
  let game = Zoo.beauty_contest ~players:2 ~levels:3 in
  check_true "beauty contest solvable" (Solvable.is_dominance_solvable game);
  check_true "all play 0" (Solvable.solution game = Some 0)

let second_price_auction_truthful () =
  let game =
    Solvable.second_price_auction ~bidders:2 ~valuations:[| 2.; 1. |]
      ~bids:[| 0.; 1.; 2.; 3. |]
  in
  (* Bidding one's valuation is weakly dominant: check it is a best
     response in every profile. *)
  let space = Game.space game in
  Strategy_space.iter space (fun idx ->
      check_true "truthful is BR for bidder 0"
        (List.mem 2 (Game.best_responses game 0 idx));
      check_true "truthful is BR for bidder 1"
        (List.mem 1 (Game.best_responses game 1 idx)))

(* ----- Comparison (path families from the proofs) ----- *)

let bit_fixing_paths_valid () =
  let game = Zoo.pure_coordination ~players:3 ~strategies:2 in
  let chain = Logit.Logit_dynamics.chain game ~beta:1.0 in
  let fam =
    Logit.Comparison.bit_fixing_family (Game.space game) ~order:[| 2; 0; 1 |]
  in
  check_true "family valid" (Markov.Paths.validate chain fam = None)

let lemma54_holds () =
  List.iter
    (fun graph ->
      let _, order = Graphs.Cutwidth.exact_with_ordering graph in
      let desc =
        Graphical.create graph (Coordination.of_deltas ~delta0:0.5 ~delta1:0.5)
      in
      List.iter
        (fun beta ->
          let rho, bound = Logit.Comparison.lemma54_congestion desc ~beta ~order in
          check_true "Lemma 5.4" (rho <= bound +. 1e-9))
        [ 0.3; 1.0 ])
    [ Graphs.Generators.ring 5; Graphs.Generators.path 5; Graphs.Generators.star 5 ]

let lemma33_chain_of_inequalities () =
  List.iter
    (fun game ->
      let phi = Option.get (Potential.recover game) in
      List.iter
        (fun beta ->
          let _, _, implied, closed =
            Logit.Comparison.lemma33_comparison game phi ~beta
          in
          let chain = Logit.Logit_dynamics.chain game ~beta in
          let pi = Logit.Gibbs.stationary (Game.space game) phi ~beta in
          let trel = Markov.Spectral.relaxation_time chain pi in
          check_true "trel <= alpha*gamma*trel0" (trel <= implied +. 1e-6);
          check_true "implied <= closed form" (implied <= closed +. 1e-6))
        [ 0.5; 1.5 ])
    [
      Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.6);
      Zoo.pure_coordination ~players:3 ~strategies:2;
    ]

let admissible_family_valid () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.6) in
  let phi = Option.get (Potential.recover game) in
  let fam = Logit.Comparison.admissible_detour_family game phi in
  (* Paths exist and run along chain edges for all unilateral pairs. *)
  let chain = Logit.Logit_dynamics.chain game ~beta:1.0 in
  let space = Game.space game in
  Strategy_space.iter space (fun x ->
      List.iter
        (fun y ->
          let path = fam x y in
          check_true "non-empty" (path <> []);
          List.iter
            (fun (u, v) ->
              check_true "chain edge" (Markov.Chain.prob chain u v > 0.))
            path)
        (Strategy_space.neighbors space x))

(* ----- Autocorrelation ----- *)

let autocorr_basics () =
  let xs = Array.init 100 (fun i -> float_of_int (i mod 2)) in
  check_float ~tol:1e-9 "lag 0" 1. (Prob.Autocorr.autocorrelation xs 0);
  check_true "alternating negative lag1" (Prob.Autocorr.autocorrelation xs 1 < 0.);
  check_raises_invalid "constant series" (fun () ->
      ignore (Prob.Autocorr.autocorrelation (Array.make 10 1.) 1))

let autocorr_iid_tau_one () =
  let r = rng () in
  let xs = Array.init 20_000 (fun _ -> Prob.Rng.float r) in
  check_float ~tol:0.1 "iid tau ~ 1" 1. (Prob.Autocorr.integrated_time xs);
  check_true "ess near n"
    (Prob.Autocorr.effective_sample_size xs > 15_000.)

let autocorr_slow_chain_large_tau () =
  (* An AR(1)-like sticky logit observable has tau >> 1. *)
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:1.) in
  let r = rng () in
  let traj = Logit.Logit_dynamics.trajectory r game ~beta:2.5 ~start:0 ~steps:20_000 in
  let obs = Array.map (fun idx -> float_of_int (idx land 1)) traj in
  check_true "sticky tau >> 1" (Prob.Autocorr.integrated_time obs > 5.)

let acf_shape () =
  let r = rng () in
  let xs = Array.init 5_000 (fun _ -> Prob.Rng.float r) in
  let acf = Prob.Autocorr.acf xs ~max_lag:5 in
  check_int "length" 6 (Array.length acf);
  check_float ~tol:1e-9 "acf(0)" 1. acf.(0)

(* ----- Registry extensions ----- *)

let registry_extensions () =
  check_int "ten extensions" 10 (List.length Experiments.Registry.extensions);
  check_true "find x3" ((Experiments.Registry.find "X3").Experiments.Registry.id = "x3")

let suites =
  [
    ( "logit.best_response",
      [
        test "converges on potential games" br_converges_on_potential_games;
        test "pennies never settle" br_never_settles_on_pennies;
        test "absorption split" br_absorption_split;
        test "chain absorbs at PNE" br_chain_fixes_nash;
      ] );
    ( "logit.parallel",
      [
        test "rows stochastic" parallel_rows_stochastic;
        test "product form" parallel_factorises;
        test "beta 0 matches gibbs" parallel_beta_zero_matches_gibbs;
        test "gibbs gap grows" parallel_gap_grows;
        test "step law" parallel_step_law;
      ] );
    ( "logit.annealing",
      [
        test "schedules" annealing_schedules;
        test "trajectory" annealing_trajectory_runs;
        test "finds minimum" annealing_finds_minimum;
        test "annealed beats hot" annealing_cold_beats_hot_on_quality;
      ] );
    ( "games.solvable",
      [
        test "prisoner's dilemma" solvable_pd;
        test "iterated-dominance game" solvable_iterated_game;
        test "needs several rounds" solvable_needs_iterations;
        test "rejects coordination & pennies" solvable_rejects_coordination;
        test "beauty contest" solvable_beauty_contest;
        test "second-price auction truthful" second_price_auction_truthful;
      ] );
    ( "logit.comparison",
      [
        test "bit-fixing paths valid" bit_fixing_paths_valid;
        test "Lemma 5.4 holds" lemma54_holds;
        test "Lemma 3.3 inequality chain" lemma33_chain_of_inequalities;
        test "admissible detours valid" admissible_family_valid;
      ] );
    ( "prob.autocorr",
      [
        test "basics" autocorr_basics;
        test "iid tau" autocorr_iid_tau_one;
        test "sticky chain tau" autocorr_slow_chain_large_tau;
        test "acf shape" acf_shape;
      ] );
    ("experiments.extensions", [ test "registry" registry_extensions ]);
  ]

(* ----- Cut games (appended) ----- *)

let cut_game_basics () =
  let cut = Cut_game.create (Graphs.Generators.ring 4) in
  let space = Cut_game.space cut in
  check_int "max cut even ring" 4 (Cut_game.max_cut cut);
  let alternating = Strategy_space.encode space [| 0; 1; 0; 1 |] in
  check_int "alternating cut" 4 (Cut_game.cut_size cut alternating);
  check_int "monochromatic cut" 0 (Cut_game.cut_size cut 0);
  check_float "potential" (-4.) (Cut_game.potential cut alternating);
  check_raises_invalid "bad weight" (fun () ->
      ignore (Cut_game.create ~weight:0. (Graphs.Generators.ring 4)))

let cut_game_is_potential () =
  let cut = Cut_game.create ~weight:0.7 (Graphs.Generators.ring 5) in
  let game = Cut_game.to_game cut in
  check_true "exact potential" (Potential.verify game (Cut_game.potential cut))

let cut_game_odd_ring_frustrated () =
  let even = Cut_game.create (Graphs.Generators.ring 6) in
  let odd = Cut_game.create (Graphs.Generators.ring 7) in
  check_int "even max cut" 6 (Cut_game.max_cut even);
  check_int "odd max cut" 6 (Cut_game.max_cut odd);
  (* Frustration: even ring has 2 perfect cuts; odd has 2n one-defect
     ground states. *)
  check_int "even ground states" 2
    (List.length
       (Potential.global_minima (Cut_game.space even) (Cut_game.potential even)));
  check_int "odd ground states" 14
    (List.length
       (Potential.global_minima (Cut_game.space odd) (Cut_game.potential odd)));
  (* Barrier collapses to 0 on the odd ring. *)
  check_float "even zeta" 2.
    (Logit.Barrier.zeta (Cut_game.space even) (Cut_game.potential even));
  check_float "odd zeta" 0.
    (Logit.Barrier.zeta (Cut_game.space odd) (Cut_game.potential odd))

let cut_game_ground_states_are_nash () =
  let cut = Cut_game.create (Graphs.Generators.ring 6) in
  let game = Cut_game.to_game cut in
  List.iter
    (fun idx -> check_true "max cut is PNE" (Game.is_pure_nash game idx))
    (Potential.global_minima (Cut_game.space cut) (Cut_game.potential cut))

(* ----- QRE (appended) ----- *)

let qre_matching_pennies_uniform () =
  List.iter
    (fun beta ->
      match Logit.Qre.fixed_point Zoo.matching_pennies ~beta with
      | None -> Alcotest.fail "QRE of pennies must converge"
      | Some sigma ->
          Array.iter
            (fun s -> Array.iter (fun p -> check_float ~tol:1e-9 "uniform" 0.5 p) s)
            sigma)
    [ 0.0; 1.0; 4.0 ]

let qre_beta_zero_uniform () =
  let game = Zoo.rock_paper_scissors in
  match Logit.Qre.fixed_point game ~beta:0. with
  | None -> Alcotest.fail "beta 0 converges"
  | Some sigma ->
      Array.iter
        (fun s ->
          Array.iter (fun p -> check_float ~tol:1e-12 "uniform" (1. /. 3.) p) s)
        sigma

let qre_is_fixed_point () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:0.5) in
  match Logit.Qre.fixed_point game ~beta:1.3 with
  | None -> Alcotest.fail "should converge"
  | Some sigma ->
      check_true "residual ~ 0" (Logit.Qre.residual game ~beta:1.3 sigma < 1e-10)

let qre_expected_utility_formula () =
  (* PD: E[u_0(defect)] vs a 50/50 opponent = (P + T)/2 = 3. *)
  let game = Dominant.prisoners_dilemma () in
  let sigma = Logit.Qre.uniform game in
  check_float ~tol:1e-12 "expected utility" 3.
    (Logit.Qre.expected_utility game sigma ~player:0 ~strategy:0)

let qre_product_distribution_sums () =
  let game = Zoo.battle_of_sexes in
  let sigma = Logit.Qre.uniform game in
  let d = Logit.Qre.product_distribution game sigma in
  check_float ~tol:1e-12 "sums to one" 1. (Array.fold_left ( +. ) 0. d);
  check_float ~tol:1e-12 "uniform product" 0.25 d.(0)

let qre_gap_zero_at_beta_zero () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:1.) in
  match Logit.Qre.stationary_gap game ~beta:0. with
  | Some (_, tv) -> check_float ~tol:1e-9 "no gap at beta 0" 0. tv
  | None -> Alcotest.fail "should converge"

let qre_gap_positive_for_coordination () =
  let game = Coordination.to_game (Coordination.of_deltas ~delta0:1. ~delta1:1.) in
  match Logit.Qre.stationary_gap game ~beta:2. with
  | Some (_, tv) -> check_true "correlated Gibbs vs product" (tv > 0.1)
  | None -> Alcotest.fail "should converge"

let x7_x8_smoke () =
  List.iter
    (fun id ->
      let tables = (Experiments.Registry.find id).Experiments.Registry.run ~quick:true in
      check_true (id ^ " non-empty") (tables <> []))
    [ "x7"; "x8" ]

let suites =
  suites
  @ [
      ( "games.cut_game",
        [
          test "basics" cut_game_basics;
          test "exact potential" cut_game_is_potential;
          test "odd-ring frustration" cut_game_odd_ring_frustrated;
          test "ground states are PNE" cut_game_ground_states_are_nash;
        ] );
      ( "logit.qre",
        [
          test "pennies uniform" qre_matching_pennies_uniform;
          test "beta 0 uniform" qre_beta_zero_uniform;
          test "fixed point residual" qre_is_fixed_point;
          test "expected utility" qre_expected_utility_formula;
          test "product distribution" qre_product_distribution_sums;
          test "gap zero at beta 0" qre_gap_zero_at_beta_zero;
          test "gap positive for coordination" qre_gap_positive_for_coordination;
          test "x7/x8 smoke" x7_x8_smoke;
        ] );
    ]
