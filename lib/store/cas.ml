type t = {
  root : string;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
}

type stats = { hits : int; misses : int; writes : int }

let default_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some cache when cache <> "" -> Filename.concat cache "logitdyn"
  | _ ->
      let home = match Sys.getenv_opt "HOME" with Some h when h <> "" -> h | _ -> "." in
      Filename.concat (Filename.concat home ".cache") "logitdyn"

let objects_dir t = Filename.concat t.root "objects"
let tmp_dir t = Filename.concat t.root "tmp"
let segments_dir t = Filename.concat t.root "segments"

let open_ ?dir () =
  let root = match dir with Some d -> d | None -> default_dir () in
  let t = { root; hits = 0; misses = 0; writes = 0 } in
  Io.mkdir_p (objects_dir t);
  Io.mkdir_p (tmp_dir t);
  Io.mkdir_p (segments_dir t);
  t

let dir t = t.root
let stats (t : t) = { hits = t.hits; misses = t.misses; writes = t.writes }

let object_path t digest =
  let shard = if String.length digest >= 2 then String.sub digest 0 2 else "xx" in
  Filename.concat (Filename.concat (objects_dir t) shard) (digest ^ ".art")

let put t key artifact =
  let path = object_path t (Key.digest key) in
  Io.mkdir_p (Filename.dirname path);
  (* Stage in <root>/tmp — same filesystem as objects/, so the rename
     is atomic and concurrent workers never expose a torn artifact. *)
  Io.write_atomic ~tmp_dir:(tmp_dir t) ~path artifact;
  t.writes <- t.writes + 1

let get t key =
  match Io.read_file (object_path t (Key.digest key)) with
  | Some _ as hit ->
      t.hits <- t.hits + 1;
      hit
  | None ->
      t.misses <- t.misses + 1;
      None

let remove_path path = try Sys.remove path; true with Sys_error _ -> false

let get_decoded t key ~decode =
  let path = object_path t (Key.digest key) in
  match Io.read_file path with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some raw -> (
      match decode raw with
      | Ok v ->
          t.hits <- t.hits + 1;
          Some v
      | Error _ ->
          (* Corrupt on disk: drop it so the recomputed artifact
             replaces it, and count the lookup as a miss. *)
          ignore (remove_path path);
          t.misses <- t.misses + 1;
          None)

let mem t key = Sys.file_exists (object_path t (Key.digest key))

let find_or_add t key build =
  match get t key with
  | Some artifact -> artifact
  | None ->
      let artifact = build () in
      put t key artifact;
      artifact

type entry = { digest : string; size : int; mtime : float; path : string }

let readdir_sorted path =
  match Sys.readdir path with
  | entries ->
      Array.sort compare entries;
      entries
  | exception Sys_error _ -> [||]

let ls t =
  let acc = ref [] in
  Array.iter
    (fun shard ->
      let shard_path = Filename.concat (objects_dir t) shard in
      if Sys.is_directory shard_path then
        Array.iter
          (fun name ->
            if Filename.check_suffix name ".art" then begin
              let path = Filename.concat shard_path name in
              match Unix.stat path with
              | { Unix.st_size; st_mtime; _ } ->
                  acc :=
                    {
                      digest = Filename.chop_suffix name ".art";
                      size = st_size;
                      mtime = st_mtime;
                      path;
                    }
                    :: !acc
              | exception Unix.Unix_error _ -> ()
            end)
          (readdir_sorted shard_path))
    (readdir_sorted (objects_dir t));
  List.sort (fun a b -> compare a.digest b.digest) !acc

let segment_path t key = Filename.concat (segments_dir t) (Key.digest key ^ ".seg")

let ls_segments t =
  let acc = ref [] in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".seg" then begin
        let path = Filename.concat (segments_dir t) name in
        match Unix.stat path with
        | { Unix.st_size; st_mtime; _ } ->
            acc :=
              {
                digest = Filename.chop_suffix name ".seg";
                size = st_size;
                mtime = st_mtime;
                path;
              }
              :: !acc
        | exception Unix.Unix_error _ -> ()
      end)
    (readdir_sorted (segments_dir t));
  List.sort (fun a b -> compare a.digest b.digest) !acc

let verify t =
  List.map
    (fun entry ->
      let status =
        match Io.read_file entry.path with
        | None -> Error "unreadable"
        | Some raw -> (
            match Codec.inspect raw with
            | Ok (kind, _len) -> Ok kind
            | Error _ as e -> e)
      in
      (entry, status))
    (ls t)

let remove t ~digest = remove_path (object_path t digest)

let sweep_tmp t =
  Array.iter
    (fun name -> ignore (remove_path (Filename.concat (tmp_dir t) name)))
    (readdir_sorted (tmp_dir t))

let gc ?max_bytes t ~older_than =
  (* Compared against file mtimes, which are wall-clock: wall time is
     correct here despite the project-wide duration rule. *)
  let now = Common.Clock.wall_s () in
  sweep_tmp t;
  (* Objects and segments share one budget: segments are the multi-GB
     artifacts the size cap exists for. *)
  let entries = ls t @ ls_segments t in
  let count, bytes, survivors =
    List.fold_left
      (fun (count, bytes, survivors) entry ->
        if now -. entry.mtime > older_than && remove_path entry.path then
          (count + 1, bytes + entry.size, survivors)
        else (count, bytes, entry :: survivors))
      (0, 0, []) entries
  in
  match max_bytes with
  | None -> (count, bytes)
  | Some cap ->
      if cap < 0 then invalid_arg "Cas.gc: max_bytes must be >= 0";
      (* LRU by mtime: evict the stalest survivors until the store
         fits in [cap] bytes. Ties break on digest so the sweep is
         deterministic under equal timestamps. *)
      let by_age =
        List.sort
          (fun a b ->
            match compare a.mtime b.mtime with
            | 0 -> compare a.digest b.digest
            | c -> c)
          survivors
      in
      let total = List.fold_left (fun acc e -> acc + e.size) 0 by_age in
      let _, count, bytes =
        List.fold_left
          (fun (total, count, bytes) entry ->
            if total > cap && remove_path entry.path then
              (total - entry.size, count + 1, bytes + entry.size)
            else (total, count, bytes))
          (total, count, bytes) by_age
      in
      (count, bytes)

let clear t =
  sweep_tmp t;
  List.fold_left
    (fun count entry -> if remove_path entry.path then count + 1 else count)
    0
    (ls t @ ls_segments t)
