(** Migration of the three legacy one-shot snapshot shapes
    ([BENCH_csr.json], [BENCH_spmm.json], [BENCH_store.json]) into
    trajectory {!Record.t}s, so pre-existing measurements join
    [BENCH_HISTORY.json] instead of being orphaned. Dispatch is on the
    snapshot's top-level ["bench"] field. *)

(** [of_legacy j] migrates one parsed legacy snapshot. Timing-less
    blocks (the store snapshot's [resume] section) are skipped; every
    timed arm becomes one validated record with [rev]/[host]
    ["unknown"] and [timestamp] 0 (legacy snapshots carried no
    provenance). *)
val of_legacy : Json.t -> (Record.t list, string) result

(** [of_legacy_string s] is [of_legacy] after {!Json.parse}. *)
val of_legacy_string : string -> (Record.t list, string) result
